// Seed-corpus generator: writes well-formed inputs for each fuzz harness
// using the library's real writers, so every seed starts on the parsers'
// happy path and mutation explores the interesting boundary around it.
//
//   make_fuzz_corpus [OUT_DIR]    (default: fuzz/corpus, run from repo root)
//
// The generated seeds are deterministic and checked into fuzz/corpus/; re-run
// this tool after changing an on-disk format and commit the diff.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tsss/index/node.h"
#include "tsss/seq/csv.h"
#include "tsss/seq/dataset.h"
#include "tsss/seq/dataset_io.h"
#include "tsss/storage/page.h"

namespace {

namespace fs = std::filesystem;

void WriteSeed(const fs::path& dir, const std::string& name,
               const std::string& bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", (dir / name).c_str());
    std::exit(1);
  }
}

std::string PageBytes(const tsss::storage::Page& page) {
  return std::string(reinterpret_cast<const char*>(page.bytes.data()),
                     page.bytes.size());
}

/// node_decode harness input: [dim selector][flags] + page image. The
/// selector bytes must invert the harness's mapping (dim = 1 + b % 16,
/// box_leaves = b & 1).
std::string NodeSeed(std::size_t dim, bool box_leaves,
                     const tsss::storage::Page& page) {
  std::string out;
  out.push_back(static_cast<char>(dim - 1));
  out.push_back(static_cast<char>(box_leaves ? 1 : 0));
  return out + PageBytes(page);
}

tsss::geom::Mbr Box(std::initializer_list<double> lo,
                    std::initializer_list<double> hi) {
  return tsss::geom::Mbr::FromCorners(tsss::geom::Vec(lo), tsss::geom::Vec(hi));
}

void MakeNodeSeeds(const fs::path& dir) {
  using tsss::index::Entry;
  using tsss::index::NodeCodec;
  using tsss::storage::Page;

  {  // internal node, dim 2
    NodeCodec codec(2, false);
    std::vector<Entry> entries = {
        Entry::ForChild(7, Box({0.0, -1.0}, {2.5, 1.0})),
        Entry::ForChild(9, Box({-4.0, 0.5}, {0.0, 3.0})),
    };
    Page page;
    if (!codec.EncodePart(1, entries, tsss::storage::kInvalidPageId, &page).ok())
      std::exit(1);
    WriteSeed(dir, "internal_dim2", NodeSeed(2, false, page));
  }
  {  // point leaf, dim 6 (the paper's default reduced dimensionality)
    NodeCodec codec(6, false);
    std::vector<Entry> entries;
    for (std::uint64_t r = 0; r < 5; ++r) {
      const std::vector<double> point = {0.5 * static_cast<double>(r), 1, 2,
                                         3, 4, 5};
      entries.push_back(Entry::ForRecord(r * 1000 + 1, point));
    }
    Page page;
    if (!codec.EncodePart(0, entries, tsss::storage::kInvalidPageId, &page).ok())
      std::exit(1);
    WriteSeed(dir, "leaf_points_dim6", NodeSeed(6, false, page));
  }
  {  // box leaf (sub-trail mode) chained to a continuation page
    NodeCodec codec(3, true);
    Entry trail;
    trail.mbr = Box({0, 0, 0}, {1, 1, 1});
    trail.record = 42;
    std::vector<Entry> entries = {trail};
    Page page;
    if (!codec.EncodePart(0, entries, /*next=*/12, &page).ok()) std::exit(1);
    WriteSeed(dir, "leaf_boxes_dim3_chained", NodeSeed(3, true, page));
  }
  {  // empty leaf (a fresh root)
    NodeCodec codec(6, false);
    Page page;
    if (!codec.EncodePart(0, {}, tsss::storage::kInvalidPageId, &page).ok())
      std::exit(1);
    WriteSeed(dir, "leaf_empty_dim6", NodeSeed(6, false, page));
  }
}

std::string DatasetBytes(const tsss::seq::Dataset& dataset) {
  std::ostringstream out(std::ios::binary);
  if (!tsss::seq::SaveDatasetToStream(out, dataset).ok()) std::exit(1);
  return out.str();
}

void MakePersistenceSeeds(const fs::path& dir) {
  {  // dataset with two series
    tsss::seq::Dataset dataset;
    const std::vector<double> a = {1.0, 2.5, -3.0, 4.25};
    const std::vector<double> b = {0.0, 0.5};
    dataset.Add("stock_a", a);
    dataset.Add("stock_b", b);
    WriteSeed(dir, "dataset_two_series", DatasetBytes(dataset));
  }
  {  // empty dataset (header + checksum only)
    WriteSeed(dir, "dataset_empty", DatasetBytes(tsss::seq::Dataset{}));
  }
  // engine.meta text exactly as SearchEngine::Checkpoint writes it.
  WriteSeed(dir, "engine_meta",
            "tsss-engine-meta-v1\n"
            "window 128\n"
            "stride 1\n"
            "subtrail 0\n"
            "reducer 0\n"
            "reduced_dim 6\n"
            "prune 0\n"
            "pool_pages 8192\n"
            "cold_cache 1\n"
            "tree_max 20\n"
            "tree_leaf_max 20\n"
            "tree_min_fill 0.4\n"
            "tree_split 2\n"
            "tree_reinsert 0.3\n"
            "supernodes 0\n"
            "supernode_overlap 0.8\n"
            "supernode_multiple 4\n"
            "windows 873\n"
            "root 3\n"
            "height 2\n"
            "size 873\n");
}

void MakeCsvSeeds(const fs::path& dir) {
  {  // writer output for named + unnamed series
    std::vector<tsss::seq::TimeSeries> series = {
        {"prices", {101.25, 99.5, 103.125}},
        {"series1", {1.0, 2.0, 3.0, 4.0}},
    };
    WriteSeed(dir, "two_series", tsss::seq::ToCsv(series));
  }
  WriteSeed(dir, "comments_and_blanks",
            "# header comment\n"
            "\n"
            "alpha, 1.5, 2.5 ,3.5,\n"
            "  # indented comment\n"
            "9,8,7\n");
  WriteSeed(dir, "lonely_name", "lonely\n");
}

void MakePageCrcSeeds(const fs::path& dir) {
  // Arbitrary bytes; include a full page image so the harness's 4 KiB
  // equivalence branch is covered from the first run.
  tsss::storage::Page page;
  for (std::size_t i = 0; i < page.bytes.size(); ++i) {
    page.bytes[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  WriteSeed(dir, "full_page", PageBytes(page));
  WriteSeed(dir, "short_text", "crc me\n");
  WriteSeed(dir, "single_byte", std::string(1, '\0'));
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path out = argc > 1 ? fs::path(argv[1]) : fs::path("fuzz/corpus");
  MakePageCrcSeeds(out / "page_crc");
  MakeNodeSeeds(out / "node_decode");
  MakePersistenceSeeds(out / "persistence");
  MakeCsvSeeds(out / "csv");
  std::printf("seed corpus written under %s\n", out.c_str());
  return 0;
}
