// Fallback driver for toolchains without libFuzzer (the GCC-only CI image
// and local GCC builds). It links against the same LLVMFuzzerTestOneInput
// entry point the real fuzzer uses and supports the two libFuzzer flags our
// scripts rely on:
//
//   driver CORPUS_DIR [FILE...]          replay every corpus input once
//   driver -max_total_time=N CORPUS_DIR  replay, then mutate seeds for N s
//
// The mutation loop is a deliberately simple byte-level fuzzer (flip, set,
// truncate, insert, splice); it is no substitute for coverage-guided
// libFuzzer but keeps the harness assertions exercised on every platform.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

/// Mutated inputs are capped so one unlucky insert chain cannot turn the
/// time-bounded loop into a memory-bound one.
constexpr std::size_t kMaxMutatedSize = 1 << 16;

std::vector<std::uint8_t> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void RunOne(const std::vector<std::uint8_t>& data) {
  // data() of an empty vector may be null; libFuzzer never passes null.
  static const std::uint8_t kEmpty = 0;
  LLVMFuzzerTestOneInput(data.empty() ? &kEmpty : data.data(), data.size());
}

void Mutate(std::vector<std::uint8_t>& buf,
            const std::vector<std::vector<std::uint8_t>>& seeds,
            std::mt19937_64& rng) {
  switch (rng() % 6) {
    case 0:  // flip one bit
      if (!buf.empty()) {
        std::uint8_t& b = buf[rng() % buf.size()];
        b = static_cast<std::uint8_t>(b ^ (1u << (rng() % 8)));
      }
      break;
    case 1:  // overwrite one byte
      if (!buf.empty()) buf[rng() % buf.size()] = static_cast<std::uint8_t>(rng());
      break;
    case 2:  // truncate
      if (!buf.empty()) buf.resize(rng() % buf.size());
      break;
    case 3: {  // insert a short random run
      const std::size_t n = 1 + rng() % 8;
      const std::size_t at = buf.empty() ? 0 : rng() % buf.size();
      std::vector<std::uint8_t> run(n);
      for (auto& b : run) b = static_cast<std::uint8_t>(rng());
      buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(at), run.begin(),
                 run.end());
      break;
    }
    case 4: {  // splice a chunk of another seed onto the tail
      const std::vector<std::uint8_t>& other = seeds[rng() % seeds.size()];
      if (!other.empty()) {
        const std::size_t from = rng() % other.size();
        buf.insert(buf.end(), other.begin() + static_cast<std::ptrdiff_t>(from),
                   other.end());
      }
      break;
    }
    default:  // duplicate the buffer's own tail
      if (!buf.empty()) {
        const std::size_t from = rng() % buf.size();
        buf.insert(buf.end(), buf.begin() + static_cast<std::ptrdiff_t>(from),
                   buf.end());
      }
      break;
  }
  if (buf.size() > kMaxMutatedSize) buf.resize(kMaxMutatedSize);
}

}  // namespace

int main(int argc, char** argv) {
  long max_total_time = 0;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-max_total_time=", 0) == 0) {
      max_total_time = std::strtol(arg.c_str() + 16, nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "standalone driver: ignoring flag %s\n", arg.c_str());
    } else {
      inputs.emplace_back(arg);
    }
  }

  std::vector<std::vector<std::uint8_t>> seeds;
  for (const fs::path& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (const fs::directory_entry& entry : fs::directory_iterator(input)) {
        if (entry.is_regular_file()) seeds.push_back(ReadFile(entry.path()));
      }
    } else if (fs::is_regular_file(input, ec)) {
      seeds.push_back(ReadFile(input));
    } else {
      std::fprintf(stderr, "standalone driver: cannot read %s\n",
                   input.c_str());
      return 2;
    }
  }

  for (const auto& seed : seeds) RunOne(seed);
  std::printf("standalone driver: replayed %zu seed input(s)\n", seeds.size());

  if (max_total_time > 0) {
    if (seeds.empty()) seeds.push_back({});
    std::mt19937_64 rng(0x7353535346555a5aull);  // fixed seed: reproducible runs
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(max_total_time);
    std::uint64_t execs = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      std::vector<std::uint8_t> buf = seeds[rng() % seeds.size()];
      const std::size_t rounds = 1 + rng() % 8;
      for (std::size_t i = 0; i < rounds; ++i) Mutate(buf, seeds, rng);
      RunOne(buf);
      ++execs;
    }
    std::printf("standalone driver: %llu mutated exec(s) in %ld s\n",
                static_cast<unsigned long long>(execs), max_total_time);
  }
  return 0;
}
