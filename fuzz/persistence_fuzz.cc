// Fuzz target: persistence readers — the engine.meta text parser
// (core/persistence.cc, ParseEngineMeta) and the binary dataset loader
// (seq/dataset_io.cc, LoadDatasetFromStream).
//
// Both parsers consume attacker-controlled files from the storage
// directory; the harness feeds the same bytes to each. Properties:
//   1. Neither parser crashes, aborts a DCHECK, or trips ASan/UBSan on any
//      input — malformed files come back as Status errors.
//   2. Size/count fields in the dataset format never drive allocations
//      beyond the actual input size (a hostile header claiming 2^61 values
//      must fail fast, not attempt the allocation).
//   3. A dataset the loader accepts round-trips through the writer to the
//      byte-identical image.

#include <cstdint>
#include <sstream>
#include <string>

#include "fuzz_check.h"
#include "tsss/core/engine.h"
#include "tsss/seq/dataset.h"
#include "tsss/seq/dataset_io.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  {
    std::istringstream in(bytes);
    // discard-ok: fuzz target — only crashes/hangs matter, any Status is fine.
    (void)tsss::core::ParseEngineMeta(in);
  }

  std::istringstream in(bytes);
  tsss::seq::Dataset dataset;
  const tsss::Status s = tsss::seq::LoadDatasetFromStream(in, &dataset);
  if (s.ok()) {
    // Accepted input must be exactly what the writer produces for the
    // decoded dataset (the format has a unique serialization).
    std::ostringstream out;
    FUZZ_CHECK(tsss::seq::SaveDatasetToStream(out, dataset).ok());
    FUZZ_CHECK(out.str() == bytes);
  }
  return 0;
}
