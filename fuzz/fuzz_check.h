#ifndef TSSS_FUZZ_FUZZ_CHECK_H_
#define TSSS_FUZZ_FUZZ_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Invariant check for fuzz harnesses. Unlike assert() it survives NDEBUG,
/// and unlike TSSS_CHECK it is independent of the library's build flags:
/// a harness invariant must fire identically in every configuration so the
/// fuzzer (or the standalone driver) registers it as a crash.
#define FUZZ_CHECK(cond)                                               \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "FUZZ_CHECK failed: %s at %s:%d\n", #cond,  \
                   __FILE__, __LINE__);                                \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

#endif  // TSSS_FUZZ_FUZZ_CHECK_H_
