// Fuzz target: R-tree node decoding (index/node.cc, NodeCodec).
//
// The first two input bytes choose the codec configuration (dimension
// 1..16 and point vs box leaves); the rest becomes a 4 KiB page image.
// Properties:
//   1. DecodePart/Decode on arbitrary bytes never crash, abort a DCHECK,
//      or trip ASan/UBSan — malformed pages must come back as Status.
//   2. Anything DecodePart accepts re-encodes with EncodePart and decodes
//      again to the identical part (accepted input is round-trip stable).

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "fuzz_check.h"
#include "tsss/index/node.h"
#include "tsss/storage/page.h"

namespace {

void CheckRoundTrip(const tsss::index::NodeCodec& codec,
                    const tsss::index::NodePart& part) {
  tsss::storage::Page encoded;
  const tsss::Status s =
      codec.EncodePart(part.level, part.entries, part.next, &encoded);
  FUZZ_CHECK(s.ok());
  const tsss::Result<tsss::index::NodePart> again = codec.DecodePart(encoded);
  FUZZ_CHECK(again.ok());
  FUZZ_CHECK(again->level == part.level);
  FUZZ_CHECK(again->next == part.next);
  FUZZ_CHECK(again->entries.size() == part.entries.size());
  for (std::size_t i = 0; i < part.entries.size(); ++i) {
    const tsss::index::Entry& a = part.entries[i];
    const tsss::index::Entry& b = again->entries[i];
    FUZZ_CHECK(a.child == b.child);
    FUZZ_CHECK(a.record == b.record);
    FUZZ_CHECK(a.mbr.lo() == b.mbr.lo());
    FUZZ_CHECK(a.mbr.hi() == b.mbr.hi());
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 2) return 0;
  const std::size_t dim = 1 + data[0] % 16;
  const bool box_leaves = (data[1] & 1) != 0;
  data += 2;
  size -= 2;

  tsss::storage::Page page;
  std::memcpy(page.bytes.data(), data,
              std::min(size, tsss::storage::kPageSize));

  const tsss::index::NodeCodec codec(dim, box_leaves);
  const tsss::Result<tsss::index::NodePart> part = codec.DecodePart(page);
  if (part.ok()) CheckRoundTrip(codec, *part);

  // The single-page entry point applies one extra validation (no chain
  // link); it must be just as robust.
  // discard-ok: fuzz target — only crashes/hangs matter, any Status is fine.
  (void)codec.Decode(page);
  return 0;
}
