// Fuzz target: CRC-32 over arbitrary page images.
//
// Properties checked on every input:
//   1. One-shot and incremental (Crc32Continue) APIs agree for any split.
//   2. Flipping any single bit changes the checksum (CRC-32 detects all
//      single-bit errors) — this is what the page store's corruption
//      detection rests on.
//   3. Checksumming a full 4 KiB Page image built from the input never
//      touches memory outside the page.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "fuzz_check.h"
#include "tsss/common/crc32.h"
#include "tsss/storage/page.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::uint32_t one_shot = tsss::Crc32(data, size);

  // Incremental equivalence, split point chosen by the input itself.
  const std::size_t split = size == 0 ? 0 : data[0] % size;
  std::uint32_t incremental = tsss::Crc32Continue(0, data, split);
  incremental = tsss::Crc32Continue(incremental, data + split, size - split);
  FUZZ_CHECK(incremental == one_shot);

  // Byte-at-a-time must agree too (exercises every table lookup path).
  std::uint32_t byte_wise = 0;
  for (std::size_t i = 0; i < size; ++i) {
    byte_wise = tsss::Crc32Continue(byte_wise, data + i, 1);
  }
  FUZZ_CHECK(byte_wise == one_shot);

  if (size > 0) {
    // Single-bit-flip detection at an input-chosen position.
    std::vector<std::uint8_t> corrupt(data, data + size);
    const std::size_t pos = data[size - 1] % size;
    corrupt[pos] = static_cast<std::uint8_t>(corrupt[pos] ^
                                             (1u << (data[size - 1] % 8u)));
    FUZZ_CHECK(tsss::Crc32(corrupt.data(), size) != one_shot);
  }

  // Page-image form, as FilePageStore checksums it.
  tsss::storage::Page page;
  std::memcpy(page.bytes.data(), data,
              std::min(size, tsss::storage::kPageSize));
  const std::uint32_t page_crc =
      tsss::Crc32(page.bytes.data(), page.bytes.size());
  if (size >= tsss::storage::kPageSize) {
    FUZZ_CHECK(page_crc == tsss::Crc32(data, tsss::storage::kPageSize));
  }
  return 0;
}
