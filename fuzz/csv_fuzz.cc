// Fuzz target: the CSV time-series parser (seq/csv.cc).
//
// Properties:
//   1. ParseCsv never crashes or trips ASan/UBSan on arbitrary text; bad
//      rows come back as Status errors.
//   2. The value cap in CsvOptions bounds memory regardless of input.
//   3. Anything the parser accepts round-trips: ToCsv of the result parses
//      again to the same names and bit-equal values (precision 17 output).

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz_check.h"
#include "tsss/seq/csv.h"
#include "tsss/seq/time_series.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  tsss::seq::CsvOptions options;
  options.max_total_values = 1 << 16;  // keep hostile inputs cheap
  const tsss::Result<std::vector<tsss::seq::TimeSeries>> parsed =
      tsss::seq::ParseCsv(text, options);
  if (!parsed.ok()) return 0;

  const std::string serialized = tsss::seq::ToCsv(*parsed);
  const tsss::Result<std::vector<tsss::seq::TimeSeries>> again =
      tsss::seq::ParseCsv(serialized, options);
  FUZZ_CHECK(again.ok());
  FUZZ_CHECK(again->size() == parsed->size());
  for (std::size_t i = 0; i < parsed->size(); ++i) {
    FUZZ_CHECK((*again)[i].name == (*parsed)[i].name);
    FUZZ_CHECK((*again)[i].values.size() == (*parsed)[i].values.size());
    for (std::size_t j = 0; j < (*parsed)[i].values.size(); ++j) {
      FUZZ_CHECK((*again)[i].values[j] == (*parsed)[i].values[j]);
    }
  }
  return 0;
}
