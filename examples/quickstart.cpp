// Quickstart: index the three sequences from the paper's Figure 1 example
// and run one scale-shift range query.
//
// Build & run:   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "tsss/core/engine.h"

int main() {
  // The paper's Figure 1: B = 2*A, C = A + 20. All three are "the same
  // sequence" under scaling and shifting.
  const tsss::geom::Vec a = {5, 10, 6, 12, 4};
  const tsss::geom::Vec b = {10, 20, 12, 24, 8};
  const tsss::geom::Vec c = {25, 30, 26, 32, 24};

  // Window = 5 (the whole sequence), no dimensionality reduction needed at
  // this toy size: identity keeps all 5 dims in the R-tree.
  tsss::core::EngineConfig config;
  config.window = 5;
  config.reducer = tsss::reduce::ReducerKind::kIdentity;
  config.reduced_dim = 5;
  config.tree.max_entries = 8;

  auto engine = tsss::core::SearchEngine::Create(config);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine creation failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  for (const auto& [name, values] :
       {std::pair{"A", a}, std::pair{"B", b}, std::pair{"C", c}}) {
    auto id = (*engine)->AddSeries(name, values);
    if (!id.ok()) {
      std::fprintf(stderr, "add failed: %s\n", id.status().ToString().c_str());
      return 1;
    }
  }

  // Query with A: every stored sequence should match with eps ~ 0, each
  // reporting the scaling factor and shifting offset that maps A onto it.
  auto matches = (*engine)->RangeQuery(a, 1e-9);
  if (!matches.ok()) {
    std::fprintf(stderr, "query failed: %s\n", matches.status().ToString().c_str());
    return 1;
  }

  std::printf("query = A = (5, 10, 6, 12, 4), eps = 1e-9\n");
  std::printf("%-8s %-8s %-10s %-10s %-10s\n", "series", "offset", "scale(a)",
              "shift(b)", "distance");
  for (const tsss::core::Match& m : *matches) {
    auto name = (*engine)->dataset().Name(m.series);
    std::printf("%-8s %-8u %-10.4f %-10.4f %-10.2e\n",
                name.ok() ? name->c_str() : "?", m.offset, m.transform.scale,
                m.transform.offset, m.distance);
  }
  std::printf("\nExpected: A->A a=1 b=0;  A->B a=2 b=0;  A->C a=1 b=20.\n");
  return 0;
}
