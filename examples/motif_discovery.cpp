// Motif discovery: which price patterns recur across the market?
//
// For a sample of probe windows, ask the index for their nearest neighbours
// under the scale-shift distance, excluding trivial self/overlapping hits.
// The probe whose best cross-match is tightest is the market's strongest
// shared "motif" - two stocks (or two epochs of one stock) tracing the same
// shape at possibly very different price levels and amplitudes.
//
// Usage: motif_discovery [num_companies] [probes]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "tsss/common/rng.h"
#include "tsss/core/engine.h"
#include "tsss/seq/stock_generator.h"

namespace {

struct Motif {
  tsss::storage::SeriesId probe_series;
  std::uint32_t probe_offset;
  tsss::core::Match match;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t companies =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 80;
  const std::size_t probes =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 60;
  constexpr std::size_t kWindow = 64;

  tsss::seq::StockMarketConfig market_config;
  market_config.num_companies = companies;
  market_config.values_per_company = 400;
  const auto market = tsss::seq::GenerateStockMarket(market_config);

  tsss::core::EngineConfig config;
  config.window = kWindow;
  auto engine = tsss::core::SearchEngine::Create(config);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  if (auto s = (*engine)->BulkBuild(market); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu windows from %zu companies; probing %zu windows "
              "for recurring shapes...\n\n",
              (*engine)->num_indexed_windows(), companies, probes);

  // Exclude degenerate matches: the probe itself, overlapping windows of
  // the same series, and near-flat windows that "match" anything with a~0.
  tsss::core::TransformCost cost;
  cost.min_scale = 0.2;
  cost.max_scale = 5.0;

  tsss::Rng rng(2026);
  std::vector<Motif> motifs;
  for (std::size_t p = 0; p < probes; ++p) {
    const auto series = static_cast<tsss::storage::SeriesId>(
        rng.UniformInt(0, static_cast<std::int64_t>(companies) - 1));
    const auto offset = static_cast<std::uint32_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(400 - kWindow)));
    const auto& values = market[series].values;
    const tsss::geom::Vec probe(values.begin() + offset,
                                values.begin() + offset + kWindow);

    auto neighbours = (*engine)->Knn(probe, 8, cost);
    if (!neighbours.ok()) {
      std::fprintf(stderr, "%s\n", neighbours.status().ToString().c_str());
      return 1;
    }
    for (const tsss::core::Match& m : *neighbours) {
      const bool self_overlap =
          m.series == series &&
          (m.offset < offset + kWindow && offset < m.offset + kWindow);
      if (self_overlap) continue;
      motifs.push_back(Motif{series, offset, m});
      break;  // nearest non-trivial neighbour only
    }
  }

  std::sort(motifs.begin(), motifs.end(), [](const Motif& a, const Motif& b) {
    return a.match.distance < b.match.distance;
  });

  std::printf("top recurring shapes (probe -> best cross-match):\n");
  std::printf("%-18s %-18s %-10s %-10s %-10s\n", "probe", "match", "scale(a)",
              "shift(b)", "distance");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, motifs.size()); ++i) {
    const Motif& motif = motifs[i];
    auto probe_name = (*engine)->dataset().Name(motif.probe_series);
    auto match_name = (*engine)->dataset().Name(motif.match.series);
    char probe_label[32];
    char match_label[32];
    std::snprintf(probe_label, sizeof(probe_label), "%s@%u",
                  probe_name.ok() ? probe_name->c_str() : "?",
                  motif.probe_offset);
    std::snprintf(match_label, sizeof(match_label), "%s@%u",
                  match_name.ok() ? match_name->c_str() : "?",
                  motif.match.offset);
    std::printf("%-18s %-18s %-10.3f %-10.2f %-10.4f\n", probe_label,
                match_label, motif.match.transform.scale,
                motif.match.transform.offset, motif.match.distance);
  }
  std::printf("\n(a < 1: the match moves with smaller amplitude than the "
              "probe; b: its price level offset)\n");
  return 0;
}
