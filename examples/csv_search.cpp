// CSV search: run scale-shift similarity queries against your own data.
//
// Usage:
//   csv_search <data.csv> <query.csv> [epsilon] [window]
//
// data.csv:  one series per line, "name,v1,v2,...".
// query.csv: a single line; the first `window` values are the query (or use
//            a longer query - it is handled with Section 7's long-query
//            partitioning automatically).
//
// Without arguments, a small self-contained demo dataset is used.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "tsss/core/engine.h"
#include "tsss/seq/csv.h"

namespace {

int Fail(const tsss::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

constexpr char kDemoData[] =
    "uptrend,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16\n"
    "steep_up,10,30,50,70,90,110,130,150,170,190,210,230,250,270,290,310\n"
    "downtrend,16,15,14,13,12,11,10,9,8,7,6,5,4,3,2,1\n"
    "wiggle,5,9,2,8,1,7,3,9,4,6,2,8,5,7,1,9\n";
constexpr char kDemoQuery[] = "query,100,102,104,106,108,110,112,114\n";

}  // namespace

int main(int argc, char** argv) {
  const double eps = argc > 3 ? std::atof(argv[3]) : 0.5;
  const std::size_t window = argc > 4
                                 ? static_cast<std::size_t>(std::atoi(argv[4]))
                                 : 8;

  auto data = argc > 1 ? tsss::seq::LoadCsvFile(argv[1])
                       : tsss::seq::ParseCsv(kDemoData);
  if (!data.ok()) return Fail(data.status());
  auto queries = argc > 2 ? tsss::seq::LoadCsvFile(argv[2])
                          : tsss::seq::ParseCsv(kDemoQuery);
  if (!queries.ok()) return Fail(queries.status());
  if (queries->empty() || (*queries)[0].values.size() < window) {
    std::fprintf(stderr, "query file needs one series with >= %zu values\n",
                 window);
    return 1;
  }

  tsss::core::EngineConfig config;
  config.window = window;
  config.reducer = tsss::reduce::ReducerKind::kPaa;  // works for any window
  config.reduced_dim = window >= 8 ? 4 : window / 2 + 1;
  config.tree.max_entries = 16;
  auto engine = tsss::core::SearchEngine::Create(config);
  if (!engine.ok()) return Fail(engine.status());

  for (const auto& series : *data) {
    if (auto s = (*engine)->AddSeries(series.name, series.values); !s.ok()) {
      return Fail(s.status());
    }
  }
  std::printf("indexed %zu series (%zu windows of length %zu), eps = %.3f\n",
              data->size(), (*engine)->num_indexed_windows(), window, eps);

  const tsss::geom::Vec& full_query = (*queries)[0].values;
  tsss::Result<std::vector<tsss::core::Match>> matches =
      full_query.size() > window
          ? (*engine)->LongRangeQuery(full_query, eps)
          : (*engine)->RangeQuery(
                tsss::geom::Vec(full_query.begin(),
                                full_query.begin() +
                                    static_cast<std::ptrdiff_t>(window)),
                eps);
  if (!matches.ok()) return Fail(matches.status());

  std::printf("\n%zu match(es):\n", matches->size());
  std::printf("%-16s %-8s %-10s %-12s %-10s\n", "series", "offset", "scale(a)",
              "shift(b)", "distance");
  for (const tsss::core::Match& m : *matches) {
    auto name = (*engine)->dataset().Name(m.series);
    std::printf("%-16s %-8u %-10.4f %-12.4f %-10.4f\n",
                name.ok() ? name->c_str() : "?", m.offset, m.transform.scale,
                m.transform.offset, m.distance);
  }
  if (argc <= 2) {
    std::printf(
        "\n(demo: a maps the query onto the data, so the slope-2 query\n"
        " matches 'uptrend' (slope 1) with a=0.5, 'steep_up' (slope 20) with\n"
        " a=10, and 'downtrend' with negative a; 'wiggle' should not match\n"
        " at small eps.)\n");
  }
  return 0;
}
