// Stock screener: the paper's motivating application (Section 1).
//
// Generates a synthetic Hong Kong market, picks one stock's recent price run
// as the query pattern, and finds every other stock that traced the *same
// trend* regardless of absolute price level (shifting) or price magnitude
// (scaling) - e.g. a HK$2 penny stock moving in lockstep with a HK$120 blue
// chip. Results report the scaling factor and shifting offset, and the
// screen is restricted to positive scalings (a mirror-image price run is not
// "the same trend").
//
// Usage: stock_screener [epsilon] [num_companies]

#include <cstdio>
#include <cstdlib>

#include "tsss/core/engine.h"
#include "tsss/core/postprocess.h"
#include "tsss/seq/stock_generator.h"

int main(int argc, char** argv) {
  const double eps = argc > 1 ? std::atof(argv[1]) : 3.0;
  const std::size_t companies =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 200;

  std::printf("generating market: %zu companies x 650 trading values...\n",
              companies);
  tsss::seq::StockMarketConfig market_config;
  market_config.num_companies = companies;
  market_config.values_per_company = 650;
  const auto market = tsss::seq::GenerateStockMarket(market_config);

  tsss::core::EngineConfig config;  // paper defaults: n=128, DFT->6, M=20
  auto engine = tsss::core::SearchEngine::Create(config);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  if (auto s = (*engine)->BulkBuild(market); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu windows of length %zu (R*-tree height %zu)\n\n",
              (*engine)->num_indexed_windows(), config.window,
              (*engine)->tree().height());

  // Query: the last 128 days of company HK7.
  const auto& probe = market[7];
  const tsss::geom::Vec query(probe.values.end() - 128, probe.values.end());
  std::printf("query: last %d values of %s (price %.2f .. %.2f), eps = %.2f\n",
              128, probe.name.c_str(), query.front(), query.back(), eps);

  // Screen for the same trend: positive scalings only, and exclude
  // near-zero scalings (a flat penny-stock window can be "matched" by
  // scaling any pattern to nothing - not a trend worth reporting).
  tsss::core::TransformCost cost = tsss::core::TransformCost::PositiveScale();
  cost.min_scale = 0.05;
  tsss::core::QueryStats stats;
  auto matches = (*engine)->RangeQuery(query, eps, cost, &stats);
  if (!matches.ok()) {
    std::fprintf(stderr, "%s\n", matches.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%zu windows matched (%llu candidates verified, "
              "%llu index + %llu data page reads)\n",
              matches->size(), static_cast<unsigned long long>(stats.candidates),
              static_cast<unsigned long long>(stats.index_page_reads),
              static_cast<unsigned long long>(stats.data_page_reads));

  // A stride-1 index reports every alignment of a matching region; collapse
  // each run to its best representative for presentation.
  const auto condensed = tsss::core::SuppressOverlaps(std::move(*matches), 32);
  std::printf("%zu distinct pattern occurrences after overlap suppression\n\n",
              condensed.size());

  std::printf("%-8s %-8s %-10s %-10s %-10s\n", "stock", "day", "scale(a)",
              "shift(b)", "distance");
  std::size_t shown = 0;
  for (const tsss::core::Match& m : condensed) {
    auto name = (*engine)->dataset().Name(m.series);
    std::printf("%-8s %-8u %-10.4f %-10.2f %-10.4f\n",
                name.ok() ? name->c_str() : "?", m.offset, m.transform.scale,
                m.transform.offset, m.distance);
    if (++shown >= 20) {
      std::printf("... (%zu more)\n", condensed.size() - shown);
      break;
    }
  }
  return 0;
}
