// Persistent index: build once, query forever.
//
// First run:  builds a file-backed index over a synthetic market under
//             ./tsss_index/ and checkpoints it.
// Later runs: reopen the saved index in milliseconds (no rebuild), run a
//             query, append one more day of prices, checkpoint again.
//
// Usage: persistent_index [storage_dir]

#include <cstdio>
#include <filesystem>

#include "tsss/core/engine.h"
#include "tsss/seq/stock_generator.h"

namespace {

int Fail(const tsss::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "tsss_index";
  const bool exists = std::filesystem::exists(dir + "/engine.meta");

  std::unique_ptr<tsss::core::SearchEngine> engine;
  if (exists) {
    std::printf("reopening saved index from %s/ ...\n", dir.c_str());
    auto opened = tsss::core::SearchEngine::Open(dir);
    if (!opened.ok()) return Fail(opened.status());
    engine = std::move(opened).value();
    std::printf("restored %zu indexed windows over %zu series "
                "(window %zu, tree height %zu)\n",
                engine->num_indexed_windows(), engine->dataset().size(),
                engine->config().window, engine->tree().height());
  } else {
    std::printf("no saved index; building one under %s/ ...\n", dir.c_str());
    tsss::core::EngineConfig config;
    config.window = 64;
    config.storage_dir = dir;
    auto created = tsss::core::SearchEngine::Create(config);
    if (!created.ok()) return Fail(created.status());
    engine = std::move(created).value();

    tsss::seq::StockMarketConfig market_config;
    market_config.num_companies = 80;
    market_config.values_per_company = 400;
    const auto market = tsss::seq::GenerateStockMarket(market_config);
    if (auto s = engine->BulkBuild(market); !s.ok()) return Fail(s);
    if (auto s = engine->Checkpoint(); !s.ok()) return Fail(s);
    std::printf("built and checkpointed %zu windows\n",
                engine->num_indexed_windows());
  }

  // Query: the most recent window of the last series.
  const auto last_id =
      static_cast<tsss::storage::SeriesId>(engine->dataset().size() - 1);
  auto values = engine->dataset().Values(last_id);
  if (!values.ok()) return Fail(values.status());
  const std::size_t n = engine->config().window;
  const tsss::geom::Vec query(values->end() - static_cast<std::ptrdiff_t>(n),
                              values->end());

  auto matches = engine->RangeQuery(query, 0.4);
  if (!matches.ok()) return Fail(matches.status());
  std::printf("query on the latest window: %zu match(es)\n", matches->size());

  // Simulate one more trading day arriving, then persist it.
  const double last_price = values->back();
  const double next_price = last_price * 1.01;
  if (auto s = engine->Append(last_id, std::span<const double>(&next_price, 1));
      !s.ok()) {
    return Fail(s);
  }
  if (auto s = engine->Checkpoint(); !s.ok()) return Fail(s);
  std::printf("appended one price (%.2f) and checkpointed; "
              "%zu windows now indexed.\n",
              next_price, engine->num_indexed_windows());
  std::printf("run me again to reopen this state.\n");
  return 0;
}
