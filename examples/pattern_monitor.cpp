// Pattern monitor: exercises the *dynamic* side of the index (Section 3,
// requirement 2: "the indexing structure should also be dynamic in order to
// cope with frequent and regular data insertion").
//
// Simulates a live market: every "day" new closing prices arrive for all
// stocks and are appended to the engine (indexing only the newly completed
// windows), then a standing alert pattern - a sharp V-shaped reversal - is
// searched for among the windows that just formed.

#include <cmath>
#include <cstdio>
#include <vector>

#include "tsss/core/engine.h"
#include "tsss/seq/stock_generator.h"

namespace {

/// The alert pattern: a V-shaped reversal (fall then recovery) of unit
/// depth. Scale-shift search finds it at *any* depth and price level.
tsss::geom::Vec VPattern(std::size_t n) {
  tsss::geom::Vec v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    v[i] = std::fabs(t - 0.5) * 2.0;  // 1 -> 0 -> 1
  }
  return v;
}

}  // namespace

int main() {
  constexpr std::size_t kWindow = 32;
  constexpr std::size_t kCompanies = 60;
  constexpr std::size_t kWarmupDays = 100;
  constexpr std::size_t kLiveDays = 40;

  tsss::core::EngineConfig config;
  config.window = kWindow;
  config.reduced_dim = 6;
  auto engine = tsss::core::SearchEngine::Create(config);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  // Warm-up history. (Dense packing in the sequence store means appends go
  // to the most recent series, so this demo streams one ticker live and
  // keeps the others as static history.)
  tsss::seq::StockMarketConfig market_config;
  market_config.num_companies = kCompanies;
  market_config.values_per_company = kWarmupDays + kLiveDays;
  const auto market = tsss::seq::GenerateStockMarket(market_config);

  for (std::size_t i = 0; i + 1 < kCompanies; ++i) {
    if (auto s = (*engine)->AddSeries(market[i].name, market[i].values); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.status().ToString().c_str());
      return 1;
    }
  }
  // The live ticker starts with only its warm-up history.
  const auto& live = market[kCompanies - 1];
  const tsss::geom::Vec warmup(live.values.begin(),
                               live.values.begin() + kWarmupDays);
  auto live_id = (*engine)->AddSeries(live.name, warmup);
  if (!live_id.ok()) {
    std::fprintf(stderr, "%s\n", live_id.status().ToString().c_str());
    return 1;
  }

  const tsss::geom::Vec alert = VPattern(kWindow);
  std::printf("monitoring %s for V-reversals over %zu live days "
              "(%zu windows indexed at start)\n\n",
              live.name.c_str(), kLiveDays, (*engine)->num_indexed_windows());

  // The live feed: generator prices, with a 15%-deep V-shaped crash-and-
  // recover injected at days 4..35 so the monitor has something to catch.
  std::vector<double> feed(live.values.begin() + kWarmupDays, live.values.end());
  {
    const double level = feed[3];
    const tsss::geom::Vec shape = VPattern(kWindow);
    for (std::size_t k = 0; k < kWindow && 4 + k < feed.size(); ++k) {
      feed[4 + k] = level * (1.0 - 0.15 * (1.0 - shape[k]));
    }
  }

  std::size_t alerts = 0;
  for (std::size_t day = 0; day < kLiveDays; ++day) {
    // One new closing price arrives.
    const double price = feed[day];
    if (auto s = (*engine)->Append(*live_id, std::span<const double>(&price, 1));
        !s.ok()) {
      std::fprintf(stderr, "append: %s\n", s.ToString().c_str());
      return 1;
    }

    // Check the window that just completed against the standing pattern.
    auto matches = (*engine)->RangeQuery(
        alert, 0.6, tsss::core::TransformCost::PositiveScale());
    if (!matches.ok()) {
      std::fprintf(stderr, "query: %s\n", matches.status().ToString().c_str());
      return 1;
    }
    for (const tsss::core::Match& m : *matches) {
      // Only report the freshest window of the live ticker.
      if (m.series == *live_id &&
          m.offset + kWindow == kWarmupDays + day + 1) {
        std::printf("day %3zu: V-reversal on %s (depth %.2f HKD, level %.2f, "
                    "residual %.3f)\n",
                    kWarmupDays + day, live.name.c_str(), m.transform.scale,
                    m.transform.offset, m.distance);
        ++alerts;
      }
    }
  }
  std::printf("\n%zu alert(s); %zu windows indexed at end.\n", alerts,
              (*engine)->num_indexed_windows());
  return 0;
}
