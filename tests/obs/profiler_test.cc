// SamplingProfiler tests: SIGPROF samples land in the phase that is
// burning CPU, the phase partition sums exactly to the sample count,
// Start/Stop are idempotent, the single-instance guard holds, ring
// saturation counts drops instead of losing the profile, and (for the TSan
// job) start/stop stays clean while query threads run underneath.

#include "tsss/obs/profiler.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include <gtest/gtest.h>

#include "tsss/obs/trace.h"

namespace tsss::obs {
namespace {

/// Burns CPU until the profiler has captured at least `min_samples` or the
/// wall deadline passes (ITIMER_PROF ticks on CPU time, so a loaded CI
/// machine only stretches the wall clock, never starves the samples).
/// Returns a live value so the loop cannot fold away.
std::uint64_t BurnUntil(const SamplingProfiler& profiler,
                        std::uint64_t min_samples, double max_wall_s = 30.0) {
  volatile std::uint64_t sink = 1;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(max_wall_s);
  while (profiler.captured() < min_samples &&
         std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 50'000; ++i) sink = sink * 2862933555777941757ull + 3;
  }
  return sink;
}

TEST(ProfilerTest, StopWithoutStartReturnsEmptyProfile) {
  SamplingProfiler profiler;
  EXPECT_FALSE(profiler.running());
  const Profile profile = profiler.Stop();
  EXPECT_EQ(profile.samples, 0u);
  EXPECT_TRUE(profile.phases.empty());
  EXPECT_TRUE(profile.folded.empty());
}

TEST(ProfilerTest, SamplesLandInTheActivePhase) {
  SamplingProfiler::Options options;
  options.hz = 500;
  SamplingProfiler profiler(options);
  ASSERT_TRUE(profiler.Start().ok());
  {
    TraceSpan span("burn_phase");
    BurnUntil(profiler, 25);
  }
  const Profile profile = profiler.Stop();
  ASSERT_GE(profile.samples, 25u);

  std::uint64_t phase_total = 0;
  std::uint64_t burn_samples = 0;
  for (const ProfilePhase& phase : profile.phases) {
    phase_total += phase.samples;
    if (phase.name == "burn_phase") burn_samples = phase.samples;
  }
  // The partition identity the schema checker also enforces.
  EXPECT_EQ(phase_total, profile.samples);
  // All CPU burned inside the span; a stray sample may land before/after.
  EXPECT_GT(burn_samples, profile.samples / 2)
      << "burn_phase got " << burn_samples << " of " << profile.samples;

  std::uint64_t folded_total = 0;
  for (const ProfileStack& stack : profile.folded) {
    folded_total += stack.samples;
  }
  EXPECT_EQ(folded_total, profile.samples);
}

TEST(ProfilerTest, StartAndStopAreIdempotent) {
  SamplingProfiler::Options options;
  options.hz = 200;
  SamplingProfiler profiler(options);
  ASSERT_TRUE(profiler.Start().ok());
  EXPECT_TRUE(profiler.Start().ok());  // already running: OK, not an error
  EXPECT_TRUE(profiler.running());
  BurnUntil(profiler, 3);
  const Profile first = profiler.Stop();
  EXPECT_FALSE(profiler.running());
  const Profile second = profiler.Stop();  // returns the last aggregation
  EXPECT_EQ(second.samples, first.samples);
  EXPECT_EQ(second.phases.size(), first.phases.size());
}

TEST(ProfilerTest, SecondInstanceIsRejectedWhileFirstRuns) {
  SamplingProfiler first;
  SamplingProfiler second;
  ASSERT_TRUE(first.Start().ok());
  const Status status = second.Start();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  first.Stop();
  // The slot frees on Stop: a new run may claim it.
  EXPECT_TRUE(second.Start().ok());
  second.Stop();
}

TEST(ProfilerTest, RingSaturationCountsDropsNotCorruption) {
  SamplingProfiler::Options options;
  options.hz = 1000;
  options.ring_slots = 8;
  SamplingProfiler profiler(options);
  ASSERT_TRUE(profiler.Start().ok());
  // Burn well past 8 samples' worth of CPU; the ring fills and the rest
  // must be counted as dropped, not written anywhere.
  volatile std::uint64_t sink = 1;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (profiler.dropped() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 50'000; ++i) sink = sink * 2862933555777941757ull + 3;
  }
  const Profile profile = profiler.Stop();
  EXPECT_EQ(profile.samples, 8u);
  EXPECT_GT(profile.dropped, 0u);
  std::uint64_t phase_total = 0;
  for (const ProfilePhase& phase : profile.phases) {
    phase_total += phase.samples;
  }
  EXPECT_EQ(phase_total, profile.samples);
}

// TSan-job suite: start/stop the profiler while worker threads churn
// through phase-tagged CPU work. The assertions are deliberately loose —
// the point is that the handler's ring writes, the phase mirror, and
// Stop()'s aggregation hold up under the race detector.
TEST(ProfilerTsanTest, StartStopUnderConcurrentPhaseWork) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&stop] {
      volatile std::uint64_t sink = 1;
      // relaxed-ok: test shutdown flag
      while (!stop.load(std::memory_order_relaxed)) {
        TraceSpan span("tsan_phase");
        for (int i = 0; i < 10'000; ++i) {
          sink = sink * 2862933555777941757ull + 3;
        }
      }
    });
  }

  SamplingProfiler::Options options;
  options.hz = 100;
  for (int round = 0; round < 3; ++round) {
    SamplingProfiler profiler(options);
    ASSERT_TRUE(profiler.Start().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const Profile profile = profiler.Stop();
    std::uint64_t phase_total = 0;
    for (const ProfilePhase& phase : profile.phases) {
      phase_total += phase.samples;
    }
    EXPECT_EQ(phase_total, profile.samples);
  }

  // relaxed-ok: test shutdown flag
  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) worker.join();
}

}  // namespace
}  // namespace tsss::obs
