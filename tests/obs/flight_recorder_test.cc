// Flight-recorder coverage: arming/threshold semantics, ring eviction, the
// rate limiter, the schema-v1 JSON dump, the deterministic service-side
// capture path (check-budget-forced slow query), and an 8-writer stress that
// runs under TSan in CI.

#include "tsss/obs/flight_recorder.h"

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tsss/seq/stock_generator.h"
#include "tsss/service/query_service.h"

namespace tsss::obs {
namespace {

constexpr std::uint64_t kNoRateLimit =
    std::numeric_limits<std::uint64_t>::max();

FlightRecord MakeRecord(const std::string& kind) {
  FlightRecord r;
  r.kind = kind;
  r.outcome = "served";
  r.latency_us = 1234;
  r.cost.cpu_us = 10;
  return r;
}

TEST(FlightRecorderTest, ShouldCaptureFollowsArmingAndThreshold) {
  FlightRecorder recorder;
  // Disarmed: nothing qualifies, not even failures.
  EXPECT_FALSE(recorder.ShouldCapture(1000000, false));

  recorder.Arm(500);
  EXPECT_TRUE(recorder.armed());
  EXPECT_EQ(recorder.threshold_us(), 500u);
  EXPECT_TRUE(recorder.ShouldCapture(500, true));
  EXPECT_FALSE(recorder.ShouldCapture(499, true));
  EXPECT_TRUE(recorder.ShouldCapture(0, false));  // failures always qualify

  recorder.Disarm();
  EXPECT_FALSE(recorder.ShouldCapture(1000000, false));
}

TEST(FlightRecorderTest, RingOverflowEvictsOldest) {
  FlightRecorder recorder(4);
  recorder.Arm(0, kNoRateLimit);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(recorder.MaybeCapture(MakeRecord("range")));
  }
  const std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Ids are 1-based admission order; 1 and 2 were evicted, oldest first.
  EXPECT_EQ(records.front().id, 3u);
  EXPECT_EQ(records.back().id, 6u);
  EXPECT_EQ(recorder.captured(), 6u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(FlightRecorderTest, RateLimiterDropsAndCounts) {
  FlightRecorder recorder;
  recorder.Arm(0, 2);
  int stored = 0;
  for (int i = 0; i < 5; ++i) {
    if (recorder.MaybeCapture(MakeRecord("knn"))) ++stored;
  }
  // 2 per wall-clock second; the loop usually stays inside one window but
  // may straddle a boundary, which admits at most one extra pair.
  EXPECT_GE(stored, 2);
  EXPECT_LE(stored, 4);
  EXPECT_EQ(recorder.captured() + recorder.dropped(), 5u);
  EXPECT_GE(recorder.dropped(), 1u);
}

TEST(FlightRecorderTest, ClearEmptiesRingButKeepsTotals) {
  FlightRecorder recorder;
  recorder.Arm(0, kNoRateLimit);
  ASSERT_TRUE(recorder.MaybeCapture(MakeRecord("range")));
  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.captured(), 1u);
  // New captures keep counting from the old total.
  ASSERT_TRUE(recorder.MaybeCapture(MakeRecord("range")));
  EXPECT_EQ(recorder.Snapshot().front().id, 2u);
}

TEST(FlightRecorderTest, DumpJsonEmbedsExplainAndTrace) {
  FlightRecorder recorder(8);
  recorder.Arm(250, kNoRateLimit);

  FlightRecord with_all = MakeRecord("range");
  with_all.has_explain = true;
  with_all.explain.kind = "range";
  with_all.explain.entries_tested = 4;
  with_all.explain.ep_prunes = 4;  // waterfall identity: 4 == 4+0+0+0+0
  with_all.trace_json = "{\"traceEvents\":[]}\n";
  ASSERT_TRUE(recorder.MaybeCapture(std::move(with_all)));
  ASSERT_TRUE(recorder.MaybeCapture(MakeRecord("knn")));  // no explain/trace

  const std::string json = recorder.DumpJson();
  EXPECT_NE(json.find("{\"schema_version\":1,\"report\":\"flight\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"armed\":1,\"threshold_us\":250,\"capacity\":8"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"captured\":2,\"dropped\":0"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"kind\":\"range\""), std::string::npos) << json;
  // The explain document is embedded as a JSON value, not a string.
  EXPECT_NE(json.find("\"explain\":{\"schema_version\":1"), std::string::npos)
      << json;
  // The trailing newline of the embedded trace document is trimmed.
  EXPECT_NE(json.find("\"trace\":{\"traceEvents\":[]}}"), std::string::npos)
      << json;
  // The second record carries neither.
  EXPECT_NE(json.find("\"explain\":null,\"trace\":null"), std::string::npos)
      << json;
  EXPECT_EQ(json.find("\\n{\\\"traceEvents\\\""), std::string::npos) << json;
}

// --- Service-side capture path ---------------------------------------------

core::EngineConfig SmallEngineConfig() {
  core::EngineConfig config;
  config.window = 16;
  config.reduced_dim = 4;
  config.tree.max_entries = 8;
  config.buffer_pool_pages = 256;
  return config;
}

std::unique_ptr<core::SearchEngine> MakeEngine() {
  auto engine = core::SearchEngine::Create(SmallEngineConfig());
  EXPECT_TRUE(engine.ok());
  seq::StockMarketConfig market;
  market.num_companies = 12;
  market.values_per_company = 200;
  market.seed = 7;
  for (const seq::TimeSeries& series : seq::GenerateStockMarket(market)) {
    EXPECT_TRUE((*engine)->AddSeries(series.name, series.values).ok());
  }
  return std::move(engine).value();
}

service::QueryRequest RangeRequest(const core::SearchEngine& engine) {
  service::QueryRequest request;
  request.kind = service::QueryKind::kRange;
  auto window = engine.ReadWindow(0);
  EXPECT_TRUE(window.ok());
  request.query = *window;
  request.eps = 5.0;
  return request;
}

/// RAII guard: tests of the process-wide recorder must leave it disarmed and
/// empty for whatever runs next in this binary.
struct GlobalRecorderGuard {
  GlobalRecorderGuard() { FlightRecorder::Global().Clear(); }
  ~GlobalRecorderGuard() {
    FlightRecorder::Global().Disarm();
    FlightRecorder::Global().Clear();
  }
};

TEST(FlightRecorderServiceTest, CheckBudgetForcesExactlyOneTimedOutCapture) {
  GlobalRecorderGuard guard;
  auto engine = MakeEngine();
  // Threshold far beyond any test query: only not-OK completions qualify.
  FlightRecorder::Global().Arm(60'000'000, kNoRateLimit);

  service::ServiceConfig config;
  config.num_workers = 1;
  auto query_service = service::QueryService::Create(engine.get(), config);
  ASSERT_TRUE(query_service.ok());

  // A healthy query completes OK and is not captured.
  auto ok_future = (*query_service)->Submit(RangeRequest(*engine));
  ASSERT_TRUE(ok_future.ok());
  ASSERT_TRUE(ok_future->get().status.ok());
  EXPECT_TRUE(FlightRecorder::Global().Snapshot().empty());

  // The check budget trips the deadline at the first poll site — a
  // deterministic "slow query" with no wall clock involved.
  service::QueryRequest slow = RangeRequest(*engine);
  slow.check_budget = 1;
  auto slow_future = (*query_service)->Submit(std::move(slow));
  ASSERT_TRUE(slow_future.ok());
  const service::QueryResponse response = slow_future->get();
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);

  const std::vector<FlightRecord> records =
      FlightRecorder::Global().Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, "range");
  EXPECT_EQ(records[0].outcome, "timed_out");
  EXPECT_GT(records[0].latency_us, 0u);
  // The query unwound before the engine filled stats, so the explain totals
  // must match the (empty) telemetry the response actually carries.
  ASSERT_TRUE(records[0].has_explain);
  EXPECT_EQ(records[0].explain.entries_tested,
            response.stats.telemetry.entries_tested);
  EXPECT_TRUE(explain_accounted(records[0].explain));
  // Armed ⇒ the query ran under a trace; the capture carries it.
  EXPECT_NE(records[0].trace_json.find("\"traceEvents\""), std::string::npos);
}

TEST(FlightRecorderServiceTest, CapturedExplainTotalsMatchQueryStats) {
  GlobalRecorderGuard guard;
  auto engine = MakeEngine();
  FlightRecorder::Global().Arm(0, kNoRateLimit);  // capture every completion

  service::ServiceConfig config;
  config.num_workers = 1;
  auto query_service = service::QueryService::Create(engine.get(), config);
  ASSERT_TRUE(query_service.ok());
  auto future = (*query_service)->Submit(RangeRequest(*engine));
  ASSERT_TRUE(future.ok());
  const service::QueryResponse response = future->get();
  ASSERT_TRUE(response.status.ok());

  const std::vector<FlightRecord> records =
      FlightRecorder::Global().Snapshot();
  ASSERT_EQ(records.size(), 1u);
  const FlightRecord& record = records[0];
  EXPECT_EQ(record.outcome, "served");
  ASSERT_TRUE(record.has_explain);

  // The explain report is derived from this query's own stats; its totals
  // must agree with the telemetry the response carries, field by field.
  const QueryTelemetry& t = response.stats.telemetry;
  EXPECT_EQ(record.explain.entries_tested, t.entries_tested);
  EXPECT_EQ(record.explain.ep_prunes, t.ep_prunes);
  EXPECT_EQ(record.explain.bs_prunes, t.bs_prunes);
  EXPECT_EQ(record.explain.exact_prunes, t.exact_prunes);
  EXPECT_EQ(record.explain.nodes_visited, t.nodes_visited);
  EXPECT_EQ(record.explain.leaf_candidates, t.leaf_candidates);
  EXPECT_EQ(record.explain.mbr_distance_evals, t.mbr_distance_evals);
  EXPECT_TRUE(explain_accounted(record.explain));

  // Cost flows through unchanged, and the trace produced explain phases.
  EXPECT_EQ(record.cost.cpu_us, response.stats.cost.cpu_us);
  EXPECT_EQ(record.cost.pages_hit, response.stats.cost.pages_hit);
  EXPECT_EQ(record.cost.pages_miss, response.stats.cost.pages_miss);
  EXPECT_EQ(record.cost.candidates_verified,
            response.stats.cost.candidates_verified);
  EXPECT_FALSE(record.explain.phases.empty());
  EXPECT_EQ(record.latency_us,
            static_cast<std::uint64_t>(response.latency.count()));
}

// --- Concurrency (runs under TSan in CI: FlightRecorder*) -------------------

TEST(FlightRecorderStressTest, EightWritersWithConcurrentReaders) {
  FlightRecorder recorder(32);
  recorder.Arm(0, kNoRateLimit);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        FlightRecord r;
        r.kind = "range";
        r.outcome = "served";
        r.latency_us = static_cast<std::uint64_t>(t * kPerThread + i);
        recorder.MaybeCapture(std::move(r));
        if (i % 256 == 0) {
          (void)recorder.Snapshot();
          (void)recorder.DumpJson();
        }
        if (i % 512 == 0) {
          // Re-arm races against writers and the lock-free ShouldCapture.
          recorder.Arm(static_cast<std::uint64_t>(i), kNoRateLimit);
          (void)recorder.ShouldCapture(static_cast<std::uint64_t>(i), true);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Arm() resets the rate window but never the id counter: every admission
  // is still accounted for and ids stay strictly increasing.
  EXPECT_EQ(recorder.captured() + recorder.dropped(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 32u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].id, records[i].id);
  }
}

}  // namespace
}  // namespace tsss::obs
