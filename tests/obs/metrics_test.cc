#include "tsss/obs/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace tsss::obs {
namespace {

TEST(ObsMetricsRegistryTest, SameNameReturnsSameInstance) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests", "Requests served");
  Counter* b = registry.GetCounter("requests");
  EXPECT_EQ(a, b);
  a->Inc(3);
  EXPECT_EQ(b->Value(), 3u);

  Gauge* g1 = registry.GetGauge("depth");
  Gauge* g2 = registry.GetGauge("depth");
  EXPECT_EQ(g1, g2);

  LatencyHistogram* h1 = registry.GetHistogram("latency");
  LatencyHistogram* h2 = registry.GetHistogram("latency");
  EXPECT_EQ(h1, h2);
}

TEST(ObsMetricsRegistryTest, HelpComesFromFirstRegistration) {
  MetricsRegistry registry;
  registry.GetCounter("c", "the first help");
  registry.GetCounter("c", "a different help");
  const auto samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].help, "the first help");
}

TEST(ObsMetricsRegistryTest, SnapshotIsSortedWithinKinds) {
  MetricsRegistry registry;
  registry.GetCounter("zz")->Inc(1);
  registry.GetCounter("aa")->Inc(2);
  registry.GetGauge("mm")->Set(-7);
  registry.GetHistogram("hh")->RecordUs(50);

  const auto samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "aa");
  EXPECT_EQ(samples[0].kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(samples[0].counter_value, 2u);
  EXPECT_EQ(samples[1].name, "zz");
  EXPECT_EQ(samples[1].counter_value, 1u);
  EXPECT_EQ(samples[2].name, "mm");
  EXPECT_EQ(samples[2].kind, MetricSample::Kind::kGauge);
  EXPECT_EQ(samples[2].gauge_value, -7);
  EXPECT_EQ(samples[3].name, "hh");
  EXPECT_EQ(samples[3].kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(samples[3].hist_count, 1u);
  EXPECT_EQ(samples[3].hist_sum_us, 50u);
}

TEST(ObsMetricsRegistryTest, GlobalReturnsOneProcessWideInstance) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(ObsMetricsRegistryTest, PrometheusExportGolden) {
  MetricsRegistry registry;
  registry.GetCounter("test_count", "A count")->Inc(3);
  registry.GetGauge("test_depth", "Queue depth")->Set(-5);
  // One 1000us sample: bucket floor 896us, so every quantile reports 896us.
  registry.GetHistogram("test_latency", "Latency")->RecordUs(1000);

  const std::string expected =
      "# HELP test_count A count\n"
      "# TYPE test_count counter\n"
      "test_count 3\n"
      "# HELP test_depth Queue depth\n"
      "# TYPE test_depth gauge\n"
      "test_depth -5\n"
      "# HELP test_latency Latency\n"
      "# TYPE test_latency summary\n"
      "test_latency{quantile=\"0.5\"} 0.000896\n"
      "test_latency{quantile=\"0.9\"} 0.000896\n"
      "test_latency{quantile=\"0.99\"} 0.000896\n"
      "test_latency_sum 0.001000\n"
      "test_latency_count 1\n";
  EXPECT_EQ(ExportPrometheus(registry.Snapshot()), expected);
}

TEST(ObsMetricsRegistryTest, PrometheusExportOmitsEmptyHelp) {
  MetricsRegistry registry;
  registry.GetCounter("bare")->Inc();
  EXPECT_EQ(ExportPrometheus(registry.Snapshot()),
            "# TYPE bare counter\n"
            "bare 1\n");
}

TEST(ObsMetricsRegistryTest, JsonExportGolden) {
  MetricsRegistry registry;
  registry.GetCounter("test_count", "A count")->Inc(3);
  registry.GetGauge("test_depth", "Queue depth")->Set(-5);
  registry.GetHistogram("test_latency", "Latency")->RecordUs(1000);

  const std::string expected =
      "{\"counters\":{\"test_count\":3},"
      "\"gauges\":{\"test_depth\":-5},"
      "\"histograms\":{\"test_latency\":{\"count\":1,\"sum_us\":1000,"
      "\"p50_ms\":0.896000,\"p90_ms\":0.896000,\"p99_ms\":0.896000}}}\n";
  EXPECT_EQ(ExportJson(registry.Snapshot()), expected);
}

/// The sharded-engine registry shape: one base name fanned out across
/// shard="i" labels (counters since PR 7, cost histograms since this PR).
/// Byte-exact coverage of how labels flow through both exporters.
TEST(ObsMetricsRegistryTest, PrometheusExportShardLabelGolden) {
  MetricsRegistry registry;
  registry.GetCounter(WithLabel("pool_hits_total", "shard", "0"), "Pool hits")
      ->Inc(120);
  registry.GetCounter(WithLabel("pool_hits_total", "shard", "1"), "Pool hits")
      ->Inc(80);
  registry
      .GetHistogram(WithLabel("query_cost_cpu", "shard", "0"), "Query CPU")
      ->RecordUs(1000);
  registry
      .GetHistogram(WithLabel("query_cost_cpu", "shard", "1"), "Query CPU")
      ->RecordUs(1000);

  // One HELP/TYPE header per base name covers every labelled variant;
  // histogram labels merge into the quantile label set and trail _sum/_count.
  const std::string expected =
      "# HELP pool_hits_total Pool hits\n"
      "# TYPE pool_hits_total counter\n"
      "pool_hits_total{shard=\"0\"} 120\n"
      "pool_hits_total{shard=\"1\"} 80\n"
      "# HELP query_cost_cpu Query CPU\n"
      "# TYPE query_cost_cpu summary\n"
      "query_cost_cpu{shard=\"0\",quantile=\"0.5\"} 0.000896\n"
      "query_cost_cpu{shard=\"0\",quantile=\"0.9\"} 0.000896\n"
      "query_cost_cpu{shard=\"0\",quantile=\"0.99\"} 0.000896\n"
      "query_cost_cpu_sum{shard=\"0\"} 0.001000\n"
      "query_cost_cpu_count{shard=\"0\"} 1\n"
      "query_cost_cpu{shard=\"1\",quantile=\"0.5\"} 0.000896\n"
      "query_cost_cpu{shard=\"1\",quantile=\"0.9\"} 0.000896\n"
      "query_cost_cpu{shard=\"1\",quantile=\"0.99\"} 0.000896\n"
      "query_cost_cpu_sum{shard=\"1\"} 0.001000\n"
      "query_cost_cpu_count{shard=\"1\"} 1\n";
  EXPECT_EQ(ExportPrometheus(registry.Snapshot()), expected);
}

TEST(ObsMetricsRegistryTest, JsonExportShardLabelGolden) {
  MetricsRegistry registry;
  registry.GetCounter(WithLabel("pool_hits_total", "shard", "0"))->Inc(120);
  registry.GetCounter(WithLabel("pool_hits_total", "shard", "1"))->Inc(80);
  registry.GetHistogram(WithLabel("query_cost_cpu", "shard", "0"))
      ->RecordUs(1000);

  // JSON keeps the full labelled name as the key (quotes escaped).
  const std::string expected =
      "{\"counters\":{\"pool_hits_total{shard=\\\"0\\\"}\":120,"
      "\"pool_hits_total{shard=\\\"1\\\"}\":80},"
      "\"gauges\":{},"
      "\"histograms\":{\"query_cost_cpu{shard=\\\"0\\\"}\":{\"count\":1,"
      "\"sum_us\":1000,\"p50_ms\":0.896000,\"p90_ms\":0.896000,"
      "\"p99_ms\":0.896000}}}\n";
  EXPECT_EQ(ExportJson(registry.Snapshot()), expected);
}

TEST(ObsMetricsRegistryTest, JsonExportEmptyRegistry) {
  MetricsRegistry registry;
  EXPECT_EQ(ExportJson(registry.Snapshot()),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}\n");
}

TEST(ObsMetricsRegistryTest, EightThreadConcurrencyIsLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Every thread registers the shared metrics itself (exercising the
      // registration path concurrently) and hammers them; snapshots run
      // concurrently with the updates.
      Counter* shared = registry.GetCounter("shared");
      Counter* own = registry.GetCounter("thread_" + std::to_string(t));
      Gauge* gauge = registry.GetGauge("gauge");
      LatencyHistogram* hist = registry.GetHistogram("hist");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        shared->Inc();
        own->Inc();
        gauge->Add(1);
        hist->RecordUs(i % 1000);
        if (i % 4096 == 0) (void)registry.Snapshot();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(registry.GetCounter("shared")->Value(), kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.GetCounter("thread_" + std::to_string(t))->Value(),
              kPerThread);
  }
  EXPECT_EQ(registry.GetGauge("gauge")->Value(),
            static_cast<std::int64_t>(kThreads * kPerThread));
  EXPECT_EQ(registry.GetHistogram("hist")->Count(), kThreads * kPerThread);
}

}  // namespace
}  // namespace tsss::obs
