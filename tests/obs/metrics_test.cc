#include "tsss/obs/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace tsss::obs {
namespace {

TEST(ObsMetricsRegistryTest, SameNameReturnsSameInstance) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests", "Requests served");
  Counter* b = registry.GetCounter("requests");
  EXPECT_EQ(a, b);
  a->Inc(3);
  EXPECT_EQ(b->Value(), 3u);

  Gauge* g1 = registry.GetGauge("depth");
  Gauge* g2 = registry.GetGauge("depth");
  EXPECT_EQ(g1, g2);

  LatencyHistogram* h1 = registry.GetHistogram("latency");
  LatencyHistogram* h2 = registry.GetHistogram("latency");
  EXPECT_EQ(h1, h2);
}

TEST(ObsMetricsRegistryTest, HelpComesFromFirstRegistration) {
  MetricsRegistry registry;
  registry.GetCounter("c", "the first help");
  registry.GetCounter("c", "a different help");
  const auto samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].help, "the first help");
}

TEST(ObsMetricsRegistryTest, SnapshotIsSortedWithinKinds) {
  MetricsRegistry registry;
  registry.GetCounter("zz")->Inc(1);
  registry.GetCounter("aa")->Inc(2);
  registry.GetGauge("mm")->Set(-7);
  registry.GetHistogram("hh")->RecordUs(50);

  const auto samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "aa");
  EXPECT_EQ(samples[0].kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(samples[0].counter_value, 2u);
  EXPECT_EQ(samples[1].name, "zz");
  EXPECT_EQ(samples[1].counter_value, 1u);
  EXPECT_EQ(samples[2].name, "mm");
  EXPECT_EQ(samples[2].kind, MetricSample::Kind::kGauge);
  EXPECT_EQ(samples[2].gauge_value, -7);
  EXPECT_EQ(samples[3].name, "hh");
  EXPECT_EQ(samples[3].kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(samples[3].hist_count, 1u);
  EXPECT_EQ(samples[3].hist_sum_us, 50u);
}

TEST(ObsMetricsRegistryTest, GlobalReturnsOneProcessWideInstance) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(ObsMetricsRegistryTest, PrometheusExportGolden) {
  MetricsRegistry registry;
  registry.GetCounter("test_count", "A count")->Inc(3);
  registry.GetGauge("test_depth", "Queue depth")->Set(-5);
  // One 1000us sample: bucket floor 896us, so every quantile reports 896us.
  registry.GetHistogram("test_latency", "Latency")->RecordUs(1000);

  const std::string expected =
      "# HELP test_count A count\n"
      "# TYPE test_count counter\n"
      "test_count 3\n"
      "# HELP test_depth Queue depth\n"
      "# TYPE test_depth gauge\n"
      "test_depth -5\n"
      "# HELP test_latency Latency\n"
      "# TYPE test_latency summary\n"
      "test_latency{quantile=\"0.5\"} 0.000896\n"
      "test_latency{quantile=\"0.9\"} 0.000896\n"
      "test_latency{quantile=\"0.99\"} 0.000896\n"
      "test_latency_sum 0.001000\n"
      "test_latency_count 1\n";
  EXPECT_EQ(ExportPrometheus(registry.Snapshot()), expected);
}

TEST(ObsMetricsRegistryTest, PrometheusExportOmitsEmptyHelp) {
  MetricsRegistry registry;
  registry.GetCounter("bare")->Inc();
  EXPECT_EQ(ExportPrometheus(registry.Snapshot()),
            "# TYPE bare counter\n"
            "bare 1\n");
}

TEST(ObsMetricsRegistryTest, JsonExportGolden) {
  MetricsRegistry registry;
  registry.GetCounter("test_count", "A count")->Inc(3);
  registry.GetGauge("test_depth", "Queue depth")->Set(-5);
  registry.GetHistogram("test_latency", "Latency")->RecordUs(1000);

  const std::string expected =
      "{\"counters\":{\"test_count\":3},"
      "\"gauges\":{\"test_depth\":-5},"
      "\"histograms\":{\"test_latency\":{\"count\":1,\"sum_us\":1000,"
      "\"p50_ms\":0.896000,\"p90_ms\":0.896000,\"p99_ms\":0.896000}}}\n";
  EXPECT_EQ(ExportJson(registry.Snapshot()), expected);
}

TEST(ObsMetricsRegistryTest, JsonExportEmptyRegistry) {
  MetricsRegistry registry;
  EXPECT_EQ(ExportJson(registry.Snapshot()),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}\n");
}

TEST(ObsMetricsRegistryTest, EightThreadConcurrencyIsLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Every thread registers the shared metrics itself (exercising the
      // registration path concurrently) and hammers them; snapshots run
      // concurrently with the updates.
      Counter* shared = registry.GetCounter("shared");
      Counter* own = registry.GetCounter("thread_" + std::to_string(t));
      Gauge* gauge = registry.GetGauge("gauge");
      LatencyHistogram* hist = registry.GetHistogram("hist");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        shared->Inc();
        own->Inc();
        gauge->Add(1);
        hist->RecordUs(i % 1000);
        if (i % 4096 == 0) (void)registry.Snapshot();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(registry.GetCounter("shared")->Value(), kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.GetCounter("thread_" + std::to_string(t))->Value(),
              kPerThread);
  }
  EXPECT_EQ(registry.GetGauge("gauge")->Value(),
            static_cast<std::int64_t>(kThreads * kPerThread));
  EXPECT_EQ(registry.GetHistogram("hist")->Count(), kThreads * kPerThread);
}

}  // namespace
}  // namespace tsss::obs
