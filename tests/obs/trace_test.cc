#include "tsss/obs/trace.h"

#include <string>

#include <gtest/gtest.h>

#include "tsss/obs/query_telemetry.h"

namespace tsss::obs {
namespace {

TEST(ObsTraceTest, NoTraceInstalledByDefault) {
  EXPECT_EQ(CurrentQueryTrace(), nullptr);
  // Spans and annotations are harmless no-ops with tracing off.
  TraceSpan span("noop");
  span.Annotate("key", 1);
  span.Close();
}

TEST(ObsTraceTest, ScopedInstallAndNestedRestore) {
  QueryTrace outer;
  QueryTrace inner;
  EXPECT_EQ(CurrentQueryTrace(), nullptr);
  {
    ScopedQueryTrace install_outer(&outer);
    EXPECT_EQ(CurrentQueryTrace(), &outer);
    {
      ScopedQueryTrace install_inner(&inner);
      EXPECT_EQ(CurrentQueryTrace(), &inner);
    }
    EXPECT_EQ(CurrentQueryTrace(), &outer);
  }
  EXPECT_EQ(CurrentQueryTrace(), nullptr);
}

TEST(ObsTraceTest, SpansNestWithParentsAndDepths) {
  QueryTrace trace;
  {
    ScopedQueryTrace install(&trace);
    TraceSpan root("query");
    {
      TraceSpan child("filter");
      { TraceSpan grandchild("load_node"); }
    }
    TraceSpan sibling("verify");
  }

  const auto& events = trace.events();
  ASSERT_EQ(events.size(), 4u);
  // Events are recorded in open order.
  EXPECT_EQ(events[0].name, "query");
  EXPECT_EQ(events[0].parent, TraceEvent::kNoParent);
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].name, "filter");
  EXPECT_EQ(events[1].parent, 0u);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "load_node");
  EXPECT_EQ(events[2].parent, 1u);
  EXPECT_EQ(events[2].depth, 2);
  EXPECT_EQ(events[3].name, "verify");
  EXPECT_EQ(events[3].parent, 0u);
  EXPECT_EQ(events[3].depth, 1);
  for (const TraceEvent& event : events) {
    EXPECT_TRUE(event.closed) << event.name;
  }
  // Start times never run backwards within the trace.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_us, events[i - 1].start_us);
  }
  // A child's duration fits inside its parent's.
  EXPECT_LE(events[1].start_us + events[1].dur_us,
            events[0].start_us + events[0].dur_us);
}

TEST(ObsTraceTest, EarlyCloseMakesDisjointPhases) {
  QueryTrace trace;
  {
    ScopedQueryTrace install(&trace);
    TraceSpan query("query");
    TraceSpan phase1("phase1");
    phase1.Close();
    TraceSpan phase2("phase2");  // sibling of phase1, not a child
    phase2.Close();
  }
  const auto& events = trace.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].name, "phase1");
  EXPECT_EQ(events[2].name, "phase2");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 1);
  EXPECT_EQ(events[2].parent, 0u);
  // Double close (explicit Close then destructor) left the durations alone.
  EXPECT_TRUE(events[1].closed);
  EXPECT_TRUE(events[2].closed);
}

TEST(ObsTraceTest, ClosingParentUnwindsOpenChildren) {
  QueryTrace trace;
  const std::size_t parent = trace.OpenSpan("parent");
  const std::size_t child = trace.OpenSpan("child");
  trace.CloseSpan(parent);  // child still open: unwound and closed too
  EXPECT_TRUE(trace.events()[child].closed);
  EXPECT_TRUE(trace.events()[parent].closed);
  // Closing again is a no-op.
  trace.CloseSpan(parent);
  trace.CloseSpan(999);  // out of range: ignored
}

TEST(ObsTraceTest, AnnotateAttachesArgs) {
  QueryTrace trace;
  {
    ScopedQueryTrace install(&trace);
    TraceSpan span("query");
    span.Annotate("candidates", 42);
    span.Annotate("matches", 7);
  }
  const auto& events = trace.events();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].first, "candidates");
  EXPECT_EQ(events[0].args[0].second, 42u);
  EXPECT_EQ(events[0].args[1].first, "matches");
  EXPECT_EQ(events[0].args[1].second, 7u);
}

TEST(ObsTraceTest, ChromeJsonFormat) {
  QueryTrace trace;
  {
    ScopedQueryTrace install(&trace);
    TraceSpan span("range_query");
    span.Annotate("leaf_hits", 5);
    { TraceSpan inner("index \"filter\""); }  // name needing escaping
  }
  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"range_query\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"leaf_hits\":5}"), std::string::npos);
  EXPECT_NE(json.find("index \\\"filter\\\""), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

TEST(ObsTraceTest, StillOpenSpansGetDurationAsOfNow) {
  QueryTrace trace;
  trace.OpenSpan("open_forever");
  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"name\":\"open_forever\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST(ObsTelemetryTest, TicksAreNoopsWhenUninstalled) {
  EXPECT_EQ(CurrentQueryTelemetry(), nullptr);
  TickNodeVisit(0);
  TickMbrDistanceEvals(3);
  TickLeafCandidates();
  EXPECT_EQ(CurrentQueryTelemetry(), nullptr);
}

TEST(ObsTelemetryTest, ScopedInstallCollectsTicks) {
  QueryTelemetry telemetry;
  {
    ScopedQueryTelemetry install(&telemetry);
    ASSERT_EQ(CurrentQueryTelemetry(), &telemetry);
    TickNodeVisit(2);
    TickNodeVisit(0);
    TickMbrDistanceEvals(4);
    TickLeafCandidates(2);
  }
  EXPECT_EQ(CurrentQueryTelemetry(), nullptr);
  EXPECT_EQ(telemetry.nodes_visited, 2u);
  EXPECT_EQ(telemetry.nodes_per_level[0], 1u);
  EXPECT_EQ(telemetry.nodes_per_level[2], 1u);
  EXPECT_EQ(telemetry.mbr_distance_evals, 4u);
  EXPECT_EQ(telemetry.leaf_candidates, 2u);

  telemetry.Reset();
  EXPECT_EQ(telemetry.nodes_visited, 0u);
}

TEST(ObsTelemetryTest, DeepLevelsFoldIntoLastSlot) {
  QueryTelemetry telemetry;
  ScopedQueryTelemetry install(&telemetry);
  TickNodeVisit(QueryTelemetry::kMaxLevels + 5);
  EXPECT_EQ(telemetry.nodes_per_level[QueryTelemetry::kMaxLevels - 1], 1u);
}

TEST(ObsTelemetryTest, AnnotateSpanAlwaysEmitsPruneCounters) {
  // ep_prunes/bs_prunes must appear in the trace even at zero: their absence
  // would be indistinguishable from uninstrumented code.
  QueryTrace trace;
  {
    ScopedQueryTrace install(&trace);
    TraceSpan span("query");
    QueryTelemetry telemetry;  // all zeros
    AnnotateSpan(&span, telemetry);
  }
  const auto& args = trace.events()[0].args;
  bool saw_ep = false;
  bool saw_bs = false;
  for (const auto& [key, value] : args) {
    if (key == "ep_prunes") saw_ep = true;
    if (key == "bs_prunes") saw_bs = true;
  }
  EXPECT_TRUE(saw_ep);
  EXPECT_TRUE(saw_bs);
}

TEST(ObsTelemetryTest, AnnotateSpanEmitsNonZeroCounters) {
  QueryTrace trace;
  {
    ScopedQueryTrace install(&trace);
    TraceSpan span("query");
    QueryTelemetry telemetry;
    telemetry.nodes_visited = 3;
    telemetry.nodes_per_level[0] = 2;
    telemetry.nodes_per_level[1] = 1;
    telemetry.leaf_candidates = 9;
    AnnotateSpan(&span, telemetry);
  }
  const auto& args = trace.events()[0].args;
  auto find = [&args](const std::string& key) -> const std::uint64_t* {
    for (const auto& [k, v] : args) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  ASSERT_NE(find("nodes_visited"), nullptr);
  EXPECT_EQ(*find("nodes_visited"), 3u);
  ASSERT_NE(find("nodes_level_0"), nullptr);
  EXPECT_EQ(*find("nodes_level_0"), 2u);
  ASSERT_NE(find("nodes_level_1"), nullptr);
  ASSERT_NE(find("leaf_candidates"), nullptr);
  EXPECT_EQ(*find("leaf_candidates"), 9u);
  EXPECT_EQ(find("nodes_level_2"), nullptr);  // zero level stays out
}

}  // namespace
}  // namespace tsss::obs
