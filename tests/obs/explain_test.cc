// Golden-output tests for the explain renderers: a hand-filled report whose
// prune waterfall sums exactly, rendered to the documented JSON schema
// byte-for-byte and to the human table line-by-line.

#include "tsss/obs/explain.h"

#include <cstdint>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "tsss/obs/trace.h"

namespace tsss::obs {
namespace {

/// A fully-populated report over a 3-level tree. Waterfall identity:
/// 40 tested == 10 EP + 5 BS + 0 exact + 5 descents + 20 accepted.
ExplainReport GoldenReport() {
  ExplainReport r;
  r.kind = "range";
  r.eps = 0.5;
  r.k = 0;
  r.prune_strategy = "spheres";
  r.elapsed_us = 1234;

  r.tree_height = 3;
  r.tree_nodes = 13;
  r.nodes_visited = 6;
  r.levels = {{0, 4, 9}, {1, 1, 3}, {2, 1, 1}};

  r.entries_tested = 40;
  r.ep_prunes = 10;
  r.bs_prunes = 5;
  r.exact_prunes = 0;
  r.descents = 5;
  r.accepted_leaf_entries = 20;
  r.mbr_distance_evals = 20;

  r.indexed_windows = 64;
  r.leaf_candidates = 20;
  r.candidates = 24;
  r.postfiltered = 20;
  r.matches = 4;

  r.index_page_reads = 6;
  r.index_page_hits = 2;
  r.index_page_misses = 4;
  r.data_page_reads = 3;
  r.seq_scan_pages = 100;

  r.cost.cpu_us = 700;
  r.cost.pages_hit = 2;
  r.cost.pages_miss = 4;
  r.cost.data_pages = 3;
  r.cost.bytes_touched = 36864;
  r.cost.candidates_verified = 24;

  r.phases = {{"range_query", 0, 1200}, {"index_walk", 1, 800}};
  return r;
}

TEST(ExplainRenderTest, AccountedChecksTheWaterfallIdentity) {
  ExplainReport r = GoldenReport();
  EXPECT_TRUE(explain_accounted(r));
  r.ep_prunes += 1;
  EXPECT_FALSE(explain_accounted(r));
  // An empty report accounts trivially (0 == 0).
  EXPECT_TRUE(explain_accounted(ExplainReport{}));
}

TEST(ExplainRenderTest, JsonGolden) {
  const std::string json = RenderExplainJson(GoldenReport());
  const std::string expected =
      "{\"schema_version\":1,\"report\":\"explain\","
      "\"query\":{\"kind\":\"range\",\"eps\":0.5,\"k\":0,"
      "\"prune\":\"spheres\",\"elapsed_us\":1234},"
      "\"totals\":{\"tree_height\":3,\"tree_nodes\":13,\"nodes_visited\":6,"
      "\"entries_tested\":40,\"ep_prunes\":10,\"bs_prunes\":5,"
      "\"exact_prunes\":0,\"descents\":5,\"accepted_leaf_entries\":20,"
      "\"mbr_distance_evals\":20,\"indexed_windows\":64,"
      "\"leaf_candidates\":20,\"candidates\":24,\"postfiltered\":20,"
      "\"matches\":4},"
      "\"levels\":[{\"level\":0,\"visited\":4,\"total\":9},"
      "{\"level\":1,\"visited\":1,\"total\":3},"
      "{\"level\":2,\"visited\":1,\"total\":1}],"
      "\"io\":{\"index_page_reads\":6,\"index_page_hits\":2,"
      "\"index_page_misses\":4,\"data_page_reads\":3},"
      "\"baseline\":{\"seq_scan_pages\":100,\"query_pages\":9},"
      "\"cost\":{\"cpu_us\":700,\"pages_hit\":2,\"pages_miss\":4,"
      "\"data_pages\":3,\"bytes_touched\":36864,"
      "\"candidates_verified\":24},"
      "\"phases\":[{\"name\":\"range_query\",\"depth\":0,\"dur_us\":1200},"
      "{\"name\":\"index_walk\",\"depth\":1,\"dur_us\":800}]}\n";
  EXPECT_EQ(json, expected);
}

TEST(ExplainRenderTest, TextGolden) {
  const std::string text = RenderExplainText(GoldenReport());
  // Header and elapsed line.
  EXPECT_NE(text.find("EXPLAIN range query (eps=0.5, prune=spheres)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("elapsed: 1234 us"), std::string::npos) << text;
  // Index walk rendered root-first with level tags.
  const std::size_t root_pos = text.find("level 2 (root)");
  const std::size_t leaves_pos = text.find("level 0 (leaves)");
  ASSERT_NE(root_pos, std::string::npos) << text;
  ASSERT_NE(leaves_pos, std::string::npos) << text;
  EXPECT_LT(root_pos, leaves_pos);
  // Waterfall rows carry percentages of the tested universe; build the
  // expected rows with the renderer's own column formats so the goldens
  // don't depend on hand-counted spaces.
  auto row = [](const char* label, std::uint64_t value, double pct) {
    char buf[112];
    std::snprintf(buf, sizeof(buf), "  %-26s %10llu  %6.1f%%", label,
                  static_cast<unsigned long long>(value), pct);
    return std::string(buf);
  };
  EXPECT_NE(text.find(row("entries tested", 40, 100.0)), std::string::npos)
      << text;
  EXPECT_NE(text.find(row("EP pruned", 10, 25.0)), std::string::npos) << text;
  EXPECT_NE(text.find(row("BS pruned", 5, 12.5)), std::string::npos) << text;
  EXPECT_NE(text.find(row("accepted (leaf entries)", 20, 50.0)),
            std::string::npos)
      << text;
  // I/O split and scan attribution (9 pages vs a 100-page scan).
  char io_row[112];
  std::snprintf(io_row, sizeof(io_row),
                "  %-26s %10llu  (hits %llu, misses %llu)",
                "index page reads", 6ull, 2ull, 4ull);
  EXPECT_NE(text.find(io_row), std::string::npos) << text;
  EXPECT_NE(text.find("(11.11x vs scan)"), std::string::npos) << text;
  // Cost attribution section.
  char cost_row[112];
  std::snprintf(cost_row, sizeof(cost_row),
                "  %-26s %10llu  (hit %llu, miss %llu)", "index pages", 6ull,
                2ull, 4ull);
  EXPECT_NE(text.find("\ncost\n"), std::string::npos) << text;
  EXPECT_NE(text.find(cost_row), std::string::npos) << text;
  char cpu_row[96];
  std::snprintf(cpu_row, sizeof(cpu_row), "  %-26s %10llu\n",
                "thread CPU (us)", 700ull);
  EXPECT_NE(text.find(cpu_row), std::string::npos) << text;
  // Phases are indented by depth.
  EXPECT_NE(text.find("\n  range_query"), std::string::npos) << text;
  EXPECT_NE(text.find("\n    index_walk"), std::string::npos) << text;
}

TEST(ExplainRenderTest, TextHandlesEmptyUniverse) {
  ExplainReport r;
  r.kind = "knn";
  r.k = 5;
  r.prune_strategy = "eep";
  const std::string text = RenderExplainText(r);
  // A zero-entry universe renders "-" percentages, not NaNs.
  EXPECT_NE(text.find("EXPLAIN knn query (eps=0, k=5, prune=eep)"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
  EXPECT_NE(text.find("-"), std::string::npos);
}

TEST(ExplainRenderTest, FillExplainPhasesCopiesTraceSpans) {
  QueryTrace trace;
  const std::size_t outer = trace.OpenSpan("outer");
  const std::size_t inner = trace.OpenSpan("inner");
  trace.CloseSpan(inner);
  trace.CloseSpan(outer);

  ExplainReport r;
  FillExplainPhases(trace, &r);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_EQ(r.phases[0].name, "outer");
  EXPECT_EQ(r.phases[0].depth, 0);
  EXPECT_EQ(r.phases[1].name, "inner");
  EXPECT_EQ(r.phases[1].depth, 1);

  // Refilling replaces, not appends.
  FillExplainPhases(trace, &r);
  EXPECT_EQ(r.phases.size(), 2u);
}

TEST(ExplainRenderTest, JsonEscapesStrings) {
  ExplainReport r;
  r.kind = "ra\"nge";
  r.prune_strategy = "ee\\p";
  const std::string json = RenderExplainJson(r);
  EXPECT_NE(json.find("\"kind\":\"ra\\\"nge\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"prune\":\"ee\\\\p\""), std::string::npos) << json;
}

}  // namespace
}  // namespace tsss::obs
