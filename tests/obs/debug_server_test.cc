// Socket-level tests for the embedded debug HTTP server: real TCP on an
// ephemeral loopback port, exercising the endpoint table, the bounded
// fuzz-convention request parser (4xx mapping) and Shutdown semantics.

#include "tsss/obs/debug_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "tsss/obs/flight_recorder.h"
#include "tsss/obs/metrics.h"

namespace tsss::obs {
namespace {

/// Sends `raw_request` to the server and returns the full raw response
/// (Connection: close — the server closes once the body is written).
std::string RawRequest(int port, const std::string& raw_request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  std::size_t sent = 0;
  while (sent < raw_request.size()) {
    const ssize_t n = ::send(fd, raw_request.data() + sent,
                             raw_request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[2048];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return RawRequest(port,
                    "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

std::unique_ptr<DebugServer> StartOrDie() {
  DebugServer::Options options;
  options.port = 0;  // ephemeral
  auto server = DebugServer::Start(options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).value();
}

TEST(DebugServerTest, StartsOnEphemeralPortAndServesVarz) {
  auto server = StartOrDie();
  EXPECT_GT(server->port(), 0);
  const std::string response = Get(server->port(), "/varz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find("{\"counters\":{"), std::string::npos) << response;
}

TEST(DebugServerTest, ServesMetricszInPrometheusFormat) {
  MetricsRegistry::Global().GetCounter("debug_server_test_counter")->Inc();
  auto server = StartOrDie();
  const std::string response = Get(server->port(), "/metricsz");
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("debug_server_test_counter"), std::string::npos)
      << response;
}

TEST(DebugServerTest, ServesFlightzAndEventz) {
  auto server = StartOrDie();
  const std::string flight = Get(server->port(), "/flightz");
  EXPECT_NE(flight.find("HTTP/1.1 200 OK"), std::string::npos) << flight;
  EXPECT_NE(flight.find("\"report\":\"flight\""), std::string::npos) << flight;
  const std::string events = Get(server->port(), "/eventz");
  EXPECT_NE(events.find("HTTP/1.1 200 OK"), std::string::npos) << events;
  EXPECT_NE(events.find("Content-Type: application/x-ndjson"),
            std::string::npos)
      << events;
}

TEST(DebugServerTest, RegisteredHandlerServesAndIndexListsIt) {
  auto server = StartOrDie();
  server->RegisterHandler("/hello", "text/plain", [] { return "hi\n"; });
  const std::string response = Get(server->port(), "/hello");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("\r\n\r\nhi\n"), std::string::npos) << response;
  const std::string index = Get(server->port(), "/");
  EXPECT_NE(index.find("  /hello\n"), std::string::npos) << index;
  EXPECT_NE(index.find("  /metricsz\n"), std::string::npos) << index;
}

TEST(DebugServerTest, QueryStringIsStripped) {
  auto server = StartOrDie();
  const std::string response = Get(server->port(), "/varz?pretty=1");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
}

TEST(DebugServerTest, UnknownPathIs404) {
  auto server = StartOrDie();
  const std::string response = Get(server->port(), "/no-such-endpoint");
  EXPECT_NE(response.find("HTTP/1.1 404 Not Found"), std::string::npos)
      << response;
}

TEST(DebugServerTest, NonGetMethodIs405) {
  auto server = StartOrDie();
  const std::string response = RawRequest(
      server->port(), "POST /varz HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 405 Method Not Allowed"),
            std::string::npos)
      << response;
}

TEST(DebugServerTest, MalformedRequestLineIs400) {
  auto server = StartOrDie();
  EXPECT_NE(RawRequest(server->port(), "garbage\r\n\r\n")
                .find("HTTP/1.1 400 Bad Request"),
            std::string::npos);
  // Missing the HTTP/ version tag.
  EXPECT_NE(RawRequest(server->port(), "GET /varz\r\n\r\n")
                .find("HTTP/1.1 400 Bad Request"),
            std::string::npos);
  // Path not starting with '/'.
  EXPECT_NE(RawRequest(server->port(), "GET varz HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 400 Bad Request"),
            std::string::npos);
}

TEST(DebugServerTest, OversizedRequestHeadIs431) {
  auto server = StartOrDie();
  // A request head that never terminates and exceeds the bound.
  std::string huge = "GET /varz HTTP/1.1\r\nX-Pad: ";
  huge.append(DebugServer::kMaxRequestBytes, 'a');
  const std::string response = RawRequest(server->port(), huge);
  EXPECT_NE(response.find("HTTP/1.1 431 "), std::string::npos) << response;
}

TEST(DebugServerTest, ShutdownIsIdempotentAndPortIsReusable) {
  auto server = StartOrDie();
  const int port = server->port();
  server->Shutdown();
  server->Shutdown();  // idempotent
  server.reset();

  // The listen socket is fully released: a new server can bind the port.
  DebugServer::Options options;
  options.port = port;
  auto second = DebugServer::Start(options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ((*second)->port(), port);
  const std::string response = Get((*second)->port(), "/varz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
}

TEST(DebugServerTest, RejectsBadOptions) {
  DebugServer::Options options;
  options.port = 65536;
  EXPECT_FALSE(DebugServer::Start(options).ok());
  options.port = -1;
  EXPECT_FALSE(DebugServer::Start(options).ok());
  options.port = 0;
  options.bind_address = "not-an-address";
  EXPECT_FALSE(DebugServer::Start(options).ok());
}

}  // namespace
}  // namespace tsss::obs
