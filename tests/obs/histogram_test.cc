#include "tsss/obs/histogram.h"

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace tsss::obs {
namespace {

TEST(ObsHistogramTest, SmallValuesAreExact) {
  for (std::uint64_t us = 0; us < 16; ++us) {
    EXPECT_EQ(LatencyHistogram::BucketFor(us), us);
    EXPECT_EQ(LatencyHistogram::BucketFloorUs(us), us);
  }
}

TEST(ObsHistogramTest, BucketFloorsAreMonotone) {
  for (std::size_t i = 1; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_GT(LatencyHistogram::BucketFloorUs(i),
              LatencyHistogram::BucketFloorUs(i - 1))
        << "bucket " << i;
  }
}

TEST(ObsHistogramTest, RelativeErrorBoundedBy25Percent) {
  // The reported value for any latency is its bucket floor; four sub-buckets
  // per power of two bound the under-report at 25%.
  for (std::uint64_t us = 16; us < 1'000'000; us = us * 9 / 8 + 1) {
    const std::size_t bucket = LatencyHistogram::BucketFor(us);
    const std::uint64_t floor = LatencyHistogram::BucketFloorUs(bucket);
    ASSERT_LE(floor, us) << us;
    EXPECT_LE(static_cast<double>(us - floor), 0.25 * static_cast<double>(us))
        << us;
    // The floor of the *next* bucket must be above us, else BucketFor lied.
    if (bucket + 1 < LatencyHistogram::kNumBuckets) {
      EXPECT_GT(LatencyHistogram::BucketFloorUs(bucket + 1), us) << us;
    }
  }
}

TEST(ObsHistogramTest, QuantilesBracketRecordedValues) {
  LatencyHistogram hist;
  for (std::uint64_t us = 1; us <= 1000; ++us) hist.RecordUs(us);
  EXPECT_EQ(hist.Count(), 1000u);
  EXPECT_EQ(hist.SumUs(), 500500u);

  // Nearest-rank quantile, reported as the bucket floor: the result is at
  // most the true quantile and within 25% below it.
  const struct {
    double q;
    double true_us;
  } kCases[] = {{0.50, 500.0}, {0.90, 900.0}, {0.99, 990.0}};
  for (const auto& c : kCases) {
    const double got_us = 1000.0 * hist.PercentileMs(c.q);
    EXPECT_LE(got_us, c.true_us) << "q=" << c.q;
    EXPECT_GE(got_us, 0.75 * c.true_us - 1.0) << "q=" << c.q;
  }
}

TEST(ObsHistogramTest, EmptyHistogramReportsZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.SumUs(), 0u);
  EXPECT_EQ(hist.PercentileMs(0.5), 0.0);
  EXPECT_EQ(hist.PercentileMs(0.99), 0.0);
}

TEST(ObsHistogramTest, RecordChronoClampsNegative) {
  LatencyHistogram hist;
  hist.Record(std::chrono::microseconds(-5));
  EXPECT_EQ(hist.Count(), 1u);
  EXPECT_EQ(hist.SumUs(), 0u);
}

TEST(ObsHistogramTest, MergeAddsCountsAndSums) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.RecordUs(100);
  b.RecordUs(1000);
  b.RecordUs(1000);
  b.RecordUs(10);

  a.Merge(b);
  EXPECT_EQ(a.Count(), 4u);
  EXPECT_EQ(a.SumUs(), 2110u);
  // b is untouched.
  EXPECT_EQ(b.Count(), 3u);

  // Merging an empty histogram is a no-op.
  LatencyHistogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 4u);

  // The merged quantiles reflect both sides: p50 over {10, 100, 1000, 1000}
  // lands in 100's bucket.
  const double p50_us = 1000.0 * a.PercentileMs(0.5);
  EXPECT_GE(p50_us, 75.0);
  EXPECT_LE(p50_us, 100.0);
}

TEST(ObsHistogramTest, ConcurrentRecordsAreLossless) {
  LatencyHistogram hist;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hist.RecordUs((i + static_cast<std::uint64_t>(t)) % 5000);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist.Count(), kThreads * kPerThread);
}

TEST(ObsHistogramTest, ConcurrentMergeAndRecordIsSafe) {
  // Merge() under concurrent Record() on both sides must stay data-race free
  // (relaxed snapshot semantics); exercised under TSan in CI.
  LatencyHistogram source;
  LatencyHistogram sink;
  std::thread writer([&source] {
    for (std::uint64_t i = 0; i < 50000; ++i) source.RecordUs(i % 100);
  });
  std::thread merger([&source, &sink] {
    for (int i = 0; i < 100; ++i) sink.Merge(source);
  });
  writer.join();
  merger.join();
  SUCCEED();
}

}  // namespace
}  // namespace tsss::obs
