// Tests for the ring-buffered NDJSON event log: line format, ring overwrite
// semantics, truncation at field boundaries, file dump, and the concurrency
// contract (N writers, no lost or torn records) that TSan pins down — the
// EventLog* prefix keeps these in the CI TSan shard.

#include "tsss/obs/event_log.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace tsss::obs {
namespace {

/// Extracts the numeric value following `"key":` in an NDJSON line; -1 when
/// the key is absent.
std::int64_t FieldOf(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return -1;
  return std::atoll(line.c_str() + pos + needle.size());
}

TEST(EventLogTest, RendersOneNdjsonLinePerEvent) {
  EventLog log(8);
  log.Publish("service", "admitted", {{"queue_depth", 3}, {"kind", 0}});
  const std::vector<std::string> lines = log.Snapshot();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_EQ(line.rfind("{\"seq\":0,\"ts_us\":", 0), 0u) << line;
  EXPECT_NE(line.find("\"category\":\"service\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"event\":\"admitted\""), std::string::npos) << line;
  EXPECT_EQ(FieldOf(line, "queue_depth"), 3);
  EXPECT_EQ(FieldOf(line, "kind"), 0);
  EXPECT_EQ(line.back(), '}');
  EXPECT_EQ(log.published(), 1u);
}

TEST(EventLogTest, EventsWithoutFieldsAreValid) {
  EventLog log(8);
  log.Publish("cli", "startup");
  const auto lines = log.Snapshot();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"event\":\"startup\"}"), std::string::npos)
      << lines[0];
}

TEST(EventLogTest, RingKeepsOnlyTheMostRecentRecords) {
  EventLog log(8);
  ASSERT_EQ(log.capacity(), 8u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    log.Publish("t", "tick", {{"i", i}});
  }
  const auto lines = log.Snapshot();
  ASSERT_EQ(lines.size(), 8u);
  // Oldest-first, and exactly the last `capacity` tickets survive.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(FieldOf(lines[i], "seq"),
              static_cast<std::int64_t>(12 + i));
    EXPECT_EQ(FieldOf(lines[i], "i"), static_cast<std::int64_t>(12 + i));
  }
  EXPECT_EQ(log.published(), 20u);
}

TEST(EventLogTest, CapacityRoundsUpToPowerOfTwo) {
  EventLog log(9);
  EXPECT_EQ(log.capacity(), 16u);
  EventLog tiny(1);
  EXPECT_EQ(tiny.capacity(), 8u);
}

TEST(EventLogTest, OverlongEventsDropFieldsNotBytes) {
  EventLog log(8);
  // Enough wide fields to overflow kMaxLineBytes; the rendered line must stay
  // complete JSON (fields dropped whole, never mid-token).
  log.Publish(
      "category_with_a_quite_long_name", "event_with_a_long_name_too",
      {{"field_number_one_with_a_very_long_key", 11111111111ull},
       {"field_number_two_with_a_very_long_key", 22222222222ull},
       {"field_number_three_with_a_very_long_key", 33333333333ull},
       {"field_number_four_with_a_very_long_key", 44444444444ull},
       {"field_number_five_with_a_very_long_key", 55555555555ull},
       {"field_number_six_with_a_very_long_key", 66666666666ull}});
  const auto lines = log.Snapshot();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_LE(line.size(), EventLog::kMaxLineBytes);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  // An even number of quotes means no key was cut in half.
  std::size_t quotes = 0;
  for (char c : line) quotes += c == '"' ? 1u : 0u;
  EXPECT_EQ(quotes % 2, 0u) << line;
}

TEST(EventLogTest, DumpNdjsonWritesOneLinePerRecord) {
  EventLog log(64);
  for (std::uint64_t i = 0; i < 5; ++i) log.Publish("t", "tick", {{"i", i}});
  const std::string path = testing::TempDir() + "/event_log_dump.ndjson";
  ASSERT_TRUE(log.DumpNdjson(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++count;
  }
  EXPECT_EQ(count, 5u);
}

TEST(EventLogTest, GlobalInstanceAccumulates) {
  EventLog& log = EventLog::Global();
  const std::uint64_t before = log.published();
  log.Publish("test", "global_probe");
  EXPECT_EQ(log.published(), before + 1);
}

TEST(EventLogTest, ConcurrentWritersLoseNothing) {
  // Capacity exceeds the total publish count, so with no overwrites every
  // record must appear in the snapshot exactly once, fully formed. Run under
  // TSan this is also the data-race check for the seqlock protocol.
  constexpr std::size_t kWriters = 8;
  constexpr std::uint64_t kPerWriter = 1000;
  EventLog log(kWriters * kPerWriter);
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&log, w] {
      for (std::uint64_t n = 0; n < kPerWriter; ++n) {
        log.Publish("stress", "put", {{"w", w}, {"n", n}});
      }
    });
  }
  for (std::thread& t : writers) t.join();

  const auto lines = log.Snapshot();
  ASSERT_EQ(lines.size(), kWriters * kPerWriter);
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  for (const std::string& line : lines) {
    const std::int64_t w = FieldOf(line, "w");
    const std::int64_t n = FieldOf(line, "n");
    ASSERT_GE(w, 0) << "torn or truncated record: " << line;
    ASSERT_GE(n, 0) << "torn or truncated record: " << line;
    EXPECT_TRUE(seen.emplace(w, n).second)
        << "duplicate record w=" << w << " n=" << n;
  }
  EXPECT_EQ(seen.size(), kWriters * kPerWriter);
}

TEST(EventLogTest, SnapshotDuringConcurrentOverwriteNeverTears) {
  // A tiny ring being lapped continuously while a reader snapshots: every
  // returned line must still be a complete record (skipped, not torn).
  EventLog log(8);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < 4; ++w) {
    writers.emplace_back([&log, &stop, w] {
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        log.Publish("lap", "put", {{"w", w}, {"n", n++}});
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    for (const std::string& line : log.Snapshot()) {
      ASSERT_FALSE(line.empty());
      ASSERT_EQ(line.front(), '{') << line;
      ASSERT_EQ(line.back(), '}') << line;
      ASSERT_GE(FieldOf(line, "w"), 0) << line;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
}

}  // namespace
}  // namespace tsss::obs
