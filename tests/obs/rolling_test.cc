// RollingWindow + SLO evaluator tests: bucket rotation driven by an
// injected clock, windowed quantiles against a sorted-vector oracle,
// cross-thread record merging, the multi-window burn-rate policy edges,
// and the /healthz 503-and-back flip end to end (DebugServer +
// QueryService feeding an injected window with check_budget-forced
// failures).

#include "tsss/obs/rolling.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tsss/obs/debug_server.h"
#include "tsss/service/query_service.h"
#include "tsss/seq/stock_generator.h"

namespace tsss::obs {
namespace {

/// A window on a hand-cranked clock: tests advance `now_us` explicitly so
/// bucket rotation is deterministic.
struct FakeClockWindow {
  std::shared_ptr<std::atomic<std::uint64_t>> now_us =
      std::make_shared<std::atomic<std::uint64_t>>(0);
  std::unique_ptr<RollingWindow> window;

  explicit FakeClockWindow(RollingWindow::Options options = {}) {
    auto clock = now_us;
    // relaxed-ok: the test advances the clock from the same thread that reads
    options.now_us = [clock] { return clock->load(std::memory_order_relaxed); };
    window = std::make_unique<RollingWindow>(std::move(options));
  }
  void AdvanceTo(std::uint64_t us) {
    // relaxed-ok: single-threaded test driver
    now_us->store(us, std::memory_order_relaxed);
  }
};

TEST(RollingWindowTest, EmptyWindowIsHealthyShaped) {
  RollingWindow window;
  const auto snap = window.Window(60'000'000);
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.errors, 0u);
  EXPECT_DOUBLE_EQ(snap.availability(), 1.0);
  EXPECT_DOUBLE_EQ(snap.p99_ms, 0.0);
}

TEST(RollingWindowTest, WindowClampsToRingSpan) {
  RollingWindow::Options options;
  options.num_buckets = 4;
  options.bucket_width_us = 1'000'000;
  FakeClockWindow fake(std::move(options));
  EXPECT_EQ(fake.window->span_us(), 4'000'000u);
  EXPECT_EQ(fake.window->Window(~std::uint64_t{0}).window_us, 4'000'000u);
  // And up to at least one bucket from below.
  EXPECT_EQ(fake.window->Window(1).window_us, 1'000'000u);
}

TEST(RollingWindowTest, BucketRotationForgetsAgedOutRecords) {
  RollingWindow::Options options;
  options.num_buckets = 4;
  options.bucket_width_us = 1'000'000;
  FakeClockWindow fake(std::move(options));

  fake.AdvanceTo(500'000);  // tick 0
  fake.window->Record(100'000, /*ok=*/false, /*deadline_exceeded=*/true);
  auto snap = fake.window->Window(4'000'000);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.errors, 1u);
  EXPECT_EQ(snap.deadline_exceeded, 1u);

  // Ten seconds later the whole ring has lapped: the old bucket's epoch is
  // outside the window, so its contents no longer count even though the
  // slot has not been physically wiped yet.
  fake.AdvanceTo(10'500'000);  // tick 10
  snap = fake.window->Window(4'000'000);
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.availability(), 1.0);

  // A new record rotates the slot and counts alone.
  fake.window->Record(5'000, /*ok=*/true, /*deadline_exceeded=*/false);
  snap = fake.window->Window(4'000'000);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.errors, 0u);
}

TEST(RollingWindowTest, NarrowWindowExcludesOlderBuckets) {
  RollingWindow::Options options;
  options.num_buckets = 60;
  options.bucket_width_us = 1'000'000;
  FakeClockWindow fake(std::move(options));

  fake.AdvanceTo(1'500'000);  // tick 1
  fake.window->Record(1'000, false, false);
  fake.AdvanceTo(30'500'000);  // tick 30
  fake.window->Record(1'000, true, false);

  EXPECT_EQ(fake.window->Window(60'000'000).count, 2u);
  const auto recent = fake.window->Window(10'000'000);
  EXPECT_EQ(recent.count, 1u);
  EXPECT_EQ(recent.errors, 0u);
}

TEST(RollingWindowTest, WindowedQuantilesMatchOracle) {
  FakeClockWindow fake;
  fake.AdvanceTo(500'000);
  std::vector<double> oracle_ms;
  for (int i = 1; i <= 1000; ++i) {
    fake.window->Record(static_cast<std::uint64_t>(i) * 1000, true, false);
    oracle_ms.push_back(static_cast<double>(i));
  }
  std::sort(oracle_ms.begin(), oracle_ms.end());
  const auto snap = fake.window->Window(60'000'000);
  ASSERT_EQ(snap.count, 1000u);
  const double oracle_p50 = oracle_ms[499];
  const double oracle_p99 = oracle_ms[989];
  // The histogram is bucketed, so allow its documented resolution slack.
  EXPECT_NEAR(snap.p50_ms, oracle_p50, 0.25 * oracle_p50);
  EXPECT_NEAR(snap.p99_ms, oracle_p99, 0.25 * oracle_p99);
}

TEST(RollingWindowTest, MergesRecordsAcrossThreads) {
  FakeClockWindow fake;
  fake.AdvanceTo(500'000);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fake, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const bool error = (i % 10) == 0;
        fake.window->Record(1000 + static_cast<std::uint64_t>(t), !error,
                            false);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto snap = fake.window->Window(60'000'000);
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.errors, static_cast<std::uint64_t>(kThreads * 250));
}

SloConfig TightSlo() {
  SloConfig config;
  config.target_p99_ms = 500.0;
  config.target_availability = 0.9;  // allowed error budget: 10%
  config.fast_window_us = 10'000'000;
  config.slow_window_us = 60'000'000;
  config.fast_burn_threshold = 5.0;
  config.slow_burn_threshold = 2.0;
  return config;
}

TEST(SloTest, IdleWindowAbstainsHealthy) {
  RollingWindow window;
  const SloState state = EvaluateSlo(window, SloConfig{});
  EXPECT_TRUE(state.healthy);
  EXPECT_TRUE(state.latency_ok);
  EXPECT_TRUE(state.availability_ok);
}

TEST(SloTest, FastWindowLatencyBreachFlipsUnhealthy) {
  RollingWindow::Options options;
  options.num_buckets = 120;
  FakeClockWindow fake(std::move(options));
  fake.AdvanceTo(500'000);
  for (int i = 0; i < 20; ++i) {
    fake.window->Record(900'000, true, false);  // 900 ms, target p99 500 ms
  }
  const SloState state = EvaluateSlo(*fake.window, TightSlo());
  EXPECT_FALSE(state.latency_ok);
  EXPECT_TRUE(state.availability_ok);
  EXPECT_FALSE(state.healthy);
}

TEST(SloTest, FastBurnAloneDoesNotPageWithoutSlowConfirmation) {
  RollingWindow::Options options;
  options.num_buckets = 120;
  FakeClockWindow fake(std::move(options));
  // 100 clean completions spread over the slow window...
  for (int i = 0; i < 100; ++i) {
    fake.AdvanceTo(10'000'000 + static_cast<std::uint64_t>(i) * 500'000);
    fake.window->Record(1'000, true, false);
  }
  // ...then one bad second: 10 failures inside the fast window only.
  fake.AdvanceTo(65'000'000);
  for (int i = 0; i < 10; ++i) fake.window->Record(1'000, false, false);

  const SloState state = EvaluateSlo(*fake.window, TightSlo());
  EXPECT_GE(state.fast_burn_rate, 5.0);  // fast window is all failures
  EXPECT_LT(state.slow_burn_rate, 2.0);  // 10 of 110 < 10% budget x 2
  EXPECT_TRUE(state.availability_ok) << "one bad bucket must not page";
  EXPECT_TRUE(state.healthy);
}

TEST(SloTest, SustainedBurnOverBothWindowsPages) {
  RollingWindow::Options options;
  options.num_buckets = 120;
  FakeClockWindow fake(std::move(options));
  // Failures sustained across the whole slow window: both burn rates hot.
  for (int i = 0; i < 120; ++i) {
    fake.AdvanceTo(10'000'000 + static_cast<std::uint64_t>(i) * 500'000);
    fake.window->Record(1'000, (i % 2) == 0, false);  // 50% failures
  }
  const SloState state = EvaluateSlo(*fake.window, TightSlo());
  EXPECT_GE(state.fast_burn_rate, 5.0);
  EXPECT_GE(state.slow_burn_rate, 2.0);
  EXPECT_FALSE(state.availability_ok);
  EXPECT_FALSE(state.healthy);
  EXPECT_TRUE(state.latency_ok);
}

TEST(SloTest, HealthzJsonCarriesSchemaAndWindows) {
  RollingWindow window;
  window.Record(2'000, true, false);
  const SloConfig config;
  const std::string json = RenderHealthzJson(EvaluateSlo(window, config),
                                             config);
  for (const char* key :
       {"\"schema_version\":1", "\"report\":\"healthz\"", "\"healthy\":true",
        "\"latency_ok\":true", "\"availability_ok\":true", "\"target_p99_ms\"",
        "\"target_availability\"", "\"fast_burn_rate\"", "\"slow_burn_rate\"",
        "\"fast\":{", "\"slow\":{", "\"deadline_exceeded\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

/// Minimal raw HTTP GET against the loopback debug server (the full-fidelity
/// twin lives in debug_server_test.cc).
std::string Get(int port, const std::string& path) {
  const std::string raw =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  std::size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n =
        ::send(fd, raw.data() + sent, raw.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[2048];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::unique_ptr<core::SearchEngine> SmallEngine() {
  core::EngineConfig config;
  config.window = 16;
  config.reduced_dim = 4;
  config.tree.max_entries = 8;
  config.buffer_pool_pages = 256;
  auto engine = core::SearchEngine::Create(config);
  EXPECT_TRUE(engine.ok());
  seq::StockMarketConfig market;
  market.num_companies = 12;
  market.values_per_company = 200;
  market.seed = 7;
  for (const seq::TimeSeries& series : seq::GenerateStockMarket(market)) {
    EXPECT_TRUE((*engine)->AddSeries(series.name, series.values).ok());
  }
  return std::move(engine).value();
}

// End to end: QueryService completions feed an injected rolling window on a
// fake clock; /healthz (same handler wiring as tsss_cli serve) answers 200,
// flips to 503 once check_budget forces a run of deadline failures, and
// recovers to 200 after the failures age out of both SLO windows.
TEST(SloTest, HealthzEndpointFlips503AndBack) {
  auto engine = SmallEngine();
  FakeClockWindow fake;
  fake.AdvanceTo(500'000);

  service::ServiceConfig service_config;
  service_config.num_workers = 1;
  service_config.rolling_window = fake.window.get();
  auto service = service::QueryService::Create(engine.get(), service_config);
  ASSERT_TRUE(service.ok());

  SloConfig slo = TightSlo();
  DebugServer::Options options;
  options.port = 0;
  auto server = DebugServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  RollingWindow* rolling = fake.window.get();
  (*server)->RegisterHandler(
      "/healthz", "application/json",
      DebugServer::QueryHandler([rolling, slo](const std::string&) {
        const SloState state = EvaluateSlo(*rolling, slo);
        return HttpResponse{state.healthy ? 200 : 503,
                            RenderHealthzJson(state, slo)};
      }));
  const int port = (*server)->port();

  service::QueryRequest request;
  request.kind = service::QueryKind::kRange;
  auto window0 = engine->ReadWindow(0);
  ASSERT_TRUE(window0.ok());
  request.query = *window0;
  request.eps = 5.0;

  auto submit = [&](std::uint64_t check_budget) {
    request.check_budget = check_budget;
    auto future = (*service)->Submit(request);
    ASSERT_TRUE(future.ok());
    future->get();
  };

  submit(0);  // one healthy completion
  EXPECT_NE(Get(port, "/healthz").find("HTTP/1.1 200"), std::string::npos);

  // Forced-slow workload: a check budget of 1 trips DeadlineExceeded on the
  // query's first poll, deterministically. Enough of them burn through the
  // 10% budget in both windows.
  for (int i = 0; i < 30; ++i) submit(1);
  const std::string sick = Get(port, "/healthz");
  EXPECT_NE(sick.find("HTTP/1.1 503"), std::string::npos) << sick;
  EXPECT_NE(sick.find("\"healthy\":false"), std::string::npos);
  EXPECT_NE(sick.find("\"deadline_exceeded\":30"), std::string::npos);

  // Two minutes later the failures have aged out of the 60 s slow window;
  // the evaluation abstains on the empty fast window and reports healthy.
  fake.AdvanceTo(120'500'000);
  const std::string recovered = Get(port, "/healthz");
  EXPECT_NE(recovered.find("HTTP/1.1 200"), std::string::npos) << recovered;

  (*service)->Shutdown();
  (*server)->Shutdown();
}

}  // namespace
}  // namespace tsss::obs
