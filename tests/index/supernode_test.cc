// Tests of the X-tree supernode extension: multi-page node chains and the
// overlap-triggered "don't split" policy.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/index/rtree.h"

namespace tsss::index {
namespace {

using geom::Mbr;
using geom::Vec;

TEST(NodeChainCodecTest, PartRoundTripWithNextPointer) {
  const NodeCodec codec(4);
  std::vector<Entry> entries;
  for (RecordId i = 0; i < 5; ++i) {
    entries.push_back(
        Entry::ForRecord(i, Vec{static_cast<double>(i), 2.0, 3.0, 4.0}));
  }
  storage::Page page;
  ASSERT_TRUE(codec.EncodePart(0, entries, 1234, &page).ok());
  auto part = codec.DecodePart(page);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part->level, 0);
  EXPECT_EQ(part->next, 1234u);
  ASSERT_EQ(part->entries.size(), 5u);
  EXPECT_EQ(part->entries[3].record, 3u);
}

TEST(NodeChainCodecTest, DecodeRejectsChainedPage) {
  const NodeCodec codec(2);
  std::vector<Entry> entries;
  entries.push_back(Entry::ForRecord(1, Vec{1.0, 2.0}));
  storage::Page page;
  ASSERT_TRUE(codec.EncodePart(0, entries, 7, &page).ok());
  EXPECT_EQ(codec.Decode(page).status().code(), StatusCode::kFailedPrecondition);
}

struct SupernodeFixture {
  storage::MemPageStore store;
  storage::BufferPool pool{&store, 1024};
  std::unique_ptr<RTree> tree;

  explicit SupernodeFixture(std::size_t dim = 8, bool supernodes = true) {
    RTreeConfig config;
    config.dim = dim;
    config.max_entries = 8;
    config.leaf_max_entries = 16;
    config.enable_supernodes = supernodes;
    config.supernode_overlap_fraction = 0.05;  // aggressive: form supernodes
    auto created = RTree::Create(&pool, config);
    EXPECT_TRUE(created.ok()) << created.status();
    tree = std::move(created).value();
  }
};

/// Points drawn uniformly in a high-dimensional cube: splits overlap badly,
/// the classic X-tree trigger.
std::vector<Vec> UniformCloud(Rng& rng, std::size_t count, std::size_t dim) {
  std::vector<Vec> points;
  for (std::size_t i = 0; i < count; ++i) {
    Vec p(dim);
    for (auto& x : p) x = rng.Uniform(0, 1);
    points.push_back(std::move(p));
  }
  return points;
}

TEST(SupernodeTest, FormsSupernodesOnUniformHighDimData) {
  SupernodeFixture f;
  Rng rng(1);
  const auto points = UniformCloud(rng, 3000, 8);
  for (RecordId i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(f.tree->Insert(points[i], i).ok());
  }
  ASSERT_TRUE(f.tree->CheckInvariants().ok()) << f.tree->CheckInvariants();
  auto stats = f.tree->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->supernode_count, 0u)
      << "uniform high-dim data should trigger supernodes";
  EXPECT_GE(stats->node_pages, stats->node_count);
}

TEST(SupernodeTest, AllRecordsRemainFindable) {
  SupernodeFixture f;
  Rng rng(2);
  const auto points = UniformCloud(rng, 2000, 8);
  for (RecordId i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(f.tree->Insert(points[i], i).ok());
  }
  for (RecordId i = 0; i < points.size(); i += 41) {
    auto result = f.tree->RangeQuery(Mbr::FromPoint(points[i]));
    ASSERT_TRUE(result.ok());
    EXPECT_NE(std::find(result->begin(), result->end(), i), result->end())
        << "lost record " << i;
  }
}

TEST(SupernodeTest, LineQueryMatchesBruteForce) {
  SupernodeFixture f;
  Rng rng(3);
  const auto points = UniformCloud(rng, 1500, 8);
  for (RecordId i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(f.tree->Insert(points[i], i).ok());
  }
  for (int q = 0; q < 10; ++q) {
    Vec p(8), d(8);
    for (std::size_t i = 0; i < 8; ++i) {
      p[i] = rng.Uniform(0, 1);
      d[i] = rng.Uniform(-1, 1);
    }
    const geom::Line line{p, d};
    const double eps = rng.Uniform(0.05, 0.3);
    auto result =
        f.tree->LineQuery(line, eps, geom::PruneStrategy::kEepOnly, nullptr);
    ASSERT_TRUE(result.ok());
    std::set<RecordId> got;
    for (const LineMatch& m : *result) got.insert(m.record);
    std::set<RecordId> expected;
    for (RecordId i = 0; i < points.size(); ++i) {
      if (geom::Pld(points[i], line) <= eps) expected.insert(i);
    }
    EXPECT_EQ(got, expected) << "query " << q;
  }
}

TEST(SupernodeTest, DeletesShrinkChainsAndKeepInvariants) {
  SupernodeFixture f;
  Rng rng(4);
  const auto points = UniformCloud(rng, 1200, 8);
  for (RecordId i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(f.tree->Insert(points[i], i).ok());
  }
  const std::size_t live_before = f.store.num_live_pages();
  for (RecordId i = 0; i < points.size(); i += 2) {
    ASSERT_TRUE(f.tree->Delete(points[i], i).ok());
  }
  ASSERT_TRUE(f.tree->CheckInvariants().ok()) << f.tree->CheckInvariants();
  EXPECT_EQ(f.tree->size(), points.size() / 2);
  EXPECT_LT(f.store.num_live_pages(), live_before);
}

TEST(SupernodeTest, DisabledModeNeverFormsSupernodes) {
  SupernodeFixture f(8, /*supernodes=*/false);
  Rng rng(5);
  const auto points = UniformCloud(rng, 2000, 8);
  for (RecordId i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(f.tree->Insert(points[i], i).ok());
  }
  auto stats = f.tree->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->supernode_count, 0u);
  EXPECT_EQ(stats->node_pages, stats->node_count);
}

TEST(SupernodeTest, SupernodesReduceOverlap) {
  // The whole point of the X-tree: trading fanout for overlap.
  Rng rng(6);
  const auto points = UniformCloud(rng, 2500, 8);
  double overlap[2];
  for (int mode = 0; mode < 2; ++mode) {
    SupernodeFixture f(8, mode == 1);
    for (RecordId i = 0; i < points.size(); ++i) {
      ASSERT_TRUE(f.tree->Insert(points[i], i).ok());
    }
    auto stats = f.tree->ComputeStats();
    ASSERT_TRUE(stats.ok());
    overlap[mode] = stats->total_overlap_volume;
  }
  EXPECT_LT(overlap[1], overlap[0]);
}

}  // namespace
}  // namespace tsss::index
