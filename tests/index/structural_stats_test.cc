// Oracle tests for RTree::ComputeStructuralStats(): exact per-level shape on
// degenerate trees, cross-checked totals against ComputeStats() on random and
// bulk-loaded trees, and the depth-uniformity / occupancy-histogram
// invariants the `tsss_cli inspect` report builds on.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/index/rtree.h"
#include "tsss/obs/metrics.h"

namespace tsss::index {
namespace {

using geom::Vec;

struct Fixture {
  storage::MemPageStore store;
  storage::BufferPool pool{&store, 512};
  std::unique_ptr<RTree> tree;

  explicit Fixture(std::size_t max_entries = 8, std::size_t leaf_max = 16) {
    RTreeConfig config;
    config.dim = 3;
    config.max_entries = max_entries;
    config.leaf_max_entries = leaf_max;
    auto created = RTree::Create(&pool, config);
    EXPECT_TRUE(created.ok());
    tree = std::move(created).value();
  }
};

std::size_t HistogramSum(const LevelStats& level) {
  std::size_t sum = 0;
  for (std::size_t bucket : level.occupancy_histogram) sum += bucket;
  return sum;
}

TEST(StructuralStatsTest, EmptyTreeIsOneEmptyLeaf) {
  Fixture f;
  auto stats = f.tree->ComputeStructuralStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->height, 1u);
  EXPECT_EQ(stats->node_count, 1u);
  EXPECT_EQ(stats->entry_count, 0u);
  EXPECT_EQ(stats->supernode_count, 0u);
  EXPECT_TRUE(stats->depth_uniform);
  ASSERT_EQ(stats->levels.size(), 1u);
  const LevelStats& leaves = stats->levels[0];
  EXPECT_EQ(leaves.nodes, 1u);
  EXPECT_EQ(leaves.entries, 0u);
  EXPECT_EQ(leaves.min_fanout, 0u);
  EXPECT_EQ(leaves.max_fanout, 0u);
  EXPECT_DOUBLE_EQ(leaves.avg_fanout, 0.0);
  EXPECT_DOUBLE_EQ(leaves.avg_occupancy, 0.0);
  EXPECT_EQ(HistogramSum(leaves), 1u);
  EXPECT_EQ(leaves.occupancy_histogram[0], 1u);
}

TEST(StructuralStatsTest, DegenerateSingleLeafIsExact) {
  Fixture f;
  for (RecordId i = 0; i < 5; ++i) {
    ASSERT_TRUE(f.tree->Insert(Vec{double(i), 0.0, 0.0}, i).ok());
  }
  auto stats = f.tree->ComputeStructuralStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->height, 1u);
  EXPECT_EQ(stats->node_count, 1u);
  EXPECT_EQ(stats->entry_count, 5u);
  EXPECT_TRUE(stats->depth_uniform);
  ASSERT_EQ(stats->levels.size(), 1u);
  const LevelStats& leaves = stats->levels[0];
  EXPECT_EQ(leaves.entries, 5u);
  EXPECT_EQ(leaves.min_fanout, 5u);
  EXPECT_EQ(leaves.max_fanout, 5u);
  EXPECT_DOUBLE_EQ(leaves.avg_fanout, 5.0);
  // 5 of 16 slots: occupancy 0.3125 lands in decile bucket 3.
  EXPECT_DOUBLE_EQ(leaves.avg_occupancy, 5.0 / 16.0);
  EXPECT_EQ(leaves.occupancy_histogram[3], 1u);
  EXPECT_EQ(HistogramSum(leaves), 1u);
}

TEST(StructuralStatsTest, AgreesWithComputeStatsOnRandomTree) {
  Fixture f;
  Rng rng(7);
  for (RecordId i = 0; i < 1000; ++i) {
    Vec p(3);
    for (auto& x : p) x = rng.Uniform(-10, 10);
    ASSERT_TRUE(f.tree->Insert(p, i).ok());
  }
  auto flat = f.tree->ComputeStats();
  auto deep = f.tree->ComputeStructuralStats();
  ASSERT_TRUE(flat.ok());
  ASSERT_TRUE(deep.ok());

  EXPECT_EQ(deep->height, flat->height);
  EXPECT_EQ(deep->node_count, flat->node_count);
  EXPECT_EQ(deep->entry_count, flat->entry_count);
  EXPECT_EQ(deep->supernode_count, flat->supernode_count);
  EXPECT_TRUE(deep->depth_uniform);
  ASSERT_EQ(deep->levels.size(), deep->height);

  std::size_t nodes = 0;
  for (const LevelStats& level : deep->levels) {
    nodes += level.nodes;
    EXPECT_EQ(HistogramSum(level), level.nodes) << "level " << level.level;
    EXPECT_GE(level.max_fanout, level.min_fanout);
    EXPECT_GE(level.avg_fanout, double(level.min_fanout));
    EXPECT_LE(level.avg_fanout, double(level.max_fanout));
    EXPECT_GE(level.avg_occupancy, 0.0);
    EXPECT_GE(level.dead_space_ratio, 0.0);
    EXPECT_LE(level.dead_space_ratio, 1.0);
    EXPECT_GE(level.overlap_volume, 0.0);
    EXPECT_GE(level.margin_sum, 0.0);
  }
  EXPECT_EQ(nodes, deep->node_count);
  // Leaves hold every data entry; the root level is a single node.
  EXPECT_EQ(deep->levels[0].entries, 1000u);
  EXPECT_EQ(deep->levels.back().nodes, 1u);
  // Each internal level fans out to exactly the nodes of the level below.
  for (std::size_t l = 1; l < deep->levels.size(); ++l) {
    EXPECT_EQ(deep->levels[l].entries, deep->levels[l - 1].nodes)
        << "level " << l;
  }
  // Point leaves enclose zero-volume boxes: their dead space is total.
  EXPECT_DOUBLE_EQ(deep->levels[0].dead_space_ratio, 1.0);
}

TEST(StructuralStatsTest, BulkLoadedTreeIsDenserThanIncremental) {
  Rng rng(13);
  std::vector<Vec> points;
  std::vector<Entry> entries;
  for (RecordId i = 0; i < 1000; ++i) {
    Vec p(3);
    for (auto& x : p) x = rng.Uniform(-10, 10);
    entries.push_back(Entry::ForRecord(i, p));
    points.push_back(std::move(p));
  }

  Fixture incremental;
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(
        incremental.tree->Insert(points[i], static_cast<RecordId>(i)).ok());
  }
  Fixture bulk;
  ASSERT_TRUE(bulk.tree->BulkLoad(std::move(entries)).ok());

  auto inc_stats = incremental.tree->ComputeStructuralStats();
  auto bulk_stats = bulk.tree->ComputeStructuralStats();
  ASSERT_TRUE(inc_stats.ok());
  ASSERT_TRUE(bulk_stats.ok());

  EXPECT_TRUE(bulk_stats->depth_uniform);
  EXPECT_EQ(bulk_stats->entry_count, 1000u);
  // STR packs leaves near full, so the bulk tree needs no more nodes than
  // the incrementally-grown one and its leaves sit at higher occupancy.
  EXPECT_LE(bulk_stats->node_count, inc_stats->node_count);
  EXPECT_GE(bulk_stats->levels[0].avg_occupancy,
            inc_stats->levels[0].avg_occupancy);
}

TEST(StructuralStatsTest, GaugesAreRegistered) {
  Fixture f;
  for (RecordId i = 0; i < 100; ++i) {
    Vec p{double(i % 10), double(i / 10), 0.5};
    ASSERT_TRUE(f.tree->Insert(p, i).ok());
  }
  auto stats = f.tree->ComputeStructuralStats();
  ASSERT_TRUE(stats.ok());
  RegisterStructuralGauges(*stats);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  EXPECT_EQ(registry.GetGauge("tsss_tree_height", "")->Value(),
            static_cast<std::int64_t>(stats->height));
  EXPECT_EQ(registry.GetGauge("tsss_tree_nodes", "")->Value(),
            static_cast<std::int64_t>(stats->node_count));
  EXPECT_EQ(registry.GetGauge("tsss_tree_entries", "")->Value(), 100);
  EXPECT_EQ(registry.GetGauge("tsss_tree_depth_uniform", "")->Value(),
            stats->depth_uniform ? 1 : 0);
}

}  // namespace
}  // namespace tsss::index
