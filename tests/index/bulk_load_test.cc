#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/index/rtree.h"

namespace tsss::index {
namespace {

using geom::Mbr;
using geom::Vec;

struct BulkFixture {
  storage::MemPageStore store;
  storage::BufferPool pool{&store, 512};
  std::unique_ptr<RTree> tree;

  BulkFixture() {
    RTreeConfig config;
    config.dim = 3;
    config.max_entries = 16;
    auto created = RTree::Create(&pool, config);
    EXPECT_TRUE(created.ok());
    tree = std::move(created).value();
  }
};

std::vector<Entry> RandomEntries(Rng& rng, std::size_t count, std::size_t dim) {
  std::vector<Entry> out;
  for (RecordId i = 0; i < count; ++i) {
    Vec p(dim);
    for (auto& x : p) x = rng.Uniform(-100, 100);
    out.push_back(Entry::ForRecord(i, p));
  }
  return out;
}

TEST(BulkLoadTest, EmptyLoadGivesEmptyTree) {
  BulkFixture f;
  ASSERT_TRUE(f.tree->BulkLoad({}).ok());
  EXPECT_EQ(f.tree->size(), 0u);
  EXPECT_EQ(f.tree->height(), 1u);
  ASSERT_TRUE(f.tree->CheckInvariants().ok());
}

TEST(BulkLoadTest, SingleLeafWhenFewEntries) {
  BulkFixture f;
  Rng rng(1);
  ASSERT_TRUE(f.tree->BulkLoad(RandomEntries(rng, 10, 3)).ok());
  EXPECT_EQ(f.tree->size(), 10u);
  EXPECT_EQ(f.tree->height(), 1u);
  ASSERT_TRUE(f.tree->CheckInvariants().ok());
}

TEST(BulkLoadTest, LargeLoadKeepsAllRecordsQueryable) {
  BulkFixture f;
  Rng rng(2);
  std::vector<Entry> entries = RandomEntries(rng, 5000, 3);
  std::vector<Vec> points;
  for (const Entry& e : entries) points.push_back(e.mbr.lo());
  ASSERT_TRUE(f.tree->BulkLoad(std::move(entries)).ok());
  EXPECT_EQ(f.tree->size(), 5000u);
  EXPECT_GT(f.tree->height(), 2u);
  ASSERT_TRUE(f.tree->CheckInvariants().ok()) << f.tree->CheckInvariants();

  for (RecordId i = 0; i < 5000; i += 113) {
    auto result = f.tree->RangeQuery(Mbr::FromPoint(points[i]));
    ASSERT_TRUE(result.ok());
    EXPECT_NE(std::find(result->begin(), result->end(), i), result->end());
  }
}

TEST(BulkLoadTest, ReplacesPreviousContents) {
  BulkFixture f;
  Rng rng(3);
  ASSERT_TRUE(f.tree->Insert(Vec{1.0, 2.0, 3.0}, 999999).ok());
  ASSERT_TRUE(f.tree->BulkLoad(RandomEntries(rng, 100, 3)).ok());
  EXPECT_EQ(f.tree->size(), 100u);
  auto result = f.tree->RangeQuery(Mbr::FromPoint(Vec{1.0, 2.0, 3.0}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::find(result->begin(), result->end(), RecordId{999999}),
            result->end());
}

TEST(BulkLoadTest, DoesNotLeakPages) {
  BulkFixture f;
  Rng rng(4);
  ASSERT_TRUE(f.tree->BulkLoad(RandomEntries(rng, 2000, 3)).ok());
  const std::size_t live_after_first = f.store.num_live_pages();
  // Re-loading the same data must free the old tree's pages.
  ASSERT_TRUE(f.tree->BulkLoad(RandomEntries(rng, 2000, 3)).ok());
  EXPECT_LE(f.store.num_live_pages(), live_after_first + 2);
}

TEST(BulkLoadTest, SupportsDynamicInsertAfterLoad) {
  BulkFixture f;
  Rng rng(5);
  ASSERT_TRUE(f.tree->BulkLoad(RandomEntries(rng, 1000, 3)).ok());
  for (RecordId i = 0; i < 200; ++i) {
    Vec p(3);
    for (auto& x : p) x = rng.Uniform(-100, 100);
    ASSERT_TRUE(f.tree->Insert(p, 100000 + i).ok());
  }
  EXPECT_EQ(f.tree->size(), 1200u);
  ASSERT_TRUE(f.tree->CheckInvariants().ok()) << f.tree->CheckInvariants();
}

TEST(BulkLoadTest, RejectsDimensionMismatch) {
  BulkFixture f;
  std::vector<Entry> bad;
  bad.push_back(Entry::ForRecord(1, Vec{1.0, 2.0}));  // dim 2, tree dim 3
  EXPECT_FALSE(f.tree->BulkLoad(std::move(bad)).ok());
}

TEST(BulkLoadTest, PacksLeavesWell) {
  BulkFixture f;
  Rng rng(6);
  ASSERT_TRUE(f.tree->BulkLoad(RandomEntries(rng, 3000, 3)).ok());
  auto stats = f.tree->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->avg_leaf_fill, 0.85) << "STR should pack leaves nearly full";
}

}  // namespace
}  // namespace tsss::index
