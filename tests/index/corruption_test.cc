// Failure injection: corrupt pages underneath a live R-tree and verify that
// every query path surfaces a clean Corruption status instead of crashing or
// silently returning wrong answers.

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/index/rtree.h"

namespace tsss::index {
namespace {

using geom::Line;
using geom::Mbr;
using geom::Vec;

struct CorruptionFixture : public ::testing::Test {
  storage::MemPageStore store;
  storage::BufferPool pool{&store, 64};
  std::unique_ptr<RTree> tree;
  std::vector<Vec> points;

  void SetUp() override {
    RTreeConfig config;
    config.dim = 2;
    config.max_entries = 4;
    config.leaf_max_entries = 4;
    auto created = RTree::Create(&pool, config);
    ASSERT_TRUE(created.ok());
    tree = std::move(created).value();
    Rng rng(1);
    for (RecordId i = 0; i < 200; ++i) {
      Vec p{rng.Uniform(-50, 50), rng.Uniform(-50, 50)};
      points.push_back(p);
      ASSERT_TRUE(tree->Insert(p, i).ok());
    }
    ASSERT_TRUE(pool.FlushAll().ok());
  }

  /// Overwrites every live page except the root's first page with garbage,
  /// so any descent must hit a bad page.
  void SmashAllButRoot() {
    ASSERT_TRUE(pool.Clear().ok());
    storage::Page garbage;
    garbage.bytes.fill(0x5A);
    for (storage::PageId id = 0; id < store.capacity_pages(); ++id) {
      if (id == tree->root_page()) continue;
      if (store.num_live_pages() == 0) break;
      Status s = store.Write(id, garbage);
      (void)s;  // freed pages are skipped via error
    }
  }
};

TEST_F(CorruptionFixture, RangeQuerySurfacesCorruption) {
  SmashAllButRoot();
  auto result = tree->RangeQuery(Mbr::FromCorners({-100, -100}, {100, 100}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(CorruptionFixture, LineQuerySurfacesCorruption) {
  SmashAllButRoot();
  const Line line{{0.0, 0.0}, {1.0, 1.0}};
  auto result = tree->LineQuery(line, 100.0, geom::PruneStrategy::kEepOnly,
                                nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(CorruptionFixture, KnnSurfacesCorruption) {
  SmashAllButRoot();
  const Line line{{0.0, 0.0}, {1.0, 1.0}};
  auto it = tree->NearestLineNeighbors(line);
  Status last = Status::OK();
  for (int i = 0; i < 500; ++i) {
    auto next = it.Next();
    if (!next.ok()) {
      last = next.status();
      break;
    }
    if (!next->has_value()) break;
  }
  EXPECT_EQ(last.code(), StatusCode::kCorruption);
}

TEST_F(CorruptionFixture, InsertSurfacesCorruption) {
  SmashAllButRoot();
  // The root decodes, but descending to choose a leaf cannot.
  Status s = tree->Insert(Vec{0.0, 0.0}, 99999);
  EXPECT_FALSE(s.ok());
}

TEST_F(CorruptionFixture, CheckInvariantsDetectsDamage) {
  SmashAllButRoot();
  EXPECT_FALSE(tree->CheckInvariants().ok());
}

TEST(CorruptionDetailTest, BadLevelInChildIsCaught) {
  // Surgical corruption: rewrite one leaf with a wrong level field.
  storage::MemPageStore store;
  storage::BufferPool pool(&store, 64);
  RTreeConfig config;
  config.dim = 2;
  config.max_entries = 4;
  config.leaf_max_entries = 4;
  auto tree = RTree::Create(&pool, config).value();
  Rng rng(2);
  for (RecordId i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        tree->Insert(Vec{rng.Uniform(0, 10), rng.Uniform(0, 10)}, i).ok());
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.Clear().ok());

  // Find some non-root page and re-encode it with a bogus level.
  const NodeCodec codec(2);
  for (storage::PageId id = 0; id < store.capacity_pages(); ++id) {
    if (id == tree->root_page()) continue;
    storage::Page page;
    if (!store.Read(id, &page).ok()) continue;
    auto part = codec.DecodePart(page);
    if (!part.ok() || part->level != 0) continue;
    Node fake;
    fake.level = 7;  // wrong level
    fake.entries = part->entries;
    ASSERT_TRUE(codec.Encode(fake, &page).ok());
    ASSERT_TRUE(store.Write(id, page).ok());
    break;
  }
  EXPECT_FALSE(tree->CheckInvariants().ok());
}

}  // namespace
}  // namespace tsss::index
