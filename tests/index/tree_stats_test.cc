#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/index/rtree.h"

namespace tsss::index {
namespace {

using geom::Vec;

struct StatsFixture {
  storage::MemPageStore store;
  storage::BufferPool pool{&store, 512};
  std::unique_ptr<RTree> tree;

  StatsFixture(std::size_t leaf_max = 16) {
    RTreeConfig config;
    config.dim = 3;
    config.max_entries = 8;
    config.leaf_max_entries = leaf_max;
    auto created = RTree::Create(&pool, config);
    EXPECT_TRUE(created.ok());
    tree = std::move(created).value();
  }
};

TEST(TreeStatsTest, EmptyTree) {
  StatsFixture f;
  auto stats = f.tree->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->height, 1u);
  EXPECT_EQ(stats->node_count, 1u);
  EXPECT_EQ(stats->node_pages, 1u);
  EXPECT_EQ(stats->leaf_count, 1u);
  EXPECT_EQ(stats->entry_count, 0u);
  EXPECT_EQ(stats->supernode_count, 0u);
  EXPECT_DOUBLE_EQ(stats->avg_leaf_fill, 0.0);
}

TEST(TreeStatsTest, CountsAreConsistent) {
  StatsFixture f;
  Rng rng(1);
  for (RecordId i = 0; i < 1000; ++i) {
    Vec p(3);
    for (auto& x : p) x = rng.Uniform(-10, 10);
    ASSERT_TRUE(f.tree->Insert(p, i).ok());
  }
  auto stats = f.tree->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->entry_count, 1000u);
  EXPECT_EQ(stats->height, f.tree->height());
  EXPECT_GE(stats->node_count, stats->leaf_count);
  EXPECT_GE(stats->node_pages, stats->node_count);
  // 1000 entries over leaves of <= 16: at least 63 leaves.
  EXPECT_GE(stats->leaf_count, 63u);
  // Fill fractions are sane.
  EXPECT_GT(stats->avg_leaf_fill, 0.3);
  EXPECT_LE(stats->avg_leaf_fill, 1.0);
  EXPECT_GT(stats->avg_internal_fill, 0.3);
  EXPECT_LE(stats->avg_internal_fill, 1.0);
}

TEST(TreeStatsTest, AspectRatioDetectsThinBoxes) {
  // Points along a line -> child boxes are long and thin -> large ratios.
  StatsFixture f;
  Rng rng(2);
  for (RecordId i = 0; i < 600; ++i) {
    const double t = rng.Uniform(0, 1000);
    Vec p{t, rng.Uniform(0, 0.5), rng.Uniform(0, 0.5)};
    ASSERT_TRUE(f.tree->Insert(p, i).ok());
  }
  auto stats = f.tree->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->avg_aspect_ratio, 5.0);
  EXPECT_GE(stats->avg_diag_to_min_side, stats->avg_aspect_ratio);
}

TEST(TreeStatsTest, OverlapZeroForWellSeparatedClusters) {
  StatsFixture f;
  Rng rng(3);
  // Two far-apart tight clusters; sibling boxes at the top level should not
  // overlap at all.
  for (RecordId i = 0; i < 100; ++i) {
    Vec p{rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1)};
    ASSERT_TRUE(f.tree->Insert(p, i).ok());
  }
  auto one_cluster = f.tree->ComputeStats();
  ASSERT_TRUE(one_cluster.ok());

  for (RecordId i = 100; i < 200; ++i) {
    Vec p{1e6 + rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1)};
    ASSERT_TRUE(f.tree->Insert(p, i).ok());
  }
  auto stats = f.tree->ComputeStats();
  ASSERT_TRUE(stats.ok());
  // Overlap cannot explode just because a distant cluster was added.
  EXPECT_LE(stats->total_overlap_volume,
            one_cluster->total_overlap_volume * 10 + 1.0);
}

TEST(TreeStatsTest, VisitNodesSeesEveryNodeOnce) {
  StatsFixture f;
  Rng rng(4);
  for (RecordId i = 0; i < 400; ++i) {
    Vec p(3);
    for (auto& x : p) x = rng.Uniform(-10, 10);
    ASSERT_TRUE(f.tree->Insert(p, i).ok());
  }
  std::size_t visited = 0;
  std::size_t leaf_entries = 0;
  ASSERT_TRUE(f.tree
                  ->VisitNodes([&](const Node& node, storage::PageId) {
                    ++visited;
                    if (node.is_leaf()) leaf_entries += node.entries.size();
                  })
                  .ok());
  auto stats = f.tree->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(visited, stats->node_count);
  EXPECT_EQ(leaf_entries, 400u);
}

}  // namespace
}  // namespace tsss::index
