// Randomized property testing for the deep structural validators: interleave
// insert / delete / bulk-load / range / line (penetration) / k-NN operations
// with deterministic tsss::Rng seeds, and run RTree::ValidateInvariants() and
// BufferPool::AuditPins() after EVERY operation. Example-based tests check
// one final state; this catches bookkeeping bugs (leaked pins, stale MBRs,
// dirty-count drift) in the intermediate states where they are born.

#include <map>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/index/rtree.h"

namespace tsss::index {
namespace {

using geom::Line;
using geom::Mbr;
using geom::Vec;

constexpr std::size_t kDim = 4;

Vec RandomPoint(Rng& rng) {
  Vec p(kDim);
  const double center = rng.Bernoulli(0.5) ? 0.0 : 40.0;
  for (auto& x : p) x = center + rng.Uniform(-10, 10);
  return p;
}

Line RandomLine(Rng& rng) {
  Vec p(kDim), d(kDim);
  for (std::size_t i = 0; i < kDim; ++i) {
    p[i] = rng.Uniform(-20, 50);
    d[i] = rng.Uniform(-1, 1);
  }
  return Line{p, d};
}

using Param = std::tuple<SplitAlgorithm, bool /*supernodes*/,
                         std::uint64_t /*seed*/>;

class InvariantPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(InvariantPropertyTest, ValidatorsHoldAfterEveryOperation) {
  const auto [split, supernodes, seed] = GetParam();

  storage::MemPageStore store;
  // Tiny pool so evictions and write-backs churn constantly; CRC
  // verification explicitly on so the stray-write detector runs even in
  // Release test builds.
  storage::BufferPool pool(&store, 16, /*verify_clean_crc=*/true);
  RTreeConfig config;
  config.dim = kDim;
  config.max_entries = 5;
  config.leaf_max_entries = 8;
  config.split = split;
  config.enable_supernodes = supernodes;
  config.supernode_overlap_fraction = 0.1;
  auto created = RTree::Create(&pool, config);
  ASSERT_TRUE(created.ok()) << created.status();
  RTree& tree = **created;

  std::map<RecordId, Vec> model;
  Rng rng(seed);
  RecordId next_record = 0;

  for (int step = 0; step < 400; ++step) {
    const double roll = rng.NextDouble();
    if (model.empty() || roll < 0.45) {
      const Vec p = RandomPoint(rng);
      ASSERT_TRUE(tree.Insert(p, next_record).ok()) << "step " << step;
      model[next_record] = p;
      ++next_record;
    } else if (roll < 0.60) {
      auto it = model.begin();
      std::advance(it, rng.UniformInt(
                           0, static_cast<std::int64_t>(model.size()) - 1));
      ASSERT_TRUE(tree.Delete(it->second, it->first).ok()) << "step " << step;
      model.erase(it);
    } else if (roll < 0.67) {
      // Bulk-load (STR) replacing the whole tree with the model's contents.
      std::vector<Entry> entries;
      entries.reserve(model.size());
      for (const auto& [record, point] : model) {
        entries.push_back(Entry::ForRecord(record, point));
      }
      ASSERT_TRUE(tree.BulkLoad(std::move(entries)).ok()) << "step " << step;
    } else if (roll < 0.78) {
      Vec lo(kDim), hi(kDim);
      for (std::size_t d = 0; d < kDim; ++d) {
        lo[d] = rng.Uniform(-20, 50);
        hi[d] = lo[d] + rng.Uniform(0, 30);
      }
      const Mbr box = Mbr::FromCorners(lo, hi);
      auto got = tree.RangeQuery(box);
      ASSERT_TRUE(got.ok());
      std::set<RecordId> expect;
      for (const auto& [record, point] : model) {
        if (box.Contains(point)) expect.insert(record);
      }
      ASSERT_EQ(std::set<RecordId>(got->begin(), got->end()), expect)
          << "step " << step;
    } else if (roll < 0.92) {
      // Line (penetration) query, rotating through every prune strategy -
      // all must agree with the model (no false dismissals, Theorem 3).
      const Line line = RandomLine(rng);
      const double eps = rng.Uniform(0, 12);
      const auto strategy = static_cast<geom::PruneStrategy>(step % 3);
      auto got = tree.LineQuery(line, eps, strategy, nullptr);
      ASSERT_TRUE(got.ok());
      std::set<RecordId> got_set;
      for (const LineMatch& m : *got) got_set.insert(m.record);
      std::set<RecordId> expect;
      for (const auto& [record, point] : model) {
        if (geom::Pld(point, line) <= eps) expect.insert(record);
      }
      ASSERT_EQ(got_set, expect) << "step " << step;
    } else {
      // k-NN by line distance: results must come back sorted and complete.
      const Line line = RandomLine(rng);
      const std::size_t k = static_cast<std::size_t>(rng.UniformInt(1, 5));
      auto got = tree.LineKnn(line, k);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got->size(), std::min(k, model.size())) << "step " << step;
      for (std::size_t i = 1; i < got->size(); ++i) {
        ASSERT_LE((*got)[i - 1].reduced_distance, (*got)[i].reduced_distance);
      }
    }

    ASSERT_TRUE(tree.ValidateInvariants().ok())
        << "step " << step << ": " << tree.ValidateInvariants();
    ASSERT_TRUE(pool.AuditPins().ok())
        << "step " << step << ": " << pool.AuditPins();
    ASSERT_EQ(tree.size(), model.size()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, InvariantPropertyTest,
    ::testing::Values(
        std::make_tuple(SplitAlgorithm::kLinear, false, std::uint64_t{11}),
        std::make_tuple(SplitAlgorithm::kQuadratic, false, std::uint64_t{12}),
        std::make_tuple(SplitAlgorithm::kRStar, false, std::uint64_t{13}),
        std::make_tuple(SplitAlgorithm::kRStar, true, std::uint64_t{14})),
    [](const testing::TestParamInfo<Param>& param_info) {
      return std::string(
                 SplitAlgorithmToString(std::get<0>(param_info.param))) +
             (std::get<1>(param_info.param) ? "_xtree" : "_plain") + "_seed" +
             std::to_string(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace tsss::index
