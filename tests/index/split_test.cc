#include "tsss/index/split.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"

namespace tsss::index {
namespace {

using geom::Mbr;
using geom::Vec;

std::vector<Entry> RandomPointEntries(Rng& rng, std::size_t count,
                                      std::size_t dim) {
  std::vector<Entry> out;
  for (std::size_t i = 0; i < count; ++i) {
    Vec p(dim);
    for (auto& x : p) x = rng.Uniform(-100, 100);
    out.push_back(Entry::ForRecord(i, p));
  }
  return out;
}

class SplitAlgorithmTest : public ::testing::TestWithParam<SplitAlgorithm> {};

TEST_P(SplitAlgorithmTest, PartitionIsCompleteAndDisjoint) {
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t dim = 2 + static_cast<std::size_t>(rng.UniformInt(0, 5));
    const std::size_t count = 21;  // M+1 with M=20
    const std::size_t min_fill = 8;
    std::vector<Entry> entries = RandomPointEntries(rng, count, dim);
    const SplitResult split = SplitEntries(entries, dim, min_fill, GetParam());

    EXPECT_EQ(split.left.size() + split.right.size(), count);
    EXPECT_GE(split.left.size(), min_fill);
    EXPECT_GE(split.right.size(), min_fill);

    std::multiset<RecordId> seen;
    for (const Entry& e : split.left) seen.insert(e.record);
    for (const Entry& e : split.right) seen.insert(e.record);
    EXPECT_EQ(seen.size(), count);
    for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(seen.count(i), 1u);
  }
}

TEST_P(SplitAlgorithmTest, HandlesMinimumInput) {
  Rng rng(102);
  std::vector<Entry> entries = RandomPointEntries(rng, 2, 3);
  const SplitResult split = SplitEntries(entries, 3, 1, GetParam());
  EXPECT_EQ(split.left.size(), 1u);
  EXPECT_EQ(split.right.size(), 1u);
}

TEST_P(SplitAlgorithmTest, HandlesDuplicatePoints) {
  // All entries at the same location: any valid partition is fine, but the
  // fill guarantees must hold and nothing may be lost.
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < 11; ++i) {
    entries.push_back(Entry::ForRecord(i, Vec{1.0, 1.0}));
  }
  const SplitResult split = SplitEntries(entries, 2, 4, GetParam());
  EXPECT_EQ(split.left.size() + split.right.size(), 11u);
  EXPECT_GE(split.left.size(), 4u);
  EXPECT_GE(split.right.size(), 4u);
}

TEST_P(SplitAlgorithmTest, SeparatesTwoObviousClusters) {
  // Two well-separated clusters: any sane split algorithm should cut between
  // them (groups should not mix clusters).
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < 6; ++i) {
    entries.push_back(
        Entry::ForRecord(i, Vec{static_cast<double>(i) * 0.01, 0.0}));
  }
  for (std::size_t i = 6; i < 12; ++i) {
    entries.push_back(
        Entry::ForRecord(i, Vec{1000.0 + static_cast<double>(i) * 0.01, 0.0}));
  }
  const SplitResult split = SplitEntries(entries, 2, 3, GetParam());

  auto cluster_of = [](const Entry& e) { return e.mbr.lo()[0] > 500.0; };
  const bool left_homogeneous =
      std::all_of(split.left.begin(), split.left.end(), cluster_of) ||
      std::none_of(split.left.begin(), split.left.end(), cluster_of);
  const bool right_homogeneous =
      std::all_of(split.right.begin(), split.right.end(), cluster_of) ||
      std::none_of(split.right.begin(), split.right.end(), cluster_of);
  EXPECT_TRUE(left_homogeneous && right_homogeneous)
      << SplitAlgorithmToString(GetParam()) << " mixed the clusters";
}

TEST_P(SplitAlgorithmTest, WorksOnRectangleEntries) {
  Rng rng(103);
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < 21; ++i) {
    Vec lo(4), hi(4);
    for (std::size_t d = 0; d < 4; ++d) {
      lo[d] = rng.Uniform(-50, 50);
      hi[d] = lo[d] + rng.Uniform(0.1, 20);
    }
    entries.push_back(
        Entry::ForChild(static_cast<storage::PageId>(i), Mbr::FromCorners(lo, hi)));
  }
  const SplitResult split = SplitEntries(entries, 4, 8, GetParam());
  EXPECT_EQ(split.left.size() + split.right.size(), 21u);
  EXPECT_GE(split.left.size(), 8u);
  EXPECT_GE(split.right.size(), 8u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SplitAlgorithmTest,
                         ::testing::Values(SplitAlgorithm::kLinear,
                                           SplitAlgorithm::kQuadratic,
                                           SplitAlgorithm::kRStar),
                         [](const auto& param_info) {
                           return std::string(SplitAlgorithmToString(param_info.param));
                         });

TEST(RStarSplitTest, MinimisesOverlapOnStripedData) {
  // Points on two parallel horizontal strips: the R* split should separate
  // the strips (zero overlap) rather than cut across them.
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < 10; ++i) {
    entries.push_back(Entry::ForRecord(i, Vec{static_cast<double>(i), 0.0}));
    entries.push_back(
        Entry::ForRecord(100 + i, Vec{static_cast<double>(i), 10.0}));
  }
  entries.push_back(Entry::ForRecord(999, Vec{5.0, 10.0}));
  const SplitResult split =
      SplitEntries(entries, 2, 8, SplitAlgorithm::kRStar);
  Mbr left(2), right(2);
  for (const Entry& e : split.left) left.Extend(e.mbr);
  for (const Entry& e : split.right) right.Extend(e.mbr);
  EXPECT_DOUBLE_EQ(left.OverlapVolume(right), 0.0);
}

TEST(SplitAlgorithmToStringTest, Names) {
  EXPECT_EQ(SplitAlgorithmToString(SplitAlgorithm::kLinear), "linear");
  EXPECT_EQ(SplitAlgorithmToString(SplitAlgorithm::kQuadratic), "quadratic");
  EXPECT_EQ(SplitAlgorithmToString(SplitAlgorithm::kRStar), "rstar");
}

}  // namespace
}  // namespace tsss::index
