#include "tsss/index/rtree.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"

namespace tsss::index {
namespace {

using geom::Mbr;
using geom::Vec;

struct TreeFixture {
  storage::MemPageStore store;
  storage::BufferPool pool{&store, 256};
  std::unique_ptr<RTree> tree;

  explicit TreeFixture(const RTreeConfig& config) {
    auto created = RTree::Create(&pool, config);
    EXPECT_TRUE(created.ok()) << created.status();
    tree = std::move(created).value();
  }
};

RTreeConfig SmallConfig(SplitAlgorithm split = SplitAlgorithm::kRStar) {
  RTreeConfig config;
  config.dim = 2;
  config.max_entries = 8;
  config.min_fill_fraction = 0.4;
  config.split = split;
  return config;
}

Vec RandomPoint(Rng& rng, std::size_t dim, double lo = -100, double hi = 100) {
  Vec p(dim);
  for (auto& x : p) x = rng.Uniform(lo, hi);
  return p;
}

TEST(RTreeCreateTest, ValidatesConfig) {
  storage::MemPageStore store;
  storage::BufferPool pool(&store, 16);
  RTreeConfig config;
  config.dim = 0;
  EXPECT_FALSE(RTree::Create(&pool, config).ok());
  config.dim = 6;
  config.max_entries = 1;
  EXPECT_FALSE(RTree::Create(&pool, config).ok());
  config.max_entries = 10000;  // beyond page capacity
  EXPECT_FALSE(RTree::Create(&pool, config).ok());
  config.max_entries = 20;
  config.min_fill_fraction = 0.9;  // 2m > M+1
  EXPECT_FALSE(RTree::Create(&pool, config).ok());
  config.min_fill_fraction = 0.4;
  config.reinsert_fraction = 0.9;  // M+1-p < m
  EXPECT_FALSE(RTree::Create(&pool, config).ok());
  config.reinsert_fraction = 0.3;
  EXPECT_TRUE(RTree::Create(&pool, config).ok());
}

TEST(RTreeCreateTest, PaperConfigurationIsValid) {
  // dim 6, M = 20, m = 8, p = 6 - Section 7's exact setting.
  storage::MemPageStore store;
  storage::BufferPool pool(&store, 16);
  RTreeConfig config;
  auto tree = RTree::Create(&pool, config);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->config().min_entries(), 8u);
  EXPECT_EQ((*tree)->config().reinsert_count(), 6u);
}

TEST(RTreeTest, EmptyTreeQueries) {
  TreeFixture f(SmallConfig());
  auto result = f.tree->RangeQuery(Mbr::FromCorners({-1e9, -1e9}, {1e9, 1e9}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(f.tree->size(), 0u);
  EXPECT_EQ(f.tree->height(), 1u);
  EXPECT_TRUE(f.tree->CheckInvariants().ok());
}

TEST(RTreeTest, InsertAndPointQuery) {
  TreeFixture f(SmallConfig());
  ASSERT_TRUE(f.tree->Insert(Vec{1.0, 2.0}, 42).ok());
  auto result = f.tree->RangeQuery(Mbr::FromPoint(Vec{1.0, 2.0}));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0], 42u);
}

TEST(RTreeTest, InsertRejectsWrongDim) {
  TreeFixture f(SmallConfig());
  EXPECT_FALSE(f.tree->Insert(Vec{1.0, 2.0, 3.0}, 1).ok());
}

class RTreeSplitParamTest : public ::testing::TestWithParam<SplitAlgorithm> {};

TEST_P(RTreeSplitParamTest, ManyInsertsKeepInvariantsAndFindEverything) {
  TreeFixture f(SmallConfig(GetParam()));
  Rng rng(42);
  std::vector<Vec> points;
  for (RecordId i = 0; i < 500; ++i) {
    points.push_back(RandomPoint(rng, 2));
    ASSERT_TRUE(f.tree->Insert(points.back(), i).ok());
  }
  EXPECT_EQ(f.tree->size(), 500u);
  ASSERT_TRUE(f.tree->CheckInvariants().ok()) << f.tree->CheckInvariants();
  EXPECT_GT(f.tree->height(), 1u);

  // Every point is found by a point query.
  for (RecordId i = 0; i < 500; ++i) {
    auto result = f.tree->RangeQuery(Mbr::FromPoint(points[i]));
    ASSERT_TRUE(result.ok());
    EXPECT_NE(std::find(result->begin(), result->end(), i), result->end())
        << "lost record " << i;
  }
}

TEST_P(RTreeSplitParamTest, RangeQueryMatchesLinearScan) {
  TreeFixture f(SmallConfig(GetParam()));
  Rng rng(43);
  std::vector<Vec> points;
  for (RecordId i = 0; i < 400; ++i) {
    points.push_back(RandomPoint(rng, 2));
    ASSERT_TRUE(f.tree->Insert(points.back(), i).ok());
  }
  for (int q = 0; q < 25; ++q) {
    Vec lo = RandomPoint(rng, 2);
    Vec hi = lo;
    for (std::size_t d = 0; d < 2; ++d) hi[d] += rng.Uniform(1, 80);
    const Mbr box = Mbr::FromCorners(lo, hi);

    auto result = f.tree->RangeQuery(box);
    ASSERT_TRUE(result.ok());
    std::set<RecordId> got(result->begin(), result->end());

    std::set<RecordId> expected;
    for (RecordId i = 0; i < 400; ++i) {
      if (box.Contains(points[i])) expected.insert(i);
    }
    EXPECT_EQ(got, expected);
  }
}

TEST_P(RTreeSplitParamTest, DuplicatePointsAllFound) {
  TreeFixture f(SmallConfig(GetParam()));
  const Vec p{5.0, 5.0};
  for (RecordId i = 0; i < 50; ++i) ASSERT_TRUE(f.tree->Insert(p, i).ok());
  ASSERT_TRUE(f.tree->CheckInvariants().ok());
  auto result = f.tree->RangeQuery(Mbr::FromPoint(p));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 50u);
}

INSTANTIATE_TEST_SUITE_P(AllSplits, RTreeSplitParamTest,
                         ::testing::Values(SplitAlgorithm::kLinear,
                                           SplitAlgorithm::kQuadratic,
                                           SplitAlgorithm::kRStar),
                         [](const auto& param_info) {
                           return std::string(SplitAlgorithmToString(param_info.param));
                         });

TEST(RTreeDeleteTest, DeleteMissingRecordIsNotFound) {
  TreeFixture f(SmallConfig());
  ASSERT_TRUE(f.tree->Insert(Vec{1.0, 1.0}, 1).ok());
  EXPECT_EQ(f.tree->Delete(Vec{1.0, 1.0}, 2).code(), StatusCode::kNotFound);
  EXPECT_EQ(f.tree->Delete(Vec{9.0, 9.0}, 1).code(), StatusCode::kNotFound);
}

TEST(RTreeDeleteTest, InsertThenDeleteAllLeavesEmptyTree) {
  TreeFixture f(SmallConfig());
  Rng rng(44);
  std::vector<Vec> points;
  for (RecordId i = 0; i < 300; ++i) {
    points.push_back(RandomPoint(rng, 2));
    ASSERT_TRUE(f.tree->Insert(points.back(), i).ok());
  }
  // Delete in a shuffled order.
  std::vector<RecordId> order(300);
  for (RecordId i = 0; i < 300; ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(i) - 1))]);
  }
  for (std::size_t k = 0; k < order.size(); ++k) {
    const RecordId i = order[k];
    ASSERT_TRUE(f.tree->Delete(points[i], i).ok()) << "record " << i;
    if (k % 37 == 0) {
      ASSERT_TRUE(f.tree->CheckInvariants().ok())
          << "after " << (k + 1) << " deletes: " << f.tree->CheckInvariants();
    }
  }
  EXPECT_EQ(f.tree->size(), 0u);
  EXPECT_EQ(f.tree->height(), 1u);
  ASSERT_TRUE(f.tree->CheckInvariants().ok());
}

TEST(RTreeDeleteTest, RemainingRecordsStillFindableAfterDeletes) {
  TreeFixture f(SmallConfig());
  Rng rng(45);
  std::vector<Vec> points;
  for (RecordId i = 0; i < 200; ++i) {
    points.push_back(RandomPoint(rng, 2));
    ASSERT_TRUE(f.tree->Insert(points.back(), i).ok());
  }
  // Delete even records.
  for (RecordId i = 0; i < 200; i += 2) {
    ASSERT_TRUE(f.tree->Delete(points[i], i).ok());
  }
  ASSERT_TRUE(f.tree->CheckInvariants().ok());
  EXPECT_EQ(f.tree->size(), 100u);
  for (RecordId i = 1; i < 200; i += 2) {
    auto result = f.tree->RangeQuery(Mbr::FromPoint(points[i]));
    ASSERT_TRUE(result.ok());
    EXPECT_NE(std::find(result->begin(), result->end(), i), result->end());
  }
  // Deleted ones are gone.
  for (RecordId i = 0; i < 200; i += 2) {
    auto result = f.tree->RangeQuery(Mbr::FromPoint(points[i]));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(std::find(result->begin(), result->end(), i), result->end());
  }
}

TEST(RTreeDeleteTest, MixedInsertDeleteChurn) {
  TreeFixture f(SmallConfig());
  Rng rng(46);
  std::vector<std::pair<Vec, RecordId>> live;
  RecordId next_id = 0;
  for (int step = 0; step < 1500; ++step) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      Vec p = RandomPoint(rng, 2);
      ASSERT_TRUE(f.tree->Insert(p, next_id).ok());
      live.emplace_back(std::move(p), next_id);
      ++next_id;
    } else {
      const std::size_t pick = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      ASSERT_TRUE(f.tree->Delete(live[pick].first, live[pick].second).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (step % 100 == 99) {
      ASSERT_TRUE(f.tree->CheckInvariants().ok());
      EXPECT_EQ(f.tree->size(), live.size());
    }
  }
}

TEST(RTreeTest, HigherDimensionalTree) {
  RTreeConfig config;
  config.dim = 6;
  config.max_entries = 20;
  TreeFixture f(config);
  Rng rng(47);
  std::vector<Vec> points;
  for (RecordId i = 0; i < 300; ++i) {
    points.push_back(RandomPoint(rng, 6));
    ASSERT_TRUE(f.tree->Insert(points.back(), i).ok());
  }
  ASSERT_TRUE(f.tree->CheckInvariants().ok());
  for (RecordId i = 0; i < 300; i += 17) {
    auto result = f.tree->RangeQuery(Mbr::FromPoint(points[i]));
    ASSERT_TRUE(result.ok());
    EXPECT_NE(std::find(result->begin(), result->end(), i), result->end());
  }
}

TEST(RTreeTest, ComputeStatsReflectsShape) {
  TreeFixture f(SmallConfig());
  Rng rng(48);
  for (RecordId i = 0; i < 500; ++i) {
    ASSERT_TRUE(f.tree->Insert(RandomPoint(rng, 2), i).ok());
  }
  auto stats = f.tree->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->entry_count, 500u);
  EXPECT_GT(stats->leaf_count, 1u);
  EXPECT_GT(stats->node_count, stats->leaf_count);
  EXPECT_EQ(stats->height, f.tree->height());
  EXPECT_GT(stats->avg_leaf_fill, 0.3);
  EXPECT_LE(stats->avg_leaf_fill, 1.0);
}

TEST(RTreeTest, NodePagesAreCountedByBufferPool) {
  TreeFixture f(SmallConfig());
  Rng rng(49);
  for (RecordId i = 0; i < 200; ++i) {
    ASSERT_TRUE(f.tree->Insert(RandomPoint(rng, 2), i).ok());
  }
  ASSERT_TRUE(f.pool.Clear().ok());
  f.pool.ResetMetrics();
  auto result = f.tree->RangeQuery(Mbr::FromCorners({-10.0, -10.0}, {10.0, 10.0}));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(f.pool.metrics().logical_reads, 0u);
}

}  // namespace
}  // namespace tsss::index
