#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/index/rtree.h"

namespace tsss::index {
namespace {

using geom::Line;
using geom::Mbr;
using geom::PruneStrategy;
using geom::Vec;

struct LineQueryFixture : public ::testing::Test {
  storage::MemPageStore store;
  storage::BufferPool pool{&store, 256};
  std::unique_ptr<RTree> tree;
  std::vector<Vec> points;
  Rng rng{4242};

  void SetUp() override {
    RTreeConfig config;
    config.dim = 3;
    config.max_entries = 10;
    auto created = RTree::Create(&pool, config);
    ASSERT_TRUE(created.ok());
    tree = std::move(created).value();
    for (RecordId i = 0; i < 600; ++i) {
      Vec p(3);
      for (auto& x : p) x = rng.Uniform(-50, 50);
      points.push_back(p);
      ASSERT_TRUE(tree->Insert(p, i).ok());
    }
  }

  Line RandomLine() {
    Vec p(3), d(3);
    for (std::size_t i = 0; i < 3; ++i) {
      p[i] = rng.Uniform(-50, 50);
      d[i] = rng.Uniform(-1, 1);
    }
    return Line{p, d};
  }
};

TEST_F(LineQueryFixture, MatchesBruteForceForAllStrategies) {
  for (int q = 0; q < 20; ++q) {
    const Line line = RandomLine();
    const double eps = rng.Uniform(0.5, 10.0);

    std::set<RecordId> expected;
    for (RecordId i = 0; i < points.size(); ++i) {
      if (geom::Pld(points[i], line) <= eps) expected.insert(i);
    }

    for (PruneStrategy strategy :
         {PruneStrategy::kEepOnly, PruneStrategy::kBoundingSpheres,
          PruneStrategy::kExactDistance}) {
      auto result = tree->LineQuery(line, eps, strategy, nullptr);
      ASSERT_TRUE(result.ok());
      std::set<RecordId> got;
      for (const LineMatch& m : *result) got.insert(m.record);
      EXPECT_EQ(got, expected)
          << "strategy " << geom::PruneStrategyToString(strategy) << " query "
          << q;
    }
  }
}

TEST_F(LineQueryFixture, ReportedDistancesAreCorrect) {
  const Line line = RandomLine();
  auto result = tree->LineQuery(line, 8.0, PruneStrategy::kEepOnly, nullptr);
  ASSERT_TRUE(result.ok());
  for (const LineMatch& m : *result) {
    EXPECT_NEAR(m.reduced_distance, geom::Pld(points[m.record], line), 1e-9);
    EXPECT_LE(m.reduced_distance, 8.0);
  }
}

TEST_F(LineQueryFixture, ZeroEpsilonFindsPointsOnLine) {
  // Insert points exactly on a known line, query with eps = 0.
  const Line line{{0.0, 0.0, 0.0}, {1.0, 2.0, 3.0}};
  for (int k = 0; k < 5; ++k) {
    ASSERT_TRUE(
        tree->Insert(line.At(static_cast<double>(k)), 10000 + static_cast<RecordId>(k))
            .ok());
  }
  auto result = tree->LineQuery(line, 0.0, PruneStrategy::kEepOnly, nullptr);
  ASSERT_TRUE(result.ok());
  std::set<RecordId> got;
  for (const LineMatch& m : *result) got.insert(m.record);
  for (RecordId k = 0; k < 5; ++k) EXPECT_TRUE(got.count(10000 + k)) << k;
}

TEST_F(LineQueryFixture, DegenerateLineActsAsPointQuery) {
  const Line degenerate{points[7], Vec{0.0, 0.0, 0.0}};
  auto result = tree->LineQuery(degenerate, 1e-9, PruneStrategy::kEepOnly, nullptr);
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const LineMatch& m : *result) {
    if (m.record == 7) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(LineQueryFixture, StatsAccumulateAcrossNodes) {
  geom::PenetrationStats stats;
  const Line line = RandomLine();
  auto result = tree->LineQuery(line, 5.0, PruneStrategy::kBoundingSpheres, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.tests, 0u);
  EXPECT_GE(stats.tests, stats.visits);
}

TEST_F(LineQueryFixture, LargerEpsilonIsMonotone) {
  const Line line = RandomLine();
  auto small = tree->LineQuery(line, 2.0, PruneStrategy::kEepOnly, nullptr);
  auto large = tree->LineQuery(line, 6.0, PruneStrategy::kEepOnly, nullptr);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  std::set<RecordId> small_set, large_set;
  for (const LineMatch& m : *small) small_set.insert(m.record);
  for (const LineMatch& m : *large) large_set.insert(m.record);
  EXPECT_TRUE(std::includes(large_set.begin(), large_set.end(),
                            small_set.begin(), small_set.end()));
}

TEST_F(LineQueryFixture, RejectsBadArguments) {
  const Line wrong_dim{{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_FALSE(tree->LineQuery(wrong_dim, 1.0, PruneStrategy::kEepOnly, nullptr).ok());
  const Line line = RandomLine();
  EXPECT_FALSE(tree->LineQuery(line, -1.0, PruneStrategy::kEepOnly, nullptr).ok());
}

TEST_F(LineQueryFixture, ExactStrategyVisitsNoMoreNodesThanEep) {
  const Line line = RandomLine();
  geom::PenetrationStats eep_stats, exact_stats;
  ASSERT_TRUE(tree->LineQuery(line, 5.0, PruneStrategy::kEepOnly, &eep_stats).ok());
  ASSERT_TRUE(
      tree->LineQuery(line, 5.0, PruneStrategy::kExactDistance, &exact_stats).ok());
  EXPECT_LE(exact_stats.visits, eep_stats.visits);
}

}  // namespace
}  // namespace tsss::index
