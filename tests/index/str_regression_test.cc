// Regression test for STR bulk loading at realistic scale: bulk-build an
// engine over a corpus with >= 1000 windows, run the deep structural
// validators, and cross-check indexed range-query answers against the
// sequential-scan baseline (which shares no code with the index path) on
// random queries. Any disagreement is a false dismissal or a phantom match.

#include <algorithm>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/core/engine.h"
#include "tsss/core/seq_scan.h"
#include "tsss/seq/stock_generator.h"

namespace tsss::core {
namespace {

using geom::Vec;

constexpr std::size_t kWindow = 16;

EngineConfig RegressionConfig() {
  EngineConfig config;
  config.window = kWindow;
  config.reduced_dim = 4;
  config.tree.max_entries = 10;
  config.buffer_pool_pages = 64;
  return config;
}

TEST(StrRegressionTest, BulkLoadedTreeAgreesWithSeqScanOn1kWindows) {
  // 10 series x 116 values -> 10 * (116 - 16 + 1) = 1010 windows.
  seq::StockMarketConfig market_config;
  market_config.num_companies = 10;
  market_config.values_per_company = 116;
  market_config.seed = 4242;
  const auto corpus = seq::GenerateStockMarket(market_config);

  auto engine = SearchEngine::Create(RegressionConfig());
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE((*engine)->BulkBuild(corpus).ok());
  ASSERT_EQ((*engine)->num_indexed_windows(), 1010u);

  // The STR-packed tree must satisfy every structural invariant, and the
  // build must not leak a single page pin.
  ASSERT_TRUE((*engine)->tree().ValidateInvariants().ok())
      << (*engine)->tree().ValidateInvariants();
  ASSERT_TRUE((*engine)->pool().AuditPins().ok())
      << (*engine)->pool().AuditPins();

  // Independent baseline over the same dataset.
  SequentialScanner scanner(&(*engine)->dataset(), kWindow);

  Rng rng(77);
  for (int q = 0; q < 25; ++q) {
    // Half the queries are real windows of the corpus (guaranteed
    // near-matches); half are fresh random shapes.
    Vec query(kWindow);
    if (q % 2 == 0) {
      const auto& series =
          corpus[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(corpus.size()) - 1))];
      const auto offset = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(series.values.size() - kWindow)));
      std::copy_n(series.values.begin() + static_cast<std::ptrdiff_t>(offset),
                  kWindow, query.begin());
    } else {
      for (auto& x : query) x = rng.Uniform(0, 60);
    }
    const double eps = rng.Uniform(0.05, 2.0);

    auto indexed = (*engine)->RangeQuery(query, eps);
    ASSERT_TRUE(indexed.ok()) << indexed.status();
    auto scanned = scanner.RangeQuery(query, eps);
    ASSERT_TRUE(scanned.ok()) << scanned.status();

    std::set<std::pair<storage::SeriesId, std::uint32_t>> indexed_set;
    for (const Match& m : *indexed) indexed_set.emplace(m.series, m.offset);
    std::set<std::pair<storage::SeriesId, std::uint32_t>> scanned_set;
    for (const Match& m : *scanned) scanned_set.emplace(m.series, m.offset);
    ASSERT_EQ(indexed_set, scanned_set) << "query " << q << " eps " << eps;

    // Distances must agree with the baseline match-for-match.
    auto it = indexed->begin();
    for (const Match& s : *scanned) {
      while (it != indexed->end() &&
             std::make_pair(it->series, it->offset) !=
                 std::make_pair(s.series, s.offset)) {
        ++it;
      }
      ASSERT_NE(it, indexed->end());
      EXPECT_NEAR(it->distance, s.distance, 1e-8);
    }

    ASSERT_TRUE((*engine)->pool().AuditPins().ok()) << "query " << q;
  }

  // The tree is untouched by queries: invariants still hold afterwards.
  ASSERT_TRUE((*engine)->tree().ValidateInvariants().ok());
}

}  // namespace
}  // namespace tsss::core
