#include "tsss/index/node.h"

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/storage/page.h"

namespace tsss::index {
namespace {

using geom::Mbr;
using geom::Vec;

TEST(NodeCodecTest, CapacitiesFitThePaperSetting) {
  // dim 6, 4 KiB pages: internal entries are 4 + 2*6*8 = 100 bytes, so at
  // least M=20 (+1 transient) internal entries must fit - the paper's node
  // size. Leaf entries are 8 + 48 = 56 bytes.
  const NodeCodec codec(6);
  EXPECT_GE(codec.max_internal_entries(), 21u);
  EXPECT_GE(codec.max_leaf_entries(), codec.max_internal_entries());
}

TEST(NodeCodecTest, LeafRoundTrip) {
  const NodeCodec codec(3);
  Node node;
  node.level = 0;
  node.entries.push_back(Entry::ForRecord(0xDEADBEEFCAFEBABEull, Vec{1.5, -2.5, 3.75}));
  node.entries.push_back(Entry::ForRecord(7, Vec{0.0, 0.0, 0.0}));

  storage::Page page;
  ASSERT_TRUE(codec.Encode(node, &page).ok());
  auto decoded = codec.Decode(page);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->level, 0);
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries[0].record, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(decoded->entries[0].mbr.lo(), (Vec{1.5, -2.5, 3.75}));
  EXPECT_EQ(decoded->entries[0].mbr.hi(), (Vec{1.5, -2.5, 3.75}));
  EXPECT_EQ(decoded->entries[1].record, 7u);
}

TEST(NodeCodecTest, InternalRoundTrip) {
  const NodeCodec codec(2);
  Node node;
  node.level = 3;
  node.entries.push_back(
      Entry::ForChild(42, Mbr::FromCorners({-1.0, -2.0}, {3.0, 4.0})));
  node.entries.push_back(
      Entry::ForChild(77, Mbr::FromCorners({10.0, 10.0}, {11.0, 12.0})));

  storage::Page page;
  ASSERT_TRUE(codec.Encode(node, &page).ok());
  auto decoded = codec.Decode(page);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->level, 3);
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries[0].child, 42u);
  EXPECT_EQ(decoded->entries[0].mbr, Mbr::FromCorners({-1.0, -2.0}, {3.0, 4.0}));
  EXPECT_EQ(decoded->entries[1].child, 77u);
}

TEST(NodeCodecTest, EmptyNodeRoundTrip) {
  const NodeCodec codec(6);
  Node node;
  storage::Page page;
  ASSERT_TRUE(codec.Encode(node, &page).ok());
  auto decoded = codec.Decode(page);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->entries.empty());
  EXPECT_TRUE(decoded->is_leaf());
}

TEST(NodeCodecTest, RejectsOverCapacity) {
  const NodeCodec codec(6);
  Node node;
  node.level = 0;
  const Vec point(6, 0.0);
  for (std::size_t i = 0; i <= codec.max_leaf_entries(); ++i) {
    node.entries.push_back(Entry::ForRecord(i, point));
  }
  storage::Page page;
  EXPECT_EQ(codec.Encode(node, &page).code(), StatusCode::kResourceExhausted);
}

TEST(NodeCodecTest, RejectsDimensionMismatch) {
  const NodeCodec codec(6);
  Node node;
  node.entries.push_back(Entry::ForRecord(1, Vec{1.0, 2.0}));  // dim 2
  storage::Page page;
  EXPECT_EQ(codec.Encode(node, &page).code(), StatusCode::kInvalidArgument);
}

TEST(NodeCodecTest, RejectsEmptyMbrEntry) {
  const NodeCodec codec(2);
  Node node;
  node.level = 1;
  Entry e;
  e.mbr = Mbr(2);  // empty
  e.child = 5;
  node.entries.push_back(e);
  storage::Page page;
  EXPECT_FALSE(codec.Encode(node, &page).ok());
}

TEST(NodeCodecTest, DecodeDetectsBadMagic) {
  const NodeCodec codec(6);
  storage::Page page;  // zeroed: magic 0
  EXPECT_EQ(codec.Decode(page).status().code(), StatusCode::kCorruption);
}

TEST(NodeCodecTest, DecodeDetectsDimMismatch) {
  const NodeCodec codec6(6);
  const NodeCodec codec3(3);
  Node node;
  node.entries.push_back(Entry::ForRecord(1, Vec(6, 1.0)));
  storage::Page page;
  ASSERT_TRUE(codec6.Encode(node, &page).ok());
  EXPECT_EQ(codec3.Decode(page).status().code(), StatusCode::kCorruption);
}

TEST(NodeCodecTest, FullCapacityRoundTripRandomised) {
  Rng rng(77);
  for (std::size_t dim : {2u, 6u, 10u, 16u}) {
    const NodeCodec codec(dim);
    Node node;
    node.level = 1;
    for (std::size_t i = 0; i < codec.max_internal_entries(); ++i) {
      Vec lo(dim), hi(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        lo[d] = rng.Uniform(-100, 100);
        hi[d] = lo[d] + rng.Uniform(0, 10);
      }
      node.entries.push_back(Entry::ForChild(static_cast<storage::PageId>(i),
                                             Mbr::FromCorners(lo, hi)));
    }
    storage::Page page;
    ASSERT_TRUE(codec.Encode(node, &page).ok());
    auto decoded = codec.Decode(page);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->entries.size(), node.entries.size());
    for (std::size_t i = 0; i < node.entries.size(); ++i) {
      EXPECT_EQ(decoded->entries[i].child, node.entries[i].child);
      EXPECT_TRUE(decoded->entries[i].mbr == node.entries[i].mbr);
    }
  }
}

TEST(NodeTest, ComputeMbrCoversAllEntries) {
  Node node;
  node.level = 0;
  node.entries.push_back(Entry::ForRecord(1, Vec{0.0, 5.0}));
  node.entries.push_back(Entry::ForRecord(2, Vec{3.0, -1.0}));
  const Mbr box = node.ComputeMbr(2);
  EXPECT_EQ(box.lo(), (Vec{0.0, -1.0}));
  EXPECT_EQ(box.hi(), (Vec{3.0, 5.0}));
}

TEST(NodeTest, ComputeMbrOfEmptyNodeIsEmpty) {
  Node node;
  EXPECT_TRUE(node.ComputeMbr(4).empty());
}

}  // namespace
}  // namespace tsss::index
