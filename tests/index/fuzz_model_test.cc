// Model-based randomized testing: drive the R-tree with random operation
// sequences (insert / delete / range query / line query) and compare every
// observable result against a trivially correct in-memory reference model.
// Runs across split algorithms and the supernode mode (TEST_P).

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/index/rtree.h"

namespace tsss::index {
namespace {

using geom::Line;
using geom::Mbr;
using geom::Vec;

/// The reference model: a flat map from record id to point.
class ReferenceIndex {
 public:
  void Insert(RecordId record, const Vec& point) { points_[record] = point; }
  void Erase(RecordId record) { points_.erase(record); }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  const std::pair<const RecordId, Vec>& Sample(Rng& rng) const {
    auto it = points_.begin();
    std::advance(it, rng.UniformInt(0, static_cast<std::int64_t>(points_.size()) - 1));
    return *it;
  }

  std::set<RecordId> RangeQuery(const Mbr& box) const {
    std::set<RecordId> out;
    for (const auto& [record, point] : points_) {
      if (box.Contains(point)) out.insert(record);
    }
    return out;
  }

  std::set<RecordId> LineQuery(const Line& line, double eps) const {
    std::set<RecordId> out;
    for (const auto& [record, point] : points_) {
      if (geom::Pld(point, line) <= eps) out.insert(record);
    }
    return out;
  }

 private:
  std::map<RecordId, Vec> points_;
};

using FuzzParam = std::tuple<SplitAlgorithm, bool /*supernodes*/,
                             std::uint64_t /*seed*/>;

class RTreeFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(RTreeFuzzTest, RandomOpsAgreeWithReferenceModel) {
  const auto [split, supernodes, seed] = GetParam();
  constexpr std::size_t kDim = 4;

  storage::MemPageStore store;
  storage::BufferPool pool(&store, 128);
  RTreeConfig config;
  config.dim = kDim;
  config.max_entries = 6;
  config.leaf_max_entries = 10;
  config.split = split;
  config.enable_supernodes = supernodes;
  config.supernode_overlap_fraction = 0.1;
  auto created = RTree::Create(&pool, config);
  ASSERT_TRUE(created.ok()) << created.status();
  RTree& tree = **created;

  ReferenceIndex model;
  Rng rng(seed);
  RecordId next_record = 0;

  for (int step = 0; step < 2500; ++step) {
    const double roll = rng.NextDouble();
    if (model.empty() || roll < 0.55) {
      // Insert. Cluster half the points to provoke interesting splits.
      Vec p(kDim);
      const double center = rng.Bernoulli(0.5) ? 0.0 : 50.0;
      for (auto& x : p) x = center + rng.Uniform(-10, 10);
      ASSERT_TRUE(tree.Insert(p, next_record).ok()) << "step " << step;
      model.Insert(next_record, p);
      ++next_record;
    } else if (roll < 0.75) {
      // Delete a random live record.
      const auto& [record, point] = model.Sample(rng);
      ASSERT_TRUE(tree.Delete(point, record).ok())
          << "step " << step << " record " << record;
      model.Erase(record);
    } else if (roll < 0.9) {
      // Range query.
      Vec lo(kDim), hi(kDim);
      for (std::size_t d = 0; d < kDim; ++d) {
        lo[d] = rng.Uniform(-20, 60);
        hi[d] = lo[d] + rng.Uniform(0, 40);
      }
      const Mbr box = Mbr::FromCorners(lo, hi);
      auto result = tree.RangeQuery(box);
      ASSERT_TRUE(result.ok());
      const std::set<RecordId> got(result->begin(), result->end());
      ASSERT_EQ(got, model.RangeQuery(box)) << "step " << step;
    } else {
      // Line query.
      Vec p(kDim), d(kDim);
      for (std::size_t i = 0; i < kDim; ++i) {
        p[i] = rng.Uniform(-20, 60);
        d[i] = rng.Uniform(-1, 1);
      }
      const Line line{p, d};
      const double eps = rng.Uniform(0, 15);
      auto result = tree.LineQuery(line, eps, geom::PruneStrategy::kEepOnly,
                                   nullptr);
      ASSERT_TRUE(result.ok());
      std::set<RecordId> got;
      for (const LineMatch& m : *result) got.insert(m.record);
      ASSERT_EQ(got, model.LineQuery(line, eps)) << "step " << step;
    }

    if (step % 250 == 249) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << "step " << step << ": " << tree.CheckInvariants();
      ASSERT_EQ(tree.size(), model.size()) << "step " << step;
    }
  }

  // Final teardown: delete everything; no pages may leak beyond the root.
  while (!model.empty()) {
    const auto& [record, point] = model.Sample(rng);
    ASSERT_TRUE(tree.Delete(point, record).ok());
    model.Erase(record);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(store.num_live_pages(), 1u) << "pages leaked";
}

INSTANTIATE_TEST_SUITE_P(
    Modes, RTreeFuzzTest,
    ::testing::Values(
        std::make_tuple(SplitAlgorithm::kLinear, false, std::uint64_t{1}),
        std::make_tuple(SplitAlgorithm::kQuadratic, false, std::uint64_t{2}),
        std::make_tuple(SplitAlgorithm::kRStar, false, std::uint64_t{3}),
        std::make_tuple(SplitAlgorithm::kRStar, false, std::uint64_t{4}),
        std::make_tuple(SplitAlgorithm::kRStar, true, std::uint64_t{5}),
        std::make_tuple(SplitAlgorithm::kRStar, true, std::uint64_t{6}),
        std::make_tuple(SplitAlgorithm::kLinear, true, std::uint64_t{7})),
    [](const testing::TestParamInfo<FuzzParam>& param_info) {
      return std::string(SplitAlgorithmToString(std::get<0>(param_info.param))) +
             (std::get<1>(param_info.param) ? "_xtree" : "_plain") + "_seed" +
             std::to_string(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace tsss::index
