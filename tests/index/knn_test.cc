#include <algorithm>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/index/rtree.h"

namespace tsss::index {
namespace {

using geom::Line;
using geom::Vec;

struct KnnFixture : public ::testing::Test {
  storage::MemPageStore store;
  storage::BufferPool pool{&store, 256};
  std::unique_ptr<RTree> tree;
  std::vector<Vec> points;
  Rng rng{777};

  void SetUp() override {
    RTreeConfig config;
    config.dim = 4;
    config.max_entries = 10;
    auto created = RTree::Create(&pool, config);
    ASSERT_TRUE(created.ok());
    tree = std::move(created).value();
    for (RecordId i = 0; i < 500; ++i) {
      Vec p(4);
      for (auto& x : p) x = rng.Uniform(-30, 30);
      points.push_back(p);
      ASSERT_TRUE(tree->Insert(p, i).ok());
    }
  }

  Line RandomLine() {
    Vec p(4), d(4);
    for (std::size_t i = 0; i < 4; ++i) {
      p[i] = rng.Uniform(-30, 30);
      d[i] = rng.Uniform(-1, 1);
    }
    return Line{p, d};
  }

  std::vector<LineMatch> BruteKnn(const Line& line, std::size_t k) {
    std::vector<LineMatch> all;
    for (RecordId i = 0; i < points.size(); ++i) {
      all.push_back(LineMatch{i, geom::Pld(points[i], line)});
    }
    std::sort(all.begin(), all.end(),
              [](const LineMatch& a, const LineMatch& b) {
                return a.reduced_distance < b.reduced_distance;
              });
    all.resize(std::min(k, all.size()));
    return all;
  }
};

TEST_F(KnnFixture, MatchesBruteForceDistances) {
  for (int q = 0; q < 15; ++q) {
    const Line line = RandomLine();
    for (std::size_t k : {1u, 5u, 20u}) {
      auto result = tree->LineKnn(line, k);
      ASSERT_TRUE(result.ok());
      const std::vector<LineMatch> expected = BruteKnn(line, k);
      ASSERT_EQ(result->size(), expected.size());
      for (std::size_t i = 0; i < k; ++i) {
        // Distances must match exactly (records may tie-swap).
        EXPECT_NEAR((*result)[i].reduced_distance, expected[i].reduced_distance,
                    1e-9)
            << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST_F(KnnFixture, ResultsSortedAscending) {
  const Line line = RandomLine();
  auto result = tree->LineKnn(line, 25);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 1; i < result->size(); ++i) {
    EXPECT_LE((*result)[i - 1].reduced_distance, (*result)[i].reduced_distance);
  }
}

TEST_F(KnnFixture, KLargerThanTreeReturnsEverything) {
  const Line line = RandomLine();
  auto result = tree->LineKnn(line, 10000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), points.size());
}

TEST_F(KnnFixture, KZeroReturnsNothing) {
  auto result = tree->LineKnn(RandomLine(), 0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST_F(KnnFixture, IteratorYieldsNonDecreasingDistances) {
  const Line line = RandomLine();
  auto it = tree->NearestLineNeighbors(line);
  double prev = -1.0;
  std::size_t count = 0;
  while (true) {
    auto next = it.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    EXPECT_GE((*next)->reduced_distance, prev - 1e-12);
    prev = (*next)->reduced_distance;
    ++count;
  }
  EXPECT_EQ(count, points.size());
}

TEST_F(KnnFixture, NearestOfExactPointIsItself) {
  const Line degenerate{points[123], Vec(4, 0.0)};
  auto result = tree->LineKnn(degenerate, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_NEAR((*result)[0].reduced_distance, 0.0, 1e-12);
}

TEST_F(KnnFixture, WrongDimRejected) {
  const Line wrong{{0.0}, {1.0}};
  EXPECT_FALSE(tree->LineKnn(wrong, 3).ok());
}


TEST_F(KnnFixture, PointKnnMatchesBruteForce) {
  Rng prng(31337);
  for (int q = 0; q < 10; ++q) {
    Vec target(4);
    for (auto& x : target) x = prng.Uniform(-30, 30);
    auto result = tree->PointKnn(target, 8);
    ASSERT_TRUE(result.ok());
    // Brute force by point distance.
    std::vector<double> dists;
    for (const auto& p : points) dists.push_back(geom::Distance(p, target));
    std::sort(dists.begin(), dists.end());
    ASSERT_EQ(result->size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_NEAR((*result)[i].reduced_distance, dists[i], 1e-9) << i;
    }
  }
}

TEST_F(KnnFixture, PointKnnRejectsWrongDim) {
  EXPECT_FALSE(tree->PointKnn(Vec{1.0, 2.0}, 3).ok());
}

TEST_F(KnnFixture, PointKnnOfStoredPointIsExact) {
  auto result = tree->PointKnn(points[42], 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_NEAR((*result)[0].reduced_distance, 0.0, 1e-12);
}

}  // namespace
}  // namespace tsss::index
