// Malformed-page tests for NodeCodec::DecodePart/Decode: bytes that decode
// to impossible nodes (oversized entry counts, non-finite or inverted box
// coordinates) must come back as Corruption statuses. Regression tests for
// the decode hardening — before it, a NaN coordinate sailed into
// Mbr::FromCorners, whose invariant DCHECKs abort checked builds, turning a
// bad page into a crash.

#include "tsss/index/node.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "tsss/storage/page.h"

namespace tsss::index {
namespace {

constexpr std::size_t kHeaderBytes = 5 * sizeof(std::uint16_t) + sizeof(std::uint32_t);

/// Builds a well-formed one-entry internal page for dim 2, returning it so
/// tests can corrupt individual fields.
storage::Page EncodeOneInternalEntry(const NodeCodec& codec) {
  Node node;
  node.level = 1;
  node.entries.push_back(
      Entry::ForChild(5, geom::Mbr::FromCorners({0.0, -1.0}, {2.0, 1.0})));
  storage::Page page;
  EXPECT_TRUE(codec.Encode(node, &page).ok());
  return page;
}

void PatchU16(storage::Page* page, std::size_t offset, std::uint16_t value) {
  std::memcpy(page->bytes.data() + offset, &value, sizeof(value));
}

void PatchDouble(storage::Page* page, std::size_t offset, double value) {
  std::memcpy(page->bytes.data() + offset, &value, sizeof(value));
}

TEST(NodeMalformedTest, OversizedEntryCountIsCorruption) {
  const NodeCodec codec(2, false);
  storage::Page page = EncodeOneInternalEntry(codec);
  // count lives at header offset 4; anything above the per-page capacity
  // would read past the page image.
  PatchU16(&page, 4, 0xFFFF);
  auto decoded = codec.DecodePart(page);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(NodeMalformedTest, CountJustAboveCapacityIsCorruption) {
  const NodeCodec codec(2, false);
  storage::Page page = EncodeOneInternalEntry(codec);
  PatchU16(&page, 4, static_cast<std::uint16_t>(codec.max_internal_entries() + 1));
  auto decoded = codec.DecodePart(page);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(NodeMalformedTest, NanCoordinateIsCorruptionNotCrash) {
  const NodeCodec codec(2, false);
  storage::Page page = EncodeOneInternalEntry(codec);
  // First lo coordinate of entry 0: header + child u32.
  PatchDouble(&page, kHeaderBytes + sizeof(std::uint32_t),
              std::numeric_limits<double>::quiet_NaN());
  auto decoded = codec.DecodePart(page);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(NodeMalformedTest, InfiniteCoordinateIsCorruption) {
  const NodeCodec codec(2, false);
  storage::Page page = EncodeOneInternalEntry(codec);
  PatchDouble(&page, kHeaderBytes + sizeof(std::uint32_t),
              std::numeric_limits<double>::infinity());
  auto decoded = codec.DecodePart(page);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(NodeMalformedTest, InvertedBoxIsCorruption) {
  const NodeCodec codec(2, false);
  storage::Page page = EncodeOneInternalEntry(codec);
  // Push lo[0] above hi[0] (= 2.0).
  PatchDouble(&page, kHeaderBytes + sizeof(std::uint32_t), 10.0);
  auto decoded = codec.DecodePart(page);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(NodeMalformedTest, NanInBoxLeafIsCorruption) {
  const NodeCodec codec(2, true);
  Node node;
  node.level = 0;
  Entry e;
  e.record = 9;
  e.mbr = geom::Mbr::FromCorners({0.0, 0.0}, {1.0, 1.0});
  node.entries.push_back(e);
  storage::Page page;
  ASSERT_TRUE(codec.Encode(node, &page).ok());
  // hi[1] of the box leaf entry: header + record u64 + 3 doubles.
  PatchDouble(&page, kHeaderBytes + sizeof(std::uint64_t) + 3 * sizeof(double),
              std::numeric_limits<double>::quiet_NaN());
  auto decoded = codec.DecodePart(page);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(NodeMalformedTest, PointLeavesAcceptAnyFiniteOrder) {
  // Point leaves carry a single coordinate vector; there is no hi to invert,
  // and decoding must keep accepting every finite point.
  const NodeCodec codec(2, false);
  Node node;
  node.level = 0;
  const double point[] = {3.5, -7.25};
  node.entries.push_back(Entry::ForRecord(11, point));
  storage::Page page;
  ASSERT_TRUE(codec.Encode(node, &page).ok());
  auto decoded = codec.Decode(page);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->entries[0].record, 11u);
  EXPECT_EQ(decoded->entries[0].mbr.lo()[0], 3.5);
}

}  // namespace
}  // namespace tsss::index
