#include "tsss/core/seq_scan.h"

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/core/oracle.h"
#include "tsss/geom/line.h"
#include "tsss/seq/window.h"

namespace tsss::core {
namespace {

using geom::Vec;

TEST(SeqScanTest, FindsAllWindowsWithinEps) {
  seq::Dataset ds;
  // Series: a ramp. Query: another ramp (affine image of every sub-ramp).
  Vec ramp(32);
  for (std::size_t i = 0; i < 32; ++i) ramp[i] = static_cast<double>(i);
  ds.Add("ramp", ramp);
  SequentialScanner scanner(&ds, 8);

  Vec query(8);
  for (std::size_t i = 0; i < 8; ++i) query[i] = 100.0 + 3.0 * static_cast<double>(i);
  auto matches = scanner.RangeQuery(query, 1e-9);
  ASSERT_TRUE(matches.ok());
  // Every window of a straight line is an affine image of the query ramp.
  EXPECT_EQ(matches->size(), 32u - 8u + 1u);
  for (const Match& m : *matches) {
    EXPECT_NEAR(m.distance, 0.0, 1e-9);
    EXPECT_NEAR(m.transform.scale, 1.0 / 3.0, 1e-9);
  }
}

TEST(SeqScanTest, UsesLemmaTwoDistances) {
  // Scanner distances must equal LLD(scaling line, shifting line) - the
  // paper's described implementation of the baseline.
  seq::Dataset ds;
  Rng rng(71);
  Vec values(64);
  for (auto& x : values) x = rng.Uniform(0, 50);
  ds.Add("s", values);
  SequentialScanner scanner(&ds, 8);

  Vec query(8);
  for (auto& x : query) x = rng.Uniform(0, 50);
  auto matches = scanner.RangeQuery(query, 1e9);  // everything matches
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 57u);
  for (const Match& m : *matches) {
    Vec window(values.begin() + m.offset, values.begin() + m.offset + 8);
    const double lld =
        geom::Lld(geom::Line::ScalingLine(query), geom::Line::ShiftingLine(window));
    EXPECT_NEAR(m.distance, lld, 1e-8);
  }
}

TEST(SeqScanTest, PageCostIsConstantInEps) {
  seq::Dataset ds;
  ds.Add("s", Vec(2000, 1.0));
  SequentialScanner scanner(&ds, 16);
  const Vec query(16, 1.0);

  ds.store().ResetMetrics();
  ASSERT_TRUE(scanner.RangeQuery(query, 0.0).ok());
  const std::uint64_t pages_small = ds.store().metrics().logical_reads;
  ds.store().ResetMetrics();
  ASSERT_TRUE(scanner.RangeQuery(query, 100.0).ok());
  const std::uint64_t pages_large = ds.store().metrics().logical_reads;

  EXPECT_EQ(pages_small, pages_large);
  EXPECT_EQ(pages_small, ds.store().TotalPages());
}

TEST(SeqScanTest, RespectsCostConstraints) {
  seq::Dataset ds;
  Vec down(16);
  for (std::size_t i = 0; i < 16; ++i) down[i] = 16.0 - static_cast<double>(i);
  ds.Add("down", down);
  SequentialScanner scanner(&ds, 16);

  Vec up(16);
  for (std::size_t i = 0; i < 16; ++i) up[i] = static_cast<double>(i);
  auto all = scanner.RangeQuery(up, 1e-6);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 1u);  // matches with a = -1
  auto positive = scanner.RangeQuery(up, 1e-6, TransformCost::PositiveScale());
  ASSERT_TRUE(positive.ok());
  EXPECT_TRUE(positive->empty());
}

TEST(SeqScanTest, KnnReturnsClosestFirst) {
  seq::Dataset ds;
  Rng rng(72);
  Vec values(200);
  for (auto& x : values) x = rng.Uniform(0, 10);
  ds.Add("s", values);
  SequentialScanner scanner(&ds, 16);

  Vec query(16);
  for (auto& x : query) x = rng.Uniform(0, 10);
  auto top = scanner.Knn(query, 10);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 10u);
  for (std::size_t i = 1; i < top->size(); ++i) {
    EXPECT_LE((*top)[i - 1].distance, (*top)[i].distance);
  }
}

TEST(SeqScanTest, KnnWithKBeyondWindowsReturnsAll) {
  seq::Dataset ds;
  ds.Add("s", Vec(20, 1.0));
  SequentialScanner scanner(&ds, 16);
  auto top = scanner.Knn(Vec(16, 1.0), 100);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 5u);
}

TEST(SeqScanTest, WrongQueryLengthRejected) {
  seq::Dataset ds;
  ds.Add("s", Vec(50, 1.0));
  SequentialScanner scanner(&ds, 16);
  EXPECT_FALSE(scanner.RangeQuery(Vec(8, 0.0), 1.0).ok());
  EXPECT_FALSE(scanner.Knn(Vec(8, 0.0), 3).ok());
  EXPECT_FALSE(scanner.RangeQuery(Vec(16, 0.0), -0.5).ok());
}

TEST(SeqScanTest, StrideSkipsWindows) {
  seq::Dataset ds;
  Vec ramp(32);
  for (std::size_t i = 0; i < 32; ++i) ramp[i] = static_cast<double>(i);
  ds.Add("ramp", ramp);
  SequentialScanner scanner(&ds, 8, 4);
  Vec query(8);
  for (std::size_t i = 0; i < 8; ++i) query[i] = static_cast<double>(i);
  auto matches = scanner.RangeQuery(query, 1e-9);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 7u);  // offsets 0,4,...,24
  for (const Match& m : *matches) EXPECT_EQ(m.offset % 4, 0u);
}

}  // namespace
}  // namespace tsss::core
