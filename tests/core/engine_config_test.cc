// Configuration-space sweep: every invalid EngineConfig must be rejected at
// Create() with a clean status (never an abort or a half-built engine), and
// a representative grid of valid configurations must construct and answer a
// smoke query.

#include <tuple>

#include <gtest/gtest.h>

#include "tsss/core/engine.h"

namespace tsss::core {
namespace {

TEST(EngineConfigTest, InvalidConfigsRejected) {
  struct Case {
    const char* name;
    EngineConfig config;
  };
  std::vector<Case> cases;

  {
    EngineConfig c;
    c.window = 0;
    cases.push_back({"zero window", c});
  }
  {
    EngineConfig c;
    c.window = 1;
    cases.push_back({"window one", c});
  }
  {
    EngineConfig c;
    c.stride = 0;
    cases.push_back({"zero stride", c});
  }
  {
    EngineConfig c;
    c.reduced_dim = 0;
    cases.push_back({"zero reduced dim", c});
  }
  {
    EngineConfig c;
    c.reduced_dim = 7;  // odd for DFT
    cases.push_back({"odd dft dim", c});
  }
  {
    EngineConfig c;
    c.window = 4;
    c.reduced_dim = 8;  // more coefficients than the window has
    cases.push_back({"too many dft coeffs", c});
  }
  {
    EngineConfig c;
    c.reducer = reduce::ReducerKind::kHaar;
    c.window = 100;  // not a power of two
    cases.push_back({"haar non-pow2 window", c});
  }
  {
    EngineConfig c;
    c.tree.max_entries = 1;
    cases.push_back({"tree fanout one", c});
  }
  {
    EngineConfig c;
    c.tree.max_entries = 500;  // beyond page capacity at dim 6
    cases.push_back({"tree fanout beyond page", c});
  }
  {
    EngineConfig c;
    c.tree.min_fill_fraction = 0.95;
    cases.push_back({"min fill too large", c});
  }
  {
    EngineConfig c;
    c.tree.reinsert_fraction = 0.95;
    cases.push_back({"reinsert too large", c});
  }

  for (const Case& test_case : cases) {
    auto engine = SearchEngine::Create(test_case.config);
    EXPECT_FALSE(engine.ok()) << test_case.name;
    if (!engine.ok()) {
      EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument)
          << test_case.name << ": " << engine.status();
    }
  }
}

using ValidParam = std::tuple<reduce::ReducerKind, std::size_t /*window*/,
                              std::size_t /*dim*/, std::size_t /*subtrail*/>;

class ValidConfigTest : public ::testing::TestWithParam<ValidParam> {};

TEST_P(ValidConfigTest, ConstructsAndAnswersSmokeQuery) {
  const auto [reducer, window, dim, subtrail] = GetParam();
  EngineConfig config;
  config.reducer = reducer;
  config.window = window;
  config.reduced_dim = dim;
  config.subtrail_len = subtrail;
  config.tree.max_entries = 8;
  auto engine = SearchEngine::Create(config);
  ASSERT_TRUE(engine.ok()) << engine.status();

  // Ramp data: every window is an affine image of a ramp query.
  geom::Vec ramp(window * 3);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<double>(i);
  }
  ASSERT_TRUE((*engine)->AddSeries("ramp", ramp).ok());
  geom::Vec query(window);
  for (std::size_t i = 0; i < window; ++i) {
    query[i] = 5.0 + 2.0 * static_cast<double>(i);
  }
  auto matches = (*engine)->RangeQuery(query, 1e-6);
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_EQ(matches->size(), ramp.size() - window + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ValidConfigTest,
    ::testing::Values(
        std::make_tuple(reduce::ReducerKind::kDft, std::size_t{16},
                        std::size_t{4}, std::size_t{0}),
        std::make_tuple(reduce::ReducerKind::kDft, std::size_t{128},
                        std::size_t{6}, std::size_t{0}),
        std::make_tuple(reduce::ReducerKind::kDft, std::size_t{16},
                        std::size_t{4}, std::size_t{5}),
        std::make_tuple(reduce::ReducerKind::kPaa, std::size_t{20},
                        std::size_t{5}, std::size_t{0}),
        std::make_tuple(reduce::ReducerKind::kPaa, std::size_t{20},
                        std::size_t{5}, std::size_t{3}),
        std::make_tuple(reduce::ReducerKind::kHaar, std::size_t{32},
                        std::size_t{8}, std::size_t{0}),
        std::make_tuple(reduce::ReducerKind::kIdentity, std::size_t{8},
                        std::size_t{8}, std::size_t{0}),
        std::make_tuple(reduce::ReducerKind::kIdentity, std::size_t{8},
                        std::size_t{8}, std::size_t{7})),
    [](const testing::TestParamInfo<ValidParam>& param_info) {
      return std::string(reduce::ReducerKindToString(std::get<0>(param_info.param))) +
             "_w" + std::to_string(std::get<1>(param_info.param)) + "_d" +
             std::to_string(std::get<2>(param_info.param)) + "_t" +
             std::to_string(std::get<3>(param_info.param));
    });

}  // namespace
}  // namespace tsss::core
