// Regression coverage for the verify-loop ExecControl polls.
//
// The candidate-verification loops in SearchEngine::RangeQuery, Knn, and
// LongRangeQuery read data pages after the index walk has finished, so a
// deadline that only fires inside RTree::LoadNode would go unnoticed for
// the whole verify phase. Each loop therefore calls PollExecControl()
// before every page read (tsss_lint's deadline-poll check enforces this).
//
// Strategy: run the query once to completion under an ExecControl and
// record the total poll count N. The index walk polls once per node load
// and the verify loop once per candidate, in that order, so with at least
// one candidate the Nth (final) poll happens inside the verify loop.
// Re-running with a check budget of N-1 must therefore trip
// DeadlineExceeded at exactly that verify-loop poll. If the poll were
// removed, the re-run would observe fewer than N polls and succeed —
// failing the test.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "tsss/common/exec_control.h"
#include "tsss/core/engine.h"
#include "tsss/seq/stock_generator.h"

namespace tsss::core {
namespace {

using geom::Vec;

EngineConfig SmallEngineConfig() {
  EngineConfig config;
  config.window = 16;
  config.reduced_dim = 4;
  config.tree.max_entries = 8;
  config.buffer_pool_pages = 128;
  return config;
}

std::vector<seq::TimeSeries> SmallMarket(std::size_t companies = 20,
                                         std::size_t length = 120,
                                         std::uint64_t seed = 99) {
  seq::StockMarketConfig config;
  config.num_companies = companies;
  config.values_per_company = length;
  config.seed = seed;
  return seq::GenerateStockMarket(config);
}

class DeadlinePollTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto engine = SearchEngine::Create(SmallEngineConfig());
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(*engine);
    market_ = SmallMarket();
    for (const auto& series : market_) {
      ASSERT_TRUE(engine_->AddSeries(series.name, series.values).ok());
    }
  }

  // An indexed window, so every query below has at least one candidate.
  Vec SelfQuery() const {
    return Vec(market_[3].values.begin() + 20, market_[3].values.begin() + 36);
  }

  std::unique_ptr<SearchEngine> engine_;
  std::vector<seq::TimeSeries> market_;
};

TEST_F(DeadlinePollTest, RangeQueryVerifyLoopPollsDeadline) {
  const Vec query = SelfQuery();

  ExecControl baseline;
  std::uint64_t total_polls = 0;
  QueryStats stats;
  {
    ScopedExecControl scoped(&baseline);
    auto matches = engine_->RangeQuery(query, 0.5, {}, &stats);
    ASSERT_TRUE(matches.ok());
    ASSERT_FALSE(matches->empty());
    total_polls = baseline.checks();
  }
  // The verify loop must have contributed polls beyond the per-node-load
  // ones; otherwise the budget below would trip during the index walk and
  // prove nothing about the verify loop.
  ASSERT_GE(stats.candidates, 1u);
  ASSERT_GT(total_polls, stats.index_page_reads);

  ExecControl budgeted;
  budgeted.set_check_budget(total_polls - 1);
  ScopedExecControl scoped(&budgeted);
  auto matches = engine_->RangeQuery(query, 0.5);
  ASSERT_FALSE(matches.ok());
  EXPECT_EQ(matches.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(DeadlinePollTest, KnnVerifyLoopPollsDeadline) {
  const Vec query = SelfQuery();

  ExecControl baseline;
  std::uint64_t total_polls = 0;
  QueryStats stats;
  {
    ScopedExecControl scoped(&baseline);
    auto matches = engine_->Knn(query, 5, {}, &stats);
    ASSERT_TRUE(matches.ok());
    ASSERT_EQ(matches->size(), 5u);
    total_polls = baseline.checks();
  }
  ASSERT_GE(stats.candidates, 1u);
  ASSERT_GT(total_polls, stats.index_page_reads);

  ExecControl budgeted;
  budgeted.set_check_budget(total_polls - 1);
  ScopedExecControl scoped(&budgeted);
  auto matches = engine_->Knn(query, 5);
  ASSERT_FALSE(matches.ok());
  EXPECT_EQ(matches.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(DeadlinePollTest, LongRangeQueryVerifyLoopPollsDeadline) {
  // Two disjoint pieces (window 16, |Q| = 32), verified against the full
  // query by LongRangeQuery's own verify loop.
  const Vec query(market_[3].values.begin() + 20,
                  market_[3].values.begin() + 52);

  ExecControl baseline;
  std::uint64_t total_polls = 0;
  QueryStats stats;
  {
    ScopedExecControl scoped(&baseline);
    auto matches = engine_->LongRangeQuery(query, 0.5, {}, &stats);
    ASSERT_TRUE(matches.ok());
    ASSERT_FALSE(matches->empty());
    total_polls = baseline.checks();
  }
  ASSERT_GE(stats.candidates, 1u);
  ASSERT_GT(total_polls, stats.index_page_reads);

  ExecControl budgeted;
  budgeted.set_check_budget(total_polls - 1);
  ScopedExecControl scoped(&budgeted);
  auto matches = engine_->LongRangeQuery(query, 0.5);
  ASSERT_FALSE(matches.ok());
  EXPECT_EQ(matches.status().code(), StatusCode::kDeadlineExceeded);
}

// Sanity on the budget hook itself: budget 0 disables, budget 1 trips on
// the second poll.
TEST(ExecControlBudgetTest, CheckBudgetTripsAfterNPolls) {
  ExecControl control;
  EXPECT_TRUE(control.Check().ok());
  EXPECT_EQ(control.checks(), 1u);

  control.set_check_budget(1);
  ExecControl fresh;
  fresh.set_check_budget(2);
  EXPECT_TRUE(fresh.Check().ok());
  EXPECT_TRUE(fresh.Check().ok());
  EXPECT_EQ(fresh.Check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(fresh.checks(), 3u);
}

}  // namespace
}  // namespace tsss::core
