#include "tsss/core/similarity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/core/oracle.h"
#include "tsss/seq/window.h"

namespace tsss::core {
namespace {

using geom::Vec;

TEST(TransformCostTest, DefaultAllowsEverything) {
  const TransformCost cost;
  EXPECT_TRUE(cost.Allows(geom::ScaleShift{1e9, -1e9}));
  EXPECT_TRUE(cost.Allows(geom::ScaleShift{-5.0, 0.0}));
}

TEST(TransformCostTest, BoundsAreInclusive) {
  TransformCost cost;
  cost.min_scale = 0.5;
  cost.max_scale = 2.0;
  cost.min_offset = -10.0;
  cost.max_offset = 10.0;
  EXPECT_TRUE(cost.Allows(geom::ScaleShift{0.5, 10.0}));
  EXPECT_TRUE(cost.Allows(geom::ScaleShift{2.0, -10.0}));
  EXPECT_FALSE(cost.Allows(geom::ScaleShift{0.49, 0.0}));
  EXPECT_FALSE(cost.Allows(geom::ScaleShift{1.0, 10.1}));
}

TEST(TransformCostTest, PositiveScaleFactory) {
  const TransformCost cost = TransformCost::PositiveScale();
  EXPECT_TRUE(cost.Allows(geom::ScaleShift{0.1, 5.0}));
  EXPECT_FALSE(cost.Allows(geom::ScaleShift{-0.1, 5.0}));
}

TEST(QueryContextTest, AlignMatchesReferenceImplementation) {
  Rng rng(61);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.UniformInt(0, 60));
    Vec q(n), w(n);
    for (std::size_t i = 0; i < n; ++i) {
      q[i] = rng.Uniform(-100, 100);
      w[i] = rng.Uniform(-100, 100);
    }
    const QueryContext ctx(q);
    const geom::Alignment fast = ctx.Align(w);
    const geom::Alignment reference = geom::AlignScaleShift(q, w);
    EXPECT_NEAR(fast.distance, reference.distance, 1e-6);
    EXPECT_NEAR(fast.transform.scale, reference.transform.scale, 1e-7);
    EXPECT_NEAR(fast.transform.offset, reference.transform.offset, 1e-6);
  }
}

TEST(QueryContextTest, ConstantQueryHandled) {
  const Vec constant(8, 3.0);
  const QueryContext ctx(constant);
  EXPECT_TRUE(ctx.constant_query());
  const Vec w = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  const geom::Alignment a = ctx.Align(w);
  EXPECT_DOUBLE_EQ(a.transform.scale, 0.0);
  EXPECT_DOUBLE_EQ(a.transform.offset, 4.5);
}

TEST(QueryContextTest, DistanceBeatsGridOracle) {
  // The closed-form minimum can never exceed any grid-sampled transform.
  Rng rng(62);
  for (int trial = 0; trial < 30; ++trial) {
    Vec q(12), w(12);
    for (std::size_t i = 0; i < 12; ++i) {
      q[i] = rng.Uniform(-10, 10);
      w[i] = rng.Uniform(-10, 10);
    }
    const QueryContext ctx(q);
    const double closed = ctx.Distance(w);
    const double grid = GridMinDistance(q, w, -10, 10, -50, 50, 60);
    EXPECT_LE(closed, grid + 1e-9);
    // And the grid should get reasonably close to it (the optimum is inside
    // the sampled box for these magnitudes).
    EXPECT_NEAR(closed, grid, 2.0);
  }
}

TEST(VerifyCandidateTest, AcceptsWithinEps) {
  const Vec q = {1.0, 2.0, 3.0, 4.0};
  const Vec w = {2.0, 4.0, 6.0, 8.0};  // exactly 2*q
  const QueryContext ctx(q);
  const auto match =
      VerifyCandidate(ctx, w, seq::MakeRecordId(3, 17), 0.001, TransformCost{});
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->series, 3u);
  EXPECT_EQ(match->offset, 17u);
  EXPECT_NEAR(match->transform.scale, 2.0, 1e-9);
  EXPECT_NEAR(match->transform.offset, 0.0, 1e-9);
  EXPECT_NEAR(match->distance, 0.0, 1e-9);
}

TEST(VerifyCandidateTest, RejectsBeyondEps) {
  const Vec q = {0.0, 1.0, 0.0, -1.0};
  const Vec w = {5.0, -3.0, 8.0, 1.0};
  const QueryContext ctx(q);
  const double d = ctx.Distance(w);
  EXPECT_FALSE(
      VerifyCandidate(ctx, w, 0, d * 0.99, TransformCost{}).has_value());
  EXPECT_TRUE(VerifyCandidate(ctx, w, 0, d * 1.01, TransformCost{}).has_value());
}

TEST(VerifyCandidateTest, RejectsByCost) {
  const Vec q = {1.0, 2.0, 3.0, 4.0};
  const Vec w = {-1.0, -2.0, -3.0, -4.0};  // scale -1
  const QueryContext ctx(q);
  EXPECT_TRUE(VerifyCandidate(ctx, w, 0, 0.01, TransformCost{}).has_value());
  EXPECT_FALSE(
      VerifyCandidate(ctx, w, 0, 0.01, TransformCost::PositiveScale()).has_value());
}

TEST(OracleTest, TransformedDistanceBasic) {
  const Vec u = {1.0, 2.0};
  const Vec v = {3.0, 5.0};
  // 2*u + 1 = (3, 5): exact.
  EXPECT_NEAR(TransformedDistance(u, v, geom::ScaleShift{2.0, 1.0}), 0.0, 1e-12);
  EXPECT_NEAR(TransformedDistance(u, v, geom::ScaleShift{1.0, 0.0}),
              std::sqrt(4.0 + 9.0), 1e-12);
}

}  // namespace
}  // namespace tsss::core
