// Edge-case behaviours of the engine not covered by the main suites:
// mixed-length corpora, ingestion ordering constraints, degenerate epsilon,
// and stats determinism under the cold-cache model.

#include <cstdio>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/core/engine.h"
#include "tsss/seq/patterns.h"

namespace tsss::core {
namespace {

using geom::Vec;

EngineConfig SmallConfig() {
  EngineConfig config;
  config.window = 16;
  config.reduced_dim = 4;
  config.tree.max_entries = 8;
  return config;
}

TEST(EngineEdgeTest, MixedLengthCorpusIndexesOnlyCompleteWindows) {
  auto engine = SearchEngine::Create(SmallConfig());
  ASSERT_TRUE(engine.ok());
  std::vector<seq::TimeSeries> corpus;
  corpus.push_back({"empty", {}});
  corpus.push_back({"short", Vec(7, 1.0)});
  corpus.push_back({"exact", Vec(16, 2.0)});
  corpus.push_back({"long", Vec(20, 3.0)});
  ASSERT_TRUE((*engine)->BulkBuild(corpus).ok());
  EXPECT_EQ((*engine)->num_indexed_windows(), 0u + 0u + 1u + 5u);
  EXPECT_EQ((*engine)->dataset().size(), 4u);  // all series stored regardless
}

TEST(EngineEdgeTest, AppendToNonLastSeriesFailsCleanly) {
  auto engine = SearchEngine::Create(SmallConfig());
  ASSERT_TRUE(engine.ok());
  auto first = (*engine)->AddSeries("a", Vec(20, 1.0));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE((*engine)->AddSeries("b", Vec(20, 2.0)).ok());
  const std::size_t before = (*engine)->num_indexed_windows();
  const double v = 3.0;
  EXPECT_EQ((*engine)->Append(*first, std::span<const double>(&v, 1)).code(),
            StatusCode::kFailedPrecondition);
  // The failed append must not have half-indexed anything.
  EXPECT_EQ((*engine)->num_indexed_windows(), before);
  ASSERT_TRUE((*engine)->tree().CheckInvariants().ok());
}

TEST(EngineEdgeTest, AppendSingleValuesStreamEquivalentToBatch) {
  Rng rng(77);
  Vec values(48);
  for (auto& x : values) x = rng.Uniform(0, 10);

  auto batch = SearchEngine::Create(SmallConfig());
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE((*batch)->AddSeries("s", values).ok());

  auto streamed = SearchEngine::Create(SmallConfig());
  ASSERT_TRUE(streamed.ok());
  auto id = (*streamed)->AddSeries("s", std::span<const double>(values.data(), 1));
  ASSERT_TRUE(id.ok());
  for (std::size_t i = 1; i < values.size(); ++i) {
    ASSERT_TRUE(
        (*streamed)->Append(*id, std::span<const double>(&values[i], 1)).ok());
  }
  EXPECT_EQ((*streamed)->num_indexed_windows(), (*batch)->num_indexed_windows());

  const Vec query(values.begin() + 13, values.begin() + 29);
  auto a = (*batch)->RangeQuery(query, 0.5);
  auto b = (*streamed)->RangeQuery(query, 0.5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].record, (*b)[i].record);
  }
}

TEST(EngineEdgeTest, HugeEpsilonReturnsEveryWindow) {
  auto engine = SearchEngine::Create(SmallConfig());
  ASSERT_TRUE(engine.ok());
  Rng rng(78);
  Vec values(60);
  for (auto& x : values) x = rng.Uniform(0, 100);
  ASSERT_TRUE((*engine)->AddSeries("s", values).ok());
  auto matches = (*engine)->RangeQuery(seq::RampPattern(16), 1e12);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 45u);
}

TEST(EngineEdgeTest, QueryStatsDeterministicUnderColdCache) {
  auto engine = SearchEngine::Create(SmallConfig());
  ASSERT_TRUE(engine.ok());
  Rng rng(79);
  for (int s = 0; s < 6; ++s) {
    Vec values(80);
    for (auto& x : values) x = rng.Uniform(0, 10);
    char name[16];
    std::snprintf(name, sizeof(name), "s%d", s);
    ASSERT_TRUE((*engine)->AddSeries(name, values).ok());
  }
  const Vec query = seq::SinePattern(16);
  QueryStats first, second;
  ASSERT_TRUE((*engine)->RangeQuery(query, 0.7, TransformCost{}, &first).ok());
  ASSERT_TRUE((*engine)->RangeQuery(query, 0.7, TransformCost{}, &second).ok());
  EXPECT_EQ(first.index_page_reads, second.index_page_reads);
  EXPECT_EQ(first.data_page_reads, second.data_page_reads);
  EXPECT_EQ(first.candidates, second.candidates);
  EXPECT_EQ(first.matches, second.matches);
}

TEST(EngineEdgeTest, MinimumWindowLengthTwo) {
  EngineConfig config;
  config.window = 2;
  config.reducer = reduce::ReducerKind::kIdentity;
  config.reduced_dim = 2;
  config.tree.max_entries = 8;
  auto engine = SearchEngine::Create(config);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE((*engine)->AddSeries("s", Vec{1.0, 2.0, 4.0, 4.0}).ok());
  // Window (1,2): every non-constant length-2 window is an affine image.
  auto matches = (*engine)->RangeQuery(Vec{10.0, 20.0}, 1e-9);
  ASSERT_TRUE(matches.ok());
  // (1,2) and (2,4) match exactly; (4,4) is constant - not reachable from a
  // non-constant query with distance 0... but a*x+b with a=0,b=4 reaches it!
  // Distance 0 via a = 0: all three windows match.
  EXPECT_EQ(matches->size(), 3u);
}

}  // namespace
}  // namespace tsss::core
