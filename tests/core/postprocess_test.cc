#include "tsss/core/postprocess.h"

#include <gtest/gtest.h>

#include "tsss/seq/window.h"

namespace tsss::core {
namespace {

Match MakeMatch(storage::SeriesId series, std::uint32_t offset, double distance) {
  Match m;
  m.record = seq::MakeRecordId(series, offset);
  m.series = series;
  m.offset = offset;
  m.distance = distance;
  return m;
}

TEST(SuppressOverlapsTest, CollapsesConsecutiveRun) {
  std::vector<Match> matches = {
      MakeMatch(1, 100, 0.5), MakeMatch(1, 101, 0.3), MakeMatch(1, 102, 0.4),
      MakeMatch(1, 500, 0.9),
  };
  const auto out = SuppressOverlaps(std::move(matches), 10);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].offset, 101u);  // best of the run
  EXPECT_EQ(out[1].offset, 500u);
}

TEST(SuppressOverlapsTest, ChainedRunsMergeTransitively) {
  // Offsets 0, 5, 10, 15 with separation 6: each is within 6 of the
  // previous, so all chain into one run.
  std::vector<Match> matches = {
      MakeMatch(0, 0, 0.4), MakeMatch(0, 5, 0.2), MakeMatch(0, 10, 0.3),
      MakeMatch(0, 15, 0.25),
  };
  const auto out = SuppressOverlaps(std::move(matches), 6);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].offset, 5u);
}

TEST(SuppressOverlapsTest, DifferentSeriesNeverMerge) {
  std::vector<Match> matches = {MakeMatch(1, 10, 0.5), MakeMatch(2, 11, 0.4)};
  const auto out = SuppressOverlaps(std::move(matches), 100);
  EXPECT_EQ(out.size(), 2u);
}

TEST(SuppressOverlapsTest, ZeroSeparationKeepsEverything) {
  std::vector<Match> matches = {MakeMatch(1, 10, 0.5), MakeMatch(1, 11, 0.4)};
  const auto out = SuppressOverlaps(std::move(matches), 0);
  EXPECT_EQ(out.size(), 2u);
}

TEST(SuppressOverlapsTest, UnsortedInputHandled) {
  std::vector<Match> matches = {
      MakeMatch(1, 102, 0.4), MakeMatch(1, 100, 0.5), MakeMatch(0, 7, 0.1),
      MakeMatch(1, 101, 0.3),
  };
  const auto out = SuppressOverlaps(std::move(matches), 10);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].series, 0u);
  EXPECT_EQ(out[1].series, 1u);
  EXPECT_EQ(out[1].offset, 101u);
}

TEST(SuppressOverlapsTest, EmptyAndSingleton) {
  EXPECT_TRUE(SuppressOverlaps({}, 5).empty());
  const auto out = SuppressOverlaps({MakeMatch(3, 3, 0.3)}, 5);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].series, 3u);
}

TEST(BestPerSeriesTest, KeepsMinimumPerSeriesSortedByDistance) {
  std::vector<Match> matches = {
      MakeMatch(1, 10, 0.5), MakeMatch(1, 20, 0.2), MakeMatch(2, 5, 0.3),
      MakeMatch(3, 1, 0.9),
  };
  const auto out = BestPerSeries(std::move(matches));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].series, 1u);
  EXPECT_DOUBLE_EQ(out[0].distance, 0.2);
  EXPECT_EQ(out[1].series, 2u);
  EXPECT_EQ(out[2].series, 3u);
}

TEST(TopKTest, ReturnsSmallestDistances) {
  std::vector<Match> matches = {
      MakeMatch(1, 1, 0.9), MakeMatch(2, 2, 0.1), MakeMatch(3, 3, 0.5),
      MakeMatch(4, 4, 0.3),
  };
  const auto out = TopK(std::move(matches), 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].series, 2u);
  EXPECT_EQ(out[1].series, 4u);
}

TEST(TopKTest, KBeyondSizeSortsAll) {
  std::vector<Match> matches = {MakeMatch(1, 1, 0.9), MakeMatch(2, 2, 0.1)};
  const auto out = TopK(std::move(matches), 10);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_LT(out[0].distance, out[1].distance);
}

}  // namespace
}  // namespace tsss::core
