// Property tests for the end-to-end no-false-dismissal invariant: for every
// reducer and window length, the distance between the reduced query line and
// a reduced window point must lower-bound the exact scale-shift distance
// (Theorem 2 composed with reducer contraction). This is the single fact
// that makes the whole index correct.

#include <tuple>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/core/similarity.h"
#include "tsss/geom/line.h"
#include "tsss/geom/se_transform.h"
#include "tsss/reduce/reducer.h"

namespace tsss::core {
namespace {

using geom::Vec;

using LowerBoundParam = std::tuple<reduce::ReducerKind, std::size_t /*window*/,
                                   std::size_t /*reduced dim*/>;

class LowerBoundTest : public ::testing::TestWithParam<LowerBoundParam> {};

TEST_P(LowerBoundTest, ReducedLineDistanceLowerBoundsExactDistance) {
  const auto [kind, window, reduced_dim] = GetParam();
  auto made = reduce::MakeReducer(kind, window, reduced_dim);
  ASSERT_TRUE(made.ok()) << made.status();
  const reduce::Reducer& reducer = **made;

  Rng rng(0xC0FFEE + window);
  for (int trial = 0; trial < 200; ++trial) {
    Vec q(window), v(window);
    // Mix regimes: smooth ramps, noisy walks, near-constant, and exact
    // affine images - the cases the engine meets in practice.
    const int regime = trial % 4;
    double level_q = rng.Uniform(-5, 5);
    double level_v = rng.Uniform(-5, 5);
    for (std::size_t i = 0; i < window; ++i) {
      switch (regime) {
        case 0:  // independent noise
          q[i] = rng.Uniform(-10, 10);
          v[i] = rng.Uniform(-10, 10);
          break;
        case 1:  // random walks
          level_q += rng.Gaussian(0, 0.5);
          level_v += rng.Gaussian(0, 0.5);
          q[i] = level_q;
          v[i] = level_v;
          break;
        case 2:  // near-constant window vs noisy query
          q[i] = rng.Uniform(-10, 10);
          v[i] = level_v + rng.Gaussian(0, 1e-3);
          break;
        default:  // v is a noisy affine image of q
          q[i] = rng.Uniform(-10, 10);
          v[i] = 2.5 * q[i] - 4.0 + rng.Gaussian(0, 0.01);
          break;
      }
    }

    const double exact = QueryContext(q).Distance(v);

    // Reduced-space lower bound, exactly as the engine computes it.
    const Vec q_se = geom::SeTransform(q);
    const Vec v_se = geom::SeTransform(v);
    const Vec dir = reducer.Apply(q_se);
    const Vec point = reducer.Apply(v_se);
    const geom::Line line{Vec(dir.size(), 0.0), dir};
    const double reduced = geom::Pld(point, line);

    EXPECT_LE(reduced, exact + 1e-7)
        << reducer.Name() << " violated the lower bound on trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPipelines, LowerBoundTest,
    ::testing::Values(
        std::make_tuple(reduce::ReducerKind::kDft, std::size_t{128}, std::size_t{6}),
        std::make_tuple(reduce::ReducerKind::kDft, std::size_t{32}, std::size_t{2}),
        std::make_tuple(reduce::ReducerKind::kDft, std::size_t{17}, std::size_t{8}),
        std::make_tuple(reduce::ReducerKind::kPaa, std::size_t{128}, std::size_t{6}),
        std::make_tuple(reduce::ReducerKind::kPaa, std::size_t{10}, std::size_t{3}),
        std::make_tuple(reduce::ReducerKind::kHaar, std::size_t{64}, std::size_t{6}),
        std::make_tuple(reduce::ReducerKind::kHaar, std::size_t{16}, std::size_t{16}),
        std::make_tuple(reduce::ReducerKind::kIdentity, std::size_t{24},
                        std::size_t{24})),
    [](const testing::TestParamInfo<LowerBoundParam>& param_info) {
      return std::string(reduce::ReducerKindToString(std::get<0>(param_info.param))) +
             "_n" + std::to_string(std::get<1>(param_info.param)) + "_k" +
             std::to_string(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace tsss::core
