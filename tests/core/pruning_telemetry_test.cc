// Oracle test for the per-query pruning telemetry: on a tree whose root is a
// single box leaf (sub-trail length 1, few windows), every indexed window is
// individually penetration-tested, so the telemetry must account for each
// one exactly: ep_prunes + bs_prunes + exact_prunes + leaf_candidates ==
// entries_tested == num_indexed_windows. Disabling the bounding-spheres
// heuristic must shift prunes between the bs and ep buckets without changing
// the total or the surviving candidate set (the sphere tests are
// conservative short-circuits of the same exact slab decision - the paper's
// Section 7 observation).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "tsss/core/engine.h"
#include "tsss/geom/penetration.h"
#include "tsss/seq/stock_generator.h"

namespace tsss::core {
namespace {

std::unique_ptr<SearchEngine> MakeBoxLeafEngine() {
  EngineConfig config;
  config.window = 16;
  config.reduced_dim = 4;
  config.subtrail_len = 1;  // one box per window: every window gets its own test
  config.tree.max_entries = 32;
  auto engine = SearchEngine::Create(config);
  EXPECT_TRUE(engine.ok());
  seq::StockMarketConfig market;
  market.num_companies = 1;
  market.values_per_company = config.window + 19;  // 20 windows, one leaf node
  market.seed = 11;
  for (const seq::TimeSeries& series : seq::GenerateStockMarket(market)) {
    EXPECT_TRUE((*engine)->AddSeries(series.name, series.values).ok());
  }
  return std::move(engine).value();
}

std::vector<geom::Vec> ScaleShiftedQueries(const SearchEngine& engine) {
  std::vector<geom::Vec> queries;
  for (std::size_t i = 0; i < 5; ++i) {
    auto window = engine.ReadWindow(i * 4);
    EXPECT_TRUE(window.ok());
    geom::Vec q = *window;
    for (double& x : q) x = 1.5 * x + 2.0;
    queries.push_back(std::move(q));
  }
  return queries;
}

TEST(PruningTelemetryOracleTest, EveryWindowIsAccountedFor) {
  auto engine = MakeBoxLeafEngine();
  const std::uint64_t windows = engine->num_indexed_windows();
  ASSERT_EQ(windows, 20u);

  for (const geom::PruneStrategy strategy :
       {geom::PruneStrategy::kEepOnly, geom::PruneStrategy::kBoundingSpheres,
        geom::PruneStrategy::kExactDistance}) {
    engine->set_prune_strategy(strategy);
    for (const auto& query : ScaleShiftedQueries(*engine)) {
      for (const double eps : {0.0, 0.1, 1.0, 10.0}) {
        QueryStats stats;
        auto matches = engine->RangeQuery(query, eps, TransformCost{}, &stats);
        ASSERT_TRUE(matches.ok());
        const obs::QueryTelemetry& t = stats.telemetry;

        // The root is the only node and it is a leaf (level 0).
        EXPECT_EQ(t.nodes_visited, 1u);
        EXPECT_EQ(t.nodes_per_level[0], 1u);

        // Every window was individually penetration-tested...
        ASSERT_EQ(t.entries_tested, windows);
        // ...and every test ended in exactly one disposition.
        EXPECT_EQ(t.ep_prunes + t.bs_prunes + t.exact_prunes +
                      t.leaf_candidates,
                  windows)
            << "strategy " << static_cast<int>(strategy) << " eps " << eps;

        // Disposition buckets match the strategy that ran.
        if (strategy == geom::PruneStrategy::kEepOnly) {
          EXPECT_EQ(t.bs_prunes, 0u);
          EXPECT_EQ(t.exact_prunes, 0u);
        }
        if (strategy == geom::PruneStrategy::kBoundingSpheres) {
          EXPECT_EQ(t.exact_prunes, 0u);
        }

        // Accepted box entries each got one exact line-box distance.
        EXPECT_EQ(t.mbr_distance_evals, t.leaf_candidates);
      }
    }
  }
}

TEST(PruningTelemetryOracleTest, SphereAblationShiftsPrunesNotTotals) {
  auto engine = MakeBoxLeafEngine();
  const auto queries = ScaleShiftedQueries(*engine);
  const double eps = 0.5;

  for (std::size_t i = 0; i < queries.size(); ++i) {
    engine->set_prune_strategy(geom::PruneStrategy::kEepOnly);
    QueryStats eep;
    auto eep_matches = engine->RangeQuery(queries[i], eps, TransformCost{}, &eep);
    ASSERT_TRUE(eep_matches.ok());

    engine->set_prune_strategy(geom::PruneStrategy::kBoundingSpheres);
    QueryStats spheres;
    auto sphere_matches =
        engine->RangeQuery(queries[i], eps, TransformCost{}, &spheres);
    ASSERT_TRUE(sphere_matches.ok());

    // The sphere tests only short-circuit the exact slab decision, so the
    // surviving candidate set - and hence the answer - is identical...
    EXPECT_EQ(spheres.telemetry.leaf_candidates,
              eep.telemetry.leaf_candidates);
    EXPECT_EQ(sphere_matches->size(), eep_matches->size());
    // ...and so is the total prune count; the spheres merely relabel some
    // EP prunes as outer-sphere rejections (the paper predicts few, because
    // R-tree boxes are long and thin and the outer sphere over-covers).
    EXPECT_EQ(spheres.telemetry.ep_prunes + spheres.telemetry.bs_prunes,
              eep.telemetry.ep_prunes);
    EXPECT_EQ(eep.telemetry.bs_prunes, 0u);
  }
}

TEST(PruningTelemetryOracleTest, TelemetrySkippedWhenStatsNotRequested) {
  auto engine = MakeBoxLeafEngine();
  const auto queries = ScaleShiftedQueries(*engine);
  // No stats pointer and no installed trace: the engine must not install
  // telemetry (the hot path stays on the disabled branch); this just checks
  // the call remains well-formed in that mode.
  auto matches = engine->RangeQuery(queries[0], 1.0);
  EXPECT_TRUE(matches.ok());
}

TEST(PruningTelemetryOracleTest, PostFilterCountMatchesCandidatesMinusMatches) {
  auto engine = MakeBoxLeafEngine();
  const auto queries = ScaleShiftedQueries(*engine);
  for (const auto& query : queries) {
    QueryStats stats;
    auto matches = engine->RangeQuery(query, 0.5, TransformCost{}, &stats);
    ASSERT_TRUE(matches.ok());
    EXPECT_EQ(stats.telemetry.candidates_postfiltered,
              stats.candidates - stats.matches);
    EXPECT_EQ(stats.matches, matches->size());
  }
}

}  // namespace
}  // namespace tsss::core
