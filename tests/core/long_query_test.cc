#include <set>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/core/engine.h"
#include "tsss/core/similarity.h"
#include "tsss/seq/stock_generator.h"
#include "tsss/seq/window.h"

namespace tsss::core {
namespace {

using geom::Vec;

EngineConfig LongQueryConfig() {
  EngineConfig config;
  config.window = 16;
  config.reduced_dim = 4;
  config.tree.max_entries = 8;
  config.buffer_pool_pages = 256;
  return config;
}

/// Reference: scan every full-length window with the exact distance.
std::set<index::RecordId> BruteLongSearch(seq::Dataset& ds,
                                          std::span<const double> query,
                                          double eps) {
  const QueryContext ctx(query);
  std::set<index::RecordId> out;
  for (storage::SeriesId s = 0; s < ds.size(); ++s) {
    auto values = ds.Values(s);
    EXPECT_TRUE(values.ok());
    if (values->size() < query.size()) continue;
    for (std::size_t off = 0; off + query.size() <= values->size(); ++off) {
      if (ctx.Distance(values->subspan(off, query.size())) <= eps) {
        out.insert(seq::MakeRecordId(s, static_cast<std::uint32_t>(off)));
      }
    }
  }
  return out;
}

TEST(LongQueryTest, RejectsShortQueries) {
  auto engine = SearchEngine::Create(LongQueryConfig());
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE((*engine)->LongRangeQuery(Vec(16, 0.0), 1.0).ok());
  EXPECT_FALSE((*engine)->LongRangeQuery(Vec(8, 0.0), 1.0).ok());
}

TEST(LongQueryTest, RequiresStrideOne) {
  EngineConfig config = LongQueryConfig();
  config.stride = 2;
  auto engine = SearchEngine::Create(config);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->AddSeries("s", std::vector<double>(100, 1.0)).ok());
  EXPECT_EQ((*engine)->LongRangeQuery(Vec(40, 0.0), 1.0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(LongQueryTest, FindsExactLongSelfMatch) {
  auto engine = SearchEngine::Create(LongQueryConfig());
  ASSERT_TRUE(engine.ok());
  Rng rng(81);
  Vec values(120);
  for (auto& x : values) x = rng.Uniform(0, 20);
  ASSERT_TRUE((*engine)->AddSeries("s", values).ok());

  const Vec query(values.begin() + 30, values.begin() + 70);  // length 40
  auto matches = (*engine)->LongRangeQuery(query, 1e-9);
  ASSERT_TRUE(matches.ok());
  bool found = false;
  for (const Match& m : *matches) {
    if (m.offset == 30) {
      found = true;
      EXPECT_NEAR(m.distance, 0.0, 1e-9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(LongQueryTest, NoFalseDismissalsAgainstBruteForce) {
  auto engine = SearchEngine::Create(LongQueryConfig());
  ASSERT_TRUE(engine.ok());
  seq::StockMarketConfig market_config;
  market_config.num_companies = 8;
  market_config.values_per_company = 150;
  market_config.seed = 4;
  const auto market = seq::GenerateStockMarket(market_config);
  for (const auto& series : market) {
    ASSERT_TRUE((*engine)->AddSeries(series.name, series.values).ok());
  }

  Rng rng(82);
  for (int q = 0; q < 6; ++q) {
    const std::size_t series = static_cast<std::size_t>(rng.UniformInt(0, 7));
    const std::size_t offset = static_cast<std::size_t>(rng.UniformInt(0, 100));
    const std::size_t len = 33 + static_cast<std::size_t>(rng.UniformInt(0, 15));
    Vec query(market[series].values.begin() + static_cast<std::ptrdiff_t>(offset),
              market[series].values.begin() +
                  static_cast<std::ptrdiff_t>(offset + len));
    for (auto& x : query) x = 2.0 * x + 5.0;  // scale-shift the query
    const double eps = rng.Uniform(0.1, 1.5);

    auto matches = (*engine)->LongRangeQuery(query, eps);
    ASSERT_TRUE(matches.ok());
    std::set<index::RecordId> got;
    for (const Match& m : *matches) got.insert(m.record);
    const std::set<index::RecordId> expected =
        BruteLongSearch((*engine)->dataset(), query, eps);
    EXPECT_EQ(got, expected) << "query " << q;
  }
}

TEST(LongQueryTest, MatchesCarryGlobalTransform) {
  auto engine = SearchEngine::Create(LongQueryConfig());
  ASSERT_TRUE(engine.ok());
  Rng rng(83);
  Vec base(50);
  for (auto& x : base) x = rng.Uniform(0, 10);
  Vec scaled(50);
  for (std::size_t i = 0; i < 50; ++i) scaled[i] = 4.0 * base[i] + 11.0;
  ASSERT_TRUE((*engine)->AddSeries("scaled", scaled).ok());

  const Vec query(base.begin(), base.begin() + 40);
  auto matches = (*engine)->LongRangeQuery(query, 1e-6);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  bool found = false;
  for (const Match& m : *matches) {
    if (m.offset == 0) {
      found = true;
      EXPECT_NEAR(m.transform.scale, 4.0, 1e-6);
      EXPECT_NEAR(m.transform.offset, 11.0, 1e-5);
    }
  }
  EXPECT_TRUE(found);
}

TEST(LongQueryTest, QueryStatsPopulated) {
  auto engine = SearchEngine::Create(LongQueryConfig());
  ASSERT_TRUE(engine.ok());
  Rng rng(84);
  Vec values(200);
  for (auto& x : values) x = rng.Uniform(0, 10);
  ASSERT_TRUE((*engine)->AddSeries("s", values).ok());

  QueryStats stats;
  const Vec query(values.begin(), values.begin() + 48);
  auto matches = (*engine)->LongRangeQuery(query, 0.5, TransformCost{}, &stats);
  ASSERT_TRUE(matches.ok());
  EXPECT_GT(stats.index_page_reads, 0u);
  EXPECT_EQ(stats.matches, matches->size());
}

}  // namespace
}  // namespace tsss::core
