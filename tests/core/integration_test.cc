// End-to-end integration tests: the full paper pipeline at a (scaled-down)
// realistic operating point, cross-checked against the sequential-scan
// baseline, across engine configurations (TEST_P sweep).

#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/core/engine.h"
#include "tsss/core/seq_scan.h"
#include "tsss/seq/stock_generator.h"

namespace tsss::core {
namespace {

using geom::Vec;

using IntegrationParam =
    std::tuple<reduce::ReducerKind, geom::PruneStrategy, index::SplitAlgorithm>;

class IntegrationTest : public ::testing::TestWithParam<IntegrationParam> {
 protected:
  static constexpr std::size_t kWindow = 32;

  void SetUp() override {
    const auto [reducer, prune, split] = GetParam();
    EngineConfig config;
    config.window = kWindow;
    config.reducer = reducer;
    config.reduced_dim = 6;
    config.prune = prune;
    config.tree.split = split;
    config.tree.max_entries = 12;
    config.tree.leaf_max_entries = 12;  // small nodes -> deep tree to exercise
    config.buffer_pool_pages = 512;
    auto engine = SearchEngine::Create(config);
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(engine).value();

    seq::StockMarketConfig market_config;
    market_config.num_companies = 25;
    market_config.values_per_company = 160;
    market_config.seed = 20260706;
    market_ = seq::GenerateStockMarket(market_config);
    ASSERT_TRUE(engine_->BulkBuild(market_).ok());
    ASSERT_TRUE(engine_->tree().CheckInvariants().ok());
  }

  Vec QueryFromData(Rng& rng) {
    const std::size_t series =
        static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(market_.size()) - 1));
    const std::size_t offset = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(market_[series].values.size() - kWindow)));
    Vec query(market_[series].values.begin() + static_cast<std::ptrdiff_t>(offset),
              market_[series].values.begin() +
                  static_cast<std::ptrdiff_t>(offset + kWindow));
    // Random scale-shift so the query is not a literal copy of the data.
    const double a = rng.Uniform(0.5, 3.0);
    const double b = rng.Uniform(-20, 20);
    for (auto& x : query) x = a * x + b;
    return query;
  }

  std::unique_ptr<SearchEngine> engine_;
  std::vector<seq::TimeSeries> market_;
};

TEST_P(IntegrationTest, RangeQueriesMatchBaselineExactly) {
  SequentialScanner scanner(&engine_->dataset(), kWindow);
  Rng rng(1);
  for (int q = 0; q < 8; ++q) {
    const Vec query = QueryFromData(rng);
    const double eps = rng.Uniform(0.0, 3.0);
    auto fast = engine_->RangeQuery(query, eps);
    auto slow = scanner.RangeQuery(query, eps);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    std::set<index::RecordId> fast_set, slow_set;
    for (const Match& m : *fast) fast_set.insert(m.record);
    for (const Match& m : *slow) slow_set.insert(m.record);
    EXPECT_EQ(fast_set, slow_set);
  }
}

TEST_P(IntegrationTest, ReportedTransformsReconstructTheData) {
  SequentialScanner scanner(&engine_->dataset(), kWindow);
  Rng rng(2);
  const Vec query = QueryFromData(rng);
  auto matches = engine_->RangeQuery(query, 5.0);
  ASSERT_TRUE(matches.ok());
  for (const Match& m : *matches) {
    auto window = engine_->ReadWindow(m.record);
    ASSERT_TRUE(window.ok());
    // ||a*Q + b - S'|| must equal the reported distance.
    const Vec reconstructed = m.transform.Apply(query);
    EXPECT_NEAR(geom::Distance(reconstructed, *window), m.distance, 1e-6);
    EXPECT_LE(m.distance, 5.0);
  }
}

TEST_P(IntegrationTest, SelectiveQueriesVisitFractionOfIndex) {
  // The point of Theorem 3: a selective query must not traverse the whole
  // tree. (The sequential-scan comparison happens at realistic scale in the
  // benchmarks; data pages here are too few for that comparison to bind.)
  Rng rng(3);
  const Vec query = QueryFromData(rng);
  QueryStats stats;
  ASSERT_TRUE(engine_->RangeQuery(query, 0.02, TransformCost{}, &stats).ok());
  auto tree_stats = engine_->tree().ComputeStats();
  ASSERT_TRUE(tree_stats.ok());
  // Coarser reducers (Haar keeps only 6 coarse coefficients) admit more
  // subtrees; 70% is a conservative bound that still proves pruning works.
  EXPECT_LT(stats.index_page_reads, tree_stats->node_count * 7 / 10)
      << "pruning should skip a good part of the tree for a selective query";
}

INSTANTIATE_TEST_SUITE_P(
    Pipelines, IntegrationTest,
    ::testing::Values(
        // The paper's configuration: DFT + EEP + R*.
        std::make_tuple(reduce::ReducerKind::kDft, geom::PruneStrategy::kEepOnly,
                        index::SplitAlgorithm::kRStar),
        // Experiment set 3: bounding spheres.
        std::make_tuple(reduce::ReducerKind::kDft,
                        geom::PruneStrategy::kBoundingSpheres,
                        index::SplitAlgorithm::kRStar),
        // Extension: exact-distance pruning.
        std::make_tuple(reduce::ReducerKind::kDft,
                        geom::PruneStrategy::kExactDistance,
                        index::SplitAlgorithm::kRStar),
        // Alternative reducers.
        std::make_tuple(reduce::ReducerKind::kPaa, geom::PruneStrategy::kEepOnly,
                        index::SplitAlgorithm::kRStar),
        std::make_tuple(reduce::ReducerKind::kHaar, geom::PruneStrategy::kEepOnly,
                        index::SplitAlgorithm::kRStar),
        // Classic Guttman trees.
        std::make_tuple(reduce::ReducerKind::kDft, geom::PruneStrategy::kEepOnly,
                        index::SplitAlgorithm::kLinear),
        std::make_tuple(reduce::ReducerKind::kDft, geom::PruneStrategy::kEepOnly,
                        index::SplitAlgorithm::kQuadratic)),
    [](const testing::TestParamInfo<IntegrationParam>& param_info) {
      std::string name(reduce::ReducerKindToString(std::get<0>(param_info.param)));
      name += "_";
      name += geom::PruneStrategyToString(std::get<1>(param_info.param));
      name += "_";
      name += index::SplitAlgorithmToString(std::get<2>(param_info.param));
      return name;
    });

TEST(IntegrationSmokeTest, PaperScaleMiniatureEndToEnd) {
  // A miniature of the full paper experiment: build, query at several eps,
  // confirm monotone match counts and bounded page cost.
  EngineConfig config;
  config.window = 32;
  config.reduced_dim = 6;
  config.tree.max_entries = 20;
  auto engine = SearchEngine::Create(config);
  ASSERT_TRUE(engine.ok());

  seq::StockMarketConfig market_config;
  market_config.num_companies = 40;
  market_config.values_per_company = 130;
  const auto market = seq::GenerateStockMarket(market_config);
  ASSERT_TRUE((*engine)->BulkBuild(market).ok());

  const Vec query(market[7].values.begin() + 20, market[7].values.begin() + 52);
  std::size_t prev_matches = 0;
  for (double eps : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    QueryStats stats;
    auto matches = (*engine)->RangeQuery(query, eps, TransformCost{}, &stats);
    ASSERT_TRUE(matches.ok());
    EXPECT_GE(matches->size(), prev_matches);
    prev_matches = matches->size();
    EXPECT_EQ(stats.matches, matches->size());
  }
  EXPECT_GE(prev_matches, 1u);  // the self-window matches at eps >= 0
}

}  // namespace
}  // namespace tsss::core
