#include "tsss/core/engine.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/core/seq_scan.h"
#include "tsss/seq/stock_generator.h"
#include "tsss/seq/window.h"

namespace tsss::core {
namespace {

using geom::Vec;

EngineConfig SmallEngineConfig() {
  EngineConfig config;
  config.window = 16;
  config.reduced_dim = 4;
  config.tree.max_entries = 8;
  config.buffer_pool_pages = 128;
  return config;
}

std::vector<seq::TimeSeries> SmallMarket(std::size_t companies = 20,
                                         std::size_t length = 120,
                                         std::uint64_t seed = 99) {
  seq::StockMarketConfig config;
  config.num_companies = companies;
  config.values_per_company = length;
  config.seed = seed;
  return seq::GenerateStockMarket(config);
}

TEST(EngineCreateTest, ValidatesConfig) {
  EngineConfig config = SmallEngineConfig();
  config.window = 1;
  EXPECT_FALSE(SearchEngine::Create(config).ok());
  config = SmallEngineConfig();
  config.stride = 0;
  EXPECT_FALSE(SearchEngine::Create(config).ok());
  config = SmallEngineConfig();
  config.reduced_dim = 5;  // odd for DFT
  EXPECT_FALSE(SearchEngine::Create(config).ok());
  EXPECT_TRUE(SearchEngine::Create(SmallEngineConfig()).ok());
}

TEST(EngineCreateTest, PaperDefaultsWork) {
  EXPECT_TRUE(SearchEngine::Create(EngineConfig{}).ok());
}

TEST(EngineTest, IndexesAllWindows) {
  auto engine = SearchEngine::Create(SmallEngineConfig());
  ASSERT_TRUE(engine.ok());
  auto id = (*engine)->AddSeries("s", std::vector<double>(100, 0.0));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ((*engine)->num_indexed_windows(), 100u - 16u + 1u);
}

TEST(EngineTest, ShortSeriesIndexesNothing) {
  auto engine = SearchEngine::Create(SmallEngineConfig());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->AddSeries("tiny", std::vector<double>(5, 1.0)).ok());
  EXPECT_EQ((*engine)->num_indexed_windows(), 0u);
}

TEST(EngineTest, StrideReducesWindows) {
  EngineConfig config = SmallEngineConfig();
  config.stride = 4;
  auto engine = SearchEngine::Create(config);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->AddSeries("s", std::vector<double>(32, 0.0)).ok());
  // offsets 0,4,8,12,16 -> 5 windows (32-16=16).
  EXPECT_EQ((*engine)->num_indexed_windows(), 5u);
}

TEST(EngineTest, FindsExactSelfMatch) {
  auto engine = SearchEngine::Create(SmallEngineConfig());
  ASSERT_TRUE(engine.ok());
  const auto market = SmallMarket(5);
  for (const auto& series : market) {
    ASSERT_TRUE((*engine)->AddSeries(series.name, series.values).ok());
  }
  // Query = an indexed window: must be found with eps 0 (distance 0).
  const Vec query(market[2].values.begin() + 10, market[2].values.begin() + 26);
  auto matches = (*engine)->RangeQuery(query, 1e-9);
  ASSERT_TRUE(matches.ok());
  bool found = false;
  for (const Match& m : *matches) {
    if (m.series == 2 && m.offset == 10) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(EngineTest, FindsScaledAndShiftedCopies) {
  auto engine = SearchEngine::Create(SmallEngineConfig());
  ASSERT_TRUE(engine.ok());
  Rng rng(5);
  Vec base(40);
  for (auto& x : base) x = rng.Uniform(0, 10);
  // Series B = 3*base - 7: similar to base with a=3, b=-7.
  Vec scaled(40);
  for (std::size_t i = 0; i < 40; ++i) scaled[i] = 3.0 * base[i] - 7.0;
  ASSERT_TRUE((*engine)->AddSeries("scaled", scaled).ok());

  const Vec query(base.begin(), base.begin() + 16);
  auto matches = (*engine)->RangeQuery(query, 1e-6);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  bool found_aligned = false;
  for (const Match& m : *matches) {
    if (m.offset == 0) {
      found_aligned = true;
      EXPECT_NEAR(m.transform.scale, 3.0, 1e-6);
      EXPECT_NEAR(m.transform.offset, -7.0, 1e-5);
      EXPECT_NEAR(m.distance, 0.0, 1e-6);
    }
  }
  EXPECT_TRUE(found_aligned);
}

TEST(EngineTest, AgreesWithSequentialScanOnStockData) {
  // The central no-false-dismissal + no-false-positive check: engine results
  // must equal the brute-force sequential scanner exactly.
  auto engine = SearchEngine::Create(SmallEngineConfig());
  ASSERT_TRUE(engine.ok());
  const auto market = SmallMarket(15, 100);
  for (const auto& series : market) {
    ASSERT_TRUE((*engine)->AddSeries(series.name, series.values).ok());
  }
  SequentialScanner scanner(&(*engine)->dataset(), 16);

  Rng rng(6);
  for (int q = 0; q < 10; ++q) {
    const std::size_t series = static_cast<std::size_t>(rng.UniformInt(0, 14));
    const std::size_t offset = static_cast<std::size_t>(rng.UniformInt(0, 84));
    Vec query(market[series].values.begin() + static_cast<std::ptrdiff_t>(offset),
              market[series].values.begin() + static_cast<std::ptrdiff_t>(offset + 16));
    // Perturb slightly so matches are non-trivial.
    for (auto& x : query) x *= 1.0 + rng.Uniform(-0.002, 0.002);
    const double eps = rng.Uniform(0.05, 2.0);

    auto tree_matches = (*engine)->RangeQuery(query, eps);
    auto scan_matches = scanner.RangeQuery(query, eps);
    ASSERT_TRUE(tree_matches.ok());
    ASSERT_TRUE(scan_matches.ok());

    std::set<index::RecordId> tree_set, scan_set;
    for (const Match& m : *tree_matches) tree_set.insert(m.record);
    for (const Match& m : *scan_matches) scan_set.insert(m.record);
    EXPECT_EQ(tree_set, scan_set) << "query " << q << " eps " << eps;
  }
}

TEST(EngineTest, AllPruneStrategiesReturnIdenticalAnswers) {
  const auto market = SmallMarket(10, 80);
  std::vector<std::vector<Match>> all_results;
  for (geom::PruneStrategy strategy :
       {geom::PruneStrategy::kEepOnly, geom::PruneStrategy::kBoundingSpheres,
        geom::PruneStrategy::kExactDistance}) {
    EngineConfig config = SmallEngineConfig();
    config.prune = strategy;
    auto engine = SearchEngine::Create(config);
    ASSERT_TRUE(engine.ok());
    for (const auto& series : market) {
      ASSERT_TRUE((*engine)->AddSeries(series.name, series.values).ok());
    }
    const Vec query(market[0].values.begin(), market[0].values.begin() + 16);
    auto matches = (*engine)->RangeQuery(query, 0.5);
    ASSERT_TRUE(matches.ok());
    all_results.push_back(*matches);
  }
  ASSERT_EQ(all_results[0].size(), all_results[1].size());
  ASSERT_EQ(all_results[0].size(), all_results[2].size());
  for (std::size_t i = 0; i < all_results[0].size(); ++i) {
    EXPECT_EQ(all_results[0][i].record, all_results[1][i].record);
    EXPECT_EQ(all_results[0][i].record, all_results[2][i].record);
  }
}

TEST(EngineTest, CostConstraintsFilterMatches) {
  auto engine = SearchEngine::Create(SmallEngineConfig());
  ASSERT_TRUE(engine.ok());
  Rng rng(7);
  Vec base(16);
  for (auto& x : base) x = rng.Uniform(0, 10);
  Vec negated(16);
  for (std::size_t i = 0; i < 16; ++i) negated[i] = -2.0 * base[i] + 4.0;
  ASSERT_TRUE((*engine)->AddSeries("neg", negated).ok());

  auto unrestricted = (*engine)->RangeQuery(base, 1e-6);
  ASSERT_TRUE(unrestricted.ok());
  EXPECT_EQ(unrestricted->size(), 1u);
  EXPECT_NEAR((*unrestricted)[0].transform.scale, -2.0, 1e-6);

  auto positive_only =
      (*engine)->RangeQuery(base, 1e-6, TransformCost::PositiveScale());
  ASSERT_TRUE(positive_only.ok());
  EXPECT_TRUE(positive_only->empty());
}

TEST(EngineTest, QueryStatsPopulated) {
  auto engine = SearchEngine::Create(SmallEngineConfig());
  ASSERT_TRUE(engine.ok());
  const auto market = SmallMarket(10, 100);
  for (const auto& series : market) {
    ASSERT_TRUE((*engine)->AddSeries(series.name, series.values).ok());
  }
  const Vec query(market[0].values.begin(), market[0].values.begin() + 16);
  QueryStats stats;
  auto matches = (*engine)->RangeQuery(query, 0.5, TransformCost{}, &stats);
  ASSERT_TRUE(matches.ok());
  EXPECT_GT(stats.index_page_reads, 0u);
  EXPECT_EQ(stats.matches, matches->size());
  EXPECT_GE(stats.candidates, stats.matches);
  if (stats.candidates > 0) {
    EXPECT_GT(stats.data_page_reads, 0u);
  }
}

TEST(EngineTest, AppendIndexesNewWindowsOnly) {
  auto engine = SearchEngine::Create(SmallEngineConfig());
  ASSERT_TRUE(engine.ok());
  auto id = (*engine)->AddSeries("grow", std::vector<double>(20, 1.0));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ((*engine)->num_indexed_windows(), 5u);  // 20-16+1
  ASSERT_TRUE((*engine)->Append(*id, std::vector<double>(10, 2.0)).ok());
  EXPECT_EQ((*engine)->num_indexed_windows(), 15u);  // 30-16+1
  ASSERT_TRUE((*engine)->tree().CheckInvariants().ok());
}

TEST(EngineTest, AppendedWindowsAreSearchable) {
  auto engine = SearchEngine::Create(SmallEngineConfig());
  ASSERT_TRUE(engine.ok());
  Rng rng(8);
  Vec initial(20);
  for (auto& x : initial) x = rng.Uniform(0, 5);
  auto id = (*engine)->AddSeries("grow", initial);
  ASSERT_TRUE(id.ok());
  Vec extra(20);
  for (auto& x : extra) x = rng.Uniform(100, 105);
  ASSERT_TRUE((*engine)->Append(*id, extra).ok());

  // Query the window that spans the append boundary.
  auto values = (*engine)->dataset().Values(*id);
  ASSERT_TRUE(values.ok());
  const Vec query(values->begin() + 12, values->begin() + 28);
  auto matches = (*engine)->RangeQuery(query, 1e-9);
  ASSERT_TRUE(matches.ok());
  bool found = false;
  for (const Match& m : *matches) {
    if (m.offset == 12) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(EngineTest, RemoveWindowDeletesFromIndex) {
  auto engine = SearchEngine::Create(SmallEngineConfig());
  ASSERT_TRUE(engine.ok());
  Rng rng(9);
  Vec values(40);
  for (auto& x : values) x = rng.Uniform(0, 10);
  auto id = (*engine)->AddSeries("s", values);
  ASSERT_TRUE(id.ok());
  const std::size_t before = (*engine)->num_indexed_windows();
  ASSERT_TRUE((*engine)->RemoveWindow(seq::MakeRecordId(*id, 3)).ok());
  EXPECT_EQ((*engine)->num_indexed_windows(), before - 1);

  const Vec query(values.begin() + 3, values.begin() + 19);
  auto matches = (*engine)->RangeQuery(query, 1e-9);
  ASSERT_TRUE(matches.ok());
  for (const Match& m : *matches) EXPECT_NE(m.offset, 3u);
}

TEST(EngineTest, BulkBuildEquivalentToIncremental) {
  const auto market = SmallMarket(8, 80);
  auto incremental = SearchEngine::Create(SmallEngineConfig());
  ASSERT_TRUE(incremental.ok());
  for (const auto& series : market) {
    ASSERT_TRUE((*incremental)->AddSeries(series.name, series.values).ok());
  }
  auto bulk = SearchEngine::Create(SmallEngineConfig());
  ASSERT_TRUE(bulk.ok());
  ASSERT_TRUE((*bulk)->BulkBuild(market).ok());
  ASSERT_TRUE((*bulk)->tree().CheckInvariants().ok());
  EXPECT_EQ((*bulk)->num_indexed_windows(), (*incremental)->num_indexed_windows());

  Rng rng(10);
  for (int q = 0; q < 5; ++q) {
    const std::size_t series = static_cast<std::size_t>(rng.UniformInt(0, 7));
    Vec query(market[series].values.begin(), market[series].values.begin() + 16);
    const double eps = rng.Uniform(0.1, 1.0);
    auto a = (*incremental)->RangeQuery(query, eps);
    auto b = (*bulk)->RangeQuery(query, eps);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (std::size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].record, (*b)[i].record);
    }
  }
}

TEST(EngineTest, BulkBuildRequiresEmptyEngine) {
  auto engine = SearchEngine::Create(SmallEngineConfig());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->AddSeries("s", std::vector<double>(20, 1.0)).ok());
  EXPECT_EQ((*engine)->BulkBuild(SmallMarket(2)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(EngineTest, KnnMatchesSequentialScan) {
  auto engine = SearchEngine::Create(SmallEngineConfig());
  ASSERT_TRUE(engine.ok());
  const auto market = SmallMarket(12, 90);
  for (const auto& series : market) {
    ASSERT_TRUE((*engine)->AddSeries(series.name, series.values).ok());
  }
  SequentialScanner scanner(&(*engine)->dataset(), 16);

  Rng rng(11);
  for (int q = 0; q < 6; ++q) {
    const std::size_t series = static_cast<std::size_t>(rng.UniformInt(0, 11));
    Vec query(market[series].values.begin() + 5,
              market[series].values.begin() + 21);
    for (auto& x : query) x *= 1.0 + rng.Uniform(-0.01, 0.01);

    for (std::size_t k : {1u, 5u, 12u}) {
      auto fast = (*engine)->Knn(query, k);
      auto slow = scanner.Knn(query, k);
      ASSERT_TRUE(fast.ok());
      ASSERT_TRUE(slow.ok());
      ASSERT_EQ(fast->size(), slow->size());
      for (std::size_t i = 0; i < fast->size(); ++i) {
        EXPECT_NEAR((*fast)[i].distance, (*slow)[i].distance, 1e-7)
            << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST(EngineTest, KnnZeroReturnsEmpty) {
  auto engine = SearchEngine::Create(SmallEngineConfig());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->AddSeries("s", std::vector<double>(30, 1.0)).ok());
  auto result = (*engine)->Knn(Vec(16, 1.0), 0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(EngineTest, RangeQueryRejectsBadArguments) {
  auto engine = SearchEngine::Create(SmallEngineConfig());
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE((*engine)->RangeQuery(Vec(7, 0.0), 1.0).ok());   // wrong length
  EXPECT_FALSE((*engine)->RangeQuery(Vec(16, 0.0), -1.0).ok()); // negative eps
}

TEST(EngineTest, ConstantQueryDegeneratesGracefully) {
  auto engine = SearchEngine::Create(SmallEngineConfig());
  ASSERT_TRUE(engine.ok());
  // Data: one constant region and one wiggly region.
  Vec values(60);
  for (std::size_t i = 0; i < 30; ++i) values[i] = 5.0;
  Rng rng(12);
  for (std::size_t i = 30; i < 60; ++i) values[i] = rng.Uniform(0, 100);
  ASSERT_TRUE((*engine)->AddSeries("s", values).ok());

  const Vec query(16, 42.0);  // constant query
  auto matches = (*engine)->RangeQuery(query, 1e-6);
  ASSERT_TRUE(matches.ok());
  // All-constant windows (offsets 0..14) match; wiggly ones don't.
  std::set<std::uint32_t> offsets;
  for (const Match& m : *matches) offsets.insert(m.offset);
  for (std::uint32_t off = 0; off <= 14; ++off) EXPECT_TRUE(offsets.count(off));
  EXPECT_FALSE(offsets.count(40));
}

TEST(EngineTest, ReducerVariantsAllAgreeWithScan) {
  const auto market = SmallMarket(6, 64);
  for (reduce::ReducerKind kind :
       {reduce::ReducerKind::kDft, reduce::ReducerKind::kPaa,
        reduce::ReducerKind::kHaar, reduce::ReducerKind::kIdentity}) {
    EngineConfig config = SmallEngineConfig();
    config.reducer = kind;
    config.reduced_dim = kind == reduce::ReducerKind::kIdentity ? 16 : 4;
    auto engine = SearchEngine::Create(config);
    ASSERT_TRUE(engine.ok()) << reduce::ReducerKindToString(kind);
    for (const auto& series : market) {
      ASSERT_TRUE((*engine)->AddSeries(series.name, series.values).ok());
    }
    SequentialScanner scanner(&(*engine)->dataset(), 16);
    const Vec query(market[3].values.begin() + 7,
                    market[3].values.begin() + 23);
    auto fast = (*engine)->RangeQuery(query, 0.8);
    auto slow = scanner.RangeQuery(query, 0.8);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    std::set<index::RecordId> fast_set, slow_set;
    for (const Match& m : *fast) fast_set.insert(m.record);
    for (const Match& m : *slow) slow_set.insert(m.record);
    EXPECT_EQ(fast_set, slow_set) << reduce::ReducerKindToString(kind);
  }
}

}  // namespace
}  // namespace tsss::core
