// Oracle tests for SearchEngine::ExplainLast(): the explain report must be a
// faithful copy of the query's own telemetry — on a single box-leaf root the
// ISSUE identity EP + BS + exact + accepted == entries tested holds with no
// descents, and on a multi-level tree every visited non-root node costs
// exactly one descent (descents == nodes_visited - 1). The JSON rendering
// must carry the same totals byte-for-byte.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tsss/core/engine.h"
#include "tsss/geom/penetration.h"
#include "tsss/obs/explain.h"
#include "tsss/seq/stock_generator.h"

namespace tsss::core {
namespace {

/// Box-leaf engine (sub-trail length 1): every window is an individually
/// penetration-tested box entry. `max_entries` shapes the tree: 32 keeps the
/// 20 windows in a single root leaf, 4 forces a multi-level tree on 64.
std::unique_ptr<SearchEngine> MakeBoxLeafEngine(std::size_t max_entries,
                                                std::size_t num_windows) {
  EngineConfig config;
  config.window = 16;
  config.reduced_dim = 4;
  config.subtrail_len = 1;
  config.tree.max_entries = max_entries;
  config.tree.leaf_max_entries = max_entries;
  auto engine = SearchEngine::Create(config);
  EXPECT_TRUE(engine.ok());
  seq::StockMarketConfig market;
  market.num_companies = 1;
  market.values_per_company = config.window + num_windows - 1;
  market.seed = 11;
  for (const seq::TimeSeries& series : seq::GenerateStockMarket(market)) {
    EXPECT_TRUE((*engine)->AddSeries(series.name, series.values).ok());
  }
  return std::move(engine).value();
}

geom::Vec ScaleShiftedQuery(const SearchEngine& engine, std::size_t window) {
  auto values = engine.ReadWindow(window);
  EXPECT_TRUE(values.ok());
  geom::Vec q = *values;
  for (double& x : q) x = 1.5 * x + 2.0;
  return q;
}

/// Asserts that the report's totals are the telemetry's, field by field.
void ExpectReportMatchesTelemetry(const obs::ExplainReport& r,
                                  const QueryStats& stats) {
  const obs::QueryTelemetry& t = stats.telemetry;
  EXPECT_EQ(r.nodes_visited, t.nodes_visited);
  EXPECT_EQ(r.entries_tested, t.entries_tested);
  EXPECT_EQ(r.ep_prunes, t.ep_prunes);
  EXPECT_EQ(r.bs_prunes, t.bs_prunes);
  EXPECT_EQ(r.exact_prunes, t.exact_prunes);
  EXPECT_EQ(r.mbr_distance_evals, t.mbr_distance_evals);
  EXPECT_EQ(r.leaf_candidates, t.leaf_candidates);
  EXPECT_EQ(r.postfiltered, t.candidates_postfiltered);
  EXPECT_EQ(r.candidates, stats.candidates);
  EXPECT_EQ(r.matches, stats.matches);
  EXPECT_EQ(r.index_page_reads, stats.index_page_reads);
  EXPECT_EQ(r.index_page_misses, stats.index_page_misses);
  EXPECT_EQ(r.data_page_reads, stats.data_page_reads);
}

TEST(ExplainOracleTest, NotFoundBeforeFirstTelemetryQuery) {
  auto engine = MakeBoxLeafEngine(32, 20);
  auto report = engine->ExplainLast();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);

  // A query run WITHOUT a stats sink must not be snapshotted either — the
  // instrumentation-off path stays zero-cost.
  auto matches = engine->RangeQuery(ScaleShiftedQuery(*engine, 0), 1.0);
  ASSERT_TRUE(matches.ok());
  EXPECT_FALSE(engine->ExplainLast().ok());
}

TEST(ExplainOracleTest, SingleLeafRootSatisfiesTheIssueIdentity) {
  auto engine = MakeBoxLeafEngine(32, 20);
  const std::uint64_t windows = engine->num_indexed_windows();
  ASSERT_EQ(windows, 20u);

  for (const geom::PruneStrategy strategy :
       {geom::PruneStrategy::kEepOnly, geom::PruneStrategy::kBoundingSpheres,
        geom::PruneStrategy::kExactDistance}) {
    engine->set_prune_strategy(strategy);
    for (const double eps : {0.0, 0.1, 1.0, 10.0}) {
      QueryStats stats;
      auto matches = engine->RangeQuery(ScaleShiftedQuery(*engine, 4), eps,
                                        TransformCost{}, &stats);
      ASSERT_TRUE(matches.ok());
      auto report = engine->ExplainLast();
      ASSERT_TRUE(report.ok());
      const obs::ExplainReport& r = *report;

      ExpectReportMatchesTelemetry(r, stats);
      EXPECT_TRUE(explain_accounted(r));

      // The root is the only node and a leaf: nothing to descend into, so
      // the identity collapses to the ISSUE's form:
      //   EP + BS + exact + accepted == entries tested.
      EXPECT_EQ(r.tree_height, 1u);
      EXPECT_EQ(r.descents, 0u);
      EXPECT_EQ(r.accepted_leaf_entries, r.leaf_candidates);
      EXPECT_EQ(r.ep_prunes + r.bs_prunes + r.exact_prunes +
                    r.accepted_leaf_entries,
                r.entries_tested);
      EXPECT_EQ(r.entries_tested, windows);
      EXPECT_EQ(r.indexed_windows, windows);
      ASSERT_EQ(r.levels.size(), 1u);
      EXPECT_EQ(r.levels[0].visited, 1u);
      EXPECT_EQ(r.levels[0].total, 1u);
      EXPECT_EQ(r.kind, "range");
      EXPECT_GT(r.seq_scan_pages, 0u);
    }
  }
}

TEST(ExplainOracleTest, MultiLevelTreeAccountsEveryDescent) {
  auto engine = MakeBoxLeafEngine(4, 64);
  ASSERT_EQ(engine->num_indexed_windows(), 64u);
  ASSERT_GE(engine->tree().height(), 3u);

  for (std::size_t i = 0; i < 8; ++i) {
    QueryStats stats;
    auto matches = engine->RangeQuery(ScaleShiftedQuery(*engine, i * 8), 0.5,
                                      TransformCost{}, &stats);
    ASSERT_TRUE(matches.ok());
    auto report = engine->ExplainLast();
    ASSERT_TRUE(report.ok());
    const obs::ExplainReport& r = *report;

    ExpectReportMatchesTelemetry(r, stats);
    EXPECT_TRUE(explain_accounted(r)) << "query " << i;

    // Box-leaf mode: every visited node except the root was entered through
    // exactly one accepted internal entry.
    EXPECT_EQ(r.descents, r.nodes_visited - 1) << "query " << i;
    EXPECT_EQ(r.accepted_leaf_entries, r.leaf_candidates) << "query " << i;

    // The per-level rows tile the totals.
    EXPECT_EQ(r.tree_height, engine->tree().height());
    ASSERT_EQ(r.levels.size(), r.tree_height);
    std::uint64_t visited_sum = 0;
    std::uint64_t total_sum = 0;
    for (const obs::ExplainLevelRow& level : r.levels) {
      visited_sum += level.visited;
      total_sum += level.total;
    }
    EXPECT_EQ(visited_sum, r.nodes_visited);
    EXPECT_EQ(total_sum, r.tree_nodes);
    // The root level has one node and was visited.
    EXPECT_EQ(r.levels.back().total, 1u);
    EXPECT_EQ(r.levels.back().visited, 1u);
  }
}

TEST(ExplainOracleTest, JsonTotalsMatchTelemetryExactly) {
  auto engine = MakeBoxLeafEngine(4, 64);
  QueryStats stats;
  auto matches = engine->RangeQuery(ScaleShiftedQuery(*engine, 12), 0.5,
                                    TransformCost{}, &stats);
  ASSERT_TRUE(matches.ok());
  auto report = engine->ExplainLast();
  ASSERT_TRUE(report.ok());
  const std::string json = obs::RenderExplainJson(*report);

  const obs::QueryTelemetry& t = stats.telemetry;
  auto expect_field = [&json](const char* key, std::uint64_t value) {
    const std::string needle =
        std::string("\"") + key + "\":" + std::to_string(value);
    EXPECT_NE(json.find(needle), std::string::npos)
        << "missing " << needle << " in " << json;
  };
  expect_field("nodes_visited", t.nodes_visited);
  expect_field("entries_tested", t.entries_tested);
  expect_field("ep_prunes", t.ep_prunes);
  expect_field("bs_prunes", t.bs_prunes);
  expect_field("exact_prunes", t.exact_prunes);
  expect_field("mbr_distance_evals", t.mbr_distance_evals);
  expect_field("leaf_candidates", t.leaf_candidates);
  expect_field("postfiltered", t.candidates_postfiltered);
  expect_field("candidates", stats.candidates);
  expect_field("matches", stats.matches);
  expect_field("seq_scan_pages",
               engine->dataset().store().TotalPages());
}

TEST(ExplainOracleTest, KnnWaterfallIsTriviallyAccounted) {
  auto engine = MakeBoxLeafEngine(32, 20);
  QueryStats stats;
  auto matches =
      engine->Knn(ScaleShiftedQuery(*engine, 0), 5, TransformCost{}, &stats);
  ASSERT_TRUE(matches.ok());
  auto report = engine->ExplainLast();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->kind, "knn");
  EXPECT_EQ(report->k, 5u);
  // The best-first k-NN walk collects no penetration waterfall; the report
  // must say so consistently rather than invent numbers.
  EXPECT_EQ(report->entries_tested, 0u);
  EXPECT_EQ(report->descents, 0u);
  EXPECT_EQ(report->accepted_leaf_entries, 0u);
  EXPECT_TRUE(explain_accounted(*report));
  EXPECT_EQ(report->matches, 5u);
}

TEST(ExplainOracleTest, LastQueryWins) {
  auto engine = MakeBoxLeafEngine(32, 20);
  QueryStats stats;
  ASSERT_TRUE(engine
                  ->RangeQuery(ScaleShiftedQuery(*engine, 0), 0.5,
                               TransformCost{}, &stats)
                  .ok());
  ASSERT_TRUE(
      engine->Knn(ScaleShiftedQuery(*engine, 4), 3, TransformCost{}, &stats)
          .ok());
  auto report = engine->ExplainLast();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->kind, "knn");

  ASSERT_TRUE(engine
                  ->RangeQuery(ScaleShiftedQuery(*engine, 8), 0.5,
                               TransformCost{}, &stats)
                  .ok());
  report = engine->ExplainLast();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->kind, "range");
  EXPECT_DOUBLE_EQ(report->eps, 0.5);
}

}  // namespace
}  // namespace tsss::core
