// Tests of the ST-index style sub-trail mode (EngineConfig::subtrail_len):
// identical answers to point mode and the scan, far fewer index pages, and
// correct dynamic maintenance (append rebuilds the partial tail trail).

#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/core/engine.h"
#include "tsss/core/seq_scan.h"
#include "tsss/seq/stock_generator.h"
#include "tsss/seq/window.h"

namespace tsss::core {
namespace {

using geom::Vec;

EngineConfig TrailConfig(std::size_t subtrail_len) {
  EngineConfig config;
  config.window = 16;
  config.reduced_dim = 4;
  config.tree.max_entries = 8;
  config.buffer_pool_pages = 256;
  config.subtrail_len = subtrail_len;
  return config;
}

std::vector<seq::TimeSeries> Market(std::size_t companies = 12,
                                    std::size_t length = 120) {
  seq::StockMarketConfig mc;
  mc.num_companies = companies;
  mc.values_per_company = length;
  mc.seed = 1234;
  return seq::GenerateStockMarket(mc);
}

TEST(SubtrailTest, RangeQueryMatchesSequentialScan) {
  const auto market = Market();
  auto engine = SearchEngine::Create(TrailConfig(8));
  ASSERT_TRUE(engine.ok()) << engine.status();
  for (const auto& series : market) {
    ASSERT_TRUE((*engine)->AddSeries(series.name, series.values).ok());
  }
  ASSERT_TRUE((*engine)->tree().CheckInvariants().ok());
  SequentialScanner scanner(&(*engine)->dataset(), 16);

  Rng rng(9);
  for (int q = 0; q < 10; ++q) {
    const std::size_t series = static_cast<std::size_t>(rng.UniformInt(0, 11));
    const std::size_t offset = static_cast<std::size_t>(rng.UniformInt(0, 100));
    Vec query(market[series].values.begin() + static_cast<std::ptrdiff_t>(offset),
              market[series].values.begin() + static_cast<std::ptrdiff_t>(offset + 16));
    for (auto& x : query) x = 1.5 * x + 2.0;
    const double eps = rng.Uniform(0.05, 1.5);

    auto fast = (*engine)->RangeQuery(query, eps);
    auto slow = scanner.RangeQuery(query, eps);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    std::set<index::RecordId> fast_set, slow_set;
    for (const Match& m : *fast) fast_set.insert(m.record);
    for (const Match& m : *slow) slow_set.insert(m.record);
    EXPECT_EQ(fast_set, slow_set) << "query " << q << " eps " << eps;
  }
}

TEST(SubtrailTest, TrailLengthSweepAllAgree) {
  const auto market = Market(8, 100);
  std::set<index::RecordId> reference;
  for (const std::size_t trail : {0u, 1u, 4u, 16u, 64u}) {
    auto engine = SearchEngine::Create(TrailConfig(trail));
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->BulkBuild(market).ok());
    const Vec query(market[2].values.begin() + 5,
                    market[2].values.begin() + 21);
    auto matches = (*engine)->RangeQuery(query, 0.8);
    ASSERT_TRUE(matches.ok());
    std::set<index::RecordId> got;
    for (const Match& m : *matches) got.insert(m.record);
    if (trail == 0) {
      reference = got;
    } else {
      EXPECT_EQ(got, reference) << "trail " << trail;
    }
  }
}

TEST(SubtrailTest, IndexIsSmallerAndReadsFewerPages) {
  const auto market = Market(20, 200);
  const Vec query(market[0].values.begin(), market[0].values.begin() + 16);

  std::size_t entries[2];
  std::uint64_t pages[2];
  int i = 0;
  for (const std::size_t trail : {0u, 16u}) {
    auto engine = SearchEngine::Create(TrailConfig(trail));
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->BulkBuild(market).ok());
    entries[i] = (*engine)->tree().size();
    QueryStats stats;
    auto matches = (*engine)->RangeQuery(query, 0.2, TransformCost{}, &stats);
    ASSERT_TRUE(matches.ok());
    pages[i] = stats.index_page_reads;
    ++i;
  }
  EXPECT_LT(entries[1], entries[0] / 8) << "trails should shrink the index";
  EXPECT_LT(pages[1], pages[0]) << "trails should cut index page reads";
}

TEST(SubtrailTest, AppendRebuildsPartialTrail) {
  auto engine = SearchEngine::Create(TrailConfig(4));
  ASSERT_TRUE(engine.ok());
  Rng rng(10);
  Vec initial(25);
  for (auto& x : initial) x = rng.Uniform(0, 10);
  auto id = (*engine)->AddSeries("grow", initial);
  ASSERT_TRUE(id.ok());
  // 25 values, window 16 -> windows 0..9 -> trails {0..3},{4..7},{8,9}.
  EXPECT_EQ((*engine)->tree().size(), 3u);

  Vec extra(7);
  for (auto& x : extra) x = rng.Uniform(0, 10);
  ASSERT_TRUE((*engine)->Append(*id, extra).ok());
  // 32 values -> windows 0..16 -> trails {0..3},{4..7},{8..11},{12..15},{16}.
  EXPECT_EQ((*engine)->tree().size(), 5u);
  ASSERT_TRUE((*engine)->tree().CheckInvariants().ok());

  // Every window, including those spanning the append boundary, is found.
  auto values = (*engine)->dataset().Values(*id);
  ASSERT_TRUE(values.ok());
  for (std::size_t off = 0; off + 16 <= values->size(); off += 3) {
    const Vec query(values->begin() + static_cast<std::ptrdiff_t>(off),
                    values->begin() + static_cast<std::ptrdiff_t>(off + 16));
    auto matches = (*engine)->RangeQuery(query, 1e-9);
    ASSERT_TRUE(matches.ok());
    bool found = false;
    for (const Match& m : *matches) {
      if (m.offset == off) found = true;
    }
    EXPECT_TRUE(found) << "offset " << off;
  }
}

TEST(SubtrailTest, KnnMatchesScan) {
  const auto market = Market(10, 100);
  auto engine = SearchEngine::Create(TrailConfig(8));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->BulkBuild(market).ok());
  SequentialScanner scanner(&(*engine)->dataset(), 16);

  Rng rng(11);
  for (int q = 0; q < 5; ++q) {
    const std::size_t series = static_cast<std::size_t>(rng.UniformInt(0, 9));
    Vec query(market[series].values.begin() + 3,
              market[series].values.begin() + 19);
    for (auto& x : query) x *= 1.0 + rng.Uniform(-0.01, 0.01);
    for (const std::size_t k : {1u, 7u}) {
      auto fast = (*engine)->Knn(query, k);
      auto slow = scanner.Knn(query, k);
      ASSERT_TRUE(fast.ok());
      ASSERT_TRUE(slow.ok());
      ASSERT_EQ(fast->size(), slow->size());
      for (std::size_t i = 0; i < fast->size(); ++i) {
        EXPECT_NEAR((*fast)[i].distance, (*slow)[i].distance, 1e-7);
      }
    }
  }
}

TEST(SubtrailTest, LongRangeQueryWorks) {
  auto engine = SearchEngine::Create(TrailConfig(8));
  ASSERT_TRUE(engine.ok());
  Rng rng(12);
  Vec values(150);
  for (auto& x : values) x = rng.Uniform(0, 20);
  ASSERT_TRUE((*engine)->AddSeries("s", values).ok());

  const Vec query(values.begin() + 40, values.begin() + 88);  // length 48
  auto matches = (*engine)->LongRangeQuery(query, 1e-9);
  ASSERT_TRUE(matches.ok());
  bool found = false;
  for (const Match& m : *matches) {
    if (m.offset == 40) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SubtrailTest, RemoveWindowRejected) {
  auto engine = SearchEngine::Create(TrailConfig(4));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->AddSeries("s", std::vector<double>(30, 1.0)).ok());
  EXPECT_EQ((*engine)->RemoveWindow(seq::MakeRecordId(0, 0)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SubtrailTest, PersistsThroughCheckpoint) {
  const std::string dir = ::testing::TempDir() + "/tsss_subtrail_persist";
  std::filesystem::remove_all(dir);
  const auto market = Market(6, 80);
  const Vec query(market[1].values.begin(), market[1].values.begin() + 16);
  std::vector<Match> before;
  {
    EngineConfig config = TrailConfig(8);
    config.storage_dir = dir;
    auto engine = SearchEngine::Create(config);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->BulkBuild(market).ok());
    auto matches = (*engine)->RangeQuery(query, 0.5);
    ASSERT_TRUE(matches.ok());
    before = *matches;
    ASSERT_TRUE((*engine)->Checkpoint().ok());
  }
  auto reopened = SearchEngine::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->config().subtrail_len, 8u);
  auto matches = (*reopened)->RangeQuery(query, 0.5);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), before.size());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tsss::core
