// End-to-end persistence: build a file-backed engine, checkpoint, reopen in
// a "new process" (new object), and verify identical query answers plus
// continued mutability.

#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/core/engine.h"
#include "tsss/seq/stock_generator.h"

namespace tsss::core {
namespace {

using geom::Vec;

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/tsss_engine_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  EngineConfig FileBackedConfig() {
    EngineConfig config;
    config.window = 16;
    config.reduced_dim = 4;
    config.tree.max_entries = 8;
    config.buffer_pool_pages = 64;
    config.storage_dir = dir_;
    return config;
  }

  std::vector<seq::TimeSeries> Market() {
    seq::StockMarketConfig mc;
    mc.num_companies = 10;
    mc.values_per_company = 100;
    mc.seed = 77;
    return seq::GenerateStockMarket(mc);
  }

  std::string dir_;
};

TEST_F(PersistenceTest, CheckpointAndReopenGiveIdenticalAnswers) {
  const auto market = Market();
  Vec query(market[3].values.begin() + 10, market[3].values.begin() + 26);
  std::vector<Match> before;
  {
    auto engine = SearchEngine::Create(FileBackedConfig());
    ASSERT_TRUE(engine.ok()) << engine.status();
    for (const auto& series : market) {
      ASSERT_TRUE((*engine)->AddSeries(series.name, series.values).ok());
    }
    auto matches = (*engine)->RangeQuery(query, 0.5);
    ASSERT_TRUE(matches.ok());
    before = *matches;
    ASSERT_TRUE((*engine)->Checkpoint().ok());
  }

  auto reopened = SearchEngine::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->num_indexed_windows(), 10u * (100 - 16 + 1));
  EXPECT_EQ((*reopened)->config().window, 16u);
  ASSERT_TRUE((*reopened)->tree().CheckInvariants().ok());

  auto matches = (*reopened)->RangeQuery(query, 0.5);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ((*matches)[i].record, before[i].record);
    EXPECT_NEAR((*matches)[i].distance, before[i].distance, 1e-12);
  }
  // Dataset names survived too.
  EXPECT_EQ(*(*reopened)->dataset().Name(3), market[3].name);
}

TEST_F(PersistenceTest, ReopenedEngineStaysMutable) {
  {
    auto engine = SearchEngine::Create(FileBackedConfig());
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->AddSeries("s", std::vector<double>(30, 1.0)).ok());
    ASSERT_TRUE((*engine)->Checkpoint().ok());
  }
  auto reopened = SearchEngine::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  const std::size_t before = (*reopened)->num_indexed_windows();
  Rng rng(1);
  Vec fresh(40);
  for (auto& x : fresh) x = rng.Uniform(0, 10);
  ASSERT_TRUE((*reopened)->AddSeries("fresh", fresh).ok());
  EXPECT_EQ((*reopened)->num_indexed_windows(), before + 25);
  ASSERT_TRUE((*reopened)->tree().CheckInvariants().ok());

  // Checkpoint again and reopen once more.
  ASSERT_TRUE((*reopened)->Checkpoint().ok());
  auto again = SearchEngine::Open(dir_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->num_indexed_windows(), before + 25);
}

TEST_F(PersistenceTest, CheckpointRequiresFileBacking) {
  EngineConfig config = FileBackedConfig();
  config.storage_dir.clear();  // in-memory
  auto engine = SearchEngine::Create(config);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->Checkpoint().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PersistenceTest, OpenMissingDirFails) {
  auto engine = SearchEngine::Open(dir_ + "/nope");
  EXPECT_FALSE(engine.ok());
}

TEST_F(PersistenceTest, BulkBuiltEngineSurvivesReopen) {
  const auto market = Market();
  {
    auto engine = SearchEngine::Create(FileBackedConfig());
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->BulkBuild(market).ok());
    ASSERT_TRUE((*engine)->Checkpoint().ok());
  }
  auto reopened = SearchEngine::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ASSERT_TRUE((*reopened)->tree().CheckInvariants().ok());
  // Self-window is found exactly.
  const Vec query(market[0].values.begin(), market[0].values.begin() + 16);
  auto matches = (*reopened)->RangeQuery(query, 1e-9);
  ASSERT_TRUE(matches.ok());
  bool found = false;
  for (const Match& m : *matches) {
    if (m.series == 0 && m.offset == 0) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace tsss::core
