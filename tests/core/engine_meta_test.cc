// Regression tests for ParseEngineMeta: engine.meta is read back from disk
// on Open() and is untrusted. Before the hardening, values like "window nan"
// or "window 1e300" hit a raw double -> size_t cast — undefined behaviour
// (UBSan float-cast-overflow) — instead of a Corruption status.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "tsss/core/engine.h"

namespace tsss::core {
namespace {

/// A complete, valid metadata text (mirrors what Checkpoint writes).
std::string ValidMeta() {
  return
      "tsss-engine-meta-v1\n"
      "window 128\n"
      "stride 1\n"
      "subtrail 0\n"
      "reducer 0\n"
      "reduced_dim 6\n"
      "prune 0\n"
      "pool_pages 8192\n"
      "cold_cache 1\n"
      "tree_max 20\n"
      "tree_leaf_max 20\n"
      "tree_min_fill 0.4\n"
      "tree_split 2\n"
      "tree_reinsert 0.3\n"
      "supernodes 0\n"
      "supernode_overlap 0.8\n"
      "supernode_multiple 4\n"
      "windows 873\n"
      "root 3\n"
      "height 2\n"
      "size 873\n";
}

Result<EngineMeta> Parse(const std::string& text) {
  std::istringstream in(text);
  return ParseEngineMeta(in);
}

std::string Replace(std::string text, const std::string& from,
                    const std::string& to) {
  const std::size_t at = text.find(from);
  EXPECT_NE(at, std::string::npos);
  return text.replace(at, from.size(), to);
}

TEST(EngineMetaTest, ValidMetaParses) {
  auto meta = Parse(ValidMeta());
  ASSERT_TRUE(meta.ok()) << meta.status().message();
  EXPECT_EQ(meta->config.window, 128u);
  EXPECT_EQ(meta->config.stride, 1u);
  EXPECT_EQ(meta->indexed_windows, 873u);
  EXPECT_EQ(meta->root, 3u);
  EXPECT_EQ(meta->height, 2u);
  EXPECT_EQ(meta->tree_size, 873u);
}

TEST(EngineMetaTest, WrongVersionLineIsCorruption) {
  auto meta = Parse("tsss-engine-meta-v999\nwindow 128\n");
  EXPECT_EQ(meta.status().code(), StatusCode::kCorruption);
}

TEST(EngineMetaTest, MissingKeyIsCorruption) {
  auto meta = Parse(Replace(ValidMeta(), "stride 1\n", ""));
  EXPECT_EQ(meta.status().code(), StatusCode::kCorruption);
}

TEST(EngineMetaTest, NanSizeIsCorruptionNotUb) {
  auto meta = Parse(Replace(ValidMeta(), "window 128", "window nan"));
  EXPECT_EQ(meta.status().code(), StatusCode::kCorruption);
}

TEST(EngineMetaTest, HugeSizeIsCorruptionNotUb) {
  auto meta = Parse(Replace(ValidMeta(), "window 128", "window 1e300"));
  EXPECT_EQ(meta.status().code(), StatusCode::kCorruption);
}

TEST(EngineMetaTest, NegativeSizeIsCorruption) {
  auto meta = Parse(Replace(ValidMeta(), "pool_pages 8192", "pool_pages -1"));
  EXPECT_EQ(meta.status().code(), StatusCode::kCorruption);
}

TEST(EngineMetaTest, FractionalSizeIsCorruption) {
  auto meta = Parse(Replace(ValidMeta(), "windows 873", "windows 873.5"));
  EXPECT_EQ(meta.status().code(), StatusCode::kCorruption);
}

TEST(EngineMetaTest, UnknownReducerEnumIsCorruption) {
  auto meta = Parse(Replace(ValidMeta(), "reducer 0", "reducer 99"));
  EXPECT_EQ(meta.status().code(), StatusCode::kCorruption);
}

TEST(EngineMetaTest, UnknownSplitEnumIsCorruption) {
  auto meta = Parse(Replace(ValidMeta(), "tree_split 2", "tree_split 7"));
  EXPECT_EQ(meta.status().code(), StatusCode::kCorruption);
}

TEST(EngineMetaTest, RootBeyondPageIdSpaceIsCorruption) {
  auto meta = Parse(Replace(ValidMeta(), "root 3", "root 4294967296"));
  EXPECT_EQ(meta.status().code(), StatusCode::kCorruption);
}

TEST(EngineMetaTest, InfiniteFractionIsCorruption) {
  auto meta =
      Parse(Replace(ValidMeta(), "tree_min_fill 0.4", "tree_min_fill inf"));
  EXPECT_EQ(meta.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace tsss::core
