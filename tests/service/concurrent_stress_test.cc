// Concurrency stress: many threads drive mixed Range / k-NN / LongRange
// queries through one QueryService over one shared engine, and every answer
// is cross-checked against a single-threaded oracle run of the identical
// workload. Run under -fsanitize=thread (the `tsan` preset / CI job) to turn
// any data race in the shared read path into a hard failure.

#include <cstddef>
#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/core/engine.h"
#include "tsss/seq/stock_generator.h"
#include "tsss/seq/window.h"
#include "tsss/service/query_service.h"

namespace tsss::service {
namespace {

constexpr std::size_t kWindow = 16;
constexpr std::size_t kNumQueries = 96;

core::EngineConfig StressEngineConfig() {
  core::EngineConfig config;
  config.window = kWindow;
  config.reduced_dim = 4;
  config.tree.max_entries = 8;
  // Small enough that concurrent queries contend on eviction, large enough
  // to hold the hot upper levels.
  config.buffer_pool_pages = 64;
  return config;
}

std::unique_ptr<core::SearchEngine> MakeStressEngine() {
  auto engine = core::SearchEngine::Create(StressEngineConfig());
  EXPECT_TRUE(engine.ok());
  seq::StockMarketConfig market;
  market.num_companies = 16;
  market.values_per_company = 256;
  market.seed = 4242;
  for (const seq::TimeSeries& series : seq::GenerateStockMarket(market)) {
    EXPECT_TRUE((*engine)->AddSeries(series.name, series.values).ok());
  }
  return std::move(engine).value();
}

/// A deterministic mixed workload: round-robin over the three query kinds,
/// with query windows lifted from the indexed data (guaranteeing matches)
/// and perturbed so verification does real work.
std::vector<QueryRequest> MakeWorkload(const core::SearchEngine& engine) {
  Rng rng(1234);
  std::vector<QueryRequest> workload;
  workload.reserve(kNumQueries);
  const std::size_t num_series = engine.dataset().store().num_series();
  for (std::size_t i = 0; i < kNumQueries; ++i) {
    const auto series = static_cast<storage::SeriesId>(i % num_series);
    const auto offset = static_cast<std::uint32_t>((i * 13) % 128);
    QueryRequest request;
    switch (i % 3) {
      case 0: {
        request.kind = QueryKind::kRange;
        auto window = engine.ReadWindow(seq::MakeRecordId(series, offset));
        EXPECT_TRUE(window.ok());
        request.query = *window;
        for (double& v : request.query) v += rng.Uniform(-0.5, 0.5);
        request.eps = 4.0 + rng.Uniform(0.0, 4.0);
        break;
      }
      case 1: {
        request.kind = QueryKind::kKnn;
        auto window = engine.ReadWindow(seq::MakeRecordId(series, offset));
        EXPECT_TRUE(window.ok());
        request.query = *window;
        request.k = 1 + i % 7;
        break;
      }
      default: {
        request.kind = QueryKind::kLongRange;
        geom::Vec query(3 * kWindow);
        auto values = engine.dataset().Values(series);
        EXPECT_TRUE(values.ok());
        for (std::size_t j = 0; j < query.size(); ++j) {
          query[j] = (*values)[offset + j];
        }
        request.query = std::move(query);
        request.eps = 8.0 + rng.Uniform(0.0, 8.0);
        break;
      }
    }
    workload.push_back(std::move(request));
  }
  return workload;
}

void ExpectSameAnswer(const QueryResponse& got,
                      const Result<std::vector<core::Match>>& oracle,
                      std::size_t query_index) {
  ASSERT_TRUE(got.status.ok()) << "query " << query_index << ": "
                               << got.status.ToString();
  ASSERT_TRUE(oracle.ok()) << "oracle " << query_index;
  ASSERT_EQ(got.matches.size(), oracle->size()) << "query " << query_index;
  for (std::size_t i = 0; i < oracle->size(); ++i) {
    EXPECT_EQ(got.matches[i].record, (*oracle)[i].record)
        << "query " << query_index << " match " << i;
    EXPECT_DOUBLE_EQ(got.matches[i].distance, (*oracle)[i].distance)
        << "query " << query_index << " match " << i;
  }
}

TEST(ConcurrentStressTest, MixedWorkloadMatchesSingleThreadedOracle) {
  auto engine = MakeStressEngine();
  const std::vector<QueryRequest> workload = MakeWorkload(*engine);

  // Single-threaded oracle over the identical workload, computed before the
  // service exists (warm cache either way; caching never changes results).
  engine->set_cold_cache_per_query(false);
  std::vector<Result<std::vector<core::Match>>> oracle;
  oracle.reserve(workload.size());
  for (const QueryRequest& request : workload) {
    switch (request.kind) {
      case QueryKind::kRange:
        oracle.push_back(
            engine->RangeQuery(request.query, request.eps, request.cost));
        break;
      case QueryKind::kKnn:
        oracle.push_back(engine->Knn(request.query, request.k, request.cost));
        break;
      case QueryKind::kLongRange:
        oracle.push_back(
            engine->LongRangeQuery(request.query, request.eps, request.cost));
        break;
    }
  }

  ServiceConfig config;
  config.num_workers = 8;
  config.queue_capacity = workload.size();
  auto service = QueryService::Create(engine.get(), config);
  ASSERT_TRUE(service.ok());

  // Submit everything at once so all 8 workers hammer the shared engine,
  // then also issue direct const-path queries from this thread to mix
  // service and non-service readers.
  auto futures = (*service)->SubmitBatch(workload);
  ASSERT_TRUE(futures.ok());
  for (std::size_t i = 0; i < 16; ++i) {
    const QueryRequest& request = workload[i * 3 % workload.size()];
    if (request.kind != QueryKind::kRange) continue;
    auto direct = engine->RangeQuery(request.query, request.eps, request.cost);
    EXPECT_TRUE(direct.ok());
  }

  for (std::size_t i = 0; i < futures->size(); ++i) {
    ExpectSameAnswer((*futures)[i].get(), oracle[i], i);
  }

  ServiceMetrics metrics = (*service)->Stats();
  EXPECT_EQ(metrics.served, workload.size());
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_EQ(metrics.timed_out, 0u);
  EXPECT_GT(metrics.pool_hit_rate, 0.0);

  (*service)->Shutdown();
  // No pin leaked and no frame corrupted by the concurrent readers.
  EXPECT_TRUE(engine->pool().AuditPins().ok());
}

TEST(ConcurrentStressTest, RepeatedRoundsKeepPoolConsistent) {
  auto engine = MakeStressEngine();
  const std::vector<QueryRequest> workload = MakeWorkload(*engine);
  for (int round = 0; round < 3; ++round) {
    ServiceConfig config;
    config.num_workers = 4;
    config.queue_capacity = workload.size();
    auto service = QueryService::Create(engine.get(), config);
    ASSERT_TRUE(service.ok());
    auto futures = (*service)->SubmitBatch(workload);
    ASSERT_TRUE(futures.ok());
    for (auto& future : *futures) {
      EXPECT_TRUE(future.get().status.ok());
    }
    // Service destroyed mid-scope each round: destructor shutdown.
  }
  EXPECT_TRUE(engine->pool().AuditPins().ok());
}

}  // namespace
}  // namespace tsss::service
