#include "tsss/service/query_service.h"

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tsss/common/exec_control.h"
#include "tsss/seq/stock_generator.h"

namespace tsss::service {
namespace {

using std::chrono::milliseconds;

core::EngineConfig SmallEngineConfig() {
  core::EngineConfig config;
  config.window = 16;
  config.reduced_dim = 4;
  config.tree.max_entries = 8;
  config.buffer_pool_pages = 256;
  return config;
}

std::unique_ptr<core::SearchEngine> MakeEngine(std::size_t companies = 12,
                                               std::size_t length = 200) {
  auto engine = core::SearchEngine::Create(SmallEngineConfig());
  EXPECT_TRUE(engine.ok());
  seq::StockMarketConfig market;
  market.num_companies = companies;
  market.values_per_company = length;
  market.seed = 7;
  for (const seq::TimeSeries& series : seq::GenerateStockMarket(market)) {
    EXPECT_TRUE((*engine)->AddSeries(series.name, series.values).ok());
  }
  return std::move(engine).value();
}

QueryRequest RangeRequest(const core::SearchEngine& engine, double eps = 5.0) {
  QueryRequest request;
  request.kind = QueryKind::kRange;
  // Query with the first indexed window so at least the self-match exists.
  auto window = engine.ReadWindow(0);
  EXPECT_TRUE(window.ok());
  request.query = *window;
  request.eps = eps;
  return request;
}

TEST(QueryServiceCreateTest, ValidatesConfig) {
  auto engine = MakeEngine();
  ServiceConfig config;
  config.num_workers = 0;
  EXPECT_FALSE(QueryService::Create(engine.get(), config).ok());
  config = ServiceConfig{};
  config.queue_capacity = 0;
  EXPECT_FALSE(QueryService::Create(engine.get(), config).ok());
  EXPECT_FALSE(QueryService::Create(nullptr, ServiceConfig{}).ok());
  EXPECT_TRUE(QueryService::Create(engine.get(), ServiceConfig{}).ok());
}

TEST(QueryServiceCreateTest, DisablesColdCachePerQuery) {
  auto engine = MakeEngine();
  ASSERT_TRUE(engine->config().cold_cache_per_query);
  auto service = QueryService::Create(engine.get(), ServiceConfig{});
  ASSERT_TRUE(service.ok());
  EXPECT_FALSE(engine->config().cold_cache_per_query);
}

TEST(QueryServiceTest, ServesRangeQueryMatchingDirectCall) {
  auto engine = MakeEngine();
  QueryRequest request = RangeRequest(*engine);

  engine->set_cold_cache_per_query(false);
  core::QueryStats direct_stats;
  auto direct = engine->RangeQuery(request.query, request.eps, request.cost,
                                   &direct_stats);
  ASSERT_TRUE(direct.ok());

  auto service = QueryService::Create(engine.get(), ServiceConfig{});
  ASSERT_TRUE(service.ok());
  auto future = (*service)->Submit(request);
  ASSERT_TRUE(future.ok());
  QueryResponse response = future->get();
  ASSERT_TRUE(response.status.ok());
  ASSERT_EQ(response.matches.size(), direct->size());
  for (std::size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ(response.matches[i].record, (*direct)[i].record);
    EXPECT_DOUBLE_EQ(response.matches[i].distance, (*direct)[i].distance);
  }
  EXPECT_EQ(response.stats.matches, direct_stats.matches);
  EXPECT_EQ(response.stats.candidates, direct_stats.candidates);
  EXPECT_GT(response.latency.count(), 0);

  ServiceMetrics metrics = (*service)->Stats();
  EXPECT_EQ(metrics.submitted, 1u);
  EXPECT_EQ(metrics.served, 1u);
  EXPECT_EQ(metrics.rejected, 0u);
}

TEST(QueryServiceTest, FeedsRollingWindowAndWindowedStats) {
  auto engine = MakeEngine();
  auto service = QueryService::Create(engine.get(), ServiceConfig{});
  ASSERT_TRUE(service.ok());
  QueryRequest request = RangeRequest(*engine);
  for (int i = 0; i < 5; ++i) {
    auto future = (*service)->Submit(request);
    ASSERT_TRUE(future.ok());
    EXPECT_TRUE(future->get().status.ok());
  }
  // Every completion lands in the service's rolling window; Stats() mirrors
  // the trailing minute next to the cumulative counters.
  const ServiceMetrics metrics = (*service)->Stats();
  EXPECT_EQ(metrics.last_minute.count, 5u);
  EXPECT_EQ(metrics.last_minute.errors, 0u);
  EXPECT_DOUBLE_EQ(metrics.last_minute.availability(), 1.0);
  EXPECT_GT(metrics.last_minute.p50_ms, 0.0);
  EXPECT_EQ((*service)->rolling().Window(60'000'000).count, 5u);
}

TEST(QueryServiceTest, RejectsWhenQueueFull) {
  auto engine = MakeEngine();
  ServiceConfig config;
  config.num_workers = 1;
  config.queue_capacity = 2;
  auto service = QueryService::Create(engine.get(), config);
  ASSERT_TRUE(service.ok());

  // Stall the single worker with a request whose ExecControl deadline can
  // never fire, then fill the queue behind it.
  QueryRequest request = RangeRequest(*engine);
  std::vector<std::future<QueryResponse>> accepted;
  std::size_t rejected = 0;
  for (int i = 0; i < 32; ++i) {
    auto future = (*service)->Submit(request);
    if (future.ok()) {
      accepted.push_back(std::move(future).value());
    } else {
      EXPECT_EQ(future.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  // With capacity 2 and one worker, at most 3 requests can be in the system
  // untouched (1 running + 2 queued); queries are fast, so the worker may
  // drain some, but 32 back-to-back submissions must overflow at least once.
  EXPECT_GT(rejected, 0u);
  for (auto& future : accepted) {
    EXPECT_TRUE(future.get().status.ok());
  }
  ServiceMetrics metrics = (*service)->Stats();
  EXPECT_EQ(metrics.rejected, rejected);
  EXPECT_EQ(metrics.submitted, accepted.size());
  EXPECT_EQ(metrics.served, accepted.size());
}

TEST(QueryServiceTest, SubmitBatchIsAllOrNothing) {
  auto engine = MakeEngine();
  ServiceConfig config;
  config.num_workers = 1;
  config.queue_capacity = 4;
  auto service = QueryService::Create(engine.get(), config);
  ASSERT_TRUE(service.ok());

  std::vector<QueryRequest> big(32, RangeRequest(*engine));
  auto too_big = (*service)->SubmitBatch(std::move(big));
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kResourceExhausted);

  std::vector<QueryRequest> fits(3, RangeRequest(*engine));
  auto futures = (*service)->SubmitBatch(std::move(fits));
  ASSERT_TRUE(futures.ok());
  ASSERT_EQ(futures->size(), 3u);
  for (auto& future : *futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
}

TEST(QueryServiceTest, ExpiredDeadlineFailsWithDeadlineExceeded) {
  auto engine = MakeEngine();
  ServiceConfig config;
  config.num_workers = 1;
  auto service = QueryService::Create(engine.get(), config);
  ASSERT_TRUE(service.ok());

  // A deadline this short expires before the worker dequeues the request
  // (or during its first node loads); either path must report timeout.
  QueryRequest request = RangeRequest(*engine);
  request.timeout = milliseconds(1);
  std::this_thread::sleep_for(milliseconds(5));  // warm up the clock
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 32; ++i) {
    auto future = (*service)->Submit(request);
    ASSERT_TRUE(future.ok());
    futures.push_back(std::move(future).value());
  }
  std::size_t timed_out = 0;
  for (auto& future : futures) {
    QueryResponse response = future.get();
    if (response.status.code() == StatusCode::kDeadlineExceeded) ++timed_out;
  }
  // The first request may finish inside 1ms; the ones queued behind it
  // cannot all do so.
  EXPECT_GT(timed_out, 0u);
  EXPECT_EQ((*service)->Stats().timed_out, timed_out);
}

TEST(QueryServiceTest, DefaultTimeoutAppliesWhenRequestLeavesZero) {
  auto engine = MakeEngine();
  ServiceConfig config;
  config.num_workers = 1;
  config.default_timeout = milliseconds(1);
  auto service = QueryService::Create(engine.get(), config);
  ASSERT_TRUE(service.ok());

  QueryRequest request = RangeRequest(*engine);
  request.timeout = milliseconds(-1);  // explicitly unbounded
  auto unbounded = (*service)->Submit(request);
  ASSERT_TRUE(unbounded.ok());
  EXPECT_TRUE(unbounded->get().status.ok());
}

TEST(QueryServiceTest, ShutdownDrainsInFlightQueries) {
  auto engine = MakeEngine();
  ServiceConfig config;
  config.num_workers = 2;
  config.queue_capacity = 64;
  auto service = QueryService::Create(engine.get(), config);
  ASSERT_TRUE(service.ok());

  QueryRequest request = RangeRequest(*engine);
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 24; ++i) {
    auto future = (*service)->Submit(request);
    ASSERT_TRUE(future.ok());
    futures.push_back(std::move(future).value());
  }
  (*service)->Shutdown();
  // Every accepted future resolves even though shutdown raced the queue.
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
  auto after = (*service)->Submit(request);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kFailedPrecondition);
  (*service)->Shutdown();  // idempotent
  EXPECT_EQ((*service)->Stats().queue_depth, 0u);
  EXPECT_TRUE(engine->pool().AuditPins().ok());
}

TEST(QueryServiceTest, InvalidRequestFailsThatQueryOnly) {
  auto engine = MakeEngine();
  auto service = QueryService::Create(engine.get(), ServiceConfig{});
  ASSERT_TRUE(service.ok());

  QueryRequest bad;
  bad.kind = QueryKind::kRange;
  bad.query = geom::Vec(3, 0.0);  // wrong length
  bad.eps = 1.0;
  auto bad_future = (*service)->Submit(bad);
  ASSERT_TRUE(bad_future.ok());
  EXPECT_EQ(bad_future->get().status.code(), StatusCode::kInvalidArgument);

  auto good_future = (*service)->Submit(RangeRequest(*engine));
  ASSERT_TRUE(good_future.ok());
  EXPECT_TRUE(good_future->get().status.ok());

  ServiceMetrics metrics = (*service)->Stats();
  EXPECT_EQ(metrics.failed, 1u);
  EXPECT_EQ(metrics.served, 1u);
}

TEST(LatencyHistogramTest, BucketsAreMonotoneAndAligned) {
  std::uint64_t prev_floor = 0;
  for (std::size_t b = 1; b < LatencyHistogram::kNumBuckets; ++b) {
    const std::uint64_t floor = LatencyHistogram::BucketFloorUs(b);
    EXPECT_GT(floor, prev_floor) << "bucket " << b;
    // The floor of a bucket maps back into that bucket.
    EXPECT_EQ(LatencyHistogram::BucketFor(floor), b);
    prev_floor = floor;
  }
}

TEST(LatencyHistogramTest, PercentilesBracketRecordedValues) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.PercentileMs(0.5), 0.0);  // empty
  for (int i = 0; i < 99; ++i) hist.Record(std::chrono::microseconds(1000));
  hist.Record(std::chrono::microseconds(1u << 20));  // one ~1s outlier
  const double p50 = hist.PercentileMs(0.50);
  const double p99 = hist.PercentileMs(0.99);
  EXPECT_GE(p50, 0.5);
  EXPECT_LE(p50, 1.5);
  EXPECT_GE(p99, p50);
  EXPECT_LT(p99, 1000.0);
  EXPECT_GE(hist.PercentileMs(1.0), 1000.0);
}

}  // namespace
}  // namespace tsss::service
