#include "tsss/seq/window.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace tsss::seq {
namespace {

TEST(RecordIdTest, PackUnpackRoundTrip) {
  const std::uint64_t r = MakeRecordId(0xABCD1234u, 0x9876FEDCu);
  EXPECT_EQ(SeriesOf(r), 0xABCD1234u);
  EXPECT_EQ(OffsetOf(r), 0x9876FEDCu);
}

TEST(RecordIdTest, ZeroAndMax) {
  EXPECT_EQ(SeriesOf(MakeRecordId(0, 0)), 0u);
  EXPECT_EQ(OffsetOf(MakeRecordId(0, 0)), 0u);
  const std::uint64_t r = MakeRecordId(0xFFFFFFFFu, 0xFFFFFFFFu);
  EXPECT_EQ(SeriesOf(r), 0xFFFFFFFFu);
  EXPECT_EQ(OffsetOf(r), 0xFFFFFFFFu);
}

std::vector<double> Iota(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
  return v;
}

TEST(ForEachWindowTest, SlidesWithStrideOne) {
  storage::SequenceStore store;
  store.AddSeries(Iota(10));
  std::vector<std::uint32_t> offsets;
  ASSERT_TRUE(ForEachWindow(store, 4, 1,
                            [&](storage::SeriesId, std::uint32_t off,
                                std::span<const double> w) {
                              offsets.push_back(off);
                              EXPECT_EQ(w.size(), 4u);
                              EXPECT_DOUBLE_EQ(w[0], off);
                            })
                  .ok());
  EXPECT_EQ(offsets.size(), 7u);  // offsets 0..6
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), 6u);
}

TEST(ForEachWindowTest, RespectsStride) {
  storage::SequenceStore store;
  store.AddSeries(Iota(10));
  std::vector<std::uint32_t> offsets;
  ASSERT_TRUE(ForEachWindow(store, 4, 3,
                            [&](storage::SeriesId, std::uint32_t off,
                                std::span<const double>) { offsets.push_back(off); })
                  .ok());
  EXPECT_EQ(offsets, (std::vector<std::uint32_t>{0, 3, 6}));
}

TEST(ForEachWindowTest, ShortSeriesYieldNothing) {
  storage::SequenceStore store;
  store.AddSeries(Iota(3));
  int count = 0;
  ASSERT_TRUE(ForEachWindow(store, 4, 1,
                            [&](storage::SeriesId, std::uint32_t,
                                std::span<const double>) { ++count; })
                  .ok());
  EXPECT_EQ(count, 0);
}

TEST(ForEachWindowTest, ExactLengthSeriesYieldsOneWindow) {
  storage::SequenceStore store;
  store.AddSeries(Iota(4));
  int count = 0;
  ASSERT_TRUE(ForEachWindow(store, 4, 1,
                            [&](storage::SeriesId, std::uint32_t off,
                                std::span<const double>) {
                              EXPECT_EQ(off, 0u);
                              ++count;
                            })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST(ForEachWindowTest, IteratesAllSeries) {
  storage::SequenceStore store;
  store.AddSeries(Iota(5));
  store.AddSeries(Iota(6));
  std::vector<storage::SeriesId> series_seen;
  ASSERT_TRUE(ForEachWindow(store, 5, 1,
                            [&](storage::SeriesId s, std::uint32_t,
                                std::span<const double>) {
                              series_seen.push_back(s);
                            })
                  .ok());
  EXPECT_EQ(series_seen, (std::vector<storage::SeriesId>{0, 1, 1}));
}

TEST(ForEachWindowTest, RejectsBadParameters) {
  storage::SequenceStore store;
  store.AddSeries(Iota(5));
  auto noop = [](storage::SeriesId, std::uint32_t, std::span<const double>) {};
  EXPECT_FALSE(ForEachWindow(store, 0, 1, noop).ok());
  EXPECT_FALSE(ForEachWindow(store, 4, 0, noop).ok());
}

TEST(CountWindowsTest, MatchesIteration) {
  storage::SequenceStore store;
  store.AddSeries(Iota(100));
  store.AddSeries(Iota(7));
  store.AddSeries(Iota(3));
  for (std::size_t n : {4u, 7u}) {
    for (std::size_t stride : {1u, 2u, 5u}) {
      int count = 0;
      ASSERT_TRUE(ForEachWindow(store, n, stride,
                                [&](storage::SeriesId, std::uint32_t,
                                    std::span<const double>) { ++count; })
                      .ok());
      auto counted = CountWindows(store, n, stride);
      ASSERT_TRUE(counted.ok());
      EXPECT_EQ(*counted, static_cast<std::size_t>(count))
          << "n=" << n << " stride=" << stride;
    }
  }
}

}  // namespace
}  // namespace tsss::seq
