#include "tsss/seq/dataset.h"

#include <gtest/gtest.h>

namespace tsss::seq {
namespace {

TEST(DatasetTest, AddAndLookup) {
  Dataset ds;
  const storage::SeriesId id = ds.Add("apple", std::vector<double>{1.0, 2.0});
  EXPECT_EQ(ds.size(), 1u);
  auto name = ds.Name(id);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "apple");
  auto values = ds.Values(id);
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(values->size(), 2u);
  EXPECT_DOUBLE_EQ((*values)[1], 2.0);
}

TEST(DatasetTest, AddFromTimeSeries) {
  Dataset ds;
  TimeSeries series;
  series.name = "banana";
  series.values = {3.0, 4.0, 5.0};
  const storage::SeriesId id = ds.Add(series);
  auto name = ds.Name(id);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "banana");
  EXPECT_EQ(ds.total_values(), 3u);
}

TEST(DatasetTest, UnknownIdFails) {
  Dataset ds;
  EXPECT_FALSE(ds.Name(0).ok());
  EXPECT_FALSE(ds.Values(9).ok());
}

TEST(DatasetTest, AppendGrowsLastSeries) {
  Dataset ds;
  const storage::SeriesId id = ds.Add("c", std::vector<double>{1.0});
  ASSERT_TRUE(ds.Append(id, std::vector<double>{2.0, 3.0}).ok());
  auto values = ds.Values(id);
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(values->size(), 3u);
}

TEST(DatasetTest, SequentialIdsAssigned) {
  Dataset ds;
  EXPECT_EQ(ds.Add("a", std::vector<double>{}), 0u);
  EXPECT_EQ(ds.Add("b", std::vector<double>{}), 1u);
  EXPECT_EQ(ds.Add("c", std::vector<double>{}), 2u);
}

TEST(SubsequenceTest, ExtractsSlice) {
  TimeSeries series;
  series.values = {0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(Subsequence(series, 1, 3), (geom::Vec{1.0, 2.0, 3.0}));
  EXPECT_EQ(Subsequence(series, 0, 5), series.values);
  EXPECT_EQ(series.length(), 5u);
}


TEST(DatasetTest, FindSeriesByName) {
  Dataset ds;
  ds.Add("alpha", std::vector<double>{1.0});
  ds.Add("beta", std::vector<double>{2.0});
  ds.Add("alpha", std::vector<double>{3.0});  // duplicate name
  auto found = ds.FindSeries("beta");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 1u);
  auto first = ds.FindSeries("alpha");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0u) << "first occurrence wins";
  EXPECT_EQ(ds.FindSeries("gamma").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace tsss::seq
