#include "tsss/seq/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace tsss::seq {
namespace {

TEST(CsvTest, ParsesNamedSeries) {
  auto parsed = ParseCsv("alpha,1,2,3\nbeta,4.5,-6\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].name, "alpha");
  EXPECT_EQ((*parsed)[0].values, (geom::Vec{1.0, 2.0, 3.0}));
  EXPECT_EQ((*parsed)[1].name, "beta");
  EXPECT_EQ((*parsed)[1].values, (geom::Vec{4.5, -6.0}));
}

TEST(CsvTest, UnnamedSeriesGetsGeneratedName) {
  auto parsed = ParseCsv("1.0,2.0,3.0\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].name, "series0");
  EXPECT_EQ((*parsed)[0].values, (geom::Vec{1.0, 2.0, 3.0}));
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  auto parsed = ParseCsv("# a comment\n\n  \nx,1\n# another\ny,2\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);
}

TEST(CsvTest, ToleratesWhitespaceAndTrailingComma) {
  auto parsed = ParseCsv("  stock , 1.5 , 2.5 ,\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].name, "stock");
  EXPECT_EQ((*parsed)[0].values, (geom::Vec{1.5, 2.5}));
}

TEST(CsvTest, RejectsGarbageNumbers) {
  auto parsed = ParseCsv("x,1,banana,3\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, EmptyInputGivesNoSeries) {
  auto parsed = ParseCsv("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(CsvTest, SeriesWithNoValuesAllowed) {
  auto parsed = ParseCsv("lonely\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_TRUE((*parsed)[0].values.empty());
}

TEST(CsvTest, RoundTripThroughText) {
  std::vector<TimeSeries> original;
  original.push_back(TimeSeries{"a", {1.25, -2.5, 1e-3}});
  original.push_back(TimeSeries{"b", {42.0}});
  auto parsed = ParseCsv(ToCsv(original));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ((*parsed)[i].name, original[i].name);
    ASSERT_EQ((*parsed)[i].values.size(), original[i].values.size());
    for (std::size_t j = 0; j < original[i].values.size(); ++j) {
      EXPECT_DOUBLE_EQ((*parsed)[i].values[j], original[i].values[j]);
    }
  }
}

TEST(CsvFileTest, SaveAndLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tsss_csv_test.csv";
  std::vector<TimeSeries> original;
  original.push_back(TimeSeries{"hk1", {10.0, 10.5, 11.0}});
  ASSERT_TRUE(SaveCsvFile(path, original).ok());
  auto loaded = LoadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].name, "hk1");
  EXPECT_EQ((*loaded)[0].values, original[0].values);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIoError) {
  auto loaded = LoadCsvFile("/nonexistent/path/really.csv");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace tsss::seq
