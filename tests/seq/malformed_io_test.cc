// Malformed-input tests for the seq parsers: the binary dataset reader and
// the CSV parser. Every hostile input must produce a clean Status error —
// in particular, size/count fields are validated against the bytes actually
// present before they size any allocation (regression tests for the
// dataset_io hardening) and CsvOptions bounds are enforced.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tsss/seq/csv.h"
#include "tsss/seq/dataset.h"
#include "tsss/seq/dataset_io.h"

namespace tsss::seq {
namespace {

std::string ValidDatasetBytes() {
  Dataset dataset;
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {-0.5};
  dataset.Add("alpha", a);
  dataset.Add("beta", b);
  std::ostringstream out(std::ios::binary);
  EXPECT_TRUE(SaveDatasetToStream(out, dataset).ok());
  return out.str();
}

Status LoadBytes(const std::string& bytes, Dataset* dataset) {
  std::istringstream in(bytes, std::ios::binary);
  return LoadDatasetFromStream(in, dataset);
}

TEST(DatasetMalformedTest, ValidBytesRoundTrip) {
  Dataset loaded;
  ASSERT_TRUE(LoadBytes(ValidDatasetBytes(), &loaded).ok());
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(*loaded.Name(0), "alpha");
  EXPECT_EQ(loaded.Values(1)->size(), 1u);
}

TEST(DatasetMalformedTest, HugeSeriesCountFailsFast) {
  // num_series (offset 8) claiming 2^60 entries must be rejected against the
  // actual input size, not attempted.
  std::string bytes = ValidDatasetBytes();
  const std::uint64_t huge = 1ull << 60;
  std::memcpy(bytes.data() + 8, &huge, sizeof(huge));
  Dataset loaded;
  EXPECT_EQ(LoadBytes(bytes, &loaded).code(), StatusCode::kCorruption);
}

TEST(DatasetMalformedTest, HugeNameLengthFailsFast) {
  // name_len of the first series (offset 16) set far beyond the input.
  std::string bytes = ValidDatasetBytes();
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bytes.data() + 16, &huge, sizeof(huge));
  Dataset loaded;
  EXPECT_EQ(LoadBytes(bytes, &loaded).code(), StatusCode::kCorruption);
}

TEST(DatasetMalformedTest, ValueCountOverflowFailsFast) {
  // count near 2^61 would wrap count * sizeof(double) to a small number; the
  // reader must compare against remaining bytes with division, not multiply.
  std::string bytes = ValidDatasetBytes();
  // First series value count sits after magic+num_series+name_len+"alpha".
  const std::size_t count_off = 8 + 8 + 4 + 5;
  const std::uint64_t wrap = (1ull << 61) + 1;
  std::memcpy(bytes.data() + count_off, &wrap, sizeof(wrap));
  Dataset loaded;
  EXPECT_EQ(LoadBytes(bytes, &loaded).code(), StatusCode::kCorruption);
}

TEST(DatasetMalformedTest, FlippedChecksumByteIsCorruption) {
  std::string bytes = ValidDatasetBytes();
  bytes.back() = static_cast<char>(bytes.back() ^ 0x40);
  Dataset loaded;
  EXPECT_EQ(LoadBytes(bytes, &loaded).code(), StatusCode::kCorruption);
}

TEST(DatasetMalformedTest, TruncatedValuesAreCorruption) {
  std::string bytes = ValidDatasetBytes();
  bytes.resize(bytes.size() - 12);  // cut into the last series' payload
  Dataset loaded;
  EXPECT_EQ(LoadBytes(bytes, &loaded).code(), StatusCode::kCorruption);
}

TEST(DatasetMalformedTest, TrailingJunkIsCorruption) {
  // Extra bytes between the last series and where the checksum is expected
  // mean the reader's CRC no longer lines up; acceptance is canonical.
  std::string bytes = ValidDatasetBytes();
  bytes.insert(bytes.size() - 4, "junk");
  Dataset loaded;
  EXPECT_EQ(LoadBytes(bytes, &loaded).code(), StatusCode::kCorruption);
}

TEST(DatasetMalformedTest, EmptyInputIsCorruption) {
  Dataset loaded;
  EXPECT_EQ(LoadBytes("", &loaded).code(), StatusCode::kCorruption);
}

TEST(CsvMalformedTest, WrongArityRejectedWhenRequested) {
  CsvOptions options;
  options.expected_arity = 3;
  auto ok = ParseCsv("a,1,2,3\nb,4,5,6\n", options);
  ASSERT_TRUE(ok.ok());
  auto short_row = ParseCsv("a,1,2,3\nb,4,5\n", options);
  EXPECT_EQ(short_row.status().code(), StatusCode::kInvalidArgument);
  auto long_row = ParseCsv("a,1,2,3,4\n", options);
  EXPECT_EQ(long_row.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvMalformedTest, NonNumericFieldRejected) {
  auto result = ParseCsv("a,1,banana\n");
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvMalformedTest, NonFiniteValuesRejectedByDefault) {
  // from_chars happily parses "inf" and "nan"; downstream MBR construction
  // cannot tolerate them, so the parser is where they must stop.
  EXPECT_EQ(ParseCsv("a,1,inf\n").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseCsv("a,nan\n").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseCsv("inf\n").status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvMalformedTest, NonFiniteValuesAcceptedWhenOptedIn) {
  CsvOptions options;
  options.allow_nonfinite = true;
  auto result = ParseCsv("a,1,inf\n", options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(std::isinf((*result)[0].values[1]));
}

TEST(CsvMalformedTest, ValueCapBoundsMemory) {
  CsvOptions options;
  options.max_total_values = 4;
  EXPECT_TRUE(ParseCsv("a,1,2\nb,3,4\n", options).ok());
  EXPECT_EQ(ParseCsv("a,1,2\nb,3,4,5\n", options).status().code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace tsss::seq
