#include "tsss/seq/stock_generator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tsss/common/math_utils.h"

namespace tsss::seq {
namespace {

StockMarketConfig SmallMarket() {
  StockMarketConfig config;
  config.num_companies = 50;
  config.values_per_company = 200;
  config.seed = 7;
  return config;
}

TEST(StockGeneratorTest, ShapeMatchesConfig) {
  const auto market = GenerateStockMarket(SmallMarket());
  ASSERT_EQ(market.size(), 50u);
  for (const TimeSeries& s : market) {
    EXPECT_EQ(s.values.size(), 200u);
    EXPECT_FALSE(s.name.empty());
  }
  EXPECT_EQ(market[0].name, "HK0");
  EXPECT_EQ(market[49].name, "HK49");
}

TEST(StockGeneratorTest, DeterministicForSameSeed) {
  const auto a = GenerateStockMarket(SmallMarket());
  const auto b = GenerateStockMarket(SmallMarket());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].values, b[i].values);
  }
}

TEST(StockGeneratorTest, DifferentSeedsDiffer) {
  StockMarketConfig other = SmallMarket();
  other.seed = 8;
  const auto a = GenerateStockMarket(SmallMarket());
  const auto b = GenerateStockMarket(other);
  EXPECT_NE(a[0].values, b[0].values);
}

TEST(StockGeneratorTest, PricesStayPositive) {
  const auto market = GenerateStockMarket(SmallMarket());
  for (const TimeSeries& s : market) {
    for (double v : s.values) EXPECT_GT(v, 0.0);
  }
}

TEST(StockGeneratorTest, StartPricesSpanConfiguredRange) {
  // With log-uniform sampling over [0.5, 150] and 50 companies, the spread
  // between cheapest and dearest first prices should be large.
  const auto market = GenerateStockMarket(SmallMarket());
  double lo = 1e18;
  double hi = 0.0;
  for (const TimeSeries& s : market) {
    lo = std::min(lo, s.values[0]);
    hi = std::max(hi, s.values[0]);
  }
  EXPECT_LT(lo, 5.0);
  EXPECT_GT(hi, 30.0);
}

TEST(StockGeneratorTest, PaperScaleProducesExpectedVolume) {
  StockMarketConfig config;
  config.num_companies = 100;  // scaled-down proportions
  config.values_per_company = 650;
  const auto market = GenerateStockMarket(config);
  std::size_t total = 0;
  for (const TimeSeries& s : market) total += s.values.size();
  EXPECT_EQ(total, 65000u);
}

TEST(GbmPathTest, BasicProperties) {
  const TimeSeries path = GenerateGbmPath("test", 500, 100.0, 0.0, 0.01, 3);
  EXPECT_EQ(path.name, "test");
  EXPECT_EQ(path.values.size(), 500u);
  for (double v : path.values) EXPECT_GT(v, 0.0);
  // Zero-drift small-vol path stays within an order of magnitude.
  for (double v : path.values) {
    EXPECT_GT(v, 10.0);
    EXPECT_LT(v, 1000.0);
  }
}

TEST(GbmPathTest, DriftMovesPrices) {
  const TimeSeries up = GenerateGbmPath("up", 1000, 100.0, 0.01, 0.001, 5);
  EXPECT_GT(up.values.back(), 1000.0);  // e^{10} x 100 >> 1000
  const TimeSeries down = GenerateGbmPath("down", 1000, 100.0, -0.01, 0.001, 5);
  EXPECT_LT(down.values.back(), 10.0);
}

}  // namespace
}  // namespace tsss::seq
