#include "tsss/seq/patterns.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "tsss/geom/scale_shift.h"

namespace tsss::seq {
namespace {

TEST(PatternsTest, RampEndpointsAndMonotonicity) {
  const geom::Vec v = RampPattern(32);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(PatternsTest, VShapeSymmetricWithZeroMiddle) {
  const geom::Vec v = VPattern(33);  // odd length: exact middle sample
  EXPECT_DOUBLE_EQ(v.front(), 1.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[16], 0.0);
  for (std::size_t i = 0; i < 33; ++i) EXPECT_NEAR(v[i], v[32 - i], 1e-12);
}

TEST(PatternsTest, PeakIsNegatedV) {
  const geom::Vec peak = PeakPattern(21);
  const geom::Vec vee = VPattern(21);
  // Peak = 1 - V: so peak ~ V under scale-shift with a = -1, b = 1.
  const geom::Alignment align = geom::AlignScaleShift(vee, peak);
  EXPECT_NEAR(align.transform.scale, -1.0, 1e-9);
  EXPECT_NEAR(align.transform.offset, 1.0, 1e-9);
  EXPECT_NEAR(align.distance, 0.0, 1e-9);
}

TEST(PatternsTest, SineIsPeriodic) {
  const geom::Vec v = SinePattern(101, 2.0);
  EXPECT_NEAR(v.front(), 0.0, 1e-12);
  EXPECT_NEAR(v.back(), 0.0, 1e-9);
  // Max close to +1, min close to -1.
  EXPECT_NEAR(*std::max_element(v.begin(), v.end()), 1.0, 0.01);
  EXPECT_NEAR(*std::min_element(v.begin(), v.end()), -1.0, 0.01);
}

TEST(PatternsTest, StepJumpsAtFraction) {
  const geom::Vec v = StepPattern(100, 0.25);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[20], 0.0);
  EXPECT_DOUBLE_EQ(v[30], 1.0);
  EXPECT_DOUBLE_EQ(v[99], 1.0);
}

TEST(PatternsTest, HeadAndShouldersHasThreePeaksHeadTallest) {
  const geom::Vec v = HeadAndShouldersPattern(120);
  // Local maxima near t = 1/6, 1/2, 5/6.
  const double left = v[20];
  const double head = v[60];
  const double right = v[99];
  EXPECT_GT(head, left);
  EXPECT_GT(head, right);
  EXPECT_GT(left, v[40]);   // valley between left shoulder and head
  EXPECT_GT(right, v[80]);  // valley between head and right shoulder
}

TEST(PatternsTest, SaturationMonotoneAndBounded) {
  const geom::Vec v = SaturationPattern(64, 4.0);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_LT(v.back(), 1.0);
  EXPECT_GT(v.back(), 0.9);
}

TEST(PatternsTest, CupHasFlatBottom) {
  const geom::Vec v = CupPattern(100);
  EXPECT_NEAR(v.front(), 1.0, 1e-9);
  EXPECT_NEAR(v.back(), 1.0, 1e-9);
  for (std::size_t i = 35; i < 65; ++i) EXPECT_DOUBLE_EQ(v[i], 0.0);
}

TEST(PatternsTest, AllPatternsHaveRequestedLength) {
  for (const std::size_t n : {2u, 7u, 64u}) {
    EXPECT_EQ(RampPattern(n).size(), n);
    EXPECT_EQ(VPattern(n).size(), n);
    EXPECT_EQ(PeakPattern(n).size(), n);
    EXPECT_EQ(SinePattern(n).size(), n);
    EXPECT_EQ(StepPattern(n).size(), n);
    EXPECT_EQ(HeadAndShouldersPattern(n).size(), n);
    EXPECT_EQ(SaturationPattern(n).size(), n);
    EXPECT_EQ(CupPattern(n).size(), n);
  }
}

TEST(PatternsTest, PatternsAreScaleShiftDistinct) {
  // The shapes are genuinely different under scale-shift similarity (no two
  // are affine images of each other) - otherwise they'd be redundant as
  // query patterns.
  const std::vector<geom::Vec> shapes = {
      RampPattern(64),       VPattern(64),          SinePattern(64),
      StepPattern(64),       HeadAndShouldersPattern(64),
      SaturationPattern(64), CupPattern(64),
  };
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    for (std::size_t j = i + 1; j < shapes.size(); ++j) {
      EXPECT_GT(geom::ScaleShiftDistance(shapes[i], shapes[j]), 0.1)
          << "patterns " << i << " and " << j << " are affine twins";
    }
  }
}

}  // namespace
}  // namespace tsss::seq
