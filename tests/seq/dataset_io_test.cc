#include "tsss/seq/dataset_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace tsss::seq {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/tsss_dataset_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".bin";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(DatasetIoTest, RoundTrip) {
  Dataset original;
  original.Add("alpha", std::vector<double>{1.5, -2.5, 1e-9});
  original.Add("beta", std::vector<double>{});
  original.Add("", std::vector<double>{42.0});
  ASSERT_TRUE(SaveDataset(path_, original).ok());

  Dataset loaded;
  ASSERT_TRUE(LoadDataset(path_, &loaded).ok());
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(*loaded.Name(0), "alpha");
  EXPECT_EQ(*loaded.Name(1), "beta");
  EXPECT_EQ(*loaded.Name(2), "");
  auto values = loaded.Values(0);
  ASSERT_TRUE(values.ok());
  ASSERT_EQ(values->size(), 3u);
  EXPECT_DOUBLE_EQ((*values)[0], 1.5);
  EXPECT_DOUBLE_EQ((*values)[2], 1e-9);
  EXPECT_EQ(loaded.Values(1)->size(), 0u);
}

TEST_F(DatasetIoTest, EmptyDatasetRoundTrip) {
  Dataset original;
  ASSERT_TRUE(SaveDataset(path_, original).ok());
  Dataset loaded;
  ASSERT_TRUE(LoadDataset(path_, &loaded).ok());
  EXPECT_EQ(loaded.size(), 0u);
}

TEST_F(DatasetIoTest, LoadRequiresEmptyTarget) {
  Dataset original;
  original.Add("x", std::vector<double>{1.0});
  ASSERT_TRUE(SaveDataset(path_, original).ok());
  Dataset not_empty;
  not_empty.Add("y", std::vector<double>{2.0});
  EXPECT_EQ(LoadDataset(path_, &not_empty).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DatasetIoTest, DetectsCorruption) {
  Dataset original;
  original.Add("x", std::vector<double>(100, 3.14));
  ASSERT_TRUE(SaveDataset(path_, original).ok());
  {
    std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(64);
    const char evil = 0x5A;
    file.write(&evil, 1);
  }
  Dataset loaded;
  EXPECT_EQ(LoadDataset(path_, &loaded).code(), StatusCode::kCorruption);
}

TEST_F(DatasetIoTest, MissingFileIsIoError) {
  Dataset loaded;
  EXPECT_EQ(LoadDataset(path_ + ".does-not-exist", &loaded).code(),
            StatusCode::kIoError);
}

TEST_F(DatasetIoTest, TruncatedFileIsCorruption) {
  Dataset original;
  original.Add("x", std::vector<double>(100, 1.0));
  ASSERT_TRUE(SaveDataset(path_, original).ok());
  std::filesystem::resize_file(path_, 40);
  Dataset loaded;
  EXPECT_EQ(LoadDataset(path_, &loaded).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace tsss::seq
