#include "tsss/common/crc32.h"

#include <string>

#include <gtest/gtest.h>

namespace tsss {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32 (IEEE) test vectors.
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(check.data(), check.size()), 0xCBF43926u);
  const std::string hello = "hello world";
  EXPECT_EQ(Crc32(hello.data(), hello.size()), 0x0D4A1185u);
}

TEST(Crc32Test, SensitiveToSingleBitFlips) {
  std::string data(1024, 'a');
  const std::uint32_t base = Crc32(data.data(), data.size());
  data[512] = 'b';
  EXPECT_NE(Crc32(data.data(), data.size()), base);
  data[512] = 'a';
  EXPECT_EQ(Crc32(data.data(), data.size()), base);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t one_shot = Crc32(data.data(), data.size());
  std::uint32_t incremental = 0;
  for (std::size_t i = 0; i < data.size(); i += 7) {
    const std::size_t chunk = std::min<std::size_t>(7, data.size() - i);
    incremental = Crc32Continue(incremental, data.data() + i, chunk);
  }
  EXPECT_EQ(incremental, one_shot);
}

}  // namespace
}  // namespace tsss
