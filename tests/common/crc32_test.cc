#include "tsss/common/crc32.h"

#include <string>

#include <gtest/gtest.h>

namespace tsss {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32 (IEEE) test vectors.
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(check.data(), check.size()), 0xCBF43926u);
  const std::string hello = "hello world";
  EXPECT_EQ(Crc32(hello.data(), hello.size()), 0x0D4A1185u);
}

TEST(Crc32Test, SensitiveToSingleBitFlips) {
  std::string data(1024, 'a');
  const std::uint32_t base = Crc32(data.data(), data.size());
  data[512] = 'b';
  EXPECT_NE(Crc32(data.data(), data.size()), base);
  data[512] = 'a';
  EXPECT_EQ(Crc32(data.data(), data.size()), base);
}

TEST(Crc32Test, MoreKnownVectors) {
  // RFC 3720-style reference vectors for CRC-32/IEEE.
  const std::string a = "a";
  EXPECT_EQ(Crc32(a.data(), a.size()), 0xE8B7BE43u);
  const std::string abc = "abc";
  EXPECT_EQ(Crc32(abc.data(), abc.size()), 0x352441C2u);
  const std::string alphabet = "abcdefghijklmnopqrstuvwxyz";
  EXPECT_EQ(Crc32(alphabet.data(), alphabet.size()), 0x4C2750BDu);
  const std::string digest = "message digest";
  EXPECT_EQ(Crc32(digest.data(), digest.size()), 0x20159D7Fu);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t one_shot = Crc32(data.data(), data.size());
  std::uint32_t incremental = 0;
  for (std::size_t i = 0; i < data.size(); i += 7) {
    const std::size_t chunk = std::min<std::size_t>(7, data.size() - i);
    incremental = Crc32Continue(incremental, data.data() + i, chunk);
  }
  EXPECT_EQ(incremental, one_shot);
}

TEST(Crc32Test, IncrementalMatchesOneShotAtEverySplitPoint) {
  const std::string data = "page-checksum torture input 0123456789";
  const std::uint32_t one_shot = Crc32(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t crc = Crc32Continue(0, data.data(), split);
    crc = Crc32Continue(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, one_shot) << "split at " << split;
  }
}

TEST(Crc32Test, EmptyChunkIsIdentity) {
  const std::string data = "xyz";
  const std::uint32_t crc = Crc32(data.data(), data.size());
  EXPECT_EQ(Crc32Continue(crc, data.data(), 0), crc);
}

TEST(Crc32Test, PageSizedBufferOfZerosIsStable) {
  // A freshly allocated 4 KiB page is all zeros; its checksum must be
  // deterministic and nonzero (so "forgot to checksum" reads as corruption).
  const std::string zeros(4096, '\0');
  const std::uint32_t crc = Crc32(zeros.data(), zeros.size());
  EXPECT_EQ(crc, Crc32(zeros.data(), zeros.size()));
  EXPECT_NE(crc, 0u);
}

}  // namespace
}  // namespace tsss
