#include "tsss/common/math_utils.h"

#include <vector>

#include <gtest/gtest.h>

namespace tsss {
namespace {

TEST(MathUtilsTest, AlmostEqualAbsolute) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0));
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(AlmostEqual(1.0, 1.1));
}

TEST(MathUtilsTest, AlmostEqualRelative) {
  EXPECT_TRUE(AlmostEqual(1e12, 1e12 + 1.0, 1e-9, 1e-9));
  EXPECT_FALSE(AlmostEqual(1e12, 1.001e12, 1e-9, 1e-9));
}

TEST(MathUtilsTest, MeanBasic) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
}

TEST(MathUtilsTest, VarianceAndStdDev) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Variance(v), 4.0);  // classic example
  EXPECT_DOUBLE_EQ(StdDev(v), 2.0);
  EXPECT_DOUBLE_EQ(Variance(std::vector<double>{42.0}), 0.0);
}

TEST(MathUtilsTest, KahanSumResistsCancellation) {
  // Summing 1 + many tiny values naively loses precision.
  std::vector<double> v;
  v.push_back(1.0);
  for (int i = 0; i < 1000000; ++i) v.push_back(1e-16);
  EXPECT_NEAR(KahanSum(v), 1.0 + 1e-10, 1e-13);
}

TEST(MathUtilsTest, PercentileOfSorted) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(std::vector<double>{}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(std::vector<double>{5.0}, 99.0), 5.0);
}

TEST(MathUtilsTest, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(1000));
}

TEST(MathUtilsTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
}

TEST(MathUtilsTest, Clamp) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(Clamp(-1.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(11.0, 0.0, 10.0), 10.0);
}

}  // namespace
}  // namespace tsss
