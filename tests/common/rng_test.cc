#include "tsss/common/rng.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace tsss {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
  EXPECT_DOUBLE_EQ(rng.Uniform(2.0, 2.0), 2.0);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t x = rng.UniformInt(0, 9);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 9);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntNegativeRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t x = rng.UniformInt(-5, -1);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, -1);
  }
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(12);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianScalesMeanAndStddev) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace tsss
