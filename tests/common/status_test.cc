#include "tsss/common/status.h"

#include <memory>
#include <sstream>
#include <utility>

#include <gtest/gtest.h>

namespace tsss {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("page 7").ToString(), "NotFound: page 7");
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::Corruption("bad magic");
  EXPECT_EQ(os.str(), "Corruption: bad magic");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

TEST(ResultTest, HoldsValue) {
  const Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  const Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, ConstructionFromOkStatusBecomesInternalError) {
  const Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(StatusTest, MessagePropagatesThroughCopyAndMove) {
  Status original = Status::Corruption("page 7 checksum mismatch");
  const Status copied = original;
  EXPECT_EQ(copied.message(), "page 7 checksum mismatch");
  EXPECT_EQ(copied.code(), StatusCode::kCorruption);

  const Status moved = std::move(original);
  EXPECT_EQ(moved.message(), "page 7 checksum mismatch");
  EXPECT_EQ(moved.code(), StatusCode::kCorruption);
  EXPECT_EQ(moved, copied);
}

TEST(StatusTest, MoveAssignmentTransfersMessage) {
  Status target = Status::OK();
  Status source = Status::IoError("disk on fire");
  target = std::move(source);
  EXPECT_EQ(target.code(), StatusCode::kIoError);
  EXPECT_EQ(target.message(), "disk on fire");
}

TEST(ResultTest, ErrorMessagePropagatesThroughResultChain) {
  // The library's idiom: a Status born deep in storage travels up through
  // Result layers unchanged.
  const Status deep = Status::Corruption("bad magic in node page 12");
  const Result<int> inner{deep};
  const Result<std::string> outer{inner.status()};
  EXPECT_FALSE(outer.ok());
  EXPECT_EQ(outer.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(outer.status().message(), "bad magic in node page 12");
}

TEST(ResultTest, MoveOnlyValueType) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 5);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  EXPECT_DEATH(
      {
        const Result<int> r(Status::NotFound("boom"));
        (void)r.value();
      },
      "boom");
}

}  // namespace
}  // namespace tsss
