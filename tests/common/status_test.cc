#include "tsss/common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace tsss {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("page 7").ToString(), "NotFound: page 7");
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::Corruption("bad magic");
  EXPECT_EQ(os.str(), "Corruption: bad magic");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

TEST(ResultTest, HoldsValue) {
  const Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  const Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, ConstructionFromOkStatusBecomesInternalError) {
  const Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  EXPECT_DEATH(
      {
        const Result<int> r(Status::NotFound("boom"));
        (void)r.value();
      },
      "boom");
}

}  // namespace
}  // namespace tsss
