// Cross-cutting randomized property tests for the geometry layer: the
// monotonicity and consistency relations the search algorithms depend on but
// no single-function unit test states explicitly.

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/geom/line.h"
#include "tsss/geom/mbr.h"
#include "tsss/geom/penetration.h"
#include "tsss/geom/scale_shift.h"
#include "tsss/geom/se_transform.h"

namespace tsss::geom {
namespace {

Mbr RandomBox(Rng& rng, std::size_t dim, double span = 3.0) {
  Vec lo(dim), hi(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    lo[i] = rng.Uniform(-5, 5);
    hi[i] = lo[i] + rng.Uniform(0.01, span);
  }
  return Mbr::FromCorners(std::move(lo), std::move(hi));
}

Line RandomLine(Rng& rng, std::size_t dim) {
  Vec p(dim), d(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    p[i] = rng.Uniform(-8, 8);
    d[i] = rng.Uniform(-1, 1);
  }
  return Line{std::move(p), std::move(d)};
}

TEST(GeomPropertyTest, ShouldVisitMonotoneInEps) {
  // If a node is admitted at eps, it must be admitted at any larger eps -
  // otherwise growing the error bound could *lose* answers.
  Rng rng(901);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t dim = 2 + static_cast<std::size_t>(rng.UniformInt(0, 4));
    const Mbr box = RandomBox(rng, dim);
    const Line line = RandomLine(rng, dim);
    const double eps_small = rng.Uniform(0, 1);
    const double eps_large = eps_small + rng.Uniform(0, 2);
    for (const PruneStrategy strategy :
         {PruneStrategy::kEepOnly, PruneStrategy::kBoundingSpheres,
          PruneStrategy::kExactDistance}) {
      if (ShouldVisit(line, box, eps_small, strategy, nullptr)) {
        EXPECT_TRUE(ShouldVisit(line, box, eps_large, strategy, nullptr))
            << PruneStrategyToString(strategy);
      }
    }
  }
}

TEST(GeomPropertyTest, ShouldVisitMonotoneInBoxContainment) {
  // A node admitted for a box must be admitted for any containing box:
  // ancestors in the tree can never be pruned while a descendant matches.
  Rng rng(902);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t dim = 2 + static_cast<std::size_t>(rng.UniformInt(0, 4));
    const Mbr inner = RandomBox(rng, dim);
    Mbr outer = inner;
    outer.Extend(RandomBox(rng, dim));
    const Line line = RandomLine(rng, dim);
    const double eps = rng.Uniform(0, 1);
    // (EEP and exact only: the sphere path equals EEP in verdict, tested
    // elsewhere.)
    for (const PruneStrategy strategy :
         {PruneStrategy::kEepOnly, PruneStrategy::kExactDistance}) {
      if (ShouldVisit(line, inner, eps, strategy, nullptr)) {
        EXPECT_TRUE(ShouldVisit(line, outer, eps, strategy, nullptr))
            << PruneStrategyToString(strategy);
      }
    }
  }
}

TEST(GeomPropertyTest, PointInBoxImpliesEnlargedBoxPenetrated) {
  // The core of Theorem 3: if some point p of the box is within eps of the
  // line, the eps-MBR must be penetrated. Sampled over random geometry.
  Rng rng(903);
  int exercised = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t dim = 2 + static_cast<std::size_t>(rng.UniformInt(0, 3));
    const Mbr box = RandomBox(rng, dim);
    const Line line = RandomLine(rng, dim);
    // Random point inside the box.
    Vec p(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      p[i] = rng.Uniform(box.lo()[i], box.hi()[i]);
    }
    const double d = Pld(p, line);
    const double eps = d * rng.Uniform(1.0, 1.5) + 1e-12;  // p qualifies
    EXPECT_TRUE(LinePenetratesMbr(line, box.Enlarged(eps)));
    EXPECT_LE(LineMbrDistance(line, box), eps + 1e-9);
    ++exercised;
  }
  EXPECT_GT(exercised, 0);
}

TEST(GeomPropertyTest, MbrExtendIsMonotoneForDistances) {
  // Growing a box can only reduce its distance to any point.
  Rng rng(904);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t dim = 2 + static_cast<std::size_t>(rng.UniformInt(0, 4));
    Mbr box = RandomBox(rng, dim);
    Vec q(dim);
    for (auto& x : q) x = rng.Uniform(-20, 20);
    const double before = box.DistanceSquaredTo(q);
    box.Extend(RandomBox(rng, dim));
    EXPECT_LE(box.DistanceSquaredTo(q), before + 1e-12);
  }
}

TEST(GeomPropertyTest, ScaleShiftDistanceInvariantUnderQueryTransforms) {
  // Applying any scale-shift to the *data* window cannot change whether the
  // query matches it with distance 0; and transforming the query by an
  // invertible scale-shift preserves the zero-distance relation.
  Rng rng(905);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.UniformInt(0, 28));
    Vec u(n);
    for (auto& x : u) x = rng.Uniform(-10, 10);
    if (IsZero(SeTransform(u), 1e-9)) continue;
    const double a = rng.Uniform(0.2, 3.0) * (rng.Bernoulli(0.5) ? 1 : -1);
    const double b = rng.Uniform(-50, 50);
    const Vec v = ScaleShift{a, b}.Apply(u);
    // u matches v exactly, and v matches u exactly (a is invertible).
    EXPECT_NEAR(ScaleShiftDistance(u, v), 0.0, 1e-7);
    EXPECT_NEAR(ScaleShiftDistance(v, u), 0.0, 1e-7);
  }
}

TEST(GeomPropertyTest, TriangleLikeBoundOnAlignedResiduals) {
  // The aligned residual never exceeds the plain Euclidean distance
  // (taking a = 1, b = 0 is always available to the minimiser).
  Rng rng(906);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.UniformInt(0, 13));
    Vec u(n), v(n);
    for (std::size_t i = 0; i < n; ++i) {
      u[i] = rng.Uniform(-10, 10);
      v[i] = rng.Uniform(-10, 10);
    }
    EXPECT_LE(ScaleShiftDistance(u, v), Distance(u, v) + 1e-9);
    // And it also never exceeds the residual after mean-alignment only.
    EXPECT_LE(ScaleShiftDistance(u, v),
              Distance(SeTransform(u), SeTransform(v)) + 1e-9);
  }
}

}  // namespace
}  // namespace tsss::geom
