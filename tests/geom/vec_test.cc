#include "tsss/geom/vec.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"

namespace tsss::geom {
namespace {

TEST(VecTest, DotBasic) {
  const Vec u = {1.0, 2.0, 3.0};
  const Vec v = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(u, v), 4.0 - 10.0 + 18.0);
}

TEST(VecTest, DotEmptyIsZero) {
  const Vec u;
  EXPECT_DOUBLE_EQ(Dot(u, u), 0.0);
}

TEST(VecTest, NormOfUnitVectors) {
  EXPECT_DOUBLE_EQ(Norm(Vec{1.0, 0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(Norm(Vec{3.0, 4.0}), 5.0);
}

TEST(VecTest, NormSquaredMatchesNorm) {
  const Vec u = {1.5, -2.5, 0.25};
  EXPECT_NEAR(NormSquared(u), Norm(u) * Norm(u), 1e-12);
}

TEST(VecTest, DistanceSymmetric) {
  const Vec u = {1.0, 2.0};
  const Vec v = {4.0, 6.0};
  EXPECT_DOUBLE_EQ(Distance(u, v), 5.0);
  EXPECT_DOUBLE_EQ(Distance(v, u), 5.0);
}

TEST(VecTest, AddSubScale) {
  const Vec u = {1.0, 2.0, 3.0};
  const Vec v = {10.0, 20.0, 30.0};
  EXPECT_EQ(Add(u, v), (Vec{11.0, 22.0, 33.0}));
  EXPECT_EQ(Sub(v, u), (Vec{9.0, 18.0, 27.0}));
  EXPECT_EQ(Scale(u, -2.0), (Vec{-2.0, -4.0, -6.0}));
  EXPECT_EQ(Axpy(2.0, u, v), (Vec{12.0, 24.0, 36.0}));
}

TEST(VecTest, ShiftingVectorIsAllOnes) {
  const Vec n = ShiftingVector(4);
  EXPECT_EQ(n, (Vec{1.0, 1.0, 1.0, 1.0}));
  EXPECT_DOUBLE_EQ(NormSquared(n), 4.0);
}

TEST(VecTest, ComponentSumEqualsDotWithShiftingVector) {
  const Vec u = {1.0, -2.0, 3.5, 0.5};
  EXPECT_DOUBLE_EQ(ComponentSum(u), Dot(u, ShiftingVector(u.size())));
}

TEST(VecTest, IsZeroTolerance) {
  EXPECT_TRUE(IsZero(Vec{0.0, 0.0}));
  EXPECT_TRUE(IsZero(Vec{1e-13, -1e-13}));
  EXPECT_FALSE(IsZero(Vec{1e-6, 0.0}));
}

TEST(VecTest, AreParallelDetectsScalings) {
  const Vec u = {1.0, 2.0, 3.0};
  EXPECT_TRUE(AreParallel(u, Scale(u, 4.0)));
  EXPECT_TRUE(AreParallel(u, Scale(u, -0.5)));
  EXPECT_FALSE(AreParallel(u, Vec{1.0, 2.0, 4.0}));
}

TEST(VecTest, ZeroVectorParallelToEverything) {
  EXPECT_TRUE(AreParallel(Vec{0.0, 0.0}, Vec{1.0, 2.0}));
}

TEST(VecTest, ProjectionDecomposition) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    Vec u(8);
    Vec v(8);
    for (std::size_t i = 0; i < 8; ++i) {
      u[i] = rng.Uniform(-10, 10);
      v[i] = rng.Uniform(-10, 10);
    }
    if (Norm(v) < 1e-9) continue;
    const Vec along = ProjectAlong(u, v);
    const Vec perp = ProjectPerp(u, v);
    // along + perp == u
    const Vec sum = Add(along, perp);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(sum[i], u[i], 1e-9);
    // perp is orthogonal to v
    EXPECT_NEAR(Dot(perp, v), 0.0, 1e-8);
    // along is parallel to v
    EXPECT_TRUE(AreParallel(along, v, 1e-6));
  }
}

TEST(VecTest, LpDistanceSpecialCases) {
  const Vec u = {0.0, 0.0};
  const Vec v = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(LpDistance(u, v, 2.0), 5.0);        // Euclidean
  EXPECT_DOUBLE_EQ(LpDistance(u, v, 1.0), 7.0);        // Manhattan
  EXPECT_NEAR(LpDistance(u, v, 100.0), 4.0, 0.1);      // ~ Chebyshev
}

TEST(VecTest, LpMatchesEuclideanForP2) {
  Rng rng(7);
  Vec u(16);
  Vec v(16);
  for (std::size_t i = 0; i < 16; ++i) {
    u[i] = rng.Uniform(-5, 5);
    v[i] = rng.Uniform(-5, 5);
  }
  EXPECT_NEAR(LpDistance(u, v, 2.0), Distance(u, v), 1e-9);
}

}  // namespace
}  // namespace tsss::geom
