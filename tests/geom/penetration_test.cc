#include "tsss/geom/penetration.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/geom/sphere.h"

namespace tsss::geom {
namespace {

Mbr UnitBox2d() { return Mbr::FromCorners({0.0, 0.0}, {1.0, 1.0}); }

TEST(SlabTest, LineThroughBox) {
  const Line line{{-1.0, 0.5}, {1.0, 0.0}};
  const SlabResult r = LineMbrSlab(line, UnitBox2d());
  ASSERT_TRUE(r.penetrates);
  EXPECT_NEAR(r.t_enter, 1.0, 1e-12);
  EXPECT_NEAR(r.t_exit, 2.0, 1e-12);
}

TEST(SlabTest, LineMissesBox) {
  const Line above{{-1.0, 2.0}, {1.0, 0.0}};
  EXPECT_FALSE(LinePenetratesMbr(above, UnitBox2d()));
}

TEST(SlabTest, DiagonalLineHitsCorner) {
  const Line corner{{-1.0, -1.0}, {1.0, 1.0}};
  EXPECT_TRUE(LinePenetratesMbr(corner, UnitBox2d()));
}

TEST(SlabTest, AxisParallelLineInsideSlab) {
  const Line inside{{0.5, -10.0}, {0.0, 1.0}};  // vertical through box
  EXPECT_TRUE(LinePenetratesMbr(inside, UnitBox2d()));
  const Line outside{{2.0, -10.0}, {0.0, 1.0}};  // vertical beside box
  EXPECT_FALSE(LinePenetratesMbr(outside, UnitBox2d()));
}

TEST(SlabTest, DegenerateLineIsPointTest) {
  const Line in{{0.5, 0.5}, {0.0, 0.0}};
  const Line out{{1.5, 0.5}, {0.0, 0.0}};
  EXPECT_TRUE(LinePenetratesMbr(in, UnitBox2d()));
  EXPECT_FALSE(LinePenetratesMbr(out, UnitBox2d()));
}

TEST(SlabTest, EmptyMbrNeverPenetrated) {
  const Line line{{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_FALSE(LinePenetratesMbr(line, Mbr(2)));
}

TEST(SlabTest, NegativeDirectionComponents) {
  const Line line{{2.0, 2.0}, {-1.0, -1.0}};
  EXPECT_TRUE(LinePenetratesMbr(line, UnitBox2d()));
}

TEST(SlabTest, AgreesWithDenseSamplingRandomised) {
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t dim = 2 + static_cast<std::size_t>(rng.UniformInt(0, 4));
    Vec lo(dim), hi(dim), p(dim), d(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      lo[i] = rng.Uniform(-3, 3);
      hi[i] = lo[i] + rng.Uniform(0.1, 3.0);
      p[i] = rng.Uniform(-6, 6);
      d[i] = rng.Uniform(-1, 1);
    }
    const Mbr box = Mbr::FromCorners(lo, hi);
    const Line line{p, d};
    const bool slab = LinePenetratesMbr(line, box);
    // Dense parameter sampling can only *confirm* penetration; when it finds
    // an inside point the slab method must agree.
    bool sampled_inside = false;
    for (int s = -4000; s <= 4000; ++s) {
      if (box.Contains(line.At(static_cast<double>(s) * 0.01))) {
        sampled_inside = true;
        break;
      }
    }
    if (sampled_inside) {
      EXPECT_TRUE(slab);
    }
    // And the slab's reported interval midpoint must lie in the box.
    if (slab) {
      const SlabResult r = LineMbrSlab(line, box);
      const double t_mid = 0.5 * (r.t_enter + r.t_exit);
      if (std::isfinite(t_mid)) {
        const Vec point = line.At(t_mid);
        Mbr loose = box.Enlarged(1e-9);
        EXPECT_TRUE(loose.Contains(point));
      }
    }
  }
}

TEST(LineMbrDistanceTest, ZeroWhenPenetrating) {
  const Line line{{-1.0, 0.5}, {1.0, 0.0}};
  EXPECT_DOUBLE_EQ(LineMbrDistance(line, UnitBox2d()), 0.0);
}

TEST(LineMbrDistanceTest, ParallelLineAboveBox) {
  const Line line{{-1.0, 3.0}, {1.0, 0.0}};
  EXPECT_NEAR(LineMbrDistance(line, UnitBox2d()), 2.0, 1e-9);
}

TEST(LineMbrDistanceTest, DiagonalNearCorner) {
  // Line x + y = 3 passes at distance sqrt(2)/2 from corner (1,1)... compute:
  // closest point on line to (1,1): distance |1+1-3|/sqrt(2) = 1/sqrt(2).
  const Line line{{3.0, 0.0}, {-1.0, 1.0}};
  EXPECT_NEAR(LineMbrDistance(line, UnitBox2d()), 1.0 / std::sqrt(2.0), 1e-9);
}

TEST(LineMbrDistanceTest, DegenerateLinePointDistance) {
  const Line point_line{{3.0, 1.0}, {0.0, 0.0}};
  EXPECT_NEAR(LineMbrDistance(point_line, UnitBox2d()), 2.0, 1e-12);
}

TEST(LineMbrDistanceTest, MatchesTernarySamplingRandomised) {
  Rng rng(555);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t dim = 2 + static_cast<std::size_t>(rng.UniformInt(0, 4));
    Vec lo(dim), hi(dim), p(dim), d(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      lo[i] = rng.Uniform(-3, 3);
      hi[i] = lo[i] + rng.Uniform(0.1, 3.0);
      p[i] = rng.Uniform(-6, 6);
      d[i] = rng.Uniform(-1, 1);
    }
    if (Norm(d) < 1e-3) continue;
    const Mbr box = Mbr::FromCorners(lo, hi);
    const Line line{p, d};
    const double exact = LineMbrDistance(line, box);
    // Distance at any sampled parameter upper-bounds the exact minimum.
    double best_sampled = std::numeric_limits<double>::infinity();
    for (int s = -6000; s <= 6000; ++s) {
      const Vec at = line.At(static_cast<double>(s) * 0.01);
      best_sampled = std::min(best_sampled, std::sqrt(box.DistanceSquaredTo(at)));
    }
    EXPECT_LE(exact, best_sampled + 1e-9);
    // With a 0.01 step the sampled minimum is close to exact.
    EXPECT_NEAR(exact, best_sampled, 0.05);
  }
}

TEST(ShouldVisitTest, AllStrategiesAgreeOnClearCases) {
  const Mbr box = UnitBox2d();
  const Line hit{{-1.0, 0.5}, {1.0, 0.0}};
  const Line miss{{-1.0, 50.0}, {1.0, 0.0}};
  for (PruneStrategy strategy :
       {PruneStrategy::kEepOnly, PruneStrategy::kBoundingSpheres,
        PruneStrategy::kExactDistance}) {
    EXPECT_TRUE(ShouldVisit(hit, box, 0.0, strategy, nullptr))
        << PruneStrategyToString(strategy);
    EXPECT_FALSE(ShouldVisit(miss, box, 1.0, strategy, nullptr))
        << PruneStrategyToString(strategy);
  }
}

TEST(ShouldVisitTest, ConservativeHierarchy) {
  // kExactDistance admits a subset of kEepOnly, which must equal the
  // bounding-spheres decision (spheres only short-circuit, never change the
  // verdict). Verified on random configurations.
  Rng rng(777);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t dim = 2 + static_cast<std::size_t>(rng.UniformInt(0, 4));
    Vec lo(dim), hi(dim), p(dim), d(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      lo[i] = rng.Uniform(-3, 3);
      hi[i] = lo[i] + rng.Uniform(0.1, 3.0);
      p[i] = rng.Uniform(-6, 6);
      d[i] = rng.Uniform(-1, 1);
    }
    const Mbr box = Mbr::FromCorners(lo, hi);
    const Line line{p, d};
    const double eps = rng.Uniform(0.0, 1.0);
    const bool eep = ShouldVisit(line, box, eps, PruneStrategy::kEepOnly, nullptr);
    const bool spheres =
        ShouldVisit(line, box, eps, PruneStrategy::kBoundingSpheres, nullptr);
    const bool exact =
        ShouldVisit(line, box, eps, PruneStrategy::kExactDistance, nullptr);
    EXPECT_EQ(eep, spheres) << "spheres must not change the verdict";
    if (exact) {
      EXPECT_TRUE(eep) << "exact admits a subset of eep";
    }
  }
}

TEST(ShouldVisitTest, StatsCountersAdvance) {
  PenetrationStats stats;
  const Mbr box = UnitBox2d();
  const Line hit{{-1.0, 0.5}, {1.0, 0.0}};
  ShouldVisit(hit, box, 0.1, PruneStrategy::kBoundingSpheres, &stats);
  EXPECT_EQ(stats.tests, 1u);
  EXPECT_EQ(stats.sphere_tests, 1u);
  EXPECT_EQ(stats.visits, 1u);
  stats.Reset();
  EXPECT_EQ(stats.tests, 0u);
}

TEST(ShouldVisitTest, OuterSphereRejectIsCounted) {
  PenetrationStats stats;
  const Mbr box = UnitBox2d();
  const Line far_away{{-1.0, 100.0}, {1.0, 0.0}};
  EXPECT_FALSE(
      ShouldVisit(far_away, box, 0.1, PruneStrategy::kBoundingSpheres, &stats));
  EXPECT_EQ(stats.outer_rejects, 1u);
  EXPECT_EQ(stats.slab_tests, 0u);  // short-circuited
}

TEST(ShouldVisitTest, InnerSphereAcceptIsCounted) {
  PenetrationStats stats;
  const Mbr box = Mbr::FromCorners({-10.0, -10.0}, {10.0, 10.0});
  const Line through_center{{-100.0, 0.0}, {1.0, 0.0}};
  EXPECT_TRUE(ShouldVisit(through_center, box, 0.1,
                          PruneStrategy::kBoundingSpheres, &stats));
  EXPECT_EQ(stats.inner_accepts, 1u);
  EXPECT_EQ(stats.slab_tests, 0u);
}

}  // namespace
}  // namespace tsss::geom
