#include "tsss/geom/scale_shift.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/geom/line.h"
#include "tsss/geom/se_transform.h"

namespace tsss::geom {
namespace {

// The three sequences from the paper's Figure 1 example.
const Vec kA = {5.0, 10.0, 6.0, 12.0, 4.0};
const Vec kB = {10.0, 20.0, 12.0, 24.0, 8.0};
const Vec kC = {25.0, 30.0, 26.0, 32.0, 24.0};

TEST(ScaleShiftTest, ApplyMatchesDefinition) {
  const ScaleShift f{2.0, 3.0};
  EXPECT_EQ(f.Apply(Vec{1.0, 2.0}), (Vec{5.0, 7.0}));
}

TEST(ScaleShiftTest, PaperFigureOneExampleAtoB) {
  // B is A scaled by 2 (no shift).
  const Alignment align = AlignScaleShift(kA, kB);
  EXPECT_NEAR(align.transform.scale, 2.0, 1e-12);
  EXPECT_NEAR(align.transform.offset, 0.0, 1e-12);
  EXPECT_NEAR(align.distance, 0.0, 1e-12);
}

TEST(ScaleShiftTest, PaperFigureOneExampleAtoC) {
  // C is A shifted up by 20.
  const Alignment align = AlignScaleShift(kA, kC);
  EXPECT_NEAR(align.transform.scale, 1.0, 1e-12);
  EXPECT_NEAR(align.transform.offset, 20.0, 1e-12);
  EXPECT_NEAR(align.distance, 0.0, 1e-12);
}

TEST(ScaleShiftTest, PaperFigureOneExampleBtoC) {
  // "if B is scaled down by 0.5 and then shifted up by 20 units, it becomes C".
  const Alignment align = AlignScaleShift(kB, kC);
  EXPECT_NEAR(align.transform.scale, 0.5, 1e-12);
  EXPECT_NEAR(align.transform.offset, 20.0, 1e-12);
  EXPECT_NEAR(align.distance, 0.0, 1e-12);
}

TEST(ScaleShiftTest, SimilarityAtNearZeroEps) {
  // Exact affine images match at eps ~ 0 (a few ulps of rounding remain
  // because the means are not exactly representable).
  EXPECT_TRUE(SimilarScaleShift(kA, kB, 1e-12));
  EXPECT_TRUE(SimilarScaleShift(kA, kC, 1e-12));
  EXPECT_FALSE(SimilarScaleShift(kA, Vec{5.0, 10.0, 6.0, 12.0, 100.0}, 1.0));
}

TEST(ScaleShiftTest, RecoversRandomTransformsExactly) {
  Rng rng(41);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.UniformInt(0, 29));
    Vec u(n);
    for (auto& x : u) x = rng.Uniform(-50, 50);
    if (IsZero(SeTransform(u), 1e-9)) continue;  // constant-ish query
    const double a = rng.Uniform(-5, 5);
    if (std::fabs(a) < 1e-3) continue;
    const double b = rng.Uniform(-100, 100);
    const Vec v = ScaleShift{a, b}.Apply(u);
    const Alignment align = AlignScaleShift(u, v);
    EXPECT_NEAR(align.transform.scale, a, 1e-6);
    EXPECT_NEAR(align.transform.offset, b, 1e-5);
    EXPECT_NEAR(align.distance, 0.0, 1e-6);
  }
}

TEST(ScaleShiftTest, DistanceEqualsAppliedResidual) {
  // The reported distance must equal ||F_{a,b}(u) - v|| for the reported
  // (a, b), and no sampled transform may beat it.
  Rng rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.UniformInt(0, 13));
    Vec u(n), v(n);
    for (std::size_t i = 0; i < n; ++i) {
      u[i] = rng.Uniform(-10, 10);
      v[i] = rng.Uniform(-10, 10);
    }
    const Alignment align = AlignScaleShift(u, v);
    const Vec transformed = align.transform.Apply(u);
    EXPECT_NEAR(Distance(transformed, v), align.distance, 1e-8);
    for (int s = 0; s < 50; ++s) {
      const ScaleShift probe{rng.Uniform(-6, 6), rng.Uniform(-20, 20)};
      EXPECT_LE(align.distance, Distance(probe.Apply(u), v) + 1e-9);
    }
  }
}

TEST(ScaleShiftTest, TheoremOneDistanceEqualsLld) {
  // min_{a,b} ||a*u + b*N - v|| == LLD(scaling line of u, shifting line of v).
  Rng rng(43);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.UniformInt(0, 13));
    Vec u(n), v(n);
    for (std::size_t i = 0; i < n; ++i) {
      u[i] = rng.Uniform(-10, 10);
      v[i] = rng.Uniform(-10, 10);
    }
    const double closed_form = ScaleShiftDistance(u, v);
    const double lld = Lld(Line::ScalingLine(u), Line::ShiftingLine(v));
    EXPECT_NEAR(closed_form, lld, 1e-8);
  }
}

TEST(ScaleShiftTest, TheoremTwoDistanceEqualsPldOnSePlane) {
  // min distance == PLD(T_se(v), SE-line of u).
  Rng rng(44);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.UniformInt(0, 13));
    Vec u(n), v(n);
    for (std::size_t i = 0; i < n; ++i) {
      u[i] = rng.Uniform(-10, 10);
      v[i] = rng.Uniform(-10, 10);
    }
    const double closed_form = ScaleShiftDistance(u, v);
    const double pld = Pld(SeTransform(v), SeLine(u));
    EXPECT_NEAR(closed_form, pld, 1e-8);
  }
}

TEST(ScaleShiftTest, ConstantQueryFallsBackToShiftOnly) {
  const Vec constant = {3.0, 3.0, 3.0};
  const Vec v = {1.0, 2.0, 6.0};  // mean 3
  const Alignment align = AlignScaleShift(constant, v);
  EXPECT_DOUBLE_EQ(align.transform.scale, 0.0);
  EXPECT_DOUBLE_EQ(align.transform.offset, 3.0);
  EXPECT_NEAR(align.distance, Norm(SeTransform(v)), 1e-12);
}

TEST(ScaleShiftTest, ConstantBothIsExactMatch) {
  const Vec c1 = {5.0, 5.0};
  const Vec c2 = {9.0, 9.0};
  EXPECT_NEAR(ScaleShiftDistance(c1, c2), 0.0, 1e-12);
}

TEST(ScaleShiftTest, NegativeScalingIsFound) {
  const Vec u = {1.0, 2.0, 3.0};
  const Vec v = {-2.0, -4.0, -6.0};
  const Alignment align = AlignScaleShift(u, v);
  EXPECT_NEAR(align.transform.scale, -2.0, 1e-12);
  EXPECT_NEAR(align.distance, 0.0, 1e-12);
}

TEST(ScaleShiftTest, DistanceIsNotSymmetricInGeneral) {
  // Scale-shift similarity directs from query to data; u->v and v->u can
  // differ when the residual is nonzero.
  const Vec u = {0.0, 1.0, 0.0, -1.0};
  const Vec v = {0.0, 2.0, 1.0, -2.0};
  const double uv = ScaleShiftDistance(u, v);
  const double vu = ScaleShiftDistance(v, u);
  EXPECT_GT(uv, 0.0);
  EXPECT_GT(vu, 0.0);
  EXPECT_NE(uv, vu);
}

}  // namespace
}  // namespace tsss::geom
