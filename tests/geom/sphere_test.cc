#include "tsss/geom/sphere.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"

namespace tsss::geom {
namespace {

TEST(SphereTest, OuterSphereCircumscribesBox) {
  const Mbr box = Mbr::FromCorners({0.0, 0.0}, {2.0, 4.0});
  const Sphere outer = Sphere::Outer(box);
  EXPECT_EQ(outer.center, (Vec{1.0, 2.0}));
  EXPECT_NEAR(outer.radius, std::sqrt(5.0), 1e-12);
  // Every corner of the box lies on/inside the outer sphere.
  EXPECT_TRUE(outer.Contains(Vec{0.0, 0.0}));
  EXPECT_TRUE(outer.Contains(Vec{2.0, 4.0}));
  EXPECT_TRUE(outer.Contains(Vec{0.0, 4.0}));
}

TEST(SphereTest, InnerSphereInscribedInBox) {
  const Mbr box = Mbr::FromCorners({0.0, 0.0}, {2.0, 4.0});
  const Sphere inner = Sphere::Inner(box);
  EXPECT_DOUBLE_EQ(inner.radius, 1.0);
  // Points of the inner sphere are inside the box: check extremes.
  EXPECT_TRUE(box.Contains(Vec{2.0, 2.0}));
  EXPECT_TRUE(box.Contains(Vec{1.0, 3.0}));
}

TEST(SphereTest, LinePenetratesSphereBasic) {
  const Sphere s{{0.0, 0.0, 0.0}, 1.0};
  const Line through{{-5.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
  const Line tangent{{-5.0, 1.0, 0.0}, {1.0, 0.0, 0.0}};
  const Line miss{{-5.0, 2.0, 0.0}, {1.0, 0.0, 0.0}};
  EXPECT_TRUE(LinePenetratesSphere(through, s));
  EXPECT_TRUE(LinePenetratesSphere(tangent, s));  // touching counts
  EXPECT_FALSE(LinePenetratesSphere(miss, s));
}

TEST(SphereTest, SandwichPropertyRandomBoxes) {
  // For any box: inner sphere hit => box hit by some point of the line
  // within the box region is plausible only if line hits outer sphere too.
  // We verify the weaker, load-bearing ordering used by the pruning code:
  // PLD(center) <= inner radius implies PLD(center) <= outer radius.
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    Vec lo(4), hi(4), p(4), d(4);
    for (std::size_t i = 0; i < 4; ++i) {
      lo[i] = rng.Uniform(-5, 5);
      hi[i] = lo[i] + rng.Uniform(0.01, 5.0);
      p[i] = rng.Uniform(-10, 10);
      d[i] = rng.Uniform(-1, 1);
    }
    const Mbr box = Mbr::FromCorners(lo, hi);
    const Sphere inner = Sphere::Inner(box);
    const Sphere outer = Sphere::Outer(box);
    EXPECT_LE(inner.radius, outer.radius + 1e-12);
    const Line line{p, d};
    if (LinePenetratesSphere(line, inner)) {
      EXPECT_TRUE(LinePenetratesSphere(line, outer));
    }
  }
}

}  // namespace
}  // namespace tsss::geom
