#include "tsss/geom/mbr.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tsss::geom {
namespace {

TEST(MbrTest, EmptyByDefault) {
  const Mbr m(3);
  EXPECT_TRUE(m.empty());
  EXPECT_DOUBLE_EQ(m.Volume(), 0.0);
  EXPECT_DOUBLE_EQ(m.Margin(), 0.0);
  EXPECT_FALSE(m.Contains(Vec{0.0, 0.0, 0.0}));
}

TEST(MbrTest, FromPointIsDegenerate) {
  const Mbr m = Mbr::FromPoint(Vec{1.0, 2.0});
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.lo(), m.hi());
  EXPECT_TRUE(m.Contains(Vec{1.0, 2.0}));
  EXPECT_FALSE(m.Contains(Vec{1.0, 2.1}));
  EXPECT_DOUBLE_EQ(m.Volume(), 0.0);
}

TEST(MbrTest, ExtendGrowsToCoverPoints) {
  Mbr m(2);
  m.Extend(Vec{1.0, 5.0});
  m.Extend(Vec{3.0, 2.0});
  EXPECT_EQ(m.lo(), (Vec{1.0, 2.0}));
  EXPECT_EQ(m.hi(), (Vec{3.0, 5.0}));
  EXPECT_DOUBLE_EQ(m.Volume(), 6.0);
  EXPECT_DOUBLE_EQ(m.Margin(), 5.0);
}

TEST(MbrTest, ExtendWithMbrIsUnion) {
  Mbr a = Mbr::FromCorners({0.0, 0.0}, {1.0, 1.0});
  const Mbr b = Mbr::FromCorners({2.0, -1.0}, {3.0, 0.5});
  a.Extend(b);
  EXPECT_EQ(a.lo(), (Vec{0.0, -1.0}));
  EXPECT_EQ(a.hi(), (Vec{3.0, 1.0}));
}

TEST(MbrTest, ExtendWithEmptyIsNoop) {
  Mbr a = Mbr::FromCorners({0.0, 0.0}, {1.0, 1.0});
  const Mbr before = a;
  a.Extend(Mbr(2));
  EXPECT_TRUE(a == before);
}

TEST(MbrTest, ContainsMbr) {
  const Mbr outer = Mbr::FromCorners({0.0, 0.0}, {10.0, 10.0});
  EXPECT_TRUE(outer.Contains(Mbr::FromCorners({1.0, 1.0}, {9.0, 9.0})));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Mbr::FromCorners({1.0, 1.0}, {11.0, 9.0})));
}

TEST(MbrTest, IntersectsSharedEdgeCounts) {
  const Mbr a = Mbr::FromCorners({0.0, 0.0}, {1.0, 1.0});
  const Mbr b = Mbr::FromCorners({1.0, 0.0}, {2.0, 1.0});
  const Mbr c = Mbr::FromCorners({1.5, 0.0}, {2.0, 1.0});
  EXPECT_TRUE(a.Intersects(b));  // touching edges intersect (closed boxes)
  EXPECT_FALSE(a.Intersects(c));
}

TEST(MbrTest, EnlargedMatchesPaperDefinition) {
  // eps-MBR: both corners pushed out by eps in every dimension (Sec. 6.1).
  const Mbr m = Mbr::FromCorners({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0});
  const Mbr e = m.Enlarged(0.5);
  EXPECT_EQ(e.lo(), (Vec{0.5, 1.5, 2.5}));
  EXPECT_EQ(e.hi(), (Vec{4.5, 5.5, 6.5}));
}

TEST(MbrTest, EnlargedZeroIsIdentity) {
  const Mbr m = Mbr::FromCorners({1.0, 2.0}, {4.0, 5.0});
  EXPECT_TRUE(m.Enlarged(0.0) == m);
}

TEST(MbrTest, OverlapVolume) {
  const Mbr a = Mbr::FromCorners({0.0, 0.0}, {2.0, 2.0});
  const Mbr b = Mbr::FromCorners({1.0, 1.0}, {3.0, 3.0});
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 1.0);
  EXPECT_DOUBLE_EQ(b.OverlapVolume(a), 1.0);
  const Mbr c = Mbr::FromCorners({5.0, 5.0}, {6.0, 6.0});
  EXPECT_DOUBLE_EQ(a.OverlapVolume(c), 0.0);
}

TEST(MbrTest, EnlargedVolume) {
  const Mbr a = Mbr::FromCorners({0.0, 0.0}, {1.0, 1.0});
  const Mbr b = Mbr::FromCorners({2.0, 2.0}, {3.0, 3.0});
  EXPECT_DOUBLE_EQ(a.EnlargedVolume(b), 9.0);
}

TEST(MbrTest, CenterAndDiagonal) {
  const Mbr m = Mbr::FromCorners({0.0, 0.0}, {2.0, 4.0});
  EXPECT_EQ(m.Center(), (Vec{1.0, 2.0}));
  EXPECT_NEAR(m.HalfDiagonal(), std::sqrt(1.0 + 4.0), 1e-12);
  EXPECT_DOUBLE_EQ(m.MinHalfExtent(), 1.0);
}

TEST(MbrTest, DistanceSquaredToPoint) {
  const Mbr m = Mbr::FromCorners({0.0, 0.0}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(m.DistanceSquaredTo(Vec{1.0, 1.0}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(m.DistanceSquaredTo(Vec{3.0, 1.0}), 1.0);   // right face
  EXPECT_DOUBLE_EQ(m.DistanceSquaredTo(Vec{3.0, 3.0}), 2.0);   // corner
  EXPECT_DOUBLE_EQ(m.DistanceSquaredTo(Vec{-2.0, -2.0}), 8.0); // other corner
}

TEST(MbrTest, DebugStringMentionsCorners) {
  const Mbr m = Mbr::FromCorners({1.0, 2.0}, {3.0, 4.0});
  const std::string s = m.DebugString();
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_NE(s.find("4"), std::string::npos);
  EXPECT_EQ(Mbr(2).DebugString(), "[empty]");
}

TEST(MbrTest, EqualityIncludesEmptiness) {
  EXPECT_TRUE(Mbr(2) == Mbr(2));
  EXPECT_FALSE(Mbr(2) == Mbr::FromPoint(Vec{0.0, 0.0}));
}

}  // namespace
}  // namespace tsss::geom
