#include "tsss/geom/line.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/geom/vec.h"

namespace tsss::geom {
namespace {

TEST(LineTest, AtEvaluatesParametrically) {
  const Line line{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(line.At(0.0), (Vec{1.0, 2.0}));
  EXPECT_EQ(line.At(2.0), (Vec{7.0, 10.0}));
  EXPECT_EQ(line.At(-1.0), (Vec{-2.0, -2.0}));
}

TEST(LineTest, ScalingLinePassesThroughOriginAndVector) {
  const Vec u = {2.0, 4.0, 6.0};
  const Line line = Line::ScalingLine(u);
  EXPECT_EQ(line.At(0.0), (Vec{0.0, 0.0, 0.0}));
  EXPECT_EQ(line.At(1.0), u);
  EXPECT_EQ(line.At(0.5), (Vec{1.0, 2.0, 3.0}));
}

TEST(LineTest, ShiftingLineMovesAlongAllOnes) {
  const Vec v = {5.0, 1.0, -2.0};
  const Line line = Line::ShiftingLine(v);
  EXPECT_EQ(line.At(0.0), v);
  EXPECT_EQ(line.At(3.0), (Vec{8.0, 4.0, 1.0}));
}

TEST(PldTest, PointOnLineIsZero) {
  const Line line{{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_NEAR(Pld(Vec{2.5, 2.5}, line), 0.0, 1e-12);
}

TEST(PldTest, PerpendicularDistanceIn2d) {
  // Line y = x; point (0, 2) is sqrt(2) away.
  const Line line{{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_NEAR(Pld(Vec{0.0, 2.0}, line), std::sqrt(2.0), 1e-12);
}

TEST(PldTest, DegenerateLineIsPointDistance) {
  const Line degenerate{{1.0, 1.0, 1.0}, {0.0, 0.0, 0.0}};
  EXPECT_NEAR(Pld(Vec{4.0, 5.0, 1.0}, degenerate), 5.0, 1e-12);
}

TEST(PldTest, LemmaOneFormulaAgreesWithProjection) {
  // PLD(q, L) == ||(q-p) - ((q-p).d / ||d||^2) d||  (Lemma 1).
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t dim = 2 + static_cast<std::size_t>(rng.UniformInt(0, 6));
    Vec p(dim);
    Vec d(dim);
    Vec q(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      p[i] = rng.Uniform(-10, 10);
      d[i] = rng.Uniform(-10, 10);
      q[i] = rng.Uniform(-10, 10);
    }
    if (Norm(d) < 1e-6) continue;
    const Line line{p, d};
    const Vec w = Sub(q, p);
    const Vec expected = Sub(w, Scale(d, Dot(w, d) / NormSquared(d)));
    EXPECT_NEAR(Pld(q, line), Norm(expected), 1e-9);
  }
}

TEST(PldTest, ClosestParamMinimises) {
  Rng rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    Vec p(5);
    Vec d(5);
    Vec q(5);
    for (std::size_t i = 0; i < 5; ++i) {
      p[i] = rng.Uniform(-3, 3);
      d[i] = rng.Uniform(-3, 3);
      q[i] = rng.Uniform(-3, 3);
    }
    if (Norm(d) < 1e-6) continue;
    const Line line{p, d};
    const double t_star = ClosestParamOnLine(q, line);
    const double d_star = Distance(q, line.At(t_star));
    for (double dt : {-1.0, -0.1, 0.1, 1.0}) {
      EXPECT_LE(d_star, Distance(q, line.At(t_star + dt)) + 1e-12);
    }
  }
}

TEST(LldTest, IntersectingLinesHaveZeroDistance) {
  const Line a{{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
  const Line b{{5.0, -5.0, 0.0}, {0.0, 1.0, 0.0}};
  EXPECT_NEAR(Lld(a, b), 0.0, 1e-12);
}

TEST(LldTest, SkewLinesIn3d) {
  // Classic skew pair: x-axis and the line (0,0,1) + t(0,1,0): distance 1.
  const Line a{{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
  const Line b{{0.0, 0.0, 1.0}, {0.0, 1.0, 0.0}};
  EXPECT_NEAR(Lld(a, b), 1.0, 1e-12);
}

TEST(LldTest, ParallelLinesUsePld) {
  const Line a{{0.0, 0.0}, {1.0, 1.0}};
  const Line b{{0.0, 2.0}, {2.0, 2.0}};  // same direction
  EXPECT_NEAR(Lld(a, b), std::sqrt(2.0), 1e-12);
}

TEST(LldTest, SymmetricInArguments) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t dim = 2 + static_cast<std::size_t>(rng.UniformInt(0, 6));
    Vec p1(dim), d1(dim), p2(dim), d2(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      p1[i] = rng.Uniform(-5, 5);
      d1[i] = rng.Uniform(-5, 5);
      p2[i] = rng.Uniform(-5, 5);
      d2[i] = rng.Uniform(-5, 5);
    }
    const Line a{p1, d1};
    const Line b{p2, d2};
    EXPECT_NEAR(Lld(a, b), Lld(b, a), 1e-9);
  }
}

TEST(LldTest, MinimumAgainstSampledParameters) {
  // LLD must lower-bound the distance between any two points on the lines,
  // and be attained by the returned (ta, tb).
  Rng rng(14);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t dim = 3 + static_cast<std::size_t>(rng.UniformInt(0, 5));
    Vec p1(dim), d1(dim), p2(dim), d2(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      p1[i] = rng.Uniform(-5, 5);
      d1[i] = rng.Uniform(-5, 5);
      p2[i] = rng.Uniform(-5, 5);
      d2[i] = rng.Uniform(-5, 5);
    }
    const Line a{p1, d1};
    const Line b{p2, d2};
    const LinePair closest = ClosestBetweenLines(a, b);
    EXPECT_NEAR(Distance(a.At(closest.ta), b.At(closest.tb)), closest.distance,
                1e-9);
    for (int s = 0; s < 30; ++s) {
      const double ta = rng.Uniform(-10, 10);
      const double tb = rng.Uniform(-10, 10);
      EXPECT_LE(closest.distance, Distance(a.At(ta), b.At(tb)) + 1e-9);
    }
  }
}

TEST(LldTest, BothDegenerateIsPointDistance) {
  const Line a{{0.0, 0.0}, {0.0, 0.0}};
  const Line b{{3.0, 4.0}, {0.0, 0.0}};
  EXPECT_NEAR(Lld(a, b), 5.0, 1e-12);
}

TEST(LldTest, OneDegenerateUsesPld) {
  const Line a{{0.0, 2.0}, {0.0, 0.0}};       // point (0,2)
  const Line b{{0.0, 0.0}, {1.0, 0.0}};       // x-axis
  EXPECT_NEAR(Lld(a, b), 2.0, 1e-12);
  EXPECT_NEAR(Lld(b, a), 2.0, 1e-12);
}

}  // namespace
}  // namespace tsss::geom
