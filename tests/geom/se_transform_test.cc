#include "tsss/geom/se_transform.h"

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/geom/line.h"

namespace tsss::geom {
namespace {

TEST(SeTransformTest, RemovesMean) {
  const Vec p = {1.0, 2.0, 3.0, 6.0};  // mean 3
  const Vec t = SeTransform(p);
  EXPECT_EQ(t, (Vec{-2.0, -1.0, 0.0, 3.0}));
  EXPECT_TRUE(OnSePlane(t));
}

TEST(SeTransformTest, InPlaceReturnsMean) {
  Vec p = {10.0, 20.0, 30.0};
  const double mean = SeTransformInPlace(p);
  EXPECT_DOUBLE_EQ(mean, 20.0);
  EXPECT_EQ(p, (Vec{-10.0, 0.0, 10.0}));
}

TEST(SeTransformTest, MatchesDefinitionTwoFormula) {
  // T_se(p) = p - (<p,N>/||N||^2) N   (Definition 2).
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.UniformInt(0, 14));
    Vec p(n);
    for (auto& x : p) x = rng.Uniform(-100, 100);
    const Vec shifting = ShiftingVector(n);
    const Vec expected =
        Sub(p, Scale(shifting, Dot(p, shifting) / NormSquared(shifting)));
    const Vec got = SeTransform(p);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(got[i], expected[i], 1e-9);
  }
}

TEST(SeTransformTest, IsLinear) {
  // Property 1 of Section 5.1: T(u+v) = T(u)+T(v), T(t*u) = t*T(u).
  Rng rng(32);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.UniformInt(0, 14));
    Vec u(n), v(n);
    for (std::size_t i = 0; i < n; ++i) {
      u[i] = rng.Uniform(-10, 10);
      v[i] = rng.Uniform(-10, 10);
    }
    const double t = rng.Uniform(-5, 5);
    const Vec lhs_add = SeTransform(Add(u, v));
    const Vec rhs_add = Add(SeTransform(u), SeTransform(v));
    const Vec lhs_scale = SeTransform(Scale(u, t));
    const Vec rhs_scale = Scale(SeTransform(u), t);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(lhs_add[i], rhs_add[i], 1e-9);
      EXPECT_NEAR(lhs_scale[i], rhs_scale[i], 1e-9);
    }
  }
}

TEST(SeTransformTest, CollapsesShiftingLines) {
  // Property 2: T_se(v + t*N) == T_se(v) for all t.
  const Vec v = {4.0, -1.0, 7.0};
  const Vec base = SeTransform(v);
  for (double t : {-100.0, -1.0, 0.5, 42.0}) {
    const Vec shifted = Axpy(t, ShiftingVector(3), v);
    const Vec projected = SeTransform(shifted);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(projected[i], base[i], 1e-9);
  }
}

TEST(SeTransformTest, MapsScalingLineToSeLine) {
  // Property 3: T_se(t*u) = t*T_se(u) - the SE-line.
  const Vec u = {5.0, 10.0, 6.0, 12.0, 4.0};  // paper's example sequence A
  const Line se_line = SeLine(u);
  for (double t : {-2.0, 0.0, 0.5, 3.0}) {
    const Vec projected = SeTransform(Scale(u, t));
    const Vec on_line = se_line.At(t);
    for (std::size_t i = 0; i < u.size(); ++i) {
      EXPECT_NEAR(projected[i], on_line[i], 1e-9);
    }
  }
}

TEST(SeTransformTest, IdempotentOnSePlane) {
  const Vec p = {3.0, -1.0, -2.0};  // zero mean already
  EXPECT_TRUE(OnSePlane(p));
  EXPECT_EQ(SeTransform(p), p);
}

TEST(SeTransformTest, ConstantSequenceMapsToZero) {
  const Vec c = {7.0, 7.0, 7.0, 7.0};
  EXPECT_TRUE(IsZero(SeTransform(c)));
}

TEST(SeTransformTest, ResultOrthogonalToShiftingVector) {
  // Property 4: the SE-plane is the orthogonal complement of span{N}.
  Rng rng(33);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.UniformInt(0, 30));
    Vec p(n);
    for (auto& x : p) x = rng.Uniform(-1000, 1000);
    const Vec t = SeTransform(p);
    EXPECT_NEAR(Dot(t, ShiftingVector(n)), 0.0, 1e-6);
  }
}

}  // namespace
}  // namespace tsss::geom
