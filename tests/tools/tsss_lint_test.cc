// Drives tsss_lint over the fixture corpus in tools/tsss_lint/testdata/.
// Every check family gets one passing fixture (good/ exercises all eight)
// and at least one failing fixture with golden finding counts, so a
// regression that silences a family trips a test here before it lets a
// real violation through CI. The parser unit tests at the bottom pin down
// the statement tree and path enumeration the v2 families are built on.
//
// TSSS_LINT_TESTDATA_DIR and TSSS_LINT_RULES are injected by CMake.

#include <string>

#include <gtest/gtest.h>

#include "tsss_lint/lexer.h"
#include "tsss_lint/lint.h"
#include "tsss_lint/parser.h"
#include "tsss_lint/rules.h"

namespace tsss_lint {
namespace {

LintResult RunOnFixture(const std::string& fixture) {
  LintOptions options;
  options.root = std::string(TSSS_LINT_TESTDATA_DIR) + "/" + fixture;
  options.rules_path = TSSS_LINT_RULES;
  options.paths = {"src"};
  return RunLint(options);
}

TEST(TsssLintFixtures, GoodCorpusIsClean) {
  const LintResult result = RunOnFixture("good");
  EXPECT_TRUE(result.error.empty()) << result.error;
  EXPECT_TRUE(result.findings.empty())
      << "unexpected finding: " << FormatFinding(result.findings.front());
  EXPECT_TRUE(result.ok());
}

TEST(TsssLintFixtures, BadLayeringFindsBothUpwardIncludes) {
  const LintResult result = RunOnFixture("bad_layering");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.CountFor(Check::kLayering), 2);
  EXPECT_EQ(static_cast<int>(result.findings.size()), 2);
}

// shard is the top layer: a lower layer (service) including a shard header
// is an upward edge the DAG must reject.
TEST(TsssLintFixtures, BadShardLayeringReachUpIsCaught) {
  const LintResult result = RunOnFixture("bad_shard_layering");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.CountFor(Check::kLayering), 1);
  EXPECT_NE(result.findings.front().message.find("shard"), std::string::npos);
}

// obs is among core's declared deps, but debug_server.h carries a
// [restrict.debug_server] rule: only the serving layers may include it.
TEST(TsssLintFixtures, BadRestrictedIncludeIsCaughtBelowServiceLayer) {
  const LintResult result = RunOnFixture("bad_restricted_include");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.CountFor(Check::kLayering), 1);
  EXPECT_NE(result.findings.front().message.find("restricted header"),
            std::string::npos)
      << FormatFinding(result.findings.front());
  EXPECT_NE(result.findings.front().message.find("restrict.debug_server"),
            std::string::npos);
}

// Same narrow-waist mechanism for the sampling profiler: it owns the
// process-wide SIGPROF timer, so [restrict.profiler] keeps it out of every
// layer below the service boundary.
TEST(TsssLintFixtures, BadRestrictedProfilerIsCaughtBelowServiceLayer) {
  const LintResult result = RunOnFixture("bad_restricted_profiler");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.CountFor(Check::kLayering), 1);
  EXPECT_NE(result.findings.front().message.find("restricted header"),
            std::string::npos)
      << FormatFinding(result.findings.front());
  EXPECT_NE(result.findings.front().message.find("restrict.profiler"),
            std::string::npos);
}

TEST(TsssLintFixtures, BadIncludeCycleIsReportedOnce) {
  const LintResult result = RunOnFixture("bad_include_cycle");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.CountFor(Check::kLayering), 1);
  EXPECT_NE(result.findings.front().message.find("include cycle"),
            std::string::npos);
}

TEST(TsssLintFixtures, BadLockCycleFromDeclaredOrder) {
  const LintResult result = RunOnFixture("bad_lock_cycle");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.CountFor(Check::kLockOrder), 1);
  EXPECT_NE(result.findings.front().message.find("cycle"), std::string::npos);
}

TEST(TsssLintFixtures, BadLockCycleFromNestedMutexLockScopes) {
  const LintResult result = RunOnFixture("bad_lock_nested");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.CountFor(Check::kLockOrder), 1);
}

TEST(TsssLintFixtures, BadLockUnannotatedFlagsBothMembers) {
  const LintResult result = RunOnFixture("bad_lock_unannotated");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.CountFor(Check::kLockOrder), 2);
}

TEST(TsssLintFixtures, BadStatusBareCallsAreFlagged) {
  const LintResult result = RunOnFixture("bad_status_bare");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.CountFor(Check::kStatusDiscard), 2);
}

TEST(TsssLintFixtures, BadStatusVoidCastNeedsJustification) {
  const LintResult result = RunOnFixture("bad_status_void");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.CountFor(Check::kStatusDiscard), 2);
  EXPECT_NE(result.findings.front().message.find("discard-ok"),
            std::string::npos);
}

TEST(TsssLintFixtures, BadHotAllocFlagsGrowthAndNew) {
  const LintResult result = RunOnFixture("bad_hot_alloc");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.CountFor(Check::kHotPath), 2);
}

TEST(TsssLintFixtures, BadHotAssertFlagsAssertAndLock) {
  const LintResult result = RunOnFixture("bad_hot_assert");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.CountFor(Check::kHotPath), 2);
}

TEST(TsssLintFixtures, BadHotUnbalancedRegionIsFlagged) {
  const LintResult result = RunOnFixture("bad_hot_unbalanced");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.CountFor(Check::kHotPath), 1);
  EXPECT_NE(result.findings.front().message.find("never closed"),
            std::string::npos);
}

// --- v2 flow-sensitive fixtures --------------------------------------------

TEST(TsssLintFixtures, BadPinLeakFlagsLeakBareAndDangling) {
  const LintResult result = RunOnFixture("bad_pin_leak");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.CountFor(Check::kPinPairing), 3);
  EXPECT_EQ(static_cast<int>(result.findings.size()), 3);
}

TEST(TsssLintFixtures, BadRelaxedUnwaivedFlagsAllFourMisuses) {
  const LintResult result = RunOnFixture("bad_relaxed_unwaived");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.CountFor(Check::kAtomicOrder), 4);
  EXPECT_EQ(static_cast<int>(result.findings.size()), 4);
}

TEST(TsssLintFixtures, BadPollMissingFlagsDirectAndTransitiveIo) {
  const LintResult result = RunOnFixture("bad_poll_missing");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.CountFor(Check::kDeadlinePoll), 2);
  EXPECT_EQ(static_cast<int>(result.findings.size()), 2);
}

TEST(TsssLintFixtures, BadFloatEqFlagsPruneAndHotComparisons) {
  const LintResult result = RunOnFixture("bad_float_eq");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.CountFor(Check::kFloatHazard), 3);
  EXPECT_EQ(static_cast<int>(result.findings.size()), 3);
}

// --checks filtering: a layering-broken fixture is clean when only the
// hot-path family runs.
TEST(TsssLintFixtures, CheckFilterRestrictsFamilies) {
  LintOptions options;
  options.root = std::string(TSSS_LINT_TESTDATA_DIR) + "/bad_layering";
  options.rules_path = TSSS_LINT_RULES;
  options.paths = {"src"};
  options.checks = {Check::kHotPath};
  const LintResult result = RunLint(options);
  EXPECT_TRUE(result.ok()) << (result.findings.empty()
                                   ? result.error
                                   : FormatFinding(result.findings.front()));
}

// Configuration failures surface as `error` (CLI exit 2), not findings.
TEST(TsssLintFixtures, MissingRulesFileIsAnError) {
  LintOptions options;
  options.root = std::string(TSSS_LINT_TESTDATA_DIR) + "/good";
  options.rules_path =
      std::string(TSSS_LINT_TESTDATA_DIR) + "/no_such_rules.toml";
  options.paths = {"src"};
  const LintResult result = RunLint(options);
  EXPECT_FALSE(result.error.empty());
  EXPECT_TRUE(result.findings.empty());
}

TEST(TsssLintFindings, FormatMatchesCliContract) {
  Finding finding;
  finding.check = Check::kStatusDiscard;
  finding.file = "src/tsss/core/engine.cc";
  finding.line = 42;
  finding.message = "result discarded";
  EXPECT_EQ(FormatFinding(finding),
            "src/tsss/core/engine.cc:42: [status-discard] result discarded");
}

TEST(TsssLintLexer, CommentsStringsAndRawStrings) {
  const auto tokens = Lex(
      "int a; // trailing\n"
      "/* block */ const char* s = \"x\\\"y\";\n"
      "auto r = R\"(raw \" text)\";\n");
  int comments = 0;
  int strings = 0;
  for (const auto& token : tokens) {
    if (token.kind == TokKind::kComment) ++comments;
    if (token.kind == TokKind::kString) ++strings;
  }
  EXPECT_EQ(comments, 2);
  EXPECT_EQ(strings, 2);
}

// --- statement-tree parser -------------------------------------------------

std::vector<Token> CodeTokens(const std::string& text) {
  std::vector<Token> code;
  for (const Token& t : Lex(text)) {
    if (!IsComment(t)) code.push_back(t);
  }
  return code;
}

TEST(TsssLintParser, ExtractsFreeAndMemberFunctions) {
  const auto code = CodeTokens(
      "int Free(int a) { return a; }\n"
      "struct S {\n"
      "  void Inline() { x = 1; }\n"
      "  int Declared(int b);\n"
      "};\n"
      "int S::Declared(int b) { return b; }\n");
  const auto functions = ParseFunctions(code);
  ASSERT_EQ(functions.size(), 3u);
  EXPECT_EQ(functions[0].name, "Free");
  EXPECT_EQ(functions[1].name, "Inline");
  EXPECT_EQ(functions[2].name, "Declared");
}

TEST(TsssLintParser, IfElseAndEarlyReturnEnumerateDistinctPaths) {
  const auto code = CodeTokens(
      "int F(bool c) {\n"
      "  before();\n"
      "  if (c) {\n"
      "    return 1;\n"
      "  }\n"
      "  after();\n"
      "  return 2;\n"
      "}\n");
  const auto functions = ParseFunctions(code);
  ASSERT_EQ(functions.size(), 1u);
  bool truncated = false;
  const auto paths = EnumeratePaths(functions[0].body, 64, &truncated);
  EXPECT_FALSE(truncated);
  // Path A: before, if-cond, return 1. Path B: before, if-cond, after,
  // return 2. Both end in a return, at different lines.
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_TRUE(paths[0].ends_in_return);
  EXPECT_TRUE(paths[1].ends_in_return);
  EXPECT_NE(paths[0].exit_line, paths[1].exit_line);
  EXPECT_NE(paths[0].leaves.size(), paths[1].leaves.size());
}

TEST(TsssLintParser, LoopContributesZeroOrOneIteration) {
  const auto code = CodeTokens(
      "void F(int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    work(i);\n"
      "  }\n"
      "}\n");
  const auto functions = ParseFunctions(code);
  ASSERT_EQ(functions.size(), 1u);
  const auto paths = EnumeratePaths(functions[0].body, 64);
  ASSERT_EQ(paths.size(), 2u);  // skip the loop entirely, or run it once
  EXPECT_NE(paths[0].leaves.size(), paths[1].leaves.size());
  for (const auto& path : paths) EXPECT_FALSE(path.ends_in_return);
}

TEST(TsssLintParser, DoWhileBodyNeverSkipped) {
  const auto code = CodeTokens(
      "void F() {\n"
      "  do {\n"
      "    work();\n"
      "  } while (again());\n"
      "}\n");
  const auto functions = ParseFunctions(code);
  ASSERT_EQ(functions.size(), 1u);
  ASSERT_EQ(functions[0].body.children.size(), 1u);
  EXPECT_EQ(functions[0].body.children[0].kind, StmtKind::kLoop);
  EXPECT_FALSE(functions[0].body.children[0].may_skip_body);
  // Exactly one path: the body always runs.
  EXPECT_EQ(EnumeratePaths(functions[0].body, 64).size(), 1u);
}

TEST(TsssLintParser, InnermostLoopDistinguishesConditionFromBody) {
  const auto code = CodeTokens(
      "void F(int n) {\n"
      "  while (probe()) {\n"
      "    inner(n);\n"
      "  }\n"
      "}\n");
  const auto functions = ParseFunctions(code);
  ASSERT_EQ(functions.size(), 1u);
  const Stmt& body = functions[0].body;
  std::size_t probe_at = 0;
  std::size_t inner_at = 0;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i].text == "probe") probe_at = i;
    if (code[i].text == "inner") inner_at = i;
  }
  bool in_condition = false;
  ASSERT_NE(InnermostLoop(body, probe_at, &in_condition), nullptr);
  EXPECT_TRUE(in_condition);
  ASSERT_NE(InnermostLoop(body, inner_at, &in_condition), nullptr);
  EXPECT_FALSE(in_condition);
  // A token outside any loop has no innermost loop.
  EXPECT_EQ(InnermostLoop(body, body.end - 1, nullptr), nullptr);
}

TEST(TsssLintParser, PathCapTruncatesConservatively) {
  std::string text = "void F() {\n";
  for (int i = 0; i < 12; ++i) {
    text += "  if (c" + std::to_string(i) + ") { a(); }\n";
  }
  text += "}\n";
  const auto code = CodeTokens(text);
  const auto functions = ParseFunctions(code);
  ASSERT_EQ(functions.size(), 1u);
  bool truncated = false;
  const auto paths = EnumeratePaths(functions[0].body, 64, &truncated);
  EXPECT_TRUE(truncated);  // 2^12 paths exist, only 64 kept
  EXPECT_LE(paths.size(), 64u);
}

// --- waiver inventory ------------------------------------------------------

TEST(TsssLintWaivers, ListWaiversCollectsTagsAndReasons) {
  LintOptions options;
  options.root = std::string(TSSS_LINT_TESTDATA_DIR) + "/good";
  options.paths = {"src"};
  const WaiverResult result = ListWaivers(options);
  ASSERT_TRUE(result.error.empty()) << result.error;
  int pin_ok = 0;
  int relaxed_ok = 0;
  for (const Waiver& w : result.waivers) {
    EXPECT_FALSE(w.file.empty());
    EXPECT_GT(w.line, 0);
    EXPECT_FALSE(w.reason.empty()) << w.file << ":" << w.line;
    if (w.tag == "pin-ok") ++pin_ok;
    if (w.tag == "relaxed-ok") ++relaxed_ok;
  }
  EXPECT_EQ(pin_ok, 1);
  EXPECT_EQ(relaxed_ok, 1);
}

TEST(TsssLintRules, ParsesLayersAndRejectsUnknownDeps) {
  std::string error;
  LayerRules rules;
  ASSERT_TRUE(ParseRulesText("[layer.common]\n"
                             "path = \"src/tsss/common\"\n"
                             "deps = []\n"
                             "[layer.geom]\n"
                             "path = \"src/tsss/geom\"\n"
                             "deps = [\"common\"]\n",
                             &rules, &error))
      << error;
  const Layer* geom = rules.LayerForPath("src/tsss/geom/vec.h");
  ASSERT_NE(geom, nullptr);
  EXPECT_EQ(geom->name, "geom");
  EXPECT_TRUE(rules.FindCycle().empty());

  LayerRules bad;
  EXPECT_FALSE(ParseRulesText("[layer.common]\n"
                              "path = \"src/tsss/common\"\n"
                              "deps = [\"ghost\"]\n",
                              &bad, &error));
  EXPECT_FALSE(error.empty());
}

TEST(TsssLintRules, ParsesRestrictTablesAndValidatesAllowedLayers) {
  std::string error;
  LayerRules rules;
  ASSERT_TRUE(ParseRulesText("[layer.obs]\n"
                             "path = \"src/tsss/obs\"\n"
                             "deps = []\n"
                             "[layer.service]\n"
                             "path = \"src/tsss/service\"\n"
                             "deps = [\"obs\"]\n"
                             "[restrict.debug_server]\n"
                             "header = \"src/tsss/obs/debug_server.h\"\n"
                             "allowed = [\"service\"]\n",
                             &rules, &error))
      << error;
  ASSERT_EQ(rules.restricts.size(), 1u);
  EXPECT_EQ(rules.restricts[0].name, "debug_server");
  EXPECT_EQ(rules.restricts[0].header, "src/tsss/obs/debug_server.h");
  ASSERT_EQ(rules.restricts[0].allowed.size(), 1u);
  EXPECT_EQ(rules.restricts[0].allowed[0], "service");

  // A restrict naming an undeclared layer is a rule-file error.
  LayerRules bad;
  EXPECT_FALSE(ParseRulesText("[layer.obs]\n"
                              "path = \"src/tsss/obs\"\n"
                              "deps = []\n"
                              "[restrict.x]\n"
                              "header = \"src/tsss/obs/x.h\"\n"
                              "allowed = [\"ghost\"]\n",
                              &bad, &error));
  EXPECT_NE(error.find("ghost"), std::string::npos);
  // So is a restrict with no header.
  LayerRules headerless;
  EXPECT_FALSE(ParseRulesText("[restrict.x]\n"
                              "allowed = []\n",
                              &headerless, &error));
  EXPECT_NE(error.find("no header"), std::string::npos);
}

}  // namespace
}  // namespace tsss_lint
