// Drives tsss_lint over the fixture corpus in tools/tsss_lint/testdata/.
// Every check family gets one passing fixture (good/ exercises all four)
// and at least two failing fixtures with golden finding counts, so a
// regression that silences a family trips a test here before it lets a
// real violation through CI.
//
// TSSS_LINT_TESTDATA_DIR and TSSS_LINT_RULES are injected by CMake.

#include <string>

#include <gtest/gtest.h>

#include "tsss_lint/lexer.h"
#include "tsss_lint/lint.h"
#include "tsss_lint/rules.h"

namespace tsss_lint {
namespace {

LintResult RunOnFixture(const std::string& fixture) {
  LintOptions options;
  options.root = std::string(TSSS_LINT_TESTDATA_DIR) + "/" + fixture;
  options.rules_path = TSSS_LINT_RULES;
  options.paths = {"src"};
  return RunLint(options);
}

TEST(TsssLintFixtures, GoodCorpusIsClean) {
  const LintResult result = RunOnFixture("good");
  EXPECT_TRUE(result.error.empty()) << result.error;
  EXPECT_TRUE(result.findings.empty())
      << "unexpected finding: " << FormatFinding(result.findings.front());
  EXPECT_TRUE(result.ok());
}

TEST(TsssLintFixtures, BadLayeringFindsBothUpwardIncludes) {
  const LintResult result = RunOnFixture("bad_layering");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.CountFor(Check::kLayering), 2);
  EXPECT_EQ(static_cast<int>(result.findings.size()), 2);
}

// shard is the top layer: a lower layer (service) including a shard header
// is an upward edge the DAG must reject.
TEST(TsssLintFixtures, BadShardLayeringReachUpIsCaught) {
  const LintResult result = RunOnFixture("bad_shard_layering");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.CountFor(Check::kLayering), 1);
  EXPECT_NE(result.findings.front().message.find("shard"), std::string::npos);
}

TEST(TsssLintFixtures, BadIncludeCycleIsReportedOnce) {
  const LintResult result = RunOnFixture("bad_include_cycle");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.CountFor(Check::kLayering), 1);
  EXPECT_NE(result.findings.front().message.find("include cycle"),
            std::string::npos);
}

TEST(TsssLintFixtures, BadLockCycleFromDeclaredOrder) {
  const LintResult result = RunOnFixture("bad_lock_cycle");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.CountFor(Check::kLockOrder), 1);
  EXPECT_NE(result.findings.front().message.find("cycle"), std::string::npos);
}

TEST(TsssLintFixtures, BadLockCycleFromNestedMutexLockScopes) {
  const LintResult result = RunOnFixture("bad_lock_nested");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.CountFor(Check::kLockOrder), 1);
}

TEST(TsssLintFixtures, BadLockUnannotatedFlagsBothMembers) {
  const LintResult result = RunOnFixture("bad_lock_unannotated");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.CountFor(Check::kLockOrder), 2);
}

TEST(TsssLintFixtures, BadStatusBareCallsAreFlagged) {
  const LintResult result = RunOnFixture("bad_status_bare");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.CountFor(Check::kStatusDiscard), 2);
}

TEST(TsssLintFixtures, BadStatusVoidCastNeedsJustification) {
  const LintResult result = RunOnFixture("bad_status_void");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.CountFor(Check::kStatusDiscard), 2);
  EXPECT_NE(result.findings.front().message.find("discard-ok"),
            std::string::npos);
}

TEST(TsssLintFixtures, BadHotAllocFlagsGrowthAndNew) {
  const LintResult result = RunOnFixture("bad_hot_alloc");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.CountFor(Check::kHotPath), 2);
}

TEST(TsssLintFixtures, BadHotAssertFlagsAssertAndLock) {
  const LintResult result = RunOnFixture("bad_hot_assert");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.CountFor(Check::kHotPath), 2);
}

TEST(TsssLintFixtures, BadHotUnbalancedRegionIsFlagged) {
  const LintResult result = RunOnFixture("bad_hot_unbalanced");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.CountFor(Check::kHotPath), 1);
  EXPECT_NE(result.findings.front().message.find("never closed"),
            std::string::npos);
}

// --checks filtering: a layering-broken fixture is clean when only the
// hot-path family runs.
TEST(TsssLintFixtures, CheckFilterRestrictsFamilies) {
  LintOptions options;
  options.root = std::string(TSSS_LINT_TESTDATA_DIR) + "/bad_layering";
  options.rules_path = TSSS_LINT_RULES;
  options.paths = {"src"};
  options.checks = {Check::kHotPath};
  const LintResult result = RunLint(options);
  EXPECT_TRUE(result.ok()) << (result.findings.empty()
                                   ? result.error
                                   : FormatFinding(result.findings.front()));
}

// Configuration failures surface as `error` (CLI exit 2), not findings.
TEST(TsssLintFixtures, MissingRulesFileIsAnError) {
  LintOptions options;
  options.root = std::string(TSSS_LINT_TESTDATA_DIR) + "/good";
  options.rules_path =
      std::string(TSSS_LINT_TESTDATA_DIR) + "/no_such_rules.toml";
  options.paths = {"src"};
  const LintResult result = RunLint(options);
  EXPECT_FALSE(result.error.empty());
  EXPECT_TRUE(result.findings.empty());
}

TEST(TsssLintFindings, FormatMatchesCliContract) {
  Finding finding;
  finding.check = Check::kStatusDiscard;
  finding.file = "src/tsss/core/engine.cc";
  finding.line = 42;
  finding.message = "result discarded";
  EXPECT_EQ(FormatFinding(finding),
            "src/tsss/core/engine.cc:42: [status-discard] result discarded");
}

TEST(TsssLintLexer, CommentsStringsAndRawStrings) {
  const auto tokens = Lex(
      "int a; // trailing\n"
      "/* block */ const char* s = \"x\\\"y\";\n"
      "auto r = R\"(raw \" text)\";\n");
  int comments = 0;
  int strings = 0;
  for (const auto& token : tokens) {
    if (token.kind == TokKind::kComment) ++comments;
    if (token.kind == TokKind::kString) ++strings;
  }
  EXPECT_EQ(comments, 2);
  EXPECT_EQ(strings, 2);
}

TEST(TsssLintRules, ParsesLayersAndRejectsUnknownDeps) {
  std::string error;
  LayerRules rules;
  ASSERT_TRUE(ParseRulesText("[layer.common]\n"
                             "path = \"src/tsss/common\"\n"
                             "deps = []\n"
                             "[layer.geom]\n"
                             "path = \"src/tsss/geom\"\n"
                             "deps = [\"common\"]\n",
                             &rules, &error))
      << error;
  const Layer* geom = rules.LayerForPath("src/tsss/geom/vec.h");
  ASSERT_NE(geom, nullptr);
  EXPECT_EQ(geom->name, "geom");
  EXPECT_TRUE(rules.FindCycle().empty());

  LayerRules bad;
  EXPECT_FALSE(ParseRulesText("[layer.common]\n"
                              "path = \"src/tsss/common\"\n"
                              "deps = [\"ghost\"]\n",
                              &bad, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace tsss_lint
