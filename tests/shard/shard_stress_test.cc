// Multi-shard concurrency stress: many client threads drive mixed Range /
// k-NN / LongRange queries through one ShardedEngine (4 shards, 8 fan-out
// workers), and every answer is cross-checked against a single-engine
// oracle computed single-threaded up front. Concurrent fan-outs interleave
// sub-queries from different logical queries on the same worker pool and
// share k-NN bounds only *within* a logical query — any cross-query bleed
// or data race shows up as a wrong answer here (and the CI TSan job runs
// this file under -fsanitize=thread).

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/core/engine.h"
#include "tsss/seq/stock_generator.h"
#include "tsss/seq/window.h"
#include "tsss/shard/sharded_engine.h"

namespace tsss::shard {
namespace {

constexpr std::size_t kWindow = 16;
constexpr std::size_t kNumQueries = 96;
constexpr std::uint32_t kShards = 4;
constexpr std::size_t kFanoutWorkers = 8;
constexpr std::size_t kClients = 8;

struct StressQuery {
  service::QueryKind kind = service::QueryKind::kRange;
  geom::Vec query;
  double eps = 0.0;
  std::size_t k = 0;
};

core::EngineConfig StressEngineConfig() {
  core::EngineConfig config;
  config.window = kWindow;
  config.reduced_dim = 4;
  config.tree.max_entries = 8;
  // Small enough that concurrent sub-queries contend on eviction inside
  // each shard's private pool.
  config.buffer_pool_pages = 64;
  config.cold_cache_per_query = false;
  return config;
}

std::vector<seq::TimeSeries> StressCorpus() {
  seq::StockMarketConfig market;
  market.num_companies = 16;
  market.values_per_company = 256;
  market.seed = 4242;
  return seq::GenerateStockMarket(market);
}

std::vector<StressQuery> MakeWorkload(const core::SearchEngine& oracle) {
  Rng rng(1234);
  std::vector<StressQuery> workload;
  workload.reserve(kNumQueries);
  const std::size_t num_series = oracle.dataset().size();
  for (std::size_t i = 0; i < kNumQueries; ++i) {
    const auto series = static_cast<storage::SeriesId>(i % num_series);
    const auto offset = static_cast<std::uint32_t>((i * 13) % 128);
    StressQuery q;
    switch (i % 3) {
      case 0: {
        q.kind = service::QueryKind::kRange;
        auto window = oracle.ReadWindow(seq::MakeRecordId(series, offset));
        EXPECT_TRUE(window.ok());
        q.query = *window;
        for (double& v : q.query) v += rng.Uniform(-0.5, 0.5);
        q.eps = 4.0 + rng.Uniform(0.0, 4.0);
        break;
      }
      case 1: {
        q.kind = service::QueryKind::kKnn;
        auto window = oracle.ReadWindow(seq::MakeRecordId(series, offset));
        EXPECT_TRUE(window.ok());
        q.query = *window;
        q.k = 1 + i % 7;
        break;
      }
      default: {
        q.kind = service::QueryKind::kLongRange;
        geom::Vec query(3 * kWindow);
        auto values = oracle.dataset().Values(series);
        EXPECT_TRUE(values.ok());
        for (std::size_t j = 0; j < query.size(); ++j) {
          query[j] = (*values)[offset + j];
        }
        q.query = std::move(query);
        q.eps = 8.0 + rng.Uniform(0.0, 8.0);
        break;
      }
    }
    workload.push_back(std::move(q));
  }
  return workload;
}

Result<std::vector<core::Match>> RunOnOracle(const core::SearchEngine& oracle,
                                             const StressQuery& q) {
  switch (q.kind) {
    case service::QueryKind::kRange:
      return oracle.RangeQuery(q.query, q.eps);
    case service::QueryKind::kKnn:
      return oracle.Knn(q.query, q.k);
    case service::QueryKind::kLongRange:
      return oracle.LongRangeQuery(q.query, q.eps);
  }
  return Status::InvalidArgument("unknown kind");
}

Result<std::vector<core::Match>> RunOnSharded(const ShardedEngine& sharded,
                                              const StressQuery& q) {
  switch (q.kind) {
    case service::QueryKind::kRange:
      return sharded.RangeQuery(q.query, q.eps);
    case service::QueryKind::kKnn:
      return sharded.Knn(q.query, q.k);
    case service::QueryKind::kLongRange:
      return sharded.LongRangeQuery(q.query, q.eps);
  }
  return Status::InvalidArgument("unknown kind");
}

TEST(ShardStressTest, ConcurrentMixedWorkloadMatchesSingleEngineOracle) {
  const auto corpus = StressCorpus();

  auto oracle_engine = core::SearchEngine::Create(StressEngineConfig());
  ASSERT_TRUE(oracle_engine.ok());
  for (const seq::TimeSeries& series : corpus) {
    ASSERT_TRUE((*oracle_engine)->AddSeries(series.name, series.values).ok());
  }
  const std::vector<StressQuery> workload = MakeWorkload(**oracle_engine);

  // Single-threaded oracle answers, computed before any concurrency exists.
  std::vector<Result<std::vector<core::Match>>> oracle;
  oracle.reserve(workload.size());
  for (const StressQuery& q : workload) {
    oracle.push_back(RunOnOracle(**oracle_engine, q));
  }

  ShardedEngineConfig config;
  config.engine = StressEngineConfig();
  config.num_shards = kShards;
  config.fanout_workers = kFanoutWorkers;
  auto sharded = ShardedEngine::Create(config);
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE((*sharded)->BulkBuild(corpus).ok());

  // kClients threads hammer the sharded engine concurrently, each over a
  // strided slice of the workload, twice (the second pass runs against a
  // warm pool and interleaves with first-pass stragglers).
  std::vector<std::vector<Result<std::vector<core::Match>>>> got(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([c, &got, &workload, &sharded] {
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t i = c; i < workload.size(); i += kClients) {
          got[c].push_back(RunOnSharded(**sharded, workload[i]));
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (std::size_t c = 0; c < kClients; ++c) {
    std::size_t slot = 0;
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t i = c; i < workload.size(); i += kClients, ++slot) {
        const auto& want = oracle[i];
        const auto& have = got[c][slot];
        ASSERT_TRUE(want.ok()) << "oracle query " << i;
        ASSERT_TRUE(have.ok())
            << "query " << i << ": " << have.status().ToString();
        ASSERT_EQ(have->size(), want->size()) << "query " << i;
        for (std::size_t m = 0; m < want->size(); ++m) {
          EXPECT_EQ((*have)[m].record, (*want)[m].record)
              << "query " << i << " match " << m;
          EXPECT_EQ((*have)[m].distance, (*want)[m].distance)
              << "query " << i << " match " << m;
        }
      }
    }
  }

  // Every sub-query was admitted (possibly after FanOut retries) and served.
  const service::ServiceMetrics metrics = (*sharded)->FanoutStats();
  EXPECT_EQ(metrics.served, 2 * workload.size() * kShards);
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_EQ(metrics.timed_out, 0u);

  // No pin leaked and no frame corrupted in any shard's private pool.
  for (std::uint32_t i = 0; i < (*sharded)->num_shards(); ++i) {
    EXPECT_TRUE((*sharded)->shard(i).pool().AuditPins().ok());
  }
}

TEST(ShardStressTest, RepeatedRoundsKeepShardPoolsConsistent) {
  const auto corpus = StressCorpus();
  auto oracle_engine = core::SearchEngine::Create(StressEngineConfig());
  ASSERT_TRUE(oracle_engine.ok());
  for (const seq::TimeSeries& series : corpus) {
    ASSERT_TRUE((*oracle_engine)->AddSeries(series.name, series.values).ok());
  }
  const std::vector<StressQuery> workload = MakeWorkload(**oracle_engine);

  // The engine (and its fan-out pool) is torn down and rebuilt each round
  // while clients are strictly scoped inside the round: destructor-ordering
  // and shutdown races surface here.
  for (int round = 0; round < 3; ++round) {
    ShardedEngineConfig config;
    config.engine = StressEngineConfig();
    config.num_shards = kShards;
    config.fanout_workers = 4;
    auto sharded = ShardedEngine::Create(config);
    ASSERT_TRUE(sharded.ok());
    ASSERT_TRUE((*sharded)->BulkBuild(corpus).ok());

    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < 4; ++c) {
      clients.emplace_back([c, &workload, &sharded] {
        for (std::size_t i = c; i < workload.size(); i += 4) {
          EXPECT_TRUE(RunOnSharded(**sharded, workload[i]).ok());
        }
      });
    }
    for (std::thread& t : clients) t.join();
    for (std::uint32_t i = 0; i < (*sharded)->num_shards(); ++i) {
      EXPECT_TRUE((*sharded)->shard(i).pool().AuditPins().ok());
    }
  }
}

}  // namespace
}  // namespace tsss::shard
