// Shard-map unit tests: deterministic assignment, encode/parse round trips,
// file persistence, and — per the fuzz-hardened parser conventions — clean
// Corruption statuses (never UB, never an unbounded allocation) for every
// malformed or hostile input shape.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "tsss/shard/shard_map.h"

namespace tsss::shard {
namespace {

ShardMap SampleMap(ShardScheme scheme, std::uint64_t series,
                   std::uint32_t shards) {
  return BuildShardMap(scheme, series, shards);
}

TEST(ShardMapTest, AssignShardIsDeterministicAndInRange) {
  for (const ShardScheme scheme :
       {ShardScheme::kHash, ShardScheme::kRoundRobin}) {
    for (std::uint32_t shards : {1u, 2u, 4u, 7u}) {
      for (storage::SeriesId g = 0; g < 100; ++g) {
        const std::uint32_t a = AssignShard(scheme, g, shards);
        EXPECT_LT(a, shards);
        EXPECT_EQ(a, AssignShard(scheme, g, shards));
      }
    }
  }
  // Single shard short-circuits regardless of scheme.
  EXPECT_EQ(AssignShard(ShardScheme::kHash, 12345, 1), 0u);
}

TEST(ShardMapTest, RoundRobinStripes) {
  const ShardMap map = SampleMap(ShardScheme::kRoundRobin, 8, 4);
  for (storage::SeriesId g = 0; g < 8; ++g) {
    EXPECT_EQ(map.series[g].shard, g % 4);
    EXPECT_EQ(map.series[g].local_id, g / 4);
  }
}

TEST(ShardMapTest, HashSpreadsSeriesAcrossShards) {
  const ShardMap map = SampleMap(ShardScheme::kHash, 64, 4);
  const std::vector<std::uint64_t> counts = map.SeriesPerShard();
  ASSERT_EQ(counts.size(), 4u);
  for (std::uint64_t c : counts) EXPECT_GT(c, 0u);
}

TEST(ShardMapTest, LocalIdsAreDensePerShardInGlobalOrder) {
  const ShardMap map = SampleMap(ShardScheme::kHash, 100, 3);
  std::vector<storage::SeriesId> next(3, 0);
  for (const ShardAssignment& a : map.series) {
    EXPECT_EQ(a.local_id, next[a.shard]++);
  }
}

TEST(ShardMapTest, EncodeParseRoundTrip) {
  for (const ShardScheme scheme :
       {ShardScheme::kHash, ShardScheme::kRoundRobin}) {
    const ShardMap map = SampleMap(scheme, 17, 4);
    std::istringstream in(EncodeShardMap(map));
    auto parsed = ParseShardMap(in);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->num_shards, map.num_shards);
    EXPECT_EQ(parsed->scheme, map.scheme);
    ASSERT_EQ(parsed->series.size(), map.series.size());
    for (std::size_t g = 0; g < map.series.size(); ++g) {
      EXPECT_EQ(parsed->series[g].shard, map.series[g].shard);
      EXPECT_EQ(parsed->series[g].local_id, map.series[g].local_id);
    }
  }
}

TEST(ShardMapTest, EmptyMapRoundTrips) {
  const ShardMap map = SampleMap(ShardScheme::kHash, 0, 2);
  std::istringstream in(EncodeShardMap(map));
  auto parsed = ParseShardMap(in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_shards, 2u);
  EXPECT_TRUE(parsed->series.empty());
}

TEST(ShardMapTest, SaveLoadRoundTrip) {
  const std::string dir =
      ::testing::TempDir() + "/tsss_shard_map_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/shard_map.tsss";

  const ShardMap map = SampleMap(ShardScheme::kRoundRobin, 9, 3);
  ASSERT_TRUE(SaveShardMap(path, map).ok());
  auto loaded = LoadShardMap(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->series.size(), 9u);
  EXPECT_EQ(loaded->num_shards, 3u);
  std::filesystem::remove_all(dir);
}

TEST(ShardMapTest, LoadMissingFileIsNotFound) {
  auto loaded = LoadShardMap(::testing::TempDir() + "/tsss_no_such_map.tsss");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(ShardMapTest, AssignmentRangeChecksGlobalId) {
  const ShardMap map = SampleMap(ShardScheme::kHash, 4, 2);
  EXPECT_TRUE(map.Assignment(3).ok());
  auto bad = map.Assignment(4);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

// --- hostile inputs: every one must come back as clean Corruption ---

Status ParseString(const std::string& text) {
  std::istringstream in(text);
  return ParseShardMap(in).status();
}

void ExpectCorruption(const std::string& text) {
  const Status s = ParseString(text);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << "input:\n"
                                               << text << "\ngot: "
                                               << s.ToString();
}

TEST(ShardMapTest, RejectsWrongVersionLine) {
  ExpectCorruption("");
  ExpectCorruption("tsss-shard-map-v0\nshards 1\nscheme 0\nseries 0\n");
  ExpectCorruption("tsss-engine-meta-v1\nshards 1\nscheme 0\nseries 0\n");
}

TEST(ShardMapTest, RejectsMalformedCounts) {
  // Zero or absurd shard counts.
  ExpectCorruption("tsss-shard-map-v1\nshards 0\nscheme 0\nseries 0\n");
  ExpectCorruption("tsss-shard-map-v1\nshards 5000\nscheme 0\nseries 0\n");
  // Negative, non-numeric, overflowing, or hostile-huge values. None of
  // these may wrap, crash, or drive a large allocation.
  ExpectCorruption("tsss-shard-map-v1\nshards -1\nscheme 0\nseries 0\n");
  ExpectCorruption("tsss-shard-map-v1\nshards two\nscheme 0\nseries 0\n");
  ExpectCorruption(
      "tsss-shard-map-v1\nshards 99999999999999999999999\nscheme 0\n"
      "series 0\n");
  ExpectCorruption(
      "tsss-shard-map-v1\nshards 2\nscheme 0\nseries 18446744073709551615\n");
  ExpectCorruption("tsss-shard-map-v1\nshards 2\nscheme 7\nseries 0\n");
}

TEST(ShardMapTest, RejectsMissingOrMisnamedKeys) {
  ExpectCorruption("tsss-shard-map-v1\n");
  ExpectCorruption("tsss-shard-map-v1\nshards 2\n");
  ExpectCorruption("tsss-shard-map-v1\nshardz 2\nscheme 0\nseries 0\n");
  ExpectCorruption("tsss-shard-map-v1\nshards 2\nscheme 0\nseries\n");
}

TEST(ShardMapTest, RejectsMalformedRows) {
  const std::string header = "tsss-shard-map-v1\nshards 2\nscheme 1\n";
  // Truncated table.
  ExpectCorruption(header + "series 2\n0 0 0\n");
  // Rows out of order.
  ExpectCorruption(header + "series 2\n1 1 0\n0 0 0\n");
  // Shard id out of range.
  ExpectCorruption(header + "series 1\n0 2 0\n");
  // Local ids not dense within their shard.
  ExpectCorruption(header + "series 2\n0 0 0\n1 0 5\n");
  ExpectCorruption(header + "series 1\n0 0 1\n");
  // Trailing garbage after a well-formed table.
  ExpectCorruption(header + "series 1\n0 0 0\nextra\n");
}

TEST(ShardMapTest, ParsesMaximallyNestedValidInput) {
  // A valid 2-shard map exercising both shards — the happy path through the
  // same validation branches the hostile cases trip.
  std::istringstream in(
      "tsss-shard-map-v1\nshards 2\nscheme 1\nseries 4\n"
      "0 0 0\n1 1 0\n2 0 1\n3 1 1\n");
  auto parsed = ParseShardMap(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->series[2].shard, 0u);
  EXPECT_EQ(parsed->series[2].local_id, 1u);
}

}  // namespace
}  // namespace tsss::shard
