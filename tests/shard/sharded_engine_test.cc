// ShardedEngine correctness: every sharded answer must be bit-identical to
// the single-engine oracle over the same corpus (range, k-NN, long-range),
// the summed per-shard explain waterfall must still satisfy the
// explain_accounted() identity, and a persisted sharded index must survive a
// Checkpoint/Open round trip — including rejecting tampered shard maps.

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/core/engine.h"
#include "tsss/obs/explain.h"
#include "tsss/seq/stock_generator.h"
#include "tsss/seq/window.h"
#include "tsss/shard/sharded_engine.h"

namespace tsss::shard {
namespace {

constexpr std::size_t kWindow = 16;

core::EngineConfig SmallEngineConfig() {
  core::EngineConfig config;
  config.window = kWindow;
  config.reduced_dim = 4;
  config.tree.max_entries = 8;
  config.buffer_pool_pages = 64;
  config.cold_cache_per_query = false;
  return config;
}

std::vector<seq::TimeSeries> MakeCorpus(std::size_t companies = 16,
                                        std::size_t values = 256) {
  seq::StockMarketConfig market;
  market.num_companies = companies;
  market.values_per_company = values;
  market.seed = 4242;
  return seq::GenerateStockMarket(market);
}

std::unique_ptr<core::SearchEngine> MakeOracle(
    const std::vector<seq::TimeSeries>& corpus) {
  auto engine = core::SearchEngine::Create(SmallEngineConfig());
  EXPECT_TRUE(engine.ok());
  for (const seq::TimeSeries& series : corpus) {
    EXPECT_TRUE((*engine)->AddSeries(series.name, series.values).ok());
  }
  return std::move(engine).value();
}

std::unique_ptr<ShardedEngine> MakeSharded(
    const std::vector<seq::TimeSeries>& corpus, std::uint32_t shards,
    ShardScheme scheme = ShardScheme::kHash) {
  ShardedEngineConfig config;
  config.engine = SmallEngineConfig();
  config.num_shards = shards;
  config.scheme = scheme;
  auto sharded = ShardedEngine::Create(config);
  EXPECT_TRUE(sharded.ok());
  EXPECT_TRUE((*sharded)->BulkBuild(corpus).ok());
  return std::move(sharded).value();
}

/// Bit-identical: same records in the same order with the exact same
/// distances and transforms (the verification arithmetic runs on the same
/// window bytes either way, so == is the right comparison, not near).
void ExpectBitIdentical(const Result<std::vector<core::Match>>& got,
                        const Result<std::vector<core::Match>>& oracle,
                        const std::string& label) {
  ASSERT_TRUE(got.ok()) << label << ": " << got.status().ToString();
  ASSERT_TRUE(oracle.ok()) << label << ": " << oracle.status().ToString();
  ASSERT_EQ(got->size(), oracle->size()) << label;
  for (std::size_t i = 0; i < oracle->size(); ++i) {
    EXPECT_EQ((*got)[i].record, (*oracle)[i].record) << label << " #" << i;
    EXPECT_EQ((*got)[i].series, (*oracle)[i].series) << label << " #" << i;
    EXPECT_EQ((*got)[i].offset, (*oracle)[i].offset) << label << " #" << i;
    EXPECT_EQ((*got)[i].distance, (*oracle)[i].distance) << label << " #" << i;
    EXPECT_EQ((*got)[i].transform.scale, (*oracle)[i].transform.scale)
        << label << " #" << i;
    EXPECT_EQ((*got)[i].transform.offset, (*oracle)[i].transform.offset)
        << label << " #" << i;
  }
}

TEST(ShardedEngineTest, RangeQueriesBitIdenticalToSingleEngine) {
  const auto corpus = MakeCorpus();
  auto oracle = MakeOracle(corpus);
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    auto sharded = MakeSharded(corpus, shards);
    EXPECT_EQ(sharded->num_indexed_windows(),
              oracle->num_indexed_windows());
    Rng rng(99);
    for (std::size_t q = 0; q < 12; ++q) {
      auto window = oracle->ReadWindow(
          seq::MakeRecordId(static_cast<storage::SeriesId>(q % corpus.size()),
                            static_cast<std::uint32_t>((q * 17) % 128)));
      ASSERT_TRUE(window.ok());
      for (double& v : *window) v += rng.Uniform(-0.5, 0.5);
      const double eps = 4.0 + rng.Uniform(0.0, 4.0);
      ExpectBitIdentical(sharded->RangeQuery(*window, eps),
                         oracle->RangeQuery(*window, eps),
                         "range shards=" + std::to_string(shards) + " q=" +
                             std::to_string(q));
    }
  }
}

TEST(ShardedEngineTest, KnnBitIdenticalToSingleEngine) {
  const auto corpus = MakeCorpus();
  auto oracle = MakeOracle(corpus);
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    auto sharded = MakeSharded(corpus, shards);
    for (std::size_t q = 0; q < 12; ++q) {
      auto window = oracle->ReadWindow(
          seq::MakeRecordId(static_cast<storage::SeriesId>(q % corpus.size()),
                            static_cast<std::uint32_t>((q * 31) % 128)));
      ASSERT_TRUE(window.ok());
      const std::size_t k = 1 + q % 9;
      ExpectBitIdentical(sharded->Knn(*window, k), oracle->Knn(*window, k),
                         "knn shards=" + std::to_string(shards) + " k=" +
                             std::to_string(k));
    }
  }
}

TEST(ShardedEngineTest, KnnEdgeCases) {
  const auto corpus = MakeCorpus(4, 64);
  auto oracle = MakeOracle(corpus);
  auto sharded = MakeSharded(corpus, 4);
  auto window = oracle->ReadWindow(seq::MakeRecordId(0, 0));
  ASSERT_TRUE(window.ok());

  // k == 0 is an empty answer, k beyond the corpus returns everything.
  ExpectBitIdentical(sharded->Knn(*window, 0), oracle->Knn(*window, 0),
                     "knn k=0");
  ExpectBitIdentical(sharded->Knn(*window, 100000),
                     oracle->Knn(*window, 100000), "knn k=all");

  // Self-match anchor: the window itself is its own nearest neighbour at
  // (numerically) zero distance — a = 1, b = 0 is admissible.
  auto self = sharded->Knn(*window, 1);
  ASSERT_TRUE(self.ok());
  ASSERT_EQ(self->size(), 1u);
  EXPECT_EQ((*self)[0].record, seq::MakeRecordId(0, 0));
  EXPECT_NEAR((*self)[0].distance, 0.0, 1e-9);
}

TEST(ShardedEngineTest, LongRangeBitIdenticalToSingleEngine) {
  const auto corpus = MakeCorpus();
  auto oracle = MakeOracle(corpus);
  for (const std::uint32_t shards : {2u, 4u}) {
    auto sharded = MakeSharded(corpus, shards);
    Rng rng(7);
    for (std::size_t q = 0; q < 8; ++q) {
      const auto series = static_cast<storage::SeriesId>(q % corpus.size());
      geom::Vec query(3 * kWindow);
      for (std::size_t j = 0; j < query.size(); ++j) {
        query[j] = corpus[series].values[(q * 11) % 64 + j];
      }
      const double eps = 8.0 + rng.Uniform(0.0, 8.0);
      ExpectBitIdentical(sharded->LongRangeQuery(query, eps),
                         oracle->LongRangeQuery(query, eps),
                         "long shards=" + std::to_string(shards) + " q=" +
                             std::to_string(q));
    }
  }
}

TEST(ShardedEngineTest, MergedExplainWaterfallStaysAccounted) {
  const auto corpus = MakeCorpus();
  auto oracle = MakeOracle(corpus);
  auto sharded = MakeSharded(corpus, 4);
  auto window = oracle->ReadWindow(seq::MakeRecordId(3, 40));
  ASSERT_TRUE(window.ok());

  core::QueryStats stats;
  auto matches = sharded->RangeQuery(*window, 6.0, {}, &stats);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(stats.matches, matches->size());

  auto merged = sharded->ExplainLast();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(obs::explain_accounted(*merged));
  EXPECT_EQ(merged->kind, "range");
  EXPECT_EQ(merged->matches, matches->size());
  EXPECT_EQ(merged->entries_tested, stats.telemetry.entries_tested);
  // The merged report covers the whole partitioned index.
  EXPECT_EQ(merged->indexed_windows, sharded->num_indexed_windows());

  // Same identity for the k-NN and long-range walks.
  ASSERT_TRUE(sharded->Knn(*window, 5).ok());
  merged = sharded->ExplainLast();
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(obs::explain_accounted(*merged));
  EXPECT_EQ(merged->kind, "knn");

  geom::Vec long_query(3 * kWindow);
  for (std::size_t j = 0; j < long_query.size(); ++j) {
    long_query[j] = corpus[1].values[j];
  }
  ASSERT_TRUE(sharded->LongRangeQuery(long_query, 10.0).ok());
  merged = sharded->ExplainLast();
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(obs::explain_accounted(*merged));
  EXPECT_EQ(merged->kind, "long_range");
}

TEST(ShardedEngineTest, StatsSumAcrossShardsMatchSingleEngineCandidates) {
  const auto corpus = MakeCorpus();
  auto oracle = MakeOracle(corpus);
  auto sharded = MakeSharded(corpus, 4);
  auto window = oracle->ReadWindow(seq::MakeRecordId(5, 20));
  ASSERT_TRUE(window.ok());

  core::QueryStats sharded_stats;
  core::QueryStats oracle_stats;
  ASSERT_TRUE(sharded->RangeQuery(*window, 6.0, {}, &sharded_stats).ok());
  ASSERT_TRUE(oracle->RangeQuery(*window, 6.0, {}, &oracle_stats).ok());
  EXPECT_EQ(sharded_stats.matches, oracle_stats.matches);
  // Trees differ in shape, but the verified-candidate funnel is a property
  // of the indexed set + reducer, not the partitioning: every window within
  // reach of the query line is expanded exactly once either way.
  EXPECT_EQ(sharded_stats.candidates, oracle_stats.candidates);
}

TEST(ShardedEngineTest, EmptyAndUnevenShardsAnswerCorrectly) {
  // 2 series over 4 shards: at least two shards are empty.
  const auto corpus = MakeCorpus(2, 128);
  auto oracle = MakeOracle(corpus);
  auto sharded = MakeSharded(corpus, 4, ShardScheme::kRoundRobin);
  auto window = oracle->ReadWindow(seq::MakeRecordId(1, 10));
  ASSERT_TRUE(window.ok());
  ExpectBitIdentical(sharded->RangeQuery(*window, 8.0),
                     oracle->RangeQuery(*window, 8.0), "range empty-shards");
  ExpectBitIdentical(sharded->Knn(*window, 6), oracle->Knn(*window, 6),
                     "knn empty-shards");
}

TEST(ShardedEngineTest, AddSeriesRoutesThroughShardMap) {
  const auto corpus = MakeCorpus(6, 128);
  auto oracle = MakeOracle(corpus);
  ShardedEngineConfig config;
  config.engine = SmallEngineConfig();
  config.num_shards = 3;
  auto sharded = ShardedEngine::Create(config);
  ASSERT_TRUE(sharded.ok());
  for (std::size_t g = 0; g < corpus.size(); ++g) {
    auto id = (*sharded)->AddSeries(corpus[g].name, corpus[g].values);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, g);  // global ids follow insertion order
  }
  EXPECT_EQ((*sharded)->total_series(), corpus.size());

  auto window = oracle->ReadWindow(seq::MakeRecordId(2, 30));
  ASSERT_TRUE(window.ok());
  ExpectBitIdentical((*sharded)->RangeQuery(*window, 6.0),
                     oracle->RangeQuery(*window, 6.0), "range add-series");

  // The global directory resolves names and values across shards.
  for (std::size_t g = 0; g < corpus.size(); ++g) {
    auto name = (*sharded)->SeriesName(static_cast<storage::SeriesId>(g));
    ASSERT_TRUE(name.ok());
    EXPECT_EQ(*name, corpus[g].name);
    auto found = (*sharded)->FindSeries(corpus[g].name);
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(*found, g);
  }
}

class ShardedPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/tsss_sharded_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ShardedPersistenceTest, CheckpointOpenRoundTripsAnswers) {
  const auto corpus = MakeCorpus(8, 128);
  auto oracle = MakeOracle(corpus);
  ShardedEngineConfig config;
  config.engine = SmallEngineConfig();
  config.engine.storage_dir = dir_;
  config.num_shards = 3;
  auto built = ShardedEngine::Create(config);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_TRUE((*built)->BulkBuild(corpus).ok());
  ASSERT_TRUE((*built)->Checkpoint().ok());
  built->reset();

  // The shard map sits next to the per-shard engine metadata.
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/shard_map.tsss"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/shard-0/engine.meta"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/shard-2/engine.meta"));

  auto reopened = ShardedEngine::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_shards(), 3u);
  EXPECT_EQ((*reopened)->total_series(), corpus.size());
  // The facade's logical config comes back from the shards' engine.meta
  // (tools resolve query windows through it).
  EXPECT_EQ((*reopened)->engine_config().window, kWindow);
  EXPECT_EQ((*reopened)->engine_config().storage_dir, dir_);

  auto window = oracle->ReadWindow(seq::MakeRecordId(4, 50));
  ASSERT_TRUE(window.ok());
  ExpectBitIdentical((*reopened)->RangeQuery(*window, 6.0),
                     oracle->RangeQuery(*window, 6.0), "range reopened");
  ExpectBitIdentical((*reopened)->Knn(*window, 4), oracle->Knn(*window, 4),
                     "knn reopened");
}

TEST_F(ShardedPersistenceTest, OpenRejectsTamperedShardMap) {
  const auto corpus = MakeCorpus(6, 64);
  ShardedEngineConfig config;
  config.engine = SmallEngineConfig();
  config.engine.storage_dir = dir_;
  config.num_shards = 2;
  auto built = ShardedEngine::Create(config);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE((*built)->BulkBuild(corpus).ok());
  ASSERT_TRUE((*built)->Checkpoint().ok());
  built->reset();

  // Hostile rewrite: a map that disagrees with the shard datasets (all six
  // series claimed by shard 0) must be caught, not silently mis-routed.
  {
    std::ofstream out(dir_ + "/shard_map.tsss", std::ios::trunc);
    out << "tsss-shard-map-v1\nshards 2\nscheme 0\nseries 6\n"
           "0 0 0\n1 0 1\n2 0 2\n3 0 3\n4 0 4\n5 0 5\n";
  }
  auto reopened = ShardedEngine::Open(dir_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);

  // Outright garbage fails in the parser with the same clean status.
  {
    std::ofstream out(dir_ + "/shard_map.tsss", std::ios::trunc);
    out << "not a shard map";
  }
  reopened = ShardedEngine::Open(dir_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);

  // A missing map is NotFound (distinct from corruption: nothing to trust).
  std::filesystem::remove(dir_ + "/shard_map.tsss");
  reopened = ShardedEngine::Open(dir_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kNotFound);
}

TEST(ShardedEngineTest, RejectsZeroShards) {
  ShardedEngineConfig config;
  config.engine = SmallEngineConfig();
  config.num_shards = 0;
  auto sharded = ShardedEngine::Create(config);
  ASSERT_FALSE(sharded.ok());
  EXPECT_EQ(sharded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedEngineTest, FanoutPoolCountsSubQueries) {
  const auto corpus = MakeCorpus(4, 64);
  auto sharded = MakeSharded(corpus, 4);
  auto window = sharded->SeriesValues(0);
  ASSERT_TRUE(window.ok());
  ASSERT_TRUE(sharded->RangeQuery(window->subspan(0, kWindow), 5.0).ok());
  const service::ServiceMetrics metrics = sharded->FanoutStats();
  // One logical query = one sub-query per shard.
  EXPECT_EQ(metrics.submitted, 4u);
  EXPECT_EQ(metrics.served, 4u);
  EXPECT_EQ(metrics.rejected, 0u);

  // Per-shard pool hit rates are exposed for the scaling benchmark.
  const std::vector<ShardInfo> infos = sharded->ShardInfos();
  ASSERT_EQ(infos.size(), 4u);
  for (const ShardInfo& info : infos) {
    EXPECT_GE(info.pool_hit_rate, 0.0);
    EXPECT_LE(info.pool_hit_rate, 1.0);
  }
}

}  // namespace
}  // namespace tsss::shard
