// Tests for the reducer lower-bound self-check: every shipped reducer must
// pass it (otherwise pruning could cause false dismissals), and reducers
// violating contraction or linearity must be rejected.

#include <sstream>

#include <gtest/gtest.h>

#include "tsss/reduce/reducer.h"
#include "tsss/reduce/verify.h"

namespace tsss::reduce {
namespace {

TEST(ReducerVerifyTest, AllShippedReducersPass) {
  struct Case {
    ReducerKind kind;
    std::size_t input_dim;
    std::size_t output_dim;
  };
  const Case cases[] = {
      {ReducerKind::kIdentity, 16, 16}, {ReducerKind::kDft, 16, 4},
      {ReducerKind::kDft, 128, 6},      {ReducerKind::kPaa, 16, 4},
      {ReducerKind::kPaa, 128, 8},      {ReducerKind::kHaar, 16, 4},
      {ReducerKind::kHaar, 128, 16},
  };
  for (const Case& c : cases) {
    auto reducer = MakeReducer(c.kind, c.input_dim, c.output_dim);
    ASSERT_TRUE(reducer.ok()) << reducer.status();
    const Status s = VerifyLowerBound(**reducer, /*seed=*/1234, /*samples=*/200);
    EXPECT_TRUE(s.ok()) << (*reducer)->Name() << ": " << s;
  }
}

/// A deliberately broken reducer: keeps the first k coordinates but doubles
/// them, so reduced distances can exceed original distances.
class ExpandingReducer final : public Reducer {
 public:
  ExpandingReducer(std::size_t in, std::size_t out) : in_(in), out_(out) {}
  std::size_t input_dim() const override { return in_; }
  std::size_t output_dim() const override { return out_; }
  void Reduce(std::span<const double> in, std::span<double> out) const override {
    for (std::size_t i = 0; i < out_; ++i) out[i] = 2.0 * in[i];
  }
  std::string Name() const override { return "expanding(broken)"; }

 private:
  std::size_t in_;
  std::size_t out_;
};

/// Nonlinear reducer: squares each kept coordinate. Linear queries cannot be
/// mapped through it.
class SquaringReducer final : public Reducer {
 public:
  SquaringReducer(std::size_t in, std::size_t out) : in_(in), out_(out) {}
  std::size_t input_dim() const override { return in_; }
  std::size_t output_dim() const override { return out_; }
  void Reduce(std::span<const double> in, std::span<double> out) const override {
    // Bounded so the squares stay small enough to pass contraction and fail
    // only the linearity leg.
    for (std::size_t i = 0; i < out_; ++i) out[i] = 1e-4 * in[i] * in[i];
  }
  std::string Name() const override { return "squaring(broken)"; }

 private:
  std::size_t in_;
  std::size_t out_;
};

TEST(ReducerVerifyTest, RejectsNonContractiveReducer) {
  const ExpandingReducer broken(8, 4);
  const Status s = VerifyLowerBound(broken, /*seed=*/99, /*samples=*/100);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("not contractive"), std::string::npos) << s;
}

TEST(ReducerVerifyTest, RejectsNonLinearReducer) {
  const SquaringReducer broken(8, 4);
  const Status s = VerifyLowerBound(broken, /*seed=*/99, /*samples=*/100);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(ReducerVerifyTest, DeterministicForFixedSeed) {
  auto reducer = MakeReducer(ReducerKind::kPaa, 32, 8);
  ASSERT_TRUE(reducer.ok());
  EXPECT_EQ(VerifyLowerBound(**reducer, 7, 50).ToString(),
            VerifyLowerBound(**reducer, 7, 50).ToString());
}

}  // namespace
}  // namespace tsss::reduce
