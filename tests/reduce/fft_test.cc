#include "tsss/reduce/fft.h"

#include <cmath>
#include <complex>
#include <vector>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/reduce/dft.h"

namespace tsss::reduce {
namespace {

using Complex = std::complex<double>;

std::vector<Complex> NaiveDft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * M_PI * static_cast<double>(j * k) /
                           static_cast<double>(n);
      acc += x[j] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<Complex> data(3);
  EXPECT_FALSE(Fft(data).ok());
  std::vector<Complex> empty;
  EXPECT_FALSE(Fft(empty).ok());
}

TEST(FftTest, SizeOneIsIdentity) {
  std::vector<Complex> data = {Complex(3.0, -1.0)};
  ASSERT_TRUE(Fft(data).ok());
  EXPECT_EQ(data[0], Complex(3.0, -1.0));
}

TEST(FftTest, MatchesNaiveDftRandom) {
  Rng rng(21);
  for (std::size_t n : {2u, 4u, 8u, 16u, 64u}) {
    std::vector<Complex> data(n);
    for (auto& c : data) c = Complex(rng.Uniform(-5, 5), rng.Uniform(-5, 5));
    const std::vector<Complex> expected = NaiveDft(data);
    ASSERT_TRUE(Fft(data).ok());
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(data[k].real(), expected[k].real(), 1e-8) << "n=" << n;
      EXPECT_NEAR(data[k].imag(), expected[k].imag(), 1e-8) << "n=" << n;
    }
  }
}

TEST(FftTest, InverseRoundTrips) {
  Rng rng(22);
  std::vector<Complex> data(128);
  for (auto& c : data) c = Complex(rng.Uniform(-5, 5), rng.Uniform(-5, 5));
  const std::vector<Complex> original = data;
  ASSERT_TRUE(Fft(data).ok());
  ASSERT_TRUE(InverseFft(data).ok());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-9);
  }
}

TEST(RealFftOrthonormalTest, ParsevalHolds) {
  Rng rng(23);
  std::vector<double> signal(64);
  for (auto& x : signal) x = rng.Uniform(-10, 10);
  auto spectrum = RealFftOrthonormal(signal);
  ASSERT_TRUE(spectrum.ok());
  double time_energy = 0.0;
  for (double x : signal) time_energy += x * x;
  double freq_energy = 0.0;
  for (const Complex& c : *spectrum) freq_energy += std::norm(c);
  EXPECT_NEAR(time_energy, freq_energy, 1e-8);
}

TEST(RealFftOrthonormalTest, AgreesWithDftReducer) {
  // The DftReducer's kept coefficients must equal the FFT spectrum's.
  Rng rng(24);
  const std::size_t n = 32;
  std::vector<double> signal(n);
  for (auto& x : signal) x = rng.Uniform(-10, 10);
  auto spectrum = RealFftOrthonormal(signal);
  ASSERT_TRUE(spectrum.ok());

  const DftReducer reducer(n, 3, 1);
  std::vector<double> reduced(6);
  reducer.Reduce(signal, reduced);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(reduced[2 * c], (*spectrum)[c + 1].real(), 1e-9);
    EXPECT_NEAR(reduced[2 * c + 1], (*spectrum)[c + 1].imag(), 1e-9);
  }
}

TEST(RealFftOrthonormalTest, ConjugateSymmetryOfRealSignals) {
  Rng rng(25);
  const std::size_t n = 16;
  std::vector<double> signal(n);
  for (auto& x : signal) x = rng.Uniform(-1, 1);
  auto spectrum = RealFftOrthonormal(signal);
  ASSERT_TRUE(spectrum.ok());
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_NEAR((*spectrum)[k].real(), (*spectrum)[n - k].real(), 1e-9);
    EXPECT_NEAR((*spectrum)[k].imag(), -(*spectrum)[n - k].imag(), 1e-9);
  }
}

}  // namespace
}  // namespace tsss::reduce
