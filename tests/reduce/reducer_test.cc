#include "tsss/reduce/reducer.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "tsss/common/rng.h"
#include "tsss/geom/vec.h"

namespace tsss::reduce {
namespace {

using geom::Vec;

TEST(MakeReducerTest, ValidatesIdentity) {
  EXPECT_TRUE(MakeReducer(ReducerKind::kIdentity, 8, 8).ok());
  EXPECT_TRUE(MakeReducer(ReducerKind::kIdentity, 8, 0).ok());
  EXPECT_FALSE(MakeReducer(ReducerKind::kIdentity, 8, 4).ok());
  EXPECT_FALSE(MakeReducer(ReducerKind::kIdentity, 0, 0).ok());
}

TEST(MakeReducerTest, ValidatesDft) {
  EXPECT_TRUE(MakeReducer(ReducerKind::kDft, 128, 6).ok());
  EXPECT_FALSE(MakeReducer(ReducerKind::kDft, 128, 5).ok());  // odd
  EXPECT_FALSE(MakeReducer(ReducerKind::kDft, 128, 0).ok());
  EXPECT_FALSE(MakeReducer(ReducerKind::kDft, 4, 8).ok());  // too many coeffs
}

TEST(MakeReducerTest, ValidatesPaa) {
  EXPECT_TRUE(MakeReducer(ReducerKind::kPaa, 100, 6).ok());
  EXPECT_FALSE(MakeReducer(ReducerKind::kPaa, 100, 0).ok());
  EXPECT_FALSE(MakeReducer(ReducerKind::kPaa, 100, 101).ok());
}

TEST(MakeReducerTest, ValidatesHaar) {
  EXPECT_TRUE(MakeReducer(ReducerKind::kHaar, 128, 6).ok());
  EXPECT_FALSE(MakeReducer(ReducerKind::kHaar, 100, 6).ok());  // not pow2
  EXPECT_FALSE(MakeReducer(ReducerKind::kHaar, 128, 0).ok());
  EXPECT_FALSE(MakeReducer(ReducerKind::kHaar, 128, 129).ok());
}

TEST(MakeReducerTest, NamesMentionParameters) {
  auto dft = MakeReducer(ReducerKind::kDft, 64, 6);
  ASSERT_TRUE(dft.ok());
  EXPECT_NE((*dft)->Name().find("dft"), std::string::npos);
  EXPECT_EQ(ReducerKindToString(ReducerKind::kPaa), "paa");
  EXPECT_EQ(ReducerKindToString(ReducerKind::kHaar), "haar");
  EXPECT_EQ(ReducerKindToString(ReducerKind::kIdentity), "identity");
  EXPECT_EQ(ReducerKindToString(ReducerKind::kDft), "dft");
}

TEST(IdentityReducerTest, Passthrough) {
  auto r = MakeReducer(ReducerKind::kIdentity, 4, 4);
  ASSERT_TRUE(r.ok());
  const Vec in = {1.0, -2.0, 3.0, 0.5};
  EXPECT_EQ((*r)->Apply(in), in);
}

TEST(DftReducerTest, PureToneConcentratesEnergy) {
  // A pure cos(2*pi*k*t/n) has all its energy in coefficient k.
  const std::size_t n = 64;
  auto r = MakeReducer(ReducerKind::kDft, n, 6);  // keeps k = 1, 2, 3
  ASSERT_TRUE(r.ok());
  Vec tone(n);
  for (std::size_t j = 0; j < n; ++j) {
    tone[j] = std::cos(2.0 * M_PI * 2.0 * static_cast<double>(j) /
                       static_cast<double>(n));
  }
  const Vec out = (*r)->Apply(tone);
  // Coefficient k=2 is slot (2*(2-1), 2*(2-1)+1) = out[2], out[3].
  const double e1 = out[0] * out[0] + out[1] * out[1];
  const double e2 = out[2] * out[2] + out[3] * out[3];
  const double e3 = out[4] * out[4] + out[5] * out[5];
  EXPECT_GT(e2, 1.0);
  EXPECT_NEAR(e1, 0.0, 1e-12);
  EXPECT_NEAR(e3, 0.0, 1e-12);
  // Orthonormal scaling + conjugate mirror: kept energy is half the total
  // (||tone||^2 = n/2, coefficient k and n-k each hold a quarter... check
  // numerically instead of deriving):
  EXPECT_NEAR(e2, geom::NormSquared(tone) / 2.0, 1e-9);
}

TEST(PaaReducerTest, SegmentMeansWithOrthonormalScaling) {
  auto r = MakeReducer(ReducerKind::kPaa, 4, 2);
  ASSERT_TRUE(r.ok());
  const Vec in = {1.0, 3.0, 5.0, 7.0};
  const Vec out = (*r)->Apply(in);
  // Segment sums (1+3) and (5+7), scaled by 1/sqrt(2).
  EXPECT_NEAR(out[0], 4.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(out[1], 12.0 / std::sqrt(2.0), 1e-12);
}

TEST(PaaReducerTest, UnevenSegments) {
  auto r = MakeReducer(ReducerKind::kPaa, 5, 2);  // segments of 3 and 2
  ASSERT_TRUE(r.ok());
  const Vec in = {1.0, 1.0, 1.0, 2.0, 2.0};
  const Vec out = (*r)->Apply(in);
  EXPECT_NEAR(out[0], 3.0 / std::sqrt(3.0), 1e-12);
  EXPECT_NEAR(out[1], 4.0 / std::sqrt(2.0), 1e-12);
}

TEST(HaarReducerTest, FullTransformIsIsometry) {
  auto r = MakeReducer(ReducerKind::kHaar, 8, 8);
  ASSERT_TRUE(r.ok());
  Rng rng(5);
  Vec in(8);
  for (auto& x : in) x = rng.Uniform(-10, 10);
  const Vec out = (*r)->Apply(in);
  EXPECT_NEAR(geom::NormSquared(out), geom::NormSquared(in), 1e-9);
}

TEST(HaarReducerTest, FirstCoefficientIsScaledAverage) {
  auto r = MakeReducer(ReducerKind::kHaar, 4, 1);
  ASSERT_TRUE(r.ok());
  const Vec in = {1.0, 2.0, 3.0, 4.0};
  const Vec out = (*r)->Apply(in);
  // Orthonormal Haar average coefficient: sum / sqrt(n).
  EXPECT_NEAR(out[0], 10.0 / 2.0, 1e-12);
}

class ReducerPropertyTest
    : public ::testing::TestWithParam<std::tuple<ReducerKind, std::size_t>> {};

TEST_P(ReducerPropertyTest, LinearityAndContraction) {
  const auto [kind, out_dim] = GetParam();
  const std::size_t n = 32;
  auto made = MakeReducer(kind, n, kind == ReducerKind::kIdentity ? n : out_dim);
  ASSERT_TRUE(made.ok()) << made.status();
  const Reducer& r = **made;

  Rng rng(1234 + static_cast<std::uint64_t>(out_dim));
  for (int trial = 0; trial < 50; ++trial) {
    Vec x(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = rng.Uniform(-20, 20);
      y[i] = rng.Uniform(-20, 20);
    }
    const double a = rng.Uniform(-4, 4);

    // Linearity: R(a*x + y) == a*R(x) + R(y).
    const Vec lhs = r.Apply(geom::Axpy(a, x, y));
    const Vec rhs = geom::Axpy(a, r.Apply(x), r.Apply(y));
    ASSERT_EQ(lhs.size(), rhs.size());
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_NEAR(lhs[i], rhs[i], 1e-8);
    }

    // Contraction: ||R(x)|| <= ||x|| and reduced distances lower-bound
    // original distances (the no-false-dismissal property).
    EXPECT_LE(geom::Norm(r.Apply(x)), geom::Norm(x) + 1e-9);
    EXPECT_LE(geom::Distance(r.Apply(x), r.Apply(y)),
              geom::Distance(x, y) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllReducers, ReducerPropertyTest,
    ::testing::Values(std::make_tuple(ReducerKind::kIdentity, std::size_t{32}),
                      std::make_tuple(ReducerKind::kDft, std::size_t{2}),
                      std::make_tuple(ReducerKind::kDft, std::size_t{6}),
                      std::make_tuple(ReducerKind::kDft, std::size_t{12}),
                      std::make_tuple(ReducerKind::kPaa, std::size_t{4}),
                      std::make_tuple(ReducerKind::kPaa, std::size_t{7}),
                      std::make_tuple(ReducerKind::kHaar, std::size_t{6}),
                      std::make_tuple(ReducerKind::kHaar, std::size_t{16})));

}  // namespace
}  // namespace tsss::reduce
