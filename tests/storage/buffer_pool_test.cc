#include "tsss/storage/buffer_pool.h"

#include <vector>

#include <gtest/gtest.h>

namespace tsss::storage {
namespace {

TEST(BufferPoolTest, NewPageIsPinnedAndWritable) {
  MemPageStore store;
  BufferPool pool(&store, 4);
  auto guard = pool.New();
  ASSERT_TRUE(guard.ok());
  guard->MutablePage().bytes[0] = 0x5A;
  EXPECT_EQ(guard->page().bytes[0], 0x5A);
}

TEST(BufferPoolTest, WriteBackOnEviction) {
  MemPageStore store;
  BufferPool pool(&store, 2);
  PageId first;
  {
    auto guard = pool.New();
    ASSERT_TRUE(guard.ok());
    first = guard->id();
    guard->MutablePage().bytes[10] = 0x42;
  }
  // Fill the pool past capacity to force eviction of `first`.
  for (int i = 0; i < 4; ++i) {
    auto guard = pool.New();
    ASSERT_TRUE(guard.ok());
  }
  Page raw;
  ASSERT_TRUE(store.Read(first, &raw).ok());
  EXPECT_EQ(raw.bytes[10], 0x42) << "dirty page lost on eviction";
}

TEST(BufferPoolTest, FetchRoundTripsThroughEviction) {
  MemPageStore store;
  BufferPool pool(&store, 2);
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    auto guard = pool.New();
    ASSERT_TRUE(guard.ok());
    guard->MutablePage().bytes[0] = static_cast<std::uint8_t>(i);
    ids.push_back(guard->id());
  }
  for (int i = 0; i < 8; ++i) {
    auto guard = pool.Fetch(ids[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->page().bytes[0], static_cast<std::uint8_t>(i));
  }
}

TEST(BufferPoolTest, HitsAndMissesAreCounted) {
  MemPageStore store;
  BufferPool pool(&store, 8);
  auto a = pool.New();
  ASSERT_TRUE(a.ok());
  const PageId id = a->id();
  a->Release();
  pool.ResetMetrics();

  ASSERT_TRUE(pool.Fetch(id).ok());  // hit (still cached)
  EXPECT_EQ(pool.metrics().hits, 1u);
  ASSERT_TRUE(pool.Clear().ok());
  ASSERT_TRUE(pool.Fetch(id).ok());  // miss after cold-cache clear
  EXPECT_EQ(pool.metrics().misses, 1u);
  EXPECT_EQ(pool.metrics().logical_reads, 2u);
}

TEST(BufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  MemPageStore store;
  BufferPool pool(&store, 2);
  auto pinned = pool.New();
  ASSERT_TRUE(pinned.ok());
  pinned->MutablePage().bytes[3] = 0x33;
  const PageId id = pinned->id();
  for (int i = 0; i < 6; ++i) {
    auto guard = pool.New();
    ASSERT_TRUE(guard.ok());
  }
  // The pinned frame must still be valid and hold its data.
  EXPECT_EQ(pinned->id(), id);
  EXPECT_EQ(pinned->page().bytes[3], 0x33);
}

TEST(BufferPoolTest, OverflowWhenEverythingPinned) {
  MemPageStore store;
  BufferPool pool(&store, 1);
  std::vector<Result<PageGuard>> guards;
  for (int i = 0; i < 3; ++i) {
    guards.push_back(pool.New());
    ASSERT_TRUE(guards.back().ok());
  }
  EXPECT_GT(pool.metrics().overflows, 0u);
  EXPECT_GT(pool.size(), pool.capacity());
}

TEST(BufferPoolTest, DeleteRemovesPage) {
  MemPageStore store;
  BufferPool pool(&store, 4);
  PageId id;
  {
    auto guard = pool.New();
    ASSERT_TRUE(guard.ok());
    id = guard->id();
  }
  ASSERT_TRUE(pool.Delete(id).ok());
  EXPECT_FALSE(pool.Fetch(id).ok());
}

TEST(BufferPoolTest, DeletePinnedPageFails) {
  MemPageStore store;
  BufferPool pool(&store, 4);
  auto guard = pool.New();
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(pool.Delete(guard->id()).code(), StatusCode::kFailedPrecondition);
}

TEST(BufferPoolTest, FlushAllPersistsWithoutEviction) {
  MemPageStore store;
  BufferPool pool(&store, 8);
  PageId id;
  {
    auto guard = pool.New();
    ASSERT_TRUE(guard.ok());
    id = guard->id();
    guard->MutablePage().bytes[1] = 0x11;
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  Page raw;
  ASSERT_TRUE(store.Read(id, &raw).ok());
  EXPECT_EQ(raw.bytes[1], 0x11);
}

TEST(BufferPoolTest, GuardMoveSemantics) {
  MemPageStore store;
  BufferPool pool(&store, 4);
  auto guard = pool.New();
  ASSERT_TRUE(guard.ok());
  PageGuard moved = std::move(*guard);
  EXPECT_TRUE(moved.valid());
  moved.Release();
  EXPECT_FALSE(moved.valid());
}

TEST(BufferPoolTest, ClearSkipsPinnedFrames) {
  MemPageStore store;
  BufferPool pool(&store, 4);
  auto pinned = pool.New();
  ASSERT_TRUE(pinned.ok());
  auto unpinned = pool.New();
  ASSERT_TRUE(unpinned.ok());
  unpinned->Release();
  ASSERT_TRUE(pool.Clear().ok());
  EXPECT_EQ(pool.size(), 1u);  // only the pinned frame remains
}

}  // namespace
}  // namespace tsss::storage
