// Tests for the buffer pool's opt-in per-page access profile: exact hit/miss
// tallies, eviction attribution, clear-on-enable semantics, and zero
// collection while disabled.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "tsss/storage/buffer_pool.h"

namespace tsss::storage {
namespace {

const PageAccessStats* FindPage(const std::vector<PageAccessStats>& profile,
                                PageId id) {
  for (const PageAccessStats& page : profile) {
    if (page.page == id) return &page;
  }
  return nullptr;
}

TEST(AccessProfileTest, DisabledByDefaultAndCollectsNothing) {
  MemPageStore store;
  BufferPool pool(&store, 8);
  EXPECT_FALSE(pool.access_profile_enabled());
  auto guard = pool.New();
  ASSERT_TRUE(guard.ok());
  EXPECT_TRUE(pool.AccessProfile().empty());
}

TEST(AccessProfileTest, TalliesHitsMissesAndAccesses) {
  MemPageStore store;
  BufferPool pool(&store, 8);
  PageId id;
  {
    auto guard = pool.New();
    ASSERT_TRUE(guard.ok());
    id = guard->id();
  }
  ASSERT_TRUE(pool.Clear().ok());  // force the next Fetch to miss

  pool.EnableAccessProfile(true);
  EXPECT_TRUE(pool.access_profile_enabled());
  { auto g = pool.Fetch(id); ASSERT_TRUE(g.ok()); }  // miss
  { auto g = pool.Fetch(id); ASSERT_TRUE(g.ok()); }  // hit
  { auto g = pool.Fetch(id); ASSERT_TRUE(g.ok()); }  // hit
  pool.EnableAccessProfile(false);

  const auto profile = pool.AccessProfile();
  const PageAccessStats* page = FindPage(profile, id);
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(page->accesses, 3u);
  EXPECT_EQ(page->misses, 1u);
  EXPECT_EQ(page->evictions, 0u);

  // Disabling keeps the tally readable but stops collection.
  { auto g = pool.Fetch(id); ASSERT_TRUE(g.ok()); }
  const auto profile_after = pool.AccessProfile();
  const PageAccessStats* after = FindPage(profile_after, id);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->accesses, 3u);
}

TEST(AccessProfileTest, EnablingClearsThePreviousTally) {
  MemPageStore store;
  BufferPool pool(&store, 8);
  PageId id;
  {
    auto guard = pool.New();
    ASSERT_TRUE(guard.ok());
    id = guard->id();
  }
  pool.EnableAccessProfile(true);
  { auto g = pool.Fetch(id); ASSERT_TRUE(g.ok()); }
  ASSERT_FALSE(pool.AccessProfile().empty());

  pool.EnableAccessProfile(true);  // re-enable = fresh profile
  EXPECT_TRUE(pool.AccessProfile().empty());
}

TEST(AccessProfileTest, AttributesEvictions) {
  MemPageStore store;
  // Capacity 2 with a single shard (sharding starts at 64): fetching a
  // working set of 4 pages must evict continuously.
  BufferPool pool(&store, 2);
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) {
    auto guard = pool.New();
    ASSERT_TRUE(guard.ok());
    ids.push_back(guard->id());
  }
  pool.EnableAccessProfile(true);
  for (int round = 0; round < 3; ++round) {
    for (PageId id : ids) {
      auto g = pool.Fetch(id);
      ASSERT_TRUE(g.ok());
    }
  }
  pool.EnableAccessProfile(false);

  const auto profile = pool.AccessProfile();
  std::uint64_t total_accesses = 0;
  std::uint64_t total_evictions = 0;
  for (const PageAccessStats& page : profile) {
    total_accesses += page.accesses;
    total_evictions += page.evictions;
  }
  EXPECT_EQ(total_accesses, 12u);
  // A 4-page working set cycling through a 2-frame pool evicts on nearly
  // every fetch; at minimum, far more than the pool could retain.
  EXPECT_GE(total_evictions, 8u);
}

TEST(AccessProfileTest, SortsByDescendingAccesses) {
  MemPageStore store;
  BufferPool pool(&store, 8);
  std::vector<PageId> ids;
  for (int i = 0; i < 3; ++i) {
    auto guard = pool.New();
    ASSERT_TRUE(guard.ok());
    ids.push_back(guard->id());
  }
  pool.EnableAccessProfile(true);
  for (int i = 0; i < 5; ++i) {
    auto g = pool.Fetch(ids[2]);
    ASSERT_TRUE(g.ok());
  }
  for (int i = 0; i < 2; ++i) {
    auto g = pool.Fetch(ids[0]);
    ASSERT_TRUE(g.ok());
  }
  {
    auto g = pool.Fetch(ids[1]);
    ASSERT_TRUE(g.ok());
  }
  pool.EnableAccessProfile(false);

  const auto profile = pool.AccessProfile();
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_EQ(profile[0].page, ids[2]);
  EXPECT_EQ(profile[0].accesses, 5u);
  EXPECT_EQ(profile[1].page, ids[0]);
  EXPECT_EQ(profile[2].page, ids[1]);
}

}  // namespace
}  // namespace tsss::storage
