#include "tsss/storage/file_page_store.h"

#include "tsss/storage/buffer_pool.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace tsss::storage {
namespace {

class FilePageStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/tsss_fps_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".pages";
    std::remove(path_.c_str());
    std::remove((path_ + ".meta").c_str());
  }

  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".meta").c_str());
  }

  std::string path_;
};

TEST_F(FilePageStoreTest, CreateWriteReadBack) {
  auto store = FilePageStore::Create(path_);
  ASSERT_TRUE(store.ok()) << store.status();
  const PageId id = (*store)->Allocate();
  Page page;
  page.bytes[0] = 0xAB;
  page.bytes[kPageSize - 1] = 0xCD;
  ASSERT_TRUE((*store)->Write(id, page).ok());
  Page out;
  ASSERT_TRUE((*store)->Read(id, &out).ok());
  EXPECT_EQ(out.bytes[0], 0xAB);
  EXPECT_EQ(out.bytes[kPageSize - 1], 0xCD);
}

TEST_F(FilePageStoreTest, PersistsAcrossReopen) {
  PageId id;
  {
    auto store = FilePageStore::Create(path_);
    ASSERT_TRUE(store.ok());
    id = (*store)->Allocate();
    (*store)->Allocate();  // a second page
    Page page;
    page.bytes[7] = 0x77;
    ASSERT_TRUE((*store)->Write(id, page).ok());
    ASSERT_TRUE((*store)->Sync().ok());
  }
  auto reopened = FilePageStore::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->num_live_pages(), 2u);
  Page out;
  ASSERT_TRUE((*reopened)->Read(id, &out).ok());
  EXPECT_EQ(out.bytes[7], 0x77);
}

TEST_F(FilePageStoreTest, FreeListSurvivesReopen) {
  PageId freed;
  {
    auto store = FilePageStore::Create(path_);
    ASSERT_TRUE(store.ok());
    freed = (*store)->Allocate();
    (*store)->Allocate();
    ASSERT_TRUE((*store)->Free(freed).ok());
    ASSERT_TRUE((*store)->Sync().ok());
  }
  auto reopened = FilePageStore::Open(path_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->num_live_pages(), 1u);
  // The freed page is recycled on the next allocation.
  EXPECT_EQ((*reopened)->Allocate(), freed);
}

TEST_F(FilePageStoreTest, DetectsOnDiskCorruption) {
  PageId id;
  {
    auto store = FilePageStore::Create(path_);
    ASSERT_TRUE(store.ok());
    id = (*store)->Allocate();
    Page page;
    page.bytes[100] = 0x42;
    ASSERT_TRUE((*store)->Write(id, page).ok());
    ASSERT_TRUE((*store)->Sync().ok());
  }
  // Flip one byte of the page on disk behind the store's back.
  {
    std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(id) * kPageSize + 100);
    const char evil = 0x43;
    file.write(&evil, 1);
  }
  auto reopened = FilePageStore::Open(path_);
  ASSERT_TRUE(reopened.ok());
  Page out;
  EXPECT_EQ((*reopened)->Read(id, &out).code(), StatusCode::kCorruption);
}

TEST_F(FilePageStoreTest, OpenMissingFileFails) {
  auto store = FilePageStore::Open(path_);
  EXPECT_FALSE(store.ok());
}

TEST_F(FilePageStoreTest, OpenRejectsTruncatedMeta) {
  {
    auto store = FilePageStore::Create(path_);
    ASSERT_TRUE(store.ok());
    (*store)->Allocate();
    ASSERT_TRUE((*store)->Sync().ok());
  }
  // Truncate the metadata file.
  std::filesystem::resize_file(path_ + ".meta", 10);
  auto reopened = FilePageStore::Open(path_);
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(FilePageStoreTest, FreshAndRecycledPagesAreZeroed) {
  auto store = FilePageStore::Create(path_);
  ASSERT_TRUE(store.ok());
  const PageId id = (*store)->Allocate();
  Page page;
  page.bytes.fill(0xFF);
  ASSERT_TRUE((*store)->Write(id, page).ok());
  ASSERT_TRUE((*store)->Free(id).ok());
  const PageId recycled = (*store)->Allocate();
  EXPECT_EQ(recycled, id);
  Page out;
  ASSERT_TRUE((*store)->Read(recycled, &out).ok());
  for (std::size_t i = 0; i < kPageSize; i += 256) EXPECT_EQ(out.bytes[i], 0);
}

TEST_F(FilePageStoreTest, MetricsCounted) {
  auto store = FilePageStore::Create(path_);
  ASSERT_TRUE(store.ok());
  const PageId id = (*store)->Allocate();
  Page page;
  ASSERT_TRUE((*store)->Write(id, page).ok());
  ASSERT_TRUE((*store)->Read(id, &page).ok());
  EXPECT_EQ((*store)->metrics().physical_writes, 1u);
  EXPECT_EQ((*store)->metrics().physical_reads, 1u);
}

TEST_F(FilePageStoreTest, DoubleFreeAndBadIdsRejected) {
  auto store = FilePageStore::Create(path_);
  ASSERT_TRUE(store.ok());
  const PageId id = (*store)->Allocate();
  ASSERT_TRUE((*store)->Free(id).ok());
  EXPECT_FALSE((*store)->Free(id).ok());
  Page out;
  EXPECT_FALSE((*store)->Read(id, &out).ok());
  EXPECT_FALSE((*store)->Read(999, &out).ok());
}


TEST_F(FilePageStoreTest, WorksUnderTheBufferPool) {
  // The full stack: pool eviction write-backs land in the file, survive a
  // reopen, and re-verify their checksums.
  std::vector<PageId> ids;
  {
    auto store = FilePageStore::Create(path_);
    ASSERT_TRUE(store.ok());
    BufferPool pool(store->get(), 2);  // tiny: constant eviction
    for (int i = 0; i < 12; ++i) {
      auto guard = pool.New();
      ASSERT_TRUE(guard.ok());
      guard->MutablePage().bytes[0] = static_cast<std::uint8_t>(i);
      ids.push_back(guard->id());
    }
    ASSERT_TRUE(pool.FlushAll().ok());
    ASSERT_TRUE((*store)->Sync().ok());
  }
  auto reopened = FilePageStore::Open(path_);
  ASSERT_TRUE(reopened.ok());
  BufferPool pool(reopened->get(), 4);
  for (int i = 0; i < 12; ++i) {
    auto guard = pool.Fetch(ids[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->page().bytes[0], static_cast<std::uint8_t>(i));
  }
}

}  // namespace
}  // namespace tsss::storage
