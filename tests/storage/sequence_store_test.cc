#include "tsss/storage/sequence_store.h"

#include <vector>

#include <gtest/gtest.h>

namespace tsss::storage {
namespace {

std::vector<double> Iota(std::size_t n, double start = 0.0) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = start + static_cast<double>(i);
  return v;
}

TEST(SequenceStoreTest, AddAndReadBack) {
  SequenceStore store;
  const SeriesId id = store.AddSeries(Iota(100));
  auto len = store.SeriesLength(id);
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(*len, 100u);
  auto values = store.SeriesValues(id);
  ASSERT_TRUE(values.ok());
  EXPECT_DOUBLE_EQ((*values)[42], 42.0);
}

TEST(SequenceStoreTest, MultipleSeriesPackedDensely) {
  SequenceStore store;
  store.AddSeries(Iota(10, 0.0));
  const SeriesId b = store.AddSeries(Iota(10, 100.0));
  auto values = store.SeriesValues(b);
  ASSERT_TRUE(values.ok());
  EXPECT_DOUBLE_EQ((*values)[0], 100.0);
  EXPECT_EQ(store.total_values(), 20u);
}

TEST(SequenceStoreTest, UnknownSeriesFails) {
  SequenceStore store;
  EXPECT_FALSE(store.SeriesLength(3).ok());
  EXPECT_FALSE(store.SeriesValues(3).ok());
}

TEST(SequenceStoreTest, ReadWindowCopiesAndCounts) {
  SequenceStore store;
  const SeriesId id = store.AddSeries(Iota(1000));
  std::vector<double> out(64);
  ASSERT_TRUE(store.ReadWindow(id, 100, out).ok());
  EXPECT_DOUBLE_EQ(out[0], 100.0);
  EXPECT_DOUBLE_EQ(out[63], 163.0);
  // Window [100, 164) lives entirely in page 0 (values 0..511).
  EXPECT_EQ(store.metrics().logical_reads, 1u);
}

TEST(SequenceStoreTest, WindowSpanningPagesCountsBoth) {
  SequenceStore store;
  const SeriesId id = store.AddSeries(Iota(1024));
  std::vector<double> out(64);
  ASSERT_TRUE(store.ReadWindow(id, 480, out).ok());  // 480..543 spans page 0|1
  EXPECT_EQ(store.metrics().logical_reads, 2u);
}

TEST(SequenceStoreTest, ReadWindowOutOfRangeFails) {
  SequenceStore store;
  const SeriesId id = store.AddSeries(Iota(50));
  std::vector<double> out(64);
  EXPECT_EQ(store.ReadWindow(id, 0, out).code(), StatusCode::kOutOfRange);
}

TEST(SequenceStoreTest, TotalPagesMatchesPaperArithmetic) {
  // 650,000 values x 8 bytes / 4 KiB ~= 1270 pages (the paper rounds to
  // "approximately 1300").
  SequenceStore store;
  for (int i = 0; i < 1000; ++i) store.AddSeries(std::vector<double>(650, 1.0));
  EXPECT_EQ(store.total_values(), 650000u);
  EXPECT_EQ(store.TotalPages(), (650000 + 511) / 512);
  EXPECT_NEAR(static_cast<double>(store.TotalPages()), 1300.0, 40.0);
}

TEST(SequenceStoreTest, RecordFullScanCountsAllPages) {
  SequenceStore store;
  store.AddSeries(Iota(2000));
  store.RecordFullScan();
  EXPECT_EQ(store.metrics().logical_reads, store.TotalPages());
  store.ResetMetrics();
  EXPECT_EQ(store.metrics().logical_reads, 0u);
}

TEST(SequenceStoreTest, AppendToLastSeries) {
  SequenceStore store;
  const SeriesId id = store.AddSeries(Iota(10));
  ASSERT_TRUE(store.AppendToSeries(id, Iota(5, 10.0)).ok());
  auto len = store.SeriesLength(id);
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(*len, 15u);
  auto values = store.SeriesValues(id);
  ASSERT_TRUE(values.ok());
  EXPECT_DOUBLE_EQ((*values)[14], 14.0);
}

TEST(SequenceStoreTest, AppendToEarlierSeriesRejected) {
  SequenceStore store;
  const SeriesId a = store.AddSeries(Iota(10));
  store.AddSeries(Iota(10));
  EXPECT_EQ(store.AppendToSeries(a, Iota(1)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SequenceStoreTest, EmptySeriesAllowed) {
  SequenceStore store;
  const SeriesId id = store.AddSeries({});
  auto len = store.SeriesLength(id);
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(*len, 0u);
  std::vector<double> out;
  EXPECT_TRUE(store.ReadWindow(id, 0, out).ok());
}


TEST(SequenceStoreTest, DedupedReadsCountEachPageOnce) {
  SequenceStore store;
  const SeriesId id = store.AddSeries(Iota(2048));  // 4 pages
  std::vector<double> out(64);
  std::size_t last_page = SequenceStore::kNoPageCounted;
  // Ascending overlapping windows within page 0: counted once.
  ASSERT_TRUE(store.ReadWindowDeduped(id, 0, out, &last_page).ok());
  ASSERT_TRUE(store.ReadWindowDeduped(id, 32, out, &last_page).ok());
  ASSERT_TRUE(store.ReadWindowDeduped(id, 100, out, &last_page).ok());
  EXPECT_EQ(store.metrics().logical_reads, 1u);
  // Crossing into page 1 counts exactly the new page.
  ASSERT_TRUE(store.ReadWindowDeduped(id, 500, out, &last_page).ok());
  EXPECT_EQ(store.metrics().logical_reads, 2u);
  // A far jump counts the new window's pages once (1040..1103: page 2).
  ASSERT_TRUE(store.ReadWindowDeduped(id, 1040, out, &last_page).ok());
  EXPECT_EQ(store.metrics().logical_reads, 3u);
  // And one spanning two fresh pages counts both (1500..1563: pages 2|3,
  // page 2 already counted).
  ASSERT_TRUE(store.ReadWindowDeduped(id, 1500, out, &last_page).ok());
  EXPECT_EQ(store.metrics().logical_reads, 4u);
  // Values are still correct.
  EXPECT_DOUBLE_EQ(out[0], 1500.0);
}

TEST(SequenceStoreTest, DedupedReadsValidateLikeReadWindow) {
  SequenceStore store;
  const SeriesId id = store.AddSeries(Iota(100));
  std::vector<double> out(64);
  std::size_t last_page = SequenceStore::kNoPageCounted;
  EXPECT_FALSE(store.ReadWindowDeduped(id, 90, out, &last_page).ok());
  EXPECT_FALSE(store.ReadWindowDeduped(7, 0, out, &last_page).ok());
}

TEST(SequenceStoreTest, DedupedBatchTotalEqualsDistinctPages) {
  // A full ascending sweep over every window touches every page exactly
  // once - the property that keeps tree verification I/O below a full scan.
  SequenceStore store;
  const SeriesId id = store.AddSeries(Iota(3000));
  std::vector<double> out(64);
  std::size_t last_page = SequenceStore::kNoPageCounted;
  for (std::size_t off = 0; off + 64 <= 3000; ++off) {
    ASSERT_TRUE(store.ReadWindowDeduped(id, off, out, &last_page).ok());
  }
  EXPECT_EQ(store.metrics().logical_reads, store.TotalPages());
}

}  // namespace
}  // namespace tsss::storage
