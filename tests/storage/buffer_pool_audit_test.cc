// Tests for the buffer pool's deep bookkeeping audit (AuditPins) and the
// clean-frame CRC re-verification that catches writes bypassing
// MutablePage().

#include <gtest/gtest.h>

#include "tsss/storage/buffer_pool.h"
#include "tsss/storage/page_store.h"

namespace tsss::storage {
namespace {

TEST(BufferPoolAuditTest, CleanAfterMixedWorkload) {
  MemPageStore store;
  BufferPool pool(&store, 4, /*verify_clean_crc=*/true);

  std::vector<PageId> ids;
  for (int i = 0; i < 10; ++i) {
    auto guard = pool.New();
    ASSERT_TRUE(guard.ok());
    guard->MutablePage().bytes[0] = static_cast<std::uint8_t>(i);
    ids.push_back(guard->id());
  }
  ASSERT_TRUE(pool.AuditPins().ok()) << pool.AuditPins();

  for (const PageId id : ids) {
    auto guard = pool.Fetch(id);
    ASSERT_TRUE(guard.ok());
  }
  ASSERT_TRUE(pool.AuditPins().ok()) << pool.AuditPins();

  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.dirty_frames(), 0u);
  ASSERT_TRUE(pool.Delete(ids[0]).ok());
  ASSERT_TRUE(pool.Clear().ok());
  ASSERT_TRUE(pool.AuditPins().ok()) << pool.AuditPins();
}

TEST(BufferPoolAuditTest, DetectsLeakedPin) {
  MemPageStore store;
  BufferPool pool(&store, 4);

  auto guard = pool.New();
  ASSERT_TRUE(guard.ok());
  const Status leaked = pool.AuditPins();
  EXPECT_FALSE(leaked.ok());
  EXPECT_EQ(leaked.code(), StatusCode::kFailedPrecondition);

  guard->Release();
  EXPECT_TRUE(pool.AuditPins().ok()) << pool.AuditPins();
}

TEST(BufferPoolAuditTest, DirtyAccountingTracksMutationsAndFlushes) {
  MemPageStore store;
  BufferPool pool(&store, 8, /*verify_clean_crc=*/true);

  const PageId id = [&] {
    auto guard = pool.New();
    EXPECT_TRUE(guard.ok());
    return guard->id();
  }();
  EXPECT_EQ(pool.dirty_frames(), 1u);  // New() pages are born dirty
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.dirty_frames(), 0u);

  {
    auto guard = pool.Fetch(id);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(pool.dirty_frames(), 0u);  // read-only fetch stays clean
    guard->MutablePage().bytes[1] = 0xAB;
    EXPECT_EQ(pool.dirty_frames(), 1u);
    guard->MutablePage().bytes[2] = 0xCD;  // second mutation: still one frame
    EXPECT_EQ(pool.dirty_frames(), 1u);
  }
  ASSERT_TRUE(pool.AuditPins().ok()) << pool.AuditPins();
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.dirty_frames(), 0u);
  ASSERT_TRUE(pool.AuditPins().ok()) << pool.AuditPins();
}

TEST(BufferPoolAuditTest, CrcCatchesWriteBypassingMutablePage) {
  MemPageStore store;
  BufferPool pool(&store, 4, /*verify_clean_crc=*/true);

  const PageId id = [&] {
    auto guard = pool.New();
    EXPECT_TRUE(guard.ok());
    guard->MutablePage().bytes[0] = 42;
    return guard->id();
  }();
  ASSERT_TRUE(pool.FlushAll().ok());

  {
    auto guard = pool.Fetch(id);
    ASSERT_TRUE(guard.ok());
    // Simulate the bug class the detector exists for: scribbling on a page
    // through a const view without marking it dirty.
    auto& page = const_cast<Page&>(guard->page());
    page.bytes[100] ^= 0xFF;
  }
  EXPECT_EQ(pool.metrics().crc_failures, 1u);
  const Status audit = pool.AuditPins();
  EXPECT_FALSE(audit.ok());
  EXPECT_EQ(audit.code(), StatusCode::kCorruption);
}

TEST(BufferPoolAuditTest, CrcQuietForLegitimateMutations) {
  MemPageStore store;
  BufferPool pool(&store, 4, /*verify_clean_crc=*/true);

  const PageId id = [&] {
    auto guard = pool.New();
    EXPECT_TRUE(guard.ok());
    return guard->id();
  }();
  ASSERT_TRUE(pool.FlushAll().ok());

  for (int round = 0; round < 5; ++round) {
    auto guard = pool.Fetch(id);
    ASSERT_TRUE(guard.ok());
    guard->MutablePage().bytes[static_cast<std::size_t>(round)] =
        static_cast<std::uint8_t>(round);
    guard->Release();
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  EXPECT_EQ(pool.metrics().crc_failures, 0u);
  EXPECT_TRUE(pool.AuditPins().ok()) << pool.AuditPins();
}

}  // namespace
}  // namespace tsss::storage
