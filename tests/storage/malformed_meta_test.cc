// Malformed-input tests for FilePageStore: a hostile or corrupt metadata /
// page file must surface as a clean Status error — never an oversized
// allocation, a crash, or silently wrong data. Regression tests for the
// Open() hardening that validates every untrusted header field against the
// actual file size.

#include "tsss/storage/file_page_store.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace tsss::storage {
namespace {

class MalformedMetaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/tsss_malformed_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".pages";
    std::remove(path_.c_str());
    std::remove(MetaPath().c_str());
  }

  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(MetaPath().c_str());
  }

  std::string MetaPath() const { return path_ + ".meta"; }

  /// Creates a store with one live page holding `fill` bytes, synced to disk.
  PageId CreateStoreWithOnePage(std::uint8_t fill) {
    auto store = FilePageStore::Create(path_);
    EXPECT_TRUE(store.ok()) << store.status().message();
    const PageId id = (*store)->Allocate();
    Page page;
    page.bytes.fill(fill);
    EXPECT_TRUE((*store)->Write(id, page).ok());
    EXPECT_TRUE((*store)->Sync().ok());
    return id;
  }

  std::vector<char> ReadAll(const std::string& file) {
    std::ifstream in(file, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  }

  void WriteAll(const std::string& file, const std::vector<char>& bytes) {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }

  std::string path_;
};

TEST_F(MalformedMetaTest, CapacityLyingAboutMetaSizeIsCorruption) {
  CreateStoreWithOnePage(0xAB);
  // Overwrite the capacity field (bytes 8..15) with a huge value; the body
  // still only holds one page's worth of entries. A pre-hardening Open would
  // try to resize() its vectors to 2^40 before noticing.
  std::vector<char> meta = ReadAll(MetaPath());
  ASSERT_GE(meta.size(), 24u);
  const std::uint64_t huge = 1ull << 40;
  std::memcpy(meta.data() + 8, &huge, sizeof(huge));
  WriteAll(MetaPath(), meta);

  auto reopened = FilePageStore::Open(path_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(MalformedMetaTest, LiveCountExceedingCapacityIsCorruption) {
  CreateStoreWithOnePage(0xAB);
  std::vector<char> meta = ReadAll(MetaPath());
  ASSERT_GE(meta.size(), 24u);
  const std::uint64_t bogus = 17;  // capacity is 1
  std::memcpy(meta.data() + 16, &bogus, sizeof(bogus));
  WriteAll(MetaPath(), meta);

  auto reopened = FilePageStore::Open(path_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(MalformedMetaTest, LiveCountDisagreeingWithFlagsIsCorruption) {
  CreateStoreWithOnePage(0xAB);
  // Flip the page's alive flag (first body byte, offset 24) to dead while
  // the header still claims one live page.
  std::vector<char> meta = ReadAll(MetaPath());
  ASSERT_GE(meta.size(), 25u);
  meta[24] = 0;
  WriteAll(MetaPath(), meta);

  auto reopened = FilePageStore::Open(path_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(MalformedMetaTest, FlippedCrcByteSurfacesOnRead) {
  const PageId id = CreateStoreWithOnePage(0xAB);
  // Corrupt the stored checksum (body bytes 25..28 for page 0); the page
  // data itself is untouched, so only the CRC comparison can catch it.
  std::vector<char> meta = ReadAll(MetaPath());
  ASSERT_GE(meta.size(), 29u);
  meta[25] = static_cast<char>(meta[25] ^ 0x01);
  WriteAll(MetaPath(), meta);

  auto reopened = FilePageStore::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  Page out;
  EXPECT_EQ((*reopened)->Read(id, &out).code(), StatusCode::kCorruption);
}

TEST_F(MalformedMetaTest, TruncatedPageFileIsCorruption) {
  CreateStoreWithOnePage(0xAB);
  // Cut the data file short of the capacity the metadata promises.
  std::vector<char> data = ReadAll(path_);
  ASSERT_EQ(data.size(), kPageSize);
  data.resize(kPageSize / 2);
  WriteAll(path_, data);

  auto reopened = FilePageStore::Open(path_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(MalformedMetaTest, TruncatedMetaBodyIsCorruption) {
  CreateStoreWithOnePage(0xAB);
  std::vector<char> meta = ReadAll(MetaPath());
  ASSERT_GE(meta.size(), 29u);
  meta.resize(26);  // header + part of page 0's entry
  WriteAll(MetaPath(), meta);

  auto reopened = FilePageStore::Open(path_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace tsss::storage
