#include "tsss/storage/page_store.h"

#include <gtest/gtest.h>

namespace tsss::storage {
namespace {

TEST(MemPageStoreTest, AllocateReadWrite) {
  MemPageStore store;
  const PageId id = store.Allocate();
  Page page;
  page.bytes[0] = 0xAB;
  page.bytes[kPageSize - 1] = 0xCD;
  ASSERT_TRUE(store.Write(id, page).ok());
  Page out;
  ASSERT_TRUE(store.Read(id, &out).ok());
  EXPECT_EQ(out.bytes[0], 0xAB);
  EXPECT_EQ(out.bytes[kPageSize - 1], 0xCD);
}

TEST(MemPageStoreTest, FreshPagesAreZeroed) {
  MemPageStore store;
  const PageId id = store.Allocate();
  Page out;
  ASSERT_TRUE(store.Read(id, &out).ok());
  for (std::size_t i = 0; i < kPageSize; i += 512) EXPECT_EQ(out.bytes[i], 0);
}

TEST(MemPageStoreTest, FreeAndRecycle) {
  MemPageStore store;
  const PageId a = store.Allocate();
  Page page;
  page.bytes[7] = 0x77;
  ASSERT_TRUE(store.Write(a, page).ok());
  ASSERT_TRUE(store.Free(a).ok());
  EXPECT_EQ(store.num_live_pages(), 0u);
  const PageId b = store.Allocate();
  EXPECT_EQ(a, b);  // recycled
  Page out;
  ASSERT_TRUE(store.Read(b, &out).ok());
  EXPECT_EQ(out.bytes[7], 0)
      << "recycled pages must be zeroed, not leak old contents";
}

TEST(MemPageStoreTest, DoubleFreeDetected) {
  MemPageStore store;
  const PageId id = store.Allocate();
  ASSERT_TRUE(store.Free(id).ok());
  EXPECT_FALSE(store.Free(id).ok());
}

TEST(MemPageStoreTest, AccessToFreedPageFails) {
  MemPageStore store;
  const PageId id = store.Allocate();
  ASSERT_TRUE(store.Free(id).ok());
  Page out;
  EXPECT_EQ(store.Read(id, &out).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Write(id, out).code(), StatusCode::kNotFound);
}

TEST(MemPageStoreTest, AccessToUnknownPageFails) {
  MemPageStore store;
  Page out;
  EXPECT_FALSE(store.Read(999, &out).ok());
}

TEST(MemPageStoreTest, MetricsCountPhysicalAccesses) {
  MemPageStore store;
  const PageId id = store.Allocate();
  Page page;
  ASSERT_TRUE(store.Write(id, page).ok());
  ASSERT_TRUE(store.Read(id, &page).ok());
  ASSERT_TRUE(store.Read(id, &page).ok());
  EXPECT_EQ(store.metrics().physical_writes, 1u);
  EXPECT_EQ(store.metrics().physical_reads, 2u);
  store.ResetMetrics();
  EXPECT_EQ(store.metrics().physical_reads, 0u);
}

TEST(MemPageStoreTest, CapacityTracksHighWaterMark) {
  MemPageStore store;
  const PageId a = store.Allocate();
  store.Allocate();
  EXPECT_EQ(store.capacity_pages(), 2u);
  ASSERT_TRUE(store.Free(a).ok());
  EXPECT_EQ(store.capacity_pages(), 2u);
  EXPECT_EQ(store.num_live_pages(), 1u);
}

}  // namespace
}  // namespace tsss::storage
