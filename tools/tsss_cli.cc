// tsss command-line tool: build, persist, inspect and query scale-shift
// indexes without writing C++.
//
//   tsss_cli generate --out market.csv [--companies 200] [--values 650]
//   tsss_cli build    --data market.csv --index dir [--window 128]
//                     [--reducer dft|paa|haar] [--dim 6] [--subtrail 0]
//                     [--shards N] [--scheme hash|round-robin]
//   tsss_cli info     --index dir
//   tsss_cli query    --index dir (--pattern NAME | --series I --offset K)
//                     [--eps 0.5] [--positive] [--min-scale A] [--suppress N]
//                     [--trace trace.json]
//   tsss_cli knn      --index dir (--pattern NAME | --series I --offset K)
//                     [--k 10] [--trace trace.json]
//   tsss_cli explain  --index dir (--pattern NAME | --series I --offset K)
//                     [--eps 0.5] [--knn --k 10] [--format text|json]
//                     [--out report] [--log-file events.ndjson]
//   tsss_cli inspect  --index dir [--queries 25] [--eps 0.5]
//                     [--format text|json] [--out report]
//   tsss_cli stats    --index dir [--queries 25] [--eps 0.5] [--workers 2]
//                     [--format prometheus|json|both]
//   tsss_cli stats    --no-workload [--format prometheus|json|both]
//   tsss_cli serve    --index dir [--port 8080] [--bind 127.0.0.1]
//                     [--slow-ms M] [--workers N] [--sample-queries Q]
//                     [--eps 0.5] [--duration-s S]
//                     [--slo-p99-ms 500] [--slo-availability 0.999]
//   tsss_cli profile  --index dir [--seconds 5] [--hz 97] [--queries 0]
//                     [--eps 0.5] [--out prof.folded] [--json-out prof.json]
//   tsss_cli serve-bench --index dir [--workers 4] [--clients 8]
//                     [--queries 200] [--eps 0.5] [--queue 64] [--timeout-ms 0]
//                     [--shards N] [--json-out report.json]
//                     [--log-file events.ndjson]
//
// Sharded indexes: `build --shards N` partitions the corpus across N shard
// engines under <index>/shard-<i> with the shard map at
// <index>/shard_map.tsss. query/knn/explain/inspect/serve-bench detect the
// shard map automatically and route through the scatter-gather ShardedEngine
// (explain renders the merged per-shard prune waterfall; inspect prints the
// shard map plus per-shard rows). Answers are bit-identical to a single
// engine over the same data.
//
// Patterns: ramp, v, peak, sine, step, hns, saturation, cup.
//
// --trace writes a chrome://tracing / Perfetto-loadable span tree of the
// query (per-phase timings plus per-level node visits and EP/BS prune
// counts). `explain` runs one query with full telemetry and renders the plan
// report (prune waterfall, candidate funnel, I/O split, scan baseline).
// `inspect` renders the tree's structural profile and a buffer-pool access
// heatmap from a sample workload. `stats` drives a sample workload through a
// QueryService so the registry (including the service latency histogram) has
// data, then dumps it (--no-workload skips the workload and exports whatever
// the registry already holds). --log-file writes the structured event-log
// ring as NDJSON.
//
// `serve` opens the index behind a QueryService and starts the embedded
// debug HTTP server (obs::DebugServer) with the live diagnostics endpoints
// /metricsz /varz /statusz /eventz /flightz /pprofz /healthz. --slow-ms M
// arms the slow-query flight recorder at threshold M (0 captures every
// completion, rate-limited); --sample-queries Q drives a deterministic
// workload first so every endpoint has data; --duration-s S exits after S
// seconds (for CI; default runs until killed). /pprofz?seconds=S&hz=H runs
// the in-process sampling profiler against live traffic and returns folded
// stacks + phase attribution as JSON; /healthz evaluates the rolling-window
// SLO (--slo-p99-ms, --slo-availability) and maps it to 200/503 for
// load-balancer checks.
//
// `profile` opens the index, drives a deterministic range-query workload
// for --seconds while the sampling profiler runs, and prints the per-phase
// CPU attribution plus folded stacks (--out writes the flamegraph input,
// --json-out the schema-v1 report). --queries bounds the workload (0 =
// loop until the time is up).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "tsss/core/engine.h"
#include "tsss/core/postprocess.h"
#include "tsss/obs/debug_server.h"
#include "tsss/obs/event_log.h"
#include "tsss/obs/explain.h"
#include "tsss/obs/flight_recorder.h"
#include "tsss/obs/metrics.h"
#include "tsss/obs/profiler.h"
#include "tsss/obs/rolling.h"
#include "tsss/obs/trace.h"
#include "tsss/seq/csv.h"
#include "tsss/seq/patterns.h"
#include "tsss/seq/stock_generator.h"
#include "tsss/service/query_service.h"
#include "tsss/shard/sharded_engine.h"

namespace {

using tsss::Status;

/// Minimal --flag value parser: flags must be "--name value".
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag, got '%s'\n", argv[i]);
        std::exit(2);
      }
      const std::string name = argv[i] + 2;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[name] = std::string(argv[i + 1]);
        ++i;
      } else {
        values_[name] = "1";  // boolean-style flag
      }
    }
  }

  std::string Get(const std::string& name, const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  std::size_t GetSize(const std::string& name, std::size_t fallback) const {
    auto it = values_.find(name);
    return it == values_.end()
               ? fallback
               : static_cast<std::size_t>(std::atoll(it->second.c_str()));
  }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tsss_cli <generate|build|info|query|knn|explain|"
               "inspect|stats|serve|profile|serve-bench> --flag value...\n"
               "see the header of tools/tsss_cli.cc for details\n");
  return 2;
}

/// Dumps the global event-log ring to --log-file, if given.
int MaybeDumpEventLog(const Flags& flags) {
  const std::string path = flags.Get("log-file", "");
  if (path.empty()) return 0;
  if (Status s = tsss::obs::EventLog::Global().DumpNdjson(path); !s.ok()) {
    return Fail(s);
  }
  std::printf("event log written to %s\n", path.c_str());
  return 0;
}

/// Writes `contents` to `path`, failing loudly.
int WriteFileOrFail(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
    return 1;
  }
  std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  return 0;
}

/// True when `index_dir` is a sharded index root (its shard map exists).
bool IsShardedIndex(const std::string& index_dir) {
  std::FILE* f = std::fopen(
      (index_dir + "/" + tsss::shard::kShardMapFileName).c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

const char* SchemeName(tsss::shard::ShardScheme scheme) {
  return scheme == tsss::shard::ShardScheme::kHash ? "hash" : "round-robin";
}

tsss::Result<tsss::geom::Vec> PatternByName(const std::string& name,
                                            std::size_t n) {
  using namespace tsss::seq;
  if (name == "ramp") return RampPattern(n);
  if (name == "v") return VPattern(n);
  if (name == "peak") return PeakPattern(n);
  if (name == "sine") return SinePattern(n);
  if (name == "step") return StepPattern(n);
  if (name == "hns") return HeadAndShouldersPattern(n);
  if (name == "saturation") return SaturationPattern(n);
  if (name == "cup") return CupPattern(n);
  return Status::InvalidArgument("unknown pattern '" + name + "'");
}

/// Resolves the query vector from --pattern or --series/--offset flags.
tsss::Result<tsss::geom::Vec> ResolveQuery(const Flags& flags,
                                           tsss::core::SearchEngine& engine) {
  const std::size_t n = engine.config().window;
  if (flags.Has("pattern")) {
    return PatternByName(flags.Get("pattern", ""), n);
  }
  if (flags.Has("series")) {
    // --series accepts an id or a name ("7" or "HK7").
    const std::string series_arg = flags.Get("series", "0");
    tsss::storage::SeriesId series;
    if (!series_arg.empty() &&
        series_arg.find_first_not_of("0123456789") == std::string::npos) {
      series = static_cast<tsss::storage::SeriesId>(std::atoll(series_arg.c_str()));
    } else {
      auto found = engine.dataset().FindSeries(series_arg);
      if (!found.ok()) return found.status();
      series = *found;
    }
    const std::size_t offset = flags.GetSize("offset", 0);
    auto values = engine.dataset().Values(series);
    if (!values.ok()) return values.status();
    if (offset + n > values->size()) {
      return Status::OutOfRange("window beyond series end");
    }
    return tsss::geom::Vec(values->begin() + static_cast<std::ptrdiff_t>(offset),
                           values->begin() +
                               static_cast<std::ptrdiff_t>(offset + n));
  }
  return Status::InvalidArgument("need --pattern NAME or --series I [--offset K]");
}

/// Sharded counterpart of ResolveQuery: series lookups go through the
/// ShardedEngine's global-id directory instead of one engine's dataset.
tsss::Result<tsss::geom::Vec> ResolveShardedQuery(
    const Flags& flags, const tsss::shard::ShardedEngine& engine) {
  const std::size_t n = engine.engine_config().window;
  if (flags.Has("pattern")) {
    return PatternByName(flags.Get("pattern", ""), n);
  }
  if (flags.Has("series")) {
    // --series accepts an id or a name ("7" or "HK7").
    const std::string series_arg = flags.Get("series", "0");
    tsss::storage::SeriesId series;
    if (!series_arg.empty() &&
        series_arg.find_first_not_of("0123456789") == std::string::npos) {
      series =
          static_cast<tsss::storage::SeriesId>(std::atoll(series_arg.c_str()));
    } else {
      auto found = engine.FindSeries(series_arg);
      if (!found.ok()) return found.status();
      series = *found;
    }
    const std::size_t offset = flags.GetSize("offset", 0);
    auto values = engine.SeriesValues(series);
    if (!values.ok()) return values.status();
    if (offset + n > values->size()) {
      return Status::OutOfRange("window beyond series end");
    }
    return tsss::geom::Vec(
        values->begin() + static_cast<std::ptrdiff_t>(offset),
        values->begin() + static_cast<std::ptrdiff_t>(offset + n));
  }
  return Status::InvalidArgument("need --pattern NAME or --series I [--offset K]");
}

void PrintMatches(tsss::core::SearchEngine& engine,
                  const std::vector<tsss::core::Match>& matches,
                  std::size_t limit) {
  std::printf("%-16s %-8s %-12s %-12s %-10s\n", "series", "offset", "scale(a)",
              "shift(b)", "distance");
  std::size_t shown = 0;
  for (const tsss::core::Match& m : matches) {
    auto name = engine.dataset().Name(m.series);
    std::printf("%-16s %-8u %-12.4f %-12.4f %-10.4f\n",
                name.ok() ? name->c_str() : "?", m.offset, m.transform.scale,
                m.transform.offset, m.distance);
    if (++shown >= limit) {
      std::printf("... (%zu more)\n", matches.size() - shown);
      break;
    }
  }
}

void PrintShardedMatches(const tsss::shard::ShardedEngine& engine,
                         const std::vector<tsss::core::Match>& matches,
                         std::size_t limit) {
  std::printf("%-16s %-8s %-12s %-12s %-10s\n", "series", "offset", "scale(a)",
              "shift(b)", "distance");
  std::size_t shown = 0;
  for (const tsss::core::Match& m : matches) {
    auto name = engine.SeriesName(m.series);
    std::printf("%-16s %-8u %-12.4f %-12.4f %-10.4f\n",
                name.ok() ? name->c_str() : "?", m.offset, m.transform.scale,
                m.transform.offset, m.distance);
    if (++shown >= limit) {
      std::printf("... (%zu more)\n", matches.size() - shown);
      break;
    }
  }
}

/// --trace captures the calling thread's spans; a sharded query runs on the
/// fan-out workers, so there is nothing meaningful to record.
void WarnTraceUnsupportedSharded(const Flags& flags) {
  if (flags.Has("trace")) {
    std::fprintf(stderr,
                 "note: --trace is per-thread and sharded queries run on "
                 "fan-out workers; ignoring --trace\n");
  }
}

int CmdGenerate(const Flags& flags) {
  tsss::seq::StockMarketConfig config;
  config.num_companies = flags.GetSize("companies", 200);
  config.values_per_company = flags.GetSize("values", 650);
  config.seed = flags.GetSize("seed", 19990601);
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out file.csv is required\n");
    return 2;
  }
  const auto market = tsss::seq::GenerateStockMarket(config);
  if (Status s = tsss::seq::SaveCsvFile(out, market); !s.ok()) return Fail(s);
  std::printf("wrote %zu series x %zu values to %s\n", config.num_companies,
              config.values_per_company, out.c_str());
  return 0;
}

int CmdBuild(const Flags& flags) {
  const std::string data = flags.Get("data", "");
  const std::string index_dir = flags.Get("index", "");
  if (data.empty() || index_dir.empty()) {
    std::fprintf(stderr, "build: --data file.csv and --index dir are required\n");
    return 2;
  }
  auto series = tsss::seq::LoadCsvFile(data);
  if (!series.ok()) return Fail(series.status());

  tsss::core::EngineConfig config;
  config.window = flags.GetSize("window", 128);
  config.reduced_dim = flags.GetSize("dim", 6);
  config.subtrail_len = flags.GetSize("subtrail", 0);
  config.storage_dir = index_dir;
  const std::string reducer = flags.Get("reducer", "dft");
  if (reducer == "dft") {
    config.reducer = tsss::reduce::ReducerKind::kDft;
  } else if (reducer == "paa") {
    config.reducer = tsss::reduce::ReducerKind::kPaa;
  } else if (reducer == "haar") {
    config.reducer = tsss::reduce::ReducerKind::kHaar;
  } else {
    std::fprintf(stderr, "build: unknown reducer '%s'\n", reducer.c_str());
    return 2;
  }

  const std::size_t shards = flags.GetSize("shards", 1);
  if (shards > 1) {
    tsss::shard::ShardedEngineConfig sharded_config;
    sharded_config.engine = config;
    sharded_config.num_shards = static_cast<std::uint32_t>(shards);
    const std::string scheme = flags.Get("scheme", "hash");
    if (scheme == "hash") {
      sharded_config.scheme = tsss::shard::ShardScheme::kHash;
    } else if (scheme == "round-robin") {
      sharded_config.scheme = tsss::shard::ShardScheme::kRoundRobin;
    } else {
      std::fprintf(stderr, "build: unknown --scheme '%s'\n", scheme.c_str());
      return 2;
    }
    auto sharded = tsss::shard::ShardedEngine::Create(sharded_config);
    if (!sharded.ok()) return Fail(sharded.status());
    if (Status s = (*sharded)->BulkBuild(*series); !s.ok()) return Fail(s);
    if (Status s = (*sharded)->Checkpoint(); !s.ok()) return Fail(s);
    std::printf("indexed %llu windows from %zu series into %s "
                "(%u shards, %s partitioning)\n",
                static_cast<unsigned long long>(
                    (*sharded)->num_indexed_windows()),
                series->size(), index_dir.c_str(), (*sharded)->num_shards(),
                scheme.c_str());
    for (const tsss::shard::ShardInfo& info : (*sharded)->ShardInfos()) {
      std::printf("  shard-%u: %llu series, %llu windows, tree height %zu\n",
                  info.shard, static_cast<unsigned long long>(info.series),
                  static_cast<unsigned long long>(info.indexed_windows),
                  info.tree_height);
    }
    return 0;
  }

  auto engine = tsss::core::SearchEngine::Create(config);
  if (!engine.ok()) return Fail(engine.status());
  if (Status s = (*engine)->BulkBuild(*series); !s.ok()) return Fail(s);
  if (Status s = (*engine)->Checkpoint(); !s.ok()) return Fail(s);
  std::printf("indexed %zu windows from %zu series into %s "
              "(tree height %zu, %zu leaf entries)\n",
              (*engine)->num_indexed_windows(), series->size(),
              index_dir.c_str(), (*engine)->tree().height(),
              (*engine)->tree().size());
  return 0;
}

int CmdInfo(const Flags& flags) {
  const std::string index_dir = flags.Get("index", "");
  if (index_dir.empty()) {
    std::fprintf(stderr, "info: --index dir is required\n");
    return 2;
  }
  auto engine = tsss::core::SearchEngine::Open(index_dir);
  if (!engine.ok()) return Fail(engine.status());
  const auto& config = (*engine)->config();
  auto stats = (*engine)->tree().ComputeStats();
  if (!stats.ok()) return Fail(stats.status());

  std::printf("index            : %s\n", index_dir.c_str());
  std::printf("series           : %zu (%zu values)\n",
              (*engine)->dataset().size(), (*engine)->dataset().total_values());
  std::printf("window / stride  : %zu / %zu\n", config.window, config.stride);
  std::printf("reducer          : %s\n", (*engine)->reducer().Name().c_str());
  std::printf("sub-trail length : %zu%s\n", config.subtrail_len,
              config.subtrail_len == 0 ? " (point mode)" : "");
  std::printf("indexed windows  : %zu\n", (*engine)->num_indexed_windows());
  std::printf("tree             : height %zu, %zu nodes (%zu pages), "
              "%zu leaf entries\n",
              stats->height, stats->node_count, stats->node_pages,
              (*engine)->tree().size());
  std::printf("fill             : leaves %.0f%%, internal %.0f%%\n",
              100.0 * stats->avg_leaf_fill, 100.0 * stats->avg_internal_fill);
  std::printf("data pages       : %zu (4 KiB each)\n",
              (*engine)->dataset().store().TotalPages());
  return 0;
}

int CmdQuerySharded(const Flags& flags, const std::string& index_dir) {
  auto engine = tsss::shard::ShardedEngine::Open(index_dir);
  if (!engine.ok()) return Fail(engine.status());
  auto query = ResolveShardedQuery(flags, **engine);
  if (!query.ok()) return Fail(query.status());
  WarnTraceUnsupportedSharded(flags);

  tsss::core::TransformCost cost;
  if (flags.Has("positive")) cost.min_scale = 0.0;
  if (flags.Has("min-scale")) cost.min_scale = flags.GetDouble("min-scale", 0.0);
  const double eps = flags.GetDouble("eps", 0.5);

  tsss::core::QueryStats stats;
  auto matches = (*engine)->RangeQuery(*query, eps, cost, &stats);
  if (!matches.ok()) return Fail(matches.status());

  std::vector<tsss::core::Match> out = std::move(*matches);
  const std::size_t suppress = flags.GetSize("suppress", 0);
  if (suppress > 0) {
    out = tsss::core::SuppressOverlaps(std::move(out),
                                       static_cast<std::uint32_t>(suppress));
  }
  std::printf("%zu match(es) at eps=%.4g across %u shards "
              "(%llu candidates, %llu pages)\n\n",
              out.size(), eps, (*engine)->num_shards(),
              static_cast<unsigned long long>(stats.candidates),
              static_cast<unsigned long long>(stats.total_page_reads()));
  PrintShardedMatches(**engine, out, flags.GetSize("limit", 25));
  tsss::obs::EventLog::Global().Publish(
      "cli", "range_query",
      {{"matches", out.size()}, {"candidates", stats.candidates}});
  return MaybeDumpEventLog(flags);
}

int CmdQuery(const Flags& flags) {
  const std::string index_dir = flags.Get("index", "");
  if (index_dir.empty()) {
    std::fprintf(stderr, "query: --index dir is required\n");
    return 2;
  }
  if (IsShardedIndex(index_dir)) return CmdQuerySharded(flags, index_dir);
  auto engine = tsss::core::SearchEngine::Open(index_dir);
  if (!engine.ok()) return Fail(engine.status());
  auto query = ResolveQuery(flags, **engine);
  if (!query.ok()) return Fail(query.status());

  tsss::core::TransformCost cost;
  if (flags.Has("positive")) cost.min_scale = 0.0;
  if (flags.Has("min-scale")) cost.min_scale = flags.GetDouble("min-scale", 0.0);
  const double eps = flags.GetDouble("eps", 0.5);

  const std::string trace_path = flags.Get("trace", "");
  tsss::obs::QueryTrace trace;
  std::optional<tsss::obs::ScopedQueryTrace> scoped_trace;
  if (!trace_path.empty()) scoped_trace.emplace(&trace);

  tsss::core::QueryStats stats;
  auto matches = (*engine)->RangeQuery(*query, eps, cost, &stats);
  if (!matches.ok()) return Fail(matches.status());

  if (!trace_path.empty()) {
    scoped_trace.reset();
    if (int rc = WriteFileOrFail(trace_path, trace.ToChromeJson()); rc != 0) {
      return rc;
    }
    std::printf("trace written to %s (load in chrome://tracing)\n",
                trace_path.c_str());
  }

  std::vector<tsss::core::Match> out = std::move(*matches);
  const std::size_t suppress = flags.GetSize("suppress", 0);
  if (suppress > 0) {
    out = tsss::core::SuppressOverlaps(std::move(out),
                                       static_cast<std::uint32_t>(suppress));
  }
  std::printf("%zu match(es) at eps=%.4g (%llu candidates, %llu pages)\n\n",
              out.size(), eps,
              static_cast<unsigned long long>(stats.candidates),
              static_cast<unsigned long long>(stats.total_page_reads()));
  PrintMatches(**engine, out, flags.GetSize("limit", 25));
  tsss::obs::EventLog::Global().Publish(
      "cli", "range_query",
      {{"matches", out.size()}, {"candidates", stats.candidates}});
  return MaybeDumpEventLog(flags);
}

int CmdKnnSharded(const Flags& flags, const std::string& index_dir) {
  auto engine = tsss::shard::ShardedEngine::Open(index_dir);
  if (!engine.ok()) return Fail(engine.status());
  auto query = ResolveShardedQuery(flags, **engine);
  if (!query.ok()) return Fail(query.status());
  WarnTraceUnsupportedSharded(flags);

  const std::size_t k = flags.GetSize("k", 10);
  auto matches = (*engine)->Knn(*query, k);
  if (!matches.ok()) return Fail(matches.status());

  std::printf("%zu nearest window(s) across %u shards:\n\n", matches->size(),
              (*engine)->num_shards());
  PrintShardedMatches(**engine, *matches, k);
  tsss::obs::EventLog::Global().Publish(
      "cli", "knn_query", {{"k", k}, {"matches", matches->size()}});
  return MaybeDumpEventLog(flags);
}

int CmdKnn(const Flags& flags) {
  const std::string index_dir = flags.Get("index", "");
  if (index_dir.empty()) {
    std::fprintf(stderr, "knn: --index dir is required\n");
    return 2;
  }
  if (IsShardedIndex(index_dir)) return CmdKnnSharded(flags, index_dir);
  auto engine = tsss::core::SearchEngine::Open(index_dir);
  if (!engine.ok()) return Fail(engine.status());
  auto query = ResolveQuery(flags, **engine);
  if (!query.ok()) return Fail(query.status());

  const std::string trace_path = flags.Get("trace", "");
  tsss::obs::QueryTrace trace;
  std::optional<tsss::obs::ScopedQueryTrace> scoped_trace;
  if (!trace_path.empty()) scoped_trace.emplace(&trace);

  const std::size_t k = flags.GetSize("k", 10);
  auto matches = (*engine)->Knn(*query, k);
  if (!matches.ok()) return Fail(matches.status());

  if (!trace_path.empty()) {
    scoped_trace.reset();
    if (int rc = WriteFileOrFail(trace_path, trace.ToChromeJson()); rc != 0) {
      return rc;
    }
    std::printf("trace written to %s (load in chrome://tracing)\n",
                trace_path.c_str());
  }
  std::printf("%zu nearest window(s):\n\n", matches->size());
  PrintMatches(**engine, *matches, k);
  tsss::obs::EventLog::Global().Publish("cli", "knn_query",
                                        {{"k", k}, {"matches", matches->size()}});
  return MaybeDumpEventLog(flags);
}

/// Sharded explain: runs the query through the fan-out path and renders the
/// per-shard reports folded into one (the waterfall identity is preserved by
/// summation). Phases are omitted — they are per-thread trace artifacts.
int CmdExplainSharded(const Flags& flags, const std::string& index_dir) {
  auto engine = tsss::shard::ShardedEngine::Open(index_dir);
  if (!engine.ok()) return Fail(engine.status());
  auto query = ResolveShardedQuery(flags, **engine);
  if (!query.ok()) return Fail(query.status());

  tsss::core::QueryStats stats;
  if (flags.Has("knn")) {
    auto matches = (*engine)->Knn(*query, flags.GetSize("k", 10), {}, &stats);
    if (!matches.ok()) return Fail(matches.status());
  } else {
    tsss::core::TransformCost cost;
    if (flags.Has("positive")) cost.min_scale = 0.0;
    if (flags.Has("min-scale")) {
      cost.min_scale = flags.GetDouble("min-scale", 0.0);
    }
    auto matches = (*engine)->RangeQuery(*query, flags.GetDouble("eps", 0.5),
                                         cost, &stats);
    if (!matches.ok()) return Fail(matches.status());
  }

  auto report = (*engine)->ExplainLast();
  if (!report.ok()) return Fail(report.status());

  const std::string format = flags.Get("format", "text");
  std::string rendered;
  if (format == "text") {
    rendered = tsss::obs::RenderExplainText(*report);
  } else if (format == "json") {
    rendered = tsss::obs::RenderExplainJson(*report);
  } else {
    std::fprintf(stderr, "explain: unknown --format '%s'\n", format.c_str());
    return 2;
  }

  const std::string out = flags.Get("out", "");
  if (!out.empty()) {
    if (int rc = WriteFileOrFail(out, rendered); rc != 0) return rc;
    std::printf("explain report written to %s\n", out.c_str());
  } else {
    std::fputs(rendered.c_str(), stdout);
  }
  tsss::obs::EventLog::Global().Publish(
      "cli", "explain",
      {{"entries_tested", report->entries_tested},
       {"matches", report->matches}});
  return MaybeDumpEventLog(flags);
}

/// Runs one query with full telemetry and a trace, then renders the engine's
/// plan report (prune waterfall, candidate funnel, I/O split, scan baseline).
int CmdExplain(const Flags& flags) {
  const std::string index_dir = flags.Get("index", "");
  if (index_dir.empty()) {
    std::fprintf(stderr, "explain: --index dir is required\n");
    return 2;
  }
  if (IsShardedIndex(index_dir)) return CmdExplainSharded(flags, index_dir);
  auto engine = tsss::core::SearchEngine::Open(index_dir);
  if (!engine.ok()) return Fail(engine.status());
  auto query = ResolveQuery(flags, **engine);
  if (!query.ok()) return Fail(query.status());

  tsss::obs::QueryTrace trace;
  {
    // Scope the trace so every span is closed before rendering phases.
    tsss::obs::ScopedQueryTrace scoped_trace(&trace);
    tsss::core::QueryStats stats;
    if (flags.Has("knn")) {
      auto matches =
          (*engine)->Knn(*query, flags.GetSize("k", 10), {}, &stats);
      if (!matches.ok()) return Fail(matches.status());
    } else {
      tsss::core::TransformCost cost;
      if (flags.Has("positive")) cost.min_scale = 0.0;
      if (flags.Has("min-scale")) {
        cost.min_scale = flags.GetDouble("min-scale", 0.0);
      }
      auto matches = (*engine)->RangeQuery(
          *query, flags.GetDouble("eps", 0.5), cost, &stats);
      if (!matches.ok()) return Fail(matches.status());
    }
  }

  auto report = (*engine)->ExplainLast();
  if (!report.ok()) return Fail(report.status());
  tsss::obs::FillExplainPhases(trace, &*report);

  const std::string format = flags.Get("format", "text");
  std::string rendered;
  if (format == "text") {
    rendered = tsss::obs::RenderExplainText(*report);
  } else if (format == "json") {
    rendered = tsss::obs::RenderExplainJson(*report);
  } else {
    std::fprintf(stderr, "explain: unknown --format '%s'\n", format.c_str());
    return 2;
  }

  const std::string out = flags.Get("out", "");
  if (!out.empty()) {
    if (int rc = WriteFileOrFail(out, rendered); rc != 0) return rc;
    std::printf("explain report written to %s\n", out.c_str());
  } else {
    std::fputs(rendered.c_str(), stdout);
  }
  tsss::obs::EventLog::Global().Publish(
      "cli", "explain",
      {{"entries_tested", report->entries_tested},
       {"matches", report->matches}});
  return MaybeDumpEventLog(flags);
}

/// Per-tree-level rollup of the buffer-pool access profile.
struct PoolLevelRollup {
  std::size_t pages = 0;
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// Sharded inspect: the shard map summary plus one row per shard. A sample
/// workload (same stride as single-engine inspect) runs first so the
/// per-shard pool hit rates reflect real fan-out traffic.
int CmdInspectSharded(const Flags& flags, const std::string& index_dir) {
  auto engine = tsss::shard::ShardedEngine::Open(index_dir);
  if (!engine.ok()) return Fail(engine.status());

  const std::size_t num_queries = flags.GetSize("queries", 25);
  const double eps = flags.GetDouble("eps", 0.5);
  const std::size_t n = (*engine)->engine_config().window;
  const std::size_t num_series =
      static_cast<std::size_t>((*engine)->total_series());
  if (num_series == 0) return Fail(Status::FailedPrecondition("empty index"));
  for (std::size_t i = 0; i < num_queries; ++i) {
    const auto series = static_cast<tsss::storage::SeriesId>(i % num_series);
    auto values = (*engine)->SeriesValues(series);
    if (!values.ok()) return Fail(values.status());
    if (values->size() < n) continue;
    const std::size_t offset = (i * 37) % (values->size() - n + 1);
    auto matches = (*engine)->RangeQuery(values->subspan(offset, n), eps, {});
    if (!matches.ok()) return Fail(matches.status());
  }

  const std::vector<tsss::shard::ShardInfo> infos = (*engine)->ShardInfos();
  const tsss::shard::ShardMap& map = (*engine)->shard_map();

  const std::string format = flags.Get("format", "text");
  std::string rendered;
  char line[256];
  if (format == "text") {
    std::snprintf(line, sizeof(line),
                  "INSPECT %s (sharded)\nshard map: %u shards, %s "
                  "partitioning, %llu series, %llu indexed windows\n\n",
                  index_dir.c_str(), map.num_shards, SchemeName(map.scheme),
                  static_cast<unsigned long long>((*engine)->total_series()),
                  static_cast<unsigned long long>(
                      (*engine)->num_indexed_windows()));
    rendered += line;
    std::snprintf(line, sizeof(line), "%-8s %10s %10s %8s %10s\n", "shard",
                  "series", "windows", "height", "pool-hit%");
    rendered += line;
    for (const tsss::shard::ShardInfo& info : infos) {
      std::snprintf(line, sizeof(line), "%-8u %10llu %10llu %8zu %10.1f\n",
                    info.shard, static_cast<unsigned long long>(info.series),
                    static_cast<unsigned long long>(info.indexed_windows),
                    info.tree_height, 100.0 * info.pool_hit_rate);
      rendered += line;
    }
  } else if (format == "json") {
    std::snprintf(line, sizeof(line),
                  "{\"schema_version\":1,\"report\":\"inspect_sharded\","
                  "\"shard_map\":{\"shards\":%u,\"scheme\":\"%s\","
                  "\"series\":%llu,\"indexed_windows\":%llu},\"shards\":[",
                  map.num_shards, SchemeName(map.scheme),
                  static_cast<unsigned long long>((*engine)->total_series()),
                  static_cast<unsigned long long>(
                      (*engine)->num_indexed_windows()));
    rendered += line;
    for (std::size_t i = 0; i < infos.size(); ++i) {
      const tsss::shard::ShardInfo& info = infos[i];
      std::snprintf(line, sizeof(line),
                    "%s{\"shard\":%u,\"series\":%llu,"
                    "\"indexed_windows\":%llu,\"tree_height\":%zu,"
                    "\"pool_hit_ratio\":%.6g}",
                    i > 0 ? "," : "", info.shard,
                    static_cast<unsigned long long>(info.series),
                    static_cast<unsigned long long>(info.indexed_windows),
                    info.tree_height, info.pool_hit_rate);
      rendered += line;
    }
    rendered += "]}\n";
  } else {
    std::fprintf(stderr, "inspect: unknown --format '%s'\n", format.c_str());
    return 2;
  }

  const std::string out = flags.Get("out", "");
  if (!out.empty()) {
    if (int rc = WriteFileOrFail(out, rendered); rc != 0) return rc;
    std::printf("inspect report written to %s\n", out.c_str());
  } else {
    std::fputs(rendered.c_str(), stdout);
  }
  return MaybeDumpEventLog(flags);
}

/// Renders the tree's structural profile and a buffer-pool access heatmap
/// collected while a deterministic sample workload runs.
int CmdInspect(const Flags& flags) {
  const std::string index_dir = flags.Get("index", "");
  if (index_dir.empty()) {
    std::fprintf(stderr, "inspect: --index dir is required\n");
    return 2;
  }
  if (IsShardedIndex(index_dir)) return CmdInspectSharded(flags, index_dir);
  auto engine = tsss::core::SearchEngine::Open(index_dir);
  if (!engine.ok()) return Fail(engine.status());

  auto shape = (*engine)->tree().ComputeStructuralStats();
  if (!shape.ok()) return Fail(shape.status());
  tsss::index::RegisterStructuralGauges(*shape);

  // Map each node's first page to its level. Supernode continuation pages
  // are not first pages, so they (and any non-index pages sharing the pool)
  // land in the "unclassified" bucket below.
  std::map<tsss::storage::PageId, std::size_t> page_level;
  Status visited = (*engine)->tree().VisitNodes(
      [&page_level](const tsss::index::Node& node,
                    tsss::storage::PageId page) {
        page_level[page] = node.level;
      });
  if (!visited.ok()) return Fail(visited);

  // Profile a sample workload. Cold-cache mode would clear the pool (and the
  // hit/miss split) between queries, so switch it off for the heatmap.
  (*engine)->set_cold_cache_per_query(false);
  (*engine)->pool().EnableAccessProfile(true);
  const std::size_t num_queries = flags.GetSize("queries", 25);
  const double eps = flags.GetDouble("eps", 0.5);
  const std::size_t n = (*engine)->config().window;
  const std::size_t num_series = (*engine)->dataset().size();
  if (num_series == 0) return Fail(Status::FailedPrecondition("empty index"));
  for (std::size_t i = 0; i < num_queries; ++i) {
    const auto series = static_cast<tsss::storage::SeriesId>(i % num_series);
    auto values = (*engine)->dataset().Values(series);
    if (!values.ok()) return Fail(values.status());
    if (values->size() < n) continue;
    const std::size_t offset = (i * 37) % (values->size() - n + 1);
    auto matches = (*engine)->RangeQuery(values->subspan(offset, n), eps, {});
    if (!matches.ok()) return Fail(matches.status());
  }
  (*engine)->pool().EnableAccessProfile(false);
  const std::vector<tsss::storage::PageAccessStats> profile =
      (*engine)->pool().AccessProfile();

  std::vector<PoolLevelRollup> by_level(shape->height);
  PoolLevelRollup unclassified;
  for (const tsss::storage::PageAccessStats& page : profile) {
    auto it = page_level.find(page.page);
    PoolLevelRollup& bucket = (it != page_level.end() &&
                               it->second < by_level.size())
                                  ? by_level[it->second]
                                  : unclassified;
    ++bucket.pages;
    bucket.accesses += page.accesses;
    bucket.misses += page.misses;
    bucket.evictions += page.evictions;
  }
  const std::size_t top_limit =
      profile.size() < std::size_t{10} ? profile.size() : std::size_t{10};

  const std::string format = flags.Get("format", "text");
  std::string rendered;
  if (format == "text") {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "INSPECT %s\ntree: height %zu, %zu nodes, %zu entries, "
                  "%zu supernode(s), depth uniform: %s\n\n",
                  index_dir.c_str(), shape->height, shape->node_count,
                  shape->entry_count, shape->supernode_count,
                  shape->depth_uniform ? "yes" : "NO");
    rendered += line;
    std::snprintf(line, sizeof(line),
                  "%-6s %8s %8s %18s %6s %6s %12s %10s\n", "level", "nodes",
                  "entries", "fanout min/avg/max", "occ%", "dead%", "overlap",
                  "margin");
    rendered += line;
    for (std::size_t l = shape->levels.size(); l-- > 0;) {
      const tsss::index::LevelStats& lv = shape->levels[l];
      char fanout[32];
      std::snprintf(fanout, sizeof(fanout), "%zu/%.1f/%zu", lv.min_fanout,
                    lv.avg_fanout, lv.max_fanout);
      std::snprintf(line, sizeof(line),
                    "%-6zu %8zu %8zu %18s %6.1f %6.1f %12.4g %10.4g%s\n",
                    lv.level, lv.nodes, lv.entries, fanout,
                    100.0 * lv.avg_occupancy, 100.0 * lv.dead_space_ratio,
                    lv.overlap_volume, lv.margin_sum,
                    l + 1 == shape->levels.size()
                        ? " (root)"
                        : (l == 0 ? " (leaves)" : ""));
      rendered += line;
    }
    std::snprintf(line, sizeof(line),
                  "\nbuffer pool heatmap (%zu queries, %zu profiled pages, "
                  "capacity %zu):\n%-12s %8s %10s %10s %10s\n",
                  num_queries, profile.size(), (*engine)->pool().capacity(),
                  "level", "pages", "accesses", "misses", "evictions");
    rendered += line;
    for (std::size_t l = by_level.size(); l-- > 0;) {
      const PoolLevelRollup& b = by_level[l];
      if (b.pages == 0) continue;
      std::snprintf(line, sizeof(line),
                    "%-12zu %8zu %10llu %10llu %10llu\n", l, b.pages,
                    static_cast<unsigned long long>(b.accesses),
                    static_cast<unsigned long long>(b.misses),
                    static_cast<unsigned long long>(b.evictions));
      rendered += line;
    }
    if (unclassified.pages > 0) {
      std::snprintf(line, sizeof(line),
                    "%-12s %8zu %10llu %10llu %10llu\n", "unclassified",
                    unclassified.pages,
                    static_cast<unsigned long long>(unclassified.accesses),
                    static_cast<unsigned long long>(unclassified.misses),
                    static_cast<unsigned long long>(unclassified.evictions));
      rendered += line;
    }
    if (top_limit > 0) {
      rendered += "\nhottest pages:\n";
      for (std::size_t i = 0; i < top_limit; ++i) {
        const tsss::storage::PageAccessStats& page = profile[i];
        auto it = page_level.find(page.page);
        char level_tag[24];
        if (it != page_level.end()) {
          std::snprintf(level_tag, sizeof(level_tag), "level %zu",
                        it->second);
        } else {
          std::snprintf(level_tag, sizeof(level_tag), "unclassified");
        }
        std::snprintf(line, sizeof(line),
                      "  page %-8llu %-12s %8llu accesses, %llu misses, "
                      "%llu evictions\n",
                      static_cast<unsigned long long>(page.page), level_tag,
                      static_cast<unsigned long long>(page.accesses),
                      static_cast<unsigned long long>(page.misses),
                      static_cast<unsigned long long>(page.evictions));
        rendered += line;
      }
    }
  } else if (format == "json") {
    char buf[192];
    rendered = "{\"schema_version\":1,\"report\":\"inspect\",\"tree\":{";
    std::snprintf(buf, sizeof(buf),
                  "\"height\":%zu,\"nodes\":%zu,\"entries\":%zu,"
                  "\"supernodes\":%zu,\"depth_uniform\":%s,\"levels\":[",
                  shape->height, shape->node_count, shape->entry_count,
                  shape->supernode_count,
                  shape->depth_uniform ? "true" : "false");
    rendered += buf;
    for (std::size_t l = 0; l < shape->levels.size(); ++l) {
      const tsss::index::LevelStats& lv = shape->levels[l];
      if (l > 0) rendered += ',';
      std::snprintf(buf, sizeof(buf),
                    "{\"level\":%zu,\"nodes\":%zu,\"entries\":%zu,"
                    "\"min_fanout\":%zu,\"max_fanout\":%zu,"
                    "\"avg_fanout\":%.6g,\"avg_occupancy\":%.6g,",
                    lv.level, lv.nodes, lv.entries, lv.min_fanout,
                    lv.max_fanout, lv.avg_fanout, lv.avg_occupancy);
      rendered += buf;
      rendered += "\"occupancy_histogram\":[";
      for (std::size_t b = 0; b < 10; ++b) {
        std::snprintf(buf, sizeof(buf), "%s%zu", b > 0 ? "," : "",
                      lv.occupancy_histogram[b]);
        rendered += buf;
      }
      std::snprintf(buf, sizeof(buf),
                    "],\"overlap_volume\":%.6g,\"dead_space_ratio\":%.6g,"
                    "\"margin_sum\":%.6g}",
                    lv.overlap_volume, lv.dead_space_ratio, lv.margin_sum);
      rendered += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "]},\"pool\":{\"capacity\":%zu,\"profiled_pages\":%zu,"
                  "\"levels\":[",
                  (*engine)->pool().capacity(), profile.size());
    rendered += buf;
    bool first = true;
    for (std::size_t l = 0; l < by_level.size(); ++l) {
      const PoolLevelRollup& b = by_level[l];
      if (b.pages == 0) continue;
      std::snprintf(buf, sizeof(buf),
                    "%s{\"level\":%zu,\"pages\":%zu,\"accesses\":%llu,"
                    "\"misses\":%llu,\"evictions\":%llu}",
                    first ? "" : ",", l, b.pages,
                    static_cast<unsigned long long>(b.accesses),
                    static_cast<unsigned long long>(b.misses),
                    static_cast<unsigned long long>(b.evictions));
      rendered += buf;
      first = false;
    }
    std::snprintf(buf, sizeof(buf),
                  "],\"unclassified\":{\"pages\":%zu,\"accesses\":%llu,"
                  "\"misses\":%llu,\"evictions\":%llu},\"top_pages\":[",
                  unclassified.pages,
                  static_cast<unsigned long long>(unclassified.accesses),
                  static_cast<unsigned long long>(unclassified.misses),
                  static_cast<unsigned long long>(unclassified.evictions));
    rendered += buf;
    for (std::size_t i = 0; i < top_limit; ++i) {
      const tsss::storage::PageAccessStats& page = profile[i];
      auto it = page_level.find(page.page);
      // level -1 marks a page outside the node map (unclassified).
      const long long level =
          it != page_level.end() ? static_cast<long long>(it->second) : -1;
      std::snprintf(buf, sizeof(buf),
                    "%s{\"page\":%llu,\"level\":%lld,\"accesses\":%llu,"
                    "\"misses\":%llu,\"evictions\":%llu}",
                    i > 0 ? "," : "",
                    static_cast<unsigned long long>(page.page), level,
                    static_cast<unsigned long long>(page.accesses),
                    static_cast<unsigned long long>(page.misses),
                    static_cast<unsigned long long>(page.evictions));
      rendered += buf;
    }
    rendered += "]}}\n";
  } else {
    std::fprintf(stderr, "inspect: unknown --format '%s'\n", format.c_str());
    return 2;
  }

  const std::string out = flags.Get("out", "");
  if (!out.empty()) {
    if (int rc = WriteFileOrFail(out, rendered); rc != 0) return rc;
    std::printf("inspect report written to %s\n", out.c_str());
  } else {
    std::fputs(rendered.c_str(), stdout);
  }
  return MaybeDumpEventLog(flags);
}

/// Drives a small sample workload through a QueryService so the process-wide
/// registry has live counters (including the service latency histogram and
/// its p50/p90/p99 quantiles), then dumps it in Prometheus text and/or JSON.
int CmdStats(const Flags& flags) {
  const std::string format = flags.Get("format", "both");
  if (format != "prometheus" && format != "json" && format != "both") {
    std::fprintf(stderr, "stats: unknown --format '%s'\n", format.c_str());
    return 2;
  }
  if (flags.Has("no-workload")) {
    // Export whatever the process-wide registry already holds, without
    // opening an index or running queries — e.g. after other commands in the
    // same process, or to check the export formats against an empty registry.
    const auto samples = tsss::obs::MetricsRegistry::Global().Snapshot();
    if (format == "prometheus" || format == "both") {
      std::fputs(tsss::obs::ExportPrometheus(samples).c_str(), stdout);
    }
    if (format == "json" || format == "both") {
      std::fputs(tsss::obs::ExportJson(samples).c_str(), stdout);
    }
    return MaybeDumpEventLog(flags);
  }
  const std::string index_dir = flags.Get("index", "");
  if (index_dir.empty()) {
    std::fprintf(stderr, "stats: --index dir is required\n");
    return 2;
  }
  auto engine = tsss::core::SearchEngine::Open(index_dir);
  if (!engine.ok()) return Fail(engine.status());

  tsss::service::ServiceConfig service_config;
  service_config.num_workers = flags.GetSize("workers", 2);
  auto service =
      tsss::service::QueryService::Create(engine->get(), service_config);
  if (!service.ok()) return Fail(service.status());

  const std::size_t num_queries = flags.GetSize("queries", 25);
  const double eps = flags.GetDouble("eps", 0.5);
  const std::size_t n = (*engine)->config().window;
  const std::size_t num_series = (*engine)->dataset().size();
  if (num_series == 0) return Fail(Status::FailedPrecondition("empty index"));

  // Deterministic sample workload (windows of the indexed data itself),
  // submitted closed-loop so the queue never fills.
  for (std::size_t i = 0; i < num_queries; ++i) {
    const auto series = static_cast<tsss::storage::SeriesId>(i % num_series);
    auto values = (*engine)->dataset().Values(series);
    if (!values.ok()) return Fail(values.status());
    if (values->size() < n) continue;
    const std::size_t offset = (i * 37) % (values->size() - n + 1);
    tsss::service::QueryRequest request;
    request.kind = tsss::service::QueryKind::kRange;
    request.query.assign(
        values->begin() + static_cast<std::ptrdiff_t>(offset),
        values->begin() + static_cast<std::ptrdiff_t>(offset + n));
    request.eps = eps;
    auto future = (*service)->Submit(std::move(request));
    if (!future.ok()) return Fail(future.status());
    const tsss::service::QueryResponse response = future->get();
    if (!response.status.ok()) return Fail(response.status);
  }
  (*service)->Shutdown();

  const auto samples = tsss::obs::MetricsRegistry::Global().Snapshot();
  if (format == "prometheus" || format == "both") {
    std::fputs(tsss::obs::ExportPrometheus(samples).c_str(), stdout);
  }
  if (format == "json" || format == "both") {
    std::fputs(tsss::obs::ExportJson(samples).c_str(), stdout);
  }
  return MaybeDumpEventLog(flags);
}

/// Renders the /statusz body: the one-page operator view of a live serve
/// process — build info, uptime, index/engine configuration, service
/// counters, per-shard pool hit ratios and the flight recorder's state.
std::string RenderStatusz(const std::string& index_dir, const char* mode,
                          const tsss::core::EngineConfig& config,
                          std::size_t workers,
                          std::chrono::steady_clock::time_point started,
                          const tsss::service::ServiceMetrics& m,
                          const std::vector<double>& shard_hit_rates) {
  char buf[512];
  std::string out = "tsss_cli serve\n\n";
  std::snprintf(buf, sizeof(buf), "build            : %s (%s)\n", __VERSION__,
#ifdef NDEBUG
                "release"
#else
                "debug"
#endif
  );
  out += buf;
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  std::snprintf(buf, sizeof(buf), "uptime_s         : %.1f\n", uptime);
  out += buf;
  out += "index            : " + index_dir + "\n";
  out += "mode             : " + std::string(mode) + "\n";
  std::snprintf(buf, sizeof(buf),
                "window / stride  : %zu / %zu\n"
                "sub-trail length : %zu\n"
                "workers          : %zu\n",
                config.window, config.stride, config.subtrail_len, workers);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "queue depth      : %zu\n"
                "submitted        : %llu\n"
                "served           : %llu\n"
                "rejected         : %llu\n"
                "timed out        : %llu\n"
                "cancelled        : %llu\n"
                "failed           : %llu\n",
                m.queue_depth, static_cast<unsigned long long>(m.submitted),
                static_cast<unsigned long long>(m.served),
                static_cast<unsigned long long>(m.rejected),
                static_cast<unsigned long long>(m.timed_out),
                static_cast<unsigned long long>(m.cancelled),
                static_cast<unsigned long long>(m.failed));
  out += buf;
  // The headline quantiles are the trailing minute (what the server is
  // doing NOW); the cumulative-since-start numbers are labelled as such so
  // the two are never conflated — a since-start p99 can hide a live burst
  // for hours.
  const tsss::obs::RollingWindow::Snapshot& w = m.last_minute;
  std::snprintf(buf, sizeof(buf),
                "window (60s)     : count %llu, errors %llu, deadline %llu\n"
                "p50 latency (ms) : %.3f (60s window)\n"
                "p99 latency (ms) : %.3f (60s window)\n"
                "since_start p50  : %.3f ms\n"
                "since_start p99  : %.3f ms\n",
                static_cast<unsigned long long>(w.count),
                static_cast<unsigned long long>(w.errors),
                static_cast<unsigned long long>(w.deadline_exceeded), w.p50_ms,
                w.p99_ms, m.p50_latency_ms, m.p99_latency_ms);
  out += buf;
  for (std::size_t i = 0; i < shard_hit_rates.size(); ++i) {
    if (shard_hit_rates.size() == 1) {
      std::snprintf(buf, sizeof(buf), "pool hit rate    : %.4f\n",
                    shard_hit_rates[i]);
    } else {
      std::snprintf(buf, sizeof(buf), "pool hit rate s%-2zu: %.4f\n", i,
                    shard_hit_rates[i]);
    }
    out += buf;
  }
  const tsss::obs::FlightRecorder& recorder =
      tsss::obs::FlightRecorder::Global();
  std::snprintf(buf, sizeof(buf),
                "flight recorder  : %s, threshold_us %llu, captured %llu, "
                "dropped %llu\n",
                recorder.armed() ? "armed" : "disarmed",
                static_cast<unsigned long long>(recorder.threshold_us()),
                static_cast<unsigned long long>(recorder.captured()),
                static_cast<unsigned long long>(recorder.dropped()));
  out += buf;
  return out;
}

/// Extracts `key` from a "k=v&k2=v2" query string as a number; `fallback`
/// when absent or non-numeric. The input is untrusted request text.
std::uint64_t QueryParam(const std::string& query, const std::string& key,
                         std::uint64_t fallback) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      const std::string value = query.substr(eq + 1, amp - eq - 1);
      if (!value.empty() &&
          value.find_first_not_of("0123456789") == std::string::npos) {
        return static_cast<std::uint64_t>(std::atoll(value.c_str()));
      }
      return fallback;
    }
    pos = amp + 1;
  }
  return fallback;
}

/// SLO targets for /healthz from the serve flags.
tsss::obs::SloConfig SloFromFlags(const Flags& flags) {
  tsss::obs::SloConfig slo;
  slo.target_p99_ms = flags.GetDouble("slo-p99-ms", 500.0);
  slo.target_availability = flags.GetDouble("slo-availability", 0.999);
  return slo;
}

/// Registers the profiler and SLO endpoints on a serve instance. `rolling`
/// is the service's (or fan-out pool's) rolling window; both it and the
/// engine behind it must outlive the server.
///
/// /pprofz runs inline on the accept thread: the request *is* the profiling
/// session (start, sleep seconds, stop, render), which is the right model
/// for a one-at-a-time debug surface — a second concurrent request gets a
/// clean 500 from the Start() FailedPrecondition, never a torn profile.
void RegisterServeEndpoints(tsss::obs::DebugServer* server,
                            tsss::obs::RollingWindow* rolling,
                            const tsss::obs::SloConfig& slo) {
  server->RegisterHandler(
      "/pprofz", "application/json",
      tsss::obs::DebugServer::QueryHandler([](const std::string& query) {
        const auto seconds = QueryParam(query, "seconds", 2);
        const auto hz = QueryParam(query, "hz", 97);
        tsss::obs::SamplingProfiler::Options options;
        options.hz = static_cast<int>(std::min<std::uint64_t>(hz, 1000));
        tsss::obs::SamplingProfiler profiler(options);
        if (tsss::Status s = profiler.Start(); !s.ok()) {
          return tsss::obs::HttpResponse{500, s.ToString() + "\n"};
        }
        std::this_thread::sleep_for(
            std::chrono::seconds(std::clamp<std::uint64_t>(seconds, 1, 30)));
        return tsss::obs::HttpResponse{200, profiler.Stop().ToJson()};
      }));
  server->RegisterHandler(
      "/healthz", "application/json",
      tsss::obs::DebugServer::QueryHandler(
          [rolling, slo](const std::string& /*query*/) {
            const tsss::obs::SloState state = tsss::obs::EvaluateSlo(*rolling,
                                                                     slo);
            return tsss::obs::HttpResponse{
                state.healthy ? 200 : 503,
                tsss::obs::RenderHealthzJson(state, slo)};
          }));
}

/// Announces the endpoints and blocks until --duration-s elapses (bounded
/// run, for CI) or forever (operator kills the process).
int ServeUntilDone(const Flags& flags, tsss::obs::DebugServer& server) {
  std::printf("serving diagnostics on http://%s:%d/ "
              "(/metricsz /varz /statusz /eventz /flightz /pprofz /healthz)\n",
              flags.Get("bind", "127.0.0.1").c_str(), server.port());
  std::fflush(stdout);
  const std::size_t duration_s = flags.GetSize("duration-s", 0);
  if (duration_s > 0) {
    std::this_thread::sleep_for(std::chrono::seconds(duration_s));
    server.Shutdown();
    std::printf("serve: --duration-s elapsed, shutting down\n");
    return 0;
  }
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
}

/// Live diagnostics: open the index (sharded or single-engine), optionally
/// arm the flight recorder and pre-drive a sample workload, then serve the
/// debug endpoints until the duration elapses or the process is killed.
int CmdServe(const Flags& flags) {
  const std::string index_dir = flags.Get("index", "");
  if (index_dir.empty()) {
    std::fprintf(stderr, "serve: --index dir is required\n");
    return 2;
  }
  if (flags.Has("slow-ms")) {
    // --slow-ms 0 captures every completion (still rate-limited), which is
    // how CI exercises /flightz deterministically.
    tsss::obs::FlightRecorder::Global().Arm(
        1000 * static_cast<std::uint64_t>(flags.GetSize("slow-ms", 0)));
  }
  tsss::obs::DebugServer::Options options;
  options.port = static_cast<int>(flags.GetSize("port", 8080));
  options.bind_address = flags.Get("bind", "127.0.0.1");

  const auto started = std::chrono::steady_clock::now();
  const std::size_t sample = flags.GetSize("sample-queries", 0);
  const double eps = flags.GetDouble("eps", 0.5);

  if (IsShardedIndex(index_dir)) {
    auto engine = tsss::shard::ShardedEngine::Open(index_dir,
                                                   flags.GetSize("workers", 0));
    if (!engine.ok()) return Fail(engine.status());
    // The server is created after the engine so its destructor (Shutdown)
    // runs first: no handler can observe a dying engine.
    auto server = tsss::obs::DebugServer::Start(options);
    if (!server.ok()) return Fail(server.status());

    tsss::shard::ShardedEngine* raw = engine->get();
    const std::size_t workers = flags.GetSize("workers", 0) != 0
                                    ? flags.GetSize("workers", 0)
                                    : raw->num_shards();
    (*server)->RegisterHandler(
        "/statusz", "text/plain", [raw, index_dir, workers, started] {
          std::vector<double> rates;
          for (const tsss::shard::ShardInfo& info : raw->ShardInfos()) {
            rates.push_back(info.pool_hit_rate);
          }
          return RenderStatusz(index_dir, "sharded", raw->engine_config(),
                               workers, started, raw->FanoutStats(), rates);
        });
    RegisterServeEndpoints(server->get(), &raw->rolling(), SloFromFlags(flags));

    // Sample workload: windows of the indexed data, fanned out through the
    // engine's internal service so cost attribution and the flight recorder
    // see real completions.
    const std::size_t num_series =
        static_cast<std::size_t>(raw->total_series());
    const std::size_t n = raw->engine_config().window;
    for (std::size_t i = 0; i < sample && num_series > 0; ++i) {
      const auto series = static_cast<tsss::storage::SeriesId>(i % num_series);
      auto values = raw->SeriesValues(series);
      if (!values.ok()) return Fail(values.status());
      if (values->size() < n) continue;
      const std::size_t offset = (i * 37) % (values->size() - n + 1);
      const tsss::geom::Vec query(
          values->begin() + static_cast<std::ptrdiff_t>(offset),
          values->begin() + static_cast<std::ptrdiff_t>(offset + n));
      if (auto matches = raw->RangeQuery(query, eps); !matches.ok()) {
        return Fail(matches.status());
      }
    }
    return ServeUntilDone(flags, **server);
  }

  auto engine = tsss::core::SearchEngine::Open(index_dir);
  if (!engine.ok()) return Fail(engine.status());
  tsss::service::ServiceConfig service_config;
  service_config.num_workers = flags.GetSize("workers", 2);
  auto service =
      tsss::service::QueryService::Create(engine->get(), service_config);
  if (!service.ok()) return Fail(service.status());
  auto server = tsss::obs::DebugServer::Start(options);
  if (!server.ok()) return Fail(server.status());

  tsss::core::SearchEngine* raw_engine = engine->get();
  tsss::service::QueryService* raw_service = service->get();
  (*server)->RegisterHandler(
      "/statusz", "text/plain",
      [raw_engine, raw_service, index_dir, started] {
        const tsss::service::ServiceMetrics m = raw_service->Stats();
        return RenderStatusz(index_dir, "single", raw_engine->config(),
                             raw_service->config().num_workers, started, m,
                             {m.pool_hit_rate});
      });
  RegisterServeEndpoints(server->get(), &raw_service->rolling(),
                         SloFromFlags(flags));

  const std::size_t num_series = raw_engine->dataset().size();
  const std::size_t n = raw_engine->config().window;
  for (std::size_t i = 0; i < sample && num_series > 0; ++i) {
    const auto series = static_cast<tsss::storage::SeriesId>(i % num_series);
    auto values = raw_engine->dataset().Values(series);
    if (!values.ok()) return Fail(values.status());
    if (values->size() < n) continue;
    const std::size_t offset = (i * 37) % (values->size() - n + 1);
    tsss::service::QueryRequest request;
    request.kind = tsss::service::QueryKind::kRange;
    request.query.assign(values->begin() + static_cast<std::ptrdiff_t>(offset),
                         values->begin() +
                             static_cast<std::ptrdiff_t>(offset + n));
    request.eps = eps;
    auto future = raw_service->Submit(std::move(request));
    if (!future.ok()) return Fail(future.status());
    const tsss::service::QueryResponse response = future->get();
    if (!response.status.ok()) return Fail(response.status);
  }
  return ServeUntilDone(flags, **server);
}

/// In-process CPU profile of a query workload: start the sampling profiler,
/// drive deterministic range queries (windows of the indexed data) until
/// --seconds elapses or --queries completes, stop, and report per-phase CPU
/// attribution plus folded stacks. The phase totals sum exactly to the
/// sample count — that identity is checked here and by
/// bench_schema_check --schema profile.
int CmdProfile(const Flags& flags) {
  const std::string index_dir = flags.Get("index", "");
  if (index_dir.empty()) {
    std::fprintf(stderr, "profile: --index dir is required\n");
    return 2;
  }
  const double seconds = flags.GetDouble("seconds", 5.0);
  const std::size_t max_queries = flags.GetSize("queries", 0);
  const double eps = flags.GetDouble("eps", 0.5);

  // One query runner over either engine flavor.
  std::unique_ptr<tsss::core::SearchEngine> single;
  std::unique_ptr<tsss::shard::ShardedEngine> sharded;
  std::size_t num_series = 0;
  std::size_t window = 0;
  if (IsShardedIndex(index_dir)) {
    auto engine = tsss::shard::ShardedEngine::Open(index_dir,
                                                   flags.GetSize("workers", 0));
    if (!engine.ok()) return Fail(engine.status());
    sharded = std::move(engine).value();
    num_series = static_cast<std::size_t>(sharded->total_series());
    window = sharded->engine_config().window;
  } else {
    auto engine = tsss::core::SearchEngine::Open(index_dir);
    if (!engine.ok()) return Fail(engine.status());
    single = std::move(engine).value();
    num_series = single->dataset().size();
    window = single->config().window;
  }
  if (num_series == 0) return Fail(Status::FailedPrecondition("empty index"));

  tsss::obs::SamplingProfiler::Options options;
  options.hz = static_cast<int>(flags.GetSize("hz", 97));
  tsss::obs::SamplingProfiler profiler(options);
  if (Status s = profiler.Start(); !s.ok()) return Fail(s);

  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
  std::size_t queries = 0;
  while (std::chrono::steady_clock::now() < deadline &&
         (max_queries == 0 || queries < max_queries)) {
    const auto series =
        static_cast<tsss::storage::SeriesId>(queries % num_series);
    auto values = [&]() -> tsss::Result<std::span<const double>> {
      if (sharded != nullptr) return sharded->SeriesValues(series);
      return single->dataset().Values(series);
    }();
    if (!values.ok()) return Fail(values.status());
    if (values->size() < window) {
      ++queries;
      continue;
    }
    const std::size_t offset = (queries * 37) % (values->size() - window + 1);
    const tsss::geom::Vec query(
        values->begin() + static_cast<std::ptrdiff_t>(offset),
        values->begin() + static_cast<std::ptrdiff_t>(offset + window));
    auto matches = [&]() -> tsss::Result<std::vector<tsss::core::Match>> {
      if (sharded != nullptr) return sharded->RangeQuery(query, eps);
      return single->RangeQuery(query, eps);
    }();
    if (!matches.ok()) return Fail(matches.status());
    ++queries;
  }
  const tsss::obs::Profile profile = profiler.Stop();

  std::printf("profiled %zu queries for %.2fs at %d Hz: %llu samples"
              " (%llu dropped)\n\n",
              queries, profile.seconds, profile.hz,
              static_cast<unsigned long long>(profile.samples),
              static_cast<unsigned long long>(profile.dropped));
  std::printf("%-24s %10s %8s\n", "phase", "samples", "cpu%");
  std::uint64_t phase_total = 0;
  for (const tsss::obs::ProfilePhase& phase : profile.phases) {
    phase_total += phase.samples;
    std::printf("%-24s %10llu %7.1f%%\n", phase.name.c_str(),
                static_cast<unsigned long long>(phase.samples),
                profile.samples == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(phase.samples) /
                          static_cast<double>(profile.samples));
  }
  if (phase_total != profile.samples) {
    std::fprintf(stderr,
                 "profile: phase attribution lost samples (%llu != %llu)\n",
                 static_cast<unsigned long long>(phase_total),
                 static_cast<unsigned long long>(profile.samples));
    return 1;
  }
  std::printf("\n# top stacks (folded):\n");
  const std::size_t top = std::min<std::size_t>(profile.folded.size(), 5);
  for (std::size_t i = 0; i < top; ++i) {
    std::printf("%s %llu\n", profile.folded[i].stack.c_str(),
                static_cast<unsigned long long>(profile.folded[i].samples));
  }

  const std::string out_path = flags.Get("out", "");
  if (!out_path.empty()) {
    if (int rc = WriteFileOrFail(out_path, profile.ToFolded()); rc != 0) {
      return rc;
    }
    std::printf("\nfolded stacks written to %s\n", out_path.c_str());
  }
  const std::string json_path = flags.Get("json-out", "");
  if (!json_path.empty()) {
    if (int rc = WriteFileOrFail(json_path, profile.ToJson()); rc != 0) {
      return rc;
    }
    std::printf("profile JSON written to %s\n", json_path.c_str());
  }
  return 0;
}

/// q-quantile of the pooled client latencies, in ms (destructive).
double PercentileMs(std::vector<double>* latencies_ms, double q) {
  if (latencies_ms->empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(latencies_ms->size() - 1));
  std::nth_element(latencies_ms->begin(),
                   latencies_ms->begin() + static_cast<std::ptrdiff_t>(rank),
                   latencies_ms->end());
  return (*latencies_ms)[rank];
}

/// One serve-bench run, shared between the single-engine and sharded paths.
struct ServeBenchStats {
  std::size_t shards = 1;
  std::size_t workers = 0;
  std::size_t clients = 0;
  std::size_t queries = 0;  ///< logical queries completed
  double elapsed = 0.0;
  double client_p50_ms = 0.0;
  double client_p99_ms = 0.0;
  tsss::service::ServiceMetrics metrics;  ///< service / fan-out pool view
  std::vector<double> shard_hit_ratio;    ///< per shard; single engine: one
  std::size_t series = 0;
  std::size_t values_per_series = 0;
};

void PrintServeBench(const ServeBenchStats& r) {
  std::printf("served %zu queries in %.2fs (%.1f queries/sec, %zu workers, "
              "%zu clients, %zu shard%s)\n\n",
              r.queries, r.elapsed,
              static_cast<double>(r.queries) / r.elapsed, r.workers,
              r.clients, r.shards, r.shards == 1 ? "" : "s");
  std::printf("%-22s %12s\n", "metric", "value");
  std::printf("%-22s %12llu\n", "queries submitted",
              static_cast<unsigned long long>(r.metrics.submitted));
  std::printf("%-22s %12llu\n", "queries served",
              static_cast<unsigned long long>(r.metrics.served));
  std::printf("%-22s %12llu\n", "rejected (queue full)",
              static_cast<unsigned long long>(r.metrics.rejected));
  std::printf("%-22s %12llu\n", "timed out",
              static_cast<unsigned long long>(r.metrics.timed_out));
  std::printf("%-22s %12llu\n", "cancelled",
              static_cast<unsigned long long>(r.metrics.cancelled));
  std::printf("%-22s %12llu\n", "failed",
              static_cast<unsigned long long>(r.metrics.failed));
  std::printf("%-22s %12zu\n", "queue depth", r.metrics.queue_depth);
  std::printf("%-22s %12.3f\n", "client p50 (ms)", r.client_p50_ms);
  std::printf("%-22s %12.3f\n", "client p99 (ms)", r.client_p99_ms);
  std::printf("%-22s %12.3f\n", "p50 latency (ms)", r.metrics.p50_latency_ms);
  std::printf("%-22s %12.3f\n", "p99 latency (ms)", r.metrics.p99_latency_ms);
  for (std::size_t i = 0; i < r.shard_hit_ratio.size(); ++i) {
    char label[48];
    if (r.shards == 1) {
      std::snprintf(label, sizeof(label), "pool hit rate");
    } else {
      std::snprintf(label, sizeof(label), "pool hit rate s%zu", i);
    }
    std::printf("%-22s %12.4f\n", label, r.shard_hit_ratio[i]);
  }
}

/// Writes the run as a schema-v1 BENCH JSON report (bench/bench_common.h) so
/// serve-bench output flows into the same tooling as run_benches.sh reports
/// (bench_schema_check, bench_diff). One row per run; per-shard pool hit
/// rates land as pool_hit_ratio_s<i> columns.
int MaybeWriteServeBenchJson(const Flags& flags, const ServeBenchStats& r,
                             double eps) {
  const std::string path = flags.Get("json-out", "");
  if (path.empty()) return 0;
  char buf[768];
  std::string out = "{\"schema_version\":1,\"name\":\"serve_bench\",";
  std::snprintf(buf, sizeof(buf),
                "\"env\":{\"companies\":%zu,\"values\":%zu,\"queries\":%zu,"
                "\"full\":0},",
                r.series, r.values_per_series, r.queries);
  out += buf;
  std::snprintf(buf, sizeof(buf), "\"meta\":{\"eps\":%.6g,\"shards\":%zu},",
                eps, r.shards);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"rows\":[{\"shards\":%zu,\"workers\":%zu,\"clients\":%zu,"
                "\"queries\":%zu,\"seconds\":%.9g,\"qps\":%.9g,"
                "\"client_p50_ms\":%.9g,\"client_p99_ms\":%.9g,"
                "\"service_p50_ms\":%.9g,\"service_p99_ms\":%.9g,"
                "\"submitted\":%llu,\"served\":%llu,\"rejected\":%llu,"
                "\"timed_out\":%llu,\"failed\":%llu",
                r.shards, r.workers, r.clients, r.queries, r.elapsed,
                static_cast<double>(r.queries) / r.elapsed, r.client_p50_ms,
                r.client_p99_ms, r.metrics.p50_latency_ms,
                r.metrics.p99_latency_ms,
                static_cast<unsigned long long>(r.metrics.submitted),
                static_cast<unsigned long long>(r.metrics.served),
                static_cast<unsigned long long>(r.metrics.rejected),
                static_cast<unsigned long long>(r.metrics.timed_out),
                static_cast<unsigned long long>(r.metrics.failed));
  out += buf;
  for (std::size_t i = 0; i < r.shard_hit_ratio.size(); ++i) {
    std::snprintf(buf, sizeof(buf), ",\"pool_hit_ratio_s%zu\":%.6g", i,
                  r.shard_hit_ratio[i]);
    out += buf;
  }
  out += "}]}\n";
  if (int rc = WriteFileOrFail(path, out); rc != 0) return rc;
  std::printf("json report written to %s\n", path.c_str());
  return 0;
}

/// Sharded serve-bench: client threads drive range queries straight into the
/// ShardedEngine, whose internal fan-out pool (sized by --workers) is the
/// serving path being measured.
int CmdServeBenchSharded(const Flags& flags, const std::string& index_dir) {
  auto engine = tsss::shard::ShardedEngine::Open(
      index_dir, flags.GetSize("workers", 0));
  if (!engine.ok()) return Fail(engine.status());
  const std::size_t requested_shards = flags.GetSize("shards", 0);
  if (requested_shards != 0 && requested_shards != (*engine)->num_shards()) {
    std::fprintf(stderr, "serve-bench: index has %u shards, not %zu\n",
                 (*engine)->num_shards(), requested_shards);
    return 2;
  }

  const std::size_t num_queries = flags.GetSize("queries", 200);
  const std::size_t clients = flags.GetSize("clients", 8);
  const double eps = flags.GetDouble("eps", 0.5);
  const std::size_t n = (*engine)->engine_config().window;
  const std::size_t num_series =
      static_cast<std::size_t>((*engine)->total_series());
  if (num_series == 0) return Fail(Status::FailedPrecondition("empty index"));

  // Deterministic workload: stride through the dataset's own windows.
  std::vector<tsss::geom::Vec> workload;
  workload.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    const auto series = static_cast<tsss::storage::SeriesId>(i % num_series);
    auto values = (*engine)->SeriesValues(series);
    if (!values.ok()) return Fail(values.status());
    if (values->size() < n) continue;
    const std::size_t offset = (i * 37) % (values->size() - n + 1);
    workload.emplace_back(
        values->begin() + static_cast<std::ptrdiff_t>(offset),
        values->begin() + static_cast<std::ptrdiff_t>(offset + n));
  }

  std::vector<std::vector<double>> latencies_ms(clients);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> client_threads;
  client_threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      for (std::size_t i = c; i < workload.size(); i += clients) {
        const auto begin = std::chrono::steady_clock::now();
        auto matches = (*engine)->RangeQuery(workload[i], eps);
        if (!matches.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       matches.status().ToString().c_str());
          return;
        }
        latencies_ms[c].push_back(
            1e3 * std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - begin)
                      .count());
      }
    });
  }
  for (std::thread& t : client_threads) t.join();

  ServeBenchStats r;
  r.elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  r.shards = (*engine)->num_shards();
  r.workers = flags.GetSize("workers", 0);
  if (r.workers == 0) r.workers = r.shards;
  r.clients = clients;
  r.queries = workload.size();
  r.metrics = (*engine)->FanoutStats();
  std::vector<double> all_ms;
  for (const auto& per_client : latencies_ms) {
    all_ms.insert(all_ms.end(), per_client.begin(), per_client.end());
  }
  r.client_p50_ms = PercentileMs(&all_ms, 0.50);
  r.client_p99_ms = PercentileMs(&all_ms, 0.99);
  for (const tsss::shard::ShardInfo& info : (*engine)->ShardInfos()) {
    r.shard_hit_ratio.push_back(info.pool_hit_rate);
  }
  r.series = num_series;
  if (auto first = (*engine)->SeriesValues(0); first.ok()) {
    r.values_per_series = first->size();
  }

  PrintServeBench(r);
  if (int rc = MaybeWriteServeBenchJson(flags, r, eps); rc != 0) return rc;
  return MaybeDumpEventLog(flags);
}

/// Drives the index through QueryService from several client threads and
/// prints the resulting ServiceMetrics table. Queries are windows sampled
/// from the indexed data itself, so every query does representative work.
int CmdServeBench(const Flags& flags) {
  const std::string index_dir = flags.Get("index", "");
  if (index_dir.empty()) {
    std::fprintf(stderr, "serve-bench: --index dir is required\n");
    return 2;
  }
  if (IsShardedIndex(index_dir)) return CmdServeBenchSharded(flags, index_dir);
  if (flags.GetSize("shards", 1) > 1) {
    std::fprintf(stderr,
                 "serve-bench: '%s' is a single-engine index; build it with "
                 "--shards N first\n",
                 index_dir.c_str());
    return 2;
  }
  auto engine = tsss::core::SearchEngine::Open(index_dir);
  if (!engine.ok()) return Fail(engine.status());

  tsss::service::ServiceConfig service_config;
  service_config.num_workers = flags.GetSize("workers", 4);
  service_config.queue_capacity = flags.GetSize("queue", 64);
  service_config.default_timeout =
      std::chrono::milliseconds(flags.GetSize("timeout-ms", 0));
  auto service =
      tsss::service::QueryService::Create(engine->get(), service_config);
  if (!service.ok()) return Fail(service.status());

  const std::size_t num_queries = flags.GetSize("queries", 200);
  const std::size_t clients =
      flags.GetSize("clients", 2 * service_config.num_workers);
  const double eps = flags.GetDouble("eps", 0.5);
  const std::size_t n = (*engine)->config().window;
  const std::size_t num_series = (*engine)->dataset().size();
  if (num_series == 0) return Fail(Status::FailedPrecondition("empty index"));

  // Deterministic workload: stride through the dataset's own windows.
  std::vector<tsss::service::QueryRequest> workload;
  workload.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    const auto series =
        static_cast<tsss::storage::SeriesId>(i % num_series);
    auto values = (*engine)->dataset().Values(series);
    if (!values.ok()) return Fail(values.status());
    if (values->size() < n) continue;
    const std::size_t offset = (i * 37) % (values->size() - n + 1);
    tsss::service::QueryRequest request;
    request.kind = tsss::service::QueryKind::kRange;
    request.query.assign(
        values->begin() + static_cast<std::ptrdiff_t>(offset),
        values->begin() + static_cast<std::ptrdiff_t>(offset + n));
    request.eps = eps;
    workload.push_back(std::move(request));
  }

  std::vector<std::vector<double>> latencies_ms(clients);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> client_threads;
  client_threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      // Closed loop: each client walks its slice of the workload, retrying
      // on queue-full rejections.
      for (std::size_t i = c; i < workload.size(); i += clients) {
        const auto begin = std::chrono::steady_clock::now();
        for (;;) {
          auto future = (*service)->Submit(workload[i]);
          if (future.ok()) {
            (void)future->get();
            break;
          }
          if (future.status().code() !=
              tsss::StatusCode::kResourceExhausted) {
            std::fprintf(stderr, "submit failed: %s\n",
                         future.status().ToString().c_str());
            return;
          }
          std::this_thread::yield();
        }
        latencies_ms[c].push_back(
            1e3 * std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - begin)
                      .count());
      }
    });
  }
  for (std::thread& t : client_threads) t.join();

  ServeBenchStats r;
  r.elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  r.shards = 1;
  r.workers = service_config.num_workers;
  r.clients = clients;
  r.queries = workload.size();
  r.metrics = (*service)->Stats();
  std::vector<double> all_ms;
  for (const auto& per_client : latencies_ms) {
    all_ms.insert(all_ms.end(), per_client.begin(), per_client.end());
  }
  r.client_p50_ms = PercentileMs(&all_ms, 0.50);
  r.client_p99_ms = PercentileMs(&all_ms, 0.99);
  r.shard_hit_ratio.push_back(r.metrics.pool_hit_rate);
  r.series = num_series;
  r.values_per_series = (*engine)->dataset().total_values() / num_series;

  PrintServeBench(r);
  if (int rc = MaybeWriteServeBenchJson(flags, r, eps); rc != 0) return rc;
  return MaybeDumpEventLog(flags);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "build") return CmdBuild(flags);
  if (command == "info") return CmdInfo(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "knn") return CmdKnn(flags);
  if (command == "explain") return CmdExplain(flags);
  if (command == "inspect") return CmdInspect(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "profile") return CmdProfile(flags);
  if (command == "serve-bench") return CmdServeBench(flags);
  return Usage();
}
