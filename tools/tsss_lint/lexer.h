#ifndef TSSS_TOOLS_TSSS_LINT_LEXER_H_
#define TSSS_TOOLS_TSSS_LINT_LEXER_H_

// Lightweight C++ tokenizer for tsss_lint. Not a real C++ lexer: it only
// needs to be faithful enough to (a) never mistake string/comment contents
// for code and (b) keep comments as first-class tokens, because two of the
// checks key off comment conventions (`// discard-ok:`, `// TSSS_HOT_*`).

#include <string>
#include <string_view>
#include <vector>

namespace tsss_lint {

enum class TokKind {
  kIdent,    ///< identifiers and keywords, undistinguished
  kNumber,   ///< numeric literal (value irrelevant to every check)
  kString,   ///< "..." / R"(...)" — text excludes quotes
  kChar,     ///< '...'
  kPunct,    ///< one operator/punctuator; "::" and "->" kept whole
  kComment,  ///< // or /* */ — text excludes the comment markers
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;  ///< 1-based line of the token's first character
};

/// Tokenizes `text`. Never fails: unterminated constructs are closed at EOF,
/// bytes that fit no token class are emitted as single-char kPunct. Line
/// splices (backslash-newline) are honored inside nothing — the checks are
/// line-oriented and the tree does not use them.
std::vector<Token> Lex(std::string_view text);

/// True for tokens the structural checks should skip.
inline bool IsComment(const Token& token) {
  return token.kind == TokKind::kComment;
}

}  // namespace tsss_lint

#endif  // TSSS_TOOLS_TSSS_LINT_LEXER_H_
