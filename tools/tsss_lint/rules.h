#ifndef TSSS_TOOLS_TSSS_LINT_RULES_H_
#define TSSS_TOOLS_TSSS_LINT_RULES_H_

// Rule file (layers.toml) for the layering check. The file is the single
// machine-readable statement of the architecture's layer DAG; DESIGN.md §12
// is its prose twin. Parsed with a minimal TOML subset: `[layer.<name>]`
// tables, string and string-array values, `#` comments. That subset is the
// whole grammar the rule file needs — a full TOML parser would be a
// dependency for no gain (the json_mini.h argument).

#include <map>
#include <set>
#include <string>
#include <vector>

namespace tsss_lint {

struct Layer {
  std::string name;
  /// Repo-relative directory prefix, e.g. "src/tsss/geom".
  std::string path;
  /// Names of layers this one may include directly.
  std::vector<std::string> deps;
};

/// A narrow-waist restriction: a single header that only the named layers
/// may include, even when the owning layer is otherwise among their deps.
/// `[restrict.<name>]` tables in layers.toml, e.g. the debug HTTP server
/// lives in obs/ (so everything can see obs) but only the serving layers
/// may pull a socket listener into their object files.
struct Restrict {
  std::string name;
  /// Repo-relative path of the restricted header, e.g.
  /// "src/tsss/obs/debug_server.h".
  std::string header;
  /// Layer names whose sources may include the header. The header itself
  /// and its own implementation file are always allowed; exempt paths
  /// (tests, bench, tools, ...) are exempt here too.
  std::vector<std::string> allowed;
};

struct LayerRules {
  /// In declaration order (error messages follow the file).
  std::vector<Layer> layers;
  /// Repo-relative prefixes exempt from layering (tests, bench, ...).
  std::vector<std::string> exempt_paths;
  /// Per-header include restrictions, tighter than the layer DAG.
  std::vector<Restrict> restricts;

  const Layer* LayerForPath(const std::string& repo_relative_path) const;
  bool IsExempt(const std::string& repo_relative_path) const;

  /// Transitive dependency closure per layer (includes the layer itself).
  std::map<std::string, std::set<std::string>> Closure() const;

  /// Returns the layer names on a dependency cycle, empty when the declared
  /// graph is a DAG. A rule file with a cycle defines no layering at all, so
  /// this is checked before any file is analyzed.
  std::vector<std::string> FindCycle() const;
};

/// Parses `path`. On failure returns false and sets `error`.
bool ParseRulesFile(const std::string& path, LayerRules* rules,
                    std::string* error);

/// Parses rule text (split out for tests).
bool ParseRulesText(const std::string& text, LayerRules* rules,
                    std::string* error);

}  // namespace tsss_lint

#endif  // TSSS_TOOLS_TSSS_LINT_RULES_H_
