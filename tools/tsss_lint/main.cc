// tsss_lint — project-specific static analysis for the tsss tree.
//
// Usage:
//   tsss_lint [--root DIR] [--rules FILE] [--checks a,b,...] [-v] [PATH...]
//   tsss_lint --list-waivers [--root DIR] [PATH...]
//
// Checks: layering, lock-order, status-discard, hot-path, pin-pairing,
// atomic-order, deadline-poll, float-hazard (default: all). With no PATH
// arguments the default scope is src tools bench fuzz under --root.
// Exit codes: 0 clean, 1 findings, 2 usage or IO error.
//
// See DESIGN.md §12 for the conventions the checks enforce.

#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tsss_lint/lint.h"

namespace {

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--root DIR] [--rules FILE] [--checks LIST] [-v] [PATH...]\n"
         "  --root DIR     repo root for layer prefixes (default: cwd)\n"
         "  --rules FILE   layer rule file (default: "
         "<root>/tools/tsss_lint/layers.toml)\n"
         "  --checks LIST  comma list of layering,lock-order,status-discard,"
         "hot-path,\n"
         "                 pin-pairing,atomic-order,deadline-poll,"
         "float-hazard\n"
         "  --list-waivers inventory every waiver comment (lint-ok, "
         "discard-ok,\n"
         "                 pin-ok, relaxed-ok, poll-ok) instead of linting\n"
         "  -v             verbose per-file progress on stderr\n"
         "  PATH...        files or directories, relative to --root "
         "(default: src tools bench fuzz)\n";
  return 2;
}

bool ParseChecks(const std::string& list, std::set<tsss_lint::Check>* out) {
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string name = list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (name == "layering") {
      out->insert(tsss_lint::Check::kLayering);
    } else if (name == "lock-order") {
      out->insert(tsss_lint::Check::kLockOrder);
    } else if (name == "status-discard") {
      out->insert(tsss_lint::Check::kStatusDiscard);
    } else if (name == "hot-path") {
      out->insert(tsss_lint::Check::kHotPath);
    } else if (name == "pin-pairing") {
      out->insert(tsss_lint::Check::kPinPairing);
    } else if (name == "atomic-order") {
      out->insert(tsss_lint::Check::kAtomicOrder);
    } else if (name == "deadline-poll") {
      out->insert(tsss_lint::Check::kDeadlinePoll);
    } else if (name == "float-hazard") {
      out->insert(tsss_lint::Check::kFloatHazard);
    } else if (!name.empty()) {
      std::cerr << "tsss_lint: unknown check '" << name << "'\n";
      return false;
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  tsss_lint::LintOptions options;
  bool list_waivers = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      options.root = argv[++i];
    } else if (arg == "--rules" && i + 1 < argc) {
      options.rules_path = argv[++i];
    } else if (arg == "--checks" && i + 1 < argc) {
      if (!ParseChecks(argv[++i], &options.checks)) return 2;
    } else if (arg == "--list-waivers") {
      list_waivers = true;
    } else if (arg == "-v" || arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "-h" || arg == "--help") {
      return Usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "tsss_lint: unknown flag '" << arg << "'\n";
      return Usage(argv[0]);
    } else {
      options.paths.push_back(arg);
    }
  }

  if (options.root.empty()) options.root = ".";
  if (options.rules_path.empty()) {
    options.rules_path = options.root + "/tools/tsss_lint/layers.toml";
  }
  if (options.paths.empty()) {
    options.paths = {"src", "tools", "bench", "fuzz"};
  }

  if (list_waivers) {
    const tsss_lint::WaiverResult result = tsss_lint::ListWaivers(options);
    if (!result.error.empty()) {
      std::cerr << "tsss_lint: error: " << result.error << "\n";
      return 2;
    }
    std::map<std::string, int> by_tag;
    for (const tsss_lint::Waiver& w : result.waivers) {
      std::cout << w.file << ":" << w.line << ": " << w.tag << ": "
                << w.reason << "\n";
      ++by_tag[w.tag];
    }
    std::cout << "tsss_lint: " << result.waivers.size() << " waiver(s)";
    for (const auto& [tag, n] : by_tag) {
      std::cout << " " << tag << "=" << n;
    }
    std::cout << "\n";
    return 0;
  }

  const tsss_lint::LintResult result = tsss_lint::RunLint(options);
  if (!result.error.empty()) {
    std::cerr << "tsss_lint: error: " << result.error << "\n";
    return 2;
  }
  for (const tsss_lint::Finding& finding : result.findings) {
    std::cout << tsss_lint::FormatFinding(finding) << "\n";
  }
  if (result.findings.empty()) {
    std::cout << "tsss_lint: clean\n";
    return 0;
  }
  std::cout << "tsss_lint: " << result.findings.size() << " finding(s)\n";
  return 1;
}
