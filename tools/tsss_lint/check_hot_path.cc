#include <set>
#include <string>
#include <vector>

#include "tsss_lint/checks.h"

namespace tsss_lint {

namespace {

/// Container-growth member calls banned in hot regions: each one can
/// reallocate, and ROADMAP item 1 (SIMD/SoA) assumes the hot loops run
/// against preallocated storage.
const std::set<std::string>& GrowthCalls() {
  static const std::set<std::string> kCalls = {
      "push_back", "emplace_back", "push_front", "emplace_front", "emplace",
      "insert",    "resize",       "reserve",    "append",        "assign",
  };
  return kCalls;
}

/// Free functions that allocate.
const std::set<std::string>& AllocCalls() {
  static const std::set<std::string> kCalls = {
      "make_unique", "make_shared", "malloc", "calloc", "realloc", "strdup",
  };
  return kCalls;
}

struct Region {
  std::string name;
  int begin_line = 0;
};

/// Extracts the marker name from a comment like " TSSS_HOT_BEGIN(name) ...".
std::string MarkerName(const std::string& comment, std::size_t at) {
  const std::size_t open = comment.find('(', at);
  if (open == std::string::npos) return "";
  const std::size_t close = comment.find(')', open + 1);
  if (close == std::string::npos) return "";
  return comment.substr(open + 1, close - open - 1);
}

}  // namespace

std::vector<Finding> CheckHotPath(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;

  for (const SourceFile& file : files) {
    // Pass 1: hot line ranges from the comment markers.
    std::vector<std::pair<int, int>> regions;  // [begin_line, end_line]
    std::vector<Region> open_regions;
    for (const Token& t : file.tokens) {
      if (!IsComment(t)) continue;
      // Only comments that *lead* with the marker count; prose that merely
      // mentions the convention (docs, this linter) must not open a region.
      std::size_t lead = 0;
      while (lead < t.text.size() &&
             (t.text[lead] == ' ' || t.text[lead] == '/' ||
              t.text[lead] == '*' || t.text[lead] == '!')) {
        ++lead;
      }
      const bool leads_begin = t.text.compare(lead, 14, "TSSS_HOT_BEGIN") == 0;
      const bool leads_end =
          !leads_begin && t.text.compare(lead, 12, "TSSS_HOT_END") == 0;
      const std::size_t begin_at = leads_begin ? lead : std::string::npos;
      const std::size_t end_at = leads_end ? lead : std::string::npos;
      if (begin_at != std::string::npos) {
        if (!open_regions.empty()) {
          findings.push_back(
              Finding{Check::kHotPath, file.path, t.line,
                      "TSSS_HOT_BEGIN inside an open hot region (started line " +
                          std::to_string(open_regions.back().begin_line) +
                          "); hot regions do not nest"});
        }
        open_regions.push_back(Region{MarkerName(t.text, begin_at), t.line});
      } else if (end_at != std::string::npos) {
        if (open_regions.empty()) {
          findings.push_back(Finding{Check::kHotPath, file.path, t.line,
                                     "TSSS_HOT_END without a matching "
                                     "TSSS_HOT_BEGIN"});
          continue;
        }
        const Region region = open_regions.back();
        open_regions.pop_back();
        const std::string end_name = MarkerName(t.text, end_at);
        if (!end_name.empty() && end_name != region.name) {
          findings.push_back(
              Finding{Check::kHotPath, file.path, t.line,
                      "TSSS_HOT_END(" + end_name + ") closes TSSS_HOT_BEGIN(" +
                          region.name + ") from line " +
                          std::to_string(region.begin_line)});
        }
        regions.emplace_back(region.begin_line, t.line);
      }
    }
    for (const Region& region : open_regions) {
      findings.push_back(Finding{
          Check::kHotPath, file.path, region.begin_line,
          "TSSS_HOT_BEGIN(" + region.name + ") is never closed in this file"});
    }
    if (regions.empty()) continue;

    auto in_region = [&](int line) {
      for (const auto& [b, e] : regions) {
        if (line > b && line < e) return true;
      }
      return false;
    };

    // Pass 2: banned constructs inside the regions.
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (IsComment(t) || !in_region(t.line)) continue;
      if (t.kind != TokKind::kIdent) continue;

      auto next_is = [&](std::size_t ahead, const char* text) {
        std::size_t j = i;
        std::size_t remaining = ahead;
        while (remaining > 0 && ++j < toks.size()) {
          if (!IsComment(toks[j])) --remaining;
        }
        return j < toks.size() && toks[j].text == text;
      };
      auto prev_text = [&]() -> const std::string& {
        static const std::string kEmpty;
        std::size_t j = i;
        while (j > 0) {
          --j;
          if (!IsComment(toks[j])) return toks[j].text;
        }
        return kEmpty;
      };

      if (t.text == "new") {
        findings.push_back(Finding{Check::kHotPath, file.path, t.line,
                                   "heap allocation (`new`) in hot region"});
      } else if (AllocCalls().count(t.text) != 0 && next_is(1, "(")) {
        findings.push_back(Finding{Check::kHotPath, file.path, t.line,
                                   "heap allocation ('" + t.text +
                                       "') in hot region"});
      } else if (t.text == "make_unique" || t.text == "make_shared") {
        // template form: make_unique<T>(...)
        if (next_is(1, "<")) {
          findings.push_back(Finding{Check::kHotPath, file.path, t.line,
                                     "heap allocation ('" + t.text +
                                         "') in hot region"});
        }
      } else if (GrowthCalls().count(t.text) != 0 &&
                 (prev_text() == "." || prev_text() == "->") &&
                 (next_is(1, "(") || next_is(1, "<"))) {
        findings.push_back(Finding{
            Check::kHotPath, file.path, t.line,
            "container growth ('" + t.text +
                "') in hot region; preallocate outside the region"});
      } else if (t.text == "assert" && next_is(1, "(")) {
        findings.push_back(Finding{Check::kHotPath, file.path, t.line,
                                   "bare assert in hot region; use TSSS_DCHECK "
                                   "(compiled out in Release)"});
      } else if (t.text == "throw") {
        findings.push_back(Finding{Check::kHotPath, file.path, t.line,
                                   "throw in hot region (the library is "
                                   "exception-free)"});
      } else if (t.text == "std" && next_is(1, "::") && next_is(2, "mutex")) {
        findings.push_back(Finding{Check::kHotPath, file.path, t.line,
                                   "std::mutex in hot region; locking belongs "
                                   "outside, via annotated tsss::Mutex"});
      } else if (t.text == "MutexLock") {
        findings.push_back(Finding{Check::kHotPath, file.path, t.line,
                                   "lock acquisition in hot region; hoist the "
                                   "lock outside the loop"});
      }
    }
  }
  return findings;
}

}  // namespace tsss_lint
