#ifndef TSSS_TOOLS_TSSS_LINT_CHECKS_H_
#define TSSS_TOOLS_TSSS_LINT_CHECKS_H_

// The four check families. Each check is a pure function over pre-lexed
// sources: no globals, no filesystem — the runner does the IO, the tests
// feed fixtures straight in.

#include <set>
#include <string>
#include <vector>

#include "tsss_lint/lexer.h"
#include "tsss_lint/lint.h"
#include "tsss_lint/rules.h"

namespace tsss_lint {

/// One analyzed file: repo-relative path, raw text and token stream.
struct SourceFile {
  std::string path;
  std::string text;
  std::vector<Token> tokens;
};

/// Check 1 — layering. Extracts the `#include "tsss/..."` graph and
/// enforces the layer DAG from `rules`; also rejects include cycles among
/// project headers. Exempt prefixes (tests/bench/tools/fuzz/examples) may
/// include anything but still participate as cycle *edges* sources.
std::vector<Finding> CheckLayering(const std::vector<SourceFile>& files,
                                   const LayerRules& rules);

/// Check 2 — lock order. Builds the static mutex-acquisition graph from
/// TSSS_ACQUIRED_BEFORE/AFTER annotations plus lexically nested MutexLock
/// scopes, and fails on cycles. Also requires every `Mutex` member in an
/// analyzed src/ file to be referenced by at least one thread-safety
/// annotation in that file, and bans raw `std::mutex` members (invisible
/// to -Wthread-safety) unless the line carries `// lint-ok: raw-mutex`.
std::vector<Finding> CheckLockOrder(const std::vector<SourceFile>& files);

/// Check 3 — Status soundness. Collects the names of functions returning
/// Status / Result<...> across all files, then flags statement-level calls
/// to them whose result is dropped. `(void)`-casts are accepted only when
/// justified by a `// discard-ok: <why>` comment on the same or previous
/// line; a bare cast is itself a finding.
std::vector<Finding> CheckStatusDiscard(const std::vector<SourceFile>& files);

/// Check 4 — hot-path hygiene. Inside `// TSSS_HOT_BEGIN(name)` ...
/// `// TSSS_HOT_END` regions: no heap allocation (new / make_unique /
/// make_shared / malloc family), no container growth (push_back, resize,
/// reserve, insert, ...), no bare assert, no throw, no std::mutex.
/// Unbalanced or nested markers are findings too.
std::vector<Finding> CheckHotPath(const std::vector<SourceFile>& files);

// --- v2 flow-sensitive families (statement tree, parser.h) -----------------

/// Check 5 — pin pairing. In src/tsss/{storage,index,core,shard}: a manual
/// page acquisition (`Pin(...)` / `AcquirePage(...)`) whose result is not
/// held by an RAII guard must reach its matching release (`Unpin` /
/// `ReleasePage`) naming the same variable on *every* enumerated execution
/// path — early returns included. A bare acquisition statement that binds
/// nothing leaks immediately. Binding a reference or pointer to an
/// expression that pins a page inline (`const Page& p =
/// ...Fetch(id).value().page()`) dangles when the temporary guard dies and
/// is flagged too. Waiver: `// pin-ok: <why>` on the acquisition line.
std::vector<Finding> CheckPinPairing(const std::vector<SourceFile>& files);

/// Check 6 — atomic-order audit, src/ only. Every `memory_order_relaxed`
/// must carry a `// relaxed-ok: <why>` waiver on the same or previous
/// line. compare_exchange misuse: `compare_exchange_weak` outside any loop
/// (spurious failure unhandled), `compare_exchange_strong` as a loop
/// condition (retry loops should use weak), and an explicit failure
/// ordering of release/acq_rel (a failure is a pure load).
std::vector<Finding> CheckAtomicOrder(const std::vector<SourceFile>& files);

/// Check 7 — deadline-poll coverage. In src/tsss/{index,core,shard}: a
/// loop whose body does page I/O (calls LoadNode / ReadWindow /
/// ReadWindowDeduped, directly or transitively) must poll ExecControl —
/// directly (CurrentExecControl in the loop) or via a callee in the
/// transitive polling set (seeded by bodies that use CurrentExecControl).
/// Waiver: `// poll-ok: <why>` on the loop's line or the line above.
std::vector<Finding> CheckDeadlinePoll(const std::vector<SourceFile>& files);

/// Check 8 — float hazards. `==`/`!=` between floating-point operands
/// (declared double/float locals or parameters, or non-zero float
/// literals) inside TSSS_HOT regions or the geom prune predicates
/// (src/tsss/geom/). Comparisons against a literal zero are exempt:
/// exact-zero guards before division are well-defined and idiomatic.
std::vector<Finding> CheckFloatHazard(const std::vector<SourceFile>& files);

/// Shared helper — lines of `file` carrying a `// <tag>: ...` waiver.
/// A waiver on line L covers findings on L and L+1 (same or previous
/// line convention, matching discard-ok).
std::set<int> WaiverLines(const SourceFile& file, const std::string& tag);

/// True when `line` is covered by a waiver set (same or previous line).
inline bool HasWaiver(const std::set<int>& lines, int line) {
  return lines.count(line) != 0 || lines.count(line - 1) != 0;
}

}  // namespace tsss_lint

#endif  // TSSS_TOOLS_TSSS_LINT_CHECKS_H_
