#ifndef TSSS_TOOLS_TSSS_LINT_CHECKS_H_
#define TSSS_TOOLS_TSSS_LINT_CHECKS_H_

// The four check families. Each check is a pure function over pre-lexed
// sources: no globals, no filesystem — the runner does the IO, the tests
// feed fixtures straight in.

#include <string>
#include <vector>

#include "tsss_lint/lexer.h"
#include "tsss_lint/lint.h"
#include "tsss_lint/rules.h"

namespace tsss_lint {

/// One analyzed file: repo-relative path, raw text and token stream.
struct SourceFile {
  std::string path;
  std::string text;
  std::vector<Token> tokens;
};

/// Check 1 — layering. Extracts the `#include "tsss/..."` graph and
/// enforces the layer DAG from `rules`; also rejects include cycles among
/// project headers. Exempt prefixes (tests/bench/tools/fuzz/examples) may
/// include anything but still participate as cycle *edges* sources.
std::vector<Finding> CheckLayering(const std::vector<SourceFile>& files,
                                   const LayerRules& rules);

/// Check 2 — lock order. Builds the static mutex-acquisition graph from
/// TSSS_ACQUIRED_BEFORE/AFTER annotations plus lexically nested MutexLock
/// scopes, and fails on cycles. Also requires every `Mutex` member in an
/// analyzed src/ file to be referenced by at least one thread-safety
/// annotation in that file, and bans raw `std::mutex` members (invisible
/// to -Wthread-safety) unless the line carries `// lint-ok: raw-mutex`.
std::vector<Finding> CheckLockOrder(const std::vector<SourceFile>& files);

/// Check 3 — Status soundness. Collects the names of functions returning
/// Status / Result<...> across all files, then flags statement-level calls
/// to them whose result is dropped. `(void)`-casts are accepted only when
/// justified by a `// discard-ok: <why>` comment on the same or previous
/// line; a bare cast is itself a finding.
std::vector<Finding> CheckStatusDiscard(const std::vector<SourceFile>& files);

/// Check 4 — hot-path hygiene. Inside `// TSSS_HOT_BEGIN(name)` ...
/// `// TSSS_HOT_END` regions: no heap allocation (new / make_unique /
/// make_shared / malloc family), no container growth (push_back, resize,
/// reserve, insert, ...), no bare assert, no throw, no std::mutex.
/// Unbalanced or nested markers are findings too.
std::vector<Finding> CheckHotPath(const std::vector<SourceFile>& files);

}  // namespace tsss_lint

#endif  // TSSS_TOOLS_TSSS_LINT_CHECKS_H_
