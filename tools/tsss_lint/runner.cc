#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "tsss_lint/checks.h"
#include "tsss_lint/lint.h"
#include "tsss_lint/rules.h"

namespace tsss_lint {

namespace fs = std::filesystem;

std::string CheckName(Check check) {
  switch (check) {
    case Check::kLayering:
      return "layering";
    case Check::kLockOrder:
      return "lock-order";
    case Check::kStatusDiscard:
      return "status-discard";
    case Check::kHotPath:
      return "hot-path";
    case Check::kPinPairing:
      return "pin-pairing";
    case Check::kAtomicOrder:
      return "atomic-order";
    case Check::kDeadlinePoll:
      return "deadline-poll";
    case Check::kFloatHazard:
      return "float-hazard";
  }
  return "unknown";
}

std::string FormatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         CheckName(finding.check) + "] " + finding.message;
}

int LintResult::CountFor(Check check) const {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.check == check) ++n;
  }
  return n;
}

namespace {

bool IsSourcePath(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

/// Repo-relative path with forward slashes (the layer rules' currency).
std::string Relativize(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  const fs::path& use = (ec || rel.empty()) ? path : rel;
  return use.generic_string();
}

/// Collects + lexes the configured file set. Returns a non-empty error
/// string on IO failure.
std::string CollectFiles(const LintOptions& options,
                         std::vector<SourceFile>* files) {
  const fs::path root =
      options.root.empty() ? fs::current_path() : fs::path(options.root);

  std::vector<fs::path> inputs;
  for (const std::string& raw : options.paths) {
    fs::path p(raw);
    if (p.is_relative()) p = root / p;
    if (!fs::exists(p)) {
      return "no such file or directory: " + raw;
    }
    if (fs::is_directory(p)) {
      // Skip `testdata` trees during directory walks: fixture corpora (the
      // linter's own included) are analyzer *inputs*, deliberately full of
      // violations. An explicit file path still works, so the fixture tests
      // and CI self-test reach them via --root <fixture>.
      for (auto it = fs::recursive_directory_iterator(p);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && it->path().filename() == "testdata") {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && IsSourcePath(it->path())) {
          inputs.push_back(it->path());
        }
      }
    } else {
      inputs.push_back(p);
    }
  }
  std::sort(inputs.begin(), inputs.end());
  inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());

  for (const fs::path& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return "cannot read " + path.string();
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    SourceFile file;
    file.path = Relativize(path, root);
    file.text = buf.str();
    file.tokens = Lex(file.text);
    if (options.verbose) {
      std::cerr << "tsss_lint: " << file.path << " (" << file.tokens.size()
                << " tokens)\n";
    }
    files->push_back(std::move(file));
  }
  return "";
}

}  // namespace

std::set<int> WaiverLines(const SourceFile& file, const std::string& tag) {
  std::set<int> lines;
  const std::string needle = tag + ":";
  for (const Token& t : file.tokens) {
    if (!IsComment(t)) continue;
    if (t.text.find(needle) != std::string::npos) lines.insert(t.line);
  }
  return lines;
}

WaiverResult ListWaivers(const LintOptions& options) {
  static const char* kTags[] = {"lint-ok", "discard-ok", "pin-ok",
                                "relaxed-ok", "poll-ok"};
  WaiverResult result;
  std::vector<SourceFile> files;
  result.error = CollectFiles(options, &files);
  if (!result.error.empty()) return result;

  for (const SourceFile& file : files) {
    for (const Token& t : file.tokens) {
      if (!IsComment(t)) continue;
      for (const char* tag : kTags) {
        const std::string needle = std::string(tag) + ":";
        const std::size_t at = t.text.find(needle);
        if (at == std::string::npos) continue;
        // A tag inside an inline-code span (odd backtick count before it)
        // is documentation *about* the convention — the doc comments in
        // checks.h and status.h quote the waiver syntax — not a live
        // waiver.
        if (std::count(t.text.begin(), t.text.begin() + static_cast<std::ptrdiff_t>(at), '`') % 2 != 0) {
          continue;
        }
        Waiver w;
        w.file = file.path;
        w.line = t.line;
        w.tag = tag;
        std::size_t begin = at + needle.size();
        while (begin < t.text.size() && t.text[begin] == ' ') ++begin;
        std::size_t end = t.text.size();
        while (end > begin &&
               (t.text[end - 1] == ' ' || t.text[end - 1] == '\n' ||
                t.text[end - 1] == '\r' || t.text[end - 1] == '*')) {
          --end;
        }
        w.reason = t.text.substr(begin, end - begin);
        result.waivers.push_back(std::move(w));
      }
    }
  }
  return result;
}

LintResult RunLint(const LintOptions& options) {
  LintResult result;

  LayerRules rules;
  if (!options.rules_path.empty()) {
    std::string error;
    if (!ParseRulesFile(options.rules_path, &rules, &error)) {
      result.error = error;
      return result;
    }
  }

  std::vector<SourceFile> files;
  result.error = CollectFiles(options, &files);
  if (!result.error.empty()) return result;

  auto enabled = [&](Check check) {
    return options.checks.empty() || options.checks.count(check) != 0;
  };

  auto append = [&](std::vector<Finding> found) {
    for (Finding& f : found) result.findings.push_back(std::move(f));
  };

  if (enabled(Check::kLayering) && !options.rules_path.empty()) {
    append(CheckLayering(files, rules));
  }
  if (enabled(Check::kLockOrder)) append(CheckLockOrder(files));
  if (enabled(Check::kStatusDiscard)) append(CheckStatusDiscard(files));
  if (enabled(Check::kHotPath)) append(CheckHotPath(files));
  if (enabled(Check::kPinPairing)) append(CheckPinPairing(files));
  if (enabled(Check::kAtomicOrder)) append(CheckAtomicOrder(files));
  if (enabled(Check::kDeadlinePoll)) append(CheckDeadlinePoll(files));
  if (enabled(Check::kFloatHazard)) append(CheckFloatHazard(files));

  // Stable output order for golden tests and humans alike.
  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return result;
}

}  // namespace tsss_lint
