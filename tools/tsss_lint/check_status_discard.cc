#include <map>
#include <set>
#include <string>
#include <vector>

#include "tsss_lint/checks.h"

namespace tsss_lint {

namespace {

bool IsPunct(const Token& token, const char* text) {
  return token.kind == TokKind::kPunct && token.text == text;
}

/// Keywords that can directly precede a parenthesized expression and must
/// never be collected as "function names".
bool IsKeyword(const std::string& ident) {
  static const std::set<std::string> kKeywords = {
      "if",     "while", "for",    "switch", "return", "sizeof",
      "static", "const", "co_await", "case",  "new",    "delete"};
  return kKeywords.count(ident) != 0;
}

std::size_t MatchParen(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kPunct) continue;
    if (tokens[i].text == "(") ++depth;
    if (tokens[i].text == ")" && --depth == 0) return i;
  }
  return tokens.size();
}

/// Collects names declared with return type `Status` or `Result<...>`.
/// Token pattern: [ident Status | ident Result < ... >] ident `(`. The odd
/// false positive (a variable of type Status with a parenthesized
/// initializer) only *adds* a name to the set, and a bare statement-level
/// call to such a name is dead code worth flagging anyway.
void CollectFallible(const std::vector<Token>& toks,
                     std::set<std::string>* fallible) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    std::size_t name_at = 0;
    if (toks[i].text == "Status") {
      name_at = i + 1;
    } else if (toks[i].text == "Result" && IsPunct(toks[i + 1], "<")) {
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < toks.size(); ++j) {
        if (IsPunct(toks[j], "<")) ++depth;
        if (IsPunct(toks[j], ">") && --depth == 0) break;
      }
      if (j >= toks.size()) continue;
      name_at = j + 1;
    } else {
      continue;
    }
    if (name_at + 1 >= toks.size()) continue;
    if (toks[name_at].kind != TokKind::kIdent) continue;
    if (!IsPunct(toks[name_at + 1], "(")) continue;
    if (IsKeyword(toks[name_at].text)) continue;
    fallible->insert(toks[name_at].text);
  }
}

}  // namespace

std::vector<Finding> CheckStatusDiscard(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;

  // Pass 1: the fallible-function name set, across every file at once so
  // that a call in core/ sees declarations from storage/ headers.
  std::set<std::string> fallible;
  std::map<const SourceFile*, std::vector<Token>> code_tokens;
  std::map<const SourceFile*, std::set<int>> discard_ok_lines;
  for (const SourceFile& file : files) {
    std::vector<Token>& toks = code_tokens[&file];
    toks.reserve(file.tokens.size());
    for (const Token& t : file.tokens) {
      if (IsComment(t)) {
        if (t.text.find("discard-ok:") != std::string::npos) {
          discard_ok_lines[&file].insert(t.line);
        }
        continue;
      }
      toks.push_back(t);
    }
    CollectFallible(toks, &fallible);
  }

  // Pass 2: statement-level calls whose result is dropped.
  for (const SourceFile& file : files) {
    const std::vector<Token>& toks = code_tokens[&file];
    const std::set<int>& ok_lines = discard_ok_lines[&file];

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent || fallible.count(toks[i].text) == 0)
        continue;
      if (!IsPunct(toks[i + 1], "(")) continue;
      const std::size_t close = MatchParen(toks, i + 1);
      if (close + 1 >= toks.size()) continue;
      if (!IsPunct(toks[close + 1], ";")) continue;  // result fed elsewhere

      // Walk back over the object chain: `pool->`, `engine().`, `ns::`.
      std::size_t start = i;
      while (start > 0) {
        const Token& prev = toks[start - 1];
        if (IsPunct(prev, ".") || IsPunct(prev, "->") || IsPunct(prev, "::")) {
          if (start >= 2 && (toks[start - 2].kind == TokKind::kIdent ||
                             IsPunct(toks[start - 2], ")"))) {
            start -= 2;
            // `foo(...)->Bar()`: hop over the whole call/paren group.
            if (IsPunct(toks[start], ")")) {
              int depth = 0;
              while (start > 0) {
                if (IsPunct(toks[start], ")")) ++depth;
                if (IsPunct(toks[start], "(") && --depth == 0) break;
                --start;
              }
              if (start > 0 && toks[start - 1].kind == TokKind::kIdent) --start;
            }
            continue;
          }
        }
        break;
      }
      if (start == 0) continue;

      const Token& before = toks[start - 1];
      // `(void)chain(...)`: explicit discard — accepted only with a
      // `// discard-ok:` justification on the same or previous line.
      const bool void_cast = start >= 3 && IsPunct(toks[start - 1], ")") &&
                             toks[start - 2].kind == TokKind::kIdent &&
                             toks[start - 2].text == "void" &&
                             IsPunct(toks[start - 3], "(");
      if (void_cast) {
        const int line = toks[i].line;
        if (ok_lines.count(line) == 0 && ok_lines.count(line - 1) == 0) {
          findings.push_back(Finding{
              Check::kStatusDiscard, file.path, line,
              "(void)-discarded call to fallible '" + toks[i].text +
                  "' without a `// discard-ok: <why>` justification"});
        }
        continue;
      }

      // Only statement-initial chains are discards; anything else consumed
      // the value (`return f();`, `s = f();`, `if (f().ok())`...).
      const bool statement_start =
          IsPunct(before, ";") || IsPunct(before, "{") || IsPunct(before, "}") ||
          IsPunct(before, ":") || IsPunct(before, ")") ||
          (before.kind == TokKind::kIdent &&
           (before.text == "else" || before.text == "do"));
      if (!statement_start) continue;

      // `) f();` is only a statement context when the `)` closes a control
      // clause; approximate by requiring if/while/for/switch before the
      // matching `(`. This keeps casts like `(tsss::Status) f()` out.
      if (IsPunct(before, ")")) {
        int depth = 0;
        std::size_t j = start - 1;
        while (j > 0) {
          if (IsPunct(toks[j], ")")) ++depth;
          if (IsPunct(toks[j], "(") && --depth == 0) break;
          --j;
        }
        const bool control =
            j > 0 && toks[j - 1].kind == TokKind::kIdent &&
            (toks[j - 1].text == "if" || toks[j - 1].text == "while" ||
             toks[j - 1].text == "for" || toks[j - 1].text == "switch");
        if (!control) continue;
      }

      // Declarations spell their return type right before the name.
      if (start == i &&
          (before.text == "Status" || IsPunct(before, ">"))) {
        continue;
      }

      findings.push_back(Finding{
          Check::kStatusDiscard, file.path, toks[i].line,
          "result of fallible '" + toks[i].text +
              "' is discarded; consume it, propagate it, or write "
              "`(void)...;  // discard-ok: <why>`"});
    }
  }
  return findings;
}

}  // namespace tsss_lint
