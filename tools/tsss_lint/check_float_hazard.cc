// Check 8 — float hazards. An exact `==` between computed floats in a
// prune predicate is a correctness landmine: the paper's envelope bounds
// are conservative under <= / >=, but equality silently flips with
// -ffast-math, FMA contraction, or x87 excess precision, and a prune
// that drops a true match cannot be caught by the verifier. Scope is
// where it matters: TSSS_HOT regions and the geometry layer's prune
// predicates. Comparisons against literal zero are exempt — exact-zero
// guards before division are well-defined and idiomatic.

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tsss_lint/checks.h"
#include "tsss_lint/parser.h"

namespace tsss_lint {

namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Hot-region line ranges, reusing the comment-marker convention from
/// check_hot_path (which separately validates marker balance).
std::vector<std::pair<int, int>> HotRegions(const SourceFile& file) {
  std::vector<std::pair<int, int>> regions;
  int open_line = 0;
  bool open = false;
  for (const Token& t : file.tokens) {
    if (!IsComment(t)) continue;
    std::size_t lead = 0;
    while (lead < t.text.size() &&
           (t.text[lead] == ' ' || t.text[lead] == '/' ||
            t.text[lead] == '*' || t.text[lead] == '!')) {
      ++lead;
    }
    if (t.text.compare(lead, 14, "TSSS_HOT_BEGIN") == 0) {
      open = true;
      open_line = t.line;
    } else if (t.text.compare(lead, 12, "TSSS_HOT_END") == 0 && open) {
      regions.emplace_back(open_line, t.line);
      open = false;
    }
  }
  return regions;
}

/// Floating-point literal with a nonzero value ("0.0", "0.f", "0e9" are
/// all zero; "1.5", ".25f" are not).
bool IsNonZeroFloatLiteral(const Token& t) {
  if (t.kind != TokKind::kNumber) return false;
  const std::string& s = t.text;
  const bool floaty = s.find('.') != std::string::npos ||
                      s.find('e') != std::string::npos ||
                      s.find('E') != std::string::npos ||
                      s.back() == 'f' || s.back() == 'F';
  if (!floaty) return false;
  if (s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    return true;  // hex float; assume nonzero
  }
  for (char c : s) {
    if (c >= '1' && c <= '9') return true;
  }
  return false;
}

bool IsZeroFloatLiteral(const Token& t) {
  if (t.kind != TokKind::kNumber) return false;
  const std::string& s = t.text;
  const bool floaty = s.find('.') != std::string::npos ||
                      s.back() == 'f' || s.back() == 'F';
  if (!floaty) return false;
  for (char c : s) {
    if (c >= '1' && c <= '9') return false;
  }
  return true;
}

/// Identifiers declared `double x` / `float x` (incl. `double x, y`)
/// within [begin, end) — parameters and locals alike.
void CollectFloatVars(const std::vector<Token>& code, std::size_t begin,
                      std::size_t end, std::set<std::string>* vars) {
  for (std::size_t i = begin; i + 1 < end && i + 1 < code.size(); ++i) {
    if (code[i].kind != TokKind::kIdent) continue;
    if (code[i].text != "double" && code[i].text != "float") continue;
    std::size_t j = i + 1;
    while (j < end && j < code.size()) {
      // Pointer comparisons are exact; only value declarations count.
      if (IsPunct(code[j], "*")) break;
      if (IsPunct(code[j], "&")) ++j;  // references compare by value
      if (j < code.size() && code[j].kind == TokKind::kIdent) {
        vars->insert(code[j].text);
        ++j;
        // `double a = ..., b = ...;` — hop to the next comma at depth 0.
        int depth = 0;
        while (j < end && j < code.size()) {
          if (IsPunct(code[j], "(") || IsPunct(code[j], "[") ||
              IsPunct(code[j], "{")) {
            ++depth;
          } else if (IsPunct(code[j], ")") || IsPunct(code[j], "]") ||
                     IsPunct(code[j], "}")) {
            --depth;
            if (depth < 0) break;
          } else if (depth == 0 &&
                     (IsPunct(code[j], ";") || IsPunct(code[j], ")"))) {
            break;
          } else if (depth == 0 && IsPunct(code[j], ",")) {
            ++j;
            break;
          }
          ++j;
        }
        if (j >= end || j >= code.size() || code[j].kind != TokKind::kIdent) {
          break;
        }
      } else {
        break;
      }
    }
  }
}

}  // namespace

std::vector<Finding> CheckFloatHazard(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;

  for (const SourceFile& file : files) {
    const bool geom = file.path.rfind("src/tsss/geom/", 0) == 0;
    const std::vector<std::pair<int, int>> regions = HotRegions(file);
    if (!geom && regions.empty()) continue;
    const std::set<int> waived = WaiverLines(file, "lint-ok");

    auto in_scope = [&](int line) {
      if (geom) return true;
      for (const auto& [b, e] : regions) {
        if (line > b && line < e) return true;
      }
      return false;
    };

    std::vector<Token> code;
    code.reserve(file.tokens.size());
    for (const Token& t : file.tokens) {
      if (!IsComment(t)) code.push_back(t);
    }
    const std::vector<FunctionDef> functions = ParseFunctions(code);

    for (std::size_t i = 0; i + 2 < code.size(); ++i) {
      // The lexer emits `==` as two `=` tokens and `!=` as `!` `=`.
      const bool eq = IsPunct(code[i], "=") && IsPunct(code[i + 1], "=");
      const bool ne = IsPunct(code[i], "!") && IsPunct(code[i + 1], "=");
      if (!eq && !ne) continue;
      if (code[i].line != code[i + 1].line) continue;
      // `a === b` cannot occur; `operator==` definitions are not uses.
      if (i > 0 && (IsPunct(code[i - 1], "=") ||
                    (code[i - 1].kind == TokKind::kIdent &&
                     code[i - 1].text == "operator"))) {
        continue;
      }
      if (IsPunct(code[i + 2], "=")) continue;
      if (!in_scope(code[i].line)) continue;
      if (HasWaiver(waived, code[i].line)) continue;
      if (i == 0) continue;

      const Token& lhs = code[i - 1];
      const Token& rhs = code[i + 2];
      // Literal-zero guard on either side: exempt.
      if (IsZeroFloatLiteral(lhs) || IsZeroFloatLiteral(rhs)) continue;

      // Declared float variables of the enclosing function.
      std::set<std::string> vars;
      for (const FunctionDef& fn : functions) {
        if (i >= fn.body.begin && i < fn.body.end) {
          CollectFloatVars(code, fn.params_begin, fn.params_end, &vars);
          CollectFloatVars(code, fn.body.begin, fn.body.end, &vars);
          break;
        }
      }
      auto is_float_operand = [&](const Token& t) {
        if (IsNonZeroFloatLiteral(t)) return true;
        return t.kind == TokKind::kIdent && vars.count(t.text) != 0;
      };
      if (!is_float_operand(lhs) && !is_float_operand(rhs)) continue;

      findings.push_back(Finding{
          Check::kFloatHazard, file.path, code[i].line,
          std::string("exact floating-point ") + (eq ? "==" : "!=") +
              " in a prune/hot context; use an epsilon or <=/>= bound "
              "(exact-zero guards are exempt; waive with `// lint-ok: "
              "float-eq <why>`)"});
    }
  }
  return findings;
}

}  // namespace tsss_lint
