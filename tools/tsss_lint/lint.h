#ifndef TSSS_TOOLS_TSSS_LINT_LINT_H_
#define TSSS_TOOLS_TSSS_LINT_LINT_H_

// Core data model for tsss_lint, the project-specific static analyzer
// (see DESIGN.md §12). Dependency-free by design, like tools/json_mini.h:
// a lightweight tokenizer plus per-check passes, no libclang. The checks
// enforce what generic tooling cannot see — the layer DAG, the mutex
// acquisition order, the Status-discard convention and the hot-path
// allocation ban are all project inventions.

#include <map>
#include <set>
#include <string>
#include <vector>

namespace tsss_lint {

/// One check family. Names double as the --checks= CLI spellings.
/// The last four are the v2 flow-sensitive families: they run on the
/// statement tree built by parser.h rather than on raw token patterns.
enum class Check {
  kLayering,       ///< include graph must respect the declared layer DAG
  kLockOrder,      ///< mutex acquisition graph must be acyclic + annotated
  kStatusDiscard,  ///< Status/Result returns must be consumed or justified
  kHotPath,        ///< TSSS_HOT regions: no allocation, assert, raw mutex
  kPinPairing,     ///< manual page pins must be released on every path
  kAtomicOrder,    ///< relaxed atomics waived; compare_exchange used right
  kDeadlinePoll,   ///< query-path I/O loops must poll ExecControl
  kFloatHazard,    ///< no ==/!= between floats in prune/hot code
};

std::string CheckName(Check check);

/// One diagnostic. `file` is repo-relative when the runner was given a root.
struct Finding {
  Check check = Check::kLayering;
  std::string file;
  int line = 0;
  std::string message;
};

/// Renders "file:line: [check] message".
std::string FormatFinding(const Finding& finding);

struct LintOptions {
  /// Path to the layer rule file (layers.toml).
  std::string rules_path;
  /// Directory that repo-relative paths (layer prefixes) are resolved
  /// against; file paths are reported relative to it.
  std::string root;
  /// Files or directories to analyze, relative to `root` (or absolute).
  /// Directories are walked recursively for .h/.cc/.cpp files.
  std::vector<std::string> paths;
  /// Empty = run every check.
  std::set<Check> checks;
  /// Verbose: print per-file progress to stderr.
  bool verbose = false;
};

/// One waiver comment in the tree: `// <tag>: <reason>`. The inventory
/// behind `tsss_lint --list-waivers`, so waiver rot stays auditable.
struct Waiver {
  std::string file;
  int line = 0;
  std::string tag;     ///< lint-ok, discard-ok, pin-ok, relaxed-ok, poll-ok
  std::string reason;  ///< text after the tag, trimmed
};

/// Scans the configured paths for waiver comments of every known tag.
/// Uses `error` on the result for IO failures, like RunLint.
struct WaiverResult {
  std::vector<Waiver> waivers;
  std::string error;
};
WaiverResult ListWaivers(const LintOptions& options);

struct LintResult {
  std::vector<Finding> findings;
  /// Set on configuration/IO failure (unreadable rules file, bad path);
  /// distinct from findings so the CLI can exit 2 instead of 1.
  std::string error;

  bool ok() const { return error.empty() && findings.empty(); }
  /// Findings for one family, for golden-count tests.
  int CountFor(Check check) const;
};

/// Runs the configured checks over the configured paths.
LintResult RunLint(const LintOptions& options);

}  // namespace tsss_lint

#endif  // TSSS_TOOLS_TSSS_LINT_LINT_H_
