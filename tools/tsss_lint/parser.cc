#include "tsss_lint/parser.h"

#include <set>

namespace tsss_lint {

namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

/// Identifiers that introduce a parenthesized clause but never name a
/// function being defined.
bool IsControlKeyword(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "if",     "while",  "for",      "switch",   "catch",  "return",
      "sizeof", "alignof", "decltype", "noexcept", "static_assert",
      "new",    "delete", "case",     "throw",    "co_return",
  };
  return kKeywords.count(name) != 0;
}

/// Advances past a balanced (), {}, [] or <> group starting at `open`.
/// Returns the index of the matching closer, or `n` when unterminated.
std::size_t MatchGroup(const std::vector<Token>& toks, std::size_t open,
                       const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (IsPunct(toks[i], opener)) ++depth;
    if (IsPunct(toks[i], closer) && --depth == 0) return i;
  }
  return toks.size();
}

class StmtParser {
 public:
  explicit StmtParser(const std::vector<Token>& toks) : toks_(toks) {}

  /// Parses `{ ... }` starting at `lbrace` into a kBlock. Returns the
  /// index one past the closing brace.
  std::size_t ParseBlock(std::size_t lbrace, Stmt* out) {
    out->kind = StmtKind::kBlock;
    out->line = toks_[lbrace].line;
    out->begin = lbrace;
    std::size_t i = lbrace + 1;
    while (i < toks_.size() && !IsPunct(toks_[i], "}")) {
      // Labels: `case X:` / `default:` / `public:` etc. are skipped, the
      // statements they introduce parse as ordinary block children.
      if (IsIdent(toks_[i], "case")) {
        while (i < toks_.size() && !IsPunct(toks_[i], ":")) ++i;
        if (i < toks_.size()) ++i;
        continue;
      }
      if (IsIdent(toks_[i], "default") && i + 1 < toks_.size() &&
          IsPunct(toks_[i + 1], ":")) {
        i += 2;
        continue;
      }
      Stmt child;
      const std::size_t next = ParseStmt(i, &child);
      if (next == i) {  // no progress: skip the offending token
        ++i;
        continue;
      }
      out->children.push_back(std::move(child));
      i = next;
    }
    out->end = i < toks_.size() ? i + 1 : i;
    return out->end;
  }

  /// Parses one statement starting at `i`; returns the index one past it.
  std::size_t ParseStmt(std::size_t i, Stmt* out) {
    const std::size_t n = toks_.size();
    if (i >= n) return i;
    out->line = toks_[i].line;
    out->begin = i;

    if (IsPunct(toks_[i], "{")) return ParseBlock(i, out);

    if (IsIdent(toks_[i], "if")) {
      out->kind = StmtKind::kIf;
      std::size_t j = i + 1;
      if (j < n && IsIdent(toks_[j], "constexpr")) ++j;
      j = ParseCondition(j, out);
      Stmt then_stmt;
      j = ParseStmt(j, &then_stmt);
      out->children.push_back(std::move(then_stmt));
      if (j < n && IsIdent(toks_[j], "else")) {
        out->has_else = true;
        Stmt else_stmt;
        j = ParseStmt(j + 1, &else_stmt);
        out->children.push_back(std::move(else_stmt));
      }
      out->end = j;
      return j;
    }

    if (IsIdent(toks_[i], "while") || IsIdent(toks_[i], "for")) {
      out->kind = StmtKind::kLoop;
      std::size_t j = ParseCondition(i + 1, out);
      Stmt body;
      j = ParseStmt(j, &body);
      out->children.push_back(std::move(body));
      out->end = j;
      return j;
    }

    if (IsIdent(toks_[i], "do")) {
      out->kind = StmtKind::kLoop;
      out->may_skip_body = false;
      Stmt body;
      std::size_t j = ParseStmt(i + 1, &body);
      out->children.push_back(std::move(body));
      if (j < n && IsIdent(toks_[j], "while")) {
        j = ParseCondition(j + 1, out);
        if (j < n && IsPunct(toks_[j], ";")) ++j;
      }
      out->end = j;
      return j;
    }

    if (IsIdent(toks_[i], "switch")) {
      out->kind = StmtKind::kSwitch;
      std::size_t j = ParseCondition(i + 1, out);
      Stmt body;
      j = ParseStmt(j, &body);
      out->children.push_back(std::move(body));
      out->end = j;
      return j;
    }

    if (IsIdent(toks_[i], "return") || IsIdent(toks_[i], "co_return")) {
      out->kind = StmtKind::kReturn;
      out->end = SkipToSemicolon(i + 1);
      return out->end;
    }
    if (IsIdent(toks_[i], "break")) {
      out->kind = StmtKind::kBreak;
      out->end = SkipToSemicolon(i + 1);
      return out->end;
    }
    if (IsIdent(toks_[i], "continue")) {
      out->kind = StmtKind::kContinue;
      out->end = SkipToSemicolon(i + 1);
      return out->end;
    }

    out->kind = StmtKind::kSimple;
    out->end = SkipToSemicolon(i);
    return out->end;
  }

 private:
  /// Parses `( ... )` after a control keyword, recording the clause range.
  /// Returns the index one past the closing paren (or the input position
  /// when no parens follow — malformed input degrades gracefully).
  std::size_t ParseCondition(std::size_t i, Stmt* out) {
    if (i >= toks_.size() || !IsPunct(toks_[i], "(")) return i;
    const std::size_t close = MatchGroup(toks_, i, "(", ")");
    out->cond_begin = i + 1;
    out->cond_end = close;
    return close < toks_.size() ? close + 1 : close;
  }

  /// Advances to one past the `;` ending a simple statement, skipping
  /// balanced (), {} and [] groups (lambda bodies, init-lists, captures).
  /// A `}` at statement depth also terminates (missing semicolon, e.g. a
  /// local class or an unparsed construct) — without consuming it.
  std::size_t SkipToSemicolon(std::size_t i) {
    const std::size_t n = toks_.size();
    while (i < n) {
      const Token& t = toks_[i];
      if (IsPunct(t, ";")) return i + 1;
      if (IsPunct(t, "}")) return i;
      if (IsPunct(t, "(")) {
        const std::size_t close = MatchGroup(toks_, i, "(", ")");
        i = close < n ? close + 1 : n;
        continue;
      }
      if (IsPunct(t, "{")) {
        const std::size_t close = MatchGroup(toks_, i, "{", "}");
        i = close < n ? close + 1 : n;
        continue;
      }
      if (IsPunct(t, "[")) {
        const std::size_t close = MatchGroup(toks_, i, "[", "]");
        i = close < n ? close + 1 : n;
        continue;
      }
      ++i;
    }
    return n;
  }

  const std::vector<Token>& toks_;
};

/// After the `)` closing a parameter list at `close`, scans the trailer —
/// cv-qualifiers, ref-qualifiers, noexcept(...), override/final, trailing
/// return type, constructor initializer list — and returns the index of
/// the body's `{` if this really is a function definition, or npos.
std::size_t FindBodyBrace(const std::vector<Token>& toks, std::size_t close) {
  const std::size_t n = toks.size();
  std::size_t k = close + 1;
  while (k < n) {
    const Token& t = toks[k];
    if (IsPunct(t, "{")) return k;
    if (t.kind == TokKind::kIdent &&
        (t.text == "const" || t.text == "override" || t.text == "final" ||
         t.text == "noexcept" || t.text == "mutable" || t.text == "volatile" ||
         t.text == "try")) {
      ++k;
      continue;
    }
    if (IsPunct(t, "&")) {  // ref-qualifier (also covers &&: two tokens)
      ++k;
      continue;
    }
    if (IsPunct(t, "(")) {  // noexcept(...)
      const std::size_t c = MatchGroup(toks, k, "(", ")");
      k = c < n ? c + 1 : n;
      continue;
    }
    if (IsPunct(t, "->")) {  // trailing return type: skip tokens up to { or ;
      ++k;
      while (k < n && !IsPunct(toks[k], "{") && !IsPunct(toks[k], ";") &&
             !IsPunct(toks[k], "=")) {
        if (IsPunct(toks[k], "<")) {
          const std::size_t c = MatchGroup(toks, k, "<", ">");
          k = c < n ? c + 1 : n;
          continue;
        }
        ++k;
      }
      continue;
    }
    if (IsPunct(t, ":")) {  // constructor initializer list
      ++k;
      while (k < n && !IsPunct(toks[k], "{")) {
        if (IsPunct(toks[k], "(")) {
          const std::size_t c = MatchGroup(toks, k, "(", ")");
          k = c < n ? c + 1 : n;
          continue;
        }
        if (IsPunct(toks[k], ";")) return std::string::npos;
        ++k;
      }
      continue;
    }
    return std::string::npos;  // `;` (declaration), `=` (= default/delete), ...
  }
  return std::string::npos;
}

void CollectPaths(const Stmt& stmt, std::vector<ExecPath>* paths,
                  std::size_t cap, bool* truncated);

/// Appends the segments of `stmt` onto every unterminated path in `paths`.
void ExtendWith(const Stmt& stmt, std::vector<ExecPath>* paths,
                std::size_t cap, bool* truncated) {
  std::vector<ExecPath> segments;
  segments.push_back(ExecPath{});
  CollectPaths(stmt, &segments, cap, truncated);

  std::vector<ExecPath> out;
  for (const ExecPath& prefix : *paths) {
    if (prefix.ends_in_return) {
      if (out.size() < cap) out.push_back(prefix);
      else *truncated = true;
      continue;
    }
    for (const ExecPath& seg : segments) {
      if (out.size() >= cap) {
        *truncated = true;
        break;
      }
      ExecPath joined = prefix;
      joined.leaves.insert(joined.leaves.end(), seg.leaves.begin(),
                           seg.leaves.end());
      joined.ends_in_return = seg.ends_in_return;
      joined.exit_line = seg.exit_line;
      out.push_back(std::move(joined));
    }
  }
  *paths = std::move(out);
}

/// Extends every unterminated path in `paths` with the ways through `stmt`.
void CollectPaths(const Stmt& stmt, std::vector<ExecPath>* paths,
                  std::size_t cap, bool* truncated) {
  switch (stmt.kind) {
    case StmtKind::kSimple:
    case StmtKind::kBreak:
    case StmtKind::kContinue: {
      for (ExecPath& p : *paths) {
        if (!p.ends_in_return) p.leaves.push_back(&stmt);
      }
      return;
    }
    case StmtKind::kReturn: {
      for (ExecPath& p : *paths) {
        if (!p.ends_in_return) {
          p.leaves.push_back(&stmt);
          p.ends_in_return = true;
          p.exit_line = stmt.line;
        }
      }
      return;
    }
    case StmtKind::kBlock: {
      for (const Stmt& child : stmt.children) {
        ExtendWith(child, paths, cap, truncated);
        if (paths->size() >= cap) {
          *truncated = true;
          return;
        }
      }
      return;
    }
    case StmtKind::kIf: {
      // The condition always executes; then fork into the branches. Paths
      // already terminated by a return pass through exactly once.
      std::vector<ExecPath> done;
      std::vector<ExecPath> live;
      for (ExecPath& p : *paths) {
        if (p.ends_in_return) {
          done.push_back(std::move(p));
        } else {
          p.leaves.push_back(&stmt);
          live.push_back(std::move(p));
        }
      }
      std::vector<ExecPath> then_paths = live;
      if (!stmt.children.empty()) {
        ExtendWith(stmt.children[0], &then_paths, cap, truncated);
      }
      std::vector<ExecPath> else_paths = std::move(live);
      if (stmt.has_else && stmt.children.size() > 1) {
        ExtendWith(stmt.children[1], &else_paths, cap, truncated);
      }
      paths->clear();
      for (auto* src : {&done, &then_paths, &else_paths}) {
        for (ExecPath& p : *src) {
          if (paths->size() >= cap) {
            *truncated = true;
            break;
          }
          paths->push_back(std::move(p));
        }
      }
      return;
    }
    case StmtKind::kLoop:
    case StmtKind::kSwitch: {
      // Condition executes; body contributes zero iterations or one.
      std::vector<ExecPath> done;
      std::vector<ExecPath> live;
      for (ExecPath& p : *paths) {
        if (p.ends_in_return) {
          done.push_back(std::move(p));
        } else {
          p.leaves.push_back(&stmt);
          live.push_back(std::move(p));
        }
      }
      std::vector<ExecPath> once = live;
      if (!stmt.children.empty()) {
        ExtendWith(stmt.children[0], &once, cap, truncated);
      }
      const bool skippable =
          stmt.kind == StmtKind::kSwitch || stmt.may_skip_body;
      std::vector<ExecPath> merged = std::move(done);
      if (skippable) {
        for (ExecPath& p : live) {
          if (merged.size() >= cap) {
            *truncated = true;
            break;
          }
          merged.push_back(std::move(p));
        }
      }
      for (ExecPath& p : once) {
        if (merged.size() >= cap) {
          *truncated = true;
          break;
        }
        merged.push_back(std::move(p));
      }
      *paths = std::move(merged);
      return;
    }
  }
}

}  // namespace

std::vector<FunctionDef> ParseFunctions(const std::vector<Token>& toks) {
  std::vector<FunctionDef> out;
  const std::size_t n = toks.size();
  std::size_t i = 0;
  while (i < n) {
    if (!IsPunct(toks[i], "(") || i == 0 ||
        toks[i - 1].kind != TokKind::kIdent ||
        IsControlKeyword(toks[i - 1].text)) {
      ++i;
      continue;
    }
    const std::size_t close = MatchGroup(toks, i, "(", ")");
    if (close >= n) break;
    const std::size_t lbrace = FindBodyBrace(toks, close);
    if (lbrace == std::string::npos) {
      ++i;
      continue;
    }
    FunctionDef def;
    def.name = toks[i - 1].text;
    def.line = toks[i - 1].line;
    def.params_begin = i + 1;
    def.params_end = close;
    StmtParser parser(toks);
    const std::size_t past = parser.ParseBlock(lbrace, &def.body);
    out.push_back(std::move(def));
    i = past;  // lambdas inside the body stay opaque: never re-scanned
  }
  return out;
}

std::vector<ExecPath> EnumeratePaths(const Stmt& body, std::size_t cap,
                                     bool* truncated) {
  bool dropped = false;
  std::vector<ExecPath> paths;
  paths.push_back(ExecPath{});
  CollectPaths(body, &paths, cap == 0 ? 1 : cap, &dropped);
  if (truncated != nullptr) *truncated = dropped;
  return paths;
}

void LeafTokenRange(const Stmt& stmt, std::size_t* begin, std::size_t* end) {
  if (stmt.kind == StmtKind::kIf || stmt.kind == StmtKind::kLoop ||
      stmt.kind == StmtKind::kSwitch) {
    *begin = stmt.cond_begin;
    *end = stmt.cond_end;
    return;
  }
  *begin = stmt.begin;
  *end = stmt.end;
}

const Stmt* InnermostLoop(const Stmt& body, std::size_t pos,
                          bool* in_condition) {
  const Stmt* found = nullptr;
  bool cond = false;
  const Stmt* cur = &body;
  while (cur != nullptr) {
    if (cur->kind == StmtKind::kLoop && pos >= cur->begin && pos < cur->end) {
      found = cur;
      cond = pos >= cur->cond_begin && pos < cur->cond_end;
    }
    const Stmt* next = nullptr;
    for (const Stmt& child : cur->children) {
      if (pos >= child.begin && pos < child.end) {
        next = &child;
        break;
      }
    }
    cur = next;
  }
  if (in_condition != nullptr) *in_condition = cond;
  return found;
}

}  // namespace tsss_lint
