#include "tsss_lint/lexer.h"

#include <cctype>

namespace tsss_lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

}  // namespace

std::vector<Token> Lex(std::string_view text) {
  std::vector<Token> out;
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;

  auto peek = [&](std::size_t ahead) -> char {
    return i + ahead < n ? text[i + ahead] : '\0';
  };
  auto push = [&](TokKind kind, std::string tok_text, int tok_line) {
    out.push_back(Token{kind, std::move(tok_text), tok_line});
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }

    // Comments. Kept as tokens: discard-ok / TSSS_HOT conventions live here.
    if (c == '/' && peek(1) == '/') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j < n && text[j] != '\n') ++j;
      push(TokKind::kComment, std::string(text.substr(i + 2, j - i - 2)),
           start_line);
      i = j;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(text[j] == '*' && text[j + 1] == '/')) {
        if (text[j] == '\n') ++line;
        ++j;
      }
      const std::size_t end = (j + 1 < n) ? j : n;
      push(TokKind::kComment, std::string(text.substr(i + 2, end - i - 2)),
           start_line);
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }

    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(' && text[j] != '\n' && delim.size() < 16) {
        delim.push_back(text[j]);
        ++j;
      }
      if (j < n && text[j] == '(') {
        const int start_line = line;
        const std::string closer = ")" + delim + "\"";
        const std::size_t body = j + 1;
        const std::size_t found = text.find(closer, body);
        const std::size_t end = (found == std::string_view::npos) ? n : found;
        for (std::size_t k = body; k < end; ++k) {
          if (text[k] == '\n') ++line;
        }
        push(TokKind::kString, std::string(text.substr(body, end - body)),
             start_line);
        i = (found == std::string_view::npos) ? n : found + closer.size();
        continue;
      }
      // "R" not followed by a raw string: fall through as an identifier.
    }

    if (c == '"' || c == '\'') {
      const int start_line = line;
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) {
          ++j;  // skip the escaped character
        } else if (text[j] == '\n') {
          break;  // unterminated literal: close at end of line
        }
        ++j;
      }
      push(quote == '"' ? TokKind::kString : TokKind::kChar,
           std::string(text.substr(i + 1, j - i - 1)), start_line);
      i = (j < n && text[j] == quote) ? j + 1 : j;
      continue;
    }

    if (IsDigit(c) || (c == '.' && IsDigit(peek(1)))) {
      std::size_t j = i;
      while (j < n && (IsIdentChar(text[j]) || text[j] == '.' ||
                       text[j] == '\'' ||
                       ((text[j] == '+' || text[j] == '-') && j > i &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                         text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        ++j;
      }
      push(TokKind::kNumber, std::string(text.substr(i, j - i)), line);
      i = j;
      continue;
    }

    if (IsIdentStart(c)) {
      std::size_t j = i;
      while (j < n && IsIdentChar(text[j])) ++j;
      push(TokKind::kIdent, std::string(text.substr(i, j - i)), line);
      i = j;
      continue;
    }

    // Multi-char punctuators the checks care about; everything else is
    // emitted one character at a time.
    if (c == ':' && peek(1) == ':') {
      push(TokKind::kPunct, "::", line);
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      push(TokKind::kPunct, "->", line);
      i += 2;
      continue;
    }
    push(TokKind::kPunct, std::string(1, c), line);
    ++i;
  }
  return out;
}

}  // namespace tsss_lint
