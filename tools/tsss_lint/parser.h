#ifndef TSSS_TOOLS_TSSS_LINT_PARSER_H_
#define TSSS_TOOLS_TSSS_LINT_PARSER_H_

// Minimal per-function statement-tree parser for tsss_lint v2 (DESIGN.md
// §12.6). Not a C++ parser: it recovers just enough structure from the
// token stream — function bodies, brace-matched blocks, if/else forks,
// loops, early returns — for the flow-sensitive checks (pin-pairing,
// deadline-poll coverage, compare_exchange context) to reason about
// execution paths. Everything it cannot classify degrades to an opaque
// "simple statement" leaf, never to a parse failure.
//
// The token stream handed in must already have comment tokens filtered
// out (comments carry waivers, which the checks resolve by line number
// against the original stream).

#include <cstddef>
#include <string>
#include <vector>

#include "tsss_lint/lexer.h"

namespace tsss_lint {

enum class StmtKind {
  kSimple,    ///< expression/declaration statement, `;`-terminated
  kBlock,     ///< `{ ... }`; children are the contained statements
  kIf,        ///< children: [then] or [then, else]
  kLoop,      ///< for / while / do-while / range-for; children: [body]
  kSwitch,    ///< children: [body]; arms over-approximated as sequential
  kReturn,    ///< terminates the current path
  kBreak,     ///< kept as a leaf; loop abstraction makes it harmless
  kContinue,  ///< kept as a leaf, like kBreak
};

/// One node of the statement tree. `begin`/`end` delimit the whole
/// statement (keyword through closing brace/semicolon) as a half-open
/// token-index range; `cond_begin`/`cond_end` delimit the controlling
/// parenthesized clause of if/loop/switch nodes (excluding the parens).
struct Stmt {
  StmtKind kind = StmtKind::kSimple;
  int line = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t cond_begin = 0;
  std::size_t cond_end = 0;
  bool has_else = false;
  /// False only for do-while: the body always runs at least once.
  bool may_skip_body = true;
  std::vector<Stmt> children;
};

/// One function definition found in a file's code-token stream.
struct FunctionDef {
  std::string name;  ///< unqualified (last identifier before the parens)
  int line = 0;
  std::size_t params_begin = 0;  ///< token range of the parameter list
  std::size_t params_end = 0;    ///< (excluding the parens themselves)
  Stmt body;                     ///< kBlock over the function body
};

/// Extracts every function definition (free functions, member functions
/// defined in-class or out-of-line, constructors) from a comment-free
/// token stream. Lambda bodies are left inside their enclosing statement
/// as opaque leaves. Never fails; unparseable regions are skipped.
std::vector<FunctionDef> ParseFunctions(const std::vector<Token>& tokens);

/// One enumerated execution path: the sequence of leaf statements
/// traversed from function entry to an exit. For kIf/kLoop/kSwitch
/// leaves appearing in a path, only the controlling clause was
/// "executed" at that position (use LeafTokenRange).
struct ExecPath {
  std::vector<const Stmt*> leaves;
  bool ends_in_return = false;
  int exit_line = 0;  ///< the `return`'s line; 0 when falling off the end
};

/// Enumerates acyclic execution paths through `body`. Branch abstraction:
/// if forks into then/else (an absent else contributes the empty branch),
/// loops contribute zero iterations or exactly one, do-while exactly one.
/// Enumeration stops once `cap` paths exist; `*truncated` (optional)
/// reports whether anything was dropped. Paths beyond the cap are simply
/// not analyzed — the checks stay free of false positives either way.
std::vector<ExecPath> EnumeratePaths(const Stmt& body, std::size_t cap,
                                     bool* truncated = nullptr);

/// Token range a path leaf "executed": the controlling clause for
/// if/loop/switch nodes, the whole statement otherwise.
void LeafTokenRange(const Stmt& stmt, std::size_t* begin, std::size_t* end);

/// The innermost kLoop statement whose range contains token index `pos`,
/// or nullptr. `in_condition` (optional) reports whether `pos` sits in
/// that loop's controlling clause rather than its body.
const Stmt* InnermostLoop(const Stmt& body, std::size_t pos,
                          bool* in_condition = nullptr);

}  // namespace tsss_lint

#endif  // TSSS_TOOLS_TSSS_LINT_PARSER_H_
