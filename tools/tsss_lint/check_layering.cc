#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tsss_lint/checks.h"

namespace tsss_lint {

namespace {

/// One `#include "..."` directive (project-style quotes only; system
/// includes cannot cross project layers).
struct Include {
  std::string target;  ///< include path as written, e.g. "tsss/geom/vec.h"
  int line = 0;
};

std::vector<Include> ExtractIncludes(const SourceFile& file) {
  std::vector<Include> out;
  std::istringstream in(file.text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size() || line[i] != '#') continue;
    ++i;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (line.compare(i, 7, "include") != 0) continue;
    i += 7;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size() || line[i] != '"') continue;
    const std::size_t close = line.find('"', i + 1);
    if (close == std::string::npos) continue;
    out.push_back(Include{line.substr(i + 1, close - i - 1), line_no});
  }
  return out;
}

/// Maps an include target as written to the repo-relative path of the header
/// it resolves to. The tree uses two spellings: "tsss/geom/vec.h" (via
/// src/ on the include path) and "tsss_lint/lexer.h" (via tools/).
std::string ResolveInclude(const std::string& target) {
  if (target.rfind("tsss/", 0) == 0) return "src/" + target;
  if (target.rfind("tsss_lint/", 0) == 0) return "tools/" + target;
  return target;  // bench_common.h-style sibling includes resolve elsewhere
}

}  // namespace

std::vector<Finding> CheckLayering(const std::vector<SourceFile>& files,
                                   const LayerRules& rules) {
  std::vector<Finding> findings;

  // A cyclic rule file declares no usable layering: report and stop.
  const std::vector<std::string> rule_cycle = rules.FindCycle();
  if (!rule_cycle.empty()) {
    std::string msg = "layer rule file declares a dependency cycle: ";
    for (std::size_t i = 0; i < rule_cycle.size(); ++i) {
      msg += rule_cycle[i] + " -> ";
    }
    msg += rule_cycle.front();
    findings.push_back(Finding{Check::kLayering, "layers.toml", 0, msg});
    return findings;
  }

  const std::map<std::string, std::set<std::string>> closure = rules.Closure();

  // Per-file include edges among project headers, for cycle detection.
  std::map<std::string, std::vector<std::string>> header_edges;
  std::set<std::string> known_paths;
  for (const SourceFile& file : files) known_paths.insert(file.path);

  for (const SourceFile& file : files) {
    const std::vector<Include> includes = ExtractIncludes(file);

    for (const Include& inc : includes) {
      const std::string resolved = ResolveInclude(inc.target);
      if (known_paths.count(resolved) != 0) {
        header_edges[file.path].push_back(resolved);
      }

      if (rules.IsExempt(file.path)) continue;  // tests et al. see everything
      const Layer* from = rules.LayerForPath(file.path);
      const Layer* to = rules.LayerForPath(resolved);
      if (from == nullptr || to == nullptr) continue;

      // Per-header restrictions are checked before the DAG edge: a
      // restricted header is off-limits even to layers whose deps would
      // otherwise admit its whole layer.
      bool restricted = false;
      for (const Restrict& restrict : rules.restricts) {
        if (resolved != restrict.header) continue;
        // The header's own file pair implements it, so it is always allowed
        // (the .cc shares the header's path up to the extension).
        const std::string stem =
            restrict.header.substr(0, restrict.header.rfind('.'));
        if (file.path == restrict.header || file.path == stem + ".cc") {
          continue;
        }
        bool allowed = false;
        for (const std::string& name : restrict.allowed) {
          allowed |= name == from->name;
        }
        if (!allowed) {
          std::string who;
          for (const std::string& name : restrict.allowed) {
            if (!who.empty()) who += "/";
            who += name;
          }
          findings.push_back(Finding{
              Check::kLayering, file.path, inc.line,
              "restricted header '" + inc.target + "' may only be included "
              "from layer " + who + " (rule [restrict." + restrict.name +
              "]), not from '" + from->name + "'"});
          restricted = true;
        }
      }
      if (restricted) continue;  // one finding per offending include

      const auto reach = closure.find(from->name);
      if (reach != closure.end() && reach->second.count(to->name) != 0) {
        continue;
      }
      findings.push_back(Finding{
          Check::kLayering, file.path, inc.line,
          "layer '" + from->name + "' must not include '" + inc.target +
              "' (layer '" + to->name + "' is not among its declared deps)"});
    }
  }

  // Include-cycle detection over the project header graph. Header guards
  // make cycles compile, but a cycle always means a layering inversion
  // waiting to happen.
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::string> stack;
  auto visit = [&](auto&& self, const std::string& node) -> bool {
    state[node] = 1;
    stack.push_back(node);
    const auto it = header_edges.find(node);
    if (it != header_edges.end()) {
      for (const std::string& next : it->second) {
        if (state[next] == 1) {
          auto begin = std::find(stack.begin(), stack.end(), next);
          std::string msg = "include cycle: ";
          for (auto p = begin; p != stack.end(); ++p) msg += *p + " -> ";
          msg += next;
          findings.push_back(Finding{Check::kLayering, node, 0, msg});
          return true;
        }
        if (state[next] == 0 && self(self, next)) return true;
      }
    }
    stack.pop_back();
    state[node] = 2;
    return false;
  };
  for (const SourceFile& file : files) {
    if (state[file.path] == 0) {
      stack.clear();
      // One reported cycle per run: after a hit the DFS state is tainted
      // (nodes stay marked on-stack), and one cycle is enough to fail.
      if (visit(visit, file.path)) break;
    }
  }

  return findings;
}

}  // namespace tsss_lint
