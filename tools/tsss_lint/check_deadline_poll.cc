// Check 7 — deadline-poll coverage. Query deadlines are cooperative:
// ExecControl only fires where somebody polls it. The convention (DESIGN.md
// §9) is to poll once per page of I/O, which makes the dangerous pattern
// precisely "a loop that reads pages but never reaches a poll". This check
// finds those loops by closing two sets over the project call graph —
// functions that do page I/O and functions that poll — and intersecting
// them per loop.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tsss_lint/checks.h"
#include "tsss_lint/parser.h"

namespace tsss_lint {

namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Page-I/O primitives. Fetch/New are deliberately absent: build-side
/// mutation paths (Insert/StoreNode) pin pages too, but deadlines govern
/// *queries*; seeding on the query-side read entry points keeps the
/// check focused and waiver-free on the write path.
bool IsIoSeed(const std::string& name) {
  return name == "LoadNode" || name == "ReadWindow" ||
         name == "ReadWindowDeduped";
}

/// Direct evidence of polling inside a token range.
bool IsPollName(const std::string& name) {
  return name == "CurrentExecControl" || name == "PollExecControl";
}

bool IsControlKeyword(const std::string& name) {
  static const std::set<std::string> kKw = {
      "if",     "while",  "for",      "switch", "return",   "sizeof",
      "static", "const",  "co_await", "case",   "new",      "delete",
      "catch",  "assert", "alignof",  "decltype"};
  return kKw.count(name) != 0;
}

/// Unqualified names called inside [begin, end): identifier followed by
/// `(`, keywords excluded. Method calls contribute their method name —
/// name conflation across classes is accepted; it only ever errs toward
/// requiring a poll (or crediting one, which the fixtures pin down).
void CollectCallees(const std::vector<Token>& code, std::size_t begin,
                    std::size_t end, std::set<std::string>* out) {
  for (std::size_t i = begin; i < end && i + 1 < code.size(); ++i) {
    if (code[i].kind != TokKind::kIdent) continue;
    if (!IsPunct(code[i + 1], "(")) continue;
    if (IsControlKeyword(code[i].text)) continue;
    out->insert(code[i].text);
  }
}

/// Fixed-point closure: grow `members` with every function whose body
/// calls a member (or a seed, tested by `seed`).
template <typename SeedFn>
void Close(const std::map<std::string, std::set<std::string>>& calls,
           SeedFn seed, std::set<std::string>* members) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [fn, callees] : calls) {
      if (members->count(fn) != 0) continue;
      for (const std::string& callee : callees) {
        if (seed(callee) || members->count(callee) != 0) {
          members->insert(fn);
          changed = true;
          break;
        }
      }
    }
  }
}

void CollectLoops(const Stmt& stmt, std::vector<const Stmt*>* out) {
  if (stmt.kind == StmtKind::kLoop) out->push_back(&stmt);
  for (const Stmt& child : stmt.children) CollectLoops(child, out);
}

bool InScope(const std::string& path) {
  return path.rfind("src/tsss/index/", 0) == 0 ||
         path.rfind("src/tsss/core/", 0) == 0 ||
         path.rfind("src/tsss/shard/", 0) == 0;
}

}  // namespace

std::vector<Finding> CheckDeadlinePoll(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;

  // Pass 1: per-function callee sets across *all* files, so a loop in
  // core/ gets credit for a poll buried in an index/ callee.
  struct ParsedFile {
    const SourceFile* file = nullptr;
    std::vector<Token> code;
    std::vector<FunctionDef> functions;
  };
  std::vector<ParsedFile> parsed;
  std::map<std::string, std::set<std::string>> calls;
  std::set<std::string> direct_poll;  // bodies that mention a poll name
  for (const SourceFile& file : files) {
    ParsedFile pf;
    pf.file = &file;
    pf.code.reserve(file.tokens.size());
    for (const Token& t : file.tokens) {
      if (!IsComment(t)) pf.code.push_back(t);
    }
    pf.functions = ParseFunctions(pf.code);
    for (const FunctionDef& fn : pf.functions) {
      std::set<std::string>& callees = calls[fn.name];
      CollectCallees(pf.code, fn.body.begin, fn.body.end, &callees);
      for (std::size_t i = fn.body.begin;
           i < fn.body.end && i < pf.code.size(); ++i) {
        if (pf.code[i].kind == TokKind::kIdent && IsPollName(pf.code[i].text)) {
          direct_poll.insert(fn.name);
        }
      }
    }
    parsed.push_back(std::move(pf));
  }

  // Pass 2: close the polling and io-doing sets over the call graph.
  std::set<std::string> polling = direct_poll;
  Close(calls, [&](const std::string& n) { return direct_poll.count(n) != 0; },
        &polling);
  std::set<std::string> io_doing;
  Close(calls, IsIoSeed, &io_doing);

  // Pass 3: every loop in scope whose range reaches I/O must reach a poll.
  for (const ParsedFile& pf : parsed) {
    if (!InScope(pf.file->path)) continue;
    const std::set<int> waived = WaiverLines(*pf.file, "poll-ok");

    for (const FunctionDef& fn : pf.functions) {
      std::vector<const Stmt*> loops;
      CollectLoops(fn.body, &loops);
      for (const Stmt* loop : loops) {
        std::set<std::string> callees;
        CollectCallees(pf.code, loop->begin, loop->end, &callees);
        bool does_io = false;
        bool polls = false;
        for (const std::string& c : callees) {
          if (IsIoSeed(c) || io_doing.count(c) != 0) does_io = true;
          if (IsPollName(c) || polling.count(c) != 0) polls = true;
        }
        if (!does_io || polls) continue;
        if (HasWaiver(waived, loop->line)) continue;
        findings.push_back(Finding{
            Check::kDeadlinePoll, pf.file->path, loop->line,
            "loop in '" + fn.name +
                "' does page I/O but never polls ExecControl; a deadline "
                "cannot fire here — call PollExecControl() in the body "
                "(or waive with `// poll-ok: <why>`)"});
      }
    }
  }
  return findings;
}

}  // namespace tsss_lint
