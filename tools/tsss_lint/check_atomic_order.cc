// Check 6 — atomic-order audit. Relaxed atomics are fine when the value
// is advisory (stats counters, monotonic hint bounds) and silently wrong
// when it carries a happens-before edge, and no compiler flag can tell
// the difference. So the rule is social, and this check enforces it:
// every `memory_order_relaxed` carries a `// relaxed-ok: <why>` waiver
// stating the reasoning, and compare_exchange usage must match its
// retry-loop context.

#include <string>
#include <vector>

#include "tsss_lint/checks.h"
#include "tsss_lint/parser.h"

namespace tsss_lint {

namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

std::size_t MatchParen(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (!IsPunct(toks[i], "(") && !IsPunct(toks[i], ")")) continue;
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i;
  }
  return toks.size();
}

/// The function whose body range contains token index `pos`, or nullptr.
const FunctionDef* EnclosingFunction(const std::vector<FunctionDef>& fns,
                                     std::size_t pos) {
  for (const FunctionDef& fn : fns) {
    if (pos >= fn.body.begin && pos < fn.body.end) return &fn;
  }
  return nullptr;
}

}  // namespace

std::vector<Finding> CheckAtomicOrder(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;

  for (const SourceFile& file : files) {
    if (file.path.rfind("src/", 0) != 0) continue;
    const std::set<int> waived = WaiverLines(file, "relaxed-ok");

    std::vector<Token> code;
    code.reserve(file.tokens.size());
    for (const Token& t : file.tokens) {
      if (!IsComment(t)) code.push_back(t);
    }
    const std::vector<FunctionDef> functions = ParseFunctions(code);

    for (std::size_t i = 0; i < code.size(); ++i) {
      if (code[i].kind != TokKind::kIdent) continue;
      const std::string& name = code[i].text;

      if (name == "memory_order_relaxed" && !HasWaiver(waived, code[i].line)) {
        findings.push_back(Finding{
            Check::kAtomicOrder, file.path, code[i].line,
            "memory_order_relaxed without a `// relaxed-ok: <why>` waiver; "
            "state why no happens-before edge is needed here"});
        continue;
      }

      const bool weak = name == "compare_exchange_weak";
      const bool strong = name == "compare_exchange_strong";
      if (!weak && !strong) continue;
      if (i + 1 >= code.size() || !IsPunct(code[i + 1], "(")) continue;

      // Loop context via the statement tree. A CAS at class scope or in
      // a function the parser could not find is left alone.
      const FunctionDef* fn = EnclosingFunction(functions, i);
      bool in_condition = false;
      const Stmt* loop =
          fn != nullptr ? InnermostLoop(fn->body, i, &in_condition) : nullptr;

      if (weak && fn != nullptr && loop == nullptr) {
        findings.push_back(Finding{
            Check::kAtomicOrder, file.path, code[i].line,
            "compare_exchange_weak outside a loop: spurious failure is not "
            "retried; use compare_exchange_strong for one-shot CAS"});
      }
      if (strong && loop != nullptr && in_condition) {
        findings.push_back(Finding{
            Check::kAtomicOrder, file.path, code[i].line,
            "compare_exchange_strong as a loop condition: the retry loop "
            "already tolerates spurious failure, use compare_exchange_weak "
            "(cheaper on LL/SC targets)"});
      }

      // Failure ordering: with the two-ordering overload the second
      // memory_order argument is the failure side, which is a pure load —
      // release/acq_rel there is ill-formed (UB before C++17, rejected
      // after).
      const std::size_t close = MatchParen(code, i + 1);
      std::vector<std::size_t> orders;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (code[j].kind == TokKind::kIdent &&
            code[j].text.rfind("memory_order_", 0) == 0) {
          orders.push_back(j);
        }
      }
      if (orders.size() >= 2) {
        const std::string& failure = code[orders.back()].text;
        if (failure == "memory_order_release" ||
            failure == "memory_order_acq_rel") {
          findings.push_back(Finding{
              Check::kAtomicOrder, file.path, code[orders.back()].line,
              "failure ordering '" + failure +
                  "' on " + name + ": the failure path is a pure load and "
                  "cannot release; use relaxed or acquire"});
        }
      }
    }
  }
  return findings;
}

}  // namespace tsss_lint
