#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tsss_lint/checks.h"

namespace tsss_lint {

namespace {

/// Annotation macros that "reference" a mutex member, for the
/// every-mutex-is-annotated rule.
bool IsReferencingAnnotation(const std::string& ident) {
  return ident == "TSSS_GUARDED_BY" || ident == "TSSS_PT_GUARDED_BY" ||
         ident == "TSSS_REQUIRES" || ident == "TSSS_REQUIRES_SHARED" ||
         ident == "TSSS_EXCLUDES" || ident == "TSSS_ACQUIRE" ||
         ident == "TSSS_RELEASE" || ident == "TSSS_ACQUIRED_BEFORE" ||
         ident == "TSSS_ACQUIRED_AFTER";
}

bool IsIdent(const Token& token, const char* text) {
  return token.kind == TokKind::kIdent && token.text == text;
}

/// Index of the matching ')' for the '(' at `open`, or tokens.size().
std::size_t MatchParen(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kPunct) continue;
    if (tokens[i].text == "(") ++depth;
    if (tokens[i].text == ")" && --depth == 0) return i;
  }
  return tokens.size();
}

/// The identity a mutex expression hashes to in the acquisition graph:
/// the final member name of the chain ("shard.mu" -> "mu", "mu_" -> "mu_").
/// Member names are unique enough across this tree for a project linter;
/// qualifying further (class name) would require real semantic analysis.
std::string MutexKey(const std::vector<Token>& tokens, std::size_t begin,
                     std::size_t end) {
  std::string last;
  for (std::size_t i = begin; i < end; ++i) {
    if (tokens[i].kind == TokKind::kIdent) last = tokens[i].text;
  }
  return last;
}

struct Edge {
  std::string from;  ///< acquired first
  std::string to;    ///< acquired while `from` is held
  std::string file;
  int line = 0;
};

}  // namespace

std::vector<Finding> CheckLockOrder(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  std::vector<Edge> edges;

  for (const SourceFile& file : files) {
    // Comment-free view; comments are only consulted for lint-ok waivers.
    std::vector<Token> toks;
    std::set<int> raw_mutex_waiver_lines;
    toks.reserve(file.tokens.size());
    for (const Token& t : file.tokens) {
      if (IsComment(t)) {
        if (t.text.find("lint-ok: raw-mutex") != std::string::npos) {
          raw_mutex_waiver_lines.insert(t.line);
        }
        continue;
      }
      toks.push_back(t);
    }

    // --- Member declarations and annotation references ------------------
    std::map<std::string, int> mutex_members;  // name -> decl line
    std::set<std::string> annotated;           // names referenced by any macro

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      // `Mutex name_ ...;` members. Skip `class ... Mutex` (the wrapper's
      // own declaration), `Mutex&`/`Mutex*` parameters and locals taking a
      // reference — heuristically: followed directly by an identifier then
      // one of `;`, `TSSS_*(...)`, `=` (brace-init members use `{` too).
      if (IsIdent(toks[i], "Mutex") && toks[i + 1].kind == TokKind::kIdent) {
        if (i > 0 && (IsIdent(toks[i - 1], "class") ||
                      IsIdent(toks[i - 1], "struct") ||
                      toks[i - 1].text == "::")) {
          continue;
        }
        const std::string& name = toks[i + 1].text;
        const std::size_t after = i + 2;
        if (after < toks.size() &&
            (toks[after].text == ";" || toks[after].text == "=" ||
             toks[after].text == "{" ||
             (toks[after].kind == TokKind::kIdent &&
              toks[after].text.rfind("TSSS_", 0) == 0))) {
          mutex_members.emplace(name, toks[i + 1].line);
        }
      }

      // Raw std::mutex members: invisible to -Wthread-safety and to this
      // check's acquisition graph, so they need an explicit waiver.
      if (IsIdent(toks[i], "std") && i + 2 < toks.size() &&
          toks[i + 1].text == "::" && IsIdent(toks[i + 2], "mutex")) {
        if (raw_mutex_waiver_lines.count(toks[i].line) == 0 &&
            raw_mutex_waiver_lines.count(toks[i].line - 1) == 0) {
          findings.push_back(
              Finding{Check::kLockOrder, file.path, toks[i].line,
                      "raw std::mutex is invisible to thread-safety analysis; "
                      "use tsss::Mutex (or waive with `// lint-ok: raw-mutex "
                      "(<why>)`)"});
        }
      }

      // Annotation references + declared acquisition order.
      if (toks[i].kind == TokKind::kIdent &&
          IsReferencingAnnotation(toks[i].text) && toks[i + 1].text == "(") {
        const std::size_t close = MatchParen(toks, i + 1);
        std::vector<std::string> args;
        std::string cur;
        for (std::size_t j = i + 2; j < close; ++j) {
          if (toks[j].text == ",") {
            if (!cur.empty()) args.push_back(cur);
            cur.clear();
          } else if (toks[j].kind == TokKind::kIdent) {
            cur = toks[j].text;  // last identifier of the expression
          }
        }
        if (!cur.empty()) args.push_back(cur);
        for (const std::string& arg : args) annotated.insert(arg);

        // `Mutex b_ TSSS_ACQUIRED_AFTER(a_);` declares a before b.
        if (toks[i].text == "TSSS_ACQUIRED_AFTER" ||
            toks[i].text == "TSSS_ACQUIRED_BEFORE") {
          std::string member;
          if (i >= 1 && toks[i - 1].kind == TokKind::kIdent) {
            member = toks[i - 1].text;
          }
          if (!member.empty()) {
            annotated.insert(member);
            for (const std::string& arg : args) {
              if (toks[i].text == "TSSS_ACQUIRED_AFTER") {
                edges.push_back(Edge{arg, member, file.path, toks[i].line});
              } else {
                edges.push_back(Edge{member, arg, file.path, toks[i].line});
              }
            }
          }
        }
      }
    }

    const bool in_src = file.path.rfind("src/", 0) == 0;
    if (in_src) {
      for (const auto& [name, line] : mutex_members) {
        if (annotated.count(name) == 0) {
          findings.push_back(Finding{
              Check::kLockOrder, file.path, line,
              "Mutex member '" + name +
                  "' has no thread-safety annotation in this file; add "
                  "TSSS_GUARDED_BY(" +
                  name + ") to the state it protects (or TSSS_ACQUIRED_*)"});
        }
      }
    }

    // --- Lexically nested MutexLock scopes ------------------------------
    // Track `MutexLock guard(expr);` acquisitions against brace depth; a
    // second acquisition while one is active adds an order edge.
    struct Held {
      std::string key;
      int depth = 0;
    };
    std::vector<Held> held;
    int depth = 0;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind == TokKind::kPunct) {
        if (toks[i].text == "{") ++depth;
        if (toks[i].text == "}") {
          --depth;
          while (!held.empty() && held.back().depth > depth) held.pop_back();
          // A function/class boundary at depth 0 clears everything.
          if (depth <= 0) held.clear();
        }
        continue;
      }
      if (IsIdent(toks[i], "MutexLock") && toks[i + 1].kind == TokKind::kIdent &&
          toks[i + 2].text == "(") {
        const std::size_t close = MatchParen(toks, i + 2);
        const std::string key = MutexKey(toks, i + 3, close);
        if (key.empty()) continue;
        for (const Held& h : held) {
          if (h.key != key) {
            edges.push_back(Edge{h.key, key, file.path, toks[i].line});
          }
        }
        held.push_back(Held{key, depth});
      }
    }
  }

  // --- Cycle detection over the union acquisition graph -----------------
  std::map<std::string, std::vector<const Edge*>> graph;
  for (const Edge& e : edges) graph[e.from].push_back(&e);

  std::map<std::string, int> state;
  std::vector<const Edge*> stack;
  auto visit = [&](auto&& self, const std::string& node) -> bool {
    state[node] = 1;
    for (const Edge* e : graph[node]) {
      if (state[e->to] == 1) {
        std::string msg = "mutex acquisition cycle: ";
        bool in_cycle = false;
        for (const Edge* s : stack) {
          if (s->from == e->to) in_cycle = true;
          if (in_cycle) msg += s->from + " -> ";
        }
        msg += e->from + " -> " + e->to;
        findings.push_back(Finding{Check::kLockOrder, e->file, e->line, msg});
        return true;
      }
      if (state[e->to] == 0) {
        stack.push_back(e);
        if (self(self, e->to)) return true;
        stack.pop_back();
      }
    }
    state[node] = 2;
    return false;
  };
  for (const auto& entry : graph) {
    if (state[entry.first] == 0) {
      stack.clear();
      // One reported cycle per run; the DFS state is tainted after a hit.
      if (visit(visit, entry.first)) break;
    }
  }

  return findings;
}

}  // namespace tsss_lint
