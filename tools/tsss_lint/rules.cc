#include "tsss_lint/rules.h"

#include <fstream>
#include <sstream>

namespace tsss_lint {

namespace {

std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

/// Strips a trailing `# comment` that is not inside a quoted string.
std::string StripComment(const std::string& s) {
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"') in_string = !in_string;
    if (s[i] == '#' && !in_string) return s.substr(0, i);
  }
  return s;
}

/// Parses `"a"` or `["a", "b"]` into items. Returns false on syntax error.
bool ParseValue(const std::string& value, std::vector<std::string>* items) {
  const std::string v = Trim(value);
  if (v.empty()) return false;
  if (v.front() == '"') {
    if (v.size() < 2 || v.back() != '"') return false;
    items->push_back(v.substr(1, v.size() - 2));
    return true;
  }
  if (v.front() == '[') {
    if (v.back() != ']') return false;
    std::string body = v.substr(1, v.size() - 2);
    std::size_t pos = 0;
    while (pos < body.size()) {
      while (pos < body.size() &&
             (body[pos] == ' ' || body[pos] == '\t' || body[pos] == ',')) {
        ++pos;
      }
      if (pos >= body.size()) break;
      if (body[pos] != '"') return false;
      const std::size_t close = body.find('"', pos + 1);
      if (close == std::string::npos) return false;
      items->push_back(body.substr(pos + 1, close - pos - 1));
      pos = close + 1;
    }
    return true;
  }
  return false;
}

bool PathHasPrefix(const std::string& path, const std::string& prefix) {
  if (path.size() < prefix.size()) return false;
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

}  // namespace

const Layer* LayerRules::LayerForPath(
    const std::string& repo_relative_path) const {
  const Layer* best = nullptr;
  for (const Layer& layer : layers) {
    if (PathHasPrefix(repo_relative_path, layer.path)) {
      if (best == nullptr || layer.path.size() > best->path.size()) {
        best = &layer;
      }
    }
  }
  return best;
}

bool LayerRules::IsExempt(const std::string& repo_relative_path) const {
  for (const std::string& prefix : exempt_paths) {
    if (PathHasPrefix(repo_relative_path, prefix)) return true;
  }
  return false;
}

std::map<std::string, std::set<std::string>> LayerRules::Closure() const {
  std::map<std::string, std::set<std::string>> out;
  for (const Layer& layer : layers) {
    // Iterative DFS from each layer; the graphs are tiny.
    std::set<std::string>& reach = out[layer.name];
    std::vector<std::string> stack = {layer.name};
    while (!stack.empty()) {
      const std::string cur = stack.back();
      stack.pop_back();
      if (!reach.insert(cur).second) continue;
      for (const Layer& other : layers) {
        if (other.name != cur) continue;
        for (const std::string& dep : other.deps) stack.push_back(dep);
      }
    }
  }
  return out;
}

std::vector<std::string> LayerRules::FindCycle() const {
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::vector<std::string> cycle;

  std::map<std::string, const Layer*> by_name;
  for (const Layer& layer : layers) by_name[layer.name] = &layer;

  // Recursive DFS via explicit lambda; layer counts are single digits.
  auto visit = [&](auto&& self, const std::string& name) -> bool {
    state[name] = 1;
    stack.push_back(name);
    const auto it = by_name.find(name);
    if (it != by_name.end()) {
      for (const std::string& dep : it->second->deps) {
        const int dep_state = state[dep];
        if (dep_state == 1) {
          // Found a back edge; slice the cycle out of the DFS stack.
          auto begin = stack.begin();
          while (begin != stack.end() && *begin != dep) ++begin;
          cycle.assign(begin, stack.end());
          return true;
        }
        if (dep_state == 0 && self(self, dep)) return true;
      }
    }
    stack.pop_back();
    state[name] = 2;
    return false;
  };

  for (const Layer& layer : layers) {
    if (state[layer.name] == 0 && visit(visit, layer.name)) return cycle;
  }
  return {};
}

bool ParseRulesText(const std::string& text, LayerRules* rules,
                    std::string* error) {
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  Layer* current_layer = nullptr;
  Restrict* current_restrict = nullptr;
  bool in_exempt = false;

  auto fail = [&](const std::string& message) {
    *error = "rules:" + std::to_string(line_no) + ": " + message;
    return false;
  };

  while (std::getline(in, raw)) {
    ++line_no;
    const std::string stmt = Trim(StripComment(raw));
    if (stmt.empty()) continue;

    if (stmt.front() == '[') {
      if (stmt.back() != ']') return fail("unterminated table header");
      const std::string table = stmt.substr(1, stmt.size() - 2);
      current_layer = nullptr;
      current_restrict = nullptr;
      in_exempt = false;
      if (table.rfind("layer.", 0) == 0) {
        Layer layer;
        layer.name = table.substr(6);
        if (layer.name.empty()) return fail("empty layer name");
        for (const Layer& existing : rules->layers) {
          if (existing.name == layer.name) {
            return fail("duplicate layer '" + layer.name + "'");
          }
        }
        rules->layers.push_back(layer);
        current_layer = &rules->layers.back();
      } else if (table.rfind("restrict.", 0) == 0) {
        Restrict restrict;
        restrict.name = table.substr(9);
        if (restrict.name.empty()) return fail("empty restrict name");
        for (const Restrict& existing : rules->restricts) {
          if (existing.name == restrict.name) {
            return fail("duplicate restrict '" + restrict.name + "'");
          }
        }
        rules->restricts.push_back(restrict);
        current_restrict = &rules->restricts.back();
      } else if (table == "exempt") {
        in_exempt = true;
      } else {
        return fail("unknown table [" + table + "]");
      }
      continue;
    }

    const std::size_t eq = stmt.find('=');
    if (eq == std::string::npos) return fail("expected key = value");
    const std::string key = Trim(stmt.substr(0, eq));
    std::vector<std::string> items;
    if (!ParseValue(stmt.substr(eq + 1), &items)) {
      return fail("bad value for '" + key + "'");
    }

    if (current_layer != nullptr) {
      if (key == "path") {
        if (items.size() != 1) return fail("'path' wants one string");
        current_layer->path = items.front();
      } else if (key == "deps") {
        current_layer->deps = items;
      } else {
        return fail("unknown layer key '" + key + "'");
      }
    } else if (current_restrict != nullptr) {
      if (key == "header") {
        if (items.size() != 1) return fail("'header' wants one string");
        current_restrict->header = items.front();
      } else if (key == "allowed") {
        current_restrict->allowed = items;
      } else {
        return fail("unknown restrict key '" + key + "'");
      }
    } else if (in_exempt) {
      if (key == "paths") {
        rules->exempt_paths = items;
      } else {
        return fail("unknown exempt key '" + key + "'");
      }
    } else {
      return fail("key outside any table");
    }
  }

  for (const Layer& layer : rules->layers) {
    if (layer.path.empty()) {
      *error = "layer '" + layer.name + "' has no path";
      return false;
    }
    for (const std::string& dep : layer.deps) {
      bool known = false;
      for (const Layer& other : rules->layers) known |= other.name == dep;
      if (!known) {
        *error = "layer '" + layer.name + "' depends on unknown '" + dep + "'";
        return false;
      }
    }
  }
  for (const Restrict& restrict : rules->restricts) {
    if (restrict.header.empty()) {
      *error = "restrict '" + restrict.name + "' has no header";
      return false;
    }
    for (const std::string& allowed : restrict.allowed) {
      bool known = false;
      for (const Layer& other : rules->layers) known |= other.name == allowed;
      if (!known) {
        *error = "restrict '" + restrict.name + "' allows unknown layer '" +
                 allowed + "'";
        return false;
      }
    }
  }
  return true;
}

bool ParseRulesFile(const std::string& path, LayerRules* rules,
                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open rules file: " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseRulesText(buf.str(), rules, error);
}

}  // namespace tsss_lint
