// Fixture: atomic-order violations. Expected atomic-order findings
// (golden counts in tsss_lint_test.cc):
//   1. UnwaivedRelaxed — memory_order_relaxed without a relaxed-ok waiver
//   2. OneShotWeak — compare_exchange_weak outside any loop
//   3. StrongRetry — compare_exchange_strong as a loop condition
//   4. BadFailureOrder — failure ordering memory_order_release
// WaivedRelaxed and WeakRetry must NOT be flagged.

#include <atomic>

namespace tsss::core {

// Finding 1: no justification for the relaxed ordering.
void UnwaivedRelaxed(std::atomic<int>& counter) {
  counter.fetch_add(1, std::memory_order_relaxed);
}

// Clean: the waiver states the reasoning.
void WaivedRelaxed(std::atomic<int>& counter) {
  // relaxed-ok: advisory tally, no payload published
  counter.fetch_add(1, std::memory_order_relaxed);
}

// Finding 2: a spurious weak-CAS failure is silently dropped here.
bool OneShotWeak(std::atomic<int>& value, int expected, int desired) {
  return value.compare_exchange_weak(expected, desired);
}

// Finding 3: the retry loop should use the weak form.
void StrongRetry(std::atomic<int>& value, int desired) {
  int expected = value.load();
  while (!value.compare_exchange_strong(expected, desired)) {
  }
}

// Clean: weak CAS inside its retry loop.
void WeakRetry(std::atomic<int>& value, int desired) {
  int expected = value.load();
  while (!value.compare_exchange_weak(expected, desired)) {
  }
}

// Finding 4: the failure path of a CAS is a pure load and cannot release.
bool BadFailureOrder(std::atomic<int>& value, int expected, int desired) {
  bool won = false;
  do {
    won = value.compare_exchange_weak(expected, desired,
                                      std::memory_order_acq_rel,
                                      std::memory_order_release);
  } while (!won && expected < desired);
  return won;
}

}  // namespace tsss::core
