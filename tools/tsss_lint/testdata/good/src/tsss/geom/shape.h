// Fixture: geom may include common (declared dep).
#ifndef FIXTURE_GEOM_SHAPE_H_
#define FIXTURE_GEOM_SHAPE_H_

#include "tsss/common/base.h"

namespace tsss::geom {

double Area(double w, double h);

}  // namespace tsss::geom

#endif
