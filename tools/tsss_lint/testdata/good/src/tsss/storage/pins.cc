// Clean pin handling: RAII guards, manual pairs released on every path,
// and a justified waiver. The pin-pairing check must stay silent here.

namespace tsss::storage {

struct Frame {
  int id = 0;
};

struct PageGuard {
  explicit PageGuard(Frame* frame);
  ~PageGuard();
  Frame* frame();
};

struct Pool {
  Frame* Pin(int id);
  void Unpin(Frame* frame);
  PageGuard Fetch(int id);
  bool Ready(int id);
};

// RAII: the guard releases on every path by construction.
int RaiiRead(Pool* pool, int id) {
  PageGuard guard = pool->Fetch(id);
  if (!pool->Ready(id)) return -1;
  return guard.frame()->id;
}

// Manual pair, released on the early-return path and the fall-through.
int ManualPaired(Pool* pool, int id) {
  Frame* frame = pool->Pin(id);
  if (!pool->Ready(id)) {
    pool->Unpin(frame);
    return -1;
  }
  const int out = frame->id;
  pool->Unpin(frame);
  return out;
}

// Deliberate long-lived pin, handed to the caller with a stated reason.
Frame* HandOff(Pool* pool, int id) {
  Frame* frame = pool->Pin(id);  // pin-ok: transfer; caller unpins via Release
  return frame;
}

}  // namespace tsss::storage
