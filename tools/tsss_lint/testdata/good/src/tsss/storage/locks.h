// Fixture: fully annotated lock state with a declared acquisition order.
#ifndef FIXTURE_STORAGE_LOCKS_H_
#define FIXTURE_STORAGE_LOCKS_H_

#include "tsss/common/base.h"

namespace tsss::storage {

class Store {
 public:
  Status Flush();

 private:
  Mutex meta_mu_;
  Mutex data_mu_ TSSS_ACQUIRED_AFTER(meta_mu_);
  int epoch_ TSSS_GUARDED_BY(meta_mu_) = 0;
  int bytes_ TSSS_GUARDED_BY(data_mu_) = 0;
};

}  // namespace tsss::storage

#endif
