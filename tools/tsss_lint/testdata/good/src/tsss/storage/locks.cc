// Fixture: consumed Status results, a justified discard, locks taken in the
// declared order, and a clean hot region.
#include "tsss/storage/locks.h"

namespace tsss::storage {

Status Store::Flush() {
  MutexLock meta(meta_mu_);
  MutexLock data(data_mu_);  // matches the TSSS_ACQUIRED_AFTER declaration
  Status s = MightFail();
  if (!s.ok()) return s;
  // discard-ok: second flush is advisory in this fixture.
  (void)MightFail();

  // TSSS_HOT_BEGIN(fixture_sum)
  double acc = 0.0;
  for (int i = 0; i < bytes_; ++i) acc += static_cast<double>(i);
  epoch_ = acc > 0.0 ? epoch_ + 1 : epoch_;
  // TSSS_HOT_END(fixture_sum)
  return Status();
}

}  // namespace tsss::storage
