// Fixture: a bottom-layer header. Everything here is legal.
#ifndef FIXTURE_COMMON_BASE_H_
#define FIXTURE_COMMON_BASE_H_

namespace tsss {

class Status {
 public:
  bool ok() const { return true; }
};

Status MightFail();

}  // namespace tsss

#endif
