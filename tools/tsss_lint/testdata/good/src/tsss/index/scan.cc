// Clean deadline-poll, atomic-order, and float usage: I/O loops poll
// (directly or transitively), relaxed atomics carry waivers, weak CAS
// retries in a loop. The v2 checks must stay silent here.

#include <atomic>

namespace tsss::index {

struct Status {
  bool ok() const;
  static Status OK();
};

struct Store {
  Status ReadWindow(int series, int offset);
  Status LoadNode(int id);
};

struct Control {
  Status Check() const;
};

Control* CurrentExecControl();

Status PollExecControl() {
  Control* control = CurrentExecControl();
  if (control == nullptr) return Status::OK();
  return control->Check();
}

// Direct poll in the body.
Status ScanDirect(Store* store, int n) {
  for (int i = 0; i < n; ++i) {
    Status poll = PollExecControl();
    if (!poll.ok()) return poll;
    Status s = store->ReadWindow(i, 0);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

// The callee polls; the loop is covered transitively.
Status VisitNode(Store* store, int id) {
  Status poll = PollExecControl();
  if (!poll.ok()) return poll;
  return store->LoadNode(id);
}

Status ScanTransitive(Store* store, int n) {
  for (int i = 0; i < n; ++i) {
    Status s = VisitNode(store, i);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

// Relaxed tally with a stated reason; weak CAS retried in its loop.
void CountVisit(std::atomic<int>& visits, std::atomic<int>& high_water) {
  // relaxed-ok: advisory visit tally, no payload published
  const int seen = 1 + visits.fetch_add(1, std::memory_order_relaxed);
  int cur = high_water.load();
  while (seen > cur && !high_water.compare_exchange_weak(cur, seen)) {
  }
}

}  // namespace tsss::index
