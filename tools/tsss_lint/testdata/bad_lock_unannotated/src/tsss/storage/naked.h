// Fixture: MUST FAIL lock-order twice — a tsss::Mutex member that no
// annotation references, and a raw std::mutex member with no waiver.
#ifndef FIXTURE_BAD_LOCK_UNANNOTATED_H_
#define FIXTURE_BAD_LOCK_UNANNOTATED_H_

#include <mutex>

namespace tsss::storage {

class Naked {
 private:
  Mutex mystery_mu_;
  std::mutex invisible_mu_;
  int state_ = 0;
};

}  // namespace tsss::storage

#endif
