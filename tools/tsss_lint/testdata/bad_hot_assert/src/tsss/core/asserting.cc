// Fixture: MUST FAIL hot-path twice — a bare assert and a lock acquisition
// inside a TSSS_HOT region.
#include <cassert>

namespace tsss::core {

class Counter {
 public:
  double Drain(const double* values, int n) {
    double acc = 0.0;
    // TSSS_HOT_BEGIN(fixture_assert)
    for (int i = 0; i < n; ++i) {
      assert(values != nullptr);  // bare assert stays live in Release
      MutexLock lock(mu_);        // lock churn inside the hot loop
      acc += values[i];
    }
    // TSSS_HOT_END(fixture_assert)
    return acc;
  }

 private:
  Mutex mu_;
  double drained_ TSSS_GUARDED_BY(mu_) = 0.0;
};

}  // namespace tsss::core
