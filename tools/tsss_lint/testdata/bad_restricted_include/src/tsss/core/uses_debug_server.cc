// Fixture: MUST FAIL layering — obs is among core's deps, but
// obs/debug_server.h is restricted to the serving layers
// ([restrict.debug_server]): the query engine must not embed an HTTP
// listener.
#include "tsss/obs/debug_server.h"

namespace tsss::core {
double Nothing() { return 0.0; }
}  // namespace tsss::core
