// Fixture: MUST FAIL lock-order — the declared acquisition order is cyclic:
// each mutex claims to be acquired after the other.
#ifndef FIXTURE_BAD_LOCK_CYCLE_AB_H_
#define FIXTURE_BAD_LOCK_CYCLE_AB_H_

namespace tsss::storage {

class Tangle {
 private:
  Mutex a_ TSSS_ACQUIRED_AFTER(b_);
  Mutex b_ TSSS_ACQUIRED_AFTER(a_);
  int x_ TSSS_GUARDED_BY(a_) = 0;
  int y_ TSSS_GUARDED_BY(b_) = 0;
};

}  // namespace tsss::storage

#endif
