// Fixture: manual pin handling that leaks on at least one path. Expected
// pin-pairing findings (golden counts in tsss_lint_test.cc):
//   1. LeakOnEarlyReturn — pinned frame not released on the error return
//   2. BareAcquire — acquisition result never bound
//   3. DanglingRef — Page reference outliving its inline guard temporary
// CleanPaired and WaivedLeak must NOT be flagged.

namespace tsss::storage {

struct Frame {
  int id = 0;
};

struct Pool {
  Frame* Pin(int id);
  void Unpin(Frame* frame);
  bool Ready(int id);
};

// Finding 1: on the `!pool->Ready(id)` path the function returns with the
// pin still held.
int LeakOnEarlyReturn(Pool* pool, int id) {
  Frame* frame = pool->Pin(id);
  if (!pool->Ready(id)) {
    return -1;
  }
  int out = frame->id;
  pool->Unpin(frame);
  return out;
}

// Finding 2: the acquisition binds nothing; the pin leaks at the semicolon.
void BareAcquire(Pool* pool, int id) {
  pool->Pin(id);
}

// Clean: released on both the early-return path and the fall-through.
int CleanPaired(Pool* pool, int id) {
  Frame* frame = pool->Pin(id);
  if (!pool->Ready(id)) {
    pool->Unpin(frame);
    return -1;
  }
  int out = frame->id;
  pool->Unpin(frame);
  return out;
}

// Clean: the waiver covers an intentional long-lived pin.
Frame* WaivedLeak(Pool* pool, int id) {
  Frame* frame = pool->Pin(id);  // pin-ok: caller owns the pin and unpins it
  return frame;
}

struct Page {
  int bytes[8];
};

struct GuardResult {
  Page& page();
};

struct GuardPool {
  GuardResult Fetch(int id);
};

// Finding 3: the guard temporary dies at the semicolon; `p` dangles.
int DanglingRef(GuardPool* pool, int id) {
  Page& p = pool->Fetch(id).page();
  return p.bytes[0];
}

}  // namespace tsss::storage
