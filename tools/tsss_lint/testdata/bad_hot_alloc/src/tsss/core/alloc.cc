// Fixture: MUST FAIL hot-path twice — container growth and a naked new
// inside a TSSS_HOT region.
#include <vector>

namespace tsss::core {

double SumWindows(const std::vector<double>& in) {
  std::vector<double> scratch;
  double acc = 0.0;
  // TSSS_HOT_BEGIN(fixture_alloc)
  for (double x : in) {
    scratch.push_back(x);  // growth inside the hot loop
    acc += x;
  }
  double* leak = new double(acc);  // heap allocation inside the hot loop
  acc += *leak;
  // TSSS_HOT_END(fixture_alloc)
  delete leak;
  return acc;
}

}  // namespace tsss::core
