// Fixture: MUST FAIL layering — shard sits on top of service; the worker
// pool must not reach back up into the scatter-gather engine.
#include "tsss/shard/sharded_engine.h"

namespace tsss::service {
double Nothing() { return 0.0; }
}  // namespace tsss::service
