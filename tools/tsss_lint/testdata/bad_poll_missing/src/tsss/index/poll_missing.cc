// Fixture: query loops doing page I/O without reaching an ExecControl
// poll. Expected deadline-poll findings (golden counts in
// tsss_lint_test.cc):
//   1. DirectIoNoPoll — loop calls ReadWindow, never polls
//   2. TransitiveIoNoPoll — loop calls a helper that reaches LoadNode
// PolledLoop, TransitivePolledLoop, and WaivedLoop must NOT be flagged.

namespace tsss::index {

struct Status {
  bool ok() const;
};

struct Store {
  Status ReadWindow(int series, int offset);
  Status LoadNode(int id);
};

struct Control {
  Status Check() const;
};

Control* CurrentExecControl();

// Helper that does I/O transitively (calls LoadNode) without polling.
Status VisitNode(Store* store, int id) {
  return store->LoadNode(id);
}

// Helper whose body polls: loops that call it are covered.
Status PollingVisit(Store* store, int id) {
  Control* control = CurrentExecControl();
  if (control != nullptr) {
    Status s = control->Check();
    if (!s.ok()) return s;
  }
  return store->LoadNode(id);
}

// Finding 1: direct page I/O, no poll anywhere in the loop.
void DirectIoNoPoll(Store* store, int n) {
  for (int i = 0; i < n; ++i) {
    Status s = store->ReadWindow(i, 0);
    if (!s.ok()) return;
  }
}

// Finding 2: the I/O hides one call level down; still no poll.
void TransitiveIoNoPoll(Store* store, int n) {
  for (int i = 0; i < n; ++i) {
    Status s = VisitNode(store, i);
    if (!s.ok()) return;
  }
}

// Clean: polls directly in the body.
void PolledLoop(Store* store, int n) {
  for (int i = 0; i < n; ++i) {
    Control* control = CurrentExecControl();
    if (control != nullptr && !control->Check().ok()) return;
    Status s = store->ReadWindow(i, 0);
    if (!s.ok()) return;
  }
}

// Clean: the callee polls, which covers the loop transitively.
void TransitivePolledLoop(Store* store, int n) {
  for (int i = 0; i < n; ++i) {
    Status s = PollingVisit(store, i);
    if (!s.ok()) return;
  }
}

// Clean: bounded two-iteration retry, deadline coverage waived.
void WaivedLoop(Store* store) {
  // poll-ok: fixed two-iteration retry, bounded work per query
  for (int attempt = 0; attempt < 2; ++attempt) {
    Status s = store->ReadWindow(0, 0);
    if (s.ok()) return;
  }
}

}  // namespace tsss::index
