// Fixture: MUST FAIL lock-order — two functions take the same pair of locks
// in opposite orders (the classic AB/BA deadlock).
namespace tsss::storage {

class Pools {
 public:
  void Transfer() {
    MutexLock a(alpha_mu_);
    MutexLock b(beta_mu_);
    ++moves_;
  }
  void Rebalance() {
    MutexLock b(beta_mu_);
    MutexLock a(alpha_mu_);
    ++moves_;
  }

 private:
  Mutex alpha_mu_;
  Mutex beta_mu_;
  int moves_ TSSS_GUARDED_BY(alpha_mu_) TSSS_GUARDED_BY(beta_mu_) = 0;
};

}  // namespace tsss::storage
