// Fixture: MUST FAIL status-discard — (void)-casts without the required
// `// discard-ok:` justification comment.
namespace tsss::core {

class Status {
 public:
  bool ok() const { return true; }
};

Status Persist();
Status Compact();

void Shutdown() {
  (void)Persist();  // no justification: the cast alone is not enough
  (void)Compact();
}

}  // namespace tsss::core
