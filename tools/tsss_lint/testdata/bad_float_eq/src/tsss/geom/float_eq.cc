// Fixture: exact floating-point equality in prune/hot contexts. Expected
// float-hazard findings (golden counts in tsss_lint_test.cc):
//   1. PruneEq — double == double in a geom prune predicate
//   2. PruneNe — double != literal in geom
//   3. HotEq — float == inside a TSSS_HOT region
// ZeroGuard (== 0.0), WaivedEq, and IntEq must NOT be flagged.

namespace tsss::geom {

// Finding 1: two computed doubles compared exactly.
bool PruneEq(double lhs, double rhs) {
  return lhs == rhs;
}

// Finding 2: != against a non-zero literal.
bool PruneNe(double distance) {
  return distance != 1.5;
}

// Clean: exact-zero guard before division is well-defined.
double ZeroGuard(double num, double den) {
  if (den == 0.0) return 0.0;
  return num / den;
}

// Clean: waived with a stated reason.
bool WaivedEq(double a, double b) {
  return a == b;  // lint-ok: float-eq comparing canonicalized sentinels
}

// Clean: integer comparison, out of the check's jurisdiction.
bool IntEq(int a, int b) {
  return a == b;
}

// Finding 3: hot-region float equality (this file is doubly in scope).
double HotEq(float x, float target) {
  double acc = 0.0;
  // TSSS_HOT_BEGIN(float_eq_probe)
  if (x == target) {
    acc += 1.0;
  }
  // TSSS_HOT_END(float_eq_probe)
  return acc;
}

}  // namespace tsss::geom
