// Fixture: MUST FAIL status-discard twice — a bare call to a fallible free
// function and a bare call through a member chain.
namespace tsss::core {

class Status {
 public:
  bool ok() const { return true; }
};

Status Persist();

struct Store {
  Status Write(int page);
};

void Checkpoint(Store& store) {
  Persist();        // dropped: nothing reads the returned Status
  store.Write(42);  // dropped through the member chain
}

}  // namespace tsss::core
