// Fixture: MUST FAIL layering — geom depends only on common; core is three
// layers up.
#include "tsss/core/engine.h"

namespace tsss::geom {
double Nothing() { return 0.0; }
}  // namespace tsss::geom
