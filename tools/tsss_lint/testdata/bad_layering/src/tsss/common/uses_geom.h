// Fixture: MUST FAIL layering — common is the bottom layer and may not
// reach up into geom.
#ifndef FIXTURE_BAD_COMMON_USES_GEOM_H_
#define FIXTURE_BAD_COMMON_USES_GEOM_H_

#include "tsss/geom/shape.h"

namespace tsss {
inline double Twice(double x) { return 2.0 * x; }
}  // namespace tsss

#endif
