// Fixture: MUST FAIL layering — see a.h.
#ifndef FIXTURE_CYCLE_B_H_
#define FIXTURE_CYCLE_B_H_

#include "tsss/geom/a.h"

namespace tsss::geom {
struct B {
  int value = 0;
};
}  // namespace tsss::geom

#endif
