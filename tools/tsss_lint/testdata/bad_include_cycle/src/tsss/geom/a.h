// Fixture: MUST FAIL layering — a.h and b.h include each other.
#ifndef FIXTURE_CYCLE_A_H_
#define FIXTURE_CYCLE_A_H_

#include "tsss/geom/b.h"

namespace tsss::geom {
struct A {
  int value = 0;
};
}  // namespace tsss::geom

#endif
