// Fixture: MUST FAIL layering — obs is among core's deps, but
// obs/profiler.h is restricted to the serving layers
// ([restrict.profiler]): library code must not install the process-wide
// SIGPROF handler behind its caller's back.
#include "tsss/obs/profiler.h"

namespace tsss::core {
double Nothing() { return 0.0; }
}  // namespace tsss::core
