// Fixture: MUST FAIL hot-path — the region is never closed.
namespace tsss::core {

double Sum(const double* values, int n) {
  double acc = 0.0;
  // TSSS_HOT_BEGIN(fixture_unbalanced)
  for (int i = 0; i < n; ++i) acc += values[i];
  return acc;
}

}  // namespace tsss::core
