// Check 5 — pin pairing (flow-sensitive). The buffer pool's page pins are
// the project's most delicate resource: a pin leaked on one early-return
// path wedges eviction forever, and a page reference that outlives its
// guard dangles. RAII (`PageGuard`) is the sanctioned style; this check
// polices the manual escape hatches by enumerating execution paths
// through the statement tree and requiring every acquisition to reach a
// release on all of them.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "tsss_lint/checks.h"
#include "tsss_lint/parser.h"

namespace tsss_lint {

namespace {

/// Manual acquisition → required release. RAII-returning calls (Fetch/New
/// return Result<PageGuard>) are deliberately absent: a guard releases
/// itself on every path by construction.
struct PairRule {
  const char* acquire;
  const char* release;
};
constexpr PairRule kPairs[] = {
    {"Pin", "Unpin"},
    {"AcquirePage", "ReleasePage"},
};

/// Layers whose files participate (the ones that touch the buffer pool).
bool InScope(const std::string& path) {
  return path.rfind("src/tsss/storage/", 0) == 0 ||
         path.rfind("src/tsss/index/", 0) == 0 ||
         path.rfind("src/tsss/core/", 0) == 0 ||
         path.rfind("src/tsss/shard/", 0) == 0;
}

/// RAII wrapper types: a declaration whose type mentions one of these
/// owns its resource and needs no manual release.
bool IsRaiiTypeName(const std::string& name) {
  static const std::set<std::string> kRaii = {
      "PageGuard", "Result",     "MutexLock",  "unique_ptr",
      "shared_ptr", "optional",  "ScopedExecControl",
  };
  return kRaii.count(name) != 0;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// One acquisition discovered inside a leaf statement.
struct Acquisition {
  const Stmt* leaf = nullptr;
  int line = 0;
  std::string var;      ///< bound variable; empty = bare statement call
  std::string release;  ///< required release function name
  bool raii = false;    ///< bound into an RAII wrapper type
};

/// Scans one leaf statement for `X.Pin(...)`-style acquisitions and
/// classifies how the result is captured.
void FindAcquisitions(const std::vector<Token>& toks, const Stmt& leaf,
                      std::vector<Acquisition>* out) {
  std::size_t begin = 0;
  std::size_t end = 0;
  LeafTokenRange(leaf, &begin, &end);
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const PairRule* rule = nullptr;
    for (const PairRule& p : kPairs) {
      if (toks[i].text == p.acquire) rule = &p;
    }
    if (rule == nullptr) continue;
    if (i + 1 >= end || !IsPunct(toks[i + 1], "(")) continue;
    // Skip definitions/declarations of the acquire function itself: the
    // name preceded by a type identifier (`Frame* Pin(...)`) outside a
    // member-access chain is a declarator, not a call — detect by the
    // statement ending in `{` is impossible here (leaves are `;`-bound),
    // so require the call to be reached via `.`/`->`/`=`/statement start.
    Acquisition acq;
    acq.leaf = &leaf;
    acq.line = toks[i].line;
    acq.release = rule->release;

    // Walk left over the receiver chain to the statement position where
    // a binding would sit: `frame = pool->Pin(id)` / `auto* f = x.Pin()`.
    std::size_t pos = i;
    while (pos > begin && (IsPunct(toks[pos - 1], ".") ||
                           IsPunct(toks[pos - 1], "->") ||
                           IsPunct(toks[pos - 1], "::"))) {
      if (pos >= 2 && toks[pos - 2].kind == TokKind::kIdent) {
        pos -= 2;
      } else {
        break;
      }
    }
    if (pos > begin && IsPunct(toks[pos - 1], "=")) {
      // Find the bound variable: identifier left of `=`.
      std::size_t v = pos - 1;
      if (v > begin && toks[v - 1].kind == TokKind::kIdent) {
        acq.var = toks[v - 1].text;
        // Type tokens left of the variable: RAII wrapper?
        for (std::size_t t = begin; t + 1 < v; ++t) {
          if (toks[t].kind == TokKind::kIdent && IsRaiiTypeName(toks[t].text)) {
            acq.raii = true;
          }
        }
      }
    }
    out->push_back(std::move(acq));
  }
}

/// Does the leaf release `var` via `release` (e.g. `pool->Unpin(f);` or
/// `f->Release()`)? Accepts any call to the release name whose argument
/// list or receiver chain mentions the variable.
bool LeafReleases(const std::vector<Token>& toks, const Stmt& leaf,
                  const std::string& release, const std::string& var) {
  std::size_t begin = 0;
  std::size_t end = 0;
  LeafTokenRange(leaf, &begin, &end);
  bool saw_release = false;
  bool saw_var = false;
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    if (toks[i].text == release) saw_release = true;
    if (toks[i].text == var) saw_var = true;
  }
  return saw_release && (var.empty() || saw_var);
}

/// Reference/pointer declaration whose initializer pins a page inline:
/// the guard temporary dies at the semicolon, the reference dangles.
void FindDanglingPageRefs(const SourceFile& file,
                          const std::vector<Token>& toks,
                          const std::set<int>& waived,
                          std::vector<Finding>* findings) {
  static const std::set<std::string> kInlineAcquire = {"Fetch", "New"};
  const std::size_t n = toks.size();
  for (std::size_t i = 0; i + 3 < n; ++i) {
    // Pattern: `Page & name =` or `Page * name =` ... `Fetch ( ... ) .
    // value ( ) . page ( )` within the same statement.
    if (toks[i].kind != TokKind::kIdent || toks[i].text != "Page") continue;
    if (!(IsPunct(toks[i + 1], "&") || IsPunct(toks[i + 1], "*"))) continue;
    if (toks[i + 2].kind != TokKind::kIdent) continue;
    if (!IsPunct(toks[i + 3], "=")) continue;
    bool pins_inline = false;
    for (std::size_t j = i + 4; j < n && !IsPunct(toks[j], ";"); ++j) {
      if (toks[j].kind == TokKind::kIdent &&
          kInlineAcquire.count(toks[j].text) != 0 && j + 1 < n &&
          IsPunct(toks[j + 1], "(")) {
        pins_inline = true;
      }
    }
    if (pins_inline && !HasWaiver(waived, toks[i].line)) {
      findings->push_back(
          Finding{Check::kPinPairing, file.path, toks[i].line,
                  "page reference '" + toks[i + 2].text +
                      "' outlives its pin: the guard temporary dies at the "
                      "semicolon; bind the PageGuard to a named variable"});
    }
  }
}

}  // namespace

std::vector<Finding> CheckPinPairing(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  constexpr std::size_t kPathCap = 512;

  for (const SourceFile& file : files) {
    if (!InScope(file.path)) continue;
    const std::set<int> waived = WaiverLines(file, "pin-ok");

    std::vector<Token> code;
    code.reserve(file.tokens.size());
    for (const Token& t : file.tokens) {
      if (!IsComment(t)) code.push_back(t);
    }

    FindDanglingPageRefs(file, code, waived, &findings);

    const std::vector<FunctionDef> functions = ParseFunctions(code);
    for (const FunctionDef& fn : functions) {
      // Cheap pre-scan: does the body mention any acquire name at all?
      bool any = false;
      for (std::size_t i = fn.body.begin; i < fn.body.end && i < code.size();
           ++i) {
        for (const PairRule& p : kPairs) {
          if (code[i].kind == TokKind::kIdent && code[i].text == p.acquire &&
              i + 1 < code.size() && IsPunct(code[i + 1], "(")) {
            any = true;
          }
        }
      }
      if (!any) continue;

      const std::vector<ExecPath> paths = EnumeratePaths(fn.body, kPathCap);
      for (const ExecPath& path : paths) {
        for (std::size_t li = 0; li < path.leaves.size(); ++li) {
          std::vector<Acquisition> acqs;
          FindAcquisitions(code, *path.leaves[li], &acqs);
          for (const Acquisition& acq : acqs) {
            if (acq.raii) continue;
            if (HasWaiver(waived, acq.line)) continue;
            if (acq.var.empty()) {
              findings.push_back(Finding{
                  Check::kPinPairing, file.path, acq.line,
                  "acquisition result is not bound: the pin leaks at the "
                  "semicolon; hold it in a guard or release it explicitly "
                  "(or waive with `// pin-ok: <why>`)"});
              continue;
            }
            bool released = false;
            for (std::size_t lj = li + 1; lj < path.leaves.size(); ++lj) {
              if (LeafReleases(code, *path.leaves[lj], acq.release, acq.var)) {
                released = true;
                break;
              }
            }
            if (!released) {
              const std::string where =
                  path.ends_in_return
                      ? "the return at line " + std::to_string(path.exit_line)
                      : "the end of '" + fn.name + "'";
              findings.push_back(Finding{
                  Check::kPinPairing, file.path, acq.line,
                  "pin '" + acq.var + "' is not released on the path to " +
                      where + "; release on every path or use an RAII "
                      "guard (waive with `// pin-ok: <why>`)"});
            }
          }
        }
      }
    }
  }

  // A leaky acquisition typically appears on several enumerated paths;
  // report each (acquisition, exit) pair once.
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.message < b.message;
                   });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.message == b.message;
                             }),
                 findings.end());
  return findings;
}

}  // namespace tsss_lint
