// Compares two benchmark report trees (schema-v1 BENCH_*.json, see
// bench/bench_common.h) with per-metric noise thresholds:
//
//   bench_diff --baseline PATH --current PATH [--threshold 0.25]
//              [--counts-only] [--ignore KEY]...
//   bench_diff --inject FACTOR in.json out.json
//
// PATH is a directory (every BENCH_*.json inside) or a single file. Rows are
// matched by index; the metric key decides how its values are compared:
//
//   time    (_ms/_us/_ns/_s/seconds/time/latency)  lower is better; fails
//           when current > baseline * (1 + threshold)
//   rate    (qps/throughput)                       higher is better; fails
//           when current < baseline * (1 - threshold)
//   noisy   (pct/percent/ratio)                    derived from timings;
//           reported but never gates
//   count   (everything else)                      deterministic; must match
//           exactly unless listed with --ignore
//
// --counts-only skips the time/rate/noisy classes entirely — the mode CI
// uses against the committed bench/baselines snapshot, where wall times from
// another machine are meaningless but page/candidate/match counts are not.
//
// --inject multiplies every time-class metric by FACTOR and writes the result
// to out.json; the CI self-test uses it to prove the gate actually fires.
//
// Exit status: 0 = no regressions, 1 = regression or structural mismatch,
// 2 = usage/IO error.

#include <dirent.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "json_mini.h"

namespace {

using jsonmini::JsonValue;

enum class MetricClass { kTime, kRate, kNoisy, kCount };

bool HasToken(const std::string& key, const std::set<std::string>& tokens) {
  std::size_t start = 0;
  while (start <= key.size()) {
    const std::size_t end = key.find('_', start);
    const std::string token =
        key.substr(start, end == std::string::npos ? end : end - start);
    if (tokens.count(token) != 0) return true;
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return false;
}

MetricClass Classify(const std::string& key) {
  static const std::set<std::string> kTimeTokens = {
      "ms", "us", "ns", "s", "seconds", "time", "latency"};
  static const std::set<std::string> kRateTokens = {"qps", "throughput"};
  static const std::set<std::string> kNoisyTokens = {"pct", "percent",
                                                     "ratio"};
  if (HasToken(key, kTimeTokens)) return MetricClass::kTime;
  if (HasToken(key, kRateTokens)) return MetricClass::kRate;
  if (HasToken(key, kNoisyTokens)) return MetricClass::kNoisy;
  return MetricClass::kCount;
}

struct Options {
  std::string baseline;
  std::string current;
  double threshold = 0.25;
  bool counts_only = false;
  std::set<std::string> ignored;
};

/// One report per file: its display name and full path.
struct ReportFile {
  std::string name;
  std::string path;
};

/// Expands PATH into the reports it holds: the BENCH_*.json files of a
/// directory (sorted by name) or the single file itself.
bool CollectReports(const std::string& path, std::vector<ReportFile>* out,
                    std::string* error) {
  DIR* dir = opendir(path.c_str());
  if (dir == nullptr) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      *error = "cannot open '" + path + "'";
      return false;
    }
    std::fclose(f);
    std::size_t slash = path.find_last_of('/');
    out->push_back(
        {slash == std::string::npos ? path : path.substr(slash + 1), path});
    return true;
  }
  while (const dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      out->push_back({name, path + "/" + name});
    }
  }
  closedir(dir);
  std::sort(out->begin(), out->end(),
            [](const ReportFile& a, const ReportFile& b) {
              return a.name < b.name;
            });
  return true;
}

/// Compares one metric; returns false on a gating regression.
bool CompareMetric(const std::string& where, const std::string& key,
                   const JsonValue& base, const JsonValue& cur,
                   const Options& opts) {
  if (opts.ignored.count(key) != 0) return true;
  if (base.kind != cur.kind) {
    std::printf("FAIL %s.%s: kind changed\n", where.c_str(), key.c_str());
    return false;
  }
  switch (base.kind) {
    case JsonValue::Kind::kNull:
      return true;
    case JsonValue::Kind::kBool:
      if (base.boolean != cur.boolean) {
        std::printf("FAIL %s.%s: %s -> %s\n", where.c_str(), key.c_str(),
                    base.boolean ? "true" : "false",
                    cur.boolean ? "true" : "false");
        return false;
      }
      return true;
    case JsonValue::Kind::kString:
      if (base.str != cur.str) {
        std::printf("FAIL %s.%s: \"%s\" -> \"%s\"\n", where.c_str(),
                    key.c_str(), base.str.c_str(), cur.str.c_str());
        return false;
      }
      return true;
    case JsonValue::Kind::kNumber:
      break;
    default:  // arrays/objects are rejected by bench_schema_check already
      return true;
  }

  const double b = base.number;
  const double c = cur.number;
  switch (Classify(key)) {
    case MetricClass::kCount:
      if (b != c) {
        std::printf("FAIL %s.%s: count changed %.17g -> %.17g\n",
                    where.c_str(), key.c_str(), b, c);
        return false;
      }
      return true;
    case MetricClass::kTime: {
      if (opts.counts_only) return true;
      if (b > 0.0 && c > b * (1.0 + opts.threshold)) {
        std::printf("FAIL %s.%s: %.4g -> %.4g (+%.1f%% > %.0f%% threshold)\n",
                    where.c_str(), key.c_str(), b, c, 100.0 * (c - b) / b,
                    100.0 * opts.threshold);
        return false;
      }
      return true;
    }
    case MetricClass::kRate: {
      if (opts.counts_only) return true;
      if (b > 0.0 && c < b * (1.0 - opts.threshold)) {
        std::printf("FAIL %s.%s: %.4g -> %.4g (%.1f%% < -%.0f%% threshold)\n",
                    where.c_str(), key.c_str(), b, c, 100.0 * (c - b) / b,
                    100.0 * opts.threshold);
        return false;
      }
      return true;
    }
    case MetricClass::kNoisy:
      // Derived ratios (overhead_pct etc.) wobble with the timings they are
      // computed from; surface large moves without gating on them.
      if (!opts.counts_only && b != 0.0 &&
          std::fabs(c - b) > opts.threshold * std::fabs(b)) {
        std::printf("note %s.%s: %.4g -> %.4g (not gating)\n", where.c_str(),
                    key.c_str(), b, c);
      }
      return true;
  }
  return true;
}

/// Diffs one baseline report against its current counterpart.
bool CompareReports(const std::string& name, const JsonValue& base,
                    const JsonValue& cur, const Options& opts) {
  bool ok = true;

  // The environment must match: comparing a 20-company smoke run against a
  // 200-company full run is a user error, not a regression.
  const JsonValue* base_env = base.Get("env");
  const JsonValue* cur_env = cur.Get("env");
  std::string base_env_text;
  std::string cur_env_text;
  if (base_env != nullptr) jsonmini::Serialize(*base_env, &base_env_text);
  if (cur_env != nullptr) jsonmini::Serialize(*cur_env, &cur_env_text);
  if (base_env_text != cur_env_text) {
    std::printf("FAIL %s: env mismatch (%s vs %s)\n", name.c_str(),
                base_env_text.c_str(), cur_env_text.c_str());
    return false;
  }

  const JsonValue* base_rows = base.Get("rows");
  const JsonValue* cur_rows = cur.Get("rows");
  if (base_rows == nullptr || cur_rows == nullptr ||
      base_rows->kind != JsonValue::Kind::kArray ||
      cur_rows->kind != JsonValue::Kind::kArray) {
    std::printf("FAIL %s: rows missing\n", name.c_str());
    return false;
  }
  if (base_rows->array.size() != cur_rows->array.size()) {
    std::printf("FAIL %s: row count changed %zu -> %zu\n", name.c_str(),
                base_rows->array.size(), cur_rows->array.size());
    return false;
  }

  for (std::size_t i = 0; i < base_rows->array.size(); ++i) {
    const JsonValue& base_row = base_rows->array[i];
    const JsonValue& cur_row = cur_rows->array[i];
    const std::string where = name + " rows[" + std::to_string(i) + "]";
    for (const auto& [key, base_value] : base_row.object) {
      const JsonValue* cur_value = cur_row.Get(key);
      if (cur_value == nullptr) {
        std::printf("FAIL %s.%s: metric disappeared\n", where.c_str(),
                    key.c_str());
        ok = false;
        continue;
      }
      if (!CompareMetric(where, key, base_value, *cur_value, opts)) ok = false;
    }
    for (const auto& [key, cur_value] : cur_row.object) {
      if (!base_row.Has(key)) {
        std::printf("warn %s.%s: new metric (not in baseline)\n",
                    where.c_str(), key.c_str());
      }
    }
  }
  return ok;
}

int RunDiff(const Options& opts) {
  std::vector<ReportFile> base_files;
  std::vector<ReportFile> cur_files;
  std::string error;
  if (!CollectReports(opts.baseline, &base_files, &error) ||
      !CollectReports(opts.current, &cur_files, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (base_files.empty()) {
    std::fprintf(stderr, "error: no BENCH_*.json under '%s'\n",
                 opts.baseline.c_str());
    return 2;
  }

  bool ok = true;
  std::size_t compared = 0;
  for (const ReportFile& base_file : base_files) {
    const auto it = std::find_if(cur_files.begin(), cur_files.end(),
                                 [&base_file](const ReportFile& f) {
                                   return f.name == base_file.name;
                                 });
    if (it == cur_files.end()) {
      std::printf("FAIL %s: missing from current tree\n",
                  base_file.name.c_str());
      ok = false;
      continue;
    }
    JsonValue base;
    JsonValue cur;
    if (!jsonmini::ParseFile(base_file.path, &base, &error) ||
        !jsonmini::ParseFile(it->path, &cur, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    if (!CompareReports(base_file.name, base, cur, opts)) ok = false;
    ++compared;
  }
  for (const ReportFile& cur_file : cur_files) {
    const auto it = std::find_if(base_files.begin(), base_files.end(),
                                 [&cur_file](const ReportFile& f) {
                                   return f.name == cur_file.name;
                                 });
    if (it == base_files.end()) {
      std::printf("warn %s: new report (not in baseline)\n",
                  cur_file.name.c_str());
    }
  }
  std::printf("%s: %zu report(s) compared, threshold %.0f%%%s\n",
              ok ? "OK" : "REGRESSION", compared, 100.0 * opts.threshold,
              opts.counts_only ? " (counts only)" : "");
  return ok ? 0 : 1;
}

int RunInject(double factor, const std::string& in, const std::string& out) {
  JsonValue root;
  std::string error;
  if (!jsonmini::ParseFile(in, &root, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  JsonValue* rows = root.GetMutable("rows");
  std::size_t touched = 0;
  if (rows != nullptr && rows->kind == JsonValue::Kind::kArray) {
    for (JsonValue& row : rows->array) {
      for (auto& [key, value] : row.object) {
        if (value.kind == JsonValue::Kind::kNumber &&
            Classify(key) == MetricClass::kTime) {
          value.number *= factor;
          ++touched;
        }
      }
    }
  }
  std::string text;
  jsonmini::Serialize(root, &text);
  text += '\n';
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n", out.c_str());
    return 2;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("injected x%.3g into %zu time metric(s): %s -> %s\n", factor,
              touched, in.c_str(), out.c_str());
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_diff --baseline PATH --current PATH\n"
               "                  [--threshold 0.25] [--counts-only]\n"
               "                  [--ignore KEY]...\n"
               "       bench_diff --inject FACTOR in.json out.json\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--inject") == 0) {
    if (argc != 5) return Usage();
    const double factor = std::atof(argv[2]);
    if (factor <= 0.0) {
      std::fprintf(stderr, "error: --inject FACTOR must be positive\n");
      return 2;
    }
    return RunInject(factor, argv[3], argv[4]);
  }

  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.baseline = v;
    } else if (arg == "--current") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.current = v;
    } else if (arg == "--threshold") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.threshold = std::atof(v);
      if (opts.threshold <= 0.0) {
        std::fprintf(stderr, "error: --threshold must be positive\n");
        return 2;
      }
    } else if (arg == "--counts-only") {
      opts.counts_only = true;
    } else if (arg == "--ignore") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.ignored.insert(v);
    } else {
      return Usage();
    }
  }
  if (opts.baseline.empty() || opts.current.empty()) return Usage();
  return RunDiff(opts);
}
