// Validates machine-written report files against their documented schemas:
//
//   bench_schema_check [--schema bench|explain|inspect|inspect_sharded|
//                                flight|varz|profile|healthz] report.json...
//
//   bench   — BENCH_<name>.json emitted by run_benches.sh (schema documented
//             in bench/bench_common.h, schema_version 1). `tsss_cli
//             serve-bench --json-out` emits the same shape.
//   explain — `tsss_cli explain --format json` plan reports (schema in
//             src/tsss/obs/explain.h). Sharded indexes render the merged
//             per-shard report through the same schema.
//   inspect — `tsss_cli inspect --format json` structural reports.
//   inspect_sharded — `tsss_cli inspect --format json` on a sharded index
//             (shard map summary + one row per shard).
//   flight  — /flightz flight-recorder dumps served by `tsss_cli serve`
//             (schema in src/tsss/obs/flight_recorder.h). Embedded explain
//             documents are validated with the full explain schema.
//   varz    — /varz JSON snapshots (ExportJson in src/tsss/obs/metrics.h).
//   profile — sampling-profiler reports (Profile::ToJson in
//             src/tsss/obs/profiler.h): `tsss_cli profile --json-out` and
//             /pprofz. Enforces the phase-partition identity (per-phase
//             sample counts sum to the total).
//   healthz — /healthz SLO verdicts (RenderHealthzJson in
//             src/tsss/obs/rolling.h).
//
// Exits non-zero naming the first offending file/field. JSON parsing lives in
// tools/json_mini.h (shared with bench_diff).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "json_mini.h"

namespace {

using jsonmini::JsonValue;

bool IsNumber(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::kNumber;
}
bool IsString(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::kString;
}
bool IsBool(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::kBool;
}

/// Checks that `parent.key` is an object and returns it (else sets *error).
const JsonValue* RequireObject(const JsonValue& parent, const char* key,
                               std::string* error) {
  const JsonValue* v = parent.Get(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kObject) {
    *error = std::string(key) + " must be an object";
    return nullptr;
  }
  return v;
}

const JsonValue* RequireArray(const JsonValue& parent, const char* key,
                              std::string* error) {
  const JsonValue* v = parent.Get(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kArray) {
    *error = std::string(key) + " must be an array";
    return nullptr;
  }
  return v;
}

bool RequireNumbers(const JsonValue& obj, const char* where,
                    const std::vector<const char*>& keys, std::string* error) {
  for (const char* key : keys) {
    if (!IsNumber(obj.Get(key))) {
      *error = std::string(where) + "." + key + " must be a number";
      return false;
    }
  }
  return true;
}

/// Common preamble: top level object with schema_version == 1. When
/// `report_name` is non-null the "report" field must equal it.
bool CheckHeader(const JsonValue& root, const char* report_name,
                 std::string* error) {
  if (root.kind != JsonValue::Kind::kObject) {
    *error = "top level is not an object";
    return false;
  }
  const JsonValue* version = root.Get("schema_version");
  if (!IsNumber(version) || version->number != 1.0) {
    *error = "schema_version must be the number 1";
    return false;
  }
  if (report_name != nullptr) {
    const JsonValue* report = root.Get("report");
    if (!IsString(report) || report->str != report_name) {
      *error = std::string("report must be the string \"") + report_name + '"';
      return false;
    }
  }
  return true;
}

bool CheckBench(const JsonValue& root, std::string* error) {
  if (!CheckHeader(root, nullptr, error)) return false;
  const JsonValue* name = root.Get("name");
  if (!IsString(name) || name->str.empty()) {
    *error = "name must be a non-empty string";
    return false;
  }
  const JsonValue* env = RequireObject(root, "env", error);
  if (env == nullptr) return false;
  if (!RequireNumbers(*env, "env", {"companies", "values", "queries", "full"},
                      error)) {
    return false;
  }
  if (RequireObject(root, "meta", error) == nullptr) return false;
  const JsonValue* rows = RequireArray(root, "rows", error);
  if (rows == nullptr) return false;
  if (rows->array.empty()) {
    *error = "rows is empty (benchmark produced no results)";
    return false;
  }
  for (std::size_t i = 0; i < rows->array.size(); ++i) {
    const JsonValue& row = rows->array[i];
    if (row.kind != JsonValue::Kind::kObject || row.object.empty()) {
      *error = "rows[" + std::to_string(i) + "] must be a non-empty object";
      return false;
    }
    for (const auto& [key, value] : row.object) {
      if (value.kind == JsonValue::Kind::kArray ||
          value.kind == JsonValue::Kind::kObject) {
        *error = "rows[" + std::to_string(i) + "]." + key +
                 " must be a scalar";
        return false;
      }
    }
  }
  return true;
}

bool CheckExplain(const JsonValue& root, std::string* error) {
  if (!CheckHeader(root, "explain", error)) return false;

  const JsonValue* query = RequireObject(root, "query", error);
  if (query == nullptr) return false;
  if (!IsString(query->Get("kind")) || !IsString(query->Get("prune"))) {
    *error = "query.kind and query.prune must be strings";
    return false;
  }
  if (!RequireNumbers(*query, "query", {"eps", "k", "elapsed_us"}, error)) {
    return false;
  }

  const JsonValue* totals = RequireObject(root, "totals", error);
  if (totals == nullptr) return false;
  if (!RequireNumbers(
          *totals, "totals",
          {"tree_height", "tree_nodes", "nodes_visited", "entries_tested",
           "ep_prunes", "bs_prunes", "exact_prunes", "descents",
           "accepted_leaf_entries", "mbr_distance_evals", "indexed_windows",
           "leaf_candidates", "candidates", "postfiltered", "matches"},
          error)) {
    return false;
  }
  // The prune waterfall must account for every tested entry (the report
  // invariant the oracle tests pin down; a report violating it is corrupt).
  const double accounted = totals->Get("ep_prunes")->number +
                           totals->Get("bs_prunes")->number +
                           totals->Get("exact_prunes")->number +
                           totals->Get("descents")->number +
                           totals->Get("accepted_leaf_entries")->number;
  if (totals->Get("entries_tested")->number != accounted) {
    *error = "totals: prune waterfall does not sum to entries_tested";
    return false;
  }

  const JsonValue* levels = RequireArray(root, "levels", error);
  if (levels == nullptr) return false;
  for (std::size_t i = 0; i < levels->array.size(); ++i) {
    const JsonValue& row = levels->array[i];
    const std::string where = "levels[" + std::to_string(i) + "]";
    if (row.kind != JsonValue::Kind::kObject ||
        !RequireNumbers(row, where.c_str(), {"level", "visited", "total"},
                        error)) {
      if (error->empty()) *error = where + " must be an object";
      return false;
    }
  }

  const JsonValue* io = RequireObject(root, "io", error);
  if (io == nullptr) return false;
  if (!RequireNumbers(*io, "io",
                      {"index_page_reads", "index_page_hits",
                       "index_page_misses", "data_page_reads"},
                      error)) {
    return false;
  }

  const JsonValue* baseline = RequireObject(root, "baseline", error);
  if (baseline == nullptr) return false;
  if (!RequireNumbers(*baseline, "baseline",
                      {"seq_scan_pages", "query_pages"}, error)) {
    return false;
  }

  const JsonValue* cost = RequireObject(root, "cost", error);
  if (cost == nullptr) return false;
  if (!RequireNumbers(*cost, "cost",
                      {"cpu_us", "pages_hit", "pages_miss", "data_pages",
                       "bytes_touched", "candidates_verified"},
                      error)) {
    return false;
  }

  const JsonValue* phases = RequireArray(root, "phases", error);
  if (phases == nullptr) return false;
  for (std::size_t i = 0; i < phases->array.size(); ++i) {
    const JsonValue& row = phases->array[i];
    const std::string where = "phases[" + std::to_string(i) + "]";
    if (row.kind != JsonValue::Kind::kObject || !IsString(row.Get("name")) ||
        !RequireNumbers(row, where.c_str(), {"depth", "dur_us"}, error)) {
      if (error->empty()) *error = where + " must have name/depth/dur_us";
      return false;
    }
  }
  return true;
}

bool CheckInspect(const JsonValue& root, std::string* error) {
  if (!CheckHeader(root, "inspect", error)) return false;

  const JsonValue* tree = RequireObject(root, "tree", error);
  if (tree == nullptr) return false;
  if (!RequireNumbers(*tree, "tree",
                      {"height", "nodes", "entries", "supernodes"}, error)) {
    return false;
  }
  if (!IsBool(tree->Get("depth_uniform"))) {
    *error = "tree.depth_uniform must be a boolean";
    return false;
  }
  const JsonValue* levels = RequireArray(*tree, "levels", error);
  if (levels == nullptr) {
    *error = "tree." + *error;
    return false;
  }
  for (std::size_t i = 0; i < levels->array.size(); ++i) {
    const JsonValue& row = levels->array[i];
    const std::string where = "tree.levels[" + std::to_string(i) + "]";
    if (row.kind != JsonValue::Kind::kObject ||
        !RequireNumbers(row, where.c_str(),
                        {"level", "nodes", "entries", "min_fanout",
                         "max_fanout", "avg_fanout", "avg_occupancy",
                         "overlap_volume", "dead_space_ratio", "margin_sum"},
                        error)) {
      if (error->empty()) *error = where + " must be an object";
      return false;
    }
    const JsonValue* histogram = row.Get("occupancy_histogram");
    if (histogram == nullptr ||
        histogram->kind != JsonValue::Kind::kArray ||
        histogram->array.size() != 10) {
      *error = where + ".occupancy_histogram must be a 10-element array";
      return false;
    }
  }

  const JsonValue* pool = RequireObject(root, "pool", error);
  if (pool == nullptr) return false;
  if (!RequireNumbers(*pool, "pool", {"capacity", "profiled_pages"}, error)) {
    return false;
  }
  const JsonValue* pool_levels = RequireArray(*pool, "levels", error);
  if (pool_levels == nullptr) {
    *error = "pool." + *error;
    return false;
  }
  for (std::size_t i = 0; i < pool_levels->array.size(); ++i) {
    const JsonValue& row = pool_levels->array[i];
    const std::string where = "pool.levels[" + std::to_string(i) + "]";
    if (row.kind != JsonValue::Kind::kObject ||
        !RequireNumbers(row, where.c_str(),
                        {"level", "pages", "accesses", "misses", "evictions"},
                        error)) {
      if (error->empty()) *error = where + " must be an object";
      return false;
    }
  }
  const JsonValue* unclassified = RequireObject(*pool, "unclassified", error);
  if (unclassified == nullptr) {
    *error = "pool." + *error;
    return false;
  }
  if (!RequireNumbers(*unclassified, "pool.unclassified",
                      {"pages", "accesses", "misses", "evictions"}, error)) {
    return false;
  }
  const JsonValue* top = RequireArray(*pool, "top_pages", error);
  if (top == nullptr) {
    *error = "pool." + *error;
    return false;
  }
  for (std::size_t i = 0; i < top->array.size(); ++i) {
    const JsonValue& row = top->array[i];
    const std::string where = "pool.top_pages[" + std::to_string(i) + "]";
    if (row.kind != JsonValue::Kind::kObject ||
        !RequireNumbers(row, where.c_str(),
                        {"page", "level", "accesses", "misses", "evictions"},
                        error)) {
      if (error->empty()) *error = where + " must be an object";
      return false;
    }
  }
  return true;
}

bool CheckInspectSharded(const JsonValue& root, std::string* error) {
  if (!CheckHeader(root, "inspect_sharded", error)) return false;

  const JsonValue* map = RequireObject(root, "shard_map", error);
  if (map == nullptr) return false;
  if (!RequireNumbers(*map, "shard_map",
                      {"shards", "series", "indexed_windows"}, error)) {
    return false;
  }
  if (!IsString(map->Get("scheme"))) {
    *error = "shard_map.scheme must be a string";
    return false;
  }

  const JsonValue* shards = RequireArray(root, "shards", error);
  if (shards == nullptr) return false;
  if (static_cast<double>(shards->array.size()) !=
      map->Get("shards")->number) {
    *error = "shards must hold exactly shard_map.shards rows";
    return false;
  }
  for (std::size_t i = 0; i < shards->array.size(); ++i) {
    const JsonValue& row = shards->array[i];
    const std::string where = "shards[" + std::to_string(i) + "]";
    if (row.kind != JsonValue::Kind::kObject ||
        !RequireNumbers(row, where.c_str(),
                        {"shard", "series", "indexed_windows", "tree_height",
                         "pool_hit_ratio"},
                        error)) {
      if (error->empty()) *error = where + " must be an object";
      return false;
    }
  }
  return true;
}

bool CheckFlight(const JsonValue& root, std::string* error) {
  if (!CheckHeader(root, "flight", error)) return false;
  if (!RequireNumbers(
          root, "flight",
          {"armed", "threshold_us", "capacity", "captured", "dropped"},
          error)) {
    return false;
  }
  const JsonValue* records = RequireArray(root, "records", error);
  if (records == nullptr) return false;
  for (std::size_t i = 0; i < records->array.size(); ++i) {
    const JsonValue& row = records->array[i];
    const std::string where = "records[" + std::to_string(i) + "]";
    if (row.kind != JsonValue::Kind::kObject) {
      *error = where + " must be an object";
      return false;
    }
    if (!IsString(row.Get("kind")) || !IsString(row.Get("outcome"))) {
      *error = where + ".kind and .outcome must be strings";
      return false;
    }
    if (!RequireNumbers(row, where.c_str(), {"id", "latency_us"}, error)) {
      return false;
    }
    const JsonValue* cost = RequireObject(row, "cost", error);
    if (cost == nullptr) {
      *error = where + "." + *error;
      return false;
    }
    if (!RequireNumbers(*cost, (where + ".cost").c_str(),
                        {"cpu_us", "pages_hit", "pages_miss", "data_pages",
                         "bytes_touched", "candidates_verified"},
                        error)) {
      return false;
    }
    // The embedded explain/trace documents are null when capture assembly
    // could not produce them; anything else must be a well-formed document
    // (the explain one down to the prune-waterfall identity).
    const JsonValue* explain = row.Get("explain");
    if (explain == nullptr) {
      *error = where + ".explain is missing";
      return false;
    }
    if (explain->kind != JsonValue::Kind::kNull) {
      if (!CheckExplain(*explain, error)) {
        *error = where + ".explain: " + *error;
        return false;
      }
    }
    const JsonValue* trace = row.Get("trace");
    if (trace == nullptr ||
        (trace->kind != JsonValue::Kind::kNull &&
         trace->kind != JsonValue::Kind::kObject)) {
      *error = where + ".trace must be null or an object";
      return false;
    }
    if (trace->kind == JsonValue::Kind::kObject &&
        trace->Get("traceEvents") == nullptr) {
      *error = where + ".trace must carry traceEvents";
      return false;
    }
  }
  return true;
}

bool CheckProfile(const JsonValue& root, std::string* error) {
  if (!CheckHeader(root, "profile", error)) return false;
  if (!RequireNumbers(root, "profile", {"hz", "seconds", "samples", "dropped"},
                      error)) {
    return false;
  }
  const JsonValue* phases = RequireArray(root, "phases", error);
  if (phases == nullptr) return false;
  double phase_total = 0.0;
  for (std::size_t i = 0; i < phases->array.size(); ++i) {
    const JsonValue& row = phases->array[i];
    const std::string where = "phases[" + std::to_string(i) + "]";
    if (row.kind != JsonValue::Kind::kObject || !IsString(row.Get("name")) ||
        !RequireNumbers(row, where.c_str(), {"samples"}, error)) {
      if (error->empty()) *error = where + " must have name/samples";
      return false;
    }
    phase_total += row.Get("samples")->number;
  }
  // Phase attribution is a partition: every sample lands in exactly one
  // phase (or "(untagged)"), so the per-phase counts sum to the total. A
  // report violating that lost or double-counted samples.
  if (phase_total != root.Get("samples")->number) {
    *error = "phase sample counts do not sum to samples";
    return false;
  }
  const JsonValue* folded = RequireArray(root, "folded", error);
  if (folded == nullptr) return false;
  for (std::size_t i = 0; i < folded->array.size(); ++i) {
    const JsonValue& row = folded->array[i];
    const std::string where = "folded[" + std::to_string(i) + "]";
    if (row.kind != JsonValue::Kind::kObject || !IsString(row.Get("stack")) ||
        !RequireNumbers(row, where.c_str(), {"samples"}, error)) {
      if (error->empty()) *error = where + " must have stack/samples";
      return false;
    }
  }
  return true;
}

bool CheckHealthz(const JsonValue& root, std::string* error) {
  if (!CheckHeader(root, "healthz", error)) return false;
  for (const char* key : {"healthy", "latency_ok", "availability_ok"}) {
    if (!IsBool(root.Get(key))) {
      *error = std::string(key) + " must be a boolean";
      return false;
    }
  }
  if (!RequireNumbers(root, "healthz",
                      {"target_p99_ms", "target_availability",
                       "fast_burn_rate", "slow_burn_rate"},
                      error)) {
    return false;
  }
  for (const char* key : {"fast", "slow"}) {
    const JsonValue* window = RequireObject(root, key, error);
    if (window == nullptr) return false;
    if (!RequireNumbers(*window, key,
                        {"window_s", "count", "errors", "deadline_exceeded",
                         "p50_ms", "p99_ms", "availability"},
                        error)) {
      return false;
    }
  }
  return true;
}

bool CheckVarz(const JsonValue& root, std::string* error) {
  // /varz has no schema_version header: it is the raw registry snapshot
  // with exactly three sections of scalar (or histogram-summary) values.
  if (root.kind != JsonValue::Kind::kObject) {
    *error = "top level is not an object";
    return false;
  }
  for (const char* section : {"counters", "gauges"}) {
    const JsonValue* obj = RequireObject(root, section, error);
    if (obj == nullptr) return false;
    for (const auto& [key, value] : obj->object) {
      if (!IsNumber(&value)) {
        *error = std::string(section) + "." + key + " must be a number";
        return false;
      }
    }
  }
  const JsonValue* histograms = RequireObject(root, "histograms", error);
  if (histograms == nullptr) return false;
  for (const auto& [key, value] : histograms->object) {
    const std::string where = "histograms." + key;
    if (value.kind != JsonValue::Kind::kObject ||
        !RequireNumbers(value, where.c_str(),
                        {"count", "sum_us", "p50_ms", "p90_ms", "p99_ms"},
                        error)) {
      if (error->empty()) *error = where + " must be an object";
      return false;
    }
  }
  return true;
}

bool CheckFile(const char* path, const std::string& schema,
               std::string* error) {
  JsonValue root;
  if (!jsonmini::ParseFile(path, &root, error)) return false;
  if (schema == "bench") return CheckBench(root, error);
  if (schema == "explain") return CheckExplain(root, error);
  if (schema == "inspect") return CheckInspect(root, error);
  if (schema == "inspect_sharded") return CheckInspectSharded(root, error);
  if (schema == "flight") return CheckFlight(root, error);
  if (schema == "varz") return CheckVarz(root, error);
  if (schema == "profile") return CheckProfile(root, error);
  if (schema == "healthz") return CheckHealthz(root, error);
  *error = "unknown schema '" + schema + "'";
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string schema = "bench";
  int first = 1;
  if (argc >= 3 && std::strcmp(argv[1], "--schema") == 0) {
    schema = argv[2];
    first = 3;
  }
  if (first >= argc) {
    std::fprintf(stderr,
                 "usage: %s [--schema bench|explain|inspect|inspect_sharded|"
                 "flight|varz|profile|healthz] report.json...\n",
                 argv[0]);
    return 2;
  }
  if (schema != "bench" && schema != "explain" && schema != "inspect" &&
      schema != "inspect_sharded" && schema != "flight" && schema != "varz" &&
      schema != "profile" && schema != "healthz") {
    std::fprintf(stderr, "unknown --schema '%s'\n", schema.c_str());
    return 2;
  }
  int failed = 0;
  for (int i = first; i < argc; ++i) {
    std::string error;
    if (CheckFile(argv[i], schema, &error)) {
      std::printf("%s: OK (%s)\n", argv[i], schema.c_str());
    } else {
      std::fprintf(stderr, "%s: INVALID: %s\n", argv[i], error.c_str());
      failed = 1;
    }
  }
  return failed;
}
