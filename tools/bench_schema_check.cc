// Validates BENCH_<name>.json reports against the schema documented in
// bench/bench_common.h (schema_version 1). Used by CI after run_benches.sh:
//
//   bench_schema_check BENCH_a.json BENCH_b.json ...
//
// Exits non-zero naming the first offending file/field. Self-contained
// recursive-descent JSON parser: the reports are machine-written, small, and
// flat, so a minimal strict parser beats a library dependency.

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  double number = 0.0;
  bool boolean = false;
  std::string str;
  std::vector<JsonValue> array;
  // Insertion-ordered map would be nicer; lookup order is irrelevant here.
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const { return object.count(key) != 0; }
  const JsonValue* Get(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    if (!ParseValue(out, error)) return false;
    SkipWs();
    if (pos_ != text_.size()) {
      *error = "trailing garbage at byte " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(std::string* error, const std::string& what) {
    *error = what + " at byte " + std::to_string(pos_);
    return false;
  }

  bool Consume(char c, std::string* error) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(error, std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out, std::string* error) {
    if (!Consume('"', error)) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail(error, "dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          default:
            // \uXXXX never appears in our reports; reject rather than mangle.
            return Fail(error, "unsupported escape");
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return Fail(error, "unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out, std::string* error) {
    SkipWs();
    if (pos_ >= text_.size()) return Fail(error, "unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, error);
    if (c == '[') return ParseArray(out, error);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str, error);
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    // Number.
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return Fail(error, "unexpected character");
    try {
      out->number = std::stod(text_.substr(pos_, end - pos_));
    } catch (...) {
      return Fail(error, "malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    pos_ = end;
    return true;
  }

  bool ParseObject(JsonValue* out, std::string* error) {
    if (!Consume('{', error)) return false;
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      std::string key;
      SkipWs();
      if (!ParseString(&key, error)) return false;
      if (!Consume(':', error)) return false;
      JsonValue value;
      if (!ParseValue(&value, error)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume('}', error);
    }
  }

  bool ParseArray(JsonValue* out, std::string* error) {
    if (!Consume('[', error)) return false;
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value, error)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume(']', error);
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool CheckFile(const char* path, std::string* error) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    *error = "cannot open";
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
  std::fclose(f);

  JsonValue root;
  if (!Parser(text).Parse(&root, error)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    *error = "top level is not an object";
    return false;
  }

  const JsonValue* version = root.Get("schema_version");
  if (version == nullptr || version->kind != JsonValue::Kind::kNumber ||
      version->number != 1.0) {
    *error = "schema_version must be the number 1";
    return false;
  }
  const JsonValue* name = root.Get("name");
  if (name == nullptr || name->kind != JsonValue::Kind::kString ||
      name->str.empty()) {
    *error = "name must be a non-empty string";
    return false;
  }
  const JsonValue* env = root.Get("env");
  if (env == nullptr || env->kind != JsonValue::Kind::kObject) {
    *error = "env must be an object";
    return false;
  }
  for (const char* key : {"companies", "values", "queries", "full"}) {
    const JsonValue* v = env->Get(key);
    if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
      *error = std::string("env.") + key + " must be a number";
      return false;
    }
  }
  const JsonValue* meta = root.Get("meta");
  if (meta == nullptr || meta->kind != JsonValue::Kind::kObject) {
    *error = "meta must be an object";
    return false;
  }
  const JsonValue* rows = root.Get("rows");
  if (rows == nullptr || rows->kind != JsonValue::Kind::kArray) {
    *error = "rows must be an array";
    return false;
  }
  if (rows->array.empty()) {
    *error = "rows is empty (benchmark produced no results)";
    return false;
  }
  for (std::size_t i = 0; i < rows->array.size(); ++i) {
    const JsonValue& row = rows->array[i];
    if (row.kind != JsonValue::Kind::kObject || row.object.empty()) {
      *error = "rows[" + std::to_string(i) + "] must be a non-empty object";
      return false;
    }
    for (const auto& [key, value] : row.object) {
      if (value.kind == JsonValue::Kind::kArray ||
          value.kind == JsonValue::Kind::kObject) {
        *error = "rows[" + std::to_string(i) + "]." + key +
                 " must be a scalar";
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s BENCH_<name>.json...\n", argv[0]);
    return 2;
  }
  int failed = 0;
  for (int i = 1; i < argc; ++i) {
    std::string error;
    if (CheckFile(argv[i], &error)) {
      std::printf("%s: OK\n", argv[i]);
    } else {
      std::fprintf(stderr, "%s: INVALID: %s\n", argv[i], error.c_str());
      failed = 1;
    }
  }
  return failed;
}
