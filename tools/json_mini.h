#ifndef TSSS_TOOLS_JSON_MINI_H_
#define TSSS_TOOLS_JSON_MINI_H_

// Minimal strict JSON parser shared by the report tooling (bench_schema_check,
// bench_diff). The reports it reads are machine-written, small and flat, so a
// self-contained recursive-descent parser beats a library dependency.
//
// Limitations (deliberate): no \uXXXX escapes (our writers never emit them;
// rejected rather than mangled) and numbers are parsed as double.

#include <cctype>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace jsonmini {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  double number = 0.0;
  bool boolean = false;
  std::string str;
  std::vector<JsonValue> array;
  // Insertion-ordered map would be nicer; lookup order is irrelevant here.
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const { return object.count(key) != 0; }
  const JsonValue* Get(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  JsonValue* GetMutable(const std::string& key) {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    if (!ParseValue(out, error)) return false;
    SkipWs();
    if (pos_ != text_.size()) {
      *error = "trailing garbage at byte " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(std::string* error, const std::string& what) {
    *error = what + " at byte " + std::to_string(pos_);
    return false;
  }

  bool Consume(char c, std::string* error) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(error, std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out, std::string* error) {
    if (!Consume('"', error)) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail(error, "dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          default:
            // \uXXXX never appears in our reports; reject rather than mangle.
            return Fail(error, "unsupported escape");
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return Fail(error, "unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out, std::string* error) {
    SkipWs();
    if (pos_ >= text_.size()) return Fail(error, "unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, error);
    if (c == '[') return ParseArray(out, error);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str, error);
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    // Number.
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return Fail(error, "unexpected character");
    try {
      out->number = std::stod(text_.substr(pos_, end - pos_));
    } catch (...) {
      return Fail(error, "malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    pos_ = end;
    return true;
  }

  bool ParseObject(JsonValue* out, std::string* error) {
    if (!Consume('{', error)) return false;
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      std::string key;
      SkipWs();
      if (!ParseString(&key, error)) return false;
      if (!Consume(':', error)) return false;
      JsonValue value;
      if (!ParseValue(&value, error)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume('}', error);
    }
  }

  bool ParseArray(JsonValue* out, std::string* error) {
    if (!Consume('[', error)) return false;
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value, error)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume(']', error);
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Reads a whole file; false (with `error`) when it cannot be opened.
inline bool ReadFile(const std::string& path, std::string* out,
                     std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  out->clear();
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, got);
  std::fclose(f);
  return true;
}

/// Parses `path` into `out`; false (with `error` naming the file) on failure.
inline bool ParseFile(const std::string& path, JsonValue* out,
                      std::string* error) {
  std::string text;
  if (!ReadFile(path, &text, error)) return false;
  if (!Parser(text).Parse(out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

/// Re-serializes a JsonValue (used by bench_diff --inject). Object keys come
/// out in std::map order, which downstream consumers do not depend on.
inline void Serialize(const JsonValue& v, std::string* out) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      *out += "null";
      return;
    case JsonValue::Kind::kBool:
      *out += v.boolean ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v.number);
      *out += buf;
      return;
    }
    case JsonValue::Kind::kString: {
      *out += '"';
      for (char c : v.str) {
        if (c == '"' || c == '\\') *out += '\\';
        *out += c;
      }
      *out += '"';
      return;
    }
    case JsonValue::Kind::kArray: {
      *out += '[';
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i > 0) *out += ',';
        Serialize(v.array[i], out);
      }
      *out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, value] : v.object) {
        if (!first) *out += ',';
        first = false;
        *out += '"' + key + "\":";
        Serialize(value, out);
      }
      *out += '}';
      return;
    }
  }
}

}  // namespace jsonmini

#endif  // TSSS_TOOLS_JSON_MINI_H_
