#!/usr/bin/env python3
"""Runs the Clang Static Analyzer over every src/ translation unit.

Reads the compile command for each src/**/*.cc file from a CMake-generated
compile_commands.json, re-invokes it as `clang++ --analyze` with text
diagnostics, and collects every analyzer warning. Findings are matched
against a committed suppression list; anything not suppressed fails the
run, so the suppression file is the single reviewable record of accepted
analyzer noise.

Suppression file format (tools/analyzer/suppressions.txt):
  - blank lines and lines starting with '#' are ignored
  - every other line is `<path-suffix>: <message substring>`; a finding is
    suppressed when its repo-relative path ends with the suffix AND the
    substring occurs in the warning message
Unused suppressions are reported (stale entries should be deleted) but do
not fail the run.

Exit codes: 0 clean, 1 unsuppressed findings, 2 environment/usage error.
"""

import argparse
import json
import os
import re
import shlex
import shutil
import subprocess
import sys

WARNING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+):(?P<col>\d+): warning: (?P<msg>.*)$")

# Driver args that must not be forwarded to the analyzer invocation: the
# original output/object arguments, and dependency-file generation.
STRIP_WITH_VALUE = {"-o", "-MF", "-MT", "-MQ"}
STRIP_BARE = {"-c", "-MD", "-MMD"}


def analyze_command(entry, clang):
    """Rewrites one compile_commands entry into an analyzer invocation."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry["command"])
    out = [clang, "--analyze", "-Xclang", "-analyzer-output=text"]
    it = iter(argv[1:])  # drop the original compiler
    for arg in it:
        if arg in STRIP_WITH_VALUE:
            next(it, None)
            continue
        if arg in STRIP_BARE:
            continue
        out.append(arg)
    return out


def load_suppressions(path):
    rules = []
    try:
        with open(path, encoding="utf-8") as f:
            for lineno, raw in enumerate(f, 1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                if ": " not in line:
                    print(f"{path}:{lineno}: malformed suppression (want "
                          f"'<path-suffix>: <message substring>')", file=sys.stderr)
                    sys.exit(2)
                suffix, _, substring = line.partition(": ")
                rules.append({"suffix": suffix, "substring": substring,
                              "line": lineno, "used": False})
    except OSError as e:
        print(f"cannot read suppression list: {e}", file=sys.stderr)
        sys.exit(2)
    return rules


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compile-commands", required=True,
                        help="path to compile_commands.json")
    parser.add_argument("--suppressions", required=True,
                        help="path to the committed suppression list")
    parser.add_argument("--source-prefix", default="src/",
                        help="only analyze files under this repo-relative "
                             "prefix (default: src/)")
    args = parser.parse_args()

    clang = os.environ.get("ANALYZER_CXX") or shutil.which("clang++")
    if not clang:
        print("clang++ not found (set ANALYZER_CXX to override)", file=sys.stderr)
        return 2

    try:
        with open(args.compile_commands, encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, ValueError) as e:
        print(f"cannot read compile commands: {e}", file=sys.stderr)
        return 2

    repo_root = os.getcwd()
    rules = load_suppressions(args.suppressions)

    units = []
    for entry in entries:
        path = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
        rel = os.path.relpath(path, repo_root)
        if rel.startswith(args.source_prefix) and rel.endswith(".cc"):
            units.append((rel, entry))
    if not units:
        print(f"no translation units under {args.source_prefix} in "
              f"{args.compile_commands}", file=sys.stderr)
        return 2

    findings = []
    for rel, entry in sorted(units):
        cmd = analyze_command(entry, clang)
        proc = subprocess.run(cmd, cwd=entry["directory"],
                              capture_output=True, text=True)
        for line in proc.stderr.splitlines():
            m = WARNING_RE.match(line)
            if not m:
                continue
            warn_rel = os.path.relpath(
                os.path.normpath(os.path.join(entry["directory"], m["path"])),
                repo_root)
            # Only gate on warnings inside the analyzed tree; headers pulled
            # in from the system or third parties are out of jurisdiction.
            if not warn_rel.startswith(args.source_prefix):
                continue
            findings.append({"file": warn_rel, "line": int(m["line"]),
                             "msg": m["msg"]})
        if proc.returncode not in (0, 1):
            print(f"analyzer invocation failed on {rel} "
                  f"(exit {proc.returncode}):", file=sys.stderr)
            sys.stderr.write(proc.stderr)
            return 2

    unsuppressed = []
    for f in findings:
        hit = False
        for rule in rules:
            if f["file"].endswith(rule["suffix"]) and rule["substring"] in f["msg"]:
                rule["used"] = True
                hit = True
                break
        if not hit:
            unsuppressed.append(f)

    for rule in rules:
        if not rule["used"]:
            print(f"note: unused suppression at {args.suppressions}:"
                  f"{rule['line']} ({rule['suffix']}: {rule['substring']})")

    print(f"clang-analyzer: {len(units)} translation unit(s), "
          f"{len(findings)} finding(s), {len(unsuppressed)} unsuppressed")
    if unsuppressed:
        for f in unsuppressed:
            print(f"{f['file']}:{f['line']}: {f['msg']}")
        print("add a justified entry to the suppression list or fix the code",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
