#!/bin/sh
# Runs every benchmark binary, prints the combined human-readable report, and
# collects one machine-readable BENCH_<name>.json per benchmark (schema_version
# 1, see bench/bench_common.h) into the repo root.
#
# Usage: ./run_benches.sh [--smoke] [build-dir]
#
#   --smoke     tiny dataset (CI): a few companies, seconds per benchmark,
#               exercising every binary and every JSON report end to end.
#   build-dir   where the bench binaries live (default: build, then
#               build/release as fallback).
#
# Any benchmark crash or non-zero exit fails the whole run loudly; a silent
# half-missing report is worse than no report.

set -eu

SMOKE=0
if [ "${1:-}" = "--smoke" ]; then
  SMOKE=1
  shift
fi

BUILD_DIR="${1:-build}"
if [ ! -d "$BUILD_DIR/bench" ] && [ -d "build/release/bench" ]; then
  BUILD_DIR="build/release"
fi
if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: no bench binaries under '$BUILD_DIR/bench' (build first)" >&2
  exit 1
fi

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)

if [ "$SMOKE" = 1 ]; then
  # Small enough that every binary finishes in seconds while still producing
  # non-degenerate tables (a few hundred indexed windows).
  TSSS_COMPANIES="${TSSS_COMPANIES:-12}"
  TSSS_VALUES="${TSSS_VALUES:-200}"
  TSSS_QUERIES="${TSSS_QUERIES:-4}"
  TSSS_SERVICE_SECONDS="${TSSS_SERVICE_SECONDS:-1}"
  export TSSS_COMPANIES TSSS_VALUES TSSS_QUERIES TSSS_SERVICE_SECONDS
  SMOKE_ARGS="--benchmark_min_time=0.01"
  echo "# smoke mode: TSSS_COMPANIES=$TSSS_COMPANIES TSSS_VALUES=$TSSS_VALUES" \
       "TSSS_QUERIES=$TSSS_QUERIES"
fi

# Clear stale reports first: a BENCH_*.json left by a since-removed benchmark
# would otherwise survive every run and poison bench_diff comparisons.
for json in "$REPO_ROOT"/BENCH_*.json; do
  [ -e "$json" ] || continue
  name=$(basename "$json" .json | sed 's/^BENCH_//')
  if [ ! -x "$BUILD_DIR/bench/bench_${name}" ]; then
    echo "# removing orphaned report $json (no bench_${name} binary)"
  fi
  rm -f "$json"
done

FAILED=0
RAN=0
for b in "$BUILD_DIR"/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name=$(basename "$b" | sed 's/^bench_//')
  json="$REPO_ROOT/BENCH_${name}.json"
  echo "##### $b"
  EXTRA_ARGS=""
  if [ "$SMOKE" = 1 ] && [ "$name" = "geom_micro" ]; then
    EXTRA_ARGS="$SMOKE_ARGS"
  fi
  # shellcheck disable=SC2086
  if ! "$b" --json-out "$json" $EXTRA_ARGS; then
    echo "FAILED: $b exited non-zero" >&2
    FAILED=1
  elif [ ! -s "$json" ]; then
    echo "FAILED: $b did not write $json" >&2
    FAILED=1
  fi
  RAN=$((RAN + 1))
  echo
done

if [ "$RAN" = 0 ]; then
  echo "error: no benchmark binaries found under $BUILD_DIR/bench" >&2
  exit 1
fi
if [ "$FAILED" != 0 ]; then
  echo "one or more benchmarks failed" >&2
  exit 1
fi

echo "# $RAN benchmarks OK; reports:"
ls -1 "$REPO_ROOT"/BENCH_*.json
