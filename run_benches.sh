#!/bin/sh
# Runs every benchmark binary and prints a combined report.
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "##### $b"
    "$b"
    echo
  fi
done
