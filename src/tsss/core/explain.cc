#include "tsss/core/engine.h"

namespace tsss::core {

namespace {

const char* PruneName(geom::PruneStrategy strategy) {
  switch (strategy) {
    case geom::PruneStrategy::kEepOnly:
      return "eep";
    case geom::PruneStrategy::kBoundingSpheres:
      return "spheres";
    case geom::PruneStrategy::kExactDistance:
      return "exact";
  }
  return "unknown";
}

}  // namespace

Result<obs::ExplainReport> SearchEngine::ExplainFromStats(
    const std::string& kind, double eps, std::uint64_t k,
    std::uint64_t elapsed_us, const QueryStats& stats) const {
  Result<index::StructuralStats> shape = tree_->ComputeStructuralStats();
  if (!shape.ok()) return shape.status();

  obs::ExplainReport r;
  r.kind = kind;
  r.eps = eps;
  r.k = k;
  r.prune_strategy = PruneName(config_.prune);
  r.elapsed_us = elapsed_us;

  const obs::QueryTelemetry& t = stats.telemetry;
  r.tree_height = shape->height;
  r.tree_nodes = shape->node_count;
  r.nodes_visited = t.nodes_visited;
  r.levels.resize(shape->height);
  for (std::size_t l = 0; l < shape->height; ++l) {
    r.levels[l].level = l;
    r.levels[l].visited =
        l < obs::QueryTelemetry::kMaxLevels ? t.nodes_per_level[l] : 0;
    r.levels[l].total = shape->levels[l].nodes;
  }

  r.entries_tested = t.entries_tested;
  r.ep_prunes = t.ep_prunes;
  r.bs_prunes = t.bs_prunes;
  r.exact_prunes = t.exact_prunes;
  // A penetration "visit" is an accepted entry. In box-leaf mode leaf
  // entries run the same penetration test as internal ones, so the accepted
  // pool splits into descents (internal) and index survivors (leaf). In
  // point mode leaf points are screened by PLD instead and never enter the
  // tested universe, so every accept is a descent. (k-NN takes the
  // best-first path, which collects no PenetrationStats; its waterfall is
  // all zeros and the identity holds trivially.)
  const std::uint64_t accepted = stats.penetration.visits;
  if (tree_->config().box_leaves) {
    r.accepted_leaf_entries =
        t.leaf_candidates <= accepted ? t.leaf_candidates : accepted;
    r.descents = accepted - r.accepted_leaf_entries;
  } else {
    r.descents = accepted;
  }
  r.mbr_distance_evals = t.mbr_distance_evals;

  r.indexed_windows = indexed_windows_;
  r.leaf_candidates = t.leaf_candidates;
  r.candidates = stats.candidates;
  r.postfiltered = t.candidates_postfiltered;
  r.matches = stats.matches;

  r.index_page_reads = stats.index_page_reads;
  r.index_page_misses = stats.index_page_misses;
  r.index_page_hits = stats.index_page_reads >= stats.index_page_misses
                          ? stats.index_page_reads - stats.index_page_misses
                          : 0;
  r.data_page_reads = stats.data_page_reads;

  r.seq_scan_pages = dataset_.store().TotalPages();
  r.cost = stats.cost;
  return r;
}

Result<obs::ExplainReport> SearchEngine::ExplainLast() const {
  std::optional<LastQuery> last;
  {
    MutexLock lock(last_query_mu_);
    last = last_query_;
  }
  if (!last.has_value()) {
    return Status::NotFound(
        "no telemetry-enabled query has run on this engine yet (pass a "
        "QueryStats or install a trace, then query again)");
  }

  Result<obs::ExplainReport> report =
      ExplainFromStats(last->kind, last->eps, last->k, last->elapsed_us,
                       last->stats);
  if (report.ok()) {
    // The snapshot remembers the strategy the query actually ran with, which
    // can differ from the engine's *current* one after set_prune_strategy.
    report->prune_strategy = PruneName(last->prune);
  }
  return report;
}

}  // namespace tsss::core
