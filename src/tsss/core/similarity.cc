#include "tsss/core/similarity.h"

#include <cmath>

#include "tsss/common/check.h"
#include "tsss/common/math_utils.h"
#include "tsss/geom/se_transform.h"
#include "tsss/seq/window.h"

namespace tsss::core {

QueryContext::QueryContext(std::span<const double> query)
    : query_(query.begin(), query.end()) {
  TSSS_DCHECK(!query.empty());
  use_ = query_;
  q_mean_ = geom::SeTransformInPlace(use_);
  uu_ = geom::NormSquared(use_);
}

geom::Alignment QueryContext::Align(std::span<const double> window) const {
  TSSS_DCHECK(window.size() == use_.size());
  // TSSS_HOT_BEGIN(exact_verify) — the exact scale-shift verification over a
  // raw window; runs once per candidate that survives index pruning.
  const double n = static_cast<double>(window.size());
  double sum_v = 0.0;
  double corr = 0.0;  // <use, v>
  for (std::size_t i = 0; i < window.size(); ++i) {
    sum_v += window[i];
    corr += use_[i] * window[i];
  }
  const double v_mean = sum_v / n;
  const double a = uu_ > 0.0 ? corr / uu_ : 0.0;

  // Residual pass: d^2 = || (v - mean(v)) - a*use ||^2. Accumulating the
  // residuals directly (instead of the algebraically equal
  // ||vse||^2 - a^2*||use||^2) avoids catastrophic cancellation when the
  // window is an exact scale-shift image of the query.
  double acc = 0.0;
  for (std::size_t i = 0; i < window.size(); ++i) {
    const double r = (window[i] - v_mean) - a * use_[i];
    acc += r * r;
  }

  geom::Alignment out;
  out.transform.scale = a;
  out.transform.offset = uu_ > 0.0 ? v_mean - a * q_mean_ : v_mean;
  out.distance = std::sqrt(acc);
  return out;
  // TSSS_HOT_END(exact_verify)
}

std::optional<Match> VerifyCandidate(const QueryContext& ctx,
                                     std::span<const double> window,
                                     index::RecordId record, double eps,
                                     const TransformCost& cost) {
  const geom::Alignment alignment = ctx.Align(window);
  if (alignment.distance > eps) return std::nullopt;
  if (!cost.Allows(alignment.transform)) return std::nullopt;
  Match match;
  match.record = record;
  match.series = seq::SeriesOf(record);
  match.offset = seq::OffsetOf(record);
  match.distance = alignment.distance;
  match.transform = alignment.transform;
  return match;
}

}  // namespace tsss::core
