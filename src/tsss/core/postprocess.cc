#include "tsss/core/postprocess.h"

#include <algorithm>

namespace tsss::core {
namespace {

void SortByRecord(std::vector<Match>& matches) {
  std::sort(matches.begin(), matches.end(),
            [](const Match& a, const Match& b) { return a.record < b.record; });
}

void SortByDistance(std::vector<Match>& matches) {
  std::sort(matches.begin(), matches.end(), [](const Match& a, const Match& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.record < b.record;
  });
}

}  // namespace

std::vector<Match> SuppressOverlaps(std::vector<Match> matches,
                                    std::uint32_t min_separation) {
  SortByRecord(matches);
  if (min_separation == 0 || matches.size() < 2) return matches;

  std::vector<Match> out;
  out.reserve(matches.size());
  // Walk runs: consecutive matches of the same series whose offsets are
  // within min_separation of the *previous* member chain into one run.
  std::size_t run_begin = 0;
  auto flush_run = [&](std::size_t end) {
    // Keep the best-distance member of [run_begin, end).
    std::size_t best = run_begin;
    for (std::size_t i = run_begin + 1; i < end; ++i) {
      if (matches[i].distance < matches[best].distance) best = i;
    }
    out.push_back(matches[best]);
    run_begin = end;
  };
  for (std::size_t i = 1; i < matches.size(); ++i) {
    const bool same_series = matches[i].series == matches[i - 1].series;
    const bool adjacent =
        same_series &&
        matches[i].offset - matches[i - 1].offset < min_separation;
    if (!adjacent) flush_run(i);
  }
  flush_run(matches.size());
  return out;
}

std::vector<Match> BestPerSeries(std::vector<Match> matches) {
  SortByRecord(matches);
  std::vector<Match> out;
  for (const Match& m : matches) {
    if (!out.empty() && out.back().series == m.series) {
      if (m.distance < out.back().distance) out.back() = m;
    } else {
      out.push_back(m);
    }
  }
  SortByDistance(out);
  return out;
}

std::vector<Match> TopK(std::vector<Match> matches, std::size_t k) {
  SortByDistance(matches);
  if (matches.size() > k) matches.resize(k);
  return matches;
}

}  // namespace tsss::core
