#include "tsss/core/engine.h"

#include <filesystem>

#include <algorithm>
#include <chrono>
#include <optional>
#include <queue>
#include <string>
#include <utility>

#include "tsss/common/check.h"
#include "tsss/common/exec_control.h"
#include "tsss/geom/se_transform.h"
#include "tsss/obs/metrics.h"
#include "tsss/obs/trace.h"
#include "tsss/seq/window.h"
#include "tsss/storage/query_counters.h"

namespace tsss::core {

namespace {

/// Process-wide query counters in the metrics registry. Resolved once.
struct QueryRegistryCounters {
  obs::Counter* range_queries;
  obs::Counter* knn_queries;
  obs::Counter* long_queries;
  obs::Counter* candidates;
  obs::Counter* matches;
};

const QueryRegistryCounters& QueryCountersRegistry() {
  static const QueryRegistryCounters counters = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    return QueryRegistryCounters{
        reg.GetCounter("tsss_range_queries_total", "Range queries executed"),
        reg.GetCounter("tsss_knn_queries_total", "k-NN queries executed"),
        reg.GetCounter("tsss_long_queries_total",
                       "Long (multi-piece) range queries executed"),
        reg.GetCounter("tsss_query_candidates_total",
                       "Windows that reached exact verification"),
        reg.GetCounter("tsss_query_matches_total", "Verified query answers"),
    };
  }();
  return counters;
}

/// Microseconds elapsed since `start` on the monotonic clock.
std::uint64_t ElapsedUs(std::chrono::steady_clock::time_point start) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  return static_cast<std::uint64_t>(us.count());
}

}  // namespace

void FillPruneTelemetry(const geom::PenetrationStats& pen,
                        obs::QueryTelemetry* telemetry) {
  telemetry->entries_tested = pen.tests;
  const std::uint64_t prunes = pen.tests >= pen.visits ? pen.tests - pen.visits : 0;
  telemetry->bs_prunes = pen.outer_rejects;
  const std::uint64_t rest =
      prunes >= pen.outer_rejects ? prunes - pen.outer_rejects : 0;
  // kExactDistance is the only strategy that runs exact tests; everything the
  // spheres did not reject there was decided exactly. Under kEepOnly and
  // kBoundingSpheres the non-sphere remainder is the slab (EP) test's share.
  if (pen.exact_tests > 0) {
    telemetry->exact_prunes = rest;
  } else {
    telemetry->ep_prunes = rest;
  }
}

obs::QueryCost BuildQueryCost(std::uint64_t cpu_start_us,
                              const storage::QueryCounters& counters,
                              std::uint64_t candidates_verified) {
  obs::QueryCost cost;
  const std::uint64_t cpu_now = obs::ThreadCpuNowUs();
  cost.cpu_us = cpu_now >= cpu_start_us ? cpu_now - cpu_start_us : 0;
  cost.pages_miss = counters.pool_misses;
  cost.pages_hit = counters.pool_logical_reads >= counters.pool_misses
                       ? counters.pool_logical_reads - counters.pool_misses
                       : 0;
  cost.data_pages = counters.data_page_reads;
  cost.bytes_touched =
      (counters.pool_logical_reads + counters.data_page_reads) *
      storage::kPageSize;
  cost.candidates_verified = candidates_verified;
  return cost;
}

SearchEngine::SearchEngine(const EngineConfig& config) : config_(config) {}

Result<std::unique_ptr<SearchEngine>> SearchEngine::Create(
    const EngineConfig& config) {
  if (config.window < 2) {
    return Status::InvalidArgument("window length must be >= 2");
  }
  if (config.stride == 0) {
    return Status::InvalidArgument("stride must be positive");
  }
  Result<std::unique_ptr<reduce::Reducer>> reducer =
      reduce::MakeReducer(config.reducer, config.window, config.reduced_dim);
  if (!reducer.ok()) return reducer.status();

  auto engine = std::unique_ptr<SearchEngine>(new SearchEngine(config));
  engine->reducer_ = std::move(reducer).value();
  if (config.storage_dir.empty()) {
    engine->page_store_ = std::make_unique<storage::MemPageStore>();
  } else {
    std::error_code ec;
    std::filesystem::create_directories(config.storage_dir, ec);
    if (ec) {
      return Status::IoError("cannot create storage dir '" +
                             config.storage_dir + "': " + ec.message());
    }
    Result<std::unique_ptr<storage::FilePageStore>> file_store =
        storage::FilePageStore::Create(config.storage_dir + "/pages.tsss");
    if (!file_store.ok()) return file_store.status();
    engine->file_store_ = file_store->get();
    engine->page_store_ = std::move(file_store).value();
  }
  engine->pool_ = std::make_unique<storage::BufferPool>(
      engine->page_store_.get(), config.buffer_pool_pages);

  index::RTreeConfig tree_config = config.tree;
  tree_config.dim = engine->reducer_->output_dim();
  tree_config.box_leaves = config.subtrail_len > 0;
  Result<std::unique_ptr<index::RTree>> tree =
      index::RTree::Create(engine->pool_.get(), tree_config);
  if (!tree.ok()) return tree.status();
  engine->tree_ = std::move(tree).value();
  return engine;
}

geom::Vec SearchEngine::ReducedPoint(std::span<const double> window) const {
  TSSS_DCHECK(window.size() == config_.window);
  geom::Vec se = geom::SeTransform(window);
  return reducer_->Apply(se);
}

geom::Line SearchEngine::ReducedQueryLine(std::span<const double> query) const {
  TSSS_DCHECK(query.size() == config_.window);
  geom::Vec se = geom::SeTransform(query);
  geom::Vec dir = reducer_->Apply(se);
  return geom::Line{geom::Vec(dir.size(), 0.0), std::move(dir)};
}

Status SearchEngine::IndexWindows(storage::SeriesId id, std::size_t first_offset) {
  if (config_.subtrail_len > 0) return IndexWindowsTrail(id, first_offset);
  Result<std::span<const double>> values = dataset_.Values(id);
  if (!values.ok()) return values.status();
  const std::size_t n = config_.window;
  if (values->size() < n) return Status::OK();
  // Align the starting offset to the stride grid.
  std::size_t off = first_offset;
  if (off % config_.stride != 0) {
    off += config_.stride - off % config_.stride;
  }
  for (; off + n <= values->size(); off += config_.stride) {
    const geom::Vec point = ReducedPoint(values->subspan(off, n));
    Status s = tree_->Insert(
        point, seq::MakeRecordId(id, static_cast<std::uint32_t>(off)));
    if (!s.ok()) return s;
    ++indexed_windows_;
  }
  return Status::OK();
}

geom::Mbr SearchEngine::TrailBox(std::span<const double> values,
                                 std::size_t first_widx,
                                 std::size_t last_widx) const {
  geom::Mbr box(reducer_->output_dim());
  for (std::size_t w = first_widx; w <= last_widx; ++w) {
    const std::size_t off = w * config_.stride;
    box.Extend(ReducedPoint(values.subspan(off, config_.window)));
  }
  return box;
}

Status SearchEngine::IndexWindowsTrail(storage::SeriesId id,
                                       std::size_t first_offset) {
  Result<std::span<const double>> values = dataset_.Values(id);
  if (!values.ok()) return values.status();
  const std::size_t n = config_.window;
  const std::size_t stride = config_.stride;
  const std::size_t trail = config_.subtrail_len;
  if (values->size() < n) return Status::OK();
  // Window indices (stride units) to (re)index.
  const std::size_t first_widx = (first_offset + stride - 1) / stride;
  const std::size_t last_widx = (values->size() - n) / stride;
  if (first_widx > last_widx) return Status::OK();

  // Trails are aligned to multiples of `trail` in window-index space so the
  // grouping is reconstructible at query time. If the first new window
  // lands inside an already-indexed (partial) trail, replace that trail.
  std::size_t trail_start = (first_widx / trail) * trail;
  if (trail_start < first_widx) {
    // The old box covered windows [trail_start, first_widx); those windows
    // only touch pre-append values, so recomputing reproduces it exactly.
    const geom::Mbr old_box = TrailBox(*values, trail_start, first_widx - 1);
    Status s = tree_->DeleteBox(
        old_box, seq::MakeRecordId(
                     id, static_cast<std::uint32_t>(trail_start * stride)));
    if (!s.ok()) return s;
  }
  for (std::size_t t = trail_start; t <= last_widx; t += trail) {
    const std::size_t end = std::min(t + trail - 1, last_widx);
    Status s = tree_->InsertBox(
        TrailBox(*values, t, end),
        seq::MakeRecordId(id, static_cast<std::uint32_t>(t * stride)));
    if (!s.ok()) return s;
  }
  indexed_windows_ += last_widx - first_widx + 1;
  return Status::OK();
}

Status SearchEngine::ExpandCandidate(index::RecordId record,
                                     std::vector<index::RecordId>* out) const {
  if (config_.subtrail_len == 0) {
    out->push_back(record);
    return Status::OK();
  }
  const storage::SeriesId series = seq::SeriesOf(record);
  const std::size_t start_offset = seq::OffsetOf(record);
  Result<std::size_t> len = dataset_.store().SeriesLength(series);
  if (!len.ok()) return len.status();
  const std::size_t first_widx = start_offset / config_.stride;
  const std::size_t last_widx = (*len - config_.window) / config_.stride;
  const std::size_t end_widx =
      std::min(first_widx + config_.subtrail_len - 1, last_widx);
  for (std::size_t w = first_widx; w <= end_widx; ++w) {
    out->push_back(seq::MakeRecordId(
        series, static_cast<std::uint32_t>(w * config_.stride)));
  }
  return Status::OK();
}

Result<storage::SeriesId> SearchEngine::AddSeries(std::string name,
                                                  std::span<const double> values) {
  const storage::SeriesId id = dataset_.Add(std::move(name), values);
  Status s = IndexWindows(id, 0);
  if (!s.ok()) return s;
  return id;
}

Status SearchEngine::Append(storage::SeriesId id, std::span<const double> values) {
  Result<std::size_t> old_len = dataset_.store().SeriesLength(id);
  if (!old_len.ok()) return old_len.status();
  Status s = dataset_.Append(id, values);
  if (!s.ok()) return s;
  const std::size_t n = config_.window;
  // First window that includes at least one appended value.
  const std::size_t first =
      *old_len >= n ? *old_len - n + 1 : 0;
  return IndexWindows(id, first);
}

Status SearchEngine::BulkBuild(const std::vector<seq::TimeSeries>& corpus) {
  if (tree_->size() != 0 || dataset_.size() != 0) {
    return Status::FailedPrecondition("BulkBuild requires an empty engine");
  }
  std::vector<index::Entry> entries;
  for (const seq::TimeSeries& series : corpus) {
    const storage::SeriesId id = dataset_.Add(series.name, series.values);
    Result<std::span<const double>> values = dataset_.Values(id);
    if (!values.ok()) return values.status();
    const std::size_t n = config_.window;
    if (values->size() < n) continue;
    if (config_.subtrail_len > 0) {
      const std::size_t last_widx = (values->size() - n) / config_.stride;
      indexed_windows_ += last_widx + 1;
      for (std::size_t t = 0; t <= last_widx; t += config_.subtrail_len) {
        const std::size_t end = std::min(t + config_.subtrail_len - 1, last_widx);
        index::Entry e;
        e.mbr = TrailBox(*values, t, end);
        e.record = seq::MakeRecordId(
            id, static_cast<std::uint32_t>(t * config_.stride));
        entries.push_back(std::move(e));
      }
      continue;
    }
    for (std::size_t off = 0; off + n <= values->size(); off += config_.stride) {
      const geom::Vec point = ReducedPoint(values->subspan(off, n));
      entries.push_back(index::Entry::ForRecord(
          seq::MakeRecordId(id, static_cast<std::uint32_t>(off)), point));
      ++indexed_windows_;
    }
  }
  return tree_->BulkLoad(std::move(entries));
}

Status SearchEngine::RemoveWindow(index::RecordId record) {
  if (config_.subtrail_len > 0) {
    return Status::FailedPrecondition(
        "RemoveWindow is not supported in sub-trail mode (a leaf entry "
        "covers many windows)");
  }
  const storage::SeriesId series = seq::SeriesOf(record);
  const std::uint32_t offset = seq::OffsetOf(record);
  Result<std::span<const double>> values = dataset_.Values(series);
  if (!values.ok()) return values.status();
  if (offset + config_.window > values->size()) {
    return Status::OutOfRange("record window out of series range");
  }
  const geom::Vec point = ReducedPoint(values->subspan(offset, config_.window));
  Status s = tree_->Delete(point, record);
  if (s.ok()) --indexed_windows_;
  return s;
}

Result<geom::Vec> SearchEngine::ReadWindow(index::RecordId record) const {
  geom::Vec out(config_.window);
  Status s = dataset_.store().ReadWindow(seq::SeriesOf(record),
                                         seq::OffsetOf(record), out);
  if (!s.ok()) return s;
  return out;
}

Status SearchEngine::BeginQuery() const {
  if (config_.cold_cache_per_query) return pool_->Clear();
  return Status::OK();
}

void SearchEngine::RecordLastQuery(const LastQuery& last) const {
  MutexLock lock(last_query_mu_);
  last_query_ = last;
}

Result<std::vector<Match>> SearchEngine::RangeQuery(std::span<const double> query,
                                                    double eps,
                                                    const TransformCost& cost,
                                                    QueryStats* stats) const {
  if (query.size() != config_.window) {
    return Status::InvalidArgument(
        "query length " + std::to_string(query.size()) +
        " != window " + std::to_string(config_.window) +
        " (use LongRangeQuery for longer queries)");
  }
  if (eps < 0.0) return Status::InvalidArgument("eps must be non-negative");

  if (Status begin = BeginQuery(); !begin.ok()) return begin;
  storage::QueryCounters counters;
  storage::ScopedQueryCounters scoped_counters(&counters);

  // Telemetry is collected only when someone will read it (the caller asked
  // for stats or a trace is installed); otherwise the index layer's tick
  // helpers reduce to a thread-local read plus an untaken branch.
  obs::QueryTelemetry telemetry;
  std::optional<obs::ScopedQueryTelemetry> scoped_telemetry;
  std::chrono::steady_clock::time_point query_start;
  std::uint64_t cpu_start_us = 0;
  if (stats != nullptr || obs::CurrentQueryTrace() != nullptr) {
    scoped_telemetry.emplace(&telemetry);
    query_start = std::chrono::steady_clock::now();
    cpu_start_us = obs::ThreadCpuNowUs();
  }
  obs::TraceSpan query_span("range_query");

  const QueryContext ctx(query);
  const geom::Line line = ReducedQueryLine(query);

  geom::PenetrationStats pen;
  obs::TraceSpan filter_span("index_filter");
  Result<std::vector<index::LineMatch>> candidates =
      tree_->LineQuery(line, eps, config_.prune, &pen);
  if (!candidates.ok()) return candidates.status();
  filter_span.Annotate("leaf_hits", candidates->size());
  filter_span.Close();

  // Expand leaf candidates to window records (a no-op in point mode; a
  // trail hit stands for all of its windows), then verify in storage order
  // so that every needed data page is fetched (and counted) exactly once.
  obs::TraceSpan verify_span("expand_and_verify");
  std::vector<index::RecordId> expanded;
  expanded.reserve(candidates->size());
  for (const index::LineMatch& cand : *candidates) {
    Status s = ExpandCandidate(cand.record, &expanded);
    if (!s.ok()) return s;
  }
  std::sort(expanded.begin(), expanded.end());
  std::vector<Match> matches;
  matches.reserve(expanded.size());
  geom::Vec window(config_.window);
  std::size_t last_counted_page = storage::SequenceStore::kNoPageCounted;
  for (const index::RecordId record : expanded) {
    // The index phase polls per node load; the verify phase reads data
    // pages without touching the tree, so it needs its own poll or a
    // deadline set mid-scan would never fire (tsss_lint: deadline-poll).
    Status s = PollExecControl();
    if (!s.ok()) return s;
    s = dataset_.store().ReadWindowDeduped(seq::SeriesOf(record),
                                           seq::OffsetOf(record), window,
                                           &last_counted_page);
    if (!s.ok()) return s;
    std::optional<Match> match = VerifyCandidate(ctx, window, record, eps, cost);
    if (match.has_value()) matches.push_back(*match);
  }
  verify_span.Annotate("candidates", expanded.size());
  verify_span.Annotate("matches", matches.size());
  verify_span.Close();

  obs::QueryCost query_cost;
  if (scoped_telemetry.has_value()) {
    FillPruneTelemetry(pen, &telemetry);
    telemetry.candidates_postfiltered = expanded.size() - matches.size();
    obs::AnnotateSpan(&query_span, telemetry);
    query_cost = BuildQueryCost(cpu_start_us, counters, expanded.size());
    LastQuery last;
    last.kind = "range";
    last.eps = eps;
    last.prune = config_.prune;
    last.elapsed_us = ElapsedUs(query_start);
    last.stats.index_page_reads = counters.pool_logical_reads;
    last.stats.index_page_misses = counters.pool_misses;
    last.stats.data_page_reads = counters.data_page_reads;
    last.stats.candidates = expanded.size();
    last.stats.matches = matches.size();
    last.stats.penetration = pen;
    last.stats.telemetry = telemetry;
    last.stats.cost = query_cost;
    RecordLastQuery(last);
  }
  const QueryRegistryCounters& reg = QueryCountersRegistry();
  reg.range_queries->Inc();
  reg.candidates->Inc(expanded.size());
  reg.matches->Inc(matches.size());

  if (stats != nullptr) {
    stats->index_page_reads = counters.pool_logical_reads;
    stats->index_page_misses = counters.pool_misses;
    stats->data_page_reads = counters.data_page_reads;
    stats->candidates = expanded.size();
    stats->matches = matches.size();
    stats->penetration = pen;
    stats->telemetry = telemetry;
    stats->cost = query_cost;
  }
  return matches;
}

Result<std::vector<Match>> SearchEngine::Knn(std::span<const double> query,
                                             std::size_t k,
                                             const TransformCost& cost,
                                             QueryStats* stats,
                                             KnnSharedBound* shared_bound) const {
  if (query.size() != config_.window) {
    return Status::InvalidArgument("knn query length must equal the window");
  }
  if (k == 0) return std::vector<Match>{};

  if (Status begin = BeginQuery(); !begin.ok()) return begin;
  storage::QueryCounters counters;
  storage::ScopedQueryCounters scoped_counters(&counters);

  obs::QueryTelemetry telemetry;
  std::optional<obs::ScopedQueryTelemetry> scoped_telemetry;
  std::chrono::steady_clock::time_point query_start;
  std::uint64_t cpu_start_us = 0;
  if (stats != nullptr || obs::CurrentQueryTrace() != nullptr) {
    scoped_telemetry.emplace(&telemetry);
    query_start = std::chrono::steady_clock::now();
    cpu_start_us = obs::ThreadCpuNowUs();
  }
  obs::TraceSpan query_span("knn_query");

  const QueryContext ctx(query);
  const geom::Line line = ReducedQueryLine(query);

  // GEMINI multi-step k-NN: consume index neighbours in increasing *reduced*
  // distance (a lower bound of the exact distance); verify each; stop once
  // the lower bound of the next neighbour exceeds the k-th best exact
  // distance seen so far. Exact-distance ties are broken by record id so the
  // answer set is canonical — independent of iterator visit order and of how
  // the windows are partitioned across shards.
  auto canonical = [](const Match& a, const Match& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.record < b.record);
  };
  std::priority_queue<Match, std::vector<Match>, decltype(canonical)> best(
      canonical);

  std::uint64_t candidates_seen = 0;
  obs::TraceSpan search_span("multi_step_search");
  index::RTree::LineNeighborIterator it = tree_->NearestLineNeighbors(line);
  geom::Vec window(config_.window);
  std::vector<index::RecordId> expanded;
  while (true) {
    Result<std::optional<index::LineMatch>> next = it.Next();
    if (!next.ok()) return next.status();
    if (!next->has_value()) break;
    const index::LineMatch& cand = **next;
    // Local termination bound, optionally tightened by sibling partitions.
    // Strict > keeps ties alive: a candidate at exactly the bound may still
    // displace the k-th best via the record tie-break.
    double limit = best.size() == k ? best.top().distance
                                    : std::numeric_limits<double>::infinity();
    if (shared_bound != nullptr) limit = std::min(limit, shared_bound->Get());
    if (cand.reduced_distance > limit) break;
    expanded.clear();
    Status es = ExpandCandidate(cand.record, &expanded);
    if (!es.ok()) return es;
    for (const index::RecordId record : expanded) {
      ++candidates_seen;
      // The outer loop polls via it.Next() → LoadNode, but one trail hit
      // can expand into many window reads; poll per data page so wide
      // expansions stay responsive too (tsss_lint: deadline-poll).
      Status s = PollExecControl();
      if (!s.ok()) return s;
      s = dataset_.store().ReadWindow(seq::SeriesOf(record),
                                      seq::OffsetOf(record), window);
      if (!s.ok()) return s;
      const geom::Alignment alignment = ctx.Align(window);
      if (!cost.Allows(alignment.transform)) continue;
      Match match;
      match.record = record;
      match.series = seq::SeriesOf(record);
      match.offset = seq::OffsetOf(record);
      match.distance = alignment.distance;
      match.transform = alignment.transform;
      if (best.size() == k && !canonical(match, best.top())) continue;
      best.push(match);
      if (best.size() > k) best.pop();
      if (shared_bound != nullptr && best.size() == k) {
        shared_bound->Tighten(best.top().distance);
      }
    }
  }

  search_span.Annotate("candidates", candidates_seen);
  search_span.Close();

  std::vector<Match> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(best.top());
    best.pop();
  }
  std::reverse(out.begin(), out.end());

  obs::QueryCost query_cost;
  if (scoped_telemetry.has_value()) {
    telemetry.candidates_postfiltered = candidates_seen - out.size();
    obs::AnnotateSpan(&query_span, telemetry);
    query_cost = BuildQueryCost(cpu_start_us, counters, candidates_seen);
    LastQuery last;
    last.kind = "knn";
    last.k = k;
    last.prune = config_.prune;
    last.elapsed_us = ElapsedUs(query_start);
    last.stats.index_page_reads = counters.pool_logical_reads;
    last.stats.index_page_misses = counters.pool_misses;
    last.stats.data_page_reads = counters.data_page_reads;
    last.stats.candidates = candidates_seen;
    last.stats.matches = out.size();
    last.stats.telemetry = telemetry;
    last.stats.cost = query_cost;
    RecordLastQuery(last);
  }
  const QueryRegistryCounters& reg = QueryCountersRegistry();
  reg.knn_queries->Inc();
  reg.candidates->Inc(candidates_seen);
  reg.matches->Inc(out.size());

  if (stats != nullptr) {
    stats->index_page_reads = counters.pool_logical_reads;
    stats->index_page_misses = counters.pool_misses;
    stats->data_page_reads = counters.data_page_reads;
    stats->candidates = candidates_seen;
    stats->matches = out.size();
    stats->telemetry = telemetry;
    stats->cost = query_cost;
  }
  return out;
}

}  // namespace tsss::core
