#include "tsss/core/seq_scan.h"

#include <algorithm>
#include <queue>

#include "tsss/seq/window.h"

namespace tsss::core {

SequentialScanner::SequentialScanner(seq::Dataset* dataset, std::size_t window,
                                     std::size_t stride)
    : dataset_(dataset), window_(window), stride_(stride) {}

Result<std::vector<Match>> SequentialScanner::RangeQuery(
    std::span<const double> query, double eps, const TransformCost& cost) const {
  if (query.size() != window_) {
    return Status::InvalidArgument("query length must equal the window");
  }
  if (eps < 0.0) return Status::InvalidArgument("eps must be non-negative");
  const QueryContext ctx(query);

  dataset_->store().RecordFullScan();
  std::vector<Match> out;
  Status s = seq::ForEachWindow(
      dataset_->store(), window_, stride_,
      [&](storage::SeriesId series, std::uint32_t offset,
          std::span<const double> values) {
        std::optional<Match> match = VerifyCandidate(
            ctx, values, seq::MakeRecordId(series, offset), eps, cost);
        if (match.has_value()) out.push_back(*match);
      });
  if (!s.ok()) return s;
  return out;
}

Result<std::vector<Match>> SequentialScanner::Knn(std::span<const double> query,
                                                  std::size_t k,
                                                  const TransformCost& cost) const {
  if (query.size() != window_) {
    return Status::InvalidArgument("query length must equal the window");
  }
  if (k == 0) return std::vector<Match>{};
  const QueryContext ctx(query);

  dataset_->store().RecordFullScan();
  auto cmp = [](const Match& a, const Match& b) { return a.distance < b.distance; };
  std::priority_queue<Match, std::vector<Match>, decltype(cmp)> best(cmp);
  Status s = seq::ForEachWindow(
      dataset_->store(), window_, stride_,
      [&](storage::SeriesId series, std::uint32_t offset,
          std::span<const double> values) {
        const geom::Alignment alignment = ctx.Align(values);
        if (!cost.Allows(alignment.transform)) return;
        if (best.size() == k && alignment.distance >= best.top().distance) return;
        Match match;
        match.record = seq::MakeRecordId(series, offset);
        match.series = series;
        match.offset = offset;
        match.distance = alignment.distance;
        match.transform = alignment.transform;
        best.push(match);
        if (best.size() > k) best.pop();
      });
  if (!s.ok()) return s;

  std::vector<Match> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(best.top());
    best.pop();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace tsss::core
