// Engine persistence: Checkpoint() writes everything needed to re-open a
// file-backed engine; Open() restores it. The page file already holds the
// R-tree; what is saved here is the dataset (raw series) and a small
// metadata file with the engine configuration and the tree's root/shape.

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "tsss/core/engine.h"
#include "tsss/seq/dataset_io.h"

namespace tsss::core {
namespace {

constexpr char kMetaVersion[] = "tsss-engine-meta-v1";

std::string MetaPath(const std::string& dir) { return dir + "/engine.meta"; }
std::string DatasetPath(const std::string& dir) { return dir + "/dataset.bin"; }

}  // namespace

Status SearchEngine::Checkpoint() {
  if (config_.storage_dir.empty() || file_store_ == nullptr) {
    return Status::FailedPrecondition(
        "Checkpoint requires an engine created with a storage_dir");
  }
  Status s = pool_->FlushAll();
  if (!s.ok()) return s;
  s = file_store_->Sync();
  if (!s.ok()) return s;
  s = seq::SaveDataset(DatasetPath(config_.storage_dir), dataset_);
  if (!s.ok()) return s;

  std::ofstream meta(MetaPath(config_.storage_dir), std::ios::trunc);
  if (!meta) {
    return Status::IoError("cannot write '" + MetaPath(config_.storage_dir) + "'");
  }
  meta << kMetaVersion << '\n';
  meta << "window " << config_.window << '\n';
  meta << "stride " << config_.stride << '\n';
  meta << "subtrail " << config_.subtrail_len << '\n';
  meta << "reducer " << static_cast<int>(config_.reducer) << '\n';
  meta << "reduced_dim " << config_.reduced_dim << '\n';
  meta << "prune " << static_cast<int>(config_.prune) << '\n';
  meta << "pool_pages " << config_.buffer_pool_pages << '\n';
  meta << "cold_cache " << (config_.cold_cache_per_query ? 1 : 0) << '\n';
  meta << "tree_max " << config_.tree.max_entries << '\n';
  meta << "tree_leaf_max " << config_.tree.leaf_max_entries << '\n';
  meta << "tree_min_fill " << config_.tree.min_fill_fraction << '\n';
  meta << "tree_split " << static_cast<int>(config_.tree.split) << '\n';
  meta << "tree_reinsert " << config_.tree.reinsert_fraction << '\n';
  meta << "supernodes " << (config_.tree.enable_supernodes ? 1 : 0) << '\n';
  meta << "supernode_overlap " << config_.tree.supernode_overlap_fraction << '\n';
  meta << "supernode_multiple " << config_.tree.max_supernode_multiple << '\n';
  meta << "windows " << indexed_windows_ << '\n';
  meta << "root " << tree_->root_page() << '\n';
  meta << "height " << tree_->height() << '\n';
  meta << "size " << tree_->size() << '\n';
  meta.flush();
  if (!meta) return Status::IoError("metadata write failed");
  return Status::OK();
}

Result<std::unique_ptr<SearchEngine>> SearchEngine::Open(
    const std::string& storage_dir) {
  std::ifstream meta(MetaPath(storage_dir));
  if (!meta) {
    return Status::IoError("cannot open '" + MetaPath(storage_dir) + "'");
  }
  std::string version;
  if (!std::getline(meta, version) || version != kMetaVersion) {
    return Status::Corruption("unsupported engine metadata version '" + version +
                              "'");
  }
  std::map<std::string, double> kv;
  std::string key;
  double value;
  while (meta >> key >> value) kv[key] = value;
  for (const char* required :
       {"window", "stride", "subtrail", "reducer", "reduced_dim", "prune", "pool_pages",
        "cold_cache", "tree_max", "tree_leaf_max", "tree_min_fill",
        "tree_split", "tree_reinsert", "supernodes", "supernode_overlap",
        "supernode_multiple", "windows", "root", "height", "size"}) {
    if (kv.find(required) == kv.end()) {
      return Status::Corruption(std::string("engine metadata missing key '") +
                                required + "'");
    }
  }

  EngineConfig config;
  config.window = static_cast<std::size_t>(kv["window"]);
  config.stride = static_cast<std::size_t>(kv["stride"]);
  config.subtrail_len = static_cast<std::size_t>(kv["subtrail"]);
  config.reducer = static_cast<reduce::ReducerKind>(static_cast<int>(kv["reducer"]));
  config.reduced_dim = static_cast<std::size_t>(kv["reduced_dim"]);
  config.prune = static_cast<geom::PruneStrategy>(static_cast<int>(kv["prune"]));
  config.buffer_pool_pages = static_cast<std::size_t>(kv["pool_pages"]);
  config.cold_cache_per_query = kv["cold_cache"] != 0;
  config.tree.max_entries = static_cast<std::size_t>(kv["tree_max"]);
  config.tree.leaf_max_entries = static_cast<std::size_t>(kv["tree_leaf_max"]);
  config.tree.min_fill_fraction = kv["tree_min_fill"];
  config.tree.split =
      static_cast<index::SplitAlgorithm>(static_cast<int>(kv["tree_split"]));
  config.tree.reinsert_fraction = kv["tree_reinsert"];
  config.tree.enable_supernodes = kv["supernodes"] != 0;
  config.tree.supernode_overlap_fraction = kv["supernode_overlap"];
  config.tree.max_supernode_multiple =
      static_cast<std::size_t>(kv["supernode_multiple"]);
  config.storage_dir = storage_dir;

  Result<std::unique_ptr<reduce::Reducer>> reducer =
      reduce::MakeReducer(config.reducer, config.window, config.reduced_dim);
  if (!reducer.ok()) return reducer.status();

  auto engine = std::unique_ptr<SearchEngine>(new SearchEngine(config));
  engine->reducer_ = std::move(reducer).value();

  Result<std::unique_ptr<storage::FilePageStore>> file_store =
      storage::FilePageStore::Open(storage_dir + "/pages.tsss");
  if (!file_store.ok()) return file_store.status();
  engine->file_store_ = file_store->get();
  engine->page_store_ = std::move(file_store).value();
  engine->pool_ = std::make_unique<storage::BufferPool>(
      engine->page_store_.get(), config.buffer_pool_pages);

  index::RTreeConfig tree_config = config.tree;
  tree_config.dim = engine->reducer_->output_dim();
  tree_config.box_leaves = config.subtrail_len > 0;  // same derivation as Create
  Result<std::unique_ptr<index::RTree>> tree = index::RTree::Attach(
      engine->pool_.get(), tree_config,
      static_cast<storage::PageId>(kv["root"]),
      static_cast<std::size_t>(kv["height"]), static_cast<std::size_t>(kv["size"]));
  if (!tree.ok()) return tree.status();
  engine->tree_ = std::move(tree).value();

  engine->indexed_windows_ = static_cast<std::size_t>(kv["windows"]);

  Status s = seq::LoadDataset(DatasetPath(storage_dir), &engine->dataset_);
  if (!s.ok()) return s;
  return engine;
}

}  // namespace tsss::core
