// Engine persistence: Checkpoint() writes everything needed to re-open a
// file-backed engine; Open() restores it. The page file already holds the
// R-tree; what is saved here is the dataset (raw series) and a small
// metadata file with the engine configuration and the tree's root/shape.

#include <cmath>
#include <fstream>
#include <istream>
#include <map>
#include <sstream>
#include <string>

#include "tsss/core/engine.h"
#include "tsss/seq/dataset_io.h"

namespace tsss::core {
namespace {

constexpr char kMetaVersion[] = "tsss-engine-meta-v1";

std::string MetaPath(const std::string& dir) { return dir + "/engine.meta"; }
std::string DatasetPath(const std::string& dir) { return dir + "/dataset.bin"; }

/// Largest double that converts to an integer without losing exactness
/// (2^53); also comfortably bounds every legitimate metadata value.
constexpr double kMaxIntegralDouble = 9007199254740992.0;

/// Checked double -> size_t narrowing for untrusted metadata values: the
/// raw static_cast is undefined behaviour for NaN, infinities, negatives
/// and out-of-range magnitudes (UBSan float-cast-overflow), all of which a
/// corrupt file can contain.
Status MetaToSize(double value, const char* key, std::size_t* out) {
  if (!std::isfinite(value) || value < 0.0 || value > kMaxIntegralDouble ||
      value != std::floor(value)) {
    return Status::Corruption(std::string("engine metadata key '") + key +
                              "' has non-integral or out-of-range value");
  }
  *out = static_cast<std::size_t>(value);
  return Status::OK();
}

/// Checked double -> enum conversion: the value must be integral and one of
/// 0..max_value (the enums are dense and zero-based).
Status MetaToEnumInt(double value, const char* key, int max_value, int* out) {
  std::size_t v = 0;
  Status s = MetaToSize(value, key, &v);
  if (!s.ok()) return s;
  if (v > static_cast<std::size_t>(max_value)) {
    return Status::Corruption(std::string("engine metadata key '") + key +
                              "' names an unknown enumerator " +
                              std::to_string(v));
  }
  *out = static_cast<int>(v);
  return Status::OK();
}

Status MetaToFraction(double value, const char* key, double* out) {
  if (!std::isfinite(value)) {
    return Status::Corruption(std::string("engine metadata key '") + key +
                              "' is not finite");
  }
  *out = value;
  return Status::OK();
}

}  // namespace

Result<EngineMeta> ParseEngineMeta(std::istream& in) {
  std::string version;
  if (!std::getline(in, version) || version != kMetaVersion) {
    return Status::Corruption("unsupported engine metadata version '" + version +
                              "'");
  }
  std::map<std::string, double> kv;
  std::string key;
  double value;
  while (in >> key >> value) kv[key] = value;
  for (const char* required :
       {"window", "stride", "subtrail", "reducer", "reduced_dim", "prune",
        "pool_pages", "cold_cache", "tree_max", "tree_leaf_max",
        "tree_min_fill", "tree_split", "tree_reinsert", "supernodes",
        "supernode_overlap", "supernode_multiple", "windows", "root", "height",
        "size"}) {
    if (kv.find(required) == kv.end()) {
      return Status::Corruption(std::string("engine metadata missing key '") +
                                required + "'");
    }
  }

  EngineMeta meta;
  EngineConfig& config = meta.config;
  Status s = MetaToSize(kv["window"], "window", &config.window);
  if (!s.ok()) return s;
  s = MetaToSize(kv["stride"], "stride", &config.stride);
  if (!s.ok()) return s;
  s = MetaToSize(kv["subtrail"], "subtrail", &config.subtrail_len);
  if (!s.ok()) return s;
  int enum_value = 0;
  s = MetaToEnumInt(kv["reducer"], "reducer",
                    static_cast<int>(reduce::ReducerKind::kHaar), &enum_value);
  if (!s.ok()) return s;
  config.reducer = static_cast<reduce::ReducerKind>(enum_value);
  s = MetaToSize(kv["reduced_dim"], "reduced_dim", &config.reduced_dim);
  if (!s.ok()) return s;
  s = MetaToEnumInt(kv["prune"], "prune",
                    static_cast<int>(geom::PruneStrategy::kExactDistance),
                    &enum_value);
  if (!s.ok()) return s;
  config.prune = static_cast<geom::PruneStrategy>(enum_value);
  s = MetaToSize(kv["pool_pages"], "pool_pages", &config.buffer_pool_pages);
  if (!s.ok()) return s;
  config.cold_cache_per_query = kv["cold_cache"] != 0;
  s = MetaToSize(kv["tree_max"], "tree_max", &config.tree.max_entries);
  if (!s.ok()) return s;
  s = MetaToSize(kv["tree_leaf_max"], "tree_leaf_max",
                 &config.tree.leaf_max_entries);
  if (!s.ok()) return s;
  s = MetaToFraction(kv["tree_min_fill"], "tree_min_fill",
                     &config.tree.min_fill_fraction);
  if (!s.ok()) return s;
  s = MetaToEnumInt(kv["tree_split"], "tree_split",
                    static_cast<int>(index::SplitAlgorithm::kRStar),
                    &enum_value);
  if (!s.ok()) return s;
  config.tree.split = static_cast<index::SplitAlgorithm>(enum_value);
  s = MetaToFraction(kv["tree_reinsert"], "tree_reinsert",
                     &config.tree.reinsert_fraction);
  if (!s.ok()) return s;
  config.tree.enable_supernodes = kv["supernodes"] != 0;
  s = MetaToFraction(kv["supernode_overlap"], "supernode_overlap",
                     &config.tree.supernode_overlap_fraction);
  if (!s.ok()) return s;
  s = MetaToSize(kv["supernode_multiple"], "supernode_multiple",
                 &config.tree.max_supernode_multiple);
  if (!s.ok()) return s;
  s = MetaToSize(kv["windows"], "windows", &meta.indexed_windows);
  if (!s.ok()) return s;
  std::size_t root = 0;
  s = MetaToSize(kv["root"], "root", &root);
  if (!s.ok()) return s;
  if (root > static_cast<std::size_t>(storage::kInvalidPageId)) {
    return Status::Corruption("engine metadata root page id out of range");
  }
  meta.root = static_cast<storage::PageId>(root);
  s = MetaToSize(kv["height"], "height", &meta.height);
  if (!s.ok()) return s;
  s = MetaToSize(kv["size"], "size", &meta.tree_size);
  if (!s.ok()) return s;
  return meta;
}

Status SearchEngine::Checkpoint() {
  if (config_.storage_dir.empty() || file_store_ == nullptr) {
    return Status::FailedPrecondition(
        "Checkpoint requires an engine created with a storage_dir");
  }
  Status s = pool_->FlushAll();
  if (!s.ok()) return s;
  s = file_store_->Sync();
  if (!s.ok()) return s;
  s = seq::SaveDataset(DatasetPath(config_.storage_dir), dataset_);
  if (!s.ok()) return s;

  std::ofstream meta(MetaPath(config_.storage_dir), std::ios::trunc);
  if (!meta) {
    return Status::IoError("cannot write '" + MetaPath(config_.storage_dir) + "'");
  }
  meta << kMetaVersion << '\n';
  meta << "window " << config_.window << '\n';
  meta << "stride " << config_.stride << '\n';
  meta << "subtrail " << config_.subtrail_len << '\n';
  meta << "reducer " << static_cast<int>(config_.reducer) << '\n';
  meta << "reduced_dim " << config_.reduced_dim << '\n';
  meta << "prune " << static_cast<int>(config_.prune) << '\n';
  meta << "pool_pages " << config_.buffer_pool_pages << '\n';
  meta << "cold_cache " << (config_.cold_cache_per_query ? 1 : 0) << '\n';
  meta << "tree_max " << config_.tree.max_entries << '\n';
  meta << "tree_leaf_max " << config_.tree.leaf_max_entries << '\n';
  meta << "tree_min_fill " << config_.tree.min_fill_fraction << '\n';
  meta << "tree_split " << static_cast<int>(config_.tree.split) << '\n';
  meta << "tree_reinsert " << config_.tree.reinsert_fraction << '\n';
  meta << "supernodes " << (config_.tree.enable_supernodes ? 1 : 0) << '\n';
  meta << "supernode_overlap " << config_.tree.supernode_overlap_fraction << '\n';
  meta << "supernode_multiple " << config_.tree.max_supernode_multiple << '\n';
  meta << "windows " << indexed_windows_ << '\n';
  meta << "root " << tree_->root_page() << '\n';
  meta << "height " << tree_->height() << '\n';
  meta << "size " << tree_->size() << '\n';
  meta.flush();
  if (!meta) return Status::IoError("metadata write failed");
  return Status::OK();
}

Result<std::unique_ptr<SearchEngine>> SearchEngine::Open(
    const std::string& storage_dir) {
  std::ifstream meta_file(MetaPath(storage_dir));
  if (!meta_file) {
    return Status::IoError("cannot open '" + MetaPath(storage_dir) + "'");
  }
  Result<EngineMeta> meta = ParseEngineMeta(meta_file);
  if (!meta.ok()) return meta.status();

  EngineConfig config = meta->config;
  config.storage_dir = storage_dir;

  Result<std::unique_ptr<reduce::Reducer>> reducer =
      reduce::MakeReducer(config.reducer, config.window, config.reduced_dim);
  if (!reducer.ok()) return reducer.status();

  auto engine = std::unique_ptr<SearchEngine>(new SearchEngine(config));
  engine->reducer_ = std::move(reducer).value();

  Result<std::unique_ptr<storage::FilePageStore>> file_store =
      storage::FilePageStore::Open(storage_dir + "/pages.tsss");
  if (!file_store.ok()) return file_store.status();
  engine->file_store_ = file_store->get();
  engine->page_store_ = std::move(file_store).value();
  engine->pool_ = std::make_unique<storage::BufferPool>(
      engine->page_store_.get(), config.buffer_pool_pages);

  index::RTreeConfig tree_config = config.tree;
  tree_config.dim = engine->reducer_->output_dim();
  tree_config.box_leaves = config.subtrail_len > 0;  // same derivation as Create
  Result<std::unique_ptr<index::RTree>> tree =
      index::RTree::Attach(engine->pool_.get(), tree_config, meta->root,
                           meta->height, meta->tree_size);
  if (!tree.ok()) return tree.status();
  engine->tree_ = std::move(tree).value();

  engine->indexed_windows_ = meta->indexed_windows;

  Status s = seq::LoadDataset(DatasetPath(storage_dir), &engine->dataset_);
  if (!s.ok()) return s;
  return engine;
}

}  // namespace tsss::core
