#ifndef TSSS_CORE_ENGINE_H_
#define TSSS_CORE_ENGINE_H_

#include <atomic>
#include <iosfwd>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tsss/common/mutex.h"
#include "tsss/common/status.h"
#include "tsss/common/thread_annotations.h"
#include "tsss/core/similarity.h"
#include "tsss/geom/penetration.h"
#include "tsss/obs/explain.h"
#include "tsss/obs/query_telemetry.h"
#include "tsss/index/rtree.h"
#include "tsss/reduce/reducer.h"
#include "tsss/seq/dataset.h"
#include "tsss/seq/time_series.h"
#include "tsss/storage/buffer_pool.h"
#include "tsss/storage/file_page_store.h"
#include "tsss/storage/page_store.h"
#include "tsss/storage/query_counters.h"

namespace tsss::core {

/// End-to-end configuration of the scale-shift search engine. Defaults
/// reproduce the paper's experimental setting: window subsequences reduced by
/// DFT to 3 complex coefficients (R*-tree dimension 6), M = 20, m = 8,
/// forced-reinsert p = 6, 4 KiB pages.
struct EngineConfig {
  std::size_t window = 128;  ///< extraction window length n
  std::size_t stride = 1;    ///< sliding-window step
  reduce::ReducerKind reducer = reduce::ReducerKind::kDft;
  std::size_t reduced_dim = 6;  ///< R-tree dimensionality after reduction
  /// Sub-trail indexing (the ST-index of [2], which the paper builds on):
  /// instead of one R-tree point per window, group this many *consecutive*
  /// windows of a series into one leaf entry whose MBR bounds their reduced
  /// points. 0 = point mode (one entry per window). Trails shrink the index
  /// by ~this factor and slash page reads; the trade-off is that a trail
  /// hit makes all of its windows verification candidates.
  std::size_t subtrail_len = 0;
  index::RTreeConfig tree;      ///< tree.dim is overwritten with reduced_dim
  geom::PruneStrategy prune = geom::PruneStrategy::kEepOnly;
  std::size_t buffer_pool_pages = 8192;
  /// Drop the buffer-pool cache before every query, the paper's I/O model
  /// (each query starts cold; Figure 5 counts all node reads).
  bool cold_cache_per_query = true;
  /// When non-empty, the index lives in files under this directory
  /// (created if missing) instead of RAM, and Checkpoint()/Open() provide
  /// persistence across processes.
  std::string storage_dir;
};

/// Decoded contents of an engine.meta file (written by Checkpoint, read by
/// Open; format in persistence.cc).
struct EngineMeta {
  EngineConfig config;  ///< storage_dir left empty; Open() fills it in
  std::size_t indexed_windows = 0;
  storage::PageId root = storage::kInvalidPageId;
  std::size_t height = 0;
  std::size_t tree_size = 0;
};

/// Parses engine.meta text. The input is untrusted: every numeric field is
/// range-checked before narrowing (a huge/NaN value in the text would
/// otherwise make the double -> integer casts undefined behaviour) and enum
/// fields are validated against their known values, so a corrupt file yields
/// a Corruption status rather than UB or an aborted invariant check.
/// Exposed (rather than kept static in persistence.cc) so the fuzz harness
/// can drive the parser over in-memory buffers. Defined in persistence.cc.
Result<EngineMeta> ParseEngineMeta(std::istream& in);

/// Per-query observability: what a query cost. All counters are deltas over
/// the single query.
struct QueryStats {
  std::uint64_t index_page_reads = 0;   ///< R-tree node pages fetched (logical)
  std::uint64_t index_page_misses = 0;  ///< of those, buffer-pool misses
  std::uint64_t data_page_reads = 0;    ///< raw-data pages read for verification
  std::uint64_t candidates = 0;        ///< leaf hits needing verification
  std::uint64_t matches = 0;           ///< verified answers
  geom::PenetrationStats penetration;  ///< pruning-test breakdown
  /// Index-walk breakdown: nodes visited per tree level, MBR distance
  /// evaluations, and the EP/BS/exact prune disposition derived from
  /// `penetration` (see FillPruneTelemetry).
  obs::QueryTelemetry telemetry;
  /// What the query spent (thread CPU, hit/miss page split, bytes,
  /// verifications). Filled on the telemetry-enabled path only, like
  /// `telemetry`; service::QueryService aggregates it per kind and
  /// shard::ShardedEngine per shard (see obs/cost.h).
  obs::QueryCost cost;

  std::uint64_t total_page_reads() const {
    return index_page_reads + data_page_reads;
  }
};

/// A monotonically tightening upper bound on the k-th best exact distance,
/// shared by concurrent k-NN sub-queries over disjoint partitions of one
/// logical index (shard scatter-gather). Each partition publishes its local
/// k-th best distance as it improves; every partition polls the bound and
/// stops its index walk early once the next candidate's *lower* bound
/// (reduced distance) exceeds it. Correctness: the bound is always >= the
/// global k-th best distance (a local k-th order statistic can only be
/// larger than the union's), and the walk only skips candidates *strictly*
/// above it, so no true neighbour is ever dismissed — the merged answer is
/// bit-identical to a single-engine run. Lock-free; safe from any thread.
class KnnSharedBound {
 public:
  /// Lowers the bound to `distance` if it improves it (CAS min).
  void Tighten(double distance) {
    // The bound is a self-contained monotone hint — readers act only on
    // its value, never on data it would publish; a stale read just delays
    // a prune and cannot change the merged answer.
    // relaxed-ok: monotone hint, no payload (see above)
    double current = bound_.load(std::memory_order_relaxed);
    while (distance < current &&
           !bound_.compare_exchange_weak(current, distance,
                                         // relaxed-ok: same hint as above
                                         std::memory_order_relaxed)) {
    }
  }
  /// Current bound; +infinity until any partition has k results.
  double Get() const {
    // relaxed-ok: monotone pruning hint, no payload to acquire
    return bound_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> bound_{std::numeric_limits<double>::infinity()};
};

/// Derives the paper's pruning disposition from a walk's PenetrationStats:
/// every tested entry that was not visited was pruned; bounding-sphere outer
/// rejects are the BS share, and the remainder is attributed to the
/// entering/exiting-point slab test (or to the exact distance test when that
/// strategy ran). Strategies never mix within one walk. Defined in engine.cc.
void FillPruneTelemetry(const geom::PenetrationStats& pen,
                        obs::QueryTelemetry* telemetry);

/// Rolls one finished query's thread-local storage counters into a QueryCost:
/// CPU time since `cpu_start_us` (a ThreadCpuNowUs() reading taken when the
/// query started), the hit/miss split of the pool reads, and bytes touched at
/// page granularity. Called on the telemetry-enabled path only, alongside
/// FillPruneTelemetry. Defined in engine.cc.
obs::QueryCost BuildQueryCost(std::uint64_t cpu_start_us,
                              const storage::QueryCounters& counters,
                              std::uint64_t candidates_verified);

/// The paper's system: a dynamic index over all length-n windows of a set of
/// time series supporting range and k-NN queries under scale-shift
/// similarity (Definition 1), with no false dismissals.
///
/// Pipeline (Sections 5-6): window -> SE-transform -> linear reduction ->
/// point in the R*-tree. A query becomes a line in the reduced SE space;
/// subtrees are pruned by eps-MBR penetration (Theorem 3); leaf candidates
/// are verified exactly against the raw data, and each answer carries its
/// optimal (a, b).
///
/// Thread safety: the const query methods (RangeQuery, Knn, LongRangeQuery,
/// ReadWindow) may run concurrently from many threads over one engine,
/// provided cold_cache_per_query is off (a per-query pool Clear() would
/// evict pages out from under concurrent readers; service::QueryService
/// turns it off). Per-query costs in QueryStats come from thread-local
/// storage::QueryCounters, so concurrent queries never mix up each other's
/// counts. Mutations (AddSeries, Append, BulkBuild, RemoveWindow,
/// Checkpoint, the setters) require exclusive access: no query or other
/// mutation may be in flight.
class SearchEngine {
 public:
  static Result<std::unique_ptr<SearchEngine>> Create(const EngineConfig& config);

  /// Reopens an engine previously persisted with Checkpoint() into
  /// `storage_dir`. The saved configuration is restored from disk.
  /// Defined in persistence.cc.
  static Result<std::unique_ptr<SearchEngine>> Open(const std::string& storage_dir);

  /// Persists everything needed to Open() later: flushes the buffer pool,
  /// syncs the page file, and writes the dataset and engine metadata.
  /// Requires a file-backed engine (config().storage_dir non-empty).
  /// Defined in persistence.cc.
  Status Checkpoint();

  SearchEngine(const SearchEngine&) = delete;
  SearchEngine& operator=(const SearchEngine&) = delete;

  /// Adds a series and indexes every complete window (dynamic insertion,
  /// requirement 2 of Section 3). Returns the series id.
  Result<storage::SeriesId> AddSeries(std::string name,
                                      std::span<const double> values);

  /// Appends new observations to the most recently added series and indexes
  /// the windows completed by them (streaming ingestion).
  Status Append(storage::SeriesId id, std::span<const double> values);

  /// Adds many series and bulk-loads the index with STR packing - orders of
  /// magnitude faster than repeated AddSeries for large corpora.
  /// Must be called on an empty engine.
  Status BulkBuild(const std::vector<seq::TimeSeries>& corpus);

  /// Removes one window from the index (the raw values stay in the dataset).
  Status RemoveWindow(index::RecordId record);

  /// All windows S' with Q ~eps S' (Definition 1), each with its optimal
  /// (a, b), filtered by `cost`. `query` must have length == window.
  /// Results are sorted by (series, offset). `stats` may be null.
  Result<std::vector<Match>> RangeQuery(std::span<const double> query, double eps,
                                        const TransformCost& cost = {},
                                        QueryStats* stats = nullptr) const;

  /// The k nearest windows under the exact scale-shift distance
  /// (Corollary 1), via GEMINI-style multi-step search over the index's
  /// nearest-line-neighbour iterator. Results sorted by (distance, record);
  /// the record id breaks exact distance ties so the answer is a
  /// deterministic function of the indexed set — shard::ShardedEngine relies
  /// on this to merge per-shard top-k lists bit-identically. `shared_bound`,
  /// when non-null, lets concurrent sub-queries over disjoint partitions
  /// tighten each other's termination bound (see KnnSharedBound).
  Result<std::vector<Match>> Knn(std::span<const double> query, std::size_t k,
                                 const TransformCost& cost = {},
                                 QueryStats* stats = nullptr,
                                 KnnSharedBound* shared_bound = nullptr) const;

  /// Range query for queries *longer* than the window (Section 7, following
  /// [2]): the query is cut into floor(|Q|/n) disjoint length-n pieces, each
  /// searched with eps/sqrt(p); candidates are verified against the full
  /// query. Requires stride == 1. Defined in long_query.cc.
  Result<std::vector<Match>> LongRangeQuery(std::span<const double> query,
                                            double eps,
                                            const TransformCost& cost = {},
                                            QueryStats* stats = nullptr) const;

  /// Reads the raw values of the window identified by `record` (counted as
  /// data page reads).
  Result<geom::Vec> ReadWindow(index::RecordId record) const;

  const EngineConfig& config() const { return config_; }

  /// Switches the node-pruning strategy for subsequent queries (the paper's
  /// experiment sets 2 and 3 differ only in this; the benchmarks flip it on
  /// one engine instead of rebuilding the index).
  void set_prune_strategy(geom::PruneStrategy strategy) {
    config_.prune = strategy;
  }

  /// Toggles the cold-cache-per-query I/O model (see EngineConfig). With
  /// warm caching, index_page_misses in QueryStats reports the physical
  /// reads that survive the buffer pool.
  void set_cold_cache_per_query(bool cold) { config_.cold_cache_per_query = cold; }
  seq::Dataset& dataset() { return dataset_; }
  const seq::Dataset& dataset() const { return dataset_; }
  index::RTree& tree() { return *tree_; }
  const index::RTree& tree() const { return *tree_; }
  storage::BufferPool& pool() { return *pool_; }
  const storage::BufferPool& pool() const { return *pool_; }
  const reduce::Reducer& reducer() const { return *reducer_; }
  /// Number of windows covered by the index (equals the tree's entry count
  /// in point mode; in sub-trail mode one tree entry covers many windows).
  std::size_t num_indexed_windows() const { return indexed_windows_; }

  /// Plan report of the most recent *telemetry-enabled* query on this engine
  /// (one that was passed a QueryStats or ran under a trace; queries with
  /// neither are not snapshotted, keeping the instrumentation-off path free
  /// of extra work). Combines the saved QueryStats with the tree's current
  /// structural profile and the sequential-scan baseline. Thread-safe;
  /// returns NotFound before the first eligible query. Defined in explain.cc.
  Result<obs::ExplainReport> ExplainLast() const;

  /// Builds the plan report for ONE specific query from its identity and its
  /// QueryStats — the same derivation ExplainLast() applies to the engine's
  /// saved snapshot, but over stats the caller already holds. This is how
  /// the service layer assembles a flight-recorder capture without racing
  /// other workers for the engine-wide "last query" slot. Thread-safe (reads
  /// the tree's structural profile). Defined in explain.cc.
  Result<obs::ExplainReport> ExplainFromStats(const std::string& kind,
                                              double eps, std::uint64_t k,
                                              std::uint64_t elapsed_us,
                                              const QueryStats& stats) const;

  /// SE-transform + reduction of one window: the point actually indexed.
  geom::Vec ReducedPoint(std::span<const double> window) const;

  /// The query's line in the reduced SE space (through the origin).
  geom::Line ReducedQueryLine(std::span<const double> query) const;

 private:
  explicit SearchEngine(const EngineConfig& config);

  /// Snapshot of one finished query, the raw material of ExplainLast().
  struct LastQuery {
    const char* kind = "range";  ///< "range" | "knn" | "long_range"
    double eps = 0.0;
    std::uint64_t k = 0;  ///< k-NN only
    geom::PruneStrategy prune = geom::PruneStrategy::kEepOnly;
    std::uint64_t elapsed_us = 0;
    QueryStats stats;
  };

  /// Saves the snapshot for ExplainLast(). Called from the const query
  /// methods only when telemetry was collected, so the mutex is off the
  /// instrumentation-disabled path entirely.
  void RecordLastQuery(const LastQuery& last) const TSSS_EXCLUDES(last_query_mu_);

  Status IndexWindows(storage::SeriesId id, std::size_t first_offset);
  Status IndexWindowsTrail(storage::SeriesId id, std::size_t first_offset);
  /// Builds the MBR over the reduced points of windows with indices
  /// [first_widx, last_widx] (inclusive, in stride units) of `values`.
  geom::Mbr TrailBox(std::span<const double> values, std::size_t first_widx,
                     std::size_t last_widx) const;
  /// Expands a leaf candidate to the window offsets it stands for (one in
  /// point mode, up to subtrail_len in trail mode).
  Status ExpandCandidate(index::RecordId record,
                         std::vector<index::RecordId>* out) const;
  /// Per-query setup (cold-cache drop when configured). Fails when the pool
  /// cannot be cleared — a silent failure here would quietly turn cold-cache
  /// measurements into warm-cache ones.
  Status BeginQuery() const;

  EngineConfig config_;
  std::unique_ptr<reduce::Reducer> reducer_;
  seq::Dataset dataset_;
  std::unique_ptr<storage::PageStore> page_store_;
  /// Non-null alias of page_store_ when file-backed (for Sync()).
  storage::FilePageStore* file_store_ = nullptr;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<index::RTree> tree_;
  std::size_t indexed_windows_ = 0;

  /// mutable: recording the last query is observability, not logical
  /// mutation, and happens on the const query path.
  mutable Mutex last_query_mu_;
  mutable std::optional<LastQuery> last_query_ TSSS_GUARDED_BY(last_query_mu_);
};

}  // namespace tsss::core

#endif  // TSSS_CORE_ENGINE_H_
