#include "tsss/core/oracle.h"

#include <algorithm>
#include <cmath>

#include "tsss/geom/vec.h"

namespace tsss::core {

double TransformedDistance(std::span<const double> u, std::span<const double> v,
                           const geom::ScaleShift& transform) {
  double acc = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double d = transform.scale * u[i] + transform.offset - v[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double GridMinDistance(std::span<const double> u, std::span<const double> v,
                       double min_scale, double max_scale, double min_offset,
                       double max_offset, std::size_t steps) {
  double best = std::numeric_limits<double>::infinity();
  const double denom = static_cast<double>(steps - 1);
  for (std::size_t i = 0; i < steps; ++i) {
    const double a =
        min_scale + (max_scale - min_scale) * static_cast<double>(i) / denom;
    for (std::size_t j = 0; j < steps; ++j) {
      const double b =
          min_offset + (max_offset - min_offset) * static_cast<double>(j) / denom;
      best = std::min(best, TransformedDistance(u, v, geom::ScaleShift{a, b}));
    }
  }
  return best;
}

}  // namespace tsss::core
