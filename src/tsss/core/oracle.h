#ifndef TSSS_CORE_ORACLE_H_
#define TSSS_CORE_ORACLE_H_

#include <span>

#include "tsss/geom/scale_shift.h"

namespace tsss::core {

/// Test oracles: slow, obviously-correct implementations of the paper's
/// definitions used to validate the fast geometric ones. Not for production
/// use (this is exactly the "brute-force checking for the scaling factors
/// and the shifting offsets" Section 1 says a real system must avoid).

/// min ||a*u + b*N - v|| over an (a, b) grid of `steps` x `steps` samples in
/// [min_scale, max_scale] x [min_offset, max_offset]. Always an upper bound
/// on the true minimum; converges to it as steps grows.
double GridMinDistance(std::span<const double> u, std::span<const double> v,
                       double min_scale, double max_scale, double min_offset,
                       double max_offset, std::size_t steps);

/// ||F_{a,b}(u) - v|| evaluated literally from Definition 1.
double TransformedDistance(std::span<const double> u, std::span<const double> v,
                           const geom::ScaleShift& transform);

}  // namespace tsss::core

#endif  // TSSS_CORE_ORACLE_H_
