#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <string>
#include <unordered_set>

#include "tsss/common/exec_control.h"
#include "tsss/core/engine.h"
#include "tsss/obs/metrics.h"
#include "tsss/obs/trace.h"
#include "tsss/seq/window.h"
#include "tsss/storage/query_counters.h"

namespace tsss::core {

// Long-query processing (paper, Section 7, following Faloutsos et al. [2]):
//
// Cut the query Q (|Q| = L > n) into p = floor(L/n) disjoint length-n
// pieces. If some window S' of length L satisfies ||a*Q + b*N - S'|| <= eps
// for the *globally* optimal (a, b), then summing the squared residuals over
// the p pieces shows at least one piece has Euclidean residual <= eps/sqrt(p)
// under that same (a, b); since the per-piece *optimal* scale-shift distance
// can only be smaller, searching every piece with bound eps/sqrt(p) misses
// no qualifying window. Each piece hit at (series, piece_offset) proposes
// the full-window candidate offset piece_offset - i*n, which is verified
// exactly against the whole query.
Result<std::vector<Match>> SearchEngine::LongRangeQuery(
    std::span<const double> query, double eps, const TransformCost& cost,
    QueryStats* stats) const {
  const std::size_t n = config_.window;
  if (query.size() <= n) {
    return Status::InvalidArgument(
        "LongRangeQuery requires |query| > window; use RangeQuery");
  }
  if (config_.stride != 1) {
    return Status::FailedPrecondition(
        "LongRangeQuery requires stride == 1 so that every alignment of every "
        "piece is indexed");
  }
  if (eps < 0.0) return Status::InvalidArgument("eps must be non-negative");

  const std::size_t total = query.size();
  const std::size_t pieces = total / n;
  const double piece_eps = eps / std::sqrt(static_cast<double>(pieces));

  if (Status begin = BeginQuery(); !begin.ok()) return begin;
  storage::QueryCounters counters;
  storage::ScopedQueryCounters scoped_counters(&counters);

  obs::QueryTelemetry telemetry;
  std::optional<obs::ScopedQueryTelemetry> scoped_telemetry;
  std::chrono::steady_clock::time_point query_start;
  std::uint64_t cpu_start_us = 0;
  if (stats != nullptr || obs::CurrentQueryTrace() != nullptr) {
    scoped_telemetry.emplace(&telemetry);
    query_start = std::chrono::steady_clock::now();
    cpu_start_us = obs::ThreadCpuNowUs();
  }
  obs::TraceSpan query_span("long_range_query");
  query_span.Annotate("pieces", pieces);

  geom::PenetrationStats pen;
  std::unordered_set<index::RecordId> candidate_records;
  std::uint64_t raw_candidates = 0;
  for (std::size_t i = 0; i < pieces; ++i) {
    obs::TraceSpan piece_span("piece_search");
    piece_span.Annotate("piece", i);
    const std::span<const double> piece = query.subspan(i * n, n);
    const geom::Line line = ReducedQueryLine(piece);
    Result<std::vector<index::LineMatch>> hits =
        tree_->LineQuery(line, piece_eps, config_.prune, &pen);
    if (!hits.ok()) return hits.status();
    raw_candidates += hits->size();
    std::vector<index::RecordId> expanded;
    for (const index::LineMatch& hit : *hits) {
      expanded.clear();
      Status es = ExpandCandidate(hit.record, &expanded);
      if (!es.ok()) return es;
      for (const index::RecordId record : expanded) {
        const storage::SeriesId series = seq::SeriesOf(record);
        const std::uint64_t piece_offset = seq::OffsetOf(record);
        // The full window would start i*n values earlier.
        if (piece_offset < i * n) continue;
        const std::uint64_t start = piece_offset - i * n;
        Result<std::size_t> len = dataset_.store().SeriesLength(series);
        if (!len.ok()) return len.status();
        if (start + total > *len) continue;
        candidate_records.insert(
            seq::MakeRecordId(series, static_cast<std::uint32_t>(start)));
      }
    }
  }

  const QueryContext ctx(query);
  obs::TraceSpan verify_span("verify");
  std::vector<index::RecordId> ordered(candidate_records.begin(),
                                       candidate_records.end());
  std::sort(ordered.begin(), ordered.end());
  std::vector<Match> matches;
  geom::Vec window(total);
  std::size_t last_counted_page = storage::SequenceStore::kNoPageCounted;
  for (index::RecordId record : ordered) {
    // Piece queries poll inside LineQuery; this verify loop reads data
    // pages directly and must poll on its own (tsss_lint: deadline-poll).
    Status s = PollExecControl();
    if (!s.ok()) return s;
    s = dataset_.store().ReadWindowDeduped(
        seq::SeriesOf(record), seq::OffsetOf(record), window, &last_counted_page);
    if (!s.ok()) return s;
    std::optional<Match> match = VerifyCandidate(ctx, window, record, eps, cost);
    if (match.has_value()) matches.push_back(*match);
  }
  verify_span.Annotate("candidates", ordered.size());
  verify_span.Annotate("matches", matches.size());
  verify_span.Close();

  obs::QueryCost query_cost;
  if (scoped_telemetry.has_value()) {
    FillPruneTelemetry(pen, &telemetry);
    telemetry.candidates_postfiltered = ordered.size() - matches.size();
    obs::AnnotateSpan(&query_span, telemetry);
    query_cost = BuildQueryCost(cpu_start_us, counters, ordered.size());
    LastQuery last;
    last.kind = "long_range";
    last.eps = eps;
    last.prune = config_.prune;
    last.elapsed_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - query_start)
            .count());
    last.stats.index_page_reads = counters.pool_logical_reads;
    last.stats.index_page_misses = counters.pool_misses;
    last.stats.data_page_reads = counters.data_page_reads;
    last.stats.candidates = raw_candidates;
    last.stats.matches = matches.size();
    last.stats.penetration = pen;
    last.stats.telemetry = telemetry;
    last.stats.cost = query_cost;
    RecordLastQuery(last);
  }
  static obs::Counter* const long_queries =
      obs::MetricsRegistry::Global().GetCounter(
          "tsss_long_queries_total",
          "Long (multi-piece) range queries executed");
  long_queries->Inc();

  if (stats != nullptr) {
    stats->index_page_reads = counters.pool_logical_reads;
    stats->index_page_misses = counters.pool_misses;
    stats->data_page_reads = counters.data_page_reads;
    stats->candidates = raw_candidates;
    stats->matches = matches.size();
    stats->penetration = pen;
    stats->telemetry = telemetry;
    stats->cost = query_cost;
  }
  return matches;
}

}  // namespace tsss::core
