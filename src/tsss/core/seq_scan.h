#ifndef TSSS_CORE_SEQ_SCAN_H_
#define TSSS_CORE_SEQ_SCAN_H_

#include <vector>

#include "tsss/core/similarity.h"
#include "tsss/seq/dataset.h"

namespace tsss::core {

/// The paper's experiment-set-1 baseline: "the time series data are read
/// sequentially and the distance from the query sequence is computed by
/// Lemma 2" - no index, every window of every series examined per query.
///
/// CPU cost is constant in eps (every window is always touched); page cost
/// is one full scan of the data (~1300 pages at the paper's scale).
class SequentialScanner {
 public:
  /// `dataset` must outlive the scanner. `window` is the subsequence length.
  SequentialScanner(seq::Dataset* dataset, std::size_t window, std::size_t stride = 1);

  /// All windows with Q ~eps S', with optimal (a, b), filtered by cost.
  /// Accounts a full scan on the dataset's page counters.
  Result<std::vector<Match>> RangeQuery(std::span<const double> query, double eps,
                                        const TransformCost& cost = {}) const;

  /// Exact k nearest windows by full scan (reference for engine Knn).
  Result<std::vector<Match>> Knn(std::span<const double> query, std::size_t k,
                                 const TransformCost& cost = {}) const;

 private:
  seq::Dataset* dataset_;
  std::size_t window_;
  std::size_t stride_;
};

}  // namespace tsss::core

#endif  // TSSS_CORE_SEQ_SCAN_H_
