#ifndef TSSS_CORE_POSTPROCESS_H_
#define TSSS_CORE_POSTPROCESS_H_

#include <cstddef>
#include <vector>

#include "tsss/core/similarity.h"

namespace tsss::core {

/// Result post-processing helpers. A sliding-window index with stride 1
/// reports every alignment of a matching region, so one underlying event
/// yields a run of near-identical matches at consecutive offsets; these
/// utilities condense such runs for presentation and ranking.

/// Collapses runs of matches of the same series whose offsets are closer
/// than `min_separation`, keeping the smallest-distance representative of
/// each run. Input order does not matter; output is sorted by
/// (series, offset). With min_separation == 0 the input is returned (sorted).
std::vector<Match> SuppressOverlaps(std::vector<Match> matches,
                                    std::uint32_t min_separation);

/// Keeps only the single best (smallest-distance) match per series,
/// sorted by distance.
std::vector<Match> BestPerSeries(std::vector<Match> matches);

/// The k smallest-distance matches, sorted by distance. k >= size is a
/// plain sort.
std::vector<Match> TopK(std::vector<Match> matches, std::size_t k);

}  // namespace tsss::core

#endif  // TSSS_CORE_POSTPROCESS_H_
