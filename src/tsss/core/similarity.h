#ifndef TSSS_CORE_SIMILARITY_H_
#define TSSS_CORE_SIMILARITY_H_

#include <limits>
#include <optional>
#include <span>

#include "tsss/geom/scale_shift.h"
#include "tsss/geom/vec.h"
#include "tsss/index/node.h"
#include "tsss/storage/sequence_store.h"

namespace tsss::core {

/// User-specified bounds on the transformation cost (paper, Section 3: "the
/// ranges of a and b can be regarded as the cost of the scaling and shifting
/// transformations and the maximum cost allowed can be specified by the
/// user"). Defaults allow everything.
struct TransformCost {
  double min_scale = -std::numeric_limits<double>::infinity();
  double max_scale = std::numeric_limits<double>::infinity();
  double min_offset = -std::numeric_limits<double>::infinity();
  double max_offset = std::numeric_limits<double>::infinity();

  bool Allows(const geom::ScaleShift& t) const {
    return t.scale >= min_scale && t.scale <= max_scale &&
           t.offset >= min_offset && t.offset <= max_offset;
  }

  /// Positive scaling only - "same trend" in the stock-analysis sense.
  static TransformCost PositiveScale() {
    TransformCost c;
    c.min_scale = 0.0;
    return c;
  }
};

/// A verified query answer: which window matched, how far it is after the
/// optimal transformation, and the transformation itself (the paper requires
/// reporting a and b with every result).
struct Match {
  index::RecordId record = 0;
  storage::SeriesId series = 0;
  std::uint32_t offset = 0;
  double distance = 0.0;  ///< min_{a,b} ||a*Q + b*N - S'|| (exact, full dim)
  geom::ScaleShift transform;
};

/// Precomputed per-query state for evaluating the exact scale-shift distance
/// against many windows in O(n) each with no allocation.
///
/// For query u and window v, with use = T_se(u):
///   <T_se(u), T_se(v)> == <use, v>                  (since sum(use) == 0)
///   ||T_se(v)||^2      == sum v^2 - n * mean(v)^2
///   a  = <use, v> / ||use||^2
///   b  = mean(v) - a * mean(u)
///   d^2 = ||T_se(v)||^2 - a^2 * ||use||^2
class QueryContext {
 public:
  /// Requires a non-empty query.
  explicit QueryContext(std::span<const double> query);

  std::size_t n() const { return use_.size(); }
  const geom::Vec& query() const { return query_; }
  const geom::Vec& se() const { return use_; }
  double se_norm_squared() const { return uu_; }
  bool constant_query() const { return uu_ <= 0.0; }

  /// Optimal alignment of the query onto `window` (size n). Identical to
  /// geom::AlignScaleShift(query, window) but allocation-free.
  geom::Alignment Align(std::span<const double> window) const;

  /// Exact distance only (slightly cheaper call sites).
  double Distance(std::span<const double> window) const {
    return Align(window).distance;
  }

 private:
  geom::Vec query_;
  geom::Vec use_;  ///< T_se(query)
  double uu_;      ///< ||use||^2
  double q_mean_;
};

/// Verifies one candidate window against the query: exact distance, error
/// bound, and cost constraints (the paper's post-processing step).
/// Returns nullopt when the candidate is a false alarm.
std::optional<Match> VerifyCandidate(const QueryContext& ctx,
                                     std::span<const double> window,
                                     index::RecordId record, double eps,
                                     const TransformCost& cost);

}  // namespace tsss::core

#endif  // TSSS_CORE_SIMILARITY_H_
