#include "tsss/obs/explain.h"

#include <cstdio>

#include "tsss/obs/trace.h"

namespace tsss::obs {

namespace {

/// %-of-total with one decimal; "-" when the universe is empty.
std::string Pct(std::uint64_t part, std::uint64_t total) {
  char buf[32];
  if (total == 0) {
    std::snprintf(buf, sizeof(buf), "%7s", "-");
  } else {
    std::snprintf(buf, sizeof(buf), "%6.1f%%",
                  100.0 * static_cast<double>(part) /
                      static_cast<double>(total));
  }
  return buf;
}

void Row(std::string* out, const char* label, std::uint64_t value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  %-26s %10llu\n", label,
                static_cast<unsigned long long>(value));
  *out += buf;
}

void RowPct(std::string* out, const char* label, std::uint64_t value,
            std::uint64_t total) {
  char buf[112];
  std::snprintf(buf, sizeof(buf), "  %-26s %10llu  %s\n", label,
                static_cast<unsigned long long>(value), Pct(value, total).c_str());
  *out += buf;
}

void AppendU64(std::string* out, const char* key, std::uint64_t v,
               bool* first) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", *first ? "" : ",", key,
                static_cast<unsigned long long>(v));
  *first = false;
  *out += buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

bool explain_accounted(const ExplainReport& r) {
  return r.entries_tested == r.ep_prunes + r.bs_prunes + r.exact_prunes +
                                 r.descents + r.accepted_leaf_entries;
}

ExplainReport MergeExplainReports(const std::vector<ExplainReport>& parts) {
  ExplainReport merged;
  if (parts.empty()) return merged;

  // Query identity: the fan-out issues the same logical query to every
  // partition, so the first part speaks for all of them.
  merged.kind = parts.front().kind;
  merged.eps = parts.front().eps;
  merged.k = parts.front().k;
  merged.prune_strategy = parts.front().prune_strategy;

  for (const ExplainReport& part : parts) {
    if (part.elapsed_us > merged.elapsed_us) merged.elapsed_us = part.elapsed_us;
    if (part.tree_height > merged.tree_height) {
      merged.tree_height = part.tree_height;
    }
    if (part.levels.size() > merged.levels.size()) {
      std::size_t old = merged.levels.size();
      merged.levels.resize(part.levels.size());
      for (std::size_t i = old; i < merged.levels.size(); ++i) {
        merged.levels[i].level = i;
      }
    }
    for (std::size_t i = 0; i < part.levels.size(); ++i) {
      merged.levels[i].visited += part.levels[i].visited;
      merged.levels[i].total += part.levels[i].total;
    }

    merged.tree_nodes += part.tree_nodes;
    merged.nodes_visited += part.nodes_visited;
    merged.entries_tested += part.entries_tested;
    merged.ep_prunes += part.ep_prunes;
    merged.bs_prunes += part.bs_prunes;
    merged.exact_prunes += part.exact_prunes;
    merged.descents += part.descents;
    merged.accepted_leaf_entries += part.accepted_leaf_entries;
    merged.mbr_distance_evals += part.mbr_distance_evals;

    merged.indexed_windows += part.indexed_windows;
    merged.leaf_candidates += part.leaf_candidates;
    merged.candidates += part.candidates;
    merged.postfiltered += part.postfiltered;
    merged.matches += part.matches;

    merged.index_page_reads += part.index_page_reads;
    merged.index_page_hits += part.index_page_hits;
    merged.index_page_misses += part.index_page_misses;
    merged.data_page_reads += part.data_page_reads;

    merged.seq_scan_pages += part.seq_scan_pages;

    // Cost sums linearly too; cpu_us is the total CPU burned across all
    // partitions, which can exceed elapsed_us (they ran concurrently).
    merged.cost += part.cost;
  }
  return merged;
}

void FillExplainPhases(const QueryTrace& trace, ExplainReport* report) {
  report->phases.clear();
  report->phases.reserve(trace.events().size());
  for (const TraceEvent& event : trace.events()) {
    ExplainPhaseRow row;
    row.name = event.name;
    row.depth = event.depth;
    row.dur_us = event.dur_us;
    report->phases.push_back(std::move(row));
  }
}

std::string RenderExplainText(const ExplainReport& r) {
  std::string out;
  char buf[160];

  std::snprintf(buf, sizeof(buf), "EXPLAIN %s query (eps=%.4g", r.kind.c_str(),
                r.eps);
  out += buf;
  if (r.k > 0) {
    std::snprintf(buf, sizeof(buf), ", k=%llu",
                  static_cast<unsigned long long>(r.k));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), ", prune=%s)\nelapsed: %llu us\n\n",
                r.prune_strategy.c_str(),
                static_cast<unsigned long long>(r.elapsed_us));
  out += buf;

  std::snprintf(buf, sizeof(buf), "index walk %28s %9s\n", "visited", "total");
  out += buf;
  for (auto it = r.levels.rbegin(); it != r.levels.rend(); ++it) {
    const char* tag =
        it->level + 1 == r.tree_height ? " (root)"
        : it->level == 0               ? " (leaves)"
                                       : "";
    char label[48];
    std::snprintf(label, sizeof(label), "level %zu%s", it->level, tag);
    std::snprintf(buf, sizeof(buf), "  %-26s %10llu %9llu\n", label,
                  static_cast<unsigned long long>(it->visited),
                  static_cast<unsigned long long>(it->total));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  %-26s %10llu %9llu\n", "nodes",
                static_cast<unsigned long long>(r.nodes_visited),
                static_cast<unsigned long long>(r.tree_nodes));
  out += buf;

  out += "\nprune waterfall";
  std::snprintf(buf, sizeof(buf), " %23s %12s\n", "count", "of tested");
  out += buf;
  RowPct(&out, "entries tested", r.entries_tested, r.entries_tested);
  RowPct(&out, "EP pruned", r.ep_prunes, r.entries_tested);
  RowPct(&out, "BS pruned", r.bs_prunes, r.entries_tested);
  RowPct(&out, "exact pruned", r.exact_prunes, r.entries_tested);
  RowPct(&out, "descended (internal)", r.descents, r.entries_tested);
  RowPct(&out, "accepted (leaf entries)", r.accepted_leaf_entries,
         r.entries_tested);
  Row(&out, "MBR distance evals", r.mbr_distance_evals);

  out += "\ncandidate funnel\n";
  Row(&out, "indexed windows", r.indexed_windows);
  Row(&out, "index survivors", r.leaf_candidates);
  Row(&out, "candidates verified", r.candidates);
  Row(&out, "post-filtered", r.postfiltered);
  Row(&out, "matches", r.matches);

  out += "\nbuffer pool\n";
  std::snprintf(buf, sizeof(buf),
                "  %-26s %10llu  (hits %llu, misses %llu)\n",
                "index page reads",
                static_cast<unsigned long long>(r.index_page_reads),
                static_cast<unsigned long long>(r.index_page_hits),
                static_cast<unsigned long long>(r.index_page_misses));
  out += buf;
  Row(&out, "data page reads", r.data_page_reads);

  const std::uint64_t total_pages = r.index_page_reads + r.data_page_reads;
  out += "\nspeedup attribution\n";
  Row(&out, "sequential scan (pages)", r.seq_scan_pages);
  if (total_pages > 0) {
    std::snprintf(buf, sizeof(buf), "  %-26s %10llu  (%.2fx vs scan)\n",
                  "this query (pages)",
                  static_cast<unsigned long long>(total_pages),
                  static_cast<double>(r.seq_scan_pages) /
                      static_cast<double>(total_pages));
    out += buf;
  } else {
    Row(&out, "this query (pages)", total_pages);
  }

  out += "\ncost\n";
  Row(&out, "thread CPU (us)", r.cost.cpu_us);
  std::snprintf(buf, sizeof(buf),
                "  %-26s %10llu  (hit %llu, miss %llu)\n", "index pages",
                static_cast<unsigned long long>(r.cost.pages_hit +
                                                r.cost.pages_miss),
                static_cast<unsigned long long>(r.cost.pages_hit),
                static_cast<unsigned long long>(r.cost.pages_miss));
  out += buf;
  Row(&out, "data pages", r.cost.data_pages);
  Row(&out, "bytes touched", r.cost.bytes_touched);
  Row(&out, "candidates verified", r.cost.candidates_verified);

  if (!r.phases.empty()) {
    out += "\nphases";
    std::snprintf(buf, sizeof(buf), " %32s\n", "dur_us");
    out += buf;
    for (const ExplainPhaseRow& phase : r.phases) {
      char label[64];
      std::snprintf(label, sizeof(label), "%*s%s", 2 * phase.depth, "",
                    phase.name.c_str());
      std::snprintf(buf, sizeof(buf), "  %-26s %10llu\n", label,
                    static_cast<unsigned long long>(phase.dur_us));
      out += buf;
    }
  }
  return out;
}

std::string RenderExplainJson(const ExplainReport& r) {
  std::string out = "{\"schema_version\":1,\"report\":\"explain\",";
  char buf[160];

  std::snprintf(buf, sizeof(buf),
                "\"query\":{\"kind\":\"%s\",\"eps\":%.9g,\"k\":%llu,"
                "\"prune\":\"%s\",\"elapsed_us\":%llu},",
                EscapeJson(r.kind).c_str(), r.eps,
                static_cast<unsigned long long>(r.k),
                EscapeJson(r.prune_strategy).c_str(),
                static_cast<unsigned long long>(r.elapsed_us));
  out += buf;

  out += "\"totals\":{";
  bool first = true;
  AppendU64(&out, "tree_height", r.tree_height, &first);
  AppendU64(&out, "tree_nodes", r.tree_nodes, &first);
  AppendU64(&out, "nodes_visited", r.nodes_visited, &first);
  AppendU64(&out, "entries_tested", r.entries_tested, &first);
  AppendU64(&out, "ep_prunes", r.ep_prunes, &first);
  AppendU64(&out, "bs_prunes", r.bs_prunes, &first);
  AppendU64(&out, "exact_prunes", r.exact_prunes, &first);
  AppendU64(&out, "descents", r.descents, &first);
  AppendU64(&out, "accepted_leaf_entries", r.accepted_leaf_entries, &first);
  AppendU64(&out, "mbr_distance_evals", r.mbr_distance_evals, &first);
  AppendU64(&out, "indexed_windows", r.indexed_windows, &first);
  AppendU64(&out, "leaf_candidates", r.leaf_candidates, &first);
  AppendU64(&out, "candidates", r.candidates, &first);
  AppendU64(&out, "postfiltered", r.postfiltered, &first);
  AppendU64(&out, "matches", r.matches, &first);
  out += "},";

  out += "\"levels\":[";
  for (std::size_t i = 0; i < r.levels.size(); ++i) {
    if (i > 0) out += ",";
    std::snprintf(buf, sizeof(buf),
                  "{\"level\":%zu,\"visited\":%llu,\"total\":%llu}",
                  r.levels[i].level,
                  static_cast<unsigned long long>(r.levels[i].visited),
                  static_cast<unsigned long long>(r.levels[i].total));
    out += buf;
  }
  out += "],";

  out += "\"io\":{";
  first = true;
  AppendU64(&out, "index_page_reads", r.index_page_reads, &first);
  AppendU64(&out, "index_page_hits", r.index_page_hits, &first);
  AppendU64(&out, "index_page_misses", r.index_page_misses, &first);
  AppendU64(&out, "data_page_reads", r.data_page_reads, &first);
  out += "},";

  out += "\"baseline\":{";
  first = true;
  AppendU64(&out, "seq_scan_pages", r.seq_scan_pages, &first);
  AppendU64(&out, "query_pages", r.index_page_reads + r.data_page_reads,
            &first);
  out += "},";

  out += "\"cost\":{";
  first = true;
  AppendU64(&out, "cpu_us", r.cost.cpu_us, &first);
  AppendU64(&out, "pages_hit", r.cost.pages_hit, &first);
  AppendU64(&out, "pages_miss", r.cost.pages_miss, &first);
  AppendU64(&out, "data_pages", r.cost.data_pages, &first);
  AppendU64(&out, "bytes_touched", r.cost.bytes_touched, &first);
  AppendU64(&out, "candidates_verified", r.cost.candidates_verified, &first);
  out += "},";

  out += "\"phases\":[";
  for (std::size_t i = 0; i < r.phases.size(); ++i) {
    if (i > 0) out += ",";
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"depth\":%d,\"dur_us\":%llu}",
                  EscapeJson(r.phases[i].name).c_str(), r.phases[i].depth,
                  static_cast<unsigned long long>(r.phases[i].dur_us));
    out += buf;
  }
  out += "]}\n";
  return out;
}

}  // namespace tsss::obs
