#ifndef TSSS_OBS_PROFILER_H_
#define TSSS_OBS_PROFILER_H_

#include <signal.h>
#include <sys/time.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tsss/common/status.h"

namespace tsss::obs {

/// CPU attributed to one query phase (a TraceSpan name, via the thread-local
/// PhaseStack mirror). "(untagged)" collects samples taken outside any span.
struct ProfilePhase {
  std::string name;
  std::uint64_t samples = 0;
};

/// One unique call stack, leaf-last ("outer;inner;leaf"), with its sample
/// count — the flamegraph folded format.
struct ProfileStack {
  std::string stack;
  std::uint64_t samples = 0;
};

/// Aggregated result of one profiling run.
struct Profile {
  int hz = 0;
  double seconds = 0.0;
  std::uint64_t samples = 0;  ///< committed samples (== sum over phases)
  std::uint64_t dropped = 0;  ///< signals that found the ring full
  /// Per-phase attribution, descending by samples. The counts sum exactly to
  /// `samples`: every sample lands in exactly one phase (or "(untagged)").
  std::vector<ProfilePhase> phases;
  /// Unique folded stacks, descending by samples.
  std::vector<ProfileStack> folded;

  /// flamegraph.pl / speedscope input: one "a;b;c N" line per unique stack.
  std::string ToFolded() const;
  /// Schema-v1 JSON ({"schema_version":1,"report":"profile",...}); validated
  /// by tools/bench_schema_check --schema profile, served as /pprofz.
  std::string ToJson() const;
};

/// In-process sampling CPU profiler: setitimer(ITIMER_PROF) delivers SIGPROF
/// to whichever thread is burning CPU; the handler claims a slot in a
/// preallocated lock-free ring, records the thread's active phase (one
/// thread-local read — zero symbolization) and its call stack, and commits
/// the slot. Stop() aggregates the ring into a Profile, symbolizing with
/// dladdr + __cxa_demangle outside signal context.
///
/// Signal safety: the handler touches only the ring (relaxed/release
/// atomics, no allocation), the constant-initialized PhaseStack
/// thread-local, and the stack walk. The walk follows the frame-pointer
/// chain (the build keeps frame pointers precisely for this; see the root
/// CMakeLists) and falls back to backtrace() — warmed up in Start() so its
/// lazy libgcc initialization cannot run inside a handler — when the chain
/// is too short (foreign code compiled without frame pointers).
///
/// One profiler may run per process (ITIMER_PROF is process-wide); Start()
/// fails with FailedPrecondition when another instance is active. Start and
/// Stop are idempotent. Instances are not thread-safe: Start/Stop/accessors
/// are driven by one controlling thread (the CLI main thread or the debug
/// server's accept thread), only the SIGPROF handler runs elsewhere.
class SamplingProfiler {
 public:
  struct Options {
    /// Sampling frequency. Prime by default so the sampler cannot phase-lock
    /// with periodic work. Clamped to [1, 1000].
    int hz = 97;
    /// Preallocated sample capacity; once full, further samples are counted
    /// as dropped. 8192 slots hold ~84 s at the default rate.
    std::size_t ring_slots = 8192;
  };
  static constexpr int kMaxFrames = 32;

  SamplingProfiler();  ///< default Options
  explicit SamplingProfiler(Options options);
  ~SamplingProfiler();  ///< Stop()

  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  /// Installs the SIGPROF handler and starts the profiling timer. Returns
  /// OK when already running (idempotent); FailedPrecondition when a
  /// different profiler instance is active in this process.
  [[nodiscard]] Status Start();

  /// Stops the timer, restores the previous handler, and aggregates the
  /// ring. Idempotent: when not running, returns the last aggregated
  /// profile (empty if Start() never ran).
  Profile Stop();

  bool running() const { return running_; }
  /// Samples committed to the ring so far (live while running).
  std::uint64_t captured() const;
  /// Samples lost to ring saturation so far.
  std::uint64_t dropped() const;

  const Options& options() const { return options_; }

 private:
  struct Sample {
    std::atomic<std::uint32_t> committed{0};
    std::uint32_t num_frames = 0;
    const char* phase = nullptr;  ///< string literal from the phase mirror
    void* frames[kMaxFrames];
  };

  static void SignalHandler(int signo, siginfo_t* info, void* ucontext);
  void OnSignal(void* ucontext);
  Profile Aggregate(double seconds) const;

  const Options options_;
  std::unique_ptr<Sample[]> ring_;
  /// Next slot to claim; values >= ring_slots mean the ring is full and the
  /// excess is the drop count.
  std::atomic<std::uint64_t> head_{0};
  bool running_ = false;
  std::chrono::steady_clock::time_point started_at_;
  Profile last_;
  struct sigaction prev_action_ {};
  struct itimerval prev_timer_ {};
};

}  // namespace tsss::obs

#endif  // TSSS_OBS_PROFILER_H_
