#include "tsss/obs/histogram.h"

#include <algorithm>
#include <bit>

namespace tsss::obs {

std::size_t LatencyHistogram::BucketFor(std::uint64_t us) {
  if (us < 16) return static_cast<std::size_t>(us);
  const unsigned log2 = static_cast<unsigned>(std::bit_width(us)) - 1u;
  const std::uint64_t frac = (us >> (log2 - 2u)) & 3u;
  const std::size_t index =
      16 + static_cast<std::size_t>(log2 - 4u) * 4 +
      static_cast<std::size_t>(frac);
  return std::min(index, kNumBuckets - 1);
}

std::uint64_t LatencyHistogram::BucketFloorUs(std::size_t index) {
  if (index < 16) return index;
  const std::size_t rest = index - 16;
  const unsigned octave = 4u + static_cast<unsigned>(rest / 4);
  const std::uint64_t frac = rest % 4;
  return (std::uint64_t{1} << octave) +
         frac * (std::uint64_t{1} << (octave - 2u));
}

void LatencyHistogram::Record(std::chrono::microseconds latency) {
  RecordUs(latency.count() < 0 ? 0
                               : static_cast<std::uint64_t>(latency.count()));
}

void LatencyHistogram::RecordUs(std::uint64_t us) {
  // relaxed-ok: hot-path sample tally; observers tolerate torn bucket/sum
  buckets_[BucketFor(us)].fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);  // relaxed-ok: same tally
}

std::uint64_t LatencyHistogram::Count() const {
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    // relaxed-ok: advisory snapshot; exactness across buckets not promised
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t LatencyHistogram::SumUs() const {
  // relaxed-ok: advisory statistic read
  return sum_us_.load(std::memory_order_relaxed);
}

void LatencyHistogram::Reset() {
  for (auto& bucket : buckets_) {
    // relaxed-ok: rotation wipe; concurrent records on the edge are advisory
    bucket.store(0, std::memory_order_relaxed);
  }
  sum_us_.store(0, std::memory_order_relaxed);  // relaxed-ok: same wipe
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    // relaxed-ok: merge of advisory tallies, both sides tolerate skew
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);  // relaxed-ok: tally
  }
  // relaxed-ok: same advisory merge as the buckets above
  const std::uint64_t sum = other.sum_us_.load(std::memory_order_relaxed);
  if (sum != 0) sum_us_.fetch_add(sum, std::memory_order_relaxed);  // relaxed-ok: tally
}

double LatencyHistogram::PercentileMs(double q) const {
  std::array<std::uint64_t, kNumBuckets> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    // relaxed-ok: percentile over an advisory snapshot
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample (1-based, nearest-rank definition).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      return static_cast<double>(BucketFloorUs(i)) / 1000.0;
    }
  }
  return static_cast<double>(BucketFloorUs(kNumBuckets - 1)) / 1000.0;
}

}  // namespace tsss::obs
