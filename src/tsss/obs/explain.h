#ifndef TSSS_OBS_EXPLAIN_H_
#define TSSS_OBS_EXPLAIN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tsss/obs/cost.h"

namespace tsss::obs {

class QueryTrace;

/// Node visits at one tree level set against the tree's actual shape.
struct ExplainLevelRow {
  std::size_t level = 0;      ///< 0 = leaves, height-1 = root
  std::uint64_t visited = 0;  ///< nodes loaded at this level by the query
  std::uint64_t total = 0;    ///< nodes the tree has at this level
};

/// One timed phase copied from the query's trace spans.
struct ExplainPhaseRow {
  std::string name;
  int depth = 0;  ///< span nesting depth (root spans are 0)
  std::uint64_t dur_us = 0;
};

/// A completed query's plan report: how the index walk disposed of every
/// entry it tested, what the candidate funnel looked like, and what I/O it
/// cost, against the tree's shape and a sequential-scan baseline.
///
/// Pure data; assembled by core::SearchEngine::ExplainLast() (plus
/// FillExplainPhases for the trace part) and rendered by the functions below.
/// Kept free of engine/index includes so obs/ stays the bottom layer.
struct ExplainReport {
  // --- query identity ---
  std::string kind;            ///< "range" | "knn" | "long_range"
  double eps = 0.0;
  std::uint64_t k = 0;         ///< k-NN only
  std::string prune_strategy;  ///< "eep" | "spheres" | "exact"
  std::uint64_t elapsed_us = 0;

  // --- traversal vs. tree shape ---
  std::size_t tree_height = 0;
  std::uint64_t tree_nodes = 0;
  std::uint64_t nodes_visited = 0;
  std::vector<ExplainLevelRow> levels;  ///< [0] = leaves

  // --- prune waterfall ---
  // Universe: every MBR penetration test the walk performed. Identity
  // (checked by explain_accounted() and the oracle tests):
  //   entries_tested == ep_prunes + bs_prunes + exact_prunes
  //                     + descents + accepted_leaf_entries
  std::uint64_t entries_tested = 0;
  std::uint64_t ep_prunes = 0;     ///< entering/exiting-point slab rejects
  std::uint64_t bs_prunes = 0;     ///< bounding-sphere outer rejects
  std::uint64_t exact_prunes = 0;  ///< exact line-MBR distance rejects
  std::uint64_t descents = 0;      ///< internal entries accepted (descended)
  /// Leaf entries accepted *by a penetration test* (box-leaf mode; 0 in
  /// point mode, where leaf points are screened by PLD instead).
  std::uint64_t accepted_leaf_entries = 0;
  std::uint64_t mbr_distance_evals = 0;

  // --- candidate funnel ---
  std::uint64_t indexed_windows = 0;
  std::uint64_t leaf_candidates = 0;  ///< index survivors (tree entries)
  std::uint64_t candidates = 0;       ///< windows verified after expansion
  std::uint64_t postfiltered = 0;     ///< of those, discarded by verification
  std::uint64_t matches = 0;

  // --- buffer pool / I/O ---
  std::uint64_t index_page_reads = 0;
  std::uint64_t index_page_hits = 0;
  std::uint64_t index_page_misses = 0;
  std::uint64_t data_page_reads = 0;

  // --- sequential-scan baseline (speedup attribution) ---
  /// Pages a full sequential scan of the raw data would read.
  std::uint64_t seq_scan_pages = 0;

  // --- cost attribution (what the query spent; see obs/cost.h) ---
  QueryCost cost;

  // --- phases (from the query trace; may be empty) ---
  std::vector<ExplainPhaseRow> phases;
};

/// True iff the prune waterfall accounts for every tested entry (see the
/// identity above). Reports built from a telemetry-enabled walk satisfy it.
bool explain_accounted(const ExplainReport& report);

/// Folds per-partition reports of ONE logical query (the shard fan-out) into
/// a single report. Every counter in the waterfall, funnel, I/O and baseline
/// sections is summed — the waterfall identity is linear, so the merged
/// report satisfies explain_accounted() whenever every part does. Tree shape
/// rows are summed level-by-level (height = max over parts), elapsed_us is
/// the max (the parts ran concurrently), and the query identity is taken
/// from the first part. Phases are dropped: per-shard span timelines overlap
/// and a concatenation would be misleading. Empty input yields a default
/// report.
ExplainReport MergeExplainReports(const std::vector<ExplainReport>& parts);

/// Copies the spans of `trace` into report.phases (name, depth, duration).
void FillExplainPhases(const QueryTrace& trace, ExplainReport* report);

/// Human-readable plan report (fixed-width tables; deterministic for golden
/// tests given a deterministic report).
std::string RenderExplainText(const ExplainReport& report);

/// Machine-readable report:
///   {"schema_version":1,"report":"explain","query":{...},"totals":{...},
///    "levels":[...],"io":{...},"baseline":{...},"cost":{...},"phases":[...]}
/// Validated by tools/bench_schema_check --schema explain.
std::string RenderExplainJson(const ExplainReport& report);

}  // namespace tsss::obs

#endif  // TSSS_OBS_EXPLAIN_H_
