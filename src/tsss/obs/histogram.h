#ifndef TSSS_OBS_HISTOGRAM_H_
#define TSSS_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace tsss::obs {

/// Log-spaced fixed-bucket latency histogram. Record() is lock-free and safe
/// from any number of threads; Percentile() reads a relaxed snapshot.
///
/// Buckets 0..15 are exact microsecond counts; above that each power of two
/// is split into 4 sub-buckets, giving <= 25% relative error over a range of
/// 16 us .. ~1 hour in 128 buckets.
///
/// Lived in service/query_service.h until the observability layer landed;
/// it is now the shared histogram type behind the metrics registry, the
/// service's per-worker latency tracking, and the bench harness.
class LatencyHistogram {
 public:
  static constexpr std::size_t kNumBuckets = 128;

  void Record(std::chrono::microseconds latency);
  /// Records a raw microsecond value (registry/bench entry point).
  void RecordUs(std::uint64_t us);

  /// The q-quantile (q in [0, 1]) in milliseconds; 0 when empty.
  double PercentileMs(double q) const;

  /// Total number of recorded samples (relaxed snapshot).
  std::uint64_t Count() const;
  /// Sum of all recorded values in microseconds (relaxed snapshot).
  std::uint64_t SumUs() const;

  /// Zeroes every bucket and the sum (relaxed stores). Not atomic as a
  /// whole: a concurrent Record() may land before or after the wipe of its
  /// bucket — acceptable for the rolling-window rotation that uses it, where
  /// a sample on the rotation edge is advisory either way.
  void Reset();

  /// Adds every bucket (and the sum) of `other` into this histogram.
  /// Both sides may be concurrently recorded into; the merge is a relaxed
  /// snapshot, exact at any quiescent point. Used to aggregate per-worker
  /// histograms into one service-wide view.
  void Merge(const LatencyHistogram& other);

  static std::size_t BucketFor(std::uint64_t us);
  /// Lower bound (microseconds) of bucket `index`, the reported value for
  /// any latency in it.
  static std::uint64_t BucketFloorUs(std::size_t index);

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_us_{0};
};

}  // namespace tsss::obs

#endif  // TSSS_OBS_HISTOGRAM_H_
