#ifndef TSSS_OBS_DEBUG_SERVER_H_
#define TSSS_OBS_DEBUG_SERVER_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "tsss/common/mutex.h"
#include "tsss/common/status.h"
#include "tsss/common/thread_annotations.h"

namespace tsss::obs {

/// Embedded diagnostics HTTP server: the live window into a running process.
///
/// Dependency-free (raw POSIX sockets, no HTTP library) and deliberately
/// minimal: one blocking accept thread serves GET requests one at a time
/// with `Connection: close`. That is the right shape for a debug surface —
/// a handful of human or scrape requests per second, never production query
/// traffic — and it keeps the attack/bug surface reviewable in one file.
///
/// Built-in endpoints (all process-wide observability state):
///   /          index page listing every registered endpoint
///   /metricsz  MetricsRegistry::Global() in Prometheus text format
///   /varz      the same snapshot as JSON (ExportJson)
///   /eventz    EventLog::Global() tail as NDJSON, oldest first
///   /flightz   FlightRecorder::Global().DumpJson() (slow-query captures)
/// Higher layers register what obs/ cannot see: `tsss_cli serve` registers
/// /statusz (build info, uptime, engine/shard config, queue depth) via
/// RegisterHandler, because obs/ is the bottom layer and must not reach up
/// into core/service/shard. For the same reason, including this header from
/// below the service layer is a tsss_lint layering violation
/// ([restrict.debug_server] in tools/tsss_lint/layers.toml).
///
/// The request parser follows the repo's fuzz conventions for untrusted
/// input: the read is bounded (kMaxRequestBytes), the request line is
/// validated before use, and every malformed input maps to a clean 4xx
/// response — never UB, never unbounded allocation.
/// Status + body of one debug response. Handlers that can fail (or that
/// map state to a status code, like /healthz's 200/503) return this; the
/// plain string Handler form is sugar for an always-200 response.
struct HttpResponse {
  int status = 200;
  std::string body;
};

class DebugServer {
 public:
  /// Returns the response body for one GET of its path (always status 200).
  using Handler = std::function<std::string()>;
  /// Full form: receives the raw query string (text after '?', possibly
  /// empty; parsing is the handler's business) and chooses the status code.
  using QueryHandler = std::function<HttpResponse(const std::string& query)>;

  struct Options {
    /// TCP port to listen on; 0 picks an ephemeral port (see port()).
    int port = 0;
    /// Bind address. Diagnostics default to loopback: exposing internals on
    /// all interfaces is an explicit operator decision ("0.0.0.0").
    std::string bind_address = "127.0.0.1";
  };

  /// Hard ceiling on one request's header bytes; longer requests get 431.
  static constexpr std::size_t kMaxRequestBytes = 8192;

  /// Binds, listens, registers the built-in endpoints and starts the accept
  /// thread. Fails with IoError when the port cannot be bound.
  static Result<std::unique_ptr<DebugServer>> Start(const Options& options);

  ~DebugServer();  ///< Shutdown()

  DebugServer(const DebugServer&) = delete;
  DebugServer& operator=(const DebugServer&) = delete;

  /// Registers (or replaces) the handler for `path` (must start with '/').
  /// The handler runs on the accept thread; it must not block on the caller.
  void RegisterHandler(const std::string& path, const std::string& content_type,
                       Handler handler) TSSS_EXCLUDES(mu_);
  /// Same, for handlers that read the query string or set the status code.
  void RegisterHandler(const std::string& path, const std::string& content_type,
                       QueryHandler handler) TSSS_EXCLUDES(mu_);

  /// The bound port (resolves port 0 to the ephemeral port actually bound).
  int port() const { return port_; }

  /// Stops accepting, unblocks the accept thread and joins it. Idempotent;
  /// also run by the destructor. In-flight responses finish first.
  void Shutdown();

 private:
  DebugServer() = default;

  void AcceptLoop();
  void ServeConnection(int client_fd);
  /// Parses the request line out of a bounded raw request, splitting the
  /// target into path and query string ("" when absent). Returns false on
  /// malformed input.
  static bool ParseRequestLine(const std::string& request, std::string* method,
                               std::string* path, std::string* query);

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  struct Endpoint {
    std::string content_type;
    QueryHandler handler;  ///< plain Handlers are wrapped at registration
  };
  mutable Mutex mu_;
  std::map<std::string, Endpoint> endpoints_ TSSS_GUARDED_BY(mu_);
};

}  // namespace tsss::obs

#endif  // TSSS_OBS_DEBUG_SERVER_H_
