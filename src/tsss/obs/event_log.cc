#include "tsss/obs/event_log.h"

#include <chrono>
#include <cstdio>
#include <cstring>

namespace tsss::obs {

namespace {

constexpr std::size_t kWordBytes = sizeof(std::uint64_t);

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// One ring slot. The payload is a rendered NDJSON line stored as relaxed
/// atomic words so a lapped writer and a snapshotting reader never race on
/// non-atomic memory; `stamp` is the per-slot seqlock (odd = being written,
/// 2*ticket+2 = record for `ticket` is complete).
struct EventLog::Slot {
  static constexpr std::size_t kWords =
      (kMaxLineBytes + kWordBytes - 1) / kWordBytes;

  std::atomic<std::uint64_t> stamp{0};
  std::atomic<std::uint64_t> length{0};  ///< payload bytes, <= kMaxLineBytes
  std::atomic<std::uint64_t> words[kWords];
};

EventLog::EventLog(std::size_t capacity) {
  std::size_t cap = 8;
  while (cap < capacity) cap <<= 1;
  capacity_ = cap;
  mask_ = cap - 1;
  slots_ = std::make_unique<Slot[]>(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    // Publication happens when the log pointer itself is handed out.
    // relaxed-ok: single-threaded constructor
    slots_[i].stamp.store(0, std::memory_order_relaxed);
    slots_[i].length.store(0, std::memory_order_relaxed);  // relaxed-ok: ctor
  }
  epoch_ns_ = SteadyNowNs();
}

EventLog::~EventLog() = default;

EventLog& EventLog::Global() {
  static EventLog* const log = new EventLog();
  return *log;
}

void EventLog::Publish(const char* category, const char* event,
                       std::initializer_list<EventField> fields) {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_acq_rel);
  const std::uint64_t ts_us = (SteadyNowNs() - epoch_ns_) / 1000;

  // Render the full line locally first; the slot is touched only with the
  // finished bytes. Fields that no longer fit are dropped whole, so the line
  // always remains valid JSON.
  char line[kMaxLineBytes + 1];
  int len = std::snprintf(line, sizeof(line),
                          "{\"seq\":%llu,\"ts_us\":%llu,\"category\":\"%s\","
                          "\"event\":\"%s\"",
                          static_cast<unsigned long long>(ticket),
                          static_cast<unsigned long long>(ts_us), category,
                          event);
  if (len < 0) return;
  // Reserve one byte for the closing brace.
  std::size_t pos = static_cast<std::size_t>(len) < kMaxLineBytes - 1
                        ? static_cast<std::size_t>(len)
                        : kMaxLineBytes - 1;
  for (const EventField& field : fields) {
    char frag[96];
    const int flen =
        std::snprintf(frag, sizeof(frag), ",\"%s\":%llu", field.key,
                      static_cast<unsigned long long>(field.value));
    if (flen < 0) continue;
    // +1 leaves room for the closing brace.
    if (pos + static_cast<std::size_t>(flen) + 1 > kMaxLineBytes) break;
    std::memcpy(line + pos, frag, static_cast<std::size_t>(flen));
    pos += static_cast<std::size_t>(flen);
  }
  line[pos++] = '}';

  // Release payload stores keep the odd stamp ordered before them, so a
  // reader that observes any new word is guaranteed to observe a moved
  // stamp on its re-check. (A release fence would do, but TSan cannot
  // model standalone fences; per-word release costs nothing on x86.)
  Slot& slot = slots_[ticket & mask_];
  slot.stamp.store(2 * ticket + 1, std::memory_order_release);
  slot.length.store(pos, std::memory_order_release);
  for (std::size_t w = 0; w * kWordBytes < pos; ++w) {
    std::uint64_t word = 0;
    const std::size_t n =
        pos - w * kWordBytes < kWordBytes ? pos - w * kWordBytes : kWordBytes;
    std::memcpy(&word, line + w * kWordBytes, n);
    slot.words[w].store(word, std::memory_order_release);
  }
  slot.stamp.store(2 * ticket + 2, std::memory_order_release);
}

bool EventLog::ReadSlot(std::uint64_t ticket, std::string* out) const {
  const Slot& slot = slots_[ticket & mask_];
  const std::uint64_t want = 2 * ticket + 2;
  if (slot.stamp.load(std::memory_order_acquire) != want) return false;
  const std::uint64_t len = slot.length.load(std::memory_order_acquire);
  if (len > kMaxLineBytes) return false;
  char line[kMaxLineBytes];
  // Acquire payload loads pair with the writer's release stores: if any
  // word read came from a concurrent writer, that writer's odd stamp
  // happens-before the re-check below, which therefore cannot still read
  // `want`. This replaces the textbook acquire fence, which TSan rejects.
  for (std::size_t w = 0; w * kWordBytes < len; ++w) {
    const std::uint64_t word = slot.words[w].load(std::memory_order_acquire);
    const std::size_t n =
        len - w * kWordBytes < kWordBytes ? len - w * kWordBytes : kWordBytes;
    std::memcpy(line + w * kWordBytes, &word, n);
  }
  // The copy is only coherent if the stamp did not move while it ran.
  if (slot.stamp.load(std::memory_order_acquire) != want) return false;
  out->assign(line, len);
  return true;
}

std::vector<std::string> EventLog::Snapshot() const {
  const std::uint64_t total = next_.load(std::memory_order_acquire);
  const std::uint64_t first = total > capacity_ ? total - capacity_ : 0;
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(total - first));
  std::string line;
  for (std::uint64_t t = first; t < total; ++t) {
    if (ReadSlot(t, &line)) out.push_back(line);
  }
  return out;
}

Status EventLog::DumpNdjson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open event-log file '" + path + "'");
  }
  for (const std::string& line : Snapshot()) {
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size() ||
        std::fputc('\n', f) == EOF) {
      std::fclose(f);
      return Status::IoError("short write to event-log file '" + path + "'");
    }
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace tsss::obs
