#include "tsss/obs/cost.h"

#include <ctime>

#include "tsss/obs/histogram.h"
#include "tsss/obs/metrics.h"

namespace tsss::obs {

std::uint64_t ThreadCpuNowUs() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000ULL;
}

void RecordQueryCost(const std::string& label_key,
                     const std::string& label_value, const QueryCost& cost) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetHistogram(WithLabel("tsss_query_cost_cpu", label_key, label_value),
                   "Per-query thread-CPU time")
      ->RecordUs(cost.cpu_us);
  reg.GetCounter(
         WithLabel("tsss_query_cost_pages_hit_total", label_key, label_value),
         "Index-page reads served by the buffer pool, attributed per query")
      ->Inc(cost.pages_hit);
  reg.GetCounter(
         WithLabel("tsss_query_cost_pages_miss_total", label_key, label_value),
         "Index-page reads that missed the buffer pool, attributed per query")
      ->Inc(cost.pages_miss);
  reg.GetCounter(
         WithLabel("tsss_query_cost_data_pages_total", label_key, label_value),
         "Raw-data pages read for verification, attributed per query")
      ->Inc(cost.data_pages);
  reg.GetCounter(
         WithLabel("tsss_query_cost_bytes_total", label_key, label_value),
         "Bytes moved through the page interfaces, attributed per query")
      ->Inc(cost.bytes_touched);
  reg.GetCounter(WithLabel("tsss_query_cost_candidates_total", label_key,
                           label_value),
                 "Windows exactly verified, attributed per query")
      ->Inc(cost.candidates_verified);
}

}  // namespace tsss::obs
