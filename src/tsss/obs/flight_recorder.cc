#include "tsss/obs/flight_recorder.h"

#include <cstdio>
#include <utility>

namespace tsss::obs {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// Embeds an already-rendered JSON document as a nested value, trimming the
/// trailing newline our renderers end documents with.
void AppendDocument(std::string* out, const std::string& doc) {
  std::size_t end = doc.size();
  while (end > 0 && (doc[end - 1] == '\n' || doc[end - 1] == ' ')) --end;
  out->append(doc, 0, end);
}

void AppendCost(std::string* out, const QueryCost& cost) {
  *out += "{\"cpu_us\":" + std::to_string(cost.cpu_us);
  *out += ",\"pages_hit\":" + std::to_string(cost.pages_hit);
  *out += ",\"pages_miss\":" + std::to_string(cost.pages_miss);
  *out += ",\"data_pages\":" + std::to_string(cost.data_pages);
  *out += ",\"bytes_touched\":" + std::to_string(cost.bytes_touched);
  *out += ",\"candidates_verified\":" +
          std::to_string(cost.candidates_verified) + "}";
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::Arm(std::uint64_t threshold_us,
                         std::uint64_t max_per_sec) {
  {
    MutexLock lock(mu_);
    max_per_sec_ = max_per_sec == 0 ? 1 : max_per_sec;
    window_count_ = 0;
    window_start_ = std::chrono::steady_clock::now();
  }
  // relaxed-ok: advisory arming flag + threshold; see armed()
  threshold_us_.store(threshold_us, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_relaxed);  // relaxed-ok: advisory flag
}

void FlightRecorder::Disarm() {
  // relaxed-ok: advisory arming flag; see armed()
  armed_.store(false, std::memory_order_relaxed);
}

bool FlightRecorder::MaybeCapture(FlightRecord record) {
  MutexLock lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  if (now - window_start_ >= std::chrono::seconds(1)) {
    window_start_ = now;
    window_count_ = 0;
  }
  if (window_count_ >= max_per_sec_) {
    ++dropped_;
    return false;
  }
  ++window_count_;
  record.id = ++next_id_;
  if (ring_.size() == capacity_) ring_.pop_front();
  ring_.push_back(std::move(record));
  return true;
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  MutexLock lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t FlightRecorder::captured() const {
  MutexLock lock(mu_);
  return next_id_;
}

std::uint64_t FlightRecorder::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

void FlightRecorder::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
}

std::string FlightRecorder::DumpJson() const {
  std::string out = "{\"schema_version\":1,\"report\":\"flight\"";
  out += ",\"armed\":" + std::to_string(armed() ? 1 : 0);
  out += ",\"threshold_us\":" + std::to_string(threshold_us());
  out += ",\"capacity\":" + std::to_string(capacity_);
  {
    MutexLock lock(mu_);
    out += ",\"captured\":" + std::to_string(next_id_);
    out += ",\"dropped\":" + std::to_string(dropped_);
    out += ",\"records\":[";
    bool first = true;
    for (const FlightRecord& r : ring_) {
      if (!first) out += ",";
      first = false;
      out += "\n{\"id\":" + std::to_string(r.id);
      out += ",\"kind\":\"";
      AppendEscaped(&out, r.kind);
      out += "\",\"outcome\":\"";
      AppendEscaped(&out, r.outcome);
      out += "\",\"latency_us\":" + std::to_string(r.latency_us);
      out += ",\"cost\":";
      AppendCost(&out, r.cost);
      out += ",\"explain\":";
      if (r.has_explain) {
        AppendDocument(&out, RenderExplainJson(r.explain));
      } else {
        out += "null";
      }
      out += ",\"trace\":";
      if (!r.trace_json.empty()) {
        AppendDocument(&out, r.trace_json);
      } else {
        out += "null";
      }
      out += "}";
    }
    out += "]}\n";
  }
  return out;
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* const recorder = new FlightRecorder();
  return *recorder;
}

}  // namespace tsss::obs
