#ifndef TSSS_OBS_COST_H_
#define TSSS_OBS_COST_H_

#include <cstdint>
#include <string>

namespace tsss::obs {

/// What one query *spent*, attributed to the query itself rather than to
/// process-wide totals: thread CPU time, buffer-pool traffic split into hits
/// and misses, bytes touched, and exact verifications performed. Filled by
/// the core::SearchEngine query methods on the telemetry-enabled path (a
/// caller passed QueryStats or installed a trace) and carried on
/// core::QueryStats; service::QueryService rolls completed costs into
/// per-kind histograms and shard::ShardedEngine into per-shard ones.
///
/// Pure data, like ExplainReport: obs/ stays the bottom layer.
struct QueryCost {
  /// CPU time the query burned on its own thread (CLOCK_THREAD_CPUTIME_ID),
  /// immune to wall-clock noise from scheduling or sibling queries.
  std::uint64_t cpu_us = 0;
  /// Index-page reads served from the buffer pool vs. gone to the store.
  std::uint64_t pages_hit = 0;
  std::uint64_t pages_miss = 0;
  /// Raw-data pages read for candidate verification.
  std::uint64_t data_pages = 0;
  /// Bytes moved through the page interfaces: every counted page read
  /// (index + data) times the fixed page size.
  std::uint64_t bytes_touched = 0;
  /// Windows that reached exact scale-shift verification.
  std::uint64_t candidates_verified = 0;

  QueryCost& operator+=(const QueryCost& other) {
    cpu_us += other.cpu_us;
    pages_hit += other.pages_hit;
    pages_miss += other.pages_miss;
    data_pages += other.data_pages;
    bytes_touched += other.bytes_touched;
    candidates_verified += other.candidates_verified;
    return *this;
  }
};

/// This thread's consumed CPU time in microseconds
/// (clock_gettime(CLOCK_THREAD_CPUTIME_ID)); 0 if the clock is unavailable.
/// Two readings bracket a query; their difference is QueryCost::cpu_us.
std::uint64_t ThreadCpuNowUs();

/// Rolls one completed query's cost into the global registry under a label:
///   RecordQueryCost("kind", "range", cost)  -> tsss_query_cost_*{kind="range"}
///   RecordQueryCost("shard", "3", cost)     -> tsss_query_cost_*{shard="3"}
/// CPU time lands in a tsss_query_cost_cpu histogram (p50/p90/p99 over
/// queries); pages/bytes/candidates land in monotonic counters. Metric
/// pointers are resolved through the registry each call (a mutex-guarded map
/// lookup) — callers on a per-query cadence, not per-candidate, so this is
/// off the hot path.
void RecordQueryCost(const std::string& label_key,
                     const std::string& label_value, const QueryCost& cost);

}  // namespace tsss::obs

#endif  // TSSS_OBS_COST_H_
