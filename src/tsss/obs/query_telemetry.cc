#include "tsss/obs/query_telemetry.h"

#include <string>

#include "tsss/obs/trace.h"

namespace tsss::obs {

QueryTelemetry* CurrentQueryTelemetry() {
  return internal::CurrentSlot();
}

ScopedQueryTelemetry::ScopedQueryTelemetry(QueryTelemetry* telemetry)
    : prev_(internal::CurrentSlot()) {
  internal::CurrentSlot() = telemetry;
}

ScopedQueryTelemetry::~ScopedQueryTelemetry() {
  internal::CurrentSlot() = prev_;
}

void AnnotateSpan(TraceSpan* span, const QueryTelemetry& telemetry) {
  if (span == nullptr) return;
  auto put = [span](const char* key, std::uint64_t value) {
    if (value != 0) span->Annotate(key, value);
  };
  put("nodes_visited", telemetry.nodes_visited);
  for (std::size_t level = 0; level < QueryTelemetry::kMaxLevels; ++level) {
    if (telemetry.nodes_per_level[level] != 0) {
      const std::string key = "nodes_level_" + std::to_string(level);
      span->Annotate(key.c_str(), telemetry.nodes_per_level[level]);
    }
  }
  put("mbr_distance_evals", telemetry.mbr_distance_evals);
  put("leaf_candidates", telemetry.leaf_candidates);
  put("entries_tested", telemetry.entries_tested);
  // The prune breakdown is the headline number (the paper's EP-vs-BS
  // comparison), so it is emitted even when zero.
  span->Annotate("ep_prunes", telemetry.ep_prunes);
  span->Annotate("bs_prunes", telemetry.bs_prunes);
  put("exact_prunes", telemetry.exact_prunes);
  put("candidates_postfiltered", telemetry.candidates_postfiltered);
}

}  // namespace tsss::obs
