#include "tsss/obs/rolling.h"

#include <algorithm>
#include <chrono>

namespace tsss::obs {

namespace {

RollingWindow::Options Sanitize(RollingWindow::Options options) {
  if (options.num_buckets == 0) options.num_buckets = 1;
  if (options.bucket_width_us == 0) options.bucket_width_us = 1'000'000;
  return options;
}

}  // namespace

RollingWindow::RollingWindow() : RollingWindow(Options()) {}

RollingWindow::RollingWindow(Options options)
    : options_(Sanitize(std::move(options))),
      buckets_(std::make_unique<Bucket[]>(options_.num_buckets)) {}

std::uint64_t RollingWindow::NowUs() const {
  if (options_.now_us) return options_.now_us();
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

void RollingWindow::Record(std::uint64_t latency_us, bool ok,
                           bool deadline_exceeded) {
  const std::uint64_t tick = NowUs() / options_.bucket_width_us;
  Bucket& bucket = BucketForTick(tick);
  // acquire pairs with the release in Rotate(): a matching epoch means the
  // wipe that installed it is visible, so this record lands in clean state.
  if (bucket.epoch.load(std::memory_order_acquire) != tick) {
    Rotate(bucket, tick);
  }
  bucket.hist.RecordUs(latency_us);
  // relaxed-ok: advisory outcome tallies, same contract as the histogram
  bucket.count.fetch_add(1, std::memory_order_relaxed);
  if (!ok) bucket.errors.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: tally
  if (deadline_exceeded) {
    // relaxed-ok: tally
    bucket.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
  }
}

void RollingWindow::Rotate(Bucket& bucket, std::uint64_t tick) {
  MutexLock lock(rotate_mu_);
  // Another recorder may have rotated this bucket while we waited.
  // relaxed-ok: re-check under the rotation lock; the release below publishes
  if (bucket.epoch.load(std::memory_order_relaxed) == tick) return;
  bucket.hist.Reset();
  bucket.count.store(0, std::memory_order_relaxed);    // relaxed-ok: wipe
  bucket.errors.store(0, std::memory_order_relaxed);   // relaxed-ok: wipe
  // relaxed-ok: wipe published by the epoch release below
  bucket.deadline_exceeded.store(0, std::memory_order_relaxed);
  bucket.epoch.store(tick, std::memory_order_release);
}

RollingWindow::Snapshot RollingWindow::Window(std::uint64_t window_us) const {
  Snapshot out;
  const std::uint64_t clamped = std::min(
      std::max<std::uint64_t>(window_us, options_.bucket_width_us), span_us());
  out.window_us = clamped;
  const std::uint64_t now_tick = NowUs() / options_.bucket_width_us;
  const std::uint64_t ticks = clamped / options_.bucket_width_us;
  const std::uint64_t oldest_tick =
      now_tick >= ticks - 1 ? now_tick - (ticks - 1) : 0;

  LatencyHistogram merged;
  for (std::uint64_t tick = oldest_tick; tick <= now_tick; ++tick) {
    const Bucket& bucket = BucketForTick(tick);
    // acquire pairs with Rotate()'s release: an in-window epoch means the
    // bucket's contents belong to that tick, not a previous lap of the ring.
    const std::uint64_t epoch = bucket.epoch.load(std::memory_order_acquire);
    if (epoch < oldest_tick || epoch > now_tick) continue;  // stale or unused
    merged.Merge(bucket.hist);
    // relaxed-ok: advisory snapshot reads, same contract as Merge above
    out.count += bucket.count.load(std::memory_order_relaxed);
    out.errors += bucket.errors.load(std::memory_order_relaxed);  // relaxed-ok: stat
    out.deadline_exceeded +=
        bucket.deadline_exceeded.load(std::memory_order_relaxed);  // relaxed-ok: stat
  }
  out.p50_ms = merged.PercentileMs(0.50);
  out.p99_ms = merged.PercentileMs(0.99);
  return out;
}

namespace {

/// Error-budget burn rate: observed failure fraction over the allowed one.
/// 1.0 means the budget is burning exactly at the sustainable rate.
double BurnRate(const RollingWindow::Snapshot& window, double target) {
  const double allowed = 1.0 - target;
  if (allowed <= 0.0) return window.availability() < 1.0 ? 1e9 : 0.0;
  return (1.0 - window.availability()) / allowed;
}

void AppendWindowJson(std::string* out, const char* key,
                      const RollingWindow::Snapshot& window) {
  *out += std::string("\"") + key + "\":{";
  *out += "\"window_s\":" +
          std::to_string(window.window_us / 1'000'000) + ",";
  *out += "\"count\":" + std::to_string(window.count) + ",";
  *out += "\"errors\":" + std::to_string(window.errors) + ",";
  *out += "\"deadline_exceeded\":" + std::to_string(window.deadline_exceeded) +
          ",";
  *out += "\"p50_ms\":" + std::to_string(window.p50_ms) + ",";
  *out += "\"p99_ms\":" + std::to_string(window.p99_ms) + ",";
  *out += "\"availability\":" + std::to_string(window.availability()) + "}";
}

}  // namespace

SloState EvaluateSlo(const RollingWindow& window, const SloConfig& config) {
  SloState state;
  state.fast = window.Window(config.fast_window_us);
  state.slow = window.Window(config.slow_window_us);
  state.fast_burn_rate = BurnRate(state.fast, config.target_availability);
  state.slow_burn_rate = BurnRate(state.slow, config.target_availability);

  if (state.fast.count >= config.min_samples) {
    state.latency_ok = state.fast.p99_ms <= config.target_p99_ms;
    // Multi-window AND: the fast window must be burning hot AND the slow
    // window must confirm, so one bad second cannot flip a healthy server.
    state.availability_ok =
        !(state.fast_burn_rate >= config.fast_burn_threshold &&
          state.slow_burn_rate >= config.slow_burn_threshold);
  }
  state.healthy = state.latency_ok && state.availability_ok;
  return state;
}

std::string RenderHealthzJson(const SloState& state, const SloConfig& config) {
  std::string out = "{\"schema_version\":1,\"report\":\"healthz\",";
  out += std::string("\"healthy\":") + (state.healthy ? "true" : "false") + ",";
  out += std::string("\"latency_ok\":") +
         (state.latency_ok ? "true" : "false") + ",";
  out += std::string("\"availability_ok\":") +
         (state.availability_ok ? "true" : "false") + ",";
  out += "\"target_p99_ms\":" + std::to_string(config.target_p99_ms) + ",";
  out += "\"target_availability\":" +
         std::to_string(config.target_availability) + ",";
  out += "\"fast_burn_rate\":" + std::to_string(state.fast_burn_rate) + ",";
  out += "\"slow_burn_rate\":" + std::to_string(state.slow_burn_rate) + ",";
  AppendWindowJson(&out, "fast", state.fast);
  out += ",";
  AppendWindowJson(&out, "slow", state.slow);
  out += "}\n";
  return out;
}

}  // namespace tsss::obs
