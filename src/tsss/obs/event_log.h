#ifndef TSSS_OBS_EVENT_LOG_H_
#define TSSS_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "tsss/common/status.h"

namespace tsss::obs {

/// One numeric field of an event. Keys must be string literals that are valid
/// JSON identifiers without escaping (the publisher renders them verbatim).
struct EventField {
  const char* key;
  std::uint64_t value;
};

/// Ring-buffered structured event log with lock-free publish.
///
/// Each Publish() renders one NDJSON line
///
///   {"seq":N,"ts_us":T,"category":"...","event":"...","k1":v1,...}
///
/// into a fixed-size slot of a power-of-two ring. Publishing takes a ticket
/// with one atomic fetch_add and then writes the slot under a per-slot
/// sequence stamp (Vyukov-style seqlock): the slot's stamp goes odd while the
/// payload words are stored and settles at 2*ticket+2 when the record is
/// complete. Writers never block each other or readers; a reader (Snapshot)
/// validates the stamp before and after copying and simply skips slots that
/// are mid-overwrite, so concurrent use is wait-free for writers and torn
/// records are impossible to observe. Payload bytes travel through relaxed
/// atomic words, keeping concurrent overwrite-vs-read access race-free by
/// construction (TSan-clean, not just "benign").
///
/// The ring retains the most recent `capacity` records; older ones are
/// overwritten. ts_us is microseconds since the log's construction
/// (monotonic clock).
class EventLog {
 public:
  /// Payload capacity of one slot; longer rendered lines are truncated at a
  /// field boundary (the line stays valid JSON).
  static constexpr std::size_t kMaxLineBytes = 232;

  /// `capacity` is rounded up to a power of two (min 8).
  explicit EventLog(std::size_t capacity = 4096);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Process-wide instance the service and CLI publish into.
  static EventLog& Global();

  /// Appends one event. `category` and `event` must be literals that need no
  /// JSON escaping. Safe from any thread, lock-free.
  void Publish(const char* category, const char* event,
               std::initializer_list<EventField> fields = {});

  /// Total events published so far (including overwritten ones).
  std::uint64_t published() const {
    return next_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return capacity_; }

  /// The retained records, oldest first. Slots being concurrently rewritten
  /// are skipped, never returned torn.
  std::vector<std::string> Snapshot() const;

  /// Writes Snapshot() as newline-delimited JSON to `path`.
  Status DumpNdjson(const std::string& path) const;

 private:
  struct Slot;

  /// Copies slot contents for ticket `t` into `out`; false when the slot is
  /// mid-write or was lapped.
  bool ReadSlot(std::uint64_t ticket, std::string* out) const;

  std::size_t capacity_ = 0;   ///< power of two
  std::size_t mask_ = 0;       ///< capacity_ - 1
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};  ///< next ticket (== total published)
  std::uint64_t epoch_ns_ = 0;          ///< steady-clock origin for ts_us
};

}  // namespace tsss::obs

#endif  // TSSS_OBS_EVENT_LOG_H_
