#include "tsss/obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <string.h>
#include <ucontext.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>
#include <unordered_map>

#include "tsss/obs/trace.h"

namespace tsss::obs {

namespace {

/// The instance whose handler is installed; ITIMER_PROF is process-wide so
/// at most one profiler runs at a time. acquire/release pair the handler's
/// read with Start()'s publication of a fully initialized ring.
std::atomic<SamplingProfiler*> g_active{nullptr};

constexpr const char* kUntaggedPhase = "(untagged)";

/// Walks the frame-pointer chain starting from the interrupted context.
/// Async-signal-safe: no calls, only validated loads. Every dereference is
/// gated: the first frame pointer must lie within a bounded region above
/// `stack_hint` (a handler local on the same stack — the interrupted frames
/// are at higher addresses), and each step must ascend by a sane amount, so
/// a garbage rbp from foreign frame-pointer-less code breaks the walk
/// instead of faulting. The build compiles with -fno-omit-frame-pointer
/// precisely so in-repo frames always chain (see root CMakeLists).
int WalkFrames(void* pc, void** fp, const void* stack_hint, void** frames,
               int max_frames) {
  int n = 0;
  if (pc != nullptr) frames[n++] = pc;
  const std::uintptr_t hint = reinterpret_cast<std::uintptr_t>(stack_hint);
  // The first frame must be near the handler's own stack; later frames near
  // their predecessor. 1 MB / 256 KB bounds keep every dereference inside
  // the mapped stack region while admitting large on-stack buffers.
  std::uintptr_t low = hint;
  std::uintptr_t span = std::uintptr_t{1} << 20;
  while (fp != nullptr && n < max_frames) {
    const std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(fp);
    if (addr % alignof(void*) != 0) break;
    if (addr <= low || addr - low > span) break;
    void* const ret = fp[1];
    if (ret == nullptr) break;
    frames[n++] = ret;
    low = addr;
    span = std::uintptr_t{1} << 18;
    fp = reinterpret_cast<void**>(fp[0]);
  }
  return n;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

/// Best-effort name for one return address: demangled symbol via dladdr
/// (exported thanks to -rdynamic), else the containing module's basename,
/// else the raw address. Runs only at aggregation time, never in a handler.
std::string SymbolName(void* addr) {
  Dl_info info;
  if (::dladdr(addr, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string name(demangled);
      std::free(demangled);
      return name;
    }
    if (demangled != nullptr) std::free(demangled);
    return info.dli_sname;
  }
  if (::dladdr(addr, &info) != 0 && info.dli_fname != nullptr) {
    const char* base = ::strrchr(info.dli_fname, '/');
    return std::string("[") + (base != nullptr ? base + 1 : info.dli_fname) +
           "]";
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%zx", reinterpret_cast<std::size_t>(addr));
  return buf;
}

}  // namespace

// --- Profile rendering ------------------------------------------------------

std::string Profile::ToFolded() const {
  std::string out;
  for (const ProfileStack& entry : folded) {
    out += entry.stack;
    out += ' ';
    out += std::to_string(entry.samples);
    out += '\n';
  }
  return out;
}

std::string Profile::ToJson() const {
  std::string out = "{\"schema_version\":1,\"report\":\"profile\",";
  out += "\"hz\":" + std::to_string(hz) + ",";
  out += "\"seconds\":" + std::to_string(seconds) + ",";
  out += "\"samples\":" + std::to_string(samples) + ",";
  out += "\"dropped\":" + std::to_string(dropped) + ",";
  out += "\"phases\":[";
  bool first = true;
  for (const ProfilePhase& phase : phases) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(phase.name) +
           "\",\"samples\":" + std::to_string(phase.samples) + "}";
  }
  out += "],\"folded\":[";
  first = true;
  for (const ProfileStack& entry : folded) {
    if (!first) out += ",";
    first = false;
    out += "{\"stack\":\"" + JsonEscape(entry.stack) +
           "\",\"samples\":" + std::to_string(entry.samples) + "}";
  }
  out += "]}\n";
  return out;
}

// --- SamplingProfiler -------------------------------------------------------

SamplingProfiler::SamplingProfiler() : SamplingProfiler(Options()) {}

SamplingProfiler::SamplingProfiler(Options options) : options_([&options] {
      options.hz = std::clamp(options.hz, 1, 1000);
      if (options.ring_slots == 0) options.ring_slots = 1;
      return options;
    }()) {
  ring_ = std::make_unique<Sample[]>(options_.ring_slots);
}

SamplingProfiler::~SamplingProfiler() { Stop(); }

void SamplingProfiler::SignalHandler(int /*signo*/, siginfo_t* /*info*/,
                                     void* ucontext) {
  SamplingProfiler* profiler = g_active.load(std::memory_order_acquire);
  if (profiler != nullptr) profiler->OnSignal(ucontext);
}

void SamplingProfiler::OnSignal(void* ucontext) {
  // Claim a slot. Past the ring's end the claim just advances the head —
  // the overshoot IS the drop counter, so saturation costs one fetch_add.
  // relaxed-ok: slot claim; the committed release below publishes contents
  const std::uint64_t slot = head_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= options_.ring_slots) return;
  Sample& sample = ring_[slot];
  sample.phase = CurrentPhaseName();

  void* pc = nullptr;
  void** fp = nullptr;
#if defined(__x86_64__)
  const auto* uc = static_cast<const ucontext_t*>(ucontext);
  pc = reinterpret_cast<void*>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = reinterpret_cast<void**>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  const auto* uc = static_cast<const ucontext_t*>(ucontext);
  pc = reinterpret_cast<void*>(uc->uc_mcontext.pc);
  fp = reinterpret_cast<void**>(uc->uc_mcontext.regs[29]);
#else
  (void)ucontext;
#endif
  int n = WalkFrames(pc, fp, &pc, sample.frames, kMaxFrames);
  if (n < 3) {
    // Chain too short: the interrupt likely landed in foreign code without
    // frame pointers. backtrace() unwinds through the signal frame via CFI;
    // Start() warmed it up so no lazy initialization runs here. Its first
    // three frames are this function, SignalHandler and the trampoline.
    void* raw[kMaxFrames + 3];
    const int total = ::backtrace(raw, kMaxFrames + 3);
    constexpr int kSkip = 3;
    if (total > kSkip) {
      n = total - kSkip;
      ::memcpy(sample.frames, raw + kSkip,
               static_cast<std::size_t>(n) * sizeof(void*));
    }
  }
  sample.num_frames = n < 0 ? 0u : static_cast<std::uint32_t>(n);
  // Publish: Aggregate()'s acquire load of committed sees a complete sample.
  sample.committed.store(1, std::memory_order_release);
}

Status SamplingProfiler::Start() {
  if (running_) return Status::OK();
  SamplingProfiler* expected = nullptr;
  if (!g_active.compare_exchange_strong(expected, this,
                                        std::memory_order_acq_rel)) {
    return Status::FailedPrecondition(
        "another sampling profiler is already active in this process");
  }
  // Reset the ring before the first signal can fire. g_active is already
  // set, but no handler is installed yet, so these plain resets race with
  // nothing.
  head_.store(0, std::memory_order_relaxed);  // relaxed-ok: pre-handler reset
  for (std::size_t i = 0; i < options_.ring_slots; ++i) {
    // relaxed-ok: pre-handler reset, published by the sigaction below
    ring_[i].committed.store(0, std::memory_order_relaxed);
  }

  // Warm up backtrace(): its first call lazily loads libgcc's unwinder,
  // which allocates — fatal inside a signal handler, harmless here.
  void* warm[4];
  ::backtrace(warm, 4);

  struct sigaction action {};
  action.sa_sigaction = &SamplingProfiler::SignalHandler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (::sigaction(SIGPROF, &action, &prev_action_) != 0) {
    g_active.store(nullptr, std::memory_order_release);
    return Status::IoError("sigaction(SIGPROF) failed");
  }

  itimerval timer{};
  timer.it_interval.tv_sec = 0;
  timer.it_interval.tv_usec = 1'000'000 / options_.hz;
  timer.it_value = timer.it_interval;
  if (::setitimer(ITIMER_PROF, &timer, &prev_timer_) != 0) {
    ::sigaction(SIGPROF, &prev_action_, nullptr);
    g_active.store(nullptr, std::memory_order_release);
    return Status::IoError("setitimer(ITIMER_PROF) failed");
  }

  started_at_ = std::chrono::steady_clock::now();
  running_ = true;
  return Status::OK();
}

Profile SamplingProfiler::Stop() {
  if (!running_) return last_;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - started_at_)
          .count();

  // Disarm in dependency order: timer off (no new signals), handler
  // restored, then the active pointer cleared.
  itimerval off{};
  ::setitimer(ITIMER_PROF, &off, nullptr);
  ::sigaction(SIGPROF, &prev_action_, nullptr);
  g_active.store(nullptr, std::memory_order_release);
  if (prev_timer_.it_value.tv_sec != 0 || prev_timer_.it_value.tv_usec != 0) {
    ::setitimer(ITIMER_PROF, &prev_timer_, nullptr);
  }
  // A handler that read g_active just before the clear may still be filling
  // its slot on another thread. The grace period lets it finish; Aggregate
  // additionally skips any slot whose committed flag never lands.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));

  running_ = false;
  last_ = Aggregate(seconds);
  return last_;
}

std::uint64_t SamplingProfiler::captured() const {
  // relaxed-ok: advisory progress read
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  return std::min<std::uint64_t>(head, options_.ring_slots);
}

std::uint64_t SamplingProfiler::dropped() const {
  // relaxed-ok: advisory progress read
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  return head > options_.ring_slots ? head - options_.ring_slots : 0;
}

Profile SamplingProfiler::Aggregate(double seconds) const {
  Profile profile;
  profile.hz = options_.hz;
  profile.seconds = seconds;
  profile.dropped = dropped();

  const std::uint64_t filled = std::min<std::uint64_t>(
      // relaxed-ok: the per-slot committed acquires below order the contents
      head_.load(std::memory_order_relaxed), options_.ring_slots);

  std::map<const char*, std::uint64_t> phase_counts;
  std::unordered_map<void*, std::string> symbol_cache;
  std::map<std::string, std::uint64_t> stack_counts;

  for (std::uint64_t i = 0; i < filled; ++i) {
    const Sample& sample = ring_[i];
    // Pairs with the handler's release store; an uncommitted slot (handler
    // interrupted mid-fill at Stop()) is skipped, not torn-read.
    if (sample.committed.load(std::memory_order_acquire) == 0) continue;
    ++profile.samples;
    const char* phase =
        sample.phase != nullptr ? sample.phase : kUntaggedPhase;
    ++phase_counts[phase];

    if (sample.num_frames == 0) {
      ++stack_counts["(no stack)"];
      continue;
    }
    // Frames are leaf-first in the ring; folded format is outer-first.
    std::string folded;
    for (std::uint32_t f = sample.num_frames; f-- > 0;) {
      void* addr = sample.frames[f];
      auto it = symbol_cache.find(addr);
      if (it == symbol_cache.end()) {
        it = symbol_cache.emplace(addr, SymbolName(addr)).first;
      }
      if (!folded.empty()) folded += ';';
      folded += it->second;
    }
    ++stack_counts[folded];
  }

  for (const auto& [name, count] : phase_counts) {
    profile.phases.push_back(ProfilePhase{name, count});
  }
  std::sort(profile.phases.begin(), profile.phases.end(),
            [](const ProfilePhase& a, const ProfilePhase& b) {
              return a.samples > b.samples;
            });
  for (auto& [stack, count] : stack_counts) {
    profile.folded.push_back(ProfileStack{stack, count});
  }
  std::sort(profile.folded.begin(), profile.folded.end(),
            [](const ProfileStack& a, const ProfileStack& b) {
              return a.samples > b.samples;
            });
  return profile;
}

}  // namespace tsss::obs
