#include "tsss/obs/debug_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "tsss/obs/event_log.h"
#include "tsss/obs/flight_recorder.h"
#include "tsss/obs/metrics.h"

namespace tsss::obs {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

void SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; a debug response is best-effort
    sent += static_cast<std::size_t>(n);
  }
}

void SendResponse(int fd, int status, const std::string& content_type,
                  const std::string& body) {
  std::string response = "HTTP/1.1 " + std::to_string(status) + " " +
                         ReasonPhrase(status) + "\r\n";
  response += "Content-Type: " + content_type + "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  SendAll(fd, response);
}

}  // namespace

Result<std::unique_ptr<DebugServer>> DebugServer::Start(
    const Options& options) {
  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument("port must be in [0, 65535]");
  }
  auto server = std::unique_ptr<DebugServer>(new DebugServer());

  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) {
    return Status::IoError(std::string("socket(): ") +
                               std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " + options.bind_address);
  }
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0) {
    return Status::IoError("bind(" + options.bind_address + ":" +
                               std::to_string(options.port) +
                               "): " + std::strerror(errno));
  }
  if (::listen(server->listen_fd_, 8) != 0) {
    return Status::IoError(std::string("listen(): ") +
                               std::strerror(errno));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return Status::IoError(std::string("getsockname(): ") +
                               std::strerror(errno));
  }
  server->port_ = ntohs(addr.sin_port);

  // Built-in endpoints over the process-wide observability singletons. The
  // snapshots are taken per request — a debug scrape always sees live state.
  server->RegisterHandler("/metricsz", "text/plain; version=0.0.4", [] {
    return ExportPrometheus(MetricsRegistry::Global().Snapshot());
  });
  server->RegisterHandler("/varz", "application/json", [] {
    return ExportJson(MetricsRegistry::Global().Snapshot());
  });
  server->RegisterHandler("/eventz", "application/x-ndjson", [] {
    std::string body;
    for (const std::string& line : EventLog::Global().Snapshot()) {
      body += line;
      body += '\n';
    }
    return body;
  });
  server->RegisterHandler("/flightz", "application/json",
                          [] { return FlightRecorder::Global().DumpJson(); });
  server->RegisterHandler("/", "text/plain", [raw = server.get()] {
    std::string body = "tsss debug server\n\nendpoints:\n";
    MutexLock lock(raw->mu_);
    for (const auto& [path, endpoint] : raw->endpoints_) {
      body += "  " + path + "\n";
    }
    return body;
  });

  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->AcceptLoop();
  });
  return server;
}

DebugServer::~DebugServer() { Shutdown(); }

void DebugServer::RegisterHandler(const std::string& path,
                                  const std::string& content_type,
                                  Handler handler) {
  RegisterHandler(path, content_type,
                  QueryHandler([handler = std::move(handler)](
                                   const std::string& /*query*/) {
                    return HttpResponse{200, handler()};
                  }));
}

void DebugServer::RegisterHandler(const std::string& path,
                                  const std::string& content_type,
                                  QueryHandler handler) {
  MutexLock lock(mu_);
  endpoints_[path] = Endpoint{content_type, std::move(handler)};
}

void DebugServer::Shutdown() {
  // The shutdown() below unblocks accept(); the thread join provides all
  // ordering the caller can observe.
  // relaxed-ok: stop flag, join supplies the happens-before edge
  if (stopping_.exchange(true, std::memory_order_relaxed)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void DebugServer::AcceptLoop() {
  // relaxed-ok: stop flag, paired with the fd shutdown() that unblocks accept
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down (or unrecoverable error)
    }
    // A stalled or hostile client must not wedge the accept thread forever.
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
    ServeConnection(client);
    ::close(client);
  }
}

void DebugServer::ServeConnection(int client_fd) {
  // Bounded read of the request head; everything past kMaxRequestBytes is a
  // 431, not a growing buffer.
  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    if (request.size() >= kMaxRequestBytes) {
      SendResponse(client_fd, 431, "text/plain", "request too large\n");
      return;
    }
    const ssize_t n = ::recv(client_fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (request.empty()) return;  // peer closed without sending anything
      break;  // timeout/EOF mid-request: judge what we have
    }
    request.append(buf, static_cast<std::size_t>(n));
  }

  std::string method;
  std::string path;
  std::string query;
  if (!ParseRequestLine(request, &method, &path, &query)) {
    SendResponse(client_fd, 400, "text/plain", "malformed request\n");
    return;
  }
  if (method != "GET") {
    SendResponse(client_fd, 405, "text/plain", "only GET is supported\n");
    return;
  }

  QueryHandler handler;
  std::string content_type;
  {
    MutexLock lock(mu_);
    auto it = endpoints_.find(path);
    if (it != endpoints_.end()) {
      handler = it->second.handler;
      content_type = it->second.content_type;
    }
  }
  if (!handler) {
    SendResponse(client_fd, 404, "text/plain",
                 "no such endpoint: " + path + "\n");
    return;
  }
  const HttpResponse response = handler(query);
  SendResponse(client_fd, response.status, content_type, response.body);
}

bool DebugServer::ParseRequestLine(const std::string& request,
                                   std::string* method, std::string* path,
                                   std::string* query) {
  const std::size_t eol = request.find_first_of("\r\n");
  if (eol == std::string::npos) return false;
  const std::string line = request.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) return false;
  // "HTTP/" version tag after the second space, per the request-line grammar.
  if (line.compare(sp2 + 1, 5, "HTTP/") != 0) return false;
  *method = line.substr(0, sp1);
  *path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Endpoints are keyed by bare path; the query string is handed to the
  // handler as-is (an untrusted, bounded substring of the request line).
  query->clear();
  const std::size_t qmark = path->find('?');
  if (qmark != std::string::npos) {
    *query = path->substr(qmark + 1);
    path->resize(qmark);
  }
  if (path->empty() || (*path)[0] != '/') return false;
  return true;
}

}  // namespace tsss::obs
