#ifndef TSSS_OBS_QUERY_TELEMETRY_H_
#define TSSS_OBS_QUERY_TELEMETRY_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace tsss::obs {

class TraceSpan;

/// Per-query pruning telemetry for the paper's hot path: how the index
/// filter step disposed of every window it looked at.
///
/// A query runs on one thread, so the fields are plain integers; the engine
/// installs one instance thread-locally (ScopedQueryTelemetry) around the
/// index walk and the index layer ticks it through the inline helpers below.
/// When no telemetry is installed each tick is a thread-local read plus a
/// branch — the same disabled-cost pattern as storage::QueryCounters.
struct QueryTelemetry {
  /// Deepest tree level tracked individually; deeper levels fold into the
  /// last slot. Fanout >= 32 makes a 16-level tree ~32^16 entries, far past
  /// any realistic dataset.
  static constexpr std::size_t kMaxLevels = 16;

  // --- index traversal ---
  std::uint64_t nodes_visited = 0;
  /// nodes_per_level[0] counts leaves (level 0), matching index/node.h.
  std::array<std::uint64_t, kMaxLevels> nodes_per_level{};
  /// Line-to-MBR distance evaluations (LineMbrDistance calls).
  std::uint64_t mbr_distance_evals = 0;
  /// Entries that survived the index filter and became candidates.
  std::uint64_t leaf_candidates = 0;

  // --- pruning disposition (derived from geom::PenetrationStats) ---
  /// Entries rejected by the entering/exiting-point slab test alone.
  std::uint64_t ep_prunes = 0;
  /// Entries rejected by a bounding-sphere outer test.
  std::uint64_t bs_prunes = 0;
  /// Entries rejected by the exact line-MBR distance (kExactDistance only).
  std::uint64_t exact_prunes = 0;
  /// Total penetration tests the walk performed (prunes + accepts).
  std::uint64_t entries_tested = 0;

  // --- post-filtering ---
  /// Candidates read back and discarded by exact verification.
  std::uint64_t candidates_postfiltered = 0;

  void Reset() { *this = QueryTelemetry{}; }
};

/// Returns the telemetry installed on this thread, or nullptr.
QueryTelemetry* CurrentQueryTelemetry();

/// Installs `telemetry` thread-locally for the scope's lifetime, restoring
/// the previous pointer on destruction (storage::ScopedQueryCounters
/// pattern; nesting composes, inner scope wins).
class ScopedQueryTelemetry {
 public:
  explicit ScopedQueryTelemetry(QueryTelemetry* telemetry);
  ~ScopedQueryTelemetry();

  ScopedQueryTelemetry(const ScopedQueryTelemetry&) = delete;
  ScopedQueryTelemetry& operator=(const ScopedQueryTelemetry&) = delete;

 private:
  QueryTelemetry* prev_;
};

namespace internal {
// The thread-local slot lives in this inline function (one instance
// process-wide) so the tick helpers compile to a TLS load + branch with no
// function call when telemetry is off. An `extern thread_local` read from
// header-inline code would go through the compiler's TLS wrapper, which
// GCC's UBSan mis-instruments as a null load.
inline QueryTelemetry*& CurrentSlot() {
  thread_local QueryTelemetry* slot = nullptr;
  return slot;
}
}  // namespace internal

/// Records one node visit at tree level `level` (0 = leaf).
inline void TickNodeVisit(std::size_t level) {
  if (QueryTelemetry* t = internal::CurrentSlot()) {
    ++t->nodes_visited;
    ++t->nodes_per_level[level < QueryTelemetry::kMaxLevels
                             ? level
                             : QueryTelemetry::kMaxLevels - 1];
  }
}

/// Records `n` line-to-MBR distance evaluations.
inline void TickMbrDistanceEvals(std::uint64_t n = 1) {
  if (QueryTelemetry* t = internal::CurrentSlot()) {
    t->mbr_distance_evals += n;
  }
}

/// Records `n` entries surviving the index filter.
inline void TickLeafCandidates(std::uint64_t n = 1) {
  if (QueryTelemetry* t = internal::CurrentSlot()) {
    t->leaf_candidates += n;
  }
}

/// Attaches every non-zero telemetry counter to `span` (ep/bs prune counts,
/// per-level node visits as nodes_level_<i>, ...). No-op when span is null
/// or tracing is off.
void AnnotateSpan(TraceSpan* span, const QueryTelemetry& telemetry);

}  // namespace tsss::obs

#endif  // TSSS_OBS_QUERY_TELEMETRY_H_
