#ifndef TSSS_OBS_ROLLING_H_
#define TSSS_OBS_ROLLING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "tsss/common/mutex.h"
#include "tsss/common/thread_annotations.h"
#include "tsss/obs/histogram.h"

namespace tsss::obs {

/// Rolling time-window latency/outcome aggregator: a ring of per-second
/// (configurable) buckets, each a LatencyHistogram plus outcome counters,
/// indexed by wall-clock bucket number. Record() is lock-free on the hot
/// path (one clock read, one epoch check, then the histogram's relaxed
/// fetch_adds); the rare rotation when a bucket's epoch goes stale takes a
/// mutex so exactly one thread wipes it. Window(w) merges the buckets that
/// cover the last `w` microseconds into a point-in-time Snapshot.
///
/// Unlike the cumulative-since-start histograms in ServiceMetrics, a rolling
/// window forgets: a burst of slow queries ages out after
/// num_buckets x bucket_width, which is what makes windowed p99 and
/// error-rate burn usable for SLO alerting on a long-lived server.
///
/// The clock is injectable (Options::now_us) so tests can drive rotation
/// deterministically; the default reads the steady clock.
class RollingWindow {
 public:
  struct Options {
    /// Ring length. The default covers 6 minutes at 1-second buckets —
    /// enough history for a 60 s fast and 300 s slow SLO window.
    std::size_t num_buckets = 360;
    std::uint64_t bucket_width_us = 1'000'000;
    /// Monotonic microsecond clock; steady_clock when empty.
    std::function<std::uint64_t()> now_us;
  };

  /// Merged view over the buckets covering one window, taken by Window().
  struct Snapshot {
    std::uint64_t window_us = 0;  ///< the window actually covered
    std::uint64_t count = 0;      ///< completions in the window
    std::uint64_t errors = 0;     ///< completions with a not-OK status
    std::uint64_t deadline_exceeded = 0;  ///< subset of errors
    double p50_ms = 0.0;
    double p99_ms = 0.0;

    /// Fraction of completions that were OK; 1.0 on an empty window (a
    /// fresh server must pass load-balancer health checks).
    double availability() const {
      return count == 0 ? 1.0
                        : static_cast<double>(count - errors) /
                              static_cast<double>(count);
    }
  };

  RollingWindow();  ///< default Options
  explicit RollingWindow(Options options);

  RollingWindow(const RollingWindow&) = delete;
  RollingWindow& operator=(const RollingWindow&) = delete;

  /// Records one completed query into the current bucket. Lock-free except
  /// when this call is the first to touch a stale bucket (once per bucket
  /// width). `ok` is the completion status; `deadline_exceeded` marks the
  /// subset of failures that were deadline expiries.
  void Record(std::uint64_t latency_us, bool ok, bool deadline_exceeded)
      TSSS_EXCLUDES(rotate_mu_);

  /// Merges the buckets covering the trailing `window_us` (clamped to the
  /// ring's span) into a snapshot. A concurrent Record() may or may not be
  /// included — the snapshot is advisory, like every stats read in obs/.
  Snapshot Window(std::uint64_t window_us) const;

  std::size_t num_buckets() const { return options_.num_buckets; }
  std::uint64_t bucket_width_us() const { return options_.bucket_width_us; }
  /// The ring's full span: the longest window Window() can cover.
  std::uint64_t span_us() const {
    return options_.bucket_width_us * options_.num_buckets;
  }

 private:
  struct Bucket {
    LatencyHistogram hist;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> deadline_exceeded{0};
    /// Wall-clock bucket number this slot currently holds; kNeverUsed until
    /// the first record lands.
    std::atomic<std::uint64_t> epoch{kNeverUsed};
  };
  static constexpr std::uint64_t kNeverUsed = ~std::uint64_t{0};

  std::uint64_t NowUs() const;
  Bucket& BucketForTick(std::uint64_t tick) const {
    return buckets_[tick % options_.num_buckets];
  }
  void Rotate(Bucket& bucket, std::uint64_t tick) TSSS_EXCLUDES(rotate_mu_);

  const Options options_;
  std::unique_ptr<Bucket[]> buckets_;
  /// Serializes bucket wipes only; Record()'s fast path never takes it.
  mutable Mutex rotate_mu_;
};

/// SLO targets for EvaluateSlo. The burn thresholds follow the standard
/// multi-window error-budget policy: page when the fast window burns budget
/// at >= fast_burn_threshold x the sustainable rate AND the slow window
/// confirms it (the AND suppresses one-bucket blips).
struct SloConfig {
  double target_p99_ms = 500.0;
  double target_availability = 0.999;
  std::uint64_t fast_window_us = 60'000'000;
  std::uint64_t slow_window_us = 300'000'000;
  double fast_burn_threshold = 14.0;
  double slow_burn_threshold = 6.0;
  /// Below this many samples in the fast window the evaluation abstains
  /// (healthy): an idle or freshly started server must pass LB checks.
  std::uint64_t min_samples = 1;
};

/// Point-in-time SLO verdict over one rolling window.
struct SloState {
  bool healthy = true;
  bool latency_ok = true;       ///< fast-window p99 within target
  bool availability_ok = true;  ///< burn rate below both thresholds
  double fast_burn_rate = 0.0;
  double slow_burn_rate = 0.0;
  RollingWindow::Snapshot fast;
  RollingWindow::Snapshot slow;
};

/// Evaluates `config` against the window's fast/slow snapshots.
/// healthy == latency_ok && availability_ok; see SloConfig for the rules.
SloState EvaluateSlo(const RollingWindow& window, const SloConfig& config);

/// Schema-v1 healthz JSON ({"schema_version":1,"report":"healthz",...}).
/// Validated by tools/bench_schema_check --schema healthz; served as
/// /healthz (status 200 when healthy, 503 otherwise) by tsss_cli serve.
std::string RenderHealthzJson(const SloState& state, const SloConfig& config);

}  // namespace tsss::obs

#endif  // TSSS_OBS_ROLLING_H_
