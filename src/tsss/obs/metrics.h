#ifndef TSSS_OBS_METRICS_H_
#define TSSS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "tsss/common/mutex.h"
#include "tsss/common/thread_annotations.h"
#include "tsss/obs/histogram.h"

namespace tsss::obs {

/// Monotonic event count. Inc() is a single relaxed atomic add, safe from any
/// thread; hot paths hold a `Counter*` obtained once from the registry.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) {
    // relaxed-ok: pure event count; no reader infers anything beyond the tally
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    // relaxed-ok: scrape-time read of an advisory tally
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed value (queue depths, pool occupancy). Set/Add are
/// relaxed atomics, safe from any thread.
class Gauge {
 public:
  // relaxed-ok: advisory point-in-time value, no payload (all three)
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }  // relaxed-ok: gauge
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }  // relaxed-ok: gauge

 private:
  std::atomic<std::int64_t> value_{0};
};

/// One metric row in a registry snapshot.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  std::string help;
  std::uint64_t counter_value = 0;  ///< kCounter
  std::int64_t gauge_value = 0;     ///< kGauge
  // kHistogram: quantile floors in microseconds (nearest-rank, <=25% rel err).
  std::uint64_t hist_count = 0;
  std::uint64_t hist_sum_us = 0;
  double hist_p50_ms = 0.0;
  double hist_p90_ms = 0.0;
  double hist_p99_ms = 0.0;
};

/// Named metric registry. GetCounter/GetGauge/GetHistogram return stable
/// pointers that stay valid for the registry's lifetime; repeated calls with
/// the same name return the same object, so independent subsystems can share
/// a metric by name. Registration takes a mutex; metric updates through the
/// returned pointers are lock-free.
///
/// Global() is the process-wide instance every subsystem reports into; tests
/// that need isolation construct their own registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// `help` is recorded on first registration; later calls may pass "".
  Counter* GetCounter(const std::string& name, const std::string& help = "")
      TSSS_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const std::string& help = "")
      TSSS_EXCLUDES(mu_);
  LatencyHistogram* GetHistogram(const std::string& name,
                                 const std::string& help = "")
      TSSS_EXCLUDES(mu_);

  /// Relaxed point-in-time view of every registered metric, sorted by name
  /// within each kind (counters, then gauges, then histograms).
  std::vector<MetricSample> Snapshot() const TSSS_EXCLUDES(mu_);

 private:
  template <typename T>
  struct Entry {
    std::string help;
    std::unique_ptr<T> metric;
  };

  mutable Mutex mu_;
  std::map<std::string, Entry<Counter>> counters_ TSSS_GUARDED_BY(mu_);
  std::map<std::string, Entry<Gauge>> gauges_ TSSS_GUARDED_BY(mu_);
  std::map<std::string, Entry<LatencyHistogram>> histograms_
      TSSS_GUARDED_BY(mu_);
};

/// Builds a Prometheus-style labelled metric name:
///   WithLabel("tsss_pool_hits_total", "shard", "3")
///     == R"(tsss_pool_hits_total{shard="3"})"
/// The registry keys metrics by the full string (same name+label -> same
/// object), so per-instance series — e.g. one per shard — coexist with the
/// unlabelled process-wide total. ExportPrometheus emits HELP/TYPE against
/// the base name (everything before '{'), once per base.
std::string WithLabel(const std::string& base, const std::string& key,
                      const std::string& value);

/// Renders a snapshot in the Prometheus text exposition format: counters and
/// gauges as single samples, histograms as summaries (quantile label, values
/// in seconds) with `_sum` and `_count` rows. Labelled names (see WithLabel)
/// share their base's HELP/TYPE header.
std::string ExportPrometheus(const std::vector<MetricSample>& samples);

/// Renders a snapshot as a JSON object: {"counters": {...}, "gauges": {...},
/// "histograms": {name: {count, sum_us, p50_ms, p90_ms, p99_ms}}}.
std::string ExportJson(const std::vector<MetricSample>& samples);

}  // namespace tsss::obs

#endif  // TSSS_OBS_METRICS_H_
