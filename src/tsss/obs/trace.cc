#include "tsss/obs/trace.h"

#include <algorithm>

namespace tsss::obs {

namespace {

thread_local QueryTrace* g_current_query_trace = nullptr;

/// Zero-initialized POD: constant-initialized, so reading it from a signal
/// handler never runs a TLS guard or allocates (local-exec/initial-exec TLS;
/// the library is linked statically into its binaries).
thread_local PhaseStack g_phase_stack;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

}  // namespace

QueryTrace::QueryTrace() : start_(std::chrono::steady_clock::now()) {}

std::uint64_t QueryTrace::NowUs() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
  return us < 0 ? 0 : static_cast<std::uint64_t>(us);
}

std::size_t QueryTrace::OpenSpan(std::string name) {
  TraceEvent event;
  event.name = std::move(name);
  event.start_us = NowUs();
  event.parent = open_.empty() ? TraceEvent::kNoParent : open_.back();
  event.depth = static_cast<int>(open_.size());
  const std::size_t index = spans_.size();
  spans_.push_back(std::move(event));
  open_.push_back(index);
  return index;
}

void QueryTrace::CloseSpan(std::size_t index) {
  if (index >= spans_.size() || spans_[index].closed) return;
  const std::uint64_t now = NowUs();
  // Unwind the open stack to (and including) `index`, closing any spans that
  // were left open inside it so the tree stays well-nested.
  while (!open_.empty()) {
    const std::size_t top = open_.back();
    open_.pop_back();
    TraceEvent& span = spans_[top];
    span.dur_us = now >= span.start_us ? now - span.start_us : 0;
    span.closed = true;
    if (top == index) return;
  }
}

void QueryTrace::AddArg(std::size_t index, const std::string& key,
                        std::uint64_t value) {
  if (index >= spans_.size()) return;
  spans_[index].args.emplace_back(key, value);
}

void QueryTrace::Annotate(const std::string& key, std::uint64_t value) {
  if (!open_.empty()) {
    AddArg(open_.back(), key, value);
  } else if (!spans_.empty()) {
    AddArg(0, key, value);
  }
}

std::string QueryTrace::ToChromeJson() const {
  const std::uint64_t now = NowUs();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& span : spans_) {
    if (!first) out += ",";
    first = false;
    const std::uint64_t dur =
        span.closed ? span.dur_us
                    : (now >= span.start_us ? now - span.start_us : 0);
    out += "{\"name\":\"" + JsonEscape(span.name) +
           "\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":" +
           std::to_string(span.start_us) + ",\"dur\":" + std::to_string(dur);
    if (!span.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : span.args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += "\"" + JsonEscape(key) + "\":" + std::to_string(value);
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

QueryTrace* CurrentQueryTrace() { return g_current_query_trace; }

PhaseStack* CurrentPhaseStack() { return &g_phase_stack; }

const char* CurrentPhaseName() {
  PhaseStack& stack = g_phase_stack;
  // The fence below pairs with the release fence in the TraceSpan push.
  // relaxed-ok: same-thread signal ordering via the fences
  const int depth = stack.depth.load(std::memory_order_relaxed);
  if (depth <= 0) return nullptr;
  std::atomic_signal_fence(std::memory_order_acquire);
  const int top = depth <= PhaseStack::kMaxDepth ? depth - 1
                                                 : PhaseStack::kMaxDepth - 1;
  // relaxed-ok: same-thread read ordered by the signal fence above
  return stack.names[top].load(std::memory_order_relaxed);
}

ScopedQueryTrace::ScopedQueryTrace(QueryTrace* trace)
    : prev_(g_current_query_trace) {
  g_current_query_trace = trace;
}

ScopedQueryTrace::~ScopedQueryTrace() { g_current_query_trace = prev_; }

TraceSpan::TraceSpan(const char* name) : trace_(g_current_query_trace) {
  // Phase mirror push. A SIGPROF handler on this thread observes either the
  // pre-push or post-push state: the name store is ordered before the depth
  // store by the signal fence, so a depth it reads always covers valid names.
  PhaseStack& stack = g_phase_stack;
  // relaxed-ok: only this thread writes; handler reads are fence-ordered
  phase_depth_ = stack.depth.load(std::memory_order_relaxed);
  if (phase_depth_ < PhaseStack::kMaxDepth) {
    // relaxed-ok: ordered before the depth store by the signal fence
    stack.names[phase_depth_].store(name, std::memory_order_relaxed);
  }
  std::atomic_signal_fence(std::memory_order_release);
  // relaxed-ok: same-thread publish, fence supplies the handler ordering
  stack.depth.store(phase_depth_ + 1, std::memory_order_relaxed);

  if (trace_ != nullptr) index_ = trace_->OpenSpan(name);
}

TraceSpan::~TraceSpan() {
  PopPhase();
  if (trace_ != nullptr) trace_->CloseSpan(index_);
}

void TraceSpan::Annotate(const char* key, std::uint64_t value) {
  if (trace_ != nullptr) trace_->AddArg(index_, key, value);
}

void TraceSpan::Close() {
  PopPhase();
  if (trace_ != nullptr) trace_->CloseSpan(index_);
}

void TraceSpan::PopPhase() {
  if (phase_popped_) return;
  phase_popped_ = true;
  PhaseStack& stack = g_phase_stack;
  // Restore to this span's remembered depth; only ever shrink, so an
  // out-of-order Close() (inner span still open) self-heals instead of
  // exposing a stale deeper name.
  // A handler that still reads the old depth sees names the push made valid.
  // relaxed-ok: same-thread pop
  if (stack.depth.load(std::memory_order_relaxed) > phase_depth_) {
    stack.depth.store(phase_depth_, std::memory_order_relaxed);  // relaxed-ok: same
  }
}

}  // namespace tsss::obs
