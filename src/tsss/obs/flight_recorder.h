#ifndef TSSS_OBS_FLIGHT_RECORDER_H_
#define TSSS_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "tsss/common/mutex.h"
#include "tsss/common/thread_annotations.h"
#include "tsss/obs/cost.h"
#include "tsss/obs/explain.h"

namespace tsss::obs {

/// One captured slow (or failed) query: everything needed to reconstruct what
/// it did after the fact — outcome, latency, cost attribution, the full
/// explain report (prune waterfall, funnel, I/O) and the span trace as Chrome
/// trace JSON. Assembled by the layer that saw the query finish
/// (service::QueryService::FinishTask); obs/ only stores and renders it.
struct FlightRecord {
  std::uint64_t id = 0;        ///< capture sequence number (1-based)
  std::string kind;            ///< "range" | "knn" | "long_range"
  std::string outcome;         ///< "served" | "timed_out" | "cancelled" | ...
  std::uint64_t latency_us = 0;
  QueryCost cost;
  /// Present when the query ran far enough to collect telemetry (a deadline
  /// can expire while the request is still queued).
  bool has_explain = false;
  ExplainReport explain;
  /// QueryTrace::ToChromeJson() output; empty when no trace was installed.
  std::string trace_json;
};

/// Fixed-capacity ring of FlightRecords with rate-limited admission: the
/// always-on black box for slow queries. Arm() sets a latency threshold;
/// ShouldCapture() is the per-query-completion test (one relaxed atomic load
/// and a compare when disarmed — cheap enough to leave in the completion
/// path permanently); MaybeCapture() admits a record unless the per-second
/// budget is spent, evicting the oldest record once the ring is full.
///
/// Thread safety: Arm/Disarm/ShouldCapture are lock-free; MaybeCapture,
/// Snapshot and DumpJson take a mutex — capture is the rare slow path, and a
/// scrape never blocks query admission, only other captures.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;
  static constexpr std::uint64_t kDefaultMaxPerSec = 8;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Starts capturing: queries slower than `threshold_us` (or ending in
  /// DeadlineExceeded/Cancelled — any not-OK outcome) become candidates.
  /// At most `max_per_sec` captures are admitted per wall-clock second so a
  /// pathological workload cannot turn the recorder into the bottleneck.
  void Arm(std::uint64_t threshold_us,
           std::uint64_t max_per_sec = kDefaultMaxPerSec);
  void Disarm();

  bool armed() const {
    // A stale read delays or skips one capture; it cannot corrupt the ring.
    // relaxed-ok: advisory arming flag
    return armed_.load(std::memory_order_relaxed);
  }
  std::uint64_t threshold_us() const {
    // relaxed-ok: read together with armed(); same advisory contract
    return threshold_us_.load(std::memory_order_relaxed);
  }

  /// The completion-path test: should this query be captured? True iff armed
  /// and (latency exceeded the threshold, or the outcome was not OK).
  bool ShouldCapture(std::uint64_t latency_us, bool ok) const {
    if (!armed()) return false;
    return !ok || latency_us >= threshold_us();
  }

  /// Admits `record` unless the per-second budget is spent (then it is
  /// dropped and counted). Fills record.id. Returns true when stored.
  bool MaybeCapture(FlightRecord record) TSSS_EXCLUDES(mu_);

  /// Records currently in the ring, oldest first.
  std::vector<FlightRecord> Snapshot() const TSSS_EXCLUDES(mu_);

  std::size_t capacity() const { return capacity_; }
  /// Total records admitted / dropped by the rate limiter since construction.
  std::uint64_t captured() const TSSS_EXCLUDES(mu_);
  std::uint64_t dropped() const TSSS_EXCLUDES(mu_);

  /// Empties the ring (captured/dropped totals are kept).
  void Clear() TSSS_EXCLUDES(mu_);

  /// Schema-v1 JSON dump ({"schema_version":1,"report":"flight",...}) with
  /// every record's cost, explain report and trace embedded. Validated by
  /// tools/bench_schema_check --schema flight; served as /flightz by
  /// DebugServer.
  std::string DumpJson() const TSSS_EXCLUDES(mu_);

  /// The process-wide instance the service layer feeds and /flightz dumps.
  static FlightRecorder& Global();

 private:
  const std::size_t capacity_;

  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> threshold_us_{0};

  mutable Mutex mu_;
  std::deque<FlightRecord> ring_ TSSS_GUARDED_BY(mu_);
  std::uint64_t next_id_ TSSS_GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ TSSS_GUARDED_BY(mu_) = 0;
  /// Token bucket: admissions during the current wall-clock second.
  std::uint64_t max_per_sec_ TSSS_GUARDED_BY(mu_) = kDefaultMaxPerSec;
  std::uint64_t window_count_ TSSS_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point window_start_ TSSS_GUARDED_BY(mu_){};
};

}  // namespace tsss::obs

#endif  // TSSS_OBS_FLIGHT_RECORDER_H_
