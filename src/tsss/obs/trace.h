#ifndef TSSS_OBS_TRACE_H_
#define TSSS_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tsss::obs {

/// Async-signal-safe mirror of this thread's open TraceSpan phases, read by
/// the sampling profiler's SIGPROF handler to attribute CPU samples to query
/// phases without symbolization. Unlike QueryTrace (heap-backed, installed
/// only while a recorder is armed), the mirror is maintained unconditionally
/// by every TraceSpan: a fixed-depth array of string-literal pointers plus an
/// atomic depth, all constant-initialized POD so the handler's thread-local
/// access cannot allocate or run a TLS guard.
///
/// Only the owning thread writes; a signal handler running ON THAT THREAD
/// reads. Ordering between the two is same-thread signal ordering, so the
/// stores use relaxed atomics paired with std::atomic_signal_fence — no
/// cross-thread synchronization is needed or implied.
struct PhaseStack {
  static constexpr int kMaxDepth = 16;
  std::atomic<int> depth;
  std::atomic<const char*> names[kMaxDepth];
};

/// This thread's phase mirror. Always valid; safe to call from a signal
/// handler on the same thread (constant-initialized thread_local).
PhaseStack* CurrentPhaseStack();

/// The innermost open phase name on this thread, or nullptr when no
/// TraceSpan is open. Async-signal-safe.
const char* CurrentPhaseName();

/// One completed (or still-open) span in a query trace.
struct TraceEvent {
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  std::string name;
  std::uint64_t start_us = 0;  ///< offset from trace start
  std::uint64_t dur_us = 0;    ///< filled when the span closes
  std::size_t parent = kNoParent;  ///< index of enclosing span
  int depth = 0;                   ///< nesting depth (root spans are 0)
  bool closed = false;
  /// Counters attached via TraceSpan::Annotate / QueryTrace::Annotate.
  std::vector<std::pair<std::string, std::uint64_t>> args;
};

/// Per-query trace: a tree of timed spans with attached counters.
///
/// A query runs on exactly one thread, so QueryTrace is deliberately NOT
/// thread-safe — it is owned by the caller, installed thread-locally for the
/// duration of one query via ScopedQueryTrace, and read after the query
/// returns. Export with ToChromeJson() for chrome://tracing / Perfetto.
class QueryTrace {
 public:
  QueryTrace();

  /// Opens a span nested under the innermost open span. Returns its index.
  std::size_t OpenSpan(std::string name);
  /// Closes span `index`, fixing its duration. Out-of-order closes are
  /// tolerated (the open stack is unwound to the matching entry).
  void CloseSpan(std::size_t index);
  /// Attaches a counter to span `index`.
  void AddArg(std::size_t index, const std::string& key, std::uint64_t value);
  /// Attaches a counter to the innermost open span (or the first root span
  /// when none is open; dropped on an empty trace).
  void Annotate(const std::string& key, std::uint64_t value);

  const std::vector<TraceEvent>& events() const { return spans_; }

  /// Chrome trace-event JSON ({"traceEvents": [...]}, complete "X" events,
  /// ts/dur in microseconds). Still-open spans get their duration as of now.
  std::string ToChromeJson() const;

 private:
  std::uint64_t NowUs() const;

  std::chrono::steady_clock::time_point start_;
  std::vector<TraceEvent> spans_;
  std::vector<std::size_t> open_;  ///< stack of open span indices
};

/// Returns the trace installed on this thread, or nullptr (tracing off).
QueryTrace* CurrentQueryTrace();

/// Installs `trace` as this thread's current query trace for the scope's
/// lifetime, restoring the previous one on destruction (same pattern as
/// storage::ScopedQueryCounters).
class ScopedQueryTrace {
 public:
  explicit ScopedQueryTrace(QueryTrace* trace);
  ~ScopedQueryTrace();

  ScopedQueryTrace(const ScopedQueryTrace&) = delete;
  ScopedQueryTrace& operator=(const ScopedQueryTrace&) = delete;

 private:
  QueryTrace* prev_;
};

/// RAII scoped timer. When a QueryTrace is installed on this thread, the
/// constructor opens a span and the destructor closes it; when tracing is
/// off, construction is one thread-local read and a branch — cheap enough
/// for per-phase use on the query hot path (never per-node).
///
/// Every TraceSpan also pushes its name onto this thread's PhaseStack
/// (whether or not a trace is installed) so the sampling profiler can
/// attribute SIGPROF samples to the active phase. `name` must be a string
/// literal or otherwise outlive the span: the mirror stores the pointer.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a counter to this span. No-op when tracing is off.
  void Annotate(const char* key, std::uint64_t value);

  /// Closes the span now instead of at scope exit (the destructor then
  /// no-ops). Lets sequential phases in one scope get disjoint durations.
  void Close();

 private:
  void PopPhase();

  QueryTrace* trace_;
  std::size_t index_ = 0;
  /// Phase-mirror depth to restore on close; pop-once even when Close() is
  /// followed by the destructor, and self-healing under out-of-order closes
  /// (the restore only ever shrinks the stack).
  int phase_depth_ = 0;
  bool phase_popped_ = false;
};

}  // namespace tsss::obs

#endif  // TSSS_OBS_TRACE_H_
