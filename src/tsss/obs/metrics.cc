#include "tsss/obs/metrics.h"

#include <cstdio>
#include <utility>

namespace tsss::obs {

namespace {

// Fixed 6-decimal formatting keeps exporter output deterministic across
// locales and libc versions (golden tests depend on it).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, Entry<Counter>{help, std::make_unique<Counter>()})
             .first;
  }
  return it->second.metric.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, Entry<Gauge>{help, std::make_unique<Gauge>()})
             .first;
  }
  return it->second.metric.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                const std::string& help) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, Entry<LatencyHistogram>{
                                help, std::make_unique<LatencyHistogram>()})
             .first;
  }
  return it->second.metric.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> out;
  MutexLock lock(mu_);
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, entry] : counters_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kCounter;
    s.name = name;
    s.help = entry.help;
    s.counter_value = entry.metric->Value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, entry] : gauges_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kGauge;
    s.name = name;
    s.help = entry.help;
    s.gauge_value = entry.metric->Value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, entry] : histograms_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kHistogram;
    s.name = name;
    s.help = entry.help;
    s.hist_count = entry.metric->Count();
    s.hist_sum_us = entry.metric->SumUs();
    s.hist_p50_ms = entry.metric->PercentileMs(0.50);
    s.hist_p90_ms = entry.metric->PercentileMs(0.90);
    s.hist_p99_ms = entry.metric->PercentileMs(0.99);
    out.push_back(std::move(s));
  }
  return out;
}

std::string WithLabel(const std::string& base, const std::string& key,
                      const std::string& value) {
  return base + "{" + key + "=\"" + value + "\"}";
}

std::string ExportPrometheus(const std::vector<MetricSample>& samples) {
  std::string out;
  // The snapshot is name-sorted, so all labelled variants of a base follow
  // each other (and any unlabelled sample of the same base): one HELP/TYPE
  // header covers the run.
  std::string last_base;
  for (const MetricSample& s : samples) {
    const std::string base = s.name.substr(0, s.name.find('{'));
    const bool new_base = base != last_base;
    last_base = base;
    if (!s.help.empty() && new_base) {
      out += "# HELP " + base + " " + s.help + "\n";
    }
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        if (new_base) out += "# TYPE " + base + " counter\n";
        out += s.name + " " + std::to_string(s.counter_value) + "\n";
        break;
      case MetricSample::Kind::kGauge:
        if (new_base) out += "# TYPE " + base + " gauge\n";
        out += s.name + " " + std::to_string(s.gauge_value) + "\n";
        break;
      case MetricSample::Kind::kHistogram: {
        // Prometheus summaries report quantile values in seconds. A labelled
        // name ("base{shard=\"0\"}") folds its labels into the quantile label
        // set and moves them after the _sum/_count suffixes, so every series
        // keeps the "one brace group at the end" exposition grammar.
        const std::size_t brace = s.name.find('{');
        const std::string labels =
            brace == std::string::npos
                ? ""
                : s.name.substr(brace + 1, s.name.size() - brace - 2);
        const std::string label_prefix = labels.empty() ? "" : labels + ",";
        const std::string label_suffix =
            labels.empty() ? "" : "{" + labels + "}";
        if (new_base) out += "# TYPE " + base + " summary\n";
        out += base + "{" + label_prefix + "quantile=\"0.5\"} " +
               FormatDouble(s.hist_p50_ms / 1000.0) + "\n";
        out += base + "{" + label_prefix + "quantile=\"0.9\"} " +
               FormatDouble(s.hist_p90_ms / 1000.0) + "\n";
        out += base + "{" + label_prefix + "quantile=\"0.99\"} " +
               FormatDouble(s.hist_p99_ms / 1000.0) + "\n";
        out += base + "_sum" + label_suffix + " " +
               FormatDouble(static_cast<double>(s.hist_sum_us) / 1e6) + "\n";
        out += base + "_count" + label_suffix + " " +
               std::to_string(s.hist_count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string ExportJson(const std::vector<MetricSample>& samples) {
  std::string counters, gauges, histograms;
  for (const MetricSample& s : samples) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        if (!counters.empty()) counters += ",";
        counters += "\"" + JsonEscape(s.name) +
                    "\":" + std::to_string(s.counter_value);
        break;
      case MetricSample::Kind::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges +=
            "\"" + JsonEscape(s.name) + "\":" + std::to_string(s.gauge_value);
        break;
      case MetricSample::Kind::kHistogram:
        if (!histograms.empty()) histograms += ",";
        histograms += "\"" + JsonEscape(s.name) + "\":{\"count\":" +
                      std::to_string(s.hist_count) +
                      ",\"sum_us\":" + std::to_string(s.hist_sum_us) +
                      ",\"p50_ms\":" + FormatDouble(s.hist_p50_ms) +
                      ",\"p90_ms\":" + FormatDouble(s.hist_p90_ms) +
                      ",\"p99_ms\":" + FormatDouble(s.hist_p99_ms) + "}";
        break;
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}\n";
}

}  // namespace tsss::obs
