#include "tsss/seq/window.h"

namespace tsss::seq {

Status ForEachWindowOfSeries(
    const storage::SequenceStore& store, storage::SeriesId series, std::size_t n,
    std::size_t stride,
    const std::function<void(storage::SeriesId, std::uint32_t,
                             std::span<const double>)>& fn) {
  if (n == 0) return Status::InvalidArgument("window length must be positive");
  if (stride == 0) return Status::InvalidArgument("stride must be positive");
  Result<std::span<const double>> values = store.SeriesValues(series);
  if (!values.ok()) return values.status();
  if (values->size() < n) return Status::OK();
  for (std::size_t off = 0; off + n <= values->size(); off += stride) {
    fn(series, static_cast<std::uint32_t>(off), values->subspan(off, n));
  }
  return Status::OK();
}

Status ForEachWindow(
    const storage::SequenceStore& store, std::size_t n, std::size_t stride,
    const std::function<void(storage::SeriesId, std::uint32_t,
                             std::span<const double>)>& fn) {
  for (storage::SeriesId s = 0; s < store.num_series(); ++s) {
    Status status = ForEachWindowOfSeries(store, s, n, stride, fn);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Result<std::size_t> CountWindows(const storage::SequenceStore& store,
                                 std::size_t n, std::size_t stride) {
  if (n == 0) return Status::InvalidArgument("window length must be positive");
  if (stride == 0) return Status::InvalidArgument("stride must be positive");
  std::size_t count = 0;
  for (storage::SeriesId s = 0; s < store.num_series(); ++s) {
    Result<std::size_t> len = store.SeriesLength(s);
    if (!len.ok()) return len.status();
    if (*len >= n) count += (*len - n) / stride + 1;
  }
  return count;
}

}  // namespace tsss::seq
