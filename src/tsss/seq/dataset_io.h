#ifndef TSSS_SEQ_DATASET_IO_H_
#define TSSS_SEQ_DATASET_IO_H_

#include <iosfwd>
#include <string>

#include "tsss/common/status.h"
#include "tsss/seq/dataset.h"

namespace tsss::seq {

/// Writes the whole dataset (names + raw values) to a binary file.
/// Format: magic u64 | num_series u64 | per series:
///   name_len u32 | name bytes | value_count u64 | values f64[] ,
/// followed by a CRC-32 of everything before it.
Status SaveDataset(const std::string& path, const Dataset& dataset);

/// Writes the SaveDataset format to an arbitrary seekable stream.
Status SaveDatasetToStream(std::ostream& out, const Dataset& dataset);

/// Loads a SaveDataset file into `dataset`, which must be empty.
/// Verifies the trailing checksum.
Status LoadDataset(const std::string& path, Dataset* dataset);

/// Loads the SaveDataset format from an arbitrary seekable stream (the
/// fuzz harness feeds it in-memory buffers). Every length/count field is
/// validated against the bytes actually remaining in the stream before any
/// allocation is sized by it, so truncated or hostile inputs fail with a
/// Corruption status instead of attempting multi-gigabyte allocations.
Status LoadDatasetFromStream(std::istream& in, Dataset* dataset);

}  // namespace tsss::seq

#endif  // TSSS_SEQ_DATASET_IO_H_
