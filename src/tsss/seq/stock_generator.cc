#include "tsss/seq/stock_generator.h"

#include <cmath>
#include <string>

#include "tsss/common/rng.h"

namespace tsss::seq {

std::vector<TimeSeries> GenerateStockMarket(const StockMarketConfig& config) {
  Rng rng(config.seed);
  const std::size_t sectors = config.num_sectors == 0 ? 1 : config.num_sectors;

  // Per-company static parameters.
  struct Company {
    double price;
    double drift;
    double sigma;
    double beta;
    std::size_t sector;
    bool high_vol_regime;
  };
  std::vector<Company> companies(config.num_companies);
  for (auto& c : companies) {
    // Log-uniform start prices: the market has many small caps and few
    // expensive blue chips, giving the scale diversity the queries need.
    const double log_lo = std::log(config.min_start_price);
    const double log_hi = std::log(config.max_start_price);
    c.price = std::exp(rng.Uniform(log_lo, log_hi));
    c.drift = rng.Gaussian(config.drift_mean, config.drift_stddev);
    c.sigma = rng.Uniform(config.min_volatility, config.max_volatility);
    c.beta = rng.Uniform(config.min_sector_beta, config.max_sector_beta);
    c.sector = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(sectors) - 1));
    c.high_vol_regime = false;
  }

  std::vector<TimeSeries> market(config.num_companies);
  for (std::size_t i = 0; i < config.num_companies; ++i) {
    market[i].name = "HK" + std::to_string(i);
    market[i].values.reserve(config.values_per_company);
  }

  std::vector<double> sector_factor(sectors, 0.0);
  for (std::size_t t = 0; t < config.values_per_company; ++t) {
    // One market-wide draw of sector factors per step correlates companies
    // within a sector, producing the co-moving price runs that make
    // similarity queries return non-trivial answers.
    for (std::size_t s = 0; s < sectors; ++s) {
      sector_factor[s] = rng.Gaussian(0.0, config.sector_volatility);
    }
    for (std::size_t i = 0; i < config.num_companies; ++i) {
      Company& c = companies[i];
      if (rng.Bernoulli(config.regime_switch_prob)) {
        c.high_vol_regime = !c.high_vol_regime;
      }
      const double sigma =
          c.high_vol_regime ? c.sigma * config.regime_volatility_boost : c.sigma;
      const double log_return = c.drift + c.beta * sector_factor[c.sector] +
                                rng.Gaussian(0.0, sigma);
      c.price *= std::exp(log_return);
      market[i].values.push_back(c.price);
    }
  }
  return market;
}

TimeSeries GenerateGbmPath(std::string name, std::size_t length,
                           double start_price, double drift, double volatility,
                           std::uint64_t seed) {
  Rng rng(seed);
  TimeSeries out;
  out.name = std::move(name);
  out.values.reserve(length);
  double price = start_price;
  for (std::size_t t = 0; t < length; ++t) {
    price *= std::exp(drift + rng.Gaussian(0.0, volatility));
    out.values.push_back(price);
  }
  return out;
}

}  // namespace tsss::seq
