#ifndef TSSS_SEQ_DATASET_H_
#define TSSS_SEQ_DATASET_H_

#include <string>
#include <string_view>
#include <vector>

#include "tsss/common/status.h"
#include "tsss/seq/time_series.h"
#include "tsss/storage/sequence_store.h"

namespace tsss::seq {

/// A catalogue of named time series backed by a page-counted SequenceStore.
///
/// The Dataset owns the raw values; the search engine reads windows through
/// it so that candidate verification I/O is accounted (Figure 5).
class Dataset {
 public:
  Dataset() = default;

  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  /// Adds a series; names need not be unique (ids are the identity).
  storage::SeriesId Add(const TimeSeries& series);
  storage::SeriesId Add(std::string name, std::span<const double> values);

  /// Appends values to the most recently added series (regular data
  /// collection; see SequenceStore::AppendToSeries for the constraint).
  Status Append(storage::SeriesId id, std::span<const double> values);

  std::size_t size() const { return names_.size(); }
  std::size_t total_values() const { return store_.total_values(); }

  Result<std::string> Name(storage::SeriesId id) const;
  Result<std::span<const double>> Values(storage::SeriesId id) const;

  /// Finds the first series with the given name (names are not required to
  /// be unique; ids are the identity). NotFound when absent.
  Result<storage::SeriesId> FindSeries(std::string_view name) const;

  storage::SequenceStore& store() { return store_; }
  const storage::SequenceStore& store() const { return store_; }

 private:
  storage::SequenceStore store_;
  std::vector<std::string> names_;
};

}  // namespace tsss::seq

#endif  // TSSS_SEQ_DATASET_H_
