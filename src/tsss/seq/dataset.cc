#include "tsss/seq/dataset.h"

namespace tsss::seq {

storage::SeriesId Dataset::Add(const TimeSeries& series) {
  return Add(series.name, series.values);
}

storage::SeriesId Dataset::Add(std::string name, std::span<const double> values) {
  const storage::SeriesId id = store_.AddSeries(values);
  names_.push_back(std::move(name));
  return id;
}

Status Dataset::Append(storage::SeriesId id, std::span<const double> values) {
  return store_.AppendToSeries(id, values);
}

Result<std::string> Dataset::Name(storage::SeriesId id) const {
  if (id >= names_.size()) {
    return Status::NotFound("series " + std::to_string(id) + " does not exist");
  }
  return names_[id];
}

Result<std::span<const double>> Dataset::Values(storage::SeriesId id) const {
  return store_.SeriesValues(id);
}

Result<storage::SeriesId> Dataset::FindSeries(std::string_view name) const {
  for (storage::SeriesId id = 0; id < names_.size(); ++id) {
    if (names_[id] == name) return id;
  }
  return Status::NotFound("no series named '" + std::string(name) + "'");
}

}  // namespace tsss::seq
