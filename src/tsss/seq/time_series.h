#ifndef TSSS_SEQ_TIME_SERIES_H_
#define TSSS_SEQ_TIME_SERIES_H_

#include <string>
#include <vector>

#include "tsss/geom/vec.h"

namespace tsss::seq {

/// A named time series: a sequence of real numbers collected regularly in
/// time (paper, Section 1).
struct TimeSeries {
  std::string name;
  geom::Vec values;

  std::size_t length() const { return values.size(); }
};

/// Extracts the subsequence [offset, offset + n) by value.
/// Requires offset + n <= series.length().
geom::Vec Subsequence(const TimeSeries& series, std::size_t offset, std::size_t n);

}  // namespace tsss::seq

#endif  // TSSS_SEQ_TIME_SERIES_H_
