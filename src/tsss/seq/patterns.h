#ifndef TSSS_SEQ_PATTERNS_H_
#define TSSS_SEQ_PATTERNS_H_

#include <cstddef>

#include "tsss/geom/vec.h"

namespace tsss::seq {

/// Canonical query patterns for scale-shift search. All are emitted in a
/// normalised range (roughly [0, 1] or [-1, 1]); because the search is
/// scale-shift invariant, the absolute level and amplitude of the pattern
/// are irrelevant - only its shape matters. n >= 2 for all generators.

/// Linear ramp 0 -> 1 ("steady uptrend").
geom::Vec RampPattern(std::size_t n);

/// V-shaped reversal 1 -> 0 -> 1 ("crash and recovery").
geom::Vec VPattern(std::size_t n);

/// Inverted V 0 -> 1 -> 0 ("spike and fade").
geom::Vec PeakPattern(std::size_t n);

/// `cycles` full sine periods over the window.
geom::Vec SinePattern(std::size_t n, double cycles = 1.0);

/// Step from 0 to 1 at fraction `at` in (0, 1) ("breakout").
geom::Vec StepPattern(std::size_t n, double at = 0.5);

/// Head-and-shoulders: three peaks, the middle one higher - the classic
/// chartist reversal pattern.
geom::Vec HeadAndShouldersPattern(std::size_t n);

/// Exponential saturation 1 - exp(-rate * t), t in [0, 1] ("rally that
/// flattens out").
geom::Vec SaturationPattern(std::size_t n, double rate = 4.0);

/// Cup with a flat bottom: 1 -> 0 (smooth), flat, 0 -> 1 (smooth) -
/// a rounded V ("cup and handle" base).
geom::Vec CupPattern(std::size_t n);

}  // namespace tsss::seq

#endif  // TSSS_SEQ_PATTERNS_H_
