#ifndef TSSS_SEQ_WINDOW_H_
#define TSSS_SEQ_WINDOW_H_

#include <cstdint>
#include <functional>
#include <span>

#include "tsss/common/status.h"
#include "tsss/storage/sequence_store.h"

namespace tsss::seq {

/// A record id names one extracted window: (series id, window offset) packed
/// into 64 bits. This is the identity stored in R-tree leaves
/// (paper, Section 6: "<ID_i, S'_i>").
///
/// Spelled std::uint64_t rather than index::RecordId (the same type): seq/ is
/// below index/ in the layer DAG, so the packing helpers cannot reach up for
/// the alias. index/node.h documents that leaf record ids carry this packing.
inline std::uint64_t MakeRecordId(storage::SeriesId series,
                                  std::uint32_t offset) {
  return (static_cast<std::uint64_t>(series) << 32) | offset;
}

inline storage::SeriesId SeriesOf(std::uint64_t record) {
  return static_cast<storage::SeriesId>(record >> 32);
}

inline std::uint32_t OffsetOf(std::uint64_t record) {
  return static_cast<std::uint32_t>(record & 0xFFFFFFFFu);
}

/// Calls `fn(series, offset, window_values)` for every length-`n` window of
/// every series in `store`, sliding by `stride` (paper pre-processing step:
/// "A window of length n is placed and slid over each data sequence").
/// Series shorter than n yield nothing. The callback's span is only valid
/// during the call.
Status ForEachWindow(
    const storage::SequenceStore& store, std::size_t n, std::size_t stride,
    const std::function<void(storage::SeriesId, std::uint32_t,
                             std::span<const double>)>& fn);

/// Same, but for a single series.
Status ForEachWindowOfSeries(
    const storage::SequenceStore& store, storage::SeriesId series, std::size_t n,
    std::size_t stride,
    const std::function<void(storage::SeriesId, std::uint32_t,
                             std::span<const double>)>& fn);

/// Number of windows ForEachWindow would produce.
Result<std::size_t> CountWindows(const storage::SequenceStore& store,
                                 std::size_t n, std::size_t stride);

}  // namespace tsss::seq

#endif  // TSSS_SEQ_WINDOW_H_
