#include "tsss/seq/csv.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

namespace tsss::seq {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseDouble(std::string_view field, double* out) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

Result<std::vector<TimeSeries>> ParseCsv(const std::string& text,
                                         const CsvOptions& options) {
  std::vector<TimeSeries> out;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  std::size_t total_values = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    std::string_view view = Trim(line);
    if (view.empty() || view.front() == '#') continue;

    TimeSeries series;
    bool first_field = true;
    std::size_t pos = 0;
    while (pos <= view.size()) {
      const std::size_t comma = view.find(',', pos);
      const std::string_view field =
          Trim(view.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                                : comma - pos));
      pos = comma == std::string_view::npos ? view.size() + 1 : comma + 1;
      if (field.empty()) {
        if (first_field) {
          return Status::InvalidArgument("csv line " + std::to_string(line_no) +
                                         ": empty first field");
        }
        continue;  // tolerate trailing commas
      }
      double value;
      if (first_field) {
        first_field = false;
        if (ParseDouble(field, &value)) {
          series.name = "series" + std::to_string(out.size());
        } else {
          series.name = std::string(field);
          continue;
        }
      } else if (!ParseDouble(field, &value)) {
        return Status::InvalidArgument("csv line " + std::to_string(line_no) +
                                       ": bad number '" + std::string(field) + "'");
      }
      if (!options.allow_nonfinite && !std::isfinite(value)) {
        return Status::InvalidArgument("csv line " + std::to_string(line_no) +
                                       ": non-finite value '" + std::string(field) +
                                       "'");
      }
      ++total_values;
      if (options.max_total_values != 0 &&
          total_values > options.max_total_values) {
        return Status::ResourceExhausted(
            "csv input exceeds the cap of " +
            std::to_string(options.max_total_values) + " values");
      }
      series.values.push_back(value);
    }
    if (options.expected_arity != 0 &&
        series.values.size() != options.expected_arity) {
      return Status::InvalidArgument(
          "csv line " + std::to_string(line_no) + ": series '" + series.name +
          "' has " + std::to_string(series.values.size()) + " values, expected " +
          std::to_string(options.expected_arity));
    }
    out.push_back(std::move(series));
  }
  return out;
}

Result<std::vector<TimeSeries>> LoadCsvFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsv(buffer.str());
}

std::string ToCsv(const std::vector<TimeSeries>& series) {
  std::ostringstream os;
  os.precision(17);
  for (const TimeSeries& s : series) {
    os << s.name;
    for (double v : s.values) os << ',' << v;
    os << '\n';
  }
  return os.str();
}

Status SaveCsvFile(const std::string& path, const std::vector<TimeSeries>& series) {
  std::ofstream file(path);
  if (!file) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  file << ToCsv(series);
  if (!file) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace tsss::seq
