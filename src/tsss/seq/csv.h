#ifndef TSSS_SEQ_CSV_H_
#define TSSS_SEQ_CSV_H_

#include <string>
#include <vector>

#include "tsss/common/status.h"
#include "tsss/seq/time_series.h"

namespace tsss::seq {

/// Limits applied while parsing untrusted CSV input. The defaults keep the
/// historical permissive behaviour except that non-finite values ("nan",
/// "inf") are rejected: they would poison every MBR min/max downstream and
/// abort in checked builds, so the parser is where they must stop.
struct CsvOptions {
  /// When non-zero, every series must have exactly this many values
  /// (uniform arity); a short or long row is an InvalidArgument error.
  std::size_t expected_arity = 0;
  /// When non-zero, parsing fails with ResourceExhausted once the total
  /// value count across all series exceeds this bound (memory cap against
  /// hostile inputs).
  std::size_t max_total_values = 0;
  /// Accept "nan"/"inf" tokens as values (std::from_chars parses them).
  bool allow_nonfinite = false;
};

/// Parses time series from CSV text: one series per line,
/// "name,v1,v2,...,vk". Blank lines and lines starting with '#' are skipped.
/// Whitespace around fields is tolerated. A line whose first field parses as
/// a number is treated as an unnamed series ("series<i>").
Result<std::vector<TimeSeries>> ParseCsv(const std::string& text,
                                         const CsvOptions& options = {});

/// Loads ParseCsv-format series from a file.
Result<std::vector<TimeSeries>> LoadCsvFile(const std::string& path);

/// Serialises series to the ParseCsv format.
std::string ToCsv(const std::vector<TimeSeries>& series);

/// Writes ToCsv output to a file.
Status SaveCsvFile(const std::string& path, const std::vector<TimeSeries>& series);

}  // namespace tsss::seq

#endif  // TSSS_SEQ_CSV_H_
