#ifndef TSSS_SEQ_CSV_H_
#define TSSS_SEQ_CSV_H_

#include <string>
#include <vector>

#include "tsss/common/status.h"
#include "tsss/seq/time_series.h"

namespace tsss::seq {

/// Parses time series from CSV text: one series per line,
/// "name,v1,v2,...,vk". Blank lines and lines starting with '#' are skipped.
/// Whitespace around fields is tolerated. A line whose first field parses as
/// a number is treated as an unnamed series ("series<i>").
Result<std::vector<TimeSeries>> ParseCsv(const std::string& text);

/// Loads ParseCsv-format series from a file.
Result<std::vector<TimeSeries>> LoadCsvFile(const std::string& path);

/// Serialises series to the ParseCsv format.
std::string ToCsv(const std::vector<TimeSeries>& series);

/// Writes ToCsv output to a file.
Status SaveCsvFile(const std::string& path, const std::vector<TimeSeries>& series);

}  // namespace tsss::seq

#endif  // TSSS_SEQ_CSV_H_
