#include "tsss/seq/time_series.h"

#include "tsss/common/check.h"


namespace tsss::seq {

geom::Vec Subsequence(const TimeSeries& series, std::size_t offset,
                      std::size_t n) {
  TSSS_DCHECK(offset + n <= series.values.size());
  return geom::Vec(series.values.begin() + static_cast<std::ptrdiff_t>(offset),
                   series.values.begin() + static_cast<std::ptrdiff_t>(offset + n));
}

}  // namespace tsss::seq
