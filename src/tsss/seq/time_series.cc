#include "tsss/seq/time_series.h"

#include <cassert>

namespace tsss::seq {

geom::Vec Subsequence(const TimeSeries& series, std::size_t offset,
                      std::size_t n) {
  assert(offset + n <= series.values.size());
  return geom::Vec(series.values.begin() + static_cast<std::ptrdiff_t>(offset),
                   series.values.begin() + static_cast<std::ptrdiff_t>(offset + n));
}

}  // namespace tsss::seq
